package rbb_test

import (
	"fmt"

	rbb "repro"
)

// The canonical run: start from the worst configuration and watch the
// process self-stabilize (Theorem 1).
func ExampleNewProcess() {
	src := rbb.NewSource(42)
	p, err := rbb.NewProcess(rbb.AllInOne(256, 256), src)
	if err != nil {
		panic(err)
	}
	threshold := rbb.LegitimateThreshold(256, rbb.Beta)
	rounds, ok := p.ConvergenceTime(threshold, 50*256)
	fmt.Println("converged:", ok)
	fmt.Println("within O(n) rounds:", rounds < 6*256)
	fmt.Println("balls conserved:", p.Balls() == 256)
	// Output:
	// converged: true
	// within O(n) rounds: true
	// balls conserved: true
}

// The Lemma 3 coupling: Tetris pathwise dominates the original process.
func ExampleNewCoupled() {
	src := rbb.NewSource(7)
	loads := rbb.UniformRandom(256, 256, src)
	c, err := rbb.NewCoupled(loads, src)
	if err != nil {
		panic(err)
	}
	c.Run(2000)
	fmt.Println("dominated:", c.Dominated())
	fmt.Println("case-(ii) rounds:", c.CaseIIRounds())
	fmt.Println("tetris max >= original max:", c.WindowMaxTetris() >= c.WindowMaxOriginal())
	// Output:
	// dominated: true
	// case-(ii) rounds: 0
	// tetris max >= original max: true
}

// The Lemma 5 drift chain: exact absorption tails under the paper's bound.
func ExampleNewDriftChain() {
	ch, err := rbb.NewDriftChain(1024)
	if err != nil {
		panic(err)
	}
	tails, err := ch.ExactTail(8, 200, 400)
	if err != nil {
		panic(err)
	}
	fmt.Printf("drift: %.2f\n", ch.Drift())
	fmt.Println("tail under bound at t=200:", tails[200] <= rbb.DriftBound(200))
	// Output:
	// drift: -0.25
	// tail under bound at t=200: true
}

// Multi-token traversal on the clique (Corollary 1): all n tokens visit
// all n nodes within O(n log² n) rounds.
func ExampleNewTraversalOnePerNode() {
	g, err := rbb.NewCompleteGraph(64)
	if err != nil {
		panic(err)
	}
	tr, err := rbb.NewTraversalOnePerNode(g, rbb.NewSource(3), rbb.TraversalOptions{TrackCover: true})
	if err != nil {
		panic(err)
	}
	cover, ok := tr.RunUntilCovered(1 << 20)
	fmt.Println("covered:", ok)
	fmt.Println("cover at least n-1 rounds:", cover >= 63)
	fmt.Println("every token visited every node:", tr.Covered() == 64)
	// Output:
	// covered: true
	// cover at least n-1 rounds: true
	// every token visited every node: true
}

// The d-choices extension: two choices collapse the max load.
func ExampleNewChoicesProcess() {
	windowMax := func(d int) int32 {
		p, err := rbb.NewChoicesProcess(rbb.OnePerBin(1024), d, rbb.NewSource(5))
		if err != nil {
			panic(err)
		}
		var worst int32
		for i := 0; i < 8192; i++ {
			p.Step()
			if p.MaxLoad() > worst {
				worst = p.MaxLoad()
			}
		}
		return worst
	}
	fmt.Println("two choices strictly better:", windowMax(2) < windowMax(1))
	// Output:
	// two choices strictly better: true
}

// Running one experiment from the reproduction suite.
func ExampleRunExperiment() {
	res, err := rbb.RunExperiment("E12", rbb.ExperimentConfig{Scale: rbb.ScaleSmall, Seed: 1})
	if err != nil {
		panic(err)
	}
	fmt.Println(res.ID, "passed:", res.Pass)
	fmt.Println(res.Claim)
	// Output:
	// E12 passed: true
	// Appendix B: P(X1=0, X2=0) = 1/8 > 3/32 = P(X1=0)·P(X2=0) for n = 2
}
