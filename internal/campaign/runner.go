package campaign

import (
	"context"
	"fmt"
	"os"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/spec"
	"repro/internal/table"
)

// Options configures one campaign execution.
type Options struct {
	// Dir is the campaign directory: manifest, per-point checkpoints and
	// the aggregate artifacts live in it. Empty runs the campaign
	// in-memory (no resumability, no artifacts).
	Dir string
	// Concurrency overrides the spec's concurrent-point budget when > 0.
	Concurrency int
	// HostWorkers is the host's default phase worker count per point
	// (0 = GOMAXPROCS), overridden per point by the base placement.
	HostWorkers int
	// CheckpointEvery is the periodic snapshot period (rounds) for rbb
	// points whose spec does not set its own. 0 writes only interrupt
	// and final snapshots.
	CheckpointEvery int64
	// Server, when set, executes points against a running rbb-serve at
	// this base URL instead of in process; identical law points hit the
	// server's result cache.
	Server string
	// OnPoint, when non-nil, observes every point state transition
	// (running, done, failed, and back-to-pending on interruption) from
	// the worker goroutines; it must be safe for concurrent use.
	OnPoint func(PointState)
}

// Result is a campaign execution's outcome.
type Result struct {
	// CampaignID is the law identity of the expanded campaign.
	CampaignID string
	// AxisNames are the plan's axis names (replica coordinate included).
	AxisNames []string
	// Points are the final point states in expansion order.
	Points []PointState
	// Done and Failed count terminal points.
	Done, Failed int
	// Stopped reports an interrupted campaign: the context was cancelled
	// before every point reached a terminal state. Re-running the same
	// spec over the same Dir resumes it.
	Stopped bool
	// Table is the aggregate phase-diagram table, set once every point
	// is done (with a Dir, the artifacts are on disk too).
	Table *table.Table
}

// runner is the shared state of one campaign execution.
type runner struct {
	opts   Options
	spec   CampaignSpec
	plan   *Plan
	remote *client

	mu     sync.Mutex
	states []PointState
}

// Run executes (or resumes) a campaign: expand, reconcile against the
// directory's manifest, then drive every non-done point through a pool of
// Concurrency workers in expansion order. Cancelling ctx is the
// SIGTERM/shutdown hook — in-flight rbb points snapshot at their next
// round boundary via the checkpoint machinery and drop back to pending;
// queued points never start. Point failures don't stop the campaign; they
// are recorded and reported in the Result (and retried by a resume).
func Run(ctx context.Context, cs CampaignSpec, opts Options) (*Result, error) {
	plan, err := cs.Expand()
	if err != nil {
		return nil, err
	}
	r := &runner{opts: opts, spec: cs, plan: plan}
	if opts.Server != "" {
		r.remote = newClient(opts.Server)
	}
	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
			return nil, err
		}
		m, err := ReadManifest(opts.Dir)
		if err != nil {
			return nil, err
		}
		if m != nil {
			if r.states, err = reconcile(m, plan); err != nil {
				return nil, err
			}
		}
	}
	if r.states == nil {
		r.states = newManifest(cs, plan).Points
	}
	if err := r.persist(); err != nil {
		return nil, err
	}

	conc := opts.Concurrency
	if conc <= 0 {
		conc = cs.Concurrency
	}
	if conc < 1 {
		conc = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				// A cancelled campaign drains the queue without starting
				// new points; they stay pending for the resume.
				if ctx.Err() == nil {
					r.runPoint(ctx, i)
				}
			}
		}()
	}
	for i := range plan.Points {
		// Done points are skipped byte-identically: their stored summaries
		// and digests feed the aggregate exactly as a fresh run would.
		// Failed points get a fresh attempt.
		if r.states[i].Status != StatusDone {
			jobs <- i
		}
	}
	close(jobs)
	wg.Wait()

	res := &Result{CampaignID: plan.ID, AxisNames: plan.AxisNames, Points: r.snapshotStates()}
	for i := range res.Points {
		switch res.Points[i].Status {
		case StatusDone:
			res.Done++
		case StatusFailed:
			res.Failed++
		}
	}
	res.Stopped = ctx.Err() != nil && res.Done+res.Failed < len(res.Points)
	if err := r.persist(); err != nil {
		return res, err
	}
	if res.Done == len(res.Points) {
		tb, err := Aggregate(cs, plan, res.Points)
		if err != nil {
			return res, err
		}
		res.Table = tb
		if opts.Dir != "" {
			if err := WriteArtifacts(opts.Dir, tb); err != nil {
				return res, err
			}
		}
	}
	return res, nil
}

// snapshotStates copies the current point states under the lock.
func (r *runner) snapshotStates() []PointState {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]PointState, len(r.states))
	copy(out, r.states)
	return out
}

// persist writes the manifest (no-op without a directory).
func (r *runner) persist() error {
	if r.opts.Dir == "" {
		return nil
	}
	r.mu.Lock()
	m := &Manifest{Version: Version, CampaignID: r.plan.ID, Spec: r.spec, Points: make([]PointState, len(r.states))}
	copy(m.Points, r.states)
	r.mu.Unlock()
	return WriteManifest(r.opts.Dir, m)
}

// transition updates point i under the lock, persists the manifest, and
// notifies the observer. Manifest write errors are reported through the
// point state: losing durability silently would break the resume
// contract.
func (r *runner) transition(i int, mutate func(*PointState)) {
	r.mu.Lock()
	mutate(&r.states[i])
	st := r.states[i]
	r.mu.Unlock()
	if err := r.persist(); err != nil && st.Status != StatusFailed {
		r.mu.Lock()
		r.states[i].Status = StatusFailed
		r.states[i].Error = fmt.Sprintf("persist manifest: %v", err)
		st = r.states[i]
		r.mu.Unlock()
	}
	if r.opts.OnPoint != nil {
		r.opts.OnPoint(st)
	}
}

// runPoint drives point i to a terminal state (or to an interrupted
// pending state when ctx is cancelled mid-flight).
func (r *runner) runPoint(ctx context.Context, i int) {
	pt := r.plan.Points[i]
	r.transition(i, func(st *PointState) { st.Status = StatusRunning })
	start := time.Now()
	var (
		sum         *shard.Summary
		round       int64
		runID       string
		interrupted bool
		err         error
	)
	if r.remote != nil {
		r.mu.Lock()
		prevRunID := r.states[i].RunID
		r.mu.Unlock()
		sum, round, runID, interrupted, err = r.remote.runPoint(ctx, pt.Spec, prevRunID)
	} else {
		sum, round, interrupted, err = r.runLocal(ctx, pt)
	}
	switch {
	case err != nil:
		NotePoint(StatusFailed, false, 0)
		r.transition(i, func(st *PointState) {
			st.Status, st.Error, st.Round, st.RunID = StatusFailed, err.Error(), round, runID
		})
	case interrupted:
		NotePoint(StatusPending, true, 0)
		r.transition(i, func(st *PointState) {
			st.Status, st.Round, st.RunID = StatusPending, round, runID
		})
	default:
		NotePoint(StatusDone, false, time.Since(start).Seconds())
		r.transition(i, func(st *PointState) {
			st.Status, st.Round, st.RunID = StatusDone, round, runID
			st.Summary, st.Digest, st.Error = sum, SummaryDigest(sum), ""
		})
		if r.opts.Dir != "" {
			// The point's checkpoint has served its purpose; the summary
			// is the durable result now.
			os.Remove(CheckpointPath(r.opts.Dir, pt.ID))
		}
	}
}

// runLocal executes one point in process: rbb points run under the
// checkpoint machinery (resume from the point's snapshot if one exists,
// periodic + interrupt snapshots into the campaign directory), the leaky
// bins processes run to completion or replay from round zero after an
// interruption — both reproduce the identical trajectory either way.
func (r *runner) runLocal(ctx context.Context, pt Point) (*shard.Summary, int64, bool, error) {
	sp := pt.Spec
	ckptPath := ""
	if r.opts.Dir != "" && sp.Process == spec.ProcessRBB {
		ckptPath = CheckpointPath(r.opts.Dir, pt.ID)
	}
	var (
		proc spec.Process
		pipe *shard.Pipeline
	)
	if ckptPath != "" {
		if _, statErr := os.Stat(ckptPath); statErr == nil {
			snap, err := checkpoint.ReadFile(ckptPath)
			if err != nil {
				return nil, 0, false, fmt.Errorf("resume %s: %w", pt.ID, err)
			}
			// The file is keyed only by point id; cross-check its identity
			// against the spec so a stale or foreign checkpoint can never
			// impersonate this point's trajectory.
			if snap.Seed != sp.Seed || snap.Engine.N != sp.N || len(snap.Engine.Shards) != sp.Shards {
				return nil, 0, false, fmt.Errorf("resume %s: checkpoint is for (seed %d, n %d, shards %d), point wants (seed %d, n %d, shards %d)",
					pt.ID, snap.Seed, snap.Engine.N, len(snap.Engine.Shards), sp.Seed, sp.N, sp.Shards)
			}
			if proc, pipe, err = sp.Open(snap, r.opts.HostWorkers); err != nil {
				return nil, 0, false, fmt.Errorf("resume %s: %w", pt.ID, err)
			}
		}
	}
	if proc == nil {
		var err error
		if proc, err = sp.Build(r.opts.HostWorkers); err != nil {
			return nil, 0, false, err
		}
	}
	defer proc.Close()
	if pipe == nil {
		var err error
		if pipe, err = shard.NewPipeline(sp.Quantiles); err != nil {
			return nil, 0, false, err
		}
	}
	var (
		round   int64
		stopped bool
	)
	if cp, ok := proc.(checkpoint.Process); ok && sp.Process == spec.ProcessRBB {
		every := sp.CheckpointEvery
		if every == 0 {
			every = r.opts.CheckpointEvery
		}
		pol := checkpoint.Policy{Path: ckptPath, Every: every, Seed: sp.Seed, Pipeline: pipe}
		var err error
		if round, stopped, err = checkpoint.Run(ctx, cp, sp.Rounds, pol); err != nil {
			return nil, round, stopped, err
		}
	} else {
		round, stopped = engine.RunContext(ctx, proc, sp.Rounds, pipe)
	}
	if stopped {
		return nil, round, true, nil
	}
	sum := pipe.SummaryFor(proc)
	return &sum, round, false, nil
}
