// Package campaign turns single runs into phase diagrams: a versioned
// CampaignSpec declares axes over the law plane of spec.RunSpec (n, m,
// lambda, seed, process — the fields that feed ResultKey), expands
// deterministically into an ordered list of point RunSpecs, and a
// bounded-concurrency runner drives the points either in process
// (spec.Build / spec.Open + internal/checkpoint) or against a running
// rbb-serve. A campaign is resumable mid-flight: an atomic JSON manifest
// records per-point status and result digests, SIGTERM snapshots in-flight
// rbb points through the checkpoint machinery, and re-running the same
// spec skips completed points byte-identically. Completed points fold into
// a single table artifact (text + CSV + JSON) — the phase-diagram output.
//
// Axes are deliberately law-plane-only. Placement (transport, procs,
// hosts) and the observer/checkpoint knobs never perturb a trajectory, so
// sweeping them cannot produce a phase diagram — it would produce the same
// point many times under different wall-clocks. Placement is instead a
// property of the whole campaign (the Base spec's placement applies to
// every point), and can change freely between a run and its resume: the
// campaign identity hashes only the law of the expanded points.
package campaign

import (
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"strings"

	"repro/internal/spec"
)

// Version is the CampaignSpec schema version Normalize stamps. Version 0
// (the field absent) is accepted and upgraded.
const Version = 1

// Axis fields accepted by Axis.Field — exactly the sweepable law-plane
// fields of spec.RunSpec.
const (
	FieldN       = "n"
	FieldM       = "m"
	FieldLambda  = "lambda"
	FieldSeed    = "seed"
	FieldProcess = "process"
)

// MaxPoints bounds the expanded point count of one campaign; a spec
// whose axes multiply out beyond it is rejected rather than silently
// truncated.
const MaxPoints = 65536

// Axis declares one swept dimension: either an explicit list (Values for
// the numeric fields, Strings for process) or a grid (From..To with
// exactly one of Step or Factor). Grid values are materialized into
// Values by Normalize, so a normalized spec is self-describing and
// expansion arithmetic happens exactly once.
type Axis struct {
	// Field is the swept RunSpec field: n | m | lambda | seed | process.
	Field string `json:"field"`
	// Values is the explicit value list for the numeric fields. Integer
	// fields (n, m, seed) require every value to be a non-negative
	// integer below 2⁵³ (exact in float64).
	Values []float64 `json:"values,omitempty"`
	// Strings is the explicit value list for the process field
	// (rbb | tetris | batches).
	Strings []string `json:"strings,omitempty"`
	// From..To with Step > 0 is an additive grid (From, From+Step, …,
	// ≤ To); with Factor > 1 a multiplicative grid (From, From·Factor,
	// …, ≤ To). Exactly one of Step/Factor; numeric fields only.
	From   float64 `json:"from,omitempty"`
	To     float64 `json:"to,omitempty"`
	Step   float64 `json:"step,omitempty"`
	Factor float64 `json:"factor,omitempty"`
}

// CampaignSpec is one campaign submission: a base RunSpec plus the axes
// swept over it. Axis order is significant — expansion is the Cartesian
// product in declared order, last axis fastest, with seed replicas as the
// implicit innermost axis.
type CampaignSpec struct {
	// Version is the schema version (0 = pre-versioning, upgraded by
	// Normalize).
	Version int `json:"version,omitempty"`
	// Name labels the campaign in artifacts and status output.
	Name string `json:"name,omitempty"`
	// Base is the point template: each point copies it, substitutes the
	// axis values, then normalizes. Base placement applies to every
	// point and — like all placement — never affects results.
	Base spec.RunSpec `json:"base"`
	// Axes are the swept dimensions, outermost first.
	Axes []Axis `json:"axes,omitempty"`
	// Replicas ≥ 1 (default 1) runs each axis combination Replicas
	// times with seeds base+0 … base+Replicas-1 (offsets applied after
	// any seed axis), as the implicit innermost axis.
	Replicas int `json:"replicas,omitempty"`
	// Concurrency is the runner's concurrent-point budget (default 1).
	// Scheduling plane: it is excluded from the campaign identity and
	// can change between run and resume.
	Concurrency int `json:"concurrency,omitempty"`
}

// Point is one expanded campaign point: a fully normalized RunSpec plus
// its position and coordinates on the campaign's axes.
type Point struct {
	// Index is the point's position in expansion order.
	Index int `json:"index"`
	// ID is the point's stable identity — a pure function of Index and
	// the point spec's ResultKey, so the same CampaignSpec produces the
	// same IDs on every platform, forever. Checkpoint files and manifest
	// entries are keyed by it.
	ID string `json:"id"`
	// Coords are the formatted axis values of this point, parallel to
	// Plan.AxisNames (replica coordinate last when Replicas > 1).
	Coords []string `json:"coords"`
	// Spec is the point's normalized RunSpec.
	Spec spec.RunSpec `json:"spec"`
}

// Plan is the deterministic expansion of a CampaignSpec.
type Plan struct {
	// ID is the campaign identity: an FNV-1a hash over the ordered
	// ResultKeys of every point. It covers exactly the law — two specs
	// expanding to the same ordered law points share an ID regardless of
	// placement, concurrency or grid-vs-list spelling, and a resume
	// directory is validated against it.
	ID string
	// AxisNames are the swept field names in axis order, plus "replica"
	// when Replicas > 1.
	AxisNames []string
	// Points are the expanded points in expansion order.
	Points []Point
}

// integerField reports whether the axis field holds integers.
func integerField(f string) bool { return f == FieldN || f == FieldM || f == FieldSeed }

// maxExactInt is the largest float64 that still represents every smaller
// non-negative integer exactly (2⁵³).
const maxExactInt = float64(1 << 53)

// normalizeAxis validates one axis and materializes grids into Values.
func normalizeAxis(a *Axis) error {
	switch a.Field {
	case FieldN, FieldM, FieldLambda, FieldSeed:
		if len(a.Strings) > 0 {
			return fmt.Errorf("axis %q: strings apply only to the process axis", a.Field)
		}
	case FieldProcess:
		if len(a.Values) > 0 || a.Step != 0 || a.Factor != 0 || a.From != 0 || a.To != 0 {
			return fmt.Errorf("axis process: takes strings only")
		}
		if len(a.Strings) == 0 {
			return fmt.Errorf("axis process: needs at least one value")
		}
		for _, s := range a.Strings {
			switch s {
			case spec.ProcessRBB, spec.ProcessTetris, spec.ProcessBatches:
			default:
				return fmt.Errorf("axis process: unknown process %q", s)
			}
		}
		return nil
	default:
		return fmt.Errorf("unknown axis field %q (want %s|%s|%s|%s|%s — law-plane fields only)",
			a.Field, FieldN, FieldM, FieldLambda, FieldSeed, FieldProcess)
	}
	grid := a.Step != 0 || a.Factor != 0 || a.From != 0 || a.To != 0
	if len(a.Values) > 0 {
		if grid {
			return fmt.Errorf("axis %q: values and from/to grid are mutually exclusive", a.Field)
		}
	} else {
		if !grid {
			return fmt.Errorf("axis %q: needs values or a from/to grid", a.Field)
		}
		if a.Step != 0 && a.Factor != 0 {
			return fmt.Errorf("axis %q: step and factor are mutually exclusive", a.Field)
		}
		if a.To < a.From {
			return fmt.Errorf("axis %q: need to >= from, got %v < %v", a.Field, a.To, a.From)
		}
		switch {
		case a.Step > 0:
			// From + i·Step (not an accumulating sum), so every value is
			// one multiply-add from the spec — deterministic across
			// platforms and immune to accumulation drift.
			for i := 0; ; i++ {
				v := a.From + float64(i)*a.Step
				if v > a.To {
					break
				}
				a.Values = append(a.Values, v)
				if len(a.Values) > MaxPoints {
					return fmt.Errorf("axis %q: more than %d grid values", a.Field, MaxPoints)
				}
			}
		case a.Factor > 1:
			if a.From <= 0 {
				return fmt.Errorf("axis %q: factor grid needs from > 0", a.Field)
			}
			for v := a.From; v <= a.To; v *= a.Factor {
				a.Values = append(a.Values, v)
				if len(a.Values) > MaxPoints {
					return fmt.Errorf("axis %q: more than %d grid values", a.Field, MaxPoints)
				}
			}
		default:
			return fmt.Errorf("axis %q: need step > 0 or factor > 1", a.Field)
		}
		a.From, a.To, a.Step, a.Factor = 0, 0, 0, 0
	}
	for _, v := range a.Values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("axis %q: non-finite value", a.Field)
		}
		if integerField(a.Field) {
			if v < 0 || v != math.Trunc(v) || v >= maxExactInt {
				return fmt.Errorf("axis %q: value %v is not a non-negative integer below 2^53", a.Field, v)
			}
		}
	}
	return nil
}

// Normalize fills defaults in place and validates the campaign: known
// schema version, valid law-plane axes (grids materialized into explicit
// Values), no duplicate axis fields, Replicas and Concurrency ≥ 1. Point
// specs are validated later, by Expand, because axis substitution decides
// which RunSpec invariants apply. Normalize is idempotent.
func (cs *CampaignSpec) Normalize() error {
	if cs.Version < 0 || cs.Version > Version {
		return fmt.Errorf("unsupported campaign version %d (this build speaks <= %d)", cs.Version, Version)
	}
	cs.Version = Version
	seen := map[string]bool{}
	for i := range cs.Axes {
		if err := normalizeAxis(&cs.Axes[i]); err != nil {
			return err
		}
		if seen[cs.Axes[i].Field] {
			return fmt.Errorf("duplicate axis over %q", cs.Axes[i].Field)
		}
		seen[cs.Axes[i].Field] = true
	}
	if cs.Replicas == 0 {
		cs.Replicas = 1
	}
	if cs.Replicas < 1 {
		return fmt.Errorf("need replicas >= 1, got %d", cs.Replicas)
	}
	if cs.Concurrency == 0 {
		cs.Concurrency = 1
	}
	if cs.Concurrency < 1 {
		return fmt.Errorf("need concurrency >= 1, got %d", cs.Concurrency)
	}
	return nil
}

// axisLen returns an axis's value count.
func axisLen(a Axis) int {
	if a.Field == FieldProcess {
		return len(a.Strings)
	}
	return len(a.Values)
}

// formatCoord renders one axis value as a coordinate label (also used as
// an aggregate-table cell, so integers render without decimals).
func formatCoord(a Axis, i int) string {
	if a.Field == FieldProcess {
		return a.Strings[i]
	}
	v := a.Values[i]
	if integerField(a.Field) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// apply substitutes one axis value into a point spec.
func apply(sp *spec.RunSpec, a Axis, i int) {
	switch a.Field {
	case FieldN:
		sp.N = int(a.Values[i])
	case FieldM:
		sp.M = int(a.Values[i])
	case FieldLambda:
		sp.Lambda = a.Values[i]
	case FieldSeed:
		sp.Seed = uint64(a.Values[i])
	case FieldProcess:
		sp.Process = a.Strings[i]
	}
}

// Expand normalizes the campaign in place and expands it into its plan:
// the Cartesian product of the axes in declared order (last axis fastest),
// replicas innermost, each point's spec normalized independently. The
// expansion — point order, IDs, coordinates and the campaign ID — is a
// pure function of the spec: no clock, host or scheduling state feeds it.
func (cs *CampaignSpec) Expand() (*Plan, error) {
	if err := cs.Normalize(); err != nil {
		return nil, err
	}
	total := cs.Replicas
	for _, a := range cs.Axes {
		total *= axisLen(a)
		if total > MaxPoints {
			return nil, fmt.Errorf("campaign expands to more than %d points", MaxPoints)
		}
	}
	plan := &Plan{Points: make([]Point, 0, total)}
	for _, a := range cs.Axes {
		plan.AxisNames = append(plan.AxisNames, a.Field)
	}
	if cs.Replicas > 1 {
		plan.AxisNames = append(plan.AxisNames, "replica")
	}
	// Odometer over axis value indices, last axis fastest.
	idx := make([]int, len(cs.Axes))
	h := fnv.New64a()
	for {
		for r := 0; r < cs.Replicas; r++ {
			sp := cs.Base
			// Slice fields of the base are shared across points; they are
			// never mutated, but give each point its own quantile slice so
			// a stored manifest cannot alias another point's.
			sp.Quantiles = append([]float64(nil), cs.Base.Quantiles...)
			coords := make([]string, 0, len(plan.AxisNames))
			for ai, a := range cs.Axes {
				apply(&sp, a, idx[ai])
				coords = append(coords, formatCoord(a, idx[ai]))
			}
			sp.Seed += uint64(r)
			if cs.Replicas > 1 {
				coords = append(coords, strconv.Itoa(r))
			}
			if err := sp.Normalize(0); err != nil {
				return nil, fmt.Errorf("point %d (%s): %w", len(plan.Points), strings.Join(coords, ","), err)
			}
			i := len(plan.Points)
			key := sp.ResultKey()
			plan.Points = append(plan.Points, Point{
				Index:  i,
				ID:     pointID(i, key),
				Coords: coords,
				Spec:   sp,
			})
			h.Write([]byte(key))
			h.Write([]byte{'\n'})
		}
		// Advance the odometer; no axes means exactly one combination.
		ai := len(idx) - 1
		for ; ai >= 0; ai-- {
			idx[ai]++
			if idx[ai] < axisLen(cs.Axes[ai]) {
				break
			}
			idx[ai] = 0
		}
		if ai < 0 {
			break
		}
	}
	plan.ID = fmt.Sprintf("%016x", h.Sum64())
	return plan, nil
}

// pointID derives a point's identity from its expansion index and its
// spec's ResultKey: "p00042-<fnv64a of the key>". The index keeps IDs
// unique even when two points share a law (duplicate axis values are
// allowed); the key hash makes the ID meaningful across campaigns.
func pointID(index int, resultKey string) string {
	h := fnv.New64a()
	h.Write([]byte(resultKey))
	return fmt.Sprintf("p%05d-%016x", index, h.Sum64())
}
