package campaign

import (
	"context"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/spec"
)

// testSpec is the runner tests' small but non-trivial campaign: rbb over
// an n axis with seed replicas, sharded, with quantile sketches whose
// accumulator state must survive a mid-point snapshot.
func testSpec() CampaignSpec {
	return CampaignSpec{
		Name: "runner-test",
		Base: spec.RunSpec{Seed: 5, Rounds: 300, Shards: 2, Quantiles: []float64{0.5, 0.9}},
		Axes: []Axis{
			{Field: FieldN, Values: []float64{64, 128}},
		},
		Replicas:    2,
		Concurrency: 2,
	}
}

// readArtifacts returns the three aggregate artifacts of a campaign dir.
func readArtifacts(t *testing.T, dir string) map[string][]byte {
	t.Helper()
	out := map[string][]byte{}
	for _, name := range []string{ArtifactText, ArtifactCSV, ArtifactJSON} {
		blob, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		out[name] = blob
	}
	return out
}

// TestRunComplete runs a campaign to completion and checks the result
// surface: every point done with a digest, artifacts on disk, checkpoints
// cleaned up, and the aggregate table shaped like the phase diagram.
func TestRunComplete(t *testing.T) {
	dir := t.TempDir()
	cs := testSpec()
	res, err := Run(context.Background(), cs, Options{Dir: dir, CheckpointEvery: 64})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stopped || res.Failed != 0 || res.Done != 4 {
		t.Fatalf("result = done %d failed %d stopped %v", res.Done, res.Failed, res.Stopped)
	}
	for _, st := range res.Points {
		if st.Status != StatusDone || st.Summary == nil || st.Digest == "" || st.Round != 300 {
			t.Fatalf("point %s = %+v", st.ID, st)
		}
		if _, err := os.Stat(CheckpointPath(dir, st.ID)); !os.IsNotExist(err) {
			t.Errorf("point %s left its checkpoint behind", st.ID)
		}
	}
	if res.Table == nil {
		t.Fatal("no aggregate table")
	}
	wantCols := []string{"n", "replicas", "window_max_mean", "window_max_max", "empty_min", "empty_mean", "p50_mean", "p90_mean"}
	if got := strings.Join(res.Table.Columns, ","); got != strings.Join(wantCols, ",") {
		t.Errorf("aggregate columns = %v", res.Table.Columns)
	}
	if res.Table.NumRows() != 2 {
		t.Errorf("aggregate rows = %d, want 2 (one per n)", res.Table.NumRows())
	}
	readArtifacts(t, dir) // all three must exist
}

// TestKillAndResume is the resumability contract: a campaign interrupted
// mid-flight (first point barely started — the checkpoint machinery
// snapshots it at the next round boundary) and then resumed produces
// aggregate artifacts byte-identical to an uninterrupted campaign, with
// completed points skipped rather than re-run.
func TestKillAndResume(t *testing.T) {
	// Reference: uninterrupted campaign.
	refDir := t.TempDir()
	cs := testSpec()
	if _, err := Run(context.Background(), cs, Options{Dir: refDir, CheckpointEvery: 64}); err != nil {
		t.Fatal(err)
	}
	ref := readArtifacts(t, refDir)

	// Interrupted campaign: cancel as soon as the first point starts
	// running, so in-flight points stop at their next round boundary with
	// an interrupt snapshot and the rest never start.
	dir := t.TempDir()
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	cs2 := testSpec()
	res, err := Run(ctx, cs2, Options{Dir: dir, CheckpointEvery: 64, OnPoint: func(st PointState) {
		if st.Status == StatusRunning {
			once.Do(cancel)
		}
	}})
	cancel()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped {
		t.Fatal("campaign with cancelled context did not report Stopped")
	}
	pending := 0
	for _, st := range res.Points {
		if st.Status == StatusPending {
			pending++
		}
		if st.Status == StatusRunning {
			t.Errorf("point %s left in running state", st.ID)
		}
	}
	if pending == 0 {
		t.Fatal("interruption left no pending points; resume would be trivial")
	}

	// Resume from the manifest: done points skipped, interrupted ones
	// continue from their snapshots, the rest run fresh.
	var mu sync.Mutex
	reran := map[string]bool{}
	cs3 := testSpec()
	res2, err := Run(context.Background(), cs3, Options{Dir: dir, CheckpointEvery: 64, OnPoint: func(st PointState) {
		if st.Status == StatusRunning {
			mu.Lock()
			reran[st.ID] = true
			mu.Unlock()
		}
	}})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Stopped || res2.Done != len(res2.Points) {
		t.Fatalf("resume = done %d/%d stopped %v", res2.Done, len(res2.Points), res2.Stopped)
	}
	for _, st := range res.Points {
		if st.Status == StatusDone && reran[st.ID] {
			t.Errorf("resume re-ran completed point %s", st.ID)
		}
	}

	// The headline equivalence: byte-identical artifacts.
	got := readArtifacts(t, dir)
	for name, want := range ref {
		if string(got[name]) != string(want) {
			t.Errorf("%s differs between interrupted+resumed and uninterrupted campaign:\n--- resumed\n%s\n--- reference\n%s",
				name, got[name], want)
		}
	}

	// And per-point digests match the reference runs point for point.
	refRes, err := ReadManifest(refDir)
	if err != nil {
		t.Fatal(err)
	}
	gotRes, err := ReadManifest(dir)
	if err != nil {
		t.Fatal(err)
	}
	for i := range refRes.Points {
		if refRes.Points[i].Digest != gotRes.Points[i].Digest {
			t.Errorf("point %s digest drifted across kill-and-resume", refRes.Points[i].ID)
		}
	}
}

// TestResumeRejectsForeignDir: a directory holding a different campaign's
// manifest is refused rather than silently mixed.
func TestResumeRejectsForeignDir(t *testing.T) {
	dir := t.TempDir()
	cs := testSpec()
	if _, err := Run(context.Background(), cs, Options{Dir: dir}); err != nil {
		t.Fatal(err)
	}
	other := testSpec()
	other.Base.Seed = 999
	if _, err := Run(context.Background(), other, Options{Dir: dir}); err == nil || !strings.Contains(err.Error(), "refusing to mix") {
		t.Errorf("foreign dir accepted: %v", err)
	}
}

// TestPointFailureContinues: a failing point (unreachable placement
// hosts) is recorded and the campaign completes the other points.
func TestPointFailureContinues(t *testing.T) {
	cs := CampaignSpec{
		Base: spec.RunSpec{Seed: 2, N: 32, Rounds: 8, Shards: 2},
		Axes: []Axis{{Field: FieldSeed, Values: []float64{1, 2}}},
	}
	// The second point's law is fine but every point shares the base
	// placement; instead, fail just one point by pre-poisoning its
	// checkpoint with a foreign identity.
	dir := t.TempDir()
	plan, err := cs.Expand()
	if err != nil {
		t.Fatal(err)
	}
	// Run once to produce a real checkpoint we can misuse: campaign with
	// seed 1 only, interrupted immediately so a snapshot exists.
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	cs1 := cs
	if _, err := Run(ctx, cs1, Options{Dir: dir, OnPoint: func(st PointState) { once.Do(cancel) }}); err != nil {
		t.Fatal(err)
	}
	cancel()
	snapPath := ""
	for _, pt := range plan.Points {
		if _, err := os.Stat(CheckpointPath(dir, pt.ID)); err == nil {
			snapPath = CheckpointPath(dir, pt.ID)
			break
		}
	}
	if snapPath == "" {
		t.Skip("no interrupt snapshot materialized; nothing to poison")
	}
	// Fresh campaign dir with the stale snapshot planted under the wrong
	// point id (a different seed's point).
	dir2 := t.TempDir()
	victim := plan.Points[1]
	if victim.Spec.Seed == 1 {
		victim = plan.Points[0]
	}
	blob, err := os.ReadFile(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(CheckpointPath(dir2, victim.ID), blob, 0o644); err != nil {
		t.Fatal(err)
	}
	cs2 := cs
	res, err := Run(context.Background(), cs2, Options{Dir: dir2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Failed != 1 || res.Done != len(res.Points)-1 {
		t.Fatalf("result = done %d failed %d, want %d done 1 failed", res.Done, res.Failed, len(res.Points)-1)
	}
	for _, st := range res.Points {
		if st.Status == StatusFailed && !strings.Contains(st.Error, "checkpoint is for") {
			t.Errorf("unexpected failure cause: %s", st.Error)
		}
	}
}
