package campaign

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
	"repro/internal/shard"
)

// PointStatus is the lifecycle state of one campaign point.
type PointStatus string

// Point lifecycle. There is no persisted "running": a crash mid-point
// leaves the manifest saying pending (plus whatever checkpoint the point
// wrote), which is exactly what resume needs to believe.
const (
	StatusPending PointStatus = "pending"
	StatusRunning PointStatus = "running"
	StatusDone    PointStatus = "done"
	StatusFailed  PointStatus = "failed"
)

// PointState is the durable record of one point in the campaign manifest.
type PointState struct {
	// ID and Index identify the point (see Point).
	ID    string `json:"id"`
	Index int    `json:"index"`
	// Coords are the point's axis coordinates, copied from the plan so
	// status output is self-describing.
	Coords []string `json:"coords"`
	// Status is the point's lifecycle state.
	Status PointStatus `json:"status"`
	// Round is the last known completed round: the snapshot round of an
	// interrupted point, the target of a done one.
	Round int64 `json:"round,omitempty"`
	// Summary is the point's result once done.
	Summary *shard.Summary `json:"summary,omitempty"`
	// Digest is the SHA-256 of the summary's canonical JSON encoding:
	// the byte-identity that kill-and-resume equivalence is pinned on.
	Digest string `json:"digest,omitempty"`
	// RunID is the remote run's identity when the point executes against
	// an rbb-serve (resume re-attaches to it instead of re-submitting).
	RunID string `json:"run_id,omitempty"`
	// Error is the failure cause when Status is failed.
	Error string `json:"error,omitempty"`
}

// Manifest is the campaign's durable state: the (normalized) spec that
// produced it, the campaign identity it was expanded to, and one state
// per point. It is written atomically on every transition, so a crash at
// any moment leaves a loadable manifest.
type Manifest struct {
	Version    int          `json:"version"`
	CampaignID string       `json:"campaign_id"`
	Spec       CampaignSpec `json:"spec"`
	Points     []PointState `json:"points"`
}

// ManifestName is the manifest filename inside a campaign directory.
const ManifestName = "campaign.json"

// ManifestPath returns the manifest path of a campaign directory.
func ManifestPath(dir string) string { return filepath.Join(dir, ManifestName) }

// CheckpointPath returns the checkpoint path of one point inside a
// campaign directory.
func CheckpointPath(dir, pointID string) string {
	return filepath.Join(dir, pointID+".ckpt")
}

// SummaryDigest computes the SHA-256 hex digest of a summary's canonical
// JSON encoding. Summaries are byte-deterministic functions of the
// trajectory, so equal digests mean byte-equal results.
func SummaryDigest(sum *shard.Summary) string {
	blob, err := json.Marshal(sum)
	if err != nil {
		// shard.Summary is a flat struct of numbers; Marshal cannot fail.
		panic(fmt.Sprintf("campaign: marshal summary: %v", err))
	}
	d := sha256.Sum256(blob)
	return hex.EncodeToString(d[:])
}

// newManifest builds a fresh all-pending manifest for a plan.
func newManifest(cs CampaignSpec, plan *Plan) *Manifest {
	m := &Manifest{Version: Version, CampaignID: plan.ID, Spec: cs}
	for _, pt := range plan.Points {
		m.Points = append(m.Points, PointState{
			ID: pt.ID, Index: pt.Index, Coords: pt.Coords, Status: StatusPending,
		})
	}
	return m
}

// WriteManifest atomically persists the manifest into dir.
func WriteManifest(dir string, m *Manifest) error {
	return atomicio.WriteFile(ManifestPath(dir), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// ReadManifest loads the manifest of a campaign directory. A missing
// file returns (nil, nil): the directory holds no campaign yet.
func ReadManifest(dir string) (*Manifest, error) {
	blob, err := os.ReadFile(ManifestPath(dir))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	var m Manifest
	if err := json.Unmarshal(blob, &m); err != nil {
		return nil, fmt.Errorf("campaign: parse manifest: %w", err)
	}
	if m.Version < 1 || m.Version > Version {
		return nil, fmt.Errorf("campaign: unsupported manifest version %d", m.Version)
	}
	return &m, nil
}

// reconcile merges a loaded manifest into a fresh plan expansion,
// validating that the directory holds this campaign. Done and failed
// points keep their stored state; a point the previous process left
// "running" (it crashed without the SIGTERM path) drops back to pending —
// its checkpoint, if any, carries the progress.
func reconcile(m *Manifest, plan *Plan) ([]PointState, error) {
	if m.CampaignID != plan.ID {
		return nil, fmt.Errorf("campaign: directory holds campaign %s, spec expands to %s (refusing to mix manifests)",
			m.CampaignID, plan.ID)
	}
	if len(m.Points) != len(plan.Points) {
		return nil, fmt.Errorf("campaign: manifest has %d points, plan %d", len(m.Points), len(plan.Points))
	}
	states := make([]PointState, len(plan.Points))
	for i, pt := range plan.Points {
		st := m.Points[i]
		if st.ID != pt.ID {
			return nil, fmt.Errorf("campaign: manifest point %d is %s, plan expects %s", i, st.ID, pt.ID)
		}
		if st.Status == StatusRunning {
			st.Status = StatusPending
		}
		st.Coords = pt.Coords
		states[i] = st
	}
	return states, nil
}
