package campaign

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"repro/internal/shard"
	"repro/internal/spec"
)

// remoteRun mirrors the rbb-serve RunInfo fields the campaign driver
// needs. It is deliberately a local copy, not an import: serve imports
// campaign for its /v1/campaigns surface, so campaign cannot import serve.
type remoteRun struct {
	ID      string         `json:"id"`
	Status  string         `json:"status"`
	Round   int64          `json:"round"`
	Error   string         `json:"error,omitempty"`
	Summary *shard.Summary `json:"summary,omitempty"`
}

// client executes campaign points against a running rbb-serve. Identical
// law points (seed-replica axes over a cached law, resubmitted resumes)
// hit the server's result cache and come back instantly.
type client struct {
	base string
	hc   *http.Client
	// poll is the run status poll period (tests shrink it).
	poll time.Duration
}

func newClient(base string) *client {
	return &client{base: strings.TrimRight(base, "/"), hc: &http.Client{}, poll: 150 * time.Millisecond}
}

// submit posts one point spec, returning the new run's identity.
func (c *client) submit(ctx context.Context, sp spec.RunSpec) (string, error) {
	body, err := json.Marshal(sp)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/v1/runs", bytes.NewReader(body))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	var info remoteRun
	if err := c.do(req, http.StatusAccepted, &info); err != nil {
		return "", fmt.Errorf("submit: %w", err)
	}
	return info.ID, nil
}

// get fetches one run's state.
func (c *client) get(ctx context.Context, runID string) (*remoteRun, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/v1/runs/"+runID, nil)
	if err != nil {
		return nil, err
	}
	var info remoteRun
	if err := c.do(req, http.StatusOK, &info); err != nil {
		return nil, err
	}
	return &info, nil
}

// do executes a request and decodes the JSON body, surfacing non-want
// statuses with the server's error text.
func (c *client) do(req *http.Request, want int, out any) error {
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode != want {
		return fmt.Errorf("%s %s: %s: %s", req.Method, req.URL.Path, resp.Status, strings.TrimSpace(string(body)))
	}
	return json.Unmarshal(body, out)
}

// runPoint drives one point remotely: submit (or re-attach to runID from
// an interrupted campaign), then poll until the run is terminal. A
// cancelled ctx reports interruption and keeps the remote run going — the
// server owns its durability, and resume re-attaches by run id (or, if
// the server lost it to retention, resubmits and rides the result cache).
func (c *client) runPoint(ctx context.Context, sp spec.RunSpec, runID string) (sum *shard.Summary, round int64, id string, interrupted bool, err error) {
	if runID != "" {
		// Re-attach: a vanished run (404 after retention GC) falls back to
		// a fresh submission of the same law.
		if _, err := c.get(ctx, runID); err != nil {
			if ctx.Err() != nil {
				return nil, 0, runID, true, nil
			}
			runID = ""
		}
	}
	if runID == "" {
		runID, err = c.submit(ctx, sp)
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0, "", true, nil
			}
			return nil, 0, "", false, err
		}
	}
	t := time.NewTicker(c.poll)
	defer t.Stop()
	for {
		info, err := c.get(ctx, runID)
		if err != nil {
			if ctx.Err() != nil {
				return nil, 0, runID, true, nil
			}
			return nil, 0, runID, false, err
		}
		switch info.Status {
		case "done":
			return info.Summary, info.Round, runID, false, nil
		case "failed":
			return nil, info.Round, runID, false, fmt.Errorf("remote run %s failed: %s", runID, info.Error)
		case "cancelled":
			return nil, info.Round, runID, false, fmt.Errorf("remote run %s was cancelled", runID)
		}
		select {
		case <-ctx.Done():
			return nil, info.Round, runID, true, nil
		case <-t.C:
		}
	}
}
