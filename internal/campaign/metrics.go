package campaign

import "repro/internal/obs"

// Campaign telemetry: terminal point counts by status plus a wall-clock
// duration histogram per completed point. Point rates are human-scale
// (seconds to hours per point), nowhere near the simulation hot path, but
// the increments still honor the global obs switch so disabled-telemetry
// runs stay increment-free.
var (
	mPointsDone = obs.Default.Counter("rbb_campaign_points_total",
		"Campaign points by outcome.", obs.Label{Key: "status", Value: "done"})
	mPointsFailed = obs.Default.Counter("rbb_campaign_points_total",
		"Campaign points by outcome.", obs.Label{Key: "status", Value: "failed"})
	mPointsInterrupted = obs.Default.Counter("rbb_campaign_points_total",
		"Campaign points by outcome.", obs.Label{Key: "status", Value: "interrupted"})
	mPointSeconds = obs.Default.Histogram("rbb_campaign_point_seconds",
		"Wall-clock duration of one completed campaign point.", nil)
)

// NotePoint records one point outcome. interrupted marks a point whose
// run was stopped mid-flight (it stays pending in the manifest). Exported
// so out-of-package schedulers (the serve campaign driver) feed the same
// counters as the in-process runner.
func NotePoint(st PointStatus, interrupted bool, seconds float64) {
	if !obs.Enabled() {
		return
	}
	switch {
	case interrupted:
		mPointsInterrupted.Inc()
	case st == StatusDone:
		mPointsDone.Inc()
		mPointSeconds.Observe(seconds)
	case st == StatusFailed:
		mPointsFailed.Inc()
	}
}
