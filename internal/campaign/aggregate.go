package campaign

import (
	"fmt"
	"io"
	"math"
	"path/filepath"
	"strconv"
	"strings"

	"repro/internal/atomicio"
	"repro/internal/stats"
	"repro/internal/table"
)

// Aggregate folds a fully-done campaign into its phase-diagram table: one
// row per axis combination, replicas collapsed into per-cell statistics
// (mean window max and its across-replica max, min/mean empty-bin
// fractions, mean per-quantile estimates). Row order is expansion order
// and every cell is a deterministic function of the point summaries, so
// the rendered artifact is byte-identical across runs, resumes and
// platforms — the property the kill-and-resume equivalence gate pins.
func Aggregate(cs CampaignSpec, plan *Plan, states []PointState) (*table.Table, error) {
	if len(states) != len(plan.Points) {
		return nil, fmt.Errorf("campaign: aggregate over %d states for %d points", len(states), len(plan.Points))
	}
	for i := range states {
		if states[i].Status != StatusDone || states[i].Summary == nil {
			return nil, fmt.Errorf("campaign: point %s is %s, aggregation needs every point done", states[i].ID, states[i].Status)
		}
	}
	r := cs.Replicas
	if r < 1 {
		r = 1
	}
	axes := plan.AxisNames
	if r > 1 {
		axes = axes[:len(axes)-1] // the replica coordinate collapses
	}
	first := states[0].Summary
	cols := append([]string{}, axes...)
	cols = append(cols, "replicas", "window_max_mean", "window_max_max", "empty_min", "empty_mean")
	for _, q := range first.Quantiles {
		cols = append(cols, qLabel(q.P)+"_mean")
	}
	title := cs.Name
	if title == "" {
		title = "campaign " + plan.ID
	}
	tb := table.New(title, cols...)
	for g := 0; g < len(states); g += r {
		var window, empty stats.Stream
		emptyMin := math.Inf(1)
		windowMax := int32(0)
		qmeans := make([]stats.Stream, len(first.Quantiles))
		for i := g; i < g+r; i++ {
			s := states[i].Summary
			if len(s.Quantiles) != len(first.Quantiles) {
				return nil, fmt.Errorf("campaign: point %s tracks %d quantiles, expected %d", states[i].ID, len(s.Quantiles), len(first.Quantiles))
			}
			window.Add(float64(s.WindowMax))
			if s.WindowMax > windowMax {
				windowMax = s.WindowMax
			}
			if s.EmptyMin < emptyMin {
				emptyMin = s.EmptyMin
			}
			empty.Add(s.EmptyMean)
			for qi, q := range s.Quantiles {
				qmeans[qi].Add(q.Estimate)
			}
		}
		row := make([]any, 0, len(cols))
		for _, c := range plan.Points[g].Coords[:len(axes)] {
			row = append(row, c)
		}
		row = append(row, r, window.Mean(), windowMax, emptyMin, empty.Mean())
		for qi := range qmeans {
			row = append(row, qmeans[qi].Mean())
		}
		tb.AddRow(row...)
	}
	tb.AddNote(fmt.Sprintf("campaign %s: %d points (%d combinations x %d replicas)",
		plan.ID, len(states), len(states)/r, r))
	return tb, nil
}

// qLabel renders a quantile probability as a column label: 0.5 → "p50",
// 0.999 → "p99.9". Same rounding rule as the shard pipeline's labels, so
// binary floating point cannot leak into a column name.
func qLabel(p float64) string {
	return "p" + strings.TrimSuffix(strconv.FormatFloat(math.Round(p*1000)/10, 'f', -1, 64), ".0")
}

// Artifact filenames WriteArtifacts emits into a campaign directory.
const (
	ArtifactText = "aggregate.txt"
	ArtifactCSV  = "aggregate.csv"
	ArtifactJSON = "aggregate.json"
)

// WriteArtifacts atomically renders the aggregate table into dir in all
// three artifact forms.
func WriteArtifacts(dir string, tb *table.Table) error {
	for name, f := range map[string]table.Format{
		ArtifactText: table.Text,
		ArtifactCSV:  table.CSV,
		ArtifactJSON: table.JSON,
	} {
		err := atomicio.WriteFile(filepath.Join(dir, name), func(w io.Writer) error {
			return tb.RenderAs(w, f)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
