package campaign

import (
	"context"
	"runtime"
	"testing"

	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/spec"
)

// benchSpec is the scheduling-overhead grid: 16 tiny points, so the
// campaign machinery (expansion, manifest-free transitions, the worker
// pool) is a visible fraction of the work rather than noise under it.
func benchSpec(conc int) CampaignSpec {
	return CampaignSpec{
		Base: spec.RunSpec{Seed: 1, Rounds: 200, Shards: 1},
		Axes: []Axis{
			{Field: FieldN, Values: []float64{64, 128, 256, 512}},
		},
		Replicas:    4,
		Concurrency: conc,
	}
}

// BenchmarkCampaignScheduler runs the grid through the campaign worker
// pool (in-memory, GOMAXPROCS concurrency): the cost of a swept phase
// diagram as users run it.
func BenchmarkCampaignScheduler(b *testing.B) {
	cs := benchSpec(runtime.GOMAXPROCS(0))
	for i := 0; i < b.N; i++ {
		res, err := Run(context.Background(), cs, Options{})
		if err != nil {
			b.Fatal(err)
		}
		if res.Done != 16 {
			b.Fatalf("done = %d", res.Done)
		}
	}
}

// BenchmarkCampaignSequential runs the identical 16 points back to back
// with no campaign machinery at all — the floor the scheduler's overhead
// is measured against (at concurrency 1 the difference IS the overhead;
// at GOMAXPROCS the scheduler should beat this floor on multi-core).
func BenchmarkCampaignSequential(b *testing.B) {
	cs := benchSpec(1)
	plan, err := cs.Expand()
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, pt := range plan.Points {
			p, err := pt.Spec.Build(0)
			if err != nil {
				b.Fatal(err)
			}
			pipe, err := shard.NewPipeline(pt.Spec.Quantiles)
			if err != nil {
				b.Fatal(err)
			}
			engine.Run(p, pt.Spec.Rounds, pipe)
			sum := pipe.SummaryFor(p)
			if sum.Rounds != pt.Spec.Rounds {
				b.Fatalf("rounds = %d", sum.Rounds)
			}
			p.Close()
		}
	}
}

// BenchmarkCampaignExpand measures expansion alone: the pure-function
// spec → plan lowering (axis normalization, odometer product, point IDs,
// the campaign law hash) for the 16-point grid.
func BenchmarkCampaignExpand(b *testing.B) {
	cs := benchSpec(1)
	for i := 0; i < b.N; i++ {
		plan, err := cs.Expand()
		if err != nil {
			b.Fatal(err)
		}
		if len(plan.Points) != 16 {
			b.Fatalf("points = %d", len(plan.Points))
		}
	}
}
