package campaign

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/spec"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the expansion golden fixture")

// zipfLambdas derives a λ axis from the Zipf sampler: deterministic,
// platform-independent values in (0, 1) with heavy-tailed spacing —
// exactly the axis shape the ROADMAP's "heavy-tailed Zipf arrival skew"
// scenario wants. Distinct samples keep the axis strictly increasing.
func zipfLambdas(count int) []float64 {
	z, err := dist.NewZipf(64, 1.2)
	if err != nil {
		panic(err)
	}
	r := rng.New(7)
	seen := map[int]bool{}
	var ranks []int
	for len(ranks) < count {
		k := z.Sample(r)
		if !seen[k] {
			seen[k] = true
			ranks = append(ranks, k)
		}
	}
	out := make([]float64, count)
	for i, k := range ranks {
		out[i] = 1 - 1/float64(k+3)
	}
	return out
}

// goldenSpec is the fixture campaign: a multiplicative n grid, an
// explicit Zipf-derived λ list, a process axis and seed replicas — every
// axis kind in one expansion.
func goldenSpec() CampaignSpec {
	return CampaignSpec{
		Name: "golden",
		Base: spec.RunSpec{Seed: 11, Rounds: 16, Shards: 2, Quantiles: []float64{0.5, 0.99}},
		Axes: []Axis{
			{Field: FieldProcess, Strings: []string{spec.ProcessTetris, spec.ProcessBatches}},
			{Field: FieldN, From: 64, To: 256, Factor: 2},
			{Field: FieldLambda, Values: zipfLambdas(3)},
		},
		Replicas: 2,
	}
}

// goldenPoint is the fixture's per-point record: everything about a
// point's identity that must never drift.
type goldenPoint struct {
	Index     int      `json:"index"`
	ID        string   `json:"id"`
	Coords    []string `json:"coords"`
	ResultKey string   `json:"result_key"`
}

type goldenPlan struct {
	CampaignID string        `json:"campaign_id"`
	AxisNames  []string      `json:"axis_names"`
	Points     []goldenPoint `json:"points"`
}

// TestExpandGolden pins the whole expansion — point order, IDs, coords,
// result keys and the campaign ID — against a committed fixture: the same
// CampaignSpec must expand identically across runs, platforms and future
// code changes (campaign IDs key resume directories forever).
func TestExpandGolden(t *testing.T) {
	cs := goldenSpec()
	plan, err := cs.Expand()
	if err != nil {
		t.Fatal(err)
	}
	got := goldenPlan{CampaignID: plan.ID, AxisNames: plan.AxisNames}
	for _, pt := range plan.Points {
		got.Points = append(got.Points, goldenPoint{
			Index: pt.Index, ID: pt.ID, Coords: pt.Coords, ResultKey: pt.Spec.ResultKey(),
		})
	}
	path := filepath.Join("testdata", "expand_golden.json")
	if *updateGolden {
		blob, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (run with -update-golden to create): %v", err)
	}
	var want goldenPlan
	if err := json.Unmarshal(blob, &want); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("expansion drifted from golden fixture:\ngot %+v\nwant %+v", got, want)
	}
}

// TestExpandDeterministic re-expands the same spec and demands identical
// plans — no map iteration, clock or allocation order may leak in.
func TestExpandDeterministic(t *testing.T) {
	a := goldenSpec()
	b := goldenSpec()
	pa, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	pb, err := b.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pb) {
		t.Error("two expansions of the same spec differ")
	}
	// And a second expansion of an already-normalized spec (grids
	// materialized) is still identical: Normalize is idempotent.
	pc, err := a.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(pa, pc) {
		t.Error("re-expanding a normalized spec differs")
	}
}

// TestExpandShape checks the structural contract: Cartesian order with
// the last axis fastest, replicas innermost offsetting the seed.
func TestExpandShape(t *testing.T) {
	cs := CampaignSpec{
		Base: spec.RunSpec{Seed: 100, Rounds: 4},
		Axes: []Axis{
			{Field: FieldN, Values: []float64{8, 16}},
			{Field: FieldSeed, Values: []float64{1, 2, 3}},
		},
		Replicas: 2,
	}
	plan, err := cs.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Points) != 2*3*2 {
		t.Fatalf("points = %d, want 12", len(plan.Points))
	}
	if !reflect.DeepEqual(plan.AxisNames, []string{"n", "seed", "replica"}) {
		t.Fatalf("axis names = %v", plan.AxisNames)
	}
	// First four points: n=8 with seed 1 (replicas 0,1) then seed 2.
	wantSeeds := []uint64{1, 2, 2, 3}
	wantN := []int{8, 8, 8, 8}
	for i := 0; i < 4; i++ {
		pt := plan.Points[i]
		if pt.Spec.N != wantN[i] || pt.Spec.Seed != wantSeeds[i] {
			t.Errorf("point %d = (n %d, seed %d), want (n %d, seed %d)",
				i, pt.Spec.N, pt.Spec.Seed, wantN[i], wantSeeds[i])
		}
		if pt.Index != i {
			t.Errorf("point %d carries index %d", i, pt.Index)
		}
	}
	// Point 6 starts the n=16 half.
	if plan.Points[6].Spec.N != 16 {
		t.Errorf("point 6 n = %d, want 16", plan.Points[6].Spec.N)
	}
	// IDs are unique even with overlapping laws (seed axis + replicas
	// collide: seed 2 appears twice in the first block).
	seen := map[string]bool{}
	for _, pt := range plan.Points {
		if seen[pt.ID] {
			t.Errorf("duplicate point id %s", pt.ID)
		}
		seen[pt.ID] = true
	}
}

// TestExpandErrors exercises the validation surface.
func TestExpandErrors(t *testing.T) {
	base := spec.RunSpec{Seed: 1, Rounds: 4, N: 8}
	cases := []struct {
		name string
		cs   CampaignSpec
		want string
	}{
		{"unknown field", CampaignSpec{Base: base, Axes: []Axis{{Field: "rounds", Values: []float64{1}}}}, "law-plane"},
		{"placement axis", CampaignSpec{Base: base, Axes: []Axis{{Field: "workers", Values: []float64{1}}}}, "law-plane"},
		{"duplicate axis", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldN, Values: []float64{8}}, {Field: FieldN, Values: []float64{16}},
		}}, "duplicate axis"},
		{"values and grid", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldN, Values: []float64{8}, From: 1, To: 2, Step: 1},
		}}, "mutually exclusive"},
		{"step and factor", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldN, From: 1, To: 8, Step: 1, Factor: 2},
		}}, "mutually exclusive"},
		{"empty axis", CampaignSpec{Base: base, Axes: []Axis{{Field: FieldN}}}, "needs values"},
		{"fractional n", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldN, Values: []float64{8.5}},
		}}, "integer"},
		{"strings on n", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldN, Strings: []string{"8"}},
		}}, "strings apply only"},
		{"bad process", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldProcess, Strings: []string{"bogus"}},
		}}, "unknown process"},
		{"invalid point", CampaignSpec{Base: spec.RunSpec{Seed: 1, Rounds: 4, N: 8, M: 4}, Axes: []Axis{
			{Field: FieldProcess, Strings: []string{spec.ProcessTetris}},
		}}, "m applies only"},
		{"too many points", CampaignSpec{Base: base, Axes: []Axis{
			{Field: FieldSeed, From: 0, To: MaxPoints, Step: 1},
		}}, "more than"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			cs := c.cs
			_, err := cs.Expand()
			if err == nil || !strings.Contains(err.Error(), c.want) {
				t.Errorf("error = %v, want containing %q", err, c.want)
			}
		})
	}
}

// TestCampaignIDLawOnly: the campaign ID hashes the law of the expanded
// points — placement, concurrency and grid-vs-list spelling must not
// perturb it, and a law change must.
func TestCampaignIDLawOnly(t *testing.T) {
	mk := func(mut func(*CampaignSpec)) string {
		cs := CampaignSpec{
			Base: spec.RunSpec{Seed: 3, Rounds: 8},
			Axes: []Axis{{Field: FieldN, From: 32, To: 128, Factor: 2}},
		}
		if mut != nil {
			mut(&cs)
		}
		plan, err := cs.Expand()
		if err != nil {
			t.Fatal(err)
		}
		return plan.ID
	}
	base := mk(nil)
	if got := mk(func(cs *CampaignSpec) { cs.Concurrency = 7 }); got != base {
		t.Error("concurrency changed the campaign ID")
	}
	if got := mk(func(cs *CampaignSpec) {
		cs.Base.Placement = spec.Placement{Transport: spec.TransportSpawn}
	}); got != base {
		t.Error("placement changed the campaign ID")
	}
	if got := mk(func(cs *CampaignSpec) {
		cs.Axes = []Axis{{Field: FieldN, Values: []float64{32, 64, 128}}}
	}); got != base {
		t.Error("grid-vs-list spelling changed the campaign ID")
	}
	if got := mk(func(cs *CampaignSpec) { cs.Base.Seed = 4 }); got == base {
		t.Error("a law change kept the campaign ID")
	}
}
