// Package timeseries provides bounded-memory recorders for per-round
// simulation observables over long windows: running maxima, geometric
// checkpoints (the x-axes of the paper-shape tables E11/E14), and a
// resolution-halving decimator for full trajectories.
package timeseries

import (
	"fmt"
	"math"
)

// MaxTracker keeps the running maximum of a series and the first time the
// maximum was attained.
type MaxTracker struct {
	max     float64
	atRound int64
	n       int64
}

// Observe records value at round.
func (m *MaxTracker) Observe(round int64, value float64) {
	if m.n == 0 || value > m.max {
		m.max = value
		m.atRound = round
	}
	m.n++
}

// Max returns the running maximum (0 if nothing observed).
func (m *MaxTracker) Max() float64 { return m.max }

// ArgMax returns the first round at which the maximum was attained.
func (m *MaxTracker) ArgMax() int64 { return m.atRound }

// N returns the number of observations.
func (m *MaxTracker) N() int64 { return m.n }

// Checkpoints captures a value at geometrically spaced rounds
// t = start, start*factor, start*factor², ... It answers "what is M(t) at
// t = 1, 2, 4, 8, ..." with O(log T) memory.
type Checkpoints struct {
	times  []int64
	values []float64
	next   int64
	factor float64
}

// NewCheckpoints creates a recorder whose first checkpoint is at round
// start, each subsequent checkpoint at ceil(previous*factor). factor must be
// > 1 and start >= 1.
func NewCheckpoints(start int64, factor float64) (*Checkpoints, error) {
	if start < 1 {
		return nil, fmt.Errorf("timeseries: NewCheckpoints start = %d < 1", start)
	}
	if !(factor > 1) {
		return nil, fmt.Errorf("timeseries: NewCheckpoints factor = %v must be > 1", factor)
	}
	return &Checkpoints{next: start, factor: factor}, nil
}

// Observe records value if round is at or past the next checkpoint.
// Rounds must be fed in nondecreasing order.
func (c *Checkpoints) Observe(round int64, value float64) {
	if round < c.next {
		return
	}
	c.times = append(c.times, round)
	c.values = append(c.values, value)
	nxt := int64(math.Ceil(float64(c.next) * c.factor))
	if nxt <= c.next {
		nxt = c.next + 1
	}
	c.next = nxt
	// If the caller skipped far ahead, do not emit duplicates; jump the
	// schedule past the observed round.
	for c.next <= round {
		nxt = int64(math.Ceil(float64(c.next) * c.factor))
		if nxt <= c.next {
			nxt = c.next + 1
		}
		c.next = nxt
	}
}

// Times returns the recorded checkpoint rounds.
func (c *Checkpoints) Times() []int64 { return c.times }

// Values returns the recorded values, aligned with Times.
func (c *Checkpoints) Values() []float64 { return c.values }

// Len returns the number of recorded checkpoints.
func (c *Checkpoints) Len() int { return len(c.times) }

// Reducer combines two adjacent samples during decimation.
type Reducer func(a, b float64) float64

// MaxReduce keeps the larger sample (right for load maxima).
func MaxReduce(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// MeanReduce averages the two samples (right for fractions/rates).
func MeanReduce(a, b float64) float64 { return (a + b) / 2 }

// Decimator records a series of unknown length into a fixed budget of
// samples. When the buffer fills, resolution halves: adjacent pairs are
// combined with the Reducer and the stride doubles. The result is a uniform
// subsampling at stride 2^k with at most capacity points.
type Decimator struct {
	samples []float64
	cap     int
	stride  int64
	// pending accumulates the current stride window.
	pending      float64
	pendingCount int64
	reduce       Reducer
	total        int64
}

// NewDecimator creates a Decimator holding at most capacity samples
// (capacity must be an even number >= 2).
func NewDecimator(capacity int, reduce Reducer) (*Decimator, error) {
	if capacity < 2 || capacity%2 != 0 {
		return nil, fmt.Errorf("timeseries: NewDecimator capacity %d must be even and >= 2", capacity)
	}
	if reduce == nil {
		return nil, fmt.Errorf("timeseries: NewDecimator nil reducer")
	}
	return &Decimator{
		samples: make([]float64, 0, capacity),
		cap:     capacity,
		stride:  1,
		reduce:  reduce,
	}, nil
}

// Observe appends one sample.
func (d *Decimator) Observe(value float64) {
	d.total++
	if d.pendingCount == 0 {
		d.pending = value
	} else {
		d.pending = d.reduce(d.pending, value)
	}
	d.pendingCount++
	if d.pendingCount < d.stride {
		return
	}
	d.samples = append(d.samples, d.pending)
	d.pendingCount = 0
	if len(d.samples) == d.cap {
		// Halve resolution.
		half := d.samples[:0]
		for i := 0; i+1 < d.cap; i += 2 {
			half = append(half, d.reduce(d.samples[i], d.samples[i+1]))
		}
		d.samples = half
		d.stride *= 2
	}
}

// Samples returns the decimated series (window aggregates at stride
// Stride(), plus any complete windows since the last halving). The partial
// trailing window, if any, is not included.
func (d *Decimator) Samples() []float64 { return d.samples }

// Stride returns the number of raw observations represented by each sample.
func (d *Decimator) Stride() int64 { return d.stride }

// Total returns the number of raw observations seen.
func (d *Decimator) Total() int64 { return d.total }
