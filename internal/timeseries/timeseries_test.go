package timeseries

import (
	"math"
	"testing"
	"testing/quick"
)

func TestMaxTracker(t *testing.T) {
	var m MaxTracker
	if m.Max() != 0 || m.N() != 0 {
		t.Fatal("zero value should report 0")
	}
	m.Observe(1, 5)
	m.Observe(2, 3)
	m.Observe(3, 9)
	m.Observe(4, 9)
	if m.Max() != 9 {
		t.Errorf("max = %v", m.Max())
	}
	if m.ArgMax() != 3 {
		t.Errorf("argmax = %d, want first attainment 3", m.ArgMax())
	}
	if m.N() != 4 {
		t.Errorf("n = %d", m.N())
	}
}

func TestMaxTrackerNegative(t *testing.T) {
	var m MaxTracker
	m.Observe(0, -5)
	m.Observe(1, -7)
	if m.Max() != -5 {
		t.Errorf("max of negatives = %v, want -5", m.Max())
	}
}

func TestCheckpointsDoubling(t *testing.T) {
	c, err := NewCheckpoints(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(1); r <= 100; r++ {
		c.Observe(r, float64(r*10))
	}
	wantTimes := []int64{1, 2, 4, 8, 16, 32, 64}
	if len(c.Times()) != len(wantTimes) {
		t.Fatalf("times = %v", c.Times())
	}
	for i, w := range wantTimes {
		if c.Times()[i] != w {
			t.Fatalf("times = %v, want %v", c.Times(), wantTimes)
		}
		if c.Values()[i] != float64(w*10) {
			t.Fatalf("value at %d = %v", w, c.Values()[i])
		}
	}
	if c.Len() != 7 {
		t.Fatalf("Len = %d", c.Len())
	}
}

func TestCheckpointsSkippedRounds(t *testing.T) {
	c, err := NewCheckpoints(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Jump straight to round 50: one checkpoint recorded, schedule jumps
	// past 50.
	c.Observe(50, 1)
	if c.Len() != 1 || c.Times()[0] != 50 {
		t.Fatalf("times = %v", c.Times())
	}
	c.Observe(51, 2)
	if c.Len() != 1 {
		t.Fatalf("checkpoint fired too soon: %v", c.Times())
	}
	c.Observe(64, 3)
	if c.Len() != 2 || c.Times()[1] != 64 {
		t.Fatalf("times = %v", c.Times())
	}
}

func TestCheckpointsFractionalFactor(t *testing.T) {
	c, err := NewCheckpoints(10, 1.5)
	if err != nil {
		t.Fatal(err)
	}
	for r := int64(1); r <= 60; r++ {
		c.Observe(r, 0)
	}
	want := []int64{10, 15, 23, 35, 53}
	got := c.Times()
	if len(got) != len(want) {
		t.Fatalf("times = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("times = %v, want %v", got, want)
		}
	}
}

func TestCheckpointsValidation(t *testing.T) {
	if _, err := NewCheckpoints(0, 2); err == nil {
		t.Error("start 0 should error")
	}
	if _, err := NewCheckpoints(1, 1); err == nil {
		t.Error("factor 1 should error")
	}
	if _, err := NewCheckpoints(1, math.NaN()); err == nil {
		t.Error("NaN factor should error")
	}
}

func TestDecimatorNoOverflow(t *testing.T) {
	d, err := NewDecimator(8, MaxReduce)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 5; i++ {
		d.Observe(float64(i))
	}
	if d.Stride() != 1 {
		t.Fatalf("stride = %d", d.Stride())
	}
	got := d.Samples()
	if len(got) != 5 || got[4] != 5 {
		t.Fatalf("samples = %v", got)
	}
}

func TestDecimatorHalving(t *testing.T) {
	d, err := NewDecimator(4, MaxReduce)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 8; i++ {
		d.Observe(float64(i))
	}
	// After 4 samples {1,2,3,4} buffer is full -> halve to {2,4} stride 2.
	// Samples 5,6 -> window max 6; 7,8 -> window max 8. Buffer {2,4,6,8}
	// full again -> halve to {4,8} stride 4.
	if d.Stride() != 4 {
		t.Fatalf("stride = %d", d.Stride())
	}
	got := d.Samples()
	if len(got) != 2 || got[0] != 4 || got[1] != 8 {
		t.Fatalf("samples = %v", got)
	}
	if d.Total() != 8 {
		t.Fatalf("total = %d", d.Total())
	}
}

func TestDecimatorMeanReduce(t *testing.T) {
	d, err := NewDecimator(2, MeanReduce)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		d.Observe(float64(i)) // 0,1,2,3
	}
	// {0,1} full -> {0.5} stride 2; then window {2,3} -> mean 2.5 -> full
	// {0.5,2.5} -> halve to {1.5} stride 4.
	got := d.Samples()
	if len(got) != 1 || got[0] != 1.5 {
		t.Fatalf("samples = %v, stride %d", got, d.Stride())
	}
}

func TestDecimatorMaxPreserved(t *testing.T) {
	// Property: with MaxReduce, the max over Samples() equals the max of
	// all complete-window observations (the global max is preserved as long
	// as it does not sit in the trailing partial window).
	if err := quick.Check(func(raw []uint8) bool {
		if len(raw) == 0 {
			return true
		}
		d, err := NewDecimator(8, MaxReduce)
		if err != nil {
			return false
		}
		for _, v := range raw {
			d.Observe(float64(v))
		}
		complete := int64(len(raw)) - int64(len(raw))%d.Stride()
		var want float64 = -1
		for _, v := range raw[:complete] {
			if float64(v) > want {
				want = float64(v)
			}
		}
		if complete == 0 {
			return len(d.Samples()) == 0
		}
		var got float64 = -1
		for _, v := range d.Samples() {
			if v > got {
				got = v
			}
		}
		return got == want
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDecimatorValidation(t *testing.T) {
	if _, err := NewDecimator(3, MaxReduce); err == nil {
		t.Error("odd capacity should error")
	}
	if _, err := NewDecimator(0, MaxReduce); err == nil {
		t.Error("zero capacity should error")
	}
	if _, err := NewDecimator(4, nil); err == nil {
		t.Error("nil reducer should error")
	}
}
