package engine

import (
	"context"
	"testing"

	"repro/internal/rng"
)

// Edge cases of the Stepper-level helpers: zero-round runs, predicates
// already true at round 0, and windows larger than the run.

func TestRunZeroRounds(t *testing.T) {
	p := newMiniProcess(allInOne(32, 32), 1)
	var wm WindowMax
	var ef EmptyFraction
	Run(p, 0, &wm, &ef)
	if p.Round() != 0 {
		t.Fatalf("Round = %d after zero-round run", p.Round())
	}
	if wm.Max() != 0 {
		t.Fatalf("WindowMax observed %d with no rounds", wm.Max())
	}
	if ef.Min() != 1 || ef.Mean() != 0 {
		t.Fatalf("EmptyFraction zero-observation defaults: min %v mean %v, want 1 and 0",
			ef.Min(), ef.Mean())
	}
	// The no-observer fast path must behave identically.
	Run(p, 0)
	if p.Round() != 0 {
		t.Fatalf("Round = %d after observer-free zero-round run", p.Round())
	}
}

func TestRunContext(t *testing.T) {
	// An open context runs to the budget and observes every round.
	p := newMiniProcess(allInOne(32, 32), 4)
	var rounds int64
	count := ObserverFunc(func(Stepper) { rounds++ })
	done, stopped := RunContext(context.Background(), p, 25, count)
	if done != 25 || stopped || p.Round() != 25 || rounds != 25 {
		t.Fatalf("open ctx: done=%d stopped=%v round=%d observed=%d, want 25/false/25/25",
			done, stopped, p.Round(), rounds)
	}
	// A context cancelled mid-run stops between rounds, after the round's
	// observers.
	ctx, cancel := context.WithCancel(context.Background())
	var seen int64
	stopAt := ObserverFunc(func(s Stepper) {
		seen++
		if s.Round() == 30 {
			cancel()
		}
	})
	done, stopped = RunContext(ctx, p, 1000, stopAt)
	if !stopped || done != 5 || p.Round() != 30 || seen != 5 {
		t.Fatalf("cancelled ctx: done=%d stopped=%v round=%d observed=%d, want 5/true/30/5",
			done, stopped, p.Round(), seen)
	}
	// A context already cancelled on entry completes zero rounds.
	done, stopped = RunContext(ctx, p, 10)
	if done != 0 || !stopped || p.Round() != 30 {
		t.Fatalf("pre-cancelled ctx: done=%d stopped=%v round=%d, want 0/true/30", done, stopped, p.Round())
	}
}

func TestRunNegativeRoundsIsNoop(t *testing.T) {
	p := newMiniProcess(allInOne(32, 32), 1)
	Run(p, -5)
	if p.Round() != 0 {
		t.Fatalf("Round = %d after negative-round run", p.Round())
	}
}

func TestRunUntilPredTrueAtRoundZero(t *testing.T) {
	p := newMiniProcess(allInOne(64, 64), 2)
	// Satisfied before the first step: zero steps taken even with a zero
	// (or negative) round budget.
	for _, budget := range []int64{0, -1, 100} {
		if !RunUntil(p, func(s Stepper) bool { return s.MaxLoad() == 64 }, budget) {
			t.Fatalf("budget %d: pre-satisfied predicate not detected", budget)
		}
		if p.Round() != 0 {
			t.Fatalf("budget %d: %d steps taken for a pre-satisfied predicate", budget, p.Round())
		}
	}
}

func TestRunUntilExhaustsBudget(t *testing.T) {
	p := newMiniProcess(allInOne(64, 64), 3)
	// A predicate that can never hold: the budget must bound the steps
	// exactly and the helper must report failure.
	if RunUntil(p, func(s Stepper) bool { return false }, 37) {
		t.Fatal("unsatisfiable predicate reported satisfied")
	}
	if p.Round() != 37 {
		t.Fatalf("Round = %d, want the full 37-round budget", p.Round())
	}
}

func TestWindowMaxLargerThanRun(t *testing.T) {
	// Observing a window longer than the process ever runs is fine: the
	// running max is just over the rounds that happened.
	p := newMiniProcess(allInOne(64, 64), 4)
	var wm WindowMax
	Run(p, 3, &wm)
	if wm.Max() < 1 {
		t.Fatalf("window max %d after 3 rounds from all-in-one", wm.Max())
	}
	if wm.Max() > 64 {
		t.Fatalf("window max %d exceeds ball count", wm.Max())
	}
}

func TestWindowMaxTracksZeroMax(t *testing.T) {
	// An empty system has max load 0 every round; the observer must
	// report 0 having observed it (not "no observation").
	p := newMiniProcess(make([]int32, 16), 5)
	var wm WindowMax
	Run(p, 4, &wm)
	if wm.Max() != 0 {
		t.Fatalf("window max %d for an empty system", wm.Max())
	}
}

func TestEmptyFractionAllEmpty(t *testing.T) {
	p := newMiniProcess(make([]int32, 16), 6)
	var ef EmptyFraction
	Run(p, 4, &ef)
	if ef.Min() != 1 || ef.Mean() != 1 {
		t.Fatalf("empty system fractions: min %v mean %v, want 1 and 1", ef.Min(), ef.Mean())
	}
}

// TestDepositBatch pins the bulk staging path against per-ball Deposit in
// both round modes and outside a round.
func TestDepositBatch(t *testing.T) {
	loads := []int32{0, 3, 0, 1, 2, 0, 0, 1}
	batch := []int32{10, 11, 10, 14, 17, 10} // global ids, offset 10
	run := func(stage func(s *State)) []int32 {
		s, err := New(loads, Options{})
		if err != nil {
			t.Fatal(err)
		}
		stage(s)
		s.Commit()
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return s.LoadsCopy()
	}
	want := run(func(s *State) {
		s.ReleaseEach(nil)
		for _, v := range batch {
			s.Deposit(int(v) - 10)
		}
	})
	got := run(func(s *State) {
		s.ReleaseEach(nil)
		s.DepositBatch(batch, 10)
	})
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("bin %d: batch %d, per-ball %d", u, got[u], want[u])
		}
	}
	// Pre-round staging (before ReleaseEach) must also agree.
	preRound := run(func(s *State) {
		s.DepositBatch(batch, 10)
		s.ReleaseEach(nil)
	})
	wantPre := run(func(s *State) {
		for _, v := range batch {
			s.Deposit(int(v) - 10)
		}
		s.ReleaseEach(nil)
	})
	for u := range wantPre {
		if preRound[u] != wantPre[u] {
			t.Fatalf("pre-round bin %d: batch %d, per-ball %d", u, preRound[u], wantPre[u])
		}
	}
}

// TestDepositBatchDenseRound forces the dense path (occupancy above the
// sparse threshold) and cross-checks against per-ball Deposit.
func TestDepositBatchDenseRound(t *testing.T) {
	const n = 64
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = 1 // fully occupied: guaranteed dense round
	}
	src := rng.New(77)
	batch := make([]int32, 100)
	for i := range batch {
		batch[i] = int32(src.Intn(n))
	}
	mk := func(bulk bool) []int32 {
		s, err := New(loads, Options{})
		if err != nil {
			t.Fatal(err)
		}
		s.ReleaseEach(nil)
		if bulk {
			s.DepositBatch(batch, 0)
		} else {
			for _, v := range batch {
				s.Deposit(int(v))
			}
		}
		s.Commit()
		if err := s.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return s.LoadsCopy()
	}
	want, got := mk(false), mk(true)
	for u := range want {
		if got[u] != want[u] {
			t.Fatalf("bin %d: batch %d, per-ball %d", u, got[u], want[u])
		}
	}
}
