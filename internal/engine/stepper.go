package engine

import "context"

// Stepper is the uniform round-advancing surface of every synchronous
// engine in this repository (core.Process, core.TokenProcess,
// core.ChoicesProcess, tetris.Process, walks.Traversal, and the Jackson
// round adapter in cmd/rbb-sim). The simulation harness, the experiment
// suite and the CLIs drive processes through this interface so that every
// workload picks up engine-level improvements for free.
type Stepper interface {
	// Step advances one synchronous round.
	Step()
	// Round returns the number of completed rounds.
	Round() int64
	// N returns the number of bins (nodes).
	N() int
	// MaxLoad returns the current maximum bin load.
	MaxLoad() int32
	// EmptyBins returns the current number of empty bins.
	EmptyBins() int
	// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
	NonEmptyBins() int
	// Load returns the load of bin u.
	Load(u int) int32
	// LoadsCopy returns a fresh copy of the current load vector.
	LoadsCopy() []int32
}

// Observer receives the process after each completed round. Observers see
// the post-round state (Round() already advanced).
type Observer interface {
	Observe(s Stepper)
}

// ObserverFunc adapts a function to the Observer interface.
type ObserverFunc func(Stepper)

// Observe implements Observer.
func (f ObserverFunc) Observe(s Stepper) { f(s) }

// Run advances s by rounds rounds, notifying every observer after each
// round.
func Run(s Stepper, rounds int64, obs ...Observer) {
	if len(obs) == 0 {
		for i := int64(0); i < rounds; i++ {
			s.Step()
		}
		return
	}
	for i := int64(0); i < rounds; i++ {
		s.Step()
		for _, o := range obs {
			o.Observe(s)
		}
	}
}

// RunContext advances s by at most rounds rounds, notifying every observer
// after each round, and stops early — between rounds, never mid-round — once
// ctx is cancelled. It returns the number of rounds completed by this call
// and whether it stopped on ctx. Cancellation is checked after each round's
// observers, so every completed round has been observed exactly once; a
// ctx already cancelled on entry completes zero rounds. The service
// frontend drives non-checkpointable processes through this loop (the
// checkpointable ones go through checkpoint.Run, which adds the
// snapshot-on-stop hook).
func RunContext(ctx context.Context, s Stepper, rounds int64, obs ...Observer) (int64, bool) {
	for i := int64(0); i < rounds; i++ {
		select {
		case <-ctx.Done():
			return i, true
		default:
		}
		s.Step()
		for _, o := range obs {
			o.Observe(s)
		}
	}
	return rounds, false
}

// RunUntil steps s until pred returns true or maxRounds rounds have
// elapsed, whichever comes first, and reports whether pred was satisfied.
// pred is evaluated once before the first step (a process already
// satisfying it takes zero steps) and after each step.
func RunUntil(s Stepper, pred func(Stepper) bool, maxRounds int64) bool {
	if pred(s) {
		return true
	}
	for i := int64(0); i < maxRounds; i++ {
		s.Step()
		if pred(s) {
			return true
		}
	}
	return false
}

// WindowMax is an Observer tracking the running maximum load over the
// observed rounds — the M_T statistic of Theorem 1(a).
type WindowMax struct {
	max int32
	any bool
}

// Observe implements Observer.
func (w *WindowMax) Observe(s Stepper) {
	if m := s.MaxLoad(); !w.any || m > w.max {
		w.max = m
		w.any = true
	}
}

// Max returns the maximum observed load (0 before any observation).
func (w *WindowMax) Max() int32 { return w.max }

// State returns the accumulator state (the running maximum and whether any
// round has been observed), for checkpointing.
func (w *WindowMax) State() (max int32, any bool) { return w.max, w.any }

// SetState restores accumulator state captured with State.
func (w *WindowMax) SetState(max int32, any bool) { w.max, w.any = max, any }

// EmptyFraction is an Observer tracking the minimum and mean empty-bin
// fraction over the observed rounds — the Lemma 1–2 statistics.
type EmptyFraction struct {
	min    float64
	sum    float64
	rounds int64
}

// Observe implements Observer.
func (e *EmptyFraction) Observe(s Stepper) {
	frac := float64(s.EmptyBins()) / float64(s.N())
	if e.rounds == 0 || frac < e.min {
		e.min = frac
	}
	e.sum += frac
	e.rounds++
}

// Min returns the minimum observed empty fraction (1 before any
// observation).
func (e *EmptyFraction) Min() float64 {
	if e.rounds == 0 {
		return 1
	}
	return e.min
}

// Mean returns the mean observed empty fraction (0 before any observation).
func (e *EmptyFraction) Mean() float64 {
	if e.rounds == 0 {
		return 0
	}
	return e.sum / float64(e.rounds)
}

// State returns the accumulator state (minimum, running sum, observed
// rounds), for checkpointing.
func (e *EmptyFraction) State() (min, sum float64, rounds int64) {
	return e.min, e.sum, e.rounds
}

// SetState restores accumulator state captured with State.
func (e *EmptyFraction) SetState(min, sum float64, rounds int64) {
	e.min, e.sum, e.rounds = min, sum, rounds
}
