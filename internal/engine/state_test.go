package engine

import (
	"testing"

	"repro/internal/rng"
)

// denseRef is the historical dense repeated balls-into-bins step — the
// exact loop the engines used before the sparse layer — kept here as the
// law-equivalence reference and the benchmark baseline.
type denseRef struct {
	n        int
	loads    []int32
	arrivals []int32
	src      *rng.Source
	maxLoad  int32
	empty    int
}

func newDenseRef(loads []int32, src *rng.Source) *denseRef {
	d := &denseRef{
		n:        len(loads),
		loads:    append([]int32(nil), loads...),
		arrivals: make([]int32, len(loads)),
		src:      src,
	}
	d.refresh()
	return d
}

func (d *denseRef) refresh() {
	var max int32
	empty := 0
	for _, l := range d.loads {
		if l > max {
			max = l
		}
		if l == 0 {
			empty++
		}
	}
	d.maxLoad = max
	d.empty = empty
}

func (d *denseRef) step() {
	n := d.n
	for u := 0; u < n; u++ {
		if d.loads[u] > 0 {
			d.loads[u]--
			d.arrivals[d.src.Intn(n)]++
		}
	}
	var max int32
	empty := 0
	for v := 0; v < n; v++ {
		l := d.loads[v] + d.arrivals[v]
		d.arrivals[v] = 0
		d.loads[v] = l
		if l > max {
			max = l
		}
		if l == 0 {
			empty++
		}
	}
	d.maxLoad = max
	d.empty = empty
}

func (d *denseRef) reload(loads []int32) {
	copy(d.loads, loads)
	d.refresh()
}

func allInOne(n, m int) []int32 {
	loads := make([]int32, n)
	loads[0] = int32(m)
	return loads
}

func onePerBin(n int) []int32 {
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = 1
	}
	return loads
}

func uniformRandom(n, m int, r *rng.Source) []int32 {
	loads := make([]int32, n)
	for i := 0; i < m; i++ {
		loads[r.Intn(n)]++
	}
	return loads
}

// TestSparseDenseEquivalence is the law-equivalence cross-check of the
// sparse layer: on shared seeds the State must reproduce the dense
// reference's load vector, max load and empty count round by round, for
// starts on both sides of the sparse/dense switch (AllInOne crosses the
// threshold mid-run, exercising the mode transition).
func TestSparseDenseEquivalence(t *testing.T) {
	for _, n := range []int{1, 2, 63, 64, 65, 257, 1024} {
		for name, loads := range map[string][]int32{
			"all-in-one":  allInOne(n, n),
			"one-per-bin": onePerBin(n),
			"uniform":     uniformRandom(n, n, rng.New(uint64(7*n+1))),
			"sparse-m8":   uniformRandom(n, n/8+1, rng.New(uint64(n+3))),
		} {
			seed := uint64(1000 + n)
			ref := newDenseRef(loads, rng.New(seed))
			st, err := New(loads, Options{})
			if err != nil {
				t.Fatal(err)
			}
			drawer := NewDrawer(rng.New(seed))
			rounds := 6*n + 50
			if rounds > 4096 {
				rounds = 4096
			}
			for r := 0; r < rounds; r++ {
				ref.step()
				st.ReleaseUniform(drawer, nil)
				st.Commit()
				if st.MaxLoad() != ref.maxLoad || st.EmptyBins() != ref.empty {
					t.Fatalf("n=%d %s round %d: stats (%d, %d), want (%d, %d)",
						n, name, r, st.MaxLoad(), st.EmptyBins(), ref.maxLoad, ref.empty)
				}
				for u := 0; u < n; u++ {
					if st.Load(u) != ref.loads[u] {
						t.Fatalf("n=%d %s round %d bin %d: load %d, want %d",
							n, name, r, u, st.Load(u), ref.loads[u])
					}
				}
			}
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("n=%d %s: %v", n, name, err)
			}
		}
	}
}

// TestReleaseEachVisitsInOrder checks the worklist contract: every
// non-empty bin exactly once, in increasing bin order, in both modes.
func TestReleaseEachVisitsInOrder(t *testing.T) {
	for _, loads := range [][]int32{
		{0, 3, 0, 1, 0, 0, 2, 1},           // dense mode
		{5, 0, 0, 0, 0, 0, 0, 0, 0},        // sparse mode
		onePerBin(200),                     // dense mode
		allInOne(200, 200),                 // sparse mode
		uniformRandom(129, 40, rng.New(9)), // mixed occupancy
	} {
		st, err := New(loads, Options{})
		if err != nil {
			t.Fatal(err)
		}
		var visited []int
		released := st.ReleaseEach(func(u int) { visited = append(visited, u) })
		if released != len(visited) {
			t.Fatalf("released %d, visited %d", released, len(visited))
		}
		want := make([]int, 0)
		for u, l := range loads {
			if l > 0 {
				want = append(want, u)
			}
		}
		if len(visited) != len(want) {
			t.Fatalf("visited %v, want %v", visited, want)
		}
		for i := range want {
			if visited[i] != want[i] {
				t.Fatalf("visit %d: bin %d, want %d (order violated)", i, visited[i], want[i])
			}
		}
		st.Commit()
		if err := st.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestDepositBeforeRelease checks the coupling pattern: arrivals staged
// before the round's release merge identically to arrivals staged after.
func TestDepositBeforeRelease(t *testing.T) {
	loads := uniformRandom(64, 64, rng.New(11))
	a, err := New(loads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(loads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		deps := []int{r % 64, (r * 7) % 64, (r * 13) % 64}
		// a: deposit first, then release.
		for _, v := range deps {
			a.Deposit(v)
		}
		a.ReleaseEach(nil)
		a.Commit()
		// b: release first, then deposit.
		b.ReleaseEach(nil)
		for _, v := range deps {
			b.Deposit(v)
		}
		b.Commit()
		for u := 0; u < 64; u++ {
			if a.Load(u) != b.Load(u) {
				t.Fatalf("round %d bin %d: %d vs %d", r, u, a.Load(u), b.Load(u))
			}
		}
		if a.MaxLoad() != b.MaxLoad() || a.EmptyBins() != b.EmptyBins() {
			t.Fatalf("round %d: stats diverged", r)
		}
		if err := a.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestResetDeposits checks that discarding staged arrivals restores the
// pre-staging state (the coupling case (ii) redraw).
func TestResetDeposits(t *testing.T) {
	st, err := New(allInOne(32, 5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	st.ReleaseEach(nil)
	st.Deposit(3)
	st.Deposit(3)
	st.Deposit(9)
	st.ResetDeposits()
	st.Deposit(7)
	st.Commit()
	if st.Load(3) != 0 || st.Load(9) != 0 {
		t.Fatalf("discarded deposits leaked: bin3=%d bin9=%d", st.Load(3), st.Load(9))
	}
	if st.Load(7) != 1 || st.Load(0) != 4 {
		t.Fatalf("final loads wrong: bin7=%d bin0=%d", st.Load(7), st.Load(0))
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestOnEmptied checks the post-merge emptiness semantics: a bin released
// to zero fires only if it receives no arrival in the same round.
func TestOnEmptied(t *testing.T) {
	var emptied []int
	st, err := New([]int32{1, 2, 1, 0}, Options{OnEmptied: func(u int) { emptied = append(emptied, u) }})
	if err != nil {
		t.Fatal(err)
	}
	// Round 1: bins 0,1,2 release (0 and 2 hit zero); bin 0 gets an arrival.
	st.ReleaseEach(nil)
	st.Deposit(0)
	st.Deposit(0)
	st.Deposit(1)
	st.Commit()
	if len(emptied) != 1 || emptied[0] != 2 {
		t.Fatalf("emptied = %v, want [2]", emptied)
	}
	// Round 2: loads are {2, 2, 0, 0}; releases leave {1, 1, 0, 0} — no bin
	// empties, and bins 2, 3 must not re-fire.
	emptied = nil
	st.ReleaseEach(nil)
	st.Commit()
	if len(emptied) != 0 {
		t.Fatalf("emptied = %v, want []", emptied)
	}
	// Round 3: bins 0 and 1 both release to zero with no arrivals, and must
	// fire in increasing bin order.
	st.ReleaseEach(nil)
	st.Commit()
	if len(emptied) != 2 || emptied[0] != 0 || emptied[1] != 1 {
		t.Fatalf("emptied = %v, want [0 1]", emptied)
	}
}

// TestReload checks wholesale reconfiguration and its statistics.
func TestReload(t *testing.T) {
	st, err := New(onePerBin(100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Reload(allInOne(100, 42)); err != nil {
		t.Fatal(err)
	}
	if st.MaxLoad() != 42 || st.NonEmptyBins() != 1 || st.EmptyBins() != 99 {
		t.Fatalf("stats after reload: max=%d nonEmpty=%d", st.MaxLoad(), st.NonEmptyBins())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := st.Reload(make([]int32, 7)); err == nil {
		t.Fatal("Reload accepted wrong length")
	}
	bad := make([]int32, 100)
	bad[5] = -1
	if err := st.Reload(bad); err == nil {
		t.Fatal("Reload accepted negative load")
	}
}

// TestDrawerFillMatchesSequential pins the batching contract: Fill consumes
// the same draw sequence as one-at-a-time Intn calls.
func TestDrawerFillMatchesSequential(t *testing.T) {
	const bound = 1000
	a := NewDrawer(rng.New(42))
	b := rng.New(42)
	buf := make([]int32, 257)
	a.Fill(buf, bound)
	for i, v := range buf {
		if want := b.Intn(bound); int(v) != want {
			t.Fatalf("draw %d: %d, want %d", i, v, want)
		}
	}
	if a.Intn(bound) != b.Intn(bound) {
		t.Fatal("sources diverged after Fill")
	}
}

// TestInvariantsUnderRandomRounds drives a State with irregular host
// behaviour (extra deposits, occasional reloads) and checks the
// incremental statistics never drift.
func TestInvariantsUnderRandomRounds(t *testing.T) {
	r := rng.New(5)
	st, err := New(uniformRandom(300, 300, r), Options{})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDrawer(r)
	for i := 0; i < 2000; i++ {
		switch i % 7 {
		case 3:
			st.ReleaseEach(nil)
			extra := r.Intn(10)
			for j := 0; j < extra; j++ {
				st.Deposit(r.Intn(300))
			}
			st.Commit()
		case 5:
			st.ReleaseUniform(d, func(u, dest int) {})
			st.Commit()
		default:
			st.ReleaseUniform(d, nil)
			st.Commit()
		}
		if i%97 == 0 {
			if err := st.CheckInvariants(); err != nil {
				t.Fatalf("round %d: %v", i, err)
			}
		}
	}
}

// TestRunAndRunUntil exercises the Stepper-level helpers through a real
// engine host (a minimal process built directly on State).
func TestRunAndRunUntil(t *testing.T) {
	p := newMiniProcess(allInOne(64, 64), 99)
	var wm WindowMax
	var ef EmptyFraction
	Run(p, 200, &wm, &ef)
	if p.Round() != 200 {
		t.Fatalf("Round = %d, want 200", p.Round())
	}
	if wm.Max() < p.MaxLoad() {
		t.Fatalf("window max %d below current max %d", wm.Max(), p.MaxLoad())
	}
	if ef.Min() > ef.Mean() {
		t.Fatalf("min fraction %v above mean %v", ef.Min(), ef.Mean())
	}
	ok := RunUntil(p, func(s Stepper) bool { return s.MaxLoad() <= 8 }, 100_000)
	if !ok {
		t.Fatal("never converged to max load 8")
	}
	if !RunUntil(p, func(s Stepper) bool { return true }, 0) {
		t.Fatal("pre-satisfied predicate not detected")
	}
}

// miniProcess is the smallest possible Stepper host, used to test the
// interface helpers without importing the engines that depend on this
// package.
type miniProcess struct {
	eng   *State
	draw  *Drawer
	round int64
}

func newMiniProcess(loads []int32, seed uint64) *miniProcess {
	st, err := New(loads, Options{})
	if err != nil {
		panic(err)
	}
	return &miniProcess{eng: st, draw: NewDrawer(rng.New(seed))}
}

func (p *miniProcess) Step()              { p.eng.ReleaseUniform(p.draw, nil); p.eng.Commit(); p.round++ }
func (p *miniProcess) Round() int64       { return p.round }
func (p *miniProcess) N() int             { return p.eng.N() }
func (p *miniProcess) MaxLoad() int32     { return p.eng.MaxLoad() }
func (p *miniProcess) EmptyBins() int     { return p.eng.EmptyBins() }
func (p *miniProcess) NonEmptyBins() int  { return p.eng.NonEmptyBins() }
func (p *miniProcess) Load(u int) int32   { return p.eng.Load(u) }
func (p *miniProcess) LoadsCopy() []int32 { return p.eng.LoadsCopy() }

var _ Stepper = (*miniProcess)(nil)
