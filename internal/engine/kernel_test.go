package engine

import (
	"fmt"
	"math"
	"reflect"
	"testing"

	"repro/internal/rng"
)

func TestParseKernel(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Kernel
		ok   bool
	}{
		{"", KernelBatched, true},
		{"batched", KernelBatched, true},
		{"scalar", KernelScalar, true},
		{"simd", 0, false},
		{"Batched", 0, false},
	} {
		got, err := ParseKernel(tc.in)
		if tc.ok != (err == nil) || (tc.ok && got != tc.want) {
			t.Errorf("ParseKernel(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	for _, k := range []Kernel{KernelBatched, KernelScalar} {
		back, err := ParseKernel(k.String())
		if err != nil || back != k {
			t.Errorf("ParseKernel(%v.String()) = %v, %v", k, back, err)
		}
	}
	if _, err := New(onePerBin(8), Options{Kernel: Kernel(7)}); err == nil {
		t.Error("New accepted an undefined kernel")
	}
}

// trajectory captures everything a kernel can influence: the full per-round
// statistics series, every observer callback in order, the consumed RNG
// position (via the final loads) and the checkpoint-visible end state.
type trajectory struct {
	maxLoad  []int32
	nonEmpty []int
	emptied  []int
	visited  [][2]int
	final    []int32
	width    Width
}

// runTraj steps a fresh State rounds times under kernel k and records its
// trajectory. withVisit exercises the documented fallback: a visit callback
// observes mid-round order, so those rounds take the scalar loop under
// either kernel.
func runTraj(t *testing.T, loads []int32, w Width, k Kernel, rounds int, seed uint64, withOnEmptied, withVisit bool) trajectory {
	t.Helper()
	var tr trajectory
	opts := Options{Width: w, Kernel: k}
	if withOnEmptied {
		opts.OnEmptied = func(u int) { tr.emptied = append(tr.emptied, u) }
	}
	st, err := New(loads, opts)
	if err != nil {
		t.Fatal(err)
	}
	var visit func(u, dest int)
	if withVisit {
		visit = func(u, dest int) { tr.visited = append(tr.visited, [2]int{u, dest}) }
	}
	d := NewDrawer(rng.New(seed))
	for r := 0; r < rounds; r++ {
		st.ReleaseUniform(d, visit)
		st.Commit()
		tr.maxLoad = append(tr.maxLoad, st.MaxLoad())
		tr.nonEmpty = append(tr.nonEmpty, st.NonEmptyBins())
	}
	if err := st.CheckInvariants(); err != nil {
		t.Fatalf("kernel %v: %v", k, err)
	}
	tr.final = st.LoadsCopy()
	tr.width = st.Width()
	return tr
}

func constLoads(n int, v int32) []int32 {
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = v
	}
	return loads
}

// TestKernelEquivalence pins the tentpole contract: the batched kernel and
// the historical scalar loop produce byte-identical trajectories — same
// per-round statistics, same observer callbacks in the same order, same
// final loads and same widening decisions — across widths, occupancy
// regimes (including the sparse↔dense crossings) and observer variants.
func TestKernelEquivalence(t *testing.T) {
	configs := []struct {
		name   string
		loads  []int32
		rounds int
	}{
		// Dense from round 0; n spans several Width8 radix segments is not
		// feasible in a unit test, but n > 8 words exercises the SWAR body.
		{"onePerBin_n4096", onePerBin(4096), 300},
		// Sparse start, crosses into the dense regime as the balls spread.
		{"allInOne_n1024", allInOne(1024, 1024), 3000},
		// Stationary mid-occupancy mixture.
		{"uniform_n2048", uniformRandom(2048, 4096, rng.New(7)), 400},
		// Loads near the uint8 ceiling: stochastic maxima cross 255 while
		// dense, forcing the mid-commit 8→16 widen-resume in both kernels.
		{"widen_n512", constLoads(512, 250), 200},
		// Unaligned tail: n ∤ 8 exercises the scalar head/tail of the SWAR
		// passes.
		{"tail_n1013", onePerBin(1013), 300},
	}
	for _, cfg := range configs {
		for _, w := range []Width{WidthAuto, Width8, Width16, Width32} {
			for _, variant := range []string{"plain", "onEmptied", "visit"} {
				name := fmt.Sprintf("%s/w%d/%s", cfg.name, w, variant)
				t.Run(name, func(t *testing.T) {
					const seed = 42
					oe, vis := variant == "onEmptied", variant == "visit"
					a := runTraj(t, cfg.loads, w, KernelBatched, cfg.rounds, seed, oe, vis)
					b := runTraj(t, cfg.loads, w, KernelScalar, cfg.rounds, seed, oe, vis)
					if !reflect.DeepEqual(a, b) {
						t.Fatalf("kernels diverged:\n batched: max=%v.. nonEmpty=%v.. width=%v\n scalar:  max=%v.. nonEmpty=%v.. width=%v",
							head(a.maxLoad), a.nonEmpty[:min(4, len(a.nonEmpty))], a.width,
							head(b.maxLoad), b.nonEmpty[:min(4, len(b.nonEmpty))], b.width)
					}
				})
			}
		}
	}
}

func head(s []int32) []int32 { return s[:min(4, len(s))] }

// FuzzKernelEquivalence drives randomized (config, width, observer, rounds)
// tuples through both kernels and requires identical trajectories. The
// scalar loop is the oracle; any divergence is a kernel bug by definition.
func FuzzKernelEquivalence(f *testing.F) {
	f.Add(uint64(1), uint16(64), uint16(128), uint8(50), uint8(0))
	f.Add(uint64(2), uint16(500), uint16(500), uint8(80), uint8(1))
	f.Add(uint64(3), uint16(9), uint16(2000), uint8(40), uint8(6))
	f.Add(uint64(4), uint16(1013), uint16(1013), uint8(60), uint8(16))
	f.Add(uint64(5), uint16(256), uint16(60000), uint8(30), uint8(2))
	f.Fuzz(func(t *testing.T, seed uint64, n16, m16 uint16, rounds8, flags uint8) {
		n := int(n16)%1024 + 1
		m := int(m16)
		rounds := int(rounds8)%120 + 1
		w := []Width{WidthAuto, Width8, Width16, Width32}[flags&3]
		withOnEmptied := flags&4 != 0
		withVisit := flags&8 != 0
		var loads []int32
		if flags&16 != 0 {
			loads = allInOne(n, m)
		} else {
			loads = uniformRandom(n, m, rng.New(seed^0x9e3779b97f4a7c15))
		}
		a := runTraj(t, loads, w, KernelBatched, rounds, seed, withOnEmptied, withVisit)
		b := runTraj(t, loads, w, KernelScalar, rounds, seed, withOnEmptied, withVisit)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("kernels diverged: n=%d m=%d rounds=%d w=%d flags=%#x", n, m, rounds, w, flags)
		}
	})
}

// narrowSegments shrinks the partition policy so the radix-partitioned
// staging path (production: states above 4·4 MiB of staging area) runs at
// unit-test sizes, restoring the real policy when the test ends.
func narrowSegments(t *testing.T) {
	t.Helper()
	shift, dm := kernelSegShift, kernelDirectSegMax
	t.Cleanup(func() { kernelSegShift, kernelDirectSegMax = shift, dm })
	kernelSegShift = func(Width) uint { return 7 }
	kernelDirectSegMax = 1
}

// TestKernelEquivalencePartitioned reruns the equivalence pin with the
// partition policy shrunk so every dense round takes the radix-partitioned
// staging path — the production path for states above 16 MiB of staging
// area, unreachable at unit-test sizes under the real policy.
func TestKernelEquivalencePartitioned(t *testing.T) {
	narrowSegments(t)
	const seed = 23
	for _, cfg := range []struct {
		name   string
		loads  []int32
		rounds int
	}{
		{"onePerBin_n4096", onePerBin(4096), 300},
		{"tail_n1013", onePerBin(1013), 300},
		{"widen_n512", constLoads(512, 250), 200},
	} {
		for _, variant := range []string{"plain", "onEmptied"} {
			t.Run(cfg.name+"/"+variant, func(t *testing.T) {
				oe := variant == "onEmptied"
				a := runTraj(t, cfg.loads, Width8, KernelBatched, cfg.rounds, seed, oe, false)
				b := runTraj(t, cfg.loads, Width8, KernelScalar, cfg.rounds, seed, oe, false)
				if !reflect.DeepEqual(a, b) {
					t.Fatal("kernels diverged on the partitioned staging path")
				}
			})
		}
	}

	// The partitioned path is allocation-free once warm too (dests2 and
	// bucketOff live on the State).
	st, err := New(onePerBin(1<<12), Options{Kernel: KernelBatched})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDrawer(rng.New(5))
	for i := 0; i < 16; i++ {
		st.ReleaseUniform(d, nil)
		st.Commit()
	}
	if st.ScratchBytes() == 0 {
		t.Fatal("partitioned rounds left no scratch on the State")
	}
	allocs := testing.AllocsPerRun(64, func() {
		st.ReleaseUniform(d, nil)
		st.Commit()
	})
	if allocs != 0 {
		t.Errorf("partitioned dense round allocates %v times per round, want 0", allocs)
	}
}

// TestStageDenseOverflow pins the staging widen-resume contract directly:
// the index whose staged count would overflow is returned with nothing
// staged for it, and the replay from that index on the widened array
// completes with the exact total.
func TestStageDenseOverflow(t *testing.T) {
	arr := make([]uint8, 8)
	seq := make([]int32, 300)
	for i := range seq {
		seq[i] = 5
	}
	ov := stageDenseW(arr, math.MaxUint8, seq, 0)
	if ov != 255 {
		t.Fatalf("overflow index %d, want 255", ov)
	}
	if arr[5] != 255 {
		t.Fatalf("arr[5] = %d at overflow, want 255", arr[5])
	}
	// The caller widens (arr values carry over) and resumes at ov.
	arr16 := make([]uint16, 8)
	for i, v := range arr {
		arr16[i] = uint16(v)
	}
	if ov2 := stageDenseW(arr16, math.MaxUint16, seq, ov); ov2 != -1 {
		t.Fatalf("resumed staging overflowed again at %d", ov2)
	}
	if arr16[5] != 300 {
		t.Fatalf("arr16[5] = %d after resume, want 300", arr16[5])
	}
}

// TestKernelReleaseEach pins the SWAR ReleaseEach fast path (Width8, no
// observers) against the generic loop.
func TestKernelReleaseEach(t *testing.T) {
	loads := uniformRandom(1013, 1500, rng.New(11))
	run := func(k Kernel) ([]int32, int) {
		st, err := New(loads, Options{Width: Width8, Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		total := 0
		d := NewDrawer(rng.New(3))
		for r := 0; r < 50; r++ {
			// Alternate ReleaseEach (self-loop decrement) with real rounds so
			// the occupancy keeps changing.
			total += st.ReleaseEach(nil)
			st.Commit()
			st.ReleaseUniform(d, nil)
			st.Commit()
		}
		if err := st.CheckInvariants(); err != nil {
			t.Fatalf("kernel %v: %v", k, err)
		}
		return st.LoadsCopy(), total
	}
	la, ta := run(KernelBatched)
	lb, tb := run(KernelScalar)
	if ta != tb || !reflect.DeepEqual(la, lb) {
		t.Fatalf("ReleaseEach diverged: released %d vs %d", ta, tb)
	}
}

// TestSWARPrimitives checks the word-parallel building blocks lane by lane
// against their scalar definitions on random words.
func TestSWARPrimitives(t *testing.T) {
	r := rng.New(99)
	words := []uint64{0, ^uint64(0), swarH, swarL, 0x0100ff00017f80ff}
	for i := 0; i < 2000; i++ {
		words = append(words, r.Uint64n(^uint64(0)))
	}
	for _, x := range words[:200] {
		var wantZero uint64
		for lane := 0; lane < 8; lane++ {
			if (x>>(8*lane))&0xff == 0 {
				wantZero |= 0x80 << (8 * lane)
			}
		}
		if got := zeroMask8(x); got != wantZero {
			t.Fatalf("zeroMask8(%#016x) = %#016x, want %#016x", x, got, wantZero)
		}
	}
	for i := 0; i+1 < len(words); i += 2 {
		x, y := words[i], words[i+1]
		var want uint64
		for lane := 0; lane < 8; lane++ {
			a, b := (x>>(8*lane))&0xff, (y>>(8*lane))&0xff
			want |= max(a, b) << (8 * lane)
		}
		if got := maxU8x8(x, y); got != want {
			t.Fatalf("maxU8x8(%#016x, %#016x) = %#016x, want %#016x", x, y, got, want)
		}
	}
}

// TestDenseRoundAllocs: once the scratch is warm, dense rounds allocate
// nothing under either kernel — the batched kernel's destination, partition
// and segment buffers all live on the State.
func TestDenseRoundAllocs(t *testing.T) {
	for _, k := range []Kernel{KernelBatched, KernelScalar} {
		t.Run(k.String(), func(t *testing.T) {
			st, err := New(onePerBin(1<<14), Options{Kernel: k})
			if err != nil {
				t.Fatal(err)
			}
			d := NewDrawer(rng.New(5))
			for i := 0; i < 16; i++ {
				st.ReleaseUniform(d, nil)
				st.Commit()
			}
			allocs := testing.AllocsPerRun(64, func() {
				st.ReleaseUniform(d, nil)
				st.Commit()
			})
			if allocs != 0 {
				t.Errorf("dense round allocates %v times per round, want 0", allocs)
			}
		})
	}
}

// TestSparseRoundAllocs: the sparse path stays allocation-free too. With
// m = n/8 the non-empty count can never reach the dense threshold (bins
// with balls ≤ m < n/3), so every measured round is sparse by construction.
func TestSparseRoundAllocs(t *testing.T) {
	for _, k := range []Kernel{KernelBatched, KernelScalar} {
		t.Run(k.String(), func(t *testing.T) {
			n := 1 << 16
			st, err := New(uniformRandom(n, n/8, rng.New(2)), Options{Kernel: k})
			if err != nil {
				t.Fatal(err)
			}
			d := NewDrawer(rng.New(5))
			for i := 0; i < 200; i++ {
				st.ReleaseUniform(d, nil)
				st.Commit()
			}
			allocs := testing.AllocsPerRun(64, func() {
				st.ReleaseUniform(d, nil)
				st.Commit()
			})
			if allocs != 0 {
				t.Errorf("sparse round allocates %v times per round, want 0", allocs)
			}
		})
	}
}

// TestScratchBytes: LoadBytes stays a pure function of (n, width) — it
// feeds byte-compared summaries — while the kernel scratch is reported
// separately and only by ScratchBytes.
func TestScratchBytes(t *testing.T) {
	loads := onePerBin(1 << 12)
	mk := func(k Kernel) *State {
		st, err := New(loads, Options{Kernel: k})
		if err != nil {
			t.Fatal(err)
		}
		d := NewDrawer(rng.New(1))
		for i := 0; i < 4; i++ {
			st.ReleaseUniform(d, nil)
			st.Commit()
		}
		return st
	}
	batched, scalar := mk(KernelBatched), mk(KernelScalar)
	if batched.LoadBytes() != scalar.LoadBytes() {
		t.Errorf("LoadBytes depends on the kernel: %d vs %d", batched.LoadBytes(), scalar.LoadBytes())
	}
	if batched.ScratchBytes() <= scalar.ScratchBytes() {
		t.Errorf("batched scratch %d not above scalar scratch %d after dense rounds",
			batched.ScratchBytes(), scalar.ScratchBytes())
	}
}
