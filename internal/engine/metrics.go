package engine

import "repro/internal/obs"

// Widening telemetry: a counter per target width plus a trace instant, so
// the rare storage-width ratchets are visible in both the metrics export
// and the phase trace. Observational only — widening decisions are driven
// by load values, never by these counters.
var (
	mWiden16 = obs.Default.Counter("rbb_widen_total",
		"Shard storage-width ratchets, by target width.",
		obs.Label{Key: "to", Value: "16"})
	mWiden32 = obs.Default.Counter("rbb_widen_total",
		"Shard storage-width ratchets, by target width.",
		obs.Label{Key: "to", Value: "32"})
)

// Kernel info gauge: the selected dense-round kernel's series reads 1, so
// metrics scrapes and traces record which kernel a run executed. Set at
// State construction; both kernels may read 1 in a process that mixes them
// (e.g. the equivalence tests).
var (
	mKernelBatched = obs.Default.Gauge("rbb_kernel_info",
		"Dense-round kernel in use (info gauge: selected kernel reads 1).",
		obs.Label{Key: "kernel", Value: "batched"})
	mKernelScalar = obs.Default.Gauge("rbb_kernel_info",
		"Dense-round kernel in use (info gauge: selected kernel reads 1).",
		obs.Label{Key: "kernel", Value: "scalar"})
)

// noteKernel records the kernel a new State will run.
func noteKernel(k Kernel) {
	if !obs.Enabled() {
		return
	}
	switch k {
	case KernelScalar:
		mKernelScalar.Set(1)
	default:
		mKernelBatched.Set(1)
	}
}

// noteWiden records one ratchet to width w.
func noteWiden(w Width) {
	if !obs.Enabled() {
		return
	}
	switch w {
	case Width16:
		mWiden16.Inc()
		obs.Instant("widen", obs.LanePhases, map[string]any{"to": "16"})
	case Width32:
		mWiden32.Inc()
		obs.Instant("widen", obs.LanePhases, map[string]any{"to": "32"})
	}
}
