package engine

import "repro/internal/obs"

// Widening telemetry: a counter per target width plus a trace instant, so
// the rare storage-width ratchets are visible in both the metrics export
// and the phase trace. Observational only — widening decisions are driven
// by load values, never by these counters.
var (
	mWiden16 = obs.Default.Counter("rbb_widen_total",
		"Shard storage-width ratchets, by target width.",
		obs.Label{Key: "to", Value: "16"})
	mWiden32 = obs.Default.Counter("rbb_widen_total",
		"Shard storage-width ratchets, by target width.",
		obs.Label{Key: "to", Value: "32"})
)

// noteWiden records one ratchet to width w.
func noteWiden(w Width) {
	if !obs.Enabled() {
		return
	}
	switch w {
	case Width16:
		mWiden16.Inc()
		obs.Instant("widen", obs.LanePhases, map[string]any{"to": "16"})
	case Width32:
		mWiden32.Inc()
		obs.Instant("widen", obs.LanePhases, map[string]any{"to": "32"})
	}
}
