package engine

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// The ISSUE-level acceptance benchmarks: per-round cost of the shared
// stepping layer versus the historical dense loop, on the two extreme
// configurations.
//
//   - AllInOne at n = 65536 is the paper's worst-case start and the sparse
//     regime: only O(rounds) bins are ever non-empty during the measured
//     window. The sparse layer must win by ≥ 2× (it wins by far more).
//   - OnePerBin at n = 65536 is the balanced/stationary regime where the
//     worklist holds ≈ 0.6n bins; the layer switches to its dense path and
//     must stay within 5% of the reference loop.
//
// Both engine and reference reset to the start configuration every
// resetEvery rounds so the measured distribution does not drift with b.N
// (from AllInOne the process would otherwise self-balance out of the
// sparse regime).
const (
	benchN     = 65536
	resetEvery = 2048
)

func benchEngine(b *testing.B, loads []int32) {
	st, err := New(loads, Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := NewDrawer(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == 0 {
			if err := st.Reload(loads); err != nil {
				b.Fatal(err)
			}
		}
		st.ReleaseUniform(d, nil)
		st.Commit()
	}
	b.ReportMetric(float64(st.NonEmptyBins()), "nonempty/final")
}

func benchDenseRef(b *testing.B, loads []int32) {
	ref := newDenseRef(loads, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == 0 {
			ref.reload(loads)
		}
		ref.step()
	}
	b.ReportMetric(float64(benchN-ref.empty), "nonempty/final")
}

func BenchmarkStepSparseAllInOne(b *testing.B)   { benchEngine(b, allInOne(benchN, benchN)) }
func BenchmarkStepDenseRefAllInOne(b *testing.B) { benchDenseRef(b, allInOne(benchN, benchN)) }
func BenchmarkStepSparseOnePerBin(b *testing.B)  { benchEngine(b, onePerBin(benchN)) }
func BenchmarkStepDenseRefOnePerBin(b *testing.B) {
	benchDenseRef(b, onePerBin(benchN))
}

// The BENCH_kernel.json family: per-round cost of the dense stationary
// regime under the scalar and batched kernels. From onePerBin the process
// stays dense for its whole life (occupancy decays from 1 to the ≈0.63
// stationary point, always above the 1/3 dense threshold), so every
// measured round takes the kernel under test. Width8 is the steady state
// the paper guarantees (max load Θ(log n) w.h.p.); Width32 isolates the
// radix partition + segmented staging from the SWAR passes, which only
// exist at Width8. The batched kernel's win grows with n as the scalar
// loop's random stores fall out of cache — the acceptance bar is ≥1.3× at
// Width8, n ≥ 2²².
func benchDenseKernel(b *testing.B, n int, w Width, k Kernel) {
	st, err := New(onePerBin(n), Options{Width: w, Kernel: k})
	if err != nil {
		b.Fatal(err)
	}
	st.Prefault()
	d := NewDrawer(rng.New(1))
	// One warmup round sizes the kernel scratch so the measured rounds
	// allocate nothing (TestDenseRoundAllocs pins this).
	st.ReleaseUniform(d, nil)
	st.Commit()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.ReleaseUniform(d, nil)
		st.Commit()
	}
	b.ReportMetric(float64(st.NonEmptyBins())/float64(n), "occupancy/final")
}

func BenchmarkDenseKernel(b *testing.B) {
	for _, logN := range []int{20, 21, 22, 23, 24, 25} {
		for _, w := range []Width{Width8, Width32} {
			for _, k := range []Kernel{KernelScalar, KernelBatched} {
				b.Run(fmt.Sprintf("n=2^%d/w%d/%s", logN, w, k), func(b *testing.B) {
					benchDenseKernel(b, 1<<logN, w, k)
				})
			}
		}
	}
}

// BenchmarkStepOccupancy profiles the layer across the occupancy spectrum
// (m balls thrown into n bins, m/n from 1/64 to 1), locating the
// sparse/dense switch.
func BenchmarkStepOccupancy(b *testing.B) {
	for _, frac := range []int{64, 16, 4, 1} {
		b.Run(fmt.Sprintf("m=n_div_%d", frac), func(b *testing.B) {
			loads := uniformRandom(benchN, benchN/frac, rng.New(3))
			benchEngine(b, loads)
		})
	}
}
