package engine

import (
	"fmt"
	"testing"

	"repro/internal/rng"
)

// The ISSUE-level acceptance benchmarks: per-round cost of the shared
// stepping layer versus the historical dense loop, on the two extreme
// configurations.
//
//   - AllInOne at n = 65536 is the paper's worst-case start and the sparse
//     regime: only O(rounds) bins are ever non-empty during the measured
//     window. The sparse layer must win by ≥ 2× (it wins by far more).
//   - OnePerBin at n = 65536 is the balanced/stationary regime where the
//     worklist holds ≈ 0.6n bins; the layer switches to its dense path and
//     must stay within 5% of the reference loop.
//
// Both engine and reference reset to the start configuration every
// resetEvery rounds so the measured distribution does not drift with b.N
// (from AllInOne the process would otherwise self-balance out of the
// sparse regime).
const (
	benchN     = 65536
	resetEvery = 2048
)

func benchEngine(b *testing.B, loads []int32) {
	st, err := New(loads, Options{})
	if err != nil {
		b.Fatal(err)
	}
	d := NewDrawer(rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == 0 {
			if err := st.Reload(loads); err != nil {
				b.Fatal(err)
			}
		}
		st.ReleaseUniform(d, nil)
		st.Commit()
	}
	b.ReportMetric(float64(st.NonEmptyBins()), "nonempty/final")
}

func benchDenseRef(b *testing.B, loads []int32) {
	ref := newDenseRef(loads, rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if i%resetEvery == 0 {
			ref.reload(loads)
		}
		ref.step()
	}
	b.ReportMetric(float64(benchN-ref.empty), "nonempty/final")
}

func BenchmarkStepSparseAllInOne(b *testing.B)   { benchEngine(b, allInOne(benchN, benchN)) }
func BenchmarkStepDenseRefAllInOne(b *testing.B) { benchDenseRef(b, allInOne(benchN, benchN)) }
func BenchmarkStepSparseOnePerBin(b *testing.B)  { benchEngine(b, onePerBin(benchN)) }
func BenchmarkStepDenseRefOnePerBin(b *testing.B) {
	benchDenseRef(b, onePerBin(benchN))
}

// BenchmarkStepOccupancy profiles the layer across the occupancy spectrum
// (m balls thrown into n bins, m/n from 1/64 to 1), locating the
// sparse/dense switch.
func BenchmarkStepOccupancy(b *testing.B) {
	for _, frac := range []int{64, 16, 4, 1} {
		b.Run(fmt.Sprintf("m=n_div_%d", frac), func(b *testing.B) {
			loads := uniformRandom(benchN, benchN/frac, rng.New(3))
			benchEngine(b, loads)
		})
	}
}
