// Dense-round kernels.
//
// The stationary regime of the paper's process (λ near 1, m = n) spends
// almost every cycle in the dense release/commit scan, and the scalar loop's
// cost there is dominated by one random write per ball into an arrival
// staging area of up to n cells — a latency-bound pointer chase once the
// state outgrows the last-level cache (1 GiB at the n = 2³⁰ scale of
// E23/E24). The batched kernel restructures the round so every pass streams
// memory sequentially:
//
//  1. a tight decrement pass over the load vector that counts releasing bins
//     (SWAR, 8 cells per word, at Width8);
//  2. one Drawer.Fill bulk draw for all destinations — exactly the released
//     count of bounded draws, in bin order, so the consumed RNG sequence is
//     identical to the scalar loop's (the sparse path has always used Fill
//     under the same contract);
//  3. when the staging area is large enough to thrash the dTLB (more than
//     directSegMax segments), a radix partition of the destinations by high
//     bits into ~4 MiB segments, then per-segment staging into arr — every
//     segment's stores land in a ~1024-page window, so the scatter becomes
//     TLB- and cache-resident (staged arrivals are commutative counts; see
//     DESIGN.md §2.13 for why the reordering is trajectory-neutral); below
//     the threshold the batch is staged directly in draw order;
//  4. a SWAR commit at Width8 that merges load+arr, zero-detects and
//     max-reduces 8 cells per uint64 word.
//
// The historical one-pass loop is kept as KernelScalar — the equivalence
// oracle (FuzzKernelEquivalence diffs final checkpoints) and the fallback
// for callers that observe mid-round order (a non-nil visit callback).
package engine

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
)

// Kernel selects the dense-round implementation. The trajectory is
// independent of it — both kernels consume the identical draw sequence and
// produce byte-identical states and widening decisions — so it lives on the
// placement plane of spec.RunSpec (excluded from ResultKey), with the same
// contract as transport and width.
type Kernel uint8

const (
	// KernelBatched is the default: the cache-blocked batched round above.
	KernelBatched Kernel = iota
	// KernelScalar is the historical one-pass dense loop, kept as the
	// equivalence oracle and as the path for mid-round observers.
	KernelScalar
)

// String returns the flag spelling of the kernel.
func (k Kernel) String() string {
	switch k {
	case KernelBatched:
		return "batched"
	case KernelScalar:
		return "scalar"
	}
	return fmt.Sprintf("kernel(%d)", uint8(k))
}

// ParseKernel parses a kernel name: "batched" (or empty) or "scalar".
func ParseKernel(s string) (Kernel, error) {
	switch s {
	case "", "batched":
		return KernelBatched, nil
	case "scalar":
		return KernelScalar, nil
	}
	return 0, fmt.Errorf("engine: unknown kernel %q (want batched|scalar)", s)
}

// valid reports whether k is one of the defined Kernel values.
func (k Kernel) valid() bool {
	return k == KernelBatched || k == KernelScalar
}

// segmentShift returns the radix-partition shift for the width: destinations
// sharing their high bits above the shift land in one segment of arr
// spanning ≈4 MiB (2^22 uint8 cells, 2^21 uint16, 2^20 int32) — ~1024
// base pages, so a segment's staging stores stay dTLB- and cache-resident
// even when arr itself is orders of magnitude larger.
func segmentShift(w Width) uint {
	switch w {
	case Width8:
		return 22
	case Width16:
		return 21
	default:
		return 20
	}
}

// directSegMax is the partition threshold. The partition costs one extra
// read+write of the whole destination batch (the counting-sort scatter,
// whose bucket-cursor updates serialize through store-to-load forwarding);
// with nb ≤ directSegMax segments the staging area is close enough to the
// segment budget that direct draw-order staging is already TLB-resident
// and the scatter cannot pay for itself. Measured on the recording box
// (BENCH_kernel.json): direct wins up to 4 segments, partitioned wins from
// 8 segments up.
const directSegMax = 4

// kernelSegShift and kernelDirectSegMax are the live partition policy —
// variables only so kernel tests can shrink the segments and drive the
// partitioned path at unit-test sizes. The trajectory is policy-independent
// (DESIGN.md §2.13); only speed depends on these.
var (
	kernelSegShift     = segmentShift
	kernelDirectSegMax = directSegMax
)

// releaseUniformDenseBatched is the batched dense ReleaseUniform (nil-visit
// callers only; a visit callback observes the scalar loop's interleaved
// order, so those rounds take the scalar path regardless of kernel).
func (s *State) releaseUniformDenseBatched(d *Drawer) int {
	// Pass 1: decrement every non-empty bin, counting releases.
	var released int
	switch s.width {
	case Width8:
		if s.onEmptied == nil {
			released = decDense8SWAR(s.load8)
		} else {
			released = decDenseW(s, s.load8)
		}
	case Width16:
		released = decDenseW(s, s.load16)
	default:
		released = decDenseW(s, s.load32)
	}
	if released == 0 {
		return 0
	}
	// Pass 2: one bulk draw — released bounded draws in bin order, the
	// identical RNG consumption of the scalar loop. When the state spans
	// more than one segment the draw is fused with the partition histogram
	// (pass 3) so the batch is read once, not twice.
	if cap(s.dests) < released {
		s.dests = make([]int32, s.n)
	}
	dests := s.dests[:released]
	// Pass 3: partition by destination segment, then stage segment by
	// segment so the stores stay cache-resident.
	seq := s.drawPartitioned(d, dests)
	start := 0
	for {
		var ov int
		switch s.width {
		case Width8:
			ov = stageDenseW(s.arr8, math.MaxUint8, seq, start)
		case Width16:
			ov = stageDenseW(s.arr16, math.MaxUint16, seq, start)
		default:
			ov = stageDenseW(s.arr32, math.MaxInt32, seq, start)
		}
		if ov < 0 {
			break
		}
		s.widen()
		start = ov
	}
	return released
}

// decDenseW decrements every non-empty bin (the width-generic pass 1),
// tracking zeroed bins for the OnEmptied callback in increasing bin order —
// the same order the scalar loop reports them in.
func decDenseW[L loadElem](s *State, load []L) int {
	released := 0
	track := s.onEmptied != nil
	for u := range load {
		if l := load[u]; l > 0 {
			l--
			load[u] = l
			if track && l == 0 {
				s.zeroed = append(s.zeroed, int32(u))
			}
			released++
		}
	}
	return released
}

// drawPartitioned draws len(dests) destinations (the exact Fill sequence)
// and returns them reordered so destinations sharing a segment (high bits
// ≥ segmentShift) are contiguous, preserving the relative order within
// each segment (a stable counting sort, histogram fused into the draw
// loop). Returns dests itself — unpartitioned, in draw order — when the
// state spans at most directSegMax segments. The reordering only changes
// the order arrivals are staged in; staged arrivals are commutative
// counts, so the post-round state and the widening decision are unchanged
// (DESIGN.md §2.13).
func (s *State) drawPartitioned(d *Drawer, dests []int32) []int32 {
	shift := kernelSegShift(s.width)
	nb := ((s.n - 1) >> shift) + 1
	if nb <= kernelDirectSegMax {
		d.Fill(dests, s.n)
		return dests
	}
	if cap(s.bucketOff) < nb+1 {
		s.bucketOff = make([]int32, nb+1)
	}
	off := s.bucketOff[:nb+1]
	clear(off)
	// Histogram into off[b+1] while drawing, prefix-sum so off[b] becomes
	// bucket b's write cursor, then scatter.
	d.FillHist(dests, s.n, off, shift)
	for i := 1; i <= nb; i++ {
		off[i] += off[i-1]
	}
	if cap(s.dests2) < len(dests) {
		s.dests2 = make([]int32, s.n)
	}
	out := s.dests2[:len(dests)]
	for _, v := range dests {
		b := v >> shift
		out[off[b]] = v
		off[b]++
	}
	return out
}

// stageDenseW stages the partitioned destinations from index start,
// returning the index whose staged count would overflow the current width
// (the caller widens and resumes there; nothing is staged for that index),
// or −1 when done. Dense rounds skip the touched list — commitDense drains
// arr wholesale and never reads it.
func stageDenseW[L loadElem](arr []L, lim L, seq []int32, start int) int {
	for i := start; i < len(seq); i++ {
		v := seq[i]
		a := arr[v]
		if a == lim {
			return i
		}
		arr[v] = a + 1
	}
	return -1
}

// SWAR constants: the per-byte high-bit mask and its complement.
const (
	swarH = uint64(0x8080808080808080)
	swarL = ^swarH // 0x7f7f7f7f7f7f7f7f
)

// zeroMask8 returns the high bit of every all-zero byte lane of v — exact
// (no inter-lane carries: v&^swarH keeps each lane ≤ 0x7f, so lane sums stay
// ≤ 0xfe). Per lane: the high bit of (v&0x7f)+0x7f is set iff the low seven
// bits are non-zero; OR-ing v back in folds the lane's own high bit; the
// complement's high bit is therefore set iff the lane is zero.
func zeroMask8(v uint64) uint64 {
	return ^(((v &^ swarH) + swarL) | v) & swarH
}

// decDense8SWAR decrements every non-zero byte lane of load and returns the
// number of lanes decremented — pass 1 of the batched round at Width8, and
// the dense ReleaseEach fast path when nothing observes per-bin order.
// Decremented lanes hold ≥ 1, so the word-wide subtraction never borrows
// across lanes.
func decDense8SWAR(load []uint8) int {
	released := 0
	i := 0
	for ; i+8 <= len(load); i += 8 {
		v := binary.LittleEndian.Uint64(load[i:])
		if v == 0 {
			continue
		}
		nz := zeroMask8(v) ^ swarH
		binary.LittleEndian.PutUint64(load[i:], v-(nz>>7))
		released += bits.OnesCount64(nz)
	}
	for ; i < len(load); i++ {
		if load[i] > 0 {
			load[i]--
			released++
		}
	}
	return released
}

// maxU8x8 returns the lane-wise unsigned max of two words of byte lanes.
// t's lanes hold (x&0x7f)+0x80−(y&0x7f) ∈ [0x01, 0xff] — no inter-lane
// borrow — and t's high bit is set iff the low seven bits of x are ≥ y's.
// Combining with the lanes' own high bits yields the full unsigned x<y
// mask, which selects y's lanes.
func maxU8x8(x, y uint64) uint64 {
	t := ((x &^ swarH) | swarH) - (y &^ swarH)
	lt := ((^x & y) | (^(x ^ y) & ^t)) & swarH
	mask := (lt >> 7) * 0xff
	return x ^ ((x ^ y) & mask)
}

// foldMax8 folds a word of byte lanes into the running scalar maximum.
func foldMax8(max int32, w uint64) int32 {
	for ; w != 0; w >>= 8 {
		if b := int32(w & 0xff); b > max {
			max = b
		}
	}
	return max
}

// commitDense8SWAR is the Width8 dense commit of the batched kernel: merge
// load+arr, zero arr, count empties and max-reduce, 8 cells per word. Same
// contract as commitDenseW — returns the running maximum, the running empty
// count, and the cell whose merged load would overflow uint8 (the caller
// widens and resumes there; nothing is written for that cell), or −1 when
// the scan completes. A word with a lane carry falls back to the scalar
// loop for that word, which finds the exact overflowing cell.
func commitDense8SWAR(load, arr []uint8, start int, max int32, empty int) (int32, int, int) {
	n := len(load)
	head := start + (-start & 7)
	if head > n {
		head = n
	}
	v := start
	for ; v < head; v++ {
		sum := int32(load[v]) + int32(arr[v])
		if sum > math.MaxUint8 {
			return max, empty, v
		}
		arr[v] = 0
		load[v] = uint8(sum)
		if sum > max {
			max = sum
		}
		if sum == 0 {
			empty++
		}
	}
	var maxw uint64
	for ; v+8 <= n; v += 8 {
		l := binary.LittleEndian.Uint64(load[v:])
		a := binary.LittleEndian.Uint64(arr[v:])
		sum := l
		if a != 0 {
			// Lane-safe byte add: sum the low seven bits of every lane,
			// then XOR the high bits (with their carries) back in.
			sum = ((l &^ swarH) + (a &^ swarH)) ^ ((l ^ a) & swarH)
			// Full-adder carry out of each lane's high bit: a set bit means
			// that lane's true sum exceeds 0xff.
			carry := ((l & a) | ((l | a) &^ sum)) & swarH
			if carry != 0 {
				max = foldMax8(max, maxw)
				maxw = 0
				for u := v; u < v+8; u++ {
					sc := int32(load[u]) + int32(arr[u])
					if sc > math.MaxUint8 {
						return max, empty, u
					}
					arr[u] = 0
					load[u] = uint8(sc)
					if sc > max {
						max = sc
					}
					if sc == 0 {
						empty++
					}
				}
				continue
			}
			binary.LittleEndian.PutUint64(load[v:], sum)
			binary.LittleEndian.PutUint64(arr[v:], 0)
		}
		empty += bits.OnesCount64(zeroMask8(sum))
		maxw = maxU8x8(maxw, sum)
	}
	max = foldMax8(max, maxw)
	for ; v < n; v++ {
		sum := int32(load[v]) + int32(arr[v])
		if sum > math.MaxUint8 {
			return max, empty, v
		}
		arr[v] = 0
		load[v] = uint8(sum)
		if sum > max {
			max = sum
		}
		if sum == 0 {
			empty++
		}
	}
	return max, empty, -1
}
