package engine

import "repro/internal/rng"

// Drawer adapts a *rng.Source for the stepping layer: it exposes the same
// bounded draw the engines have always used (Lemire's method via
// Source.Intn) plus a batched form that fills a whole destination slice in
// one tight loop. Batching does not change the draw sequence — Fill
// performs exactly len(dst) bounded draws in order, so a trajectory is
// identical whether destinations are drawn one at a time or in a batch.
// A Drawer is not safe for concurrent use.
type Drawer struct {
	src *rng.Source
}

// NewDrawer wraps src. The Drawer draws directly from src: interleaving
// calls on the Drawer and on src preserves the overall sequence.
func NewDrawer(src *rng.Source) *Drawer {
	return &Drawer{src: src}
}

// Intn returns one uniform draw in [0, n).
func (d *Drawer) Intn(n int) int { return d.src.Intn(n) }

// Fill sets dst[i] to an independent uniform draw in [0, bound) for every
// i, in index order, consuming exactly len(dst) bounded draws.
func (d *Drawer) Fill(dst []int32, bound int) {
	src := d.src
	b := uint64(bound)
	for i := range dst {
		dst[i] = int32(src.Uint64n(b))
	}
}

// FillHist is Fill fused with a draw histogram: dst[i] receives the i-th
// draw exactly as Fill would produce it, and hist[(dst[i]>>shift)+1] is
// incremented per draw. The batched dense kernel radix-partitions the
// batch right after drawing it; fusing the counting pass into the draw
// loop saves rereading the whole batch. The consumed draw sequence is
// identical to Fill's.
func (d *Drawer) FillHist(dst []int32, bound int, hist []int32, shift uint) {
	src := d.src
	b := uint64(bound)
	for i := range dst {
		v := int32(src.Uint64n(b))
		dst[i] = v
		hist[(v>>shift)+1]++
	}
}
