package engine

import (
	"testing"

	"repro/internal/rng"
)

// TestStateSnapshotRestore: a State restored from a snapshot continues the
// trajectory exactly, including across the sparse/dense mode boundary (the
// snapshot is taken while the worklist is stale from a dense round).
func TestStateSnapshotRestore(t *testing.T) {
	const n = 200
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = int32(i % 3) // two thirds non-empty ⇒ dense rounds
	}
	s, err := New(loads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	src := rng.New(42)
	d := NewDrawer(src)
	for r := 0; r < 50; r++ {
		s.ReleaseUniform(d, nil)
		s.Commit()
	}
	snapLoads, snapWork, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := New(make([]int32, n), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := restored.Restore(snapLoads, snapWork); err != nil {
		t.Fatal(err)
	}
	if restored.MaxLoad() != s.MaxLoad() || restored.EmptyBins() != s.EmptyBins() {
		t.Fatalf("restored stats: max=%d empty=%d, want max=%d empty=%d",
			restored.MaxLoad(), restored.EmptyBins(), s.MaxLoad(), s.EmptyBins())
	}
	if err := restored.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Same draws from here on ⇒ same trajectory.
	srcA, srcB := rng.New(7), rng.New(7)
	dA, dB := NewDrawer(srcA), NewDrawer(srcB)
	for r := 0; r < 80; r++ {
		s.ReleaseUniform(dA, nil)
		s.Commit()
		restored.ReleaseUniform(dB, nil)
		restored.Commit()
	}
	a, b := s.Loads(), restored.Loads()
	for u := range a {
		if a[u] != b[u] {
			t.Fatalf("bin %d: %d vs %d", u, a[u], b[u])
		}
	}
}

// TestStateSnapshotMidRound: snapshots are only defined between rounds.
func TestStateSnapshotMidRound(t *testing.T) {
	s, err := New([]int32{1, 2}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.ReleaseEach(nil)
	if _, _, err := s.Snapshot(); err == nil {
		t.Error("mid-round snapshot accepted")
	}
	s.Commit()
	if _, _, err := s.Snapshot(); err != nil {
		t.Errorf("between-rounds snapshot rejected: %v", err)
	}
}

// TestStateRestoreRejectsInconsistency: the serialized worklist is
// redundant with the loads, and Restore cross-checks the two.
func TestStateRestoreRejectsInconsistency(t *testing.T) {
	s, err := New([]int32{1, 0, 2, 0, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	loads, work, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Restore(loads, work[:0]); err == nil {
		t.Error("short worklist accepted")
	}
	badWork := append([]uint64(nil), work...)
	badWork[0] ^= 1 << 1 // claim bin 1 is non-empty
	if err := s.Restore(loads, badWork); err == nil {
		t.Error("inconsistent worklist accepted")
	}
	badLoads := append([]int32(nil), loads...)
	badLoads[0] = -1
	if err := s.Restore(badLoads, work); err == nil {
		t.Error("negative load accepted")
	}
	if err := s.Restore(loads[:3], work); err == nil {
		t.Error("wrong length accepted")
	}
	if err := s.Restore(loads, work); err != nil {
		t.Errorf("clean snapshot rejected: %v", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestObserverStateRoundTrip: WindowMax and EmptyFraction accumulators
// restored mid-stream continue to identical values.
func TestObserverStateRoundTrip(t *testing.T) {
	loads := []int32{5, 0, 2, 1}
	s, err := New(loads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	st := &fakeStepper{s: s}
	var wm WindowMax
	var ef EmptyFraction
	src := rng.New(9)
	d := NewDrawer(src)
	step := func(w *WindowMax, e *EmptyFraction, k int) {
		for i := 0; i < k; i++ {
			s.ReleaseUniform(d, nil)
			s.Commit()
			st.rounds++
			w.Observe(st)
			e.Observe(st)
		}
	}
	step(&wm, &ef, 10)
	var wm2 WindowMax
	var ef2 EmptyFraction
	wm2.SetState(wm.State())
	ef2.SetState(ef.State())
	// Drive both copies over the same suffix.
	for i := 0; i < 15; i++ {
		s.ReleaseUniform(d, nil)
		s.Commit()
		st.rounds++
		wm.Observe(st)
		ef.Observe(st)
		wm2.Observe(st)
		ef2.Observe(st)
	}
	if wm.Max() != wm2.Max() {
		t.Fatalf("window max %d vs %d", wm.Max(), wm2.Max())
	}
	if ef.Min() != ef2.Min() || ef.Mean() != ef2.Mean() {
		t.Fatalf("empty fraction (%v, %v) vs (%v, %v)", ef.Min(), ef.Mean(), ef2.Min(), ef2.Mean())
	}
}

// fakeStepper exposes a State as the minimal Stepper the observers need.
type fakeStepper struct {
	s      *State
	rounds int64
}

func (f *fakeStepper) Step()              {}
func (f *fakeStepper) Round() int64       { return f.rounds }
func (f *fakeStepper) N() int             { return f.s.N() }
func (f *fakeStepper) MaxLoad() int32     { return f.s.MaxLoad() }
func (f *fakeStepper) EmptyBins() int     { return f.s.EmptyBins() }
func (f *fakeStepper) NonEmptyBins() int  { return f.s.NonEmptyBins() }
func (f *fakeStepper) Load(u int) int32   { return f.s.Load(u) }
func (f *fakeStepper) LoadsCopy() []int32 { return f.s.LoadsCopy() }
