package engine

import (
	"testing"

	"repro/internal/rng"
)

// TestParseWidth covers the flag spellings.
func TestParseWidth(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Width
		ok   bool
	}{
		{"", WidthAuto, true},
		{"auto", WidthAuto, true},
		{"8", Width8, true},
		{"16", Width16, true},
		{"32", Width32, true},
		{"64", 0, false},
		{"wide", 0, false},
	} {
		got, err := ParseWidth(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseWidth(%q) = %v, %v; want %v, ok=%v", tc.in, got, err, tc.want, tc.ok)
		}
	}
	if Width8.String() != "8" || WidthAuto.String() != "auto" {
		t.Errorf("String(): %q %q", Width8.String(), WidthAuto.String())
	}
}

// runTrajectory drives s through rounds of the rbb law from its own stream
// and returns the per-round (MaxLoad, EmptyBins) pairs.
func runTrajectory(t *testing.T, s *State, seed uint64, rounds int) [][2]int {
	t.Helper()
	d := NewDrawer(rng.NewStream(seed, 0))
	out := make([][2]int, 0, rounds)
	for r := 0; r < rounds; r++ {
		s.ReleaseUniform(d, nil)
		s.Commit()
		out = append(out, [2]int{int(s.MaxLoad()), s.EmptyBins()})
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	return out
}

// TestWidthTrajectoryInvariance pins the tentpole claim at the State layer:
// the trajectory is a pure function of the seed and loads, independent of
// the storage width.
func TestWidthTrajectoryInvariance(t *testing.T) {
	const (
		n      = 1 << 10
		seed   = 7
		rounds = 200
	)
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = 1
	}
	build := func(w Width) *State {
		s, err := New(loads, Options{Width: w})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	ref := build(Width32)
	if ref.Width() != Width32 {
		t.Fatalf("floor 32: width %v", ref.Width())
	}
	want := runTrajectory(t, ref, seed, rounds)
	for _, w := range []Width{WidthAuto, Width8, Width16} {
		s := build(w)
		if w != Width16 && s.Width() != Width8 {
			t.Fatalf("floor %v: initial width %v, want 8", w, s.Width())
		}
		got := runTrajectory(t, s, seed, rounds)
		for r := range want {
			if got[r] != want[r] {
				t.Fatalf("floor %v: round %d stats %v, want %v", w, r, got[r], want[r])
			}
		}
		gl, wl := s.LoadsCopy(), ref.LoadsCopy()
		for u := range wl {
			if gl[u] != wl[u] {
				t.Fatalf("floor %v: bin %d load %d, want %d", w, u, gl[u], wl[u])
			}
		}
	}
}

// TestWidthInitialFit pins the auto rule: the initial width is the
// narrowest fitting the initial loads, floored by Options.Width.
func TestWidthInitialFit(t *testing.T) {
	for _, tc := range []struct {
		max   int32
		floor Width
		want  Width
	}{
		{1, WidthAuto, Width8},
		{255, WidthAuto, Width8},
		{256, WidthAuto, Width16},
		{65535, WidthAuto, Width16},
		{65536, WidthAuto, Width32},
		{1, Width16, Width16},
		{65536, Width16, Width32},
		{1, Width32, Width32},
	} {
		s, err := New([]int32{tc.max, 0, 1}, Options{Width: tc.floor})
		if err != nil {
			t.Fatal(err)
		}
		if s.Width() != tc.want {
			t.Errorf("max %d floor %v: width %v, want %v", tc.max, tc.floor, s.Width(), tc.want)
		}
		if s.Load(0) != tc.max || s.MaxLoad() != tc.max {
			t.Errorf("max %d: load %d maxload %d", tc.max, s.Load(0), s.MaxLoad())
		}
		wantBytes := int64(3) * 2 * int64(uint8(tc.want)/8)
		if s.LoadBytes() != wantBytes {
			t.Errorf("max %d floor %v: LoadBytes %d, want %d", tc.max, tc.floor, s.LoadBytes(), wantBytes)
		}
	}
	if _, err := New([]int32{1}, Options{Width: 9}); err == nil {
		t.Error("invalid width accepted")
	}
}

// TestWidenOnDeposit escalates through the staging path: depositing past
// the uint8 range widens mid-staging without losing a ball.
func TestWidenOnDeposit(t *testing.T) {
	s, err := New(make([]int32, 100), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if s.Width() != Width8 {
		t.Fatalf("width %v", s.Width())
	}
	for i := 0; i < 300; i++ {
		s.Deposit(7)
	}
	if s.Width() != Width16 {
		t.Fatalf("after 300 deposits: width %v, want 16", s.Width())
	}
	s.ReleaseEach(nil)
	s.Commit()
	if got := s.Load(7); got != 300 {
		t.Fatalf("load 300 deposits → %d", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWidenOnCommit escalates through the merge path: each staged count and
// each load fits uint8, but their sum does not.
func TestWidenOnCommit(t *testing.T) {
	loads := make([]int32, 100)
	loads[7] = 200
	s, err := New(loads, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s.ReleaseEach(nil) // sparse round: bin 7 drops to 199
	for i := 0; i < 100; i++ {
		s.Deposit(7)
	}
	if s.Width() != Width8 {
		t.Fatalf("pre-commit width %v, want 8", s.Width())
	}
	s.Commit()
	if s.Width() != Width16 {
		t.Fatalf("post-commit width %v, want 16", s.Width())
	}
	if got := s.Load(7); got != 299 {
		t.Fatalf("load %d, want 299", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWidenOnDenseRelease escalates through the dense release hot loop:
// with n = 1 every thrown ball lands on the saturated staging slot, so the
// mid-loop widen (pending destination applied after the switch) triggers.
func TestWidenOnDenseRelease(t *testing.T) {
	s, err := New([]int32{10}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 255; i++ {
		s.Deposit(0)
	}
	if s.Width() != Width8 {
		t.Fatalf("width %v", s.Width())
	}
	d := NewDrawer(rng.NewStream(1, 0))
	if got := s.ReleaseUniform(d, nil); got != 1 {
		t.Fatalf("released %d, want 1", got)
	}
	if s.Width() != Width16 {
		t.Fatalf("post-release width %v, want 16", s.Width())
	}
	s.Commit()
	if got := s.Load(0); got != 10+255+1-1 {
		t.Fatalf("load %d, want 265", got)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestWidenToRatchet covers the restore-side ratchet: WidenTo widens, never
// narrows, and survives a Snapshot/Restore cycle via the caller protocol.
func TestWidenToRatchet(t *testing.T) {
	s, err := New([]int32{1, 2, 3}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.WidenTo(Width16); err != nil || s.Width() != Width16 {
		t.Fatalf("WidenTo(16): %v, width %v", err, s.Width())
	}
	if err := s.WidenTo(Width8); err != nil || s.Width() != Width16 {
		t.Fatalf("WidenTo(8) narrowed: %v, width %v", err, s.Width())
	}
	if err := s.WidenTo(7); err == nil {
		t.Error("invalid WidenTo accepted")
	}
	loads, work, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	r, err := New(make([]int32, 3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r.Restore(loads, work); err != nil {
		t.Fatal(err)
	}
	if r.Width() != Width8 {
		t.Fatalf("restored width %v, want re-derived 8", r.Width())
	}
	if err := r.WidenTo(Width16); err != nil || r.Width() != Width16 {
		t.Fatalf("restore ratchet: %v, width %v", err, r.Width())
	}
	if got := r.LoadsCopy(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("restored loads %v", got)
	}
}
