// Package engine is the shared stepping layer under every synchronous
// process in this repository (core.Process, core.TokenProcess,
// core.ChoicesProcess, tetris.Process, coupling.Coupled, walks.Traversal).
//
// The paper's headline regime is sparse: after self-stabilization most bins
// hold O(1) balls, and from the worst-case AllInOne start only a handful of
// bins are non-empty for a long prefix of the run. A State therefore keeps
// the set of non-empty bins as an incrementally maintained worklist
// (internal/bitset, iterated in increasing bin order) and updates max-load
// and empty-count from the bins actually touched in a round, instead of
// rescanning all n bins. When the worklist grows past a constant fraction
// of n the State switches to a dense scan for that round — the dense scan
// is cheaper per bin, and the switch is invisible to callers.
//
// # Round protocol
//
// A synchronous round against a State is:
//
//	state.ReleaseEach(visit)        // or ReleaseUniform(drawer, visit)
//	state.Deposit(v)                // zero or more, any time before Commit
//	state.Commit()
//
// Release* removes exactly one ball from every non-empty bin, visiting bins
// in increasing bin order. Deposit stages an arrival; staged arrivals are
// not visible through Load until Commit merges them. Commit completes the
// round and refreshes MaxLoad/EmptyBins. Deposits may also be staged before
// the round's Release* call (the coupling construction needs this); the
// effect is identical.
//
// # RNG draw-order contract
//
// Sparse and dense rounds consume randomness identically: whatever draws
// the caller performs happen once per released bin, in increasing bin
// order, because that is the order both release paths visit bins in.
// ReleaseUniform itself draws exactly one bounded value per non-empty bin,
// in bin order, from the supplied Drawer. A State therefore produces
// byte-identical trajectories to the historical dense engines for any seed
// — the golden tests pin this.
package engine

import (
	"errors"
	"fmt"
	"math/bits"
	"sync/atomic"

	"repro/internal/bitset"
)

// trailingZeros is a local alias keeping the worklist drain loops compact.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// sparseDenom sets the sparse/dense switch: a round runs sparse when
// |W| * sparseDenom < n. The dense per-bin constant is a few ns while the
// sparse per-bin constant is roughly 3× that, so n/3 is the break-even.
const sparseDenom = 3

// Options configures a State.
type Options struct {
	// OnEmptied, if non-nil, is invoked during Commit for every bin that
	// was non-empty at the start of the round and is empty after arrivals
	// merge, in increasing bin order. Tetris uses it for the Lemma 4
	// first-emptying times.
	OnEmptied func(u int)
}

// State is a load vector with an incrementally maintained non-empty-bin
// worklist and O(touched) per-round statistics. Create with New; not safe
// for concurrent use.
type State struct {
	n    int
	load []int32
	work *bitset.Set

	nonEmpty int
	maxLoad  int32

	arr     []int32 // staged arrivals, arr[v] ≠ 0 only while staged
	touched []int32 // bins with staged arrivals (host deposits and sparse rounds)
	zeroed  []int32 // bins released to zero this round (only if onEmptied != nil)
	bins    []int32 // scratch: released bins of a sparse ReleaseUniform
	dests   []int32 // scratch: batched destinations of a sparse ReleaseUniform

	stepMax   int32 // max post-release load seen this round (sparse rounds)
	sparse    bool  // mode of the in-flight round
	inRound   bool
	workStale bool // worklist bits out of date (rebuilt lazily after dense rounds)
	onEmptied func(u int)
}

// New builds a State over a copy of loads. It returns an error if loads is
// empty or contains a negative entry.
func New(loads []int32, opts Options) (*State, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("engine: New with no bins")
	}
	s := &State{
		n:         n,
		load:      make([]int32, n),
		work:      bitset.New(n),
		arr:       make([]int32, n),
		onEmptied: opts.OnEmptied,
	}
	if err := s.Reload(loads); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload replaces the configuration wholesale and refreshes all statistics
// — the one full-vector scan in the layer (construction and the §4.1
// adversarial reassignment both funnel through it). It must not be called
// mid-round.
func (s *State) Reload(loads []int32) error {
	if len(loads) != s.n {
		return fmt.Errorf("engine: Reload with %d bins, want %d", len(loads), s.n)
	}
	if s.inRound {
		return errors.New("engine: Reload mid-round")
	}
	var max int32
	nonEmpty := 0
	for base := 0; base < s.n; base += 64 {
		lim := base + 64
		if lim > s.n {
			lim = s.n
		}
		var w uint64
		for v := base; v < lim; v++ {
			l := loads[v]
			if l < 0 {
				return fmt.Errorf("engine: bin %d has negative load %d", v, l)
			}
			s.load[v] = l
			if l > 0 {
				w |= 1 << uint(v-base)
				nonEmpty++
				if l > max {
					max = l
				}
			}
		}
		s.work.SetWord(base>>6, w)
	}
	s.maxLoad = max
	s.nonEmpty = nonEmpty
	s.workStale = false
	return nil
}

// N returns the number of bins.
func (s *State) N() int { return s.n }

// MaxLoad returns the current maximum bin load.
func (s *State) MaxLoad() int32 { return s.maxLoad }

// EmptyBins returns the current number of empty bins.
func (s *State) EmptyBins() int { return s.n - s.nonEmpty }

// NonEmptyBins returns |W|, the current number of non-empty bins.
func (s *State) NonEmptyBins() int { return s.nonEmpty }

// Load returns the load of bin u. Between a Release* call and Commit it
// reflects the post-departure, pre-arrival snapshot (the d-choices rule
// compares against exactly this snapshot).
func (s *State) Load(u int) int32 { return s.load[u] }

// Loads returns the live load vector. Callers must not modify it and must
// copy it if they need it across rounds.
func (s *State) Loads() []int32 { return s.load }

// LoadsCopy returns a fresh copy of the current load vector.
func (s *State) LoadsCopy() []int32 {
	out := make([]int32, s.n)
	copy(out, s.load)
	return out
}

// Sum returns the total number of balls currently in the system (staged
// arrivals excluded).
func (s *State) Sum() int64 {
	var t int64
	for _, l := range s.load {
		t += int64(l)
	}
	return t
}

// prefaultSink keeps the Prefault read loop observable so the compiler
// cannot elide it; atomic because pool workers prefault shards
// concurrently.
var prefaultSink atomic.Int64

// pageInts is the prefault stride: one touch per 4 KiB page of int32s.
const pageInts = 4096 / 4

// Prefault is the worker-pinned warm-up hook of the pooled transport: it
// touches one word per page of the load vector and *writes* one zero per
// page of the arrival staging area. The staging area is allocated zeroed
// and not written until balls actually land, so on a first-touch NUMA
// policy its pages are not placed until the first round; calling Prefault
// from the pool worker that owns this shard faults them on that worker's
// node (and pulls the load vector through its cache hierarchy) before the
// run starts. Writing zero to arr is a semantic no-op — arr is all-zero
// between rounds. Must not be called mid-round.
func (s *State) Prefault() {
	if s.inRound {
		panic("engine: Prefault mid-round")
	}
	var sink int64
	for i := 0; i < s.n; i += pageInts {
		sink += int64(s.load[i])
		s.arr[i] = 0
	}
	prefaultSink.Add(sink)
}

// Deposit stages one arriving ball at bin v. Staged balls become visible at
// Commit.
func (s *State) Deposit(v int) {
	if s.arr[v] == 0 {
		s.touched = append(s.touched, int32(v))
	}
	s.arr[v]++
}

// DepositBatch stages one arriving ball at bin v−offset for every v in vs
// — the bulk form of Deposit used by the sharded engine's commit phase,
// where arrivals come pre-collected in per-shard message buffers. During a
// dense round the touched list is skipped entirely (the dense Commit
// drains arr wholesale and never reads it), which makes the batch path
// cheaper than repeated Deposit calls; because of that skip, arrivals
// staged through DepositBatch mid-round cannot be rolled back with
// ResetDeposits.
func (s *State) DepositBatch(vs []int32, offset int32) {
	arr := s.arr
	if s.inRound && !s.sparse {
		for _, v := range vs {
			arr[v-offset]++
		}
		return
	}
	for _, v := range vs {
		u := v - offset
		if arr[u] == 0 {
			s.touched = append(s.touched, u)
		}
		arr[u]++
	}
}

// ResetDeposits discards every staged arrival (the coupling's case (ii)
// redraw needs this).
func (s *State) ResetDeposits() {
	for _, v := range s.touched {
		s.arr[v] = 0
	}
	s.touched = s.touched[:0]
}

// beginRound decides the round's mode and resets per-round scratch. Dense
// rounds do not maintain the worklist bits (they never read them); the
// first sparse round after a dense one rebuilds the bits in a single pass,
// so the rebuild cost is amortized across the dense stretch.
func (s *State) beginRound() {
	if s.inRound {
		panic("engine: Release called twice without Commit")
	}
	s.inRound = true
	s.sparse = s.nonEmpty*sparseDenom < s.n
	s.stepMax = 0
	s.zeroed = s.zeroed[:0]
	if s.sparse && s.workStale {
		s.rebuildWork()
	}
	if !s.sparse {
		s.workStale = true
	}
}

// rebuildWork reconstructs the worklist bits from the load vector.
func (s *State) rebuildWork() {
	load := s.load
	var w uint64
	bit := uint64(1)
	wi := 0
	for v := range load {
		if load[v] > 0 {
			w |= bit
		}
		if bit <<= 1; bit == 0 {
			s.work.SetWord(wi, w)
			wi, w, bit = wi+1, 0, 1
		}
	}
	if len(load)&63 != 0 {
		s.work.SetWord(wi, w)
	}
	s.workStale = false
}

// ReleaseEach removes one ball from every non-empty bin, calling visit(u)
// (if non-nil) per bin in increasing bin order, and returns the number of
// released balls. Loads observed through Load during the callbacks are
// post-departure for bins at or before u and pre-departure after it;
// arrival staging via Deposit never shows through Load until Commit.
func (s *State) ReleaseEach(visit func(u int)) int {
	s.beginRound()
	if !s.sparse {
		return s.releaseEachDense(visit)
	}
	released := 0
	track := s.onEmptied != nil
	for wi, nw := 0, s.work.NumWords(); wi < nw; wi++ {
		w := s.work.Word(wi)
		base := wi << 6
		for w != 0 {
			u := base + trailingZeros(w)
			w &= w - 1
			l := s.load[u] - 1
			s.load[u] = l
			if l == 0 {
				s.work.Clear(u)
				s.nonEmpty--
				if track {
					s.zeroed = append(s.zeroed, int32(u))
				}
			} else if l > s.stepMax {
				s.stepMax = l
			}
			if visit != nil {
				visit(u)
			}
			released++
		}
	}
	return released
}

// releaseEachDense is the dense-mode ReleaseEach: a straight scan, cheaper
// per bin once most bins are occupied. The worklist is rebuilt at Commit.
func (s *State) releaseEachDense(visit func(u int)) int {
	released := 0
	track := s.onEmptied != nil
	for u := 0; u < s.n; u++ {
		if s.load[u] > 0 {
			l := s.load[u] - 1
			s.load[u] = l
			if track && l == 0 {
				s.zeroed = append(s.zeroed, int32(u))
			}
			if visit != nil {
				visit(u)
			}
			released++
		}
	}
	return released
}

// ReleaseUniform removes one ball from every non-empty bin and stages each
// released ball at a destination drawn uniformly from [0, n) — the repeated
// balls-into-bins law. Exactly one bounded draw is consumed per non-empty
// bin, in increasing bin order (the repository-wide draw-order contract).
// If visit is non-nil it is invoked as visit(u, dest) per released bin, in
// the same order. Returns the number of released balls.
func (s *State) ReleaseUniform(d *Drawer, visit func(u, dest int)) int {
	s.beginRound()
	if !s.sparse {
		return s.releaseUniformDense(d, visit)
	}
	// Pass 1: drain the worklist, collecting released bins.
	bins := s.bins[:0]
	track := s.onEmptied != nil
	for wi, nw := 0, s.work.NumWords(); wi < nw; wi++ {
		w := s.work.Word(wi)
		base := wi << 6
		for w != 0 {
			u := base + trailingZeros(w)
			w &= w - 1
			l := s.load[u] - 1
			s.load[u] = l
			if l == 0 {
				s.work.Clear(u)
				s.nonEmpty--
				if track {
					s.zeroed = append(s.zeroed, int32(u))
				}
			} else if l > s.stepMax {
				s.stepMax = l
			}
			bins = append(bins, int32(u))
		}
	}
	s.bins = bins
	// Pass 2: batched destination draws, one per released bin in bin order.
	if cap(s.dests) < len(bins) {
		s.dests = make([]int32, len(bins))
	}
	dests := s.dests[:len(bins)]
	d.Fill(dests, s.n)
	// Pass 3: stage arrivals (and report moves).
	for i, ub := range bins {
		v := int(dests[i])
		if s.arr[v] == 0 {
			s.touched = append(s.touched, int32(v))
		}
		s.arr[v]++
		if visit != nil {
			visit(int(ub), v)
		}
	}
	return len(bins)
}

// releaseUniformDense is the dense-mode ReleaseUniform: scan, draw and
// stage in one pass; arr is drained wholesale by the dense Commit. The
// common nil-visit, no-tracking case gets a dedicated loop so the compiler
// can keep it tight (this is the per-round hot path of core.Process in the
// stationary regime).
func (s *State) releaseUniformDense(d *Drawer, visit func(u, dest int)) int {
	released := 0
	load := s.load
	n := len(load)
	arr := s.arr[:n]
	if visit == nil && s.onEmptied == nil {
		src := d.src
		for u := range load {
			if l := load[u]; l > 0 {
				load[u] = l - 1
				arr[src.Intn(n)]++
				released++
			}
		}
		return released
	}
	track := s.onEmptied != nil
	for u := range load {
		if load[u] > 0 {
			l := load[u] - 1
			load[u] = l
			if track && l == 0 {
				s.zeroed = append(s.zeroed, int32(u))
			}
			dest := d.Intn(n)
			arr[dest]++
			if visit != nil {
				visit(u, dest)
			}
			released++
		}
	}
	return released
}

// Commit merges the staged arrivals, refreshes MaxLoad and EmptyBins, and
// fires the OnEmptied callback for bins that released to zero and received
// no arrival. It completes the round opened by ReleaseEach/ReleaseUniform.
func (s *State) Commit() {
	if !s.inRound {
		panic("engine: Commit without Release")
	}
	s.inRound = false
	if s.sparse {
		s.commitSparse()
	} else {
		s.commitDense()
	}
	if s.onEmptied != nil {
		for _, u := range s.zeroed {
			if s.load[u] == 0 {
				s.onEmptied(int(u))
			}
		}
		s.zeroed = s.zeroed[:0]
	}
}

// commitSparse merges only the touched bins. Every bin that can hold a ball
// after the round is either a released bin (its post-release load entered
// stepMax) or a touched arrival bin (merged here), so the maximum over both
// is the exact new maximum.
func (s *State) commitSparse() {
	max := s.stepMax
	for _, tv := range s.touched {
		v := int(tv)
		old := s.load[v]
		l := old + s.arr[v]
		s.arr[v] = 0
		s.load[v] = l
		if old == 0 {
			s.work.Set(v)
			s.nonEmpty++
		}
		if l > max {
			max = l
		}
	}
	s.touched = s.touched[:0]
	s.maxLoad = max
}

// commitDense merges with a full scan, recomputing the statistics and
// rebuilding the worklist a word at a time.
func (s *State) commitDense() {
	var max int32
	empty := 0
	load := s.load
	arr := s.arr[:len(load)]
	// Two flat conditionals (not one nested block): `l == 0` is a 40/60
	// coin flip in the stationary regime, and this shape lets the compiler
	// emit a branchless increment for it.
	for v := range load {
		l := load[v] + arr[v]
		arr[v] = 0
		load[v] = l
		if l > max {
			max = l
		}
		if l == 0 {
			empty++
		}
	}
	s.touched = s.touched[:0]
	s.maxLoad = max
	s.nonEmpty = len(load) - empty
}

// Snapshot returns a copy of the load vector and of the worklist words for
// checkpointing. The worklist is derivable from the loads; serializing both
// lets Restore cross-check them, so a corrupted snapshot is rejected instead
// of silently resuming from an inconsistent state. It must not be called
// mid-round (between a Release* call and Commit).
func (s *State) Snapshot() (loads []int32, work []uint64, err error) {
	if s.inRound {
		return nil, nil, errors.New("engine: Snapshot mid-round")
	}
	if s.workStale {
		s.rebuildWork()
	}
	loads = s.LoadsCopy()
	work = make([]uint64, s.work.NumWords())
	for i := range work {
		work[i] = s.work.Word(i)
	}
	return loads, work, nil
}

// Restore replaces the configuration from a snapshot taken with Snapshot.
// It rebuilds the statistics from loads (as Reload does) and then verifies
// that work matches the rebuilt worklist bit for bit, returning an error —
// and leaving the State in the reloaded, self-consistent form — on any
// mismatch.
func (s *State) Restore(loads []int32, work []uint64) error {
	if err := s.Reload(loads); err != nil {
		return err
	}
	if len(work) != s.work.NumWords() {
		return fmt.Errorf("engine: Restore with %d worklist words, want %d", len(work), s.work.NumWords())
	}
	for i := range work {
		if work[i] != s.work.Word(i) {
			return fmt.Errorf("engine: worklist word %d inconsistent with loads", i)
		}
	}
	return nil
}

// CheckInvariants verifies that the worklist, counters and cached maximum
// agree with the load vector; tests call it after arbitrary rounds.
func (s *State) CheckInvariants() error {
	if s.inRound {
		return errors.New("engine: CheckInvariants mid-round")
	}
	if s.workStale {
		s.rebuildWork()
	}
	var max int32
	nonEmpty := 0
	for u, l := range s.load {
		if l < 0 {
			return fmt.Errorf("engine: bin %d negative load %d", u, l)
		}
		if (l > 0) != s.work.Test(u) {
			return fmt.Errorf("engine: worklist bit %d = %v for load %d", u, s.work.Test(u), l)
		}
		if l > 0 {
			nonEmpty++
			if l > max {
				max = l
			}
		}
		if s.arr[u] != 0 {
			return fmt.Errorf("engine: leftover staged arrival at bin %d", u)
		}
	}
	if nonEmpty != s.nonEmpty {
		return fmt.Errorf("engine: nonEmpty %d, counted %d", s.nonEmpty, nonEmpty)
	}
	if max != s.maxLoad {
		return fmt.Errorf("engine: maxLoad %d, counted %d", s.maxLoad, max)
	}
	return nil
}
