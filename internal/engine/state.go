// Package engine is the shared stepping layer under every synchronous
// process in this repository (core.Process, core.TokenProcess,
// core.ChoicesProcess, tetris.Process, coupling.Coupled, walks.Traversal).
//
// The paper's headline regime is sparse: after self-stabilization most bins
// hold O(1) balls, and from the worst-case AllInOne start only a handful of
// bins are non-empty for a long prefix of the run. A State therefore keeps
// the set of non-empty bins as an incrementally maintained worklist
// (internal/bitset, iterated in increasing bin order) and updates max-load
// and empty-count from the bins actually touched in a round, instead of
// rescanning all n bins. When the worklist grows past a constant fraction
// of n the State switches to a dense scan for that round — the dense scan
// is cheaper per bin, and the switch is invisible to callers.
//
// # Load representation
//
// The same max-load bound makes loads tiny: Θ(log n) w.h.p. means a bin
// load rarely needs more than one byte. A State therefore stores the load
// vector and the arrival staging area at the narrowest of uint8, uint16 or
// int32 that fits (Options.Width can pin a floor), and widens — 8→16→32,
// never back — the moment any value would overflow the current type. The
// widening check is exact and its trigger is order-independent within a
// round (a staged count or a committed sum either exceeds the type's range
// or it does not, regardless of the order increments arrive in), so the
// width after any round is a pure function of the trajectory and the floor:
// identical across transports, worker counts and snapshot/resume cuts. All
// accessors keep their int32 signatures; representation is invisible to
// callers except through Width/LoadBytes.
//
// # Round protocol
//
// A synchronous round against a State is:
//
//	state.ReleaseEach(visit)        // or ReleaseUniform(drawer, visit)
//	state.Deposit(v)                // zero or more, any time before Commit
//	state.Commit()
//
// Release* removes exactly one ball from every non-empty bin, visiting bins
// in increasing bin order. Deposit stages an arrival; staged arrivals are
// not visible through Load until Commit merges them. Commit completes the
// round and refreshes MaxLoad/EmptyBins. Deposits may also be staged before
// the round's Release* call (the coupling construction needs this); the
// effect is identical.
//
// # RNG draw-order contract
//
// Sparse and dense rounds consume randomness identically: whatever draws
// the caller performs happen once per released bin, in increasing bin
// order, because that is the order both release paths visit bins in.
// ReleaseUniform itself draws exactly one bounded value per non-empty bin,
// in bin order, from the supplied Drawer. A State therefore produces
// byte-identical trajectories to the historical dense engines for any seed
// — the golden tests pin this. Widening never consumes a draw and never
// changes a value, so the trajectory is also independent of the width.
package engine

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"

	"repro/internal/bitset"
)

// trailingZeros is a local alias keeping the worklist drain loops compact.
func trailingZeros(w uint64) int { return bits.TrailingZeros64(w) }

// sparseDenom sets the sparse/dense switch: a round runs sparse when
// |W| * sparseDenom < n. The dense per-bin constant is a few ns while the
// sparse per-bin constant is roughly 3× that, so n/3 is the break-even.
const sparseDenom = 3

// Width is the storage width of the load vector and arrival staging area.
// The zero value (WidthAuto) means "narrowest that fits, widen on demand";
// the explicit widths are floors — a State never stores narrower than its
// floor and never narrower than its values require.
type Width uint8

const (
	// WidthAuto picks the narrowest width that fits the initial loads.
	WidthAuto Width = 0
	// Width8 stores loads as uint8 (range [0, 255]).
	Width8 Width = 8
	// Width16 stores loads as uint16 (range [0, 65535]).
	Width16 Width = 16
	// Width32 stores loads as int32 — the historical representation and
	// the widest supported one.
	Width32 Width = 32
)

// String returns the flag spelling of the width.
func (w Width) String() string {
	if w == WidthAuto {
		return "auto"
	}
	return fmt.Sprintf("%d", uint8(w))
}

// ParseWidth parses a load-width name: "auto" (or empty), "8", "16", "32".
func ParseWidth(s string) (Width, error) {
	switch s {
	case "", "auto":
		return WidthAuto, nil
	case "8":
		return Width8, nil
	case "16":
		return Width16, nil
	case "32":
		return Width32, nil
	}
	return 0, fmt.Errorf("engine: unknown load width %q (want auto|8|16|32)", s)
}

// valid reports whether w is one of the defined Width values.
func (w Width) valid() bool {
	return w == WidthAuto || w == Width8 || w == Width16 || w == Width32
}

// fitWidth returns the narrowest width representing max.
func fitWidth(max int32) Width {
	switch {
	case max <= math.MaxUint8:
		return Width8
	case max <= math.MaxUint16:
		return Width16
	default:
		return Width32
	}
}

// maxWidth returns the wider of a and b (the widths are ordered by their
// numeric bit counts, with WidthAuto = 0 below all of them).
func maxWidth(a, b Width) Width {
	if a > b {
		return a
	}
	return b
}

// WidthFor returns the storage width a fresh State with the given floor
// picks for a load vector whose maximum is max — the single definition of
// the auto rule, shared with shard.InitialSnapshot (which must predict the
// width a worker's State will report without constructing one).
func WidthFor(max int32, floor Width) Width {
	w := maxWidth(floor, fitWidth(max))
	if w == WidthAuto {
		w = Width8
	}
	return w
}

// loadElem is the set of storage types a load vector can use.
type loadElem interface {
	uint8 | uint16 | int32
}

// Options configures a State.
type Options struct {
	// OnEmptied, if non-nil, is invoked during Commit for every bin that
	// was non-empty at the start of the round and is empty after arrivals
	// merge, in increasing bin order. Tetris uses it for the Lemma 4
	// first-emptying times.
	OnEmptied func(u int)
	// Width is the storage-width floor (default WidthAuto: narrowest that
	// fits). The trajectory is independent of it; only memory and the
	// recorded snapshot width depend on it.
	Width Width
	// Kernel selects the dense-round implementation (default KernelBatched).
	// The trajectory is independent of it; only speed depends on it.
	Kernel Kernel
}

// State is a load vector with an incrementally maintained non-empty-bin
// worklist and O(touched) per-round statistics. Create with New; not safe
// for concurrent use.
//
// Exactly one of the (load8, arr8)/(load16, arr16)/(load32, arr32) pairs is
// live, selected by width; every public accessor dispatches on it. The
// widening ratchet only ever moves 8→16→32, mid-round included (widening is
// a pure value-preserving representation change).
type State struct {
	n     int
	width Width
	work  *bitset.Set

	load8, arr8   []uint8
	load16, arr16 []uint16
	load32, arr32 []int32

	nonEmpty int
	maxLoad  int32

	minWidth  Width   // Options.Width floor (never narrower than this)
	loadsView []int32 // lazily allocated Loads() view for narrow widths

	touched   []int32 // bins with staged arrivals (host deposits and sparse rounds)
	zeroed    []int32 // bins released to zero this round (only if onEmptied != nil)
	bins      []int32 // scratch: released bins of a sparse ReleaseUniform
	dests     []int32 // scratch: batched destinations of a ReleaseUniform
	dests2    []int32 // scratch: segment-partitioned destinations (batched dense kernel)
	bucketOff []int32 // scratch: radix bucket cursors (batched dense kernel)

	stepMax   int32 // max post-release load seen this round (sparse rounds)
	sparse    bool  // mode of the in-flight round
	inRound   bool
	workStale bool // worklist bits out of date (rebuilt lazily after dense rounds)
	kernel    Kernel
	onEmptied func(u int)
}

// New builds a State over a copy of loads. It returns an error if loads is
// empty, contains a negative entry, or opts.Width is not a defined Width.
func New(loads []int32, opts Options) (*State, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("engine: New with no bins")
	}
	if !opts.Width.valid() {
		return nil, fmt.Errorf("engine: invalid load width %d", uint8(opts.Width))
	}
	if !opts.Kernel.valid() {
		return nil, fmt.Errorf("engine: invalid kernel %d", uint8(opts.Kernel))
	}
	s := &State{
		n:         n,
		work:      bitset.New(n),
		minWidth:  opts.Width,
		kernel:    opts.Kernel,
		onEmptied: opts.OnEmptied,
	}
	noteKernel(opts.Kernel)
	if err := s.Reload(loads); err != nil {
		return nil, err
	}
	return s, nil
}

// Reload replaces the configuration wholesale and refreshes all statistics
// — the one full-vector scan in the layer (construction and the §4.1
// adversarial reassignment both funnel through it). It must not be called
// mid-round. The storage width ratchets: Reload widens if the new loads
// need it but never narrows (so snapshot widths stay monotone over a
// State's lifetime).
func (s *State) Reload(loads []int32) error {
	if len(loads) != s.n {
		return fmt.Errorf("engine: Reload with %d bins, want %d", len(loads), s.n)
	}
	if s.inRound {
		return errors.New("engine: Reload mid-round")
	}
	var max int32
	for v, l := range loads {
		if l < 0 {
			return fmt.Errorf("engine: bin %d has negative load %d", v, l)
		}
		if l > max {
			max = l
		}
	}
	desired := WidthFor(max, maxWidth(s.width, s.minWidth))
	if s.width == WidthAuto {
		// Fresh state: allocate the backing pair directly at the target
		// width (arr starts all-zero).
		s.width = desired
		switch desired {
		case Width8:
			s.load8, s.arr8 = make([]uint8, s.n), make([]uint8, s.n)
		case Width16:
			s.load16, s.arr16 = make([]uint16, s.n), make([]uint16, s.n)
		default:
			s.load32, s.arr32 = make([]int32, s.n), make([]int32, s.n)
		}
	} else {
		// Live state: widen in place (preserving any staged arrivals, which
		// Reload has never touched).
		for s.width < desired {
			s.widen()
		}
	}
	switch s.width {
	case Width8:
		fillLoadsW(s, s.load8, loads)
	case Width16:
		fillLoadsW(s, s.load16, loads)
	default:
		fillLoadsW(s, s.load32, loads)
	}
	s.maxLoad = max
	s.workStale = false
	return nil
}

// fillLoadsW copies loads into the live backing array, rebuilding the
// worklist words and the non-empty count. Negative entries were rejected
// and max computed by the caller's validation pass.
func fillLoadsW[L loadElem](s *State, load []L, loads []int32) {
	nonEmpty := 0
	for base := 0; base < s.n; base += 64 {
		lim := base + 64
		if lim > s.n {
			lim = s.n
		}
		var w uint64
		for v := base; v < lim; v++ {
			l := loads[v]
			load[v] = L(l)
			if l > 0 {
				w |= 1 << uint(v-base)
				nonEmpty++
			}
		}
		s.work.SetWord(base>>6, w)
	}
	s.nonEmpty = nonEmpty
}

// widen moves the backing arrays one step up the 8→16→32 ladder, preserving
// every load and staged arrival exactly. Safe mid-round: the worklist,
// touched/zeroed lists and statistics all refer to bin indices and values,
// none of which change. Widening past int32 is impossible by construction
// (the total ball count of every supported configuration fits int32), so
// requesting it panics rather than silently wrapping.
func (s *State) widen() {
	switch s.width {
	case Width8:
		s.load16, s.arr16 = widenSlice[uint8, uint16](s.load8), widenSlice[uint8, uint16](s.arr8)
		s.load8, s.arr8 = nil, nil
		s.width = Width16
	case Width16:
		s.load32, s.arr32 = widenSlice[uint16, int32](s.load16), widenSlice[uint16, int32](s.arr16)
		s.load16, s.arr16 = nil, nil
		s.width = Width32
	default:
		panic("engine: widen past int32 (ball count exceeds int32 range)")
	}
	noteWiden(s.width)
}

// widenSlice converts src into a freshly allocated wider representation.
func widenSlice[A, B loadElem](src []A) []B {
	out := make([]B, len(src))
	for i, v := range src {
		out[i] = B(v)
	}
	return out
}

// WidenTo ratchets the storage width up to at least w (no-op when the State
// is already that wide or wider; WidthAuto is a no-op). Restore paths use
// it to reapply the width recorded in a snapshot, which may be wider than
// the current values require — keeping resumed runs' snapshot bytes
// identical to uninterrupted ones.
func (s *State) WidenTo(w Width) error {
	if !w.valid() {
		return fmt.Errorf("engine: invalid load width %d", uint8(w))
	}
	for s.width < w {
		s.widen()
	}
	return nil
}

// Width returns the current storage width (Width8, Width16 or Width32).
func (s *State) Width() Width { return s.width }

// Kernel returns the dense-round kernel this State runs.
func (s *State) Kernel() Kernel { return s.kernel }

// LoadBytes returns the resident bytes of the load vector and the arrival
// staging area at the current width. It is deliberately a pure function of
// (n, width) — it feeds byte-compared run summaries, and the kernel choice
// is placement-plane — so kernel scratch is reported by ScratchBytes
// instead.
func (s *State) LoadBytes() int64 {
	return int64(s.n) * 2 * int64(uint8(s.width)/8)
}

// ScratchBytes returns the resident bytes of the per-round scratch buffers
// (released bins, drawn destinations, the batched kernel's partition buffer
// and bucket cursors). Zero until the first round that needs them; bounded
// by ~12·n bytes for the batched dense kernel.
func (s *State) ScratchBytes() int64 {
	return int64(cap(s.bins)+cap(s.dests)+cap(s.dests2)+cap(s.bucketOff)) * 4
}

// N returns the number of bins.
func (s *State) N() int { return s.n }

// MaxLoad returns the current maximum bin load.
func (s *State) MaxLoad() int32 { return s.maxLoad }

// EmptyBins returns the current number of empty bins.
func (s *State) EmptyBins() int { return s.n - s.nonEmpty }

// NonEmptyBins returns |W|, the current number of non-empty bins.
func (s *State) NonEmptyBins() int { return s.nonEmpty }

// Load returns the load of bin u. Between a Release* call and Commit it
// reflects the post-departure, pre-arrival snapshot (the d-choices rule
// compares against exactly this snapshot).
func (s *State) Load(u int) int32 {
	switch s.width {
	case Width8:
		return int32(s.load8[u])
	case Width16:
		return int32(s.load16[u])
	default:
		return s.load32[u]
	}
}

// Loads returns the load vector as int32 values. At Width32 this is the
// live backing array; at narrower widths it is a per-State view refreshed
// on every call. Callers must not modify it and must copy it if they need
// it across rounds (a later call may overwrite the view).
func (s *State) Loads() []int32 {
	if s.width == Width32 {
		return s.load32
	}
	if s.loadsView == nil {
		s.loadsView = make([]int32, s.n)
	}
	switch s.width {
	case Width8:
		for i, l := range s.load8 {
			s.loadsView[i] = int32(l)
		}
	default:
		for i, l := range s.load16 {
			s.loadsView[i] = int32(l)
		}
	}
	return s.loadsView
}

// AppendLoads appends the load vector (as int32) to dst and returns the
// extended slice — the allocation-free alternative to Loads for callers
// assembling a global vector from shards.
func (s *State) AppendLoads(dst []int32) []int32 {
	switch s.width {
	case Width8:
		for _, l := range s.load8 {
			dst = append(dst, int32(l))
		}
	case Width16:
		for _, l := range s.load16 {
			dst = append(dst, int32(l))
		}
	default:
		dst = append(dst, s.load32...)
	}
	return dst
}

// LoadsCopy returns a fresh copy of the current load vector.
func (s *State) LoadsCopy() []int32 {
	return s.AppendLoads(make([]int32, 0, s.n))
}

// Sum returns the total number of balls currently in the system (staged
// arrivals excluded).
func (s *State) Sum() int64 {
	switch s.width {
	case Width8:
		return sumW(s.load8)
	case Width16:
		return sumW(s.load16)
	default:
		return sumW(s.load32)
	}
}

func sumW[L loadElem](load []L) int64 {
	var t int64
	for _, l := range load {
		t += int64(l)
	}
	return t
}

// prefaultSink keeps the Prefault read loop observable so the compiler
// cannot elide it; atomic because pool workers prefault shards
// concurrently.
var prefaultSink atomic.Int64

// pageBytes is the prefault stride unit: one touch per 4 KiB page.
const pageBytes = 4096

// Prefault is the worker-pinned warm-up hook of the pooled transport: it
// touches one element per page of the load vector and *writes* one zero per
// page of the arrival staging area. The staging area is allocated zeroed
// and not written until balls actually land, so on a first-touch NUMA
// policy its pages are not placed until the first round; calling Prefault
// from the pool worker that owns this shard faults them on that worker's
// node (and pulls the load vector through its cache hierarchy) before the
// run starts. Writing zero to arr is a semantic no-op — arr is all-zero
// between rounds. Must not be called mid-round.
func (s *State) Prefault() {
	if s.inRound {
		panic("engine: Prefault mid-round")
	}
	var sink int64
	switch s.width {
	case Width8:
		sink = prefaultW(s.load8, s.arr8, pageBytes/1)
	case Width16:
		sink = prefaultW(s.load16, s.arr16, pageBytes/2)
	default:
		sink = prefaultW(s.load32, s.arr32, pageBytes/4)
	}
	prefaultSink.Add(sink)
}

func prefaultW[L loadElem](load, arr []L, stride int) int64 {
	var sink int64
	for i := 0; i < len(load); i += stride {
		sink += int64(load[i])
		arr[i] = 0
	}
	return sink
}

// Deposit stages one arriving ball at bin v. Staged balls become visible at
// Commit.
func (s *State) Deposit(v int) {
	for {
		switch s.width {
		case Width8:
			if a := s.arr8[v]; a != math.MaxUint8 {
				if a == 0 {
					s.touched = append(s.touched, int32(v))
				}
				s.arr8[v] = a + 1
				return
			}
		case Width16:
			if a := s.arr16[v]; a != math.MaxUint16 {
				if a == 0 {
					s.touched = append(s.touched, int32(v))
				}
				s.arr16[v] = a + 1
				return
			}
		default:
			if s.arr32[v] == 0 {
				s.touched = append(s.touched, int32(v))
			}
			s.arr32[v]++
			return
		}
		s.widen()
	}
}

// DepositBatch stages one arriving ball at bin v−offset for every v in vs
// — the bulk form of Deposit used by the sharded engine's commit phase,
// where arrivals come pre-collected in per-shard message buffers. During a
// dense round the touched list is skipped entirely (the dense Commit
// drains arr wholesale and never reads it), which makes the batch path
// cheaper than repeated Deposit calls; because of that skip, arrivals
// staged through DepositBatch mid-round cannot be rolled back with
// ResetDeposits.
func (s *State) DepositBatch(vs []int32, offset int32) {
	dense := s.inRound && !s.sparse
	start := 0
	for {
		var ov int
		switch s.width {
		case Width8:
			ov = depositBatchW(s, s.arr8, math.MaxUint8, vs, offset, dense, start)
		case Width16:
			ov = depositBatchW(s, s.arr16, math.MaxUint16, vs, offset, dense, start)
		default:
			ov = depositBatchW(s, s.arr32, math.MaxInt32, vs, offset, dense, start)
		}
		if ov < 0 {
			return
		}
		s.widen()
		start = ov
	}
}

// depositBatchW stages vs[start:] and returns the index whose staged count
// would overflow the current width (the caller widens and resumes there),
// or −1 when done.
func depositBatchW[L loadElem](s *State, arr []L, lim L, vs []int32, offset int32, dense bool, start int) int {
	if dense {
		for i := start; i < len(vs); i++ {
			u := vs[i] - offset
			a := arr[u]
			if a == lim {
				return i
			}
			arr[u] = a + 1
		}
		return -1
	}
	for i := start; i < len(vs); i++ {
		u := vs[i] - offset
		a := arr[u]
		if a == lim {
			return i
		}
		if a == 0 {
			s.touched = append(s.touched, u)
		}
		arr[u] = a + 1
	}
	return -1
}

// ResetDeposits discards every staged arrival (the coupling's case (ii)
// redraw needs this).
func (s *State) ResetDeposits() {
	switch s.width {
	case Width8:
		for _, v := range s.touched {
			s.arr8[v] = 0
		}
	case Width16:
		for _, v := range s.touched {
			s.arr16[v] = 0
		}
	default:
		for _, v := range s.touched {
			s.arr32[v] = 0
		}
	}
	s.touched = s.touched[:0]
}

// beginRound decides the round's mode and resets per-round scratch. Dense
// rounds do not maintain the worklist bits (they never read them); the
// first sparse round after a dense one rebuilds the bits in a single pass,
// so the rebuild cost is amortized across the dense stretch.
func (s *State) beginRound() {
	if s.inRound {
		panic("engine: Release called twice without Commit")
	}
	s.inRound = true
	s.sparse = s.nonEmpty*sparseDenom < s.n
	s.stepMax = 0
	s.zeroed = s.zeroed[:0]
	if s.sparse && s.workStale {
		s.rebuildWork()
	}
	if !s.sparse {
		s.workStale = true
	}
}

// rebuildWork reconstructs the worklist bits from the load vector.
func (s *State) rebuildWork() {
	switch s.width {
	case Width8:
		rebuildWorkW(s, s.load8)
	case Width16:
		rebuildWorkW(s, s.load16)
	default:
		rebuildWorkW(s, s.load32)
	}
	s.workStale = false
}

func rebuildWorkW[L loadElem](s *State, load []L) {
	var w uint64
	bit := uint64(1)
	wi := 0
	for v := range load {
		if load[v] > 0 {
			w |= bit
		}
		if bit <<= 1; bit == 0 {
			s.work.SetWord(wi, w)
			wi, w, bit = wi+1, 0, 1
		}
	}
	if len(load)&63 != 0 {
		s.work.SetWord(wi, w)
	}
}

// ReleaseEach removes one ball from every non-empty bin, calling visit(u)
// (if non-nil) per bin in increasing bin order, and returns the number of
// released balls. Loads observed through Load during the callbacks are
// post-departure for bins at or before u and pre-departure after it;
// arrival staging via Deposit never shows through Load until Commit.
func (s *State) ReleaseEach(visit func(u int)) int {
	s.beginRound()
	if !s.sparse {
		if s.kernel == KernelBatched && s.width == Width8 && visit == nil && s.onEmptied == nil {
			// Nothing observes per-bin order: the SWAR decrement is the
			// whole dense release (worklist and stats rebuild at Commit).
			return decDense8SWAR(s.load8)
		}
		switch s.width {
		case Width8:
			return releaseEachDenseW(s, s.load8, visit)
		case Width16:
			return releaseEachDenseW(s, s.load16, visit)
		default:
			return releaseEachDenseW(s, s.load32, visit)
		}
	}
	switch s.width {
	case Width8:
		return releaseEachW(s, s.load8, visit)
	case Width16:
		return releaseEachW(s, s.load16, visit)
	default:
		return releaseEachW(s, s.load32, visit)
	}
}

func releaseEachW[L loadElem](s *State, load []L, visit func(u int)) int {
	released := 0
	track := s.onEmptied != nil
	for wi, nw := 0, s.work.NumWords(); wi < nw; wi++ {
		w := s.work.Word(wi)
		base := wi << 6
		for w != 0 {
			u := base + trailingZeros(w)
			w &= w - 1
			l := load[u] - 1
			load[u] = l
			if l == 0 {
				s.work.Clear(u)
				s.nonEmpty--
				if track {
					s.zeroed = append(s.zeroed, int32(u))
				}
			} else if int32(l) > s.stepMax {
				s.stepMax = int32(l)
			}
			if visit != nil {
				visit(u)
			}
			released++
		}
	}
	return released
}

// releaseEachDenseW is the dense-mode ReleaseEach: a straight scan, cheaper
// per bin once most bins are occupied. The worklist is rebuilt at Commit.
func releaseEachDenseW[L loadElem](s *State, load []L, visit func(u int)) int {
	released := 0
	track := s.onEmptied != nil
	for u := 0; u < len(load); u++ {
		if load[u] > 0 {
			l := load[u] - 1
			load[u] = l
			if track && l == 0 {
				s.zeroed = append(s.zeroed, int32(u))
			}
			if visit != nil {
				visit(u)
			}
			released++
		}
	}
	return released
}

// ReleaseUniform removes one ball from every non-empty bin and stages each
// released ball at a destination drawn uniformly from [0, n) — the repeated
// balls-into-bins law. Exactly one bounded draw is consumed per non-empty
// bin, in increasing bin order (the repository-wide draw-order contract).
// If visit is non-nil it is invoked as visit(u, dest) per released bin, in
// the same order. Returns the number of released balls.
func (s *State) ReleaseUniform(d *Drawer, visit func(u, dest int)) int {
	s.beginRound()
	if !s.sparse {
		if s.kernel == KernelBatched && visit == nil {
			// A visit callback observes the scalar loop's decrement/draw/
			// stage interleaving, so only nil-visit rounds may batch.
			return s.releaseUniformDenseBatched(d)
		}
		return s.releaseUniformDense(d, visit)
	}
	// Pass 1: drain the worklist, collecting released bins.
	switch s.width {
	case Width8:
		releaseUniformSparse1W(s, s.load8)
	case Width16:
		releaseUniformSparse1W(s, s.load16)
	default:
		releaseUniformSparse1W(s, s.load32)
	}
	bins := s.bins
	// Pass 2: batched destination draws, one per released bin in bin order.
	if cap(s.dests) < len(bins) {
		s.dests = make([]int32, len(bins))
	}
	dests := s.dests[:len(bins)]
	d.Fill(dests, s.n)
	// Pass 3: stage arrivals (and report moves), widening on demand.
	start := 0
	for {
		var ov int
		switch s.width {
		case Width8:
			ov = stageArrW(s, s.arr8, math.MaxUint8, visit, start)
		case Width16:
			ov = stageArrW(s, s.arr16, math.MaxUint16, visit, start)
		default:
			ov = stageArrW(s, s.arr32, math.MaxInt32, visit, start)
		}
		if ov < 0 {
			break
		}
		s.widen()
		start = ov
	}
	return len(bins)
}

// releaseUniformSparse1W drains the worklist into s.bins, decrementing each
// released bin and maintaining stepMax/nonEmpty/zeroed.
func releaseUniformSparse1W[L loadElem](s *State, load []L) {
	bins := s.bins[:0]
	track := s.onEmptied != nil
	for wi, nw := 0, s.work.NumWords(); wi < nw; wi++ {
		w := s.work.Word(wi)
		base := wi << 6
		for w != 0 {
			u := base + trailingZeros(w)
			w &= w - 1
			l := load[u] - 1
			load[u] = l
			if l == 0 {
				s.work.Clear(u)
				s.nonEmpty--
				if track {
					s.zeroed = append(s.zeroed, int32(u))
				}
			} else if int32(l) > s.stepMax {
				s.stepMax = int32(l)
			}
			bins = append(bins, int32(u))
		}
	}
	s.bins = bins
}

// stageArrW stages the drawn arrivals (s.bins → s.dests) from index start,
// returning the index whose staged count would overflow (the caller widens
// and resumes there), or −1 when done.
func stageArrW[L loadElem](s *State, arr []L, lim L, visit func(u, dest int), start int) int {
	bins := s.bins
	dests := s.dests[:len(bins)]
	for i := start; i < len(bins); i++ {
		v := dests[i]
		a := arr[v]
		if a == lim {
			return i
		}
		if a == 0 {
			s.touched = append(s.touched, v)
		}
		arr[v] = a + 1
		if visit != nil {
			visit(int(bins[i]), int(v))
		}
	}
	return -1
}

// releaseUniformDense is the dense-mode ReleaseUniform: scan, draw and
// stage in one pass; arr is drained wholesale by the dense Commit. On an
// arrival-staging overflow the in-flight ball (released, destination drawn,
// not yet staged) is applied here after widening, and the scan resumes.
func (s *State) releaseUniformDense(d *Drawer, visit func(u, dest int)) int {
	released := 0
	start := 0
	for {
		var u, dest int
		switch s.width {
		case Width8:
			released, u, dest = releaseUniformDenseW(s, s.load8, s.arr8, math.MaxUint8, d, visit, start, released)
		case Width16:
			released, u, dest = releaseUniformDenseW(s, s.load16, s.arr16, math.MaxUint16, d, visit, start, released)
		default:
			released, u, dest = releaseUniformDenseW(s, s.load32, s.arr32, math.MaxInt32, d, visit, start, released)
		}
		if u < 0 {
			return released
		}
		s.widen()
		switch s.width {
		case Width16:
			s.arr16[dest]++
		default:
			s.arr32[dest]++
		}
		if visit != nil {
			visit(u, dest)
		}
		released++
		start = u + 1
	}
}

// releaseUniformDenseW scans bins from start. On an arrival-count overflow
// it returns (released so far, releasing bin, drawn destination) with the
// arrival not yet staged (and visit not yet called) for that ball;
// (released, −1, 0) when the scan completes. The common nil-visit,
// no-tracking case gets a dedicated loop so the compiler can keep it tight
// (this is the per-round hot path of core.Process in the stationary
// regime).
func releaseUniformDenseW[L loadElem](s *State, load, arr []L, lim L, d *Drawer, visit func(u, dest int), start, released int) (int, int, int) {
	n := len(load)
	if visit == nil && s.onEmptied == nil {
		src := d.src
		for u := start; u < n; u++ {
			if l := load[u]; l > 0 {
				load[u] = l - 1
				dest := src.Intn(n)
				a := arr[dest]
				if a == lim {
					return released, u, dest
				}
				arr[dest] = a + 1
				released++
			}
		}
		return released, -1, 0
	}
	track := s.onEmptied != nil
	for u := start; u < n; u++ {
		if load[u] > 0 {
			l := load[u] - 1
			load[u] = l
			if track && l == 0 {
				s.zeroed = append(s.zeroed, int32(u))
			}
			dest := d.Intn(n)
			a := arr[dest]
			if a == lim {
				return released, u, dest
			}
			arr[dest] = a + 1
			if visit != nil {
				visit(u, dest)
			}
			released++
		}
	}
	return released, -1, 0
}

// Commit merges the staged arrivals, refreshes MaxLoad and EmptyBins, and
// fires the OnEmptied callback for bins that released to zero and received
// no arrival. It completes the round opened by ReleaseEach/ReleaseUniform.
func (s *State) Commit() {
	if !s.inRound {
		panic("engine: Commit without Release")
	}
	s.inRound = false
	if s.sparse {
		s.commitSparse()
	} else {
		s.commitDense()
	}
	if s.onEmptied != nil {
		for _, u := range s.zeroed {
			if s.Load(int(u)) == 0 {
				s.onEmptied(int(u))
			}
		}
		s.zeroed = s.zeroed[:0]
	}
}

// commitSparse merges only the touched bins. Every bin that can hold a ball
// after the round is either a released bin (its post-release load entered
// stepMax) or a touched arrival bin (merged here), so the maximum over both
// is the exact new maximum.
func (s *State) commitSparse() {
	max := s.stepMax
	start := 0
	for {
		var ov int
		switch s.width {
		case Width8:
			max, ov = commitSparseW(s, s.load8, s.arr8, math.MaxUint8, start, max)
		case Width16:
			max, ov = commitSparseW(s, s.load16, s.arr16, math.MaxUint16, start, max)
		default:
			max, ov = commitSparseW(s, s.load32, s.arr32, math.MaxInt32, start, max)
		}
		if ov < 0 {
			break
		}
		s.widen()
		start = ov
	}
	s.touched = s.touched[:0]
	s.maxLoad = max
}

// commitSparseW merges touched bins from index start, returning the updated
// maximum and the index whose merged load would overflow (the caller widens
// and resumes there; nothing is written for that bin), or −1 when done.
func commitSparseW[L loadElem](s *State, load, arr []L, lim int64, start int, max int32) (int32, int) {
	for i := start; i < len(s.touched); i++ {
		v := s.touched[i]
		old := load[v]
		sum := int64(old) + int64(arr[v])
		if sum > lim {
			return max, i
		}
		arr[v] = 0
		load[v] = L(sum)
		if old == 0 {
			s.work.Set(int(v))
			s.nonEmpty++
		}
		if int32(sum) > max {
			max = int32(sum)
		}
	}
	return max, -1
}

// commitDense merges with a full scan, recomputing the statistics and
// rebuilding the worklist a word at a time.
func (s *State) commitDense() {
	var max int32
	empty := 0
	start := 0
	for {
		var ov int
		switch s.width {
		case Width8:
			if s.kernel == KernelBatched {
				max, empty, ov = commitDense8SWAR(s.load8, s.arr8, start, max, empty)
			} else {
				max, empty, ov = commitDenseW(s.load8, s.arr8, math.MaxUint8, start, max, empty)
			}
		case Width16:
			max, empty, ov = commitDenseW(s.load16, s.arr16, math.MaxUint16, start, max, empty)
		default:
			max, empty, ov = commitDenseW(s.load32, s.arr32, math.MaxInt32, start, max, empty)
		}
		if ov < 0 {
			break
		}
		s.widen()
		start = ov
	}
	s.touched = s.touched[:0]
	s.maxLoad = max
	s.nonEmpty = s.n - empty
}

// commitDenseW merges bins [start, n), returning the running maximum, the
// running empty count, and the bin whose merged load would overflow (the
// caller widens and resumes there), or −1 when the scan completes.
func commitDenseW[L loadElem](load, arr []L, lim int64, start int, max int32, empty int) (int32, int, int) {
	// Two flat conditionals (not one nested block): `l == 0` is a 40/60
	// coin flip in the stationary regime, and this shape lets the compiler
	// emit a branchless increment for it.
	for v := start; v < len(load); v++ {
		sum := int64(load[v]) + int64(arr[v])
		if sum > lim {
			return max, empty, v
		}
		arr[v] = 0
		load[v] = L(sum)
		if int32(sum) > max {
			max = int32(sum)
		}
		if sum == 0 {
			empty++
		}
	}
	return max, empty, -1
}

// Snapshot returns a copy of the load vector (as int32, regardless of the
// storage width) and of the worklist words for checkpointing. The worklist
// is derivable from the loads; serializing both lets Restore cross-check
// them, so a corrupted snapshot is rejected instead of silently resuming
// from an inconsistent state. It must not be called mid-round (between a
// Release* call and Commit).
func (s *State) Snapshot() (loads []int32, work []uint64, err error) {
	if s.inRound {
		return nil, nil, errors.New("engine: Snapshot mid-round")
	}
	if s.workStale {
		s.rebuildWork()
	}
	loads = s.LoadsCopy()
	work = make([]uint64, s.work.NumWords())
	for i := range work {
		work[i] = s.work.Word(i)
	}
	return loads, work, nil
}

// Restore replaces the configuration from a snapshot taken with Snapshot.
// It rebuilds the statistics from loads (as Reload does) and then verifies
// that work matches the rebuilt worklist bit for bit, returning an error —
// and leaving the State in the reloaded, self-consistent form — on any
// mismatch. The storage width follows the Reload ratchet; callers restoring
// a snapshot that recorded a wider width apply it with WidenTo afterwards.
func (s *State) Restore(loads []int32, work []uint64) error {
	if err := s.Reload(loads); err != nil {
		return err
	}
	if len(work) != s.work.NumWords() {
		return fmt.Errorf("engine: Restore with %d worklist words, want %d", len(work), s.work.NumWords())
	}
	for i := range work {
		if work[i] != s.work.Word(i) {
			return fmt.Errorf("engine: worklist word %d inconsistent with loads", i)
		}
	}
	return nil
}

// CheckInvariants verifies that the worklist, counters and cached maximum
// agree with the load vector; tests call it after arbitrary rounds.
func (s *State) CheckInvariants() error {
	if s.inRound {
		return errors.New("engine: CheckInvariants mid-round")
	}
	if s.workStale {
		s.rebuildWork()
	}
	if s.width < s.minWidth {
		return fmt.Errorf("engine: width %d below floor %d", uint8(s.width), uint8(s.minWidth))
	}
	switch s.width {
	case Width8:
		return checkInvariantsW(s, s.load8, s.arr8)
	case Width16:
		return checkInvariantsW(s, s.load16, s.arr16)
	default:
		return checkInvariantsW(s, s.load32, s.arr32)
	}
}

func checkInvariantsW[L loadElem](s *State, load, arr []L) error {
	var max int32
	nonEmpty := 0
	for u, l := range load {
		if int32(l) < 0 {
			return fmt.Errorf("engine: bin %d negative load %d", u, int32(l))
		}
		if (l > 0) != s.work.Test(u) {
			return fmt.Errorf("engine: worklist bit %d = %v for load %d", u, s.work.Test(u), l)
		}
		if l > 0 {
			nonEmpty++
			if int32(l) > max {
				max = int32(l)
			}
		}
		if arr[u] != 0 {
			return fmt.Errorf("engine: leftover staged arrival at bin %d", u)
		}
	}
	if nonEmpty != s.nonEmpty {
		return fmt.Errorf("engine: nonEmpty %d, counted %d", s.nonEmpty, nonEmpty)
	}
	if max != s.maxLoad {
		return fmt.Errorf("engine: maxLoad %d, counted %d", s.maxLoad, max)
	}
	return nil
}
