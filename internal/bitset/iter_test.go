package bitset

import "testing"

// TestNextSet covers word boundaries, gaps and the not-found case.
func TestNextSet(t *testing.T) {
	s := New(200)
	for _, i := range []int{0, 5, 63, 64, 127, 128, 199} {
		s.Set(i)
	}
	want := []int{0, 5, 63, 64, 127, 128, 199}
	got := []int{}
	for i := s.NextSet(0); i >= 0; i = s.NextSet(i + 1) {
		got = append(got, i)
	}
	if len(got) != len(want) {
		t.Fatalf("iterated %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("iterated %v, want %v", got, want)
		}
	}
	if s.NextSet(200) != -1 || s.NextSet(1000) != -1 {
		t.Error("NextSet past the end must return -1")
	}
	if s.NextSet(-5) != 0 {
		t.Error("NextSet with negative start must clamp to 0")
	}
	empty := New(64)
	if empty.NextSet(0) != -1 {
		t.Error("NextSet on empty set must return -1")
	}
}

// TestForEachSet checks in-order visits and the clear-behind contract.
func TestForEachSet(t *testing.T) {
	s := New(130)
	for i := 0; i < 130; i += 3 {
		s.Set(i)
	}
	prev := -1
	count := 0
	s.ForEachSet(func(i int) {
		if i <= prev {
			t.Fatalf("out of order: %d after %d", i, prev)
		}
		if !s.Test(i) {
			t.Fatalf("visited unset bit %d", i)
		}
		prev = i
		count++
		s.Clear(i) // clearing at the cursor must be safe
	})
	if count != (129/3)+1 {
		t.Fatalf("visited %d bits", count)
	}
	if s.Count() != 0 {
		t.Fatal("clears during iteration lost")
	}
}

// TestWords checks the word-level accessors used by the engine's dense
// rebuild.
func TestWords(t *testing.T) {
	s := New(100)
	if s.NumWords() != 2 {
		t.Fatalf("NumWords = %d", s.NumWords())
	}
	s.SetWord(0, 0xDEADBEEF)
	s.SetWord(1, 0x1)
	if s.Word(0) != 0xDEADBEEF || s.Word(1) != 0x1 {
		t.Fatal("Word round-trip failed")
	}
	if !s.Test(64) {
		t.Fatal("SetWord(1, 1) must set bit 64")
	}
	if s.Count() != 24+1 {
		t.Fatalf("Count = %d", s.Count())
	}
}
