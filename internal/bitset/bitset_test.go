package bitset

import (
	"testing"
	"testing/quick"
)

func TestBasicSetTestClear(t *testing.T) {
	s := New(130) // crosses word boundaries
	for _, i := range []int{0, 1, 63, 64, 65, 127, 128, 129} {
		if s.Test(i) {
			t.Fatalf("fresh set has bit %d", i)
		}
		s.Set(i)
		if !s.Test(i) {
			t.Fatalf("bit %d not set", i)
		}
		s.Clear(i)
		if s.Test(i) {
			t.Fatalf("bit %d not cleared", i)
		}
	}
}

func TestTestAndSet(t *testing.T) {
	s := New(100)
	if s.TestAndSet(37) {
		t.Fatal("first TestAndSet returned true")
	}
	if !s.TestAndSet(37) {
		t.Fatal("second TestAndSet returned false")
	}
	if s.Count() != 1 {
		t.Fatalf("Count = %d, want 1", s.Count())
	}
}

func TestCountMatchesSets(t *testing.T) {
	if err := quick.Check(func(idxs []uint16) bool {
		s := New(1 << 16)
		distinct := map[int]bool{}
		for _, raw := range idxs {
			i := int(raw)
			s.Set(i)
			distinct[i] = true
		}
		return s.Count() == len(distinct)
	}, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFull(t *testing.T) {
	for _, n := range []int{0, 1, 63, 64, 65, 128, 130} {
		s := New(n)
		if n == 0 {
			if !s.Full() {
				t.Fatal("empty set of 0 bits should be Full")
			}
			continue
		}
		if s.Full() {
			t.Fatalf("n=%d: empty set reported Full", n)
		}
		for i := 0; i < n; i++ {
			s.Set(i)
		}
		if !s.Full() {
			t.Fatalf("n=%d: all-set not Full", n)
		}
		s.Clear(n - 1)
		if s.Full() {
			t.Fatalf("n=%d: missing last bit still Full", n)
		}
	}
}

func TestReset(t *testing.T) {
	s := New(200)
	for i := 0; i < 200; i += 3 {
		s.Set(i)
	}
	s.Reset()
	if s.Count() != 0 {
		t.Fatal("Reset left bits set")
	}
}

func TestLen(t *testing.T) {
	if New(77).Len() != 77 {
		t.Fatal("Len mismatch")
	}
}

func TestNewNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("New(-1) did not panic")
		}
	}()
	New(-1)
}

func TestMatrixBasics(t *testing.T) {
	m := NewMatrix(3, 130)
	if m.Rows() != 3 || m.Cols() != 130 {
		t.Fatal("dims mismatch")
	}
	if m.TestAndSet(1, 129) {
		t.Fatal("fresh matrix bit set")
	}
	if !m.Test(1, 129) {
		t.Fatal("bit not set")
	}
	if m.Test(0, 129) || m.Test(2, 129) {
		t.Fatal("row bleed")
	}
	if m.RowCount(1) != 1 || m.RowCount(0) != 0 {
		t.Fatal("RowCount wrong")
	}
	if !m.TestAndSet(1, 129) {
		t.Fatal("second TestAndSet returned false")
	}
	m.Reset()
	if m.RowCount(1) != 0 {
		t.Fatal("Reset failed")
	}
}

func TestMatrixRowIsolation(t *testing.T) {
	if err := quick.Check(func(rRaw, cRaw uint8) bool {
		rows, cols := 16, 100
		r, c := int(rRaw)%rows, int(cRaw)%cols
		m := NewMatrix(rows, cols)
		m.TestAndSet(r, c)
		for i := 0; i < rows; i++ {
			want := 0
			if i == r {
				want = 1
			}
			if m.RowCount(i) != want {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTestAndSet(b *testing.B) {
	s := New(1 << 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.TestAndSet(i & 0xFFFF)
	}
}
