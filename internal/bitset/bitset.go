// Package bitset provides a dense fixed-size bitset. It backs the
// per-token visited sets used for cover-time measurement: n tokens × n nodes
// is n² bits total, so compactness matters (n = 8192 ⇒ 8 MiB).
package bitset

import (
	"fmt"
	"math/bits"
)

// Set is a fixed-size bitset of Len() bits. The zero value is an empty set
// of zero bits; use New for a sized set.
type Set struct {
	words []uint64
	n     int
}

// New returns a Set of n bits, all zero.
func New(n int) *Set {
	if n < 0 {
		panic(fmt.Sprintf("bitset: New(%d) with negative size", n))
	}
	return &Set{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of bits in the set.
func (s *Set) Len() int { return s.n }

// Test reports whether bit i is set.
func (s *Set) Test(i int) bool {
	return s.words[i>>6]&(1<<uint(i&63)) != 0
}

// Set sets bit i.
func (s *Set) Set(i int) {
	s.words[i>>6] |= 1 << uint(i&63)
}

// Clear clears bit i.
func (s *Set) Clear(i int) {
	s.words[i>>6] &^= 1 << uint(i&63)
}

// TestAndSet sets bit i and reports whether it was already set. This is the
// hot operation in cover tracking: callers increment their distinct-visit
// counter exactly when it returns false.
func (s *Set) TestAndSet(i int) bool {
	w := i >> 6
	mask := uint64(1) << uint(i&63)
	old := s.words[w]&mask != 0
	s.words[w] |= mask
	return old
}

// NextSet returns the index of the first set bit at or after i, or −1 if
// there is none. (The engine's hot worklist loops iterate raw words via
// Word/NumWords instead; NextSet is the general-purpose form.)
func (s *Set) NextSet(i int) int {
	if i < 0 {
		i = 0
	}
	if i >= s.n {
		return -1
	}
	w := i >> 6
	word := s.words[w] >> uint(i&63)
	if word != 0 {
		return i + bits.TrailingZeros64(word)
	}
	for w++; w < len(s.words); w++ {
		if s.words[w] != 0 {
			return w<<6 + bits.TrailingZeros64(s.words[w])
		}
	}
	return -1
}

// ForEachSet calls f(i) for every set bit in increasing order. The callback
// may clear bits at or before its argument (the iteration works on a copy
// of the current word); setting new bits or clearing later bits during the
// iteration yields unspecified visits for those bits.
func (s *Set) ForEachSet(f func(i int)) {
	for wi, w := range s.words {
		base := wi << 6
		for w != 0 {
			f(base + bits.TrailingZeros64(w))
			w &= w - 1
		}
	}
}

// Word returns the i-th 64-bit word of the set (bits 64i .. 64i+63). It
// exists for high-performance scans that want to branch on whole words.
func (s *Set) Word(i int) uint64 { return s.words[i] }

// NumWords returns the number of 64-bit words backing the set.
func (s *Set) NumWords() int { return len(s.words) }

// SetWord replaces the i-th 64-bit word wholesale. Bits beyond Len() in the
// final word must be zero; callers that rebuild the set from scratch (e.g.
// a dense engine pass) use this to write 64 membership bits at once.
func (s *Set) SetWord(i int, w uint64) { s.words[i] = w }

// Count returns the number of set bits.
func (s *Set) Count() int {
	c := 0
	for _, w := range s.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears all bits.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}

// Full reports whether every bit in [0, Len()) is set.
func (s *Set) Full() bool {
	if s.n == 0 {
		return true
	}
	whole := s.n >> 6
	for i := 0; i < whole; i++ {
		if s.words[i] != ^uint64(0) {
			return false
		}
	}
	if rem := s.n & 63; rem != 0 {
		mask := (uint64(1) << uint(rem)) - 1
		return s.words[whole]&mask == mask
	}
	return true
}

// Matrix is an n×m bit matrix stored in one allocation: Row(i) views row i
// as a Set. It is used as tokens × nodes visited matrix.
type Matrix struct {
	words       []uint64
	rows, cols  int
	wordsPerRow int
}

// NewMatrix returns an all-zero rows×cols bit matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("bitset: NewMatrix(%d, %d) with negative size", rows, cols))
	}
	wpr := (cols + 63) / 64
	return &Matrix{
		words:       make([]uint64, rows*wpr),
		rows:        rows,
		cols:        cols,
		wordsPerRow: wpr,
	}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// TestAndSet sets bit (r, c) and reports whether it was already set.
func (m *Matrix) TestAndSet(r, c int) bool {
	idx := r*m.wordsPerRow + c>>6
	mask := uint64(1) << uint(c&63)
	old := m.words[idx]&mask != 0
	m.words[idx] |= mask
	return old
}

// Test reports whether bit (r, c) is set.
func (m *Matrix) Test(r, c int) bool {
	return m.words[r*m.wordsPerRow+c>>6]&(1<<uint(c&63)) != 0
}

// RowCount returns the number of set bits in row r.
func (m *Matrix) RowCount(r int) int {
	c := 0
	for _, w := range m.words[r*m.wordsPerRow : (r+1)*m.wordsPerRow] {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears the whole matrix.
func (m *Matrix) Reset() {
	for i := range m.words {
		m.words[i] = 0
	}
}
