package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 collided on %d of 1000 draws", same)
	}
}

func TestReseedMatchesNew(t *testing.T) {
	a := New(7)
	a.Uint64()
	a.Reseed(99)
	b := New(99)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("Reseed does not reproduce New")
		}
	}
}

func TestStreamsIndependent(t *testing.T) {
	s0 := NewStream(123, 0)
	s1 := NewStream(123, 1)
	same := 0
	for i := 0; i < 1000; i++ {
		if s0.Uint64() == s1.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams 0 and 1 collided %d times", same)
	}
}

func TestStreamDeterministic(t *testing.T) {
	a := NewStream(5, 17)
	b := NewStream(5, 17)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("NewStream not deterministic")
		}
	}
}

func TestSplitDiffersFromParent(t *testing.T) {
	parent := New(9)
	child := parent.Split()
	p2 := New(9)
	p2.Uint64()
	p2.Uint64() // Split consumed two draws
	same := 0
	for i := 0; i < 1000; i++ {
		if child.Uint64() == p2.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("child stream tracks parent (%d collisions)", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := New(3)
	if err := quick.Check(func(n uint64) bool {
		if n == 0 {
			n = 1
		}
		v := r.Uint64n(n)
		return v < n
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUint64nSmallUniform(t *testing.T) {
	// Chi-square-ish sanity: for n=7 over 70000 draws each bucket should be
	// near 10000.
	r := New(11)
	const n, draws = 7, 70000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	for i, c := range counts {
		if c < 9500 || c > 10500 {
			t.Fatalf("bucket %d has %d draws, want ~10000", i, c)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	r := New(1)
	for _, n := range []int{0, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Intn(%d) did not panic", n)
				}
			}()
			r.Intn(n)
		}()
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Moments(t *testing.T) {
	r := New(6)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		f := r.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean-0.5) > 0.005 {
		t.Errorf("mean = %v, want ~0.5", mean)
	}
	if math.Abs(variance-1.0/12) > 0.005 {
		t.Errorf("variance = %v, want ~%v", variance, 1.0/12)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := New(7)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
}

func TestBernoulliRate(t *testing.T) {
	r := New(8)
	const p, draws = 0.3, 100000
	hits := 0
	for i := 0; i < draws; i++ {
		if r.Bernoulli(p) {
			hits++
		}
	}
	rate := float64(hits) / draws
	if math.Abs(rate-p) > 0.01 {
		t.Fatalf("Bernoulli(%v) rate = %v", p, rate)
	}
}

func TestExpFloat64Mean(t *testing.T) {
	r := New(9)
	const draws = 200000
	var sum float64
	for i := 0; i < draws; i++ {
		v := r.ExpFloat64()
		if v < 0 {
			t.Fatal("negative exponential draw")
		}
		sum += v
	}
	if mean := sum / draws; math.Abs(mean-1) > 0.02 {
		t.Fatalf("exponential mean = %v, want ~1", mean)
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := New(10)
	const draws = 200000
	var sum, sumSq float64
	for i := 0; i < draws; i++ {
		v := r.NormFloat64()
		sum += v
		sumSq += v * v
	}
	mean := sum / draws
	variance := sumSq/draws - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v, want ~1", variance)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(12)
	if err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermUniformFirstElement(t *testing.T) {
	r := New(13)
	const n, draws = 5, 50000
	var counts [n]int
	for i := 0; i < draws; i++ {
		counts[r.Perm(n)[0]]++
	}
	for i, c := range counts {
		if c < 9200 || c > 10800 {
			t.Fatalf("Perm(5)[0]==%d occurred %d times, want ~10000", i, c)
		}
	}
}

func TestShufflePreservesMultiset(t *testing.T) {
	r := New(14)
	xs := []int{1, 1, 2, 3, 5, 8, 13}
	sum := 0
	for _, v := range xs {
		sum += v
	}
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	got := 0
	for _, v := range xs {
		got += v
	}
	if got != sum {
		t.Fatalf("shuffle changed multiset sum: %d != %d", got, sum)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(15)
	const p, draws = 0.25, 100000
	var sum float64
	for i := 0; i < draws; i++ {
		g := r.Geometric(p)
		if g < 0 {
			t.Fatal("negative geometric draw")
		}
		sum += float64(g)
	}
	want := (1 - p) / p // mean of failures-before-success
	if mean := sum / draws; math.Abs(mean-want) > 0.1 {
		t.Fatalf("geometric mean = %v, want ~%v", mean, want)
	}
}

func TestGeometricPOne(t *testing.T) {
	r := New(16)
	for i := 0; i < 10; i++ {
		if r.Geometric(1) != 0 {
			t.Fatal("Geometric(1) != 0")
		}
	}
}

func TestJumpChangesState(t *testing.T) {
	r := New(17)
	before := r.State()
	r.Jump()
	if r.State() == before {
		t.Fatal("Jump did not change state")
	}
	// Jumped stream should not collide with the original.
	a := New(17)
	b := New(17)
	b.Jump()
	same := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("jumped stream collides with original (%d)", same)
	}
}

func TestStateRoundTrip(t *testing.T) {
	r := New(18)
	r.Uint64()
	st := r.State()
	want := make([]uint64, 16)
	for i := range want {
		want[i] = r.Uint64()
	}
	var r2 Source
	if err := r2.SetState(st); err != nil {
		t.Fatal(err)
	}
	for i, w := range want {
		if got := r2.Uint64(); got != w {
			t.Fatalf("replay diverged at %d: %d != %d", i, got, w)
		}
	}
}

func TestSetStateRejectsZero(t *testing.T) {
	var r Source
	if err := r.SetState([4]uint64{}); err == nil {
		t.Fatal("SetState accepted the all-zero state")
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64()
	}
	_ = sink
}

func BenchmarkUint64n(b *testing.B) {
	r := New(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += r.Uint64n(12345)
	}
	_ = sink
}

func BenchmarkFloat64(b *testing.B) {
	r := New(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.Float64()
	}
	_ = sink
}

// TestNewStreamStateRestore pins the property the checkpoint layer depends
// on: the state of a stream keyed by a global shard id can be captured,
// serialized elsewhere, and restored into a source that was never derived
// from (seed, shard) — and the continuation is draw-for-draw identical.
func TestNewStreamStateRestore(t *testing.T) {
	for _, shardID := range []uint64{0, 1, 7, 63} {
		s := NewStream(99, shardID)
		for i := 0; i < 1000; i++ {
			s.Uint64()
		}
		st := s.State()
		want := make([]uint64, 64)
		for i := range want {
			want[i] = s.Uint64()
		}
		// Restore into a source with unrelated history.
		r := New(123456)
		r.Uint64()
		if err := r.SetState(st); err != nil {
			t.Fatal(err)
		}
		for i, w := range want {
			if got := r.Uint64(); got != w {
				t.Fatalf("stream %d diverged at draw %d: %d != %d", shardID, i, got, w)
			}
		}
		// The restored source must also agree on derived draws (bounded,
		// float), not just raw words: Uint64n and Float64 consume state
		// identically on both.
		s2 := NewStream(99, shardID)
		for i := 0; i < 1000+64; i++ {
			s2.Uint64()
		}
		if err := r.SetState(s2.State()); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 100; i++ {
			if a, b := r.Uint64n(1000), s2.Uint64n(1000); a != b {
				t.Fatalf("stream %d bounded draw %d: %d != %d", shardID, i, a, b)
			}
			if a, b := r.Float64(), s2.Float64(); a != b {
				t.Fatalf("stream %d float draw %d: %v != %v", shardID, i, a, b)
			}
		}
	}
}
