// Package rng provides the deterministic pseudo-random number generator used
// by every randomized component in this repository.
//
// The generator is xoshiro256** (Blackman & Vigna) seeded through SplitMix64.
// We deliberately do not use math/rand: simulation results must be
// bit-reproducible across Go releases given a seed, and the experiment
// harness relies on deriving independent streams for parallel trials
// (see Split and NewStream) so that results are independent of GOMAXPROCS
// and goroutine scheduling.
//
// A Source is NOT safe for concurrent use; give each goroutine its own
// stream.
package rng

import (
	"errors"
	"math"
	"math/bits"
)

// Source is a xoshiro256** generator. The zero value is not usable; obtain
// one from New, NewStream or Split.
type Source struct {
	s [4]uint64
}

// golden is the SplitMix64 increment (2^64 / phi, odd).
const golden = 0x9E3779B97F4A7C15

// splitmix64 advances *x and returns the next SplitMix64 output. It is used
// for seeding and stream derivation only, never for simulation draws.
func splitmix64(x *uint64) uint64 {
	*x += golden
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// New returns a Source seeded from seed. Distinct seeds yield (with
// overwhelming probability) non-overlapping sequences: the 256-bit state is
// filled by four SplitMix64 outputs, as recommended by the xoshiro authors.
func New(seed uint64) *Source {
	var r Source
	r.Reseed(seed)
	return &r
}

// NewStream returns a Source for a (seed, stream) pair. It is the canonical
// way to give each parallel trial its own independent generator: streams
// derived from the same seed but different stream indices are statistically
// independent.
func NewStream(seed, stream uint64) *Source {
	// Mix the stream index through SplitMix64 so that consecutive stream
	// indices land far apart in seed space.
	x := seed
	a := splitmix64(&x)
	x ^= stream * golden
	b := splitmix64(&x)
	return New(a ^ bits.RotateLeft64(b, 31))
}

// Reseed resets the generator state from seed, as New does.
func (r *Source) Reseed(seed uint64) {
	x := seed
	for i := range r.s {
		r.s[i] = splitmix64(&x)
	}
	// A state of all zeros is the single invalid xoshiro state; SplitMix64
	// cannot produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = golden
	}
}

// Split derives a new independent Source from r, advancing r. Successive
// calls yield distinct streams. This is used when a component needs to hand
// private generators to sub-components deterministically.
func (r *Source) Split() *Source {
	return NewStream(r.Uint64(), r.Uint64())
}

// Uint64 returns the next 64 uniformly distributed bits.
func (r *Source) Uint64() uint64 {
	s := &r.s
	result := bits.RotateLeft64(s[1]*5, 7) * 9
	t := s[1] << 17
	s[2] ^= s[0]
	s[3] ^= s[1]
	s[1] ^= s[2]
	s[0] ^= s[3]
	s[2] ^= t
	s[3] = bits.RotateLeft64(s[3], 45)
	return result
}

// jumpPoly is the polynomial for Jump (advances 2^128 steps).
var jumpPoly = [4]uint64{0x180ec6d33cfd0aba, 0xd5a61266f0c9392c, 0xa9582618e03fc9aa, 0x39abdc4529b1661c}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls of
// Uint64. It can be used to partition one seed into up to 2^128
// non-overlapping subsequences of length 2^128 each.
func (r *Source) Jump() {
	var s [4]uint64
	for _, jp := range jumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s[0] ^= r.s[0]
				s[1] ^= r.s[1]
				s[2] ^= r.s[2]
				s[3] ^= r.s[3]
			}
			r.Uint64()
		}
	}
	r.s = s
}

// State returns a copy of the raw 256-bit state, for checkpointing.
func (r *Source) State() [4]uint64 { return r.s }

// SetState restores a state captured with State. It returns an error if the
// state is all zeros (the single invalid xoshiro state).
func (r *Source) SetState(s [4]uint64) error {
	if s[0]|s[1]|s[2]|s[3] == 0 {
		return errors.New("rng: all-zero state is invalid")
	}
	r.s = s
	return nil
}

// Uint64n returns a uniform value in [0, n) using Lemire's nearly divisionless
// method; it is unbiased for every n ≥ 1. It panics if n == 0.
func (r *Source) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	hi, lo := bits.Mul64(r.Uint64(), n)
	if lo < n {
		thresh := -n % n // == (2^64 - n) mod n
		for lo < thresh {
			hi, lo = bits.Mul64(r.Uint64(), n)
		}
	}
	return hi
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic("rng: Intn with n <= 0")
	}
	return int(r.Uint64n(uint64(n)))
}

// Int32n returns a uniform int32 in [0, n). It panics if n <= 0.
func (r *Source) Int32n(n int32) int32 {
	if n <= 0 {
		panic("rng: Int32n with n <= 0")
	}
	return int32(r.Uint64n(uint64(n)))
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) * (1.0 / (1 << 53))
}

// Bernoulli returns true with probability p (clamped to [0,1]).
func (r *Source) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// ExpFloat64 returns an exponentially distributed value with rate 1
// (mean 1), by inversion.
func (r *Source) ExpFloat64() float64 {
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1 - r.Float64())
}

// NormFloat64 returns a standard normal value using the Marsaglia polar
// method.
func (r *Source) NormFloat64() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		return u * math.Sqrt(-2*math.Log(s)/s)
	}
}

// Perm returns a uniformly random permutation of [0, n).
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := 1; i < n; i++ {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap, with the
// Fisher–Yates algorithm.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	if n < 0 {
		panic("rng: Shuffle with n < 0")
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Geometric returns the number of failures before the first success in
// Bernoulli(p) trials (support {0, 1, 2, ...}), by inversion. p must be in
// (0, 1].
func (r *Source) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("rng: Geometric needs p in (0,1]")
	}
	if p == 1 {
		return 0
	}
	// floor(log(U) / log(1-p)) with U in (0,1].
	u := 1 - r.Float64()
	return int64(math.Log(u) / math.Log1p(-p))
}
