package core

// Native fuzz targets: the engines must uphold their invariants for any
// initial configuration and step count. Run with `go test -fuzz=FuzzX`;
// the seed corpus below runs as part of the ordinary test suite.

import (
	"testing"

	"repro/internal/rng"
)

// decodeLoads turns fuzz bytes into a small valid configuration.
func decodeLoads(data []byte) []int32 {
	n := len(data)
	if n == 0 {
		return []int32{1}
	}
	if n > 24 {
		n = 24
	}
	loads := make([]int32, n)
	for i := 0; i < n; i++ {
		loads[i] = int32(data[i] % 17)
	}
	return loads
}

func FuzzProcessInvariants(f *testing.F) {
	f.Add([]byte{1, 1, 1, 1}, uint16(100), uint64(1))
	f.Add([]byte{16, 0, 0, 0, 0}, uint16(300), uint64(7))
	f.Add([]byte{0}, uint16(10), uint64(3))
	f.Fuzz(func(t *testing.T, cfg []byte, stepsRaw uint16, seed uint64) {
		loads := decodeLoads(cfg)
		p, err := NewProcess(loads, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		steps := int(stepsRaw % 512)
		var want int64
		for _, l := range loads {
			want += int64(l)
		}
		for i := 0; i < steps; i++ {
			p.Step()
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("loads %v after %d steps: %v", loads, steps, err)
		}
		if p.Balls() != want {
			t.Fatalf("balls %d != %d", p.Balls(), want)
		}
	})
}

func FuzzTokenProcessInvariants(f *testing.F) {
	f.Add([]byte{2, 3, 0, 1}, uint16(50), uint64(1), uint8(0))
	f.Add([]byte{9, 0, 0}, uint16(200), uint64(5), uint8(1))
	f.Add([]byte{1, 1, 1, 1, 1, 1}, uint16(120), uint64(9), uint8(2))
	f.Fuzz(func(t *testing.T, cfg []byte, stepsRaw uint16, seed uint64, stratRaw uint8) {
		loads := decodeLoads(cfg)
		p, err := NewTokenProcess(loads, rng.New(seed), TokenOptions{
			Strategy:    Strategy(stratRaw % 3),
			TrackCover:  stratRaw%2 == 0,
			TrackDelays: stratRaw%2 == 1,
		})
		if err != nil {
			t.Skip()
		}
		steps := int(stepsRaw % 256)
		for i := 0; i < steps; i++ {
			p.Step()
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("loads %v strategy %d after %d steps: %v", loads, stratRaw%3, steps, err)
		}
	})
}

func FuzzChoicesInvariants(f *testing.F) {
	f.Add([]byte{4, 4, 4}, uint16(64), uint64(2), uint8(2))
	f.Fuzz(func(t *testing.T, cfg []byte, stepsRaw uint16, seed uint64, dRaw uint8) {
		loads := decodeLoads(cfg)
		d := int(dRaw%4) + 1
		p, err := NewChoicesProcess(loads, d, rng.New(seed))
		if err != nil {
			t.Skip()
		}
		steps := int(stepsRaw % 256)
		for i := 0; i < steps; i++ {
			p.Step()
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("loads %v d=%d after %d steps: %v", loads, d, steps, err)
		}
	})
}

// FuzzEnumerateMatchesSimulation cross-checks the exact enumerator against
// the engines on tiny systems: total probability mass must be 1 regardless
// of configuration.
func FuzzEnumerateMatchesSimulation(f *testing.F) {
	f.Add([]byte{1, 1}, uint8(2))
	f.Add([]byte{3, 0, 0}, uint8(1))
	f.Fuzz(func(t *testing.T, cfg []byte, roundsRaw uint8) {
		data := cfg
		if len(data) > 3 {
			data = data[:3]
		}
		loads := make([]int32, len(data))
		var total int32
		for i, b := range data {
			loads[i] = int32(b % 3)
			total += loads[i]
		}
		if len(loads) == 0 || total == 0 {
			t.Skip()
		}
		rounds := int(roundsRaw%3) + 1
		sum := 0.0
		err := EnumerateArrivals(loads, 0, rounds, 1<<18, func(_ []int, p float64) {
			sum += p
		})
		if err != nil {
			t.Skip() // outcome cap hit — fine for fuzz inputs
		}
		if sum < 1-1e-9 || sum > 1+1e-9 {
			t.Fatalf("loads %v rounds %d: mass %v", loads, rounds, sum)
		}
	})
}
