package core

// Law-level validation: statistical checks that the engine implements the
// paper's process exactly, beyond trajectory invariants.

import (
	"testing"

	"repro/internal/config"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/stats"
)

// TestArrivalLawBinomial verifies that, conditioned on |W(t)| = w, the
// number of balls arriving at a fixed bin in one round is exactly
// Binomial(w, 1/n): each of the w released balls picks the bin
// independently with probability 1/n. Checked by chi-square against the
// exact PMF.
func TestArrivalLawBinomial(t *testing.T) {
	const n = 64
	const trials = 200000
	r := rng.New(101)
	// One-per-bin start: |W| = n deterministically in round 1.
	counts := make([]int, 12)
	for i := 0; i < trials; i++ {
		p, err := NewProcess(config.OnePerBin(n), r)
		if err != nil {
			t.Fatal(err)
		}
		p.Step()
		// Arrivals into bin 0 = new load − (old load − 1) = load − 0.
		arr := int(p.Load(0)) // old load was 1, departure certain
		if arr >= len(counts) {
			arr = len(counts) - 1
		}
		counts[arr]++
	}
	chi2 := 0.0
	cells := 0
	for k := 0; k < len(counts)-1; k++ {
		expected := dist.BinomialPMF(n, 1.0/n, k) * trials
		if expected < 10 {
			continue
		}
		d := float64(counts[k]) - expected
		chi2 += d * d / expected
		cells++
	}
	// Generous 99.99% critical region for the observed cell count.
	crit := stats.ChiSquareSurvival(chi2, float64(cells-1))
	if crit < 1e-5 {
		t.Fatalf("arrival law rejected: chi2=%.2f over %d cells (p=%g)", chi2, cells, crit)
	}
}

// TestDepartureExactlyOne verifies each non-empty bin loses exactly one
// ball before arrivals: with arrivals diverted away (impossible directly),
// we instead check the bound loads(t+1) >= loads(t) - 1 elementwise and
// that total departures equal |W(t)|.
func TestDepartureExactlyOne(t *testing.T) {
	const n = 32
	r := rng.New(103)
	p, err := NewProcess(config.UniformRandom(n, n, r), r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		before := p.LoadsCopy()
		p.Step()
		var sumAfter, sumBefore int64
		for u := 0; u < n; u++ {
			// Each bin decreases by at most 1 net (one departure, arrivals
			// only add).
			if delta := int(before[u]) - int(p.Load(u)); delta > 1 {
				t.Fatalf("round %d: bin %d lost %d balls", i, u, delta)
			}
			sumAfter += int64(p.Load(u))
			sumBefore += int64(before[u])
		}
		if sumAfter != sumBefore {
			t.Fatalf("balls not conserved: %d -> %d", sumBefore, sumAfter)
		}
	}
}

// TestLoadHistogram checks the histogram accessor against the raw loads.
func TestLoadHistogram(t *testing.T) {
	p, err := NewProcess([]int32{0, 0, 3, 1, 3}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	h := p.LoadHistogram()
	want := []int64{2, 1, 0, 2}
	if len(h) != len(want) {
		t.Fatalf("histogram = %v", h)
	}
	for i := range want {
		if h[i] != want[i] {
			t.Fatalf("histogram = %v, want %v", h, want)
		}
	}
	var total int64
	for _, c := range h {
		total += c
	}
	if total != int64(p.N()) {
		t.Fatal("histogram does not cover all bins")
	}
}

// TestStationaryLoadTailGeometric records the qualitative stationary shape:
// the fraction of bins with load >= k decays at least geometrically for
// small k (this is what caps the maximum at O(log n)).
func TestStationaryLoadTailGeometric(t *testing.T) {
	const n = 4096
	r := rng.New(107)
	p, err := NewProcess(config.OnePerBin(n), r)
	if err != nil {
		t.Fatal(err)
	}
	p.Run(4 * n) // reach stationarity
	tail := make([]float64, 8)
	const samples = 200
	for s := 0; s < samples; s++ {
		p.Step()
		h := p.LoadHistogram()
		cum := int64(0)
		for k := len(h) - 1; k >= 0; k-- {
			cum += h[k]
			if k < len(tail) {
				tail[k] += float64(cum)
			}
		}
	}
	for k := range tail {
		tail[k] /= float64(samples) * n
	}
	if tail[0] != 1 {
		t.Fatalf("tail[0] = %v, want 1", tail[0])
	}
	// Successive ratios bounded below 1: each extra ball of load is
	// geometrically less likely.
	for k := 1; k < 5; k++ {
		ratio := tail[k+1] / tail[k]
		if ratio > 0.75 {
			t.Fatalf("tail ratio at k=%d is %.3f, not geometric", k, ratio)
		}
	}
}
