package core

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/rng"
)

// Strategy selects which enqueued ball a non-empty bin releases. The
// paper's results are oblivious to this choice (§2 footnote 2); experiment
// E16 verifies the max-load law is identical across strategies.
type Strategy uint8

// Supported queueing strategies.
const (
	// FIFO releases the ball that has waited longest. Under FIFO the paper
	// derives the Ω(t/log n) per-ball progress bound (§4).
	FIFO Strategy = iota
	// LIFO releases the most recently arrived ball.
	LIFO
	// Random releases a ball chosen uniformly from the bin's queue.
	Random
)

// String returns the strategy name.
func (s Strategy) String() string {
	switch s {
	case FIFO:
		return "fifo"
	case LIFO:
		return "lifo"
	case Random:
		return "random"
	default:
		return fmt.Sprintf("strategy(%d)", uint8(s))
	}
}

// ParseStrategy converts a name produced by String back into a Strategy.
func ParseStrategy(s string) (Strategy, error) {
	switch s {
	case "fifo":
		return FIFO, nil
	case "lifo":
		return LIFO, nil
	case "random":
		return Random, nil
	default:
		return 0, fmt.Errorf("core: unknown strategy %q", s)
	}
}

// TokenOptions configures a TokenProcess.
type TokenOptions struct {
	// Strategy is the queueing discipline (default FIFO).
	Strategy Strategy
	// TrackCover enables the per-ball visited matrix (m×n bits) and
	// cover-time detection.
	TrackCover bool
	// TrackDelays enables per-visit waiting-time statistics.
	TrackDelays bool
	// PickSource supplies the randomness for the Random strategy's ball
	// selection. If nil and Strategy == Random, a stream is split off the
	// destination source at construction (consuming two draws from it).
	// Keeping ball selection on a separate stream guarantees that the load
	// trajectory depends only on the destination source, regardless of
	// strategy.
	PickSource *rng.Source
}

// move records one extracted ball and its destination during a synchronous
// round.
type move struct {
	ball int32
	dest int32
}

// TokenProcess is the identity-tracking engine: the same law as Process,
// plus per-ball positions, progress counts, visit delays and cover state.
// It is not safe for concurrent use.
type TokenProcess struct {
	n, m  int
	strat Strategy
	dest  *rng.Source
	pick  *rng.Source

	// Per-bin FIFO/LIFO/random-access queues: queue[u][head[u]:] holds the
	// balls in u, oldest first. Queue lengths, the non-empty worklist and
	// the load statistics live in the shared stepping layer.
	queue [][]int32
	head  []int32
	eng   *engine.State

	pos        []int32 // ball -> current bin
	hops       []int64 // ball -> number of re-assignments performed
	enqueuedAt []int64 // ball -> round at which it entered its current bin

	moves []move // scratch for the current step

	round int64

	// Delay tracking (TrackDelays).
	trackDelays bool
	maxDelay    int64
	sumDelay    float64
	numDelays   int64

	// Cover tracking (TrackCover).
	trackCover bool
	visited    *bitset.Matrix
	visitCount []int32
	covered    int
	coverRound int64
}

// NewTokenProcess builds a token engine from an initial configuration.
// Balls are numbered 0..m−1 and assigned to bins in bin order (bin 0 holds
// balls 0..loads[0]−1, and so on), each bin's initial queue ordered by ball
// id. It returns an error for an empty configuration, negative loads, or a
// nil source.
func NewTokenProcess(loads []int32, src *rng.Source, opts TokenOptions) (*TokenProcess, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("core: NewTokenProcess with no bins")
	}
	if src == nil {
		return nil, errors.New("core: NewTokenProcess with nil rng source")
	}
	var m int64
	for i, l := range loads {
		if l < 0 {
			return nil, fmt.Errorf("core: bin %d has negative load %d", i, l)
		}
		m += int64(l)
	}
	if m > int64(1)<<31-1 {
		return nil, fmt.Errorf("core: %d balls exceed capacity", m)
	}
	eng, err := engine.New(loads, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	p := &TokenProcess{
		n:           n,
		m:           int(m),
		strat:       opts.Strategy,
		dest:        src,
		pick:        opts.PickSource,
		queue:       make([][]int32, n),
		head:        make([]int32, n),
		eng:         eng,
		pos:         make([]int32, m),
		hops:        make([]int64, m),
		enqueuedAt:  make([]int64, m),
		moves:       make([]move, 0, n),
		trackDelays: opts.TrackDelays,
		trackCover:  opts.TrackCover,
		coverRound:  -1,
	}
	if p.strat == Random && p.pick == nil {
		p.pick = src.Split()
	}
	ball := int32(0)
	for u := 0; u < n; u++ {
		l := loads[u]
		if l > 0 {
			q := make([]int32, l)
			for i := int32(0); i < l; i++ {
				q[i] = ball
				p.pos[ball] = int32(u)
				ball++
			}
			p.queue[u] = q
		}
	}
	if p.trackCover {
		p.visited = bitset.NewMatrix(p.m, n)
		p.visitCount = make([]int32, p.m)
		for b := 0; b < p.m; b++ {
			p.visited.TestAndSet(b, int(p.pos[b]))
			p.visitCount[b] = 1
			if n == 1 {
				p.covered++
			}
		}
		if p.m == 0 || (n == 1 && p.covered == p.m) {
			p.coverRound = 0
		}
	}
	return p, nil
}

// pop removes and returns one ball from non-empty bin u per the strategy.
// The bin's load count is maintained by the stepping layer (the caller
// releases through engine.State.ReleaseEach), so pop touches only the
// queue storage.
func (p *TokenProcess) pop(u int) int32 {
	q := p.queue[u]
	h := p.head[u]
	var ball int32
	switch p.strat {
	case FIFO:
		ball = q[h]
		h++
		if int(h) == len(q) {
			p.queue[u] = q[:0]
			h = 0
		} else if h >= 64 && int(h)*2 >= len(q) {
			// Compact: shift the live tail to the front so memory stays
			// proportional to the queue length.
			nLive := copy(q, q[h:])
			p.queue[u] = q[:nLive]
			h = 0
		}
		p.head[u] = h
	case LIFO:
		ball = q[len(q)-1]
		p.queue[u] = q[:len(q)-1]
		if int(h) == len(q)-1 {
			p.queue[u] = q[:0]
			p.head[u] = 0
		}
	case Random:
		live := int32(len(q)) - h
		i := h + p.pick.Int32n(live)
		ball = q[i]
		q[i] = q[len(q)-1]
		p.queue[u] = q[:len(q)-1]
		if h == int32(len(q))-1 {
			p.queue[u] = q[:0]
			p.head[u] = 0
		}
	}
	return ball
}

// Step advances one synchronous round: extraction from every non-empty bin
// first (destinations drawn in bin order from the destination source), then
// placement. A ball extracted this round cannot be re-extracted in the same
// round even if it lands in a later bin, matching the paper's synchronous
// semantics.
func (p *TokenProcess) Step() {
	n := p.n
	moves := p.moves[:0]
	p.eng.ReleaseEach(func(u int) {
		ball := p.pop(u)
		dest := int32(p.dest.Intn(n))
		moves = append(moves, move{ball: ball, dest: dest})
	})
	now := p.round + 1
	for _, mv := range moves {
		b := mv.ball
		if p.trackDelays {
			d := now - p.enqueuedAt[b]
			if d > p.maxDelay {
				p.maxDelay = d
			}
			p.sumDelay += float64(d)
			p.numDelays++
		}
		u := mv.dest
		p.queue[u] = append(p.queue[u], b)
		p.eng.Deposit(int(u))
		p.pos[b] = u
		p.hops[b]++
		p.enqueuedAt[b] = now
		if p.trackCover && !p.visited.TestAndSet(int(b), int(u)) {
			p.visitCount[b]++
			if int(p.visitCount[b]) == n {
				p.covered++
				if p.covered == p.m && p.coverRound < 0 {
					p.coverRound = now
				}
			}
		}
	}
	p.eng.Commit()
	p.moves = moves
	p.round = now
}

// Run advances the process by k rounds.
func (p *TokenProcess) Run(k int64) {
	for i := int64(0); i < k; i++ {
		p.Step()
	}
}

// N returns the number of bins.
func (p *TokenProcess) N() int { return p.n }

// Balls returns the number of balls m.
func (p *TokenProcess) Balls() int { return p.m }

// Round returns the number of completed rounds.
func (p *TokenProcess) Round() int64 { return p.round }

// MaxLoad returns the current maximum bin load.
func (p *TokenProcess) MaxLoad() int32 { return p.eng.MaxLoad() }

// EmptyBins returns the current number of empty bins.
func (p *TokenProcess) EmptyBins() int { return p.eng.EmptyBins() }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (p *TokenProcess) NonEmptyBins() int { return p.eng.NonEmptyBins() }

// Load returns the load of bin u.
func (p *TokenProcess) Load(u int) int32 { return p.eng.Load(u) }

// LoadsCopy returns a fresh copy of the current load vector.
func (p *TokenProcess) LoadsCopy() []int32 { return p.eng.LoadsCopy() }

// Position returns the bin currently holding ball b.
func (p *TokenProcess) Position(b int) int { return int(p.pos[b]) }

// Hops returns the number of random-walk steps ball b has performed — the
// paper's "progress" measure (§4: Ω(t / log n) under FIFO over t rounds).
func (p *TokenProcess) Hops(b int) int64 { return p.hops[b] }

// MinHops returns the minimum progress over all balls.
func (p *TokenProcess) MinHops() int64 {
	if p.m == 0 {
		return 0
	}
	min := p.hops[0]
	for _, h := range p.hops[1:] {
		if h < min {
			min = h
		}
	}
	return min
}

// MaxDelay returns the largest observed per-visit waiting time (rounds
// between entering a bin and being released). Zero unless TrackDelays.
func (p *TokenProcess) MaxDelay() int64 { return p.maxDelay }

// MeanDelay returns the mean per-visit waiting time. Zero unless
// TrackDelays and at least one departure has occurred.
func (p *TokenProcess) MeanDelay() float64 {
	if p.numDelays == 0 {
		return 0
	}
	return p.sumDelay / float64(p.numDelays)
}

// Covered returns the number of balls that have visited all n bins. Always
// zero unless TrackCover.
func (p *TokenProcess) Covered() int { return p.covered }

// CoverRound returns the first round by which every ball had visited every
// bin, or −1 if that has not happened yet (or TrackCover is off).
func (p *TokenProcess) CoverRound() int64 { return p.coverRound }

// VisitCount returns the number of distinct bins ball b has visited
// (0 unless TrackCover).
func (p *TokenProcess) VisitCount(b int) int {
	if !p.trackCover {
		return 0
	}
	return int(p.visitCount[b])
}

// RunUntilCovered steps until every ball has visited every bin or maxRounds
// elapse, returning the cover round and whether covering completed.
// Requires TrackCover.
func (p *TokenProcess) RunUntilCovered(maxRounds int64) (int64, bool) {
	if !p.trackCover {
		return -1, false
	}
	for i := int64(0); p.coverRound < 0 && i < maxRounds; i++ {
		p.Step()
	}
	return p.coverRound, p.coverRound >= 0
}

// CheckInvariants verifies queue/loads consistency, ball conservation, and
// position agreement; tests call it after arbitrary step sequences.
func (p *TokenProcess) CheckInvariants() error {
	if err := p.eng.CheckInvariants(); err != nil {
		return fmt.Errorf("core: %w", err)
	}
	seen := make([]bool, p.m)
	var total int64
	for u := 0; u < p.n; u++ {
		live := p.queue[u][p.head[u]:]
		if int32(len(live)) != p.eng.Load(u) {
			return fmt.Errorf("core: bin %d queue length %d != load %d", u, len(live), p.eng.Load(u))
		}
		total += int64(len(live))
		for _, b := range live {
			if b < 0 || int(b) >= p.m {
				return fmt.Errorf("core: bin %d holds invalid ball %d", u, b)
			}
			if seen[b] {
				return fmt.Errorf("core: ball %d appears twice", b)
			}
			seen[b] = true
			if p.pos[b] != int32(u) {
				return fmt.Errorf("core: ball %d position %d but found in bin %d", b, p.pos[b], u)
			}
		}
	}
	if total != int64(p.m) {
		return fmt.Errorf("core: %d balls in queues, want %d", total, p.m)
	}
	return nil
}
