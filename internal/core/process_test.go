package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func TestNewProcessValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewProcess(nil, r); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := NewProcess([]int32{1, -2}, r); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewProcess([]int32{1}, nil); err == nil {
		t.Error("nil source accepted")
	}
}

func TestProcessCopiesInitialLoads(t *testing.T) {
	init := []int32{2, 0, 1}
	p, err := NewProcess(init, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	init[0] = 99
	if p.Load(0) != 2 {
		t.Fatal("process aliases caller slice")
	}
}

func TestProcessInitialStats(t *testing.T) {
	p, err := NewProcess([]int32{3, 0, 0, 1}, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 4 || p.Balls() != 4 || p.Round() != 0 {
		t.Fatal("basic accessors wrong")
	}
	if p.MaxLoad() != 3 || p.EmptyBins() != 2 || p.NonEmptyBins() != 2 {
		t.Fatalf("stats wrong: max=%d empty=%d nonempty=%d", p.MaxLoad(), p.EmptyBins(), p.NonEmptyBins())
	}
}

func TestBallConservation(t *testing.T) {
	if err := quick.Check(func(seed uint32, nRaw uint8) bool {
		n := int(nRaw)%50 + 2
		r := rng.New(uint64(seed))
		p, err := NewProcess(config.UniformRandom(n, n, r), r)
		if err != nil {
			return false
		}
		for i := 0; i < 200; i++ {
			p.Step()
			if p.CheckInvariants() != nil {
				return false
			}
		}
		return p.Balls() == int64(n)
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestSingleBinSelfLoop(t *testing.T) {
	// With n = 1 the only ball must return to the only bin forever.
	p, err := NewProcess([]int32{5}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		p.Step()
		if p.Load(0) != 5 {
			t.Fatalf("round %d: load = %d, want 5", i, p.Load(0))
		}
	}
}

func TestLoadDropsByAtMostOne(t *testing.T) {
	// Per the update rule, a bin's load can decrease by at most 1 per round.
	r := rng.New(7)
	p, err := NewProcess(config.AllInOne(32, 32), r)
	if err != nil {
		t.Fatal(err)
	}
	prev := p.LoadsCopy()
	for i := 0; i < 300; i++ {
		p.Step()
		for u := 0; u < p.N(); u++ {
			if p.Load(u) < prev[u]-1 {
				t.Fatalf("round %d bin %d: %d -> %d (dropped >1)", i, u, prev[u], p.Load(u))
			}
		}
		copy(prev, p.Loads())
	}
}

func TestEmptyBinsAtLeastQuarter(t *testing.T) {
	// Lemma 1/2: after round 1 the number of empty bins is >= n/4 w.h.p.
	// For n = 512 the failure probability is astronomically small.
	const n = 512
	r := rng.New(11)
	p, err := NewProcess(config.OnePerBin(n), r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		p.Step()
		if p.EmptyBins() < n/4 {
			t.Fatalf("round %d: only %d empty bins (< n/4 = %d)", i+1, p.EmptyBins(), n/4)
		}
	}
}

func TestEmptyBinsFromWorstCase(t *testing.T) {
	// Lemma 1 holds from ANY configuration: even starting all-in-one, one
	// round later at least n/4 bins are empty (trivially, here: most bins
	// stay empty).
	const n = 256
	p, err := NewProcess(config.AllInOne(n, n), rng.New(13))
	if err != nil {
		t.Fatal(err)
	}
	p.Step()
	if p.EmptyBins() < n/4 {
		t.Fatalf("after 1 round: %d empty bins", p.EmptyBins())
	}
}

func TestStabilityMaxLoadLogarithmic(t *testing.T) {
	// Theorem 1(a) at test scale: from one-per-bin, over 4n rounds with
	// n = 1024 the max load should stay within ~4 ln n.
	const n = 1024
	p, err := NewProcess(config.OnePerBin(n), rng.New(17))
	if err != nil {
		t.Fatal(err)
	}
	bound := int32(4 * math.Log(n)) // = 27
	var worst int32
	for i := 0; i < 4*n; i++ {
		p.Step()
		if p.MaxLoad() > worst {
			worst = p.MaxLoad()
		}
	}
	if worst > bound {
		t.Fatalf("max load over window = %d > %d = 4 ln n", worst, bound)
	}
	if worst < 3 {
		t.Fatalf("max load %d suspiciously small — process not mixing?", worst)
	}
}

func TestConvergenceFromWorstCase(t *testing.T) {
	// Theorem 1(b) at test scale: from all-in-one with n = 512, the process
	// reaches max load <= 4 ln n within O(n) rounds. The constant is ~1
	// (the heavy bin drains one ball per round); allow 3n.
	const n = 512
	p, err := NewProcess(config.AllInOne(n, n), rng.New(19))
	if err != nil {
		t.Fatal(err)
	}
	threshold := config.LegitimateThreshold(n, config.Beta)
	rounds, ok := p.ConvergenceTime(threshold, 3*n)
	if !ok {
		t.Fatalf("did not converge within %d rounds", 3*n)
	}
	if rounds < n/2 {
		t.Fatalf("converged in %d rounds — too fast for a drain of %d balls", rounds, n)
	}
	t.Logf("converged in %d rounds (n = %d)", rounds, n)
}

func TestRunUntilAlreadySatisfied(t *testing.T) {
	p, err := NewProcess(config.OnePerBin(8), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if !p.RunUntil(func(*Process) bool { return true }, 10) {
		t.Fatal("pred true at start should return immediately")
	}
	if p.Round() != 0 {
		t.Fatal("steps taken despite satisfied predicate")
	}
}

func TestRunUntilExhausts(t *testing.T) {
	p, err := NewProcess(config.OnePerBin(8), rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.RunUntil(func(*Process) bool { return false }, 25) {
		t.Fatal("unsatisfiable predicate reported success")
	}
	if p.Round() != 25 {
		t.Fatalf("rounds = %d, want 25", p.Round())
	}
}

func TestRunAdvancesRounds(t *testing.T) {
	p, err := NewProcess(config.OnePerBin(16), rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(40)
	if p.Round() != 40 {
		t.Fatalf("round = %d", p.Round())
	}
}

func TestDeterministicTrajectory(t *testing.T) {
	mk := func() *Process {
		p, err := NewProcess(config.OnePerBin(64), rng.New(99))
		if err != nil {
			t.Fatal(err)
		}
		return p
	}
	a, b := mk(), mk()
	for i := 0; i < 200; i++ {
		a.Step()
		b.Step()
	}
	la, lb := a.LoadsCopy(), b.LoadsCopy()
	for i := range la {
		if la[i] != lb[i] {
			t.Fatal("same seed produced different trajectories")
		}
	}
}

func TestLoadsViewTracksState(t *testing.T) {
	p, err := NewProcess(config.OnePerBin(16), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	view := p.Loads()
	cp := p.LoadsCopy()
	p.Step()
	changed := false
	for i := range cp {
		if view[i] != cp[i] {
			changed = true
		}
	}
	if !changed {
		t.Skip("step left loads identical (possible but very unlikely); rerun")
	}
}

// TestNegativeAssociationCounterexample reproduces Appendix B by Monte
// Carlo: with n = 2 starting from (1,1), P(X1=0, X2=0) = 1/8 exceeds
// P(X1=0)·P(X2=0) = 1/4 · 3/8 = 3/32, so arrivals are NOT negatively
// associated.
func TestNegativeAssociationCounterexample(t *testing.T) {
	const trials = 400000
	r := rng.New(23)
	bothZero, firstZero, secondZero := 0, 0, 0
	for i := 0; i < trials; i++ {
		p, err := NewProcess([]int32{1, 1}, r)
		if err != nil {
			t.Fatal(err)
		}
		before0 := p.Load(0)
		p.Step()
		// Arrivals into bin 0 in round 1: new load - max(old-1, 0).
		x1 := p.Load(0) - maxInt32(before0-1, 0)
		before0 = p.Load(0)
		p.Step()
		x2 := p.Load(0) - maxInt32(before0-1, 0)
		if x1 == 0 {
			firstZero++
		}
		if x2 == 0 {
			secondZero++
		}
		if x1 == 0 && x2 == 0 {
			bothZero++
		}
	}
	pBoth := float64(bothZero) / trials
	p1 := float64(firstZero) / trials
	p2 := float64(secondZero) / trials
	if math.Abs(pBoth-1.0/8) > 0.005 {
		t.Errorf("P(X1=0,X2=0) = %v, want 1/8", pBoth)
	}
	if math.Abs(p1-1.0/4) > 0.005 {
		t.Errorf("P(X1=0) = %v, want 1/4", p1)
	}
	if math.Abs(p2-3.0/8) > 0.005 {
		t.Errorf("P(X2=0) = %v, want 3/8", p2)
	}
	if pBoth <= p1*p2 {
		t.Errorf("counterexample failed: %v <= %v", pBoth, p1*p2)
	}
}

func maxInt32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

func BenchmarkProcessStep1024(b *testing.B) {
	p, err := NewProcess(config.OnePerBin(1024), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkProcessStep8192(b *testing.B) {
	p, err := NewProcess(config.OnePerBin(8192), rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
