package core

import (
	"math"
	"testing"
)

func TestEnumerateValidation(t *testing.T) {
	visit := func([]int, float64) {}
	if err := EnumerateArrivals(nil, 0, 1, 100, visit); err == nil {
		t.Error("no bins accepted")
	}
	if err := EnumerateArrivals([]int32{1, 1}, 2, 1, 100, visit); err == nil {
		t.Error("bad observed bin accepted")
	}
	if err := EnumerateArrivals([]int32{1, 1}, 0, -1, 100, visit); err == nil {
		t.Error("negative rounds accepted")
	}
	if err := EnumerateArrivals([]int32{1, 1}, 0, 1, 100, nil); err == nil {
		t.Error("nil visitor accepted")
	}
	if err := EnumerateArrivals([]int32{-1, 1}, 0, 1, 100, visit); err == nil {
		t.Error("negative load accepted")
	}
}

func TestEnumerateProbabilitiesSumToOne(t *testing.T) {
	for _, init := range [][]int32{{1, 1}, {2, 0}, {1, 1, 1}, {3, 0, 0}} {
		total := 0.0
		count := 0
		if err := EnumerateArrivals(init, 0, 2, 1<<20, func(_ []int, p float64) {
			total += p
			count++
		}); err != nil {
			t.Fatal(err)
		}
		if math.Abs(total-1) > 1e-12 {
			t.Fatalf("init %v: probs sum to %v", init, total)
		}
		if count == 0 {
			t.Fatalf("init %v: no outcomes", init)
		}
	}
}

func TestEnumerateOutcomeCap(t *testing.T) {
	err := EnumerateArrivals([]int32{1, 1, 1, 1}, 0, 4, 10, func([]int, float64) {})
	if err == nil {
		t.Fatal("outcome cap not enforced")
	}
}

func TestEnumerateNoBalls(t *testing.T) {
	calls := 0
	if err := EnumerateArrivals([]int32{0, 0}, 0, 3, 100, func(arr []int, p float64) {
		calls++
		if p != 1 {
			t.Fatalf("prob = %v", p)
		}
		for _, a := range arr {
			if a != 0 {
				t.Fatal("arrivals in an empty system")
			}
		}
	}); err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("calls = %d, want 1", calls)
	}
}

// TestAppendixBExact reproduces Appendix B exactly: n = 2 starting from
// (1,1), P(X1=0) = 1/4, P(X2=0) = 3/8, P(X1=0, X2=0) = 1/8 > 3/32.
func TestAppendixBExact(t *testing.T) {
	var pBoth, p1, p2 float64
	if err := EnumerateArrivals([]int32{1, 1}, 0, 2, 1000, func(arr []int, p float64) {
		if arr[0] == 0 {
			p1 += p
		}
		if arr[1] == 0 {
			p2 += p
		}
		if arr[0] == 0 && arr[1] == 0 {
			pBoth += p
		}
	}); err != nil {
		t.Fatal(err)
	}
	if math.Abs(p1-0.25) > 1e-12 {
		t.Errorf("P(X1=0) = %v, want 1/4", p1)
	}
	if math.Abs(p2-0.375) > 1e-12 {
		t.Errorf("P(X2=0) = %v, want 3/8", p2)
	}
	if math.Abs(pBoth-0.125) > 1e-12 {
		t.Errorf("P(X1=0,X2=0) = %v, want 1/8", pBoth)
	}
	if pBoth <= p1*p2 {
		t.Errorf("negative-association counterexample failed: %v <= %v", pBoth, p1*p2)
	}
}

// TestEnumeratorMatchesEngine cross-validates the exact enumerator against
// the Monte-Carlo engine on a 3-bin system: the exact P(X1 = 0) must match
// the simulated frequency.
func TestEnumeratorMatchesEngine(t *testing.T) {
	init := []int32{2, 1, 0}
	var exact float64
	if err := EnumerateArrivals(init, 0, 1, 1000, func(arr []int, p float64) {
		if arr[0] == 0 {
			exact += p
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Two non-empty bins, each missing bin 0 with prob 2/3: exact = 4/9.
	if math.Abs(exact-4.0/9) > 1e-12 {
		t.Fatalf("exact = %v, want 4/9", exact)
	}
}
