// Package core implements the paper's primary object: the synchronous
// repeated balls-into-bins process.
//
// Given n bins and m balls (the paper takes m = n), in every round one ball
// is extracted from each non-empty bin and re-assigned to a bin chosen
// uniformly at random (self included). With W(t) the set of non-empty bins
// and X_u uniform over [n], the exact update is
//
//	Q_v(t+1) = max(Q_v(t) − 1, 0) + |{ u ∈ W(t) : X_u(t+1) = v }|
//
// Two engines implement the same law:
//
//   - Process: anonymous loads-only engine with per-round cost proportional
//     to |W(t)| (the non-empty bins) in the sparse regime, via the shared
//     stepping layer in internal/engine. Used for max-load, empty-bin and
//     convergence experiments (E1–E3, E11, E13).
//   - TokenProcess: ball identities with pluggable queueing strategies
//     (FIFO/LIFO/Random), per-ball progress, per-visit delay and cover-time
//     tracking. Used for the traversal-flavored experiments (E9, E16).
//
// Both engines consume exactly one RNG draw per non-empty bin per round, in
// bin order, for the destination; TokenProcess draws ball selections (only
// needed by the Random strategy) from a separate source. Given identical
// destination sources, the two engines therefore produce identical load
// vectors round by round — a property the test suite exploits to verify the
// queueing-strategy obliviousness claimed by the paper (§2, footnote 2).
package core

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/rng"
)

// Process is the anonymous repeated balls-into-bins engine. Create one with
// NewProcess; it is not safe for concurrent use.
type Process struct {
	n    int
	m    int64
	eng  *engine.State
	draw *engine.Drawer

	round int64
}

// NewProcess builds a process over a copy of the given initial
// configuration. It returns an error if loads is empty, contains a negative
// entry, or src is nil.
func NewProcess(loads []int32, src *rng.Source) (*Process, error) {
	if src == nil {
		return nil, errors.New("core: NewProcess with nil rng source")
	}
	eng, err := engine.New(loads, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	m := eng.Sum()
	if m > math.MaxInt32 {
		return nil, fmt.Errorf("core: %d balls exceed int32 bin capacity", m)
	}
	return &Process{
		n:    len(loads),
		m:    m,
		eng:  eng,
		draw: engine.NewDrawer(src),
	}, nil
}

// Step advances the process by one synchronous round: every non-empty bin
// releases one ball, and every released ball lands in an independently and
// uniformly chosen bin (self included). Destinations are drawn in bin order,
// one draw per non-empty bin.
func (p *Process) Step() {
	p.eng.ReleaseUniform(p.draw, nil)
	p.eng.Commit()
	p.round++
}

// Run advances the process by k rounds.
func (p *Process) Run(k int64) {
	for i := int64(0); i < k; i++ {
		p.Step()
	}
}

// RunUntil steps until pred returns true or maxRounds steps have elapsed
// (whichever first), and reports whether pred was satisfied. pred is
// evaluated after each step (and once before the first step, so a process
// already satisfying it takes zero steps).
func (p *Process) RunUntil(pred func(*Process) bool, maxRounds int64) bool {
	if pred(p) {
		return true
	}
	for i := int64(0); i < maxRounds; i++ {
		p.Step()
		if pred(p) {
			return true
		}
	}
	return false
}

// ConvergenceTime runs the process until its maximum load drops to at most
// threshold, returning the number of rounds taken. ok is false if the bound
// was not reached within maxRounds.
func (p *Process) ConvergenceTime(threshold int32, maxRounds int64) (rounds int64, ok bool) {
	start := p.round
	reached := p.RunUntil(func(q *Process) bool { return q.MaxLoad() <= threshold }, maxRounds)
	return p.round - start, reached
}

// N returns the number of bins.
func (p *Process) N() int { return p.n }

// Balls returns the number of balls m.
func (p *Process) Balls() int64 { return p.m }

// Round returns the number of completed rounds.
func (p *Process) Round() int64 { return p.round }

// MaxLoad returns the current maximum bin load M(t).
func (p *Process) MaxLoad() int32 { return p.eng.MaxLoad() }

// EmptyBins returns the current number of empty bins.
func (p *Process) EmptyBins() int { return p.eng.EmptyBins() }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (p *Process) NonEmptyBins() int { return p.eng.NonEmptyBins() }

// Load returns the load of bin u.
func (p *Process) Load(u int) int32 { return p.eng.Load(u) }

// Loads returns the live load vector. The slice is owned by the process;
// callers must not modify it and must copy it if they need it across Steps.
func (p *Process) Loads() []int32 { return p.eng.Loads() }

// LoadsCopy returns a fresh copy of the current load vector.
func (p *Process) LoadsCopy() []int32 { return p.eng.LoadsCopy() }

// SetLoads replaces the current configuration in place — the §4.1
// adversarial model, where in a faulty round an adversary reassigns all
// balls arbitrarily. The number of balls must be preserved.
func (p *Process) SetLoads(loads []int32) error {
	if len(loads) != p.n {
		return fmt.Errorf("core: SetLoads with %d bins, want %d", len(loads), p.n)
	}
	var s int64
	for i, l := range loads {
		if l < 0 {
			return fmt.Errorf("core: SetLoads bin %d negative load %d", i, l)
		}
		s += int64(l)
	}
	if s != p.m {
		return fmt.Errorf("core: SetLoads with %d balls, want %d", s, p.m)
	}
	return p.eng.Reload(loads)
}

// LoadHistogram returns counts[k] = number of bins currently holding
// exactly k balls, for k = 0..MaxLoad(). The stationary shape of this
// histogram (geometric-like tail) is what drives the O(log n) maximum.
func (p *Process) LoadHistogram() []int64 {
	counts := make([]int64, p.eng.MaxLoad()+1)
	for _, l := range p.eng.Loads() {
		counts[l]++
	}
	return counts
}

// CheckInvariants verifies ball conservation, non-negativity and the
// engine's incremental statistics; it is called by tests after arbitrary
// step sequences.
func (p *Process) CheckInvariants() error {
	if err := p.eng.CheckInvariants(); err != nil {
		return fmt.Errorf("core: round %d: %w", p.round, err)
	}
	if s := p.eng.Sum(); s != p.m {
		return fmt.Errorf("core: balls not conserved at round %d: %d != %d", p.round, s, p.m)
	}
	return nil
}
