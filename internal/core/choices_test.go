package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func TestNewChoicesValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewChoicesProcess(nil, 2, r); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := NewChoicesProcess([]int32{1}, 0, r); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewChoicesProcess([]int32{1}, 2, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := NewChoicesProcess([]int32{-1}, 2, r); err == nil {
		t.Error("negative load accepted")
	}
}

func TestChoicesD1MatchesProcessLaw(t *testing.T) {
	// With d = 1 the choices process consumes RNG identically to Process
	// (one Intn per departure in bin order), so trajectories coincide.
	const n = 64
	loads := config.UniformRandom(n, n, rng.New(5))
	a, err := NewProcess(loads, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewChoicesProcess(loads, 1, rng.New(9))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		a.Step()
		b.Step()
		for u := 0; u < n; u++ {
			if a.Load(u) != b.Load(u) {
				t.Fatalf("round %d bin %d: %d vs %d", i, u, a.Load(u), b.Load(u))
			}
		}
	}
}

func TestChoicesConservation(t *testing.T) {
	if err := quick.Check(func(seed uint32, dRaw uint8) bool {
		d := int(dRaw)%4 + 1
		r := rng.New(uint64(seed))
		p, err := NewChoicesProcess(config.UniformRandom(40, 40, r), d, r)
		if err != nil {
			return false
		}
		p.Run(200)
		return p.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestPowerOfTwoChoices(t *testing.T) {
	// The d = 2 stationary max load must be well below the d = 1 max load
	// over the same window (power of two choices).
	const n = 1024
	window := int64(8 * n)
	windowMax := func(d int) int32 {
		p, err := NewChoicesProcess(config.OnePerBin(n), d, rng.New(31))
		if err != nil {
			t.Fatal(err)
		}
		var worst int32
		for i := int64(0); i < window; i++ {
			p.Step()
			if p.MaxLoad() > worst {
				worst = p.MaxLoad()
			}
		}
		return worst
	}
	m1, m2 := windowMax(1), windowMax(2)
	if m2 >= m1 {
		t.Fatalf("two choices max %d not below one choice max %d", m2, m1)
	}
	// d = 2 collapses the Θ(log n) window max to a small constant
	// (log log n + busy-queue slack); at n = 1024 anything ≤ 10 vs the
	// observed ~16-19 for d = 1 demonstrates the effect.
	if m2 > 10 {
		t.Fatalf("d=2 max %d too large (log log n = %.1f)", m2, math.Log(math.Log(n)))
	}
}

func TestChoicesMoreChoicesNoWorse(t *testing.T) {
	// d = 4 must not be materially worse than d = 2 (exact equality of
	// small maxima is noise-dominated, so allow a 1-ball slack), and both
	// must beat d = 1 clearly.
	const n = 512
	window := int64(4 * n)
	windowMax := func(d int) int32 {
		p, err := NewChoicesProcess(config.OnePerBin(n), d, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		var worst int32
		for i := int64(0); i < window; i++ {
			p.Step()
			if p.MaxLoad() > worst {
				worst = p.MaxLoad()
			}
		}
		return worst
	}
	m1, m2, m4 := windowMax(1), windowMax(2), windowMax(4)
	if m2 >= m1 || m4 >= m1 {
		t.Fatalf("choices did not help: d1=%d d2=%d d4=%d", m1, m2, m4)
	}
	if m4 > m2+1 {
		t.Fatalf("d=4 (%d) materially worse than d=2 (%d)", m4, m2)
	}
}

func TestChoicesAccessors(t *testing.T) {
	p, err := NewChoicesProcess([]int32{3, 0}, 2, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != 2 || p.Choices() != 2 || p.Balls() != 3 || p.MaxLoad() != 3 || p.EmptyBins() != 1 {
		t.Fatal("accessors wrong")
	}
	p.Step()
	if p.Round() != 1 {
		t.Fatal("round not advanced")
	}
	cp := p.LoadsCopy()
	cp[0] = 99
	if p.Load(0) == 99 {
		t.Fatal("LoadsCopy aliases")
	}
}

func BenchmarkChoicesStepD2(b *testing.B) {
	p, err := NewChoicesProcess(config.OnePerBin(1024), 2, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
