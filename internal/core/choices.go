package core

import (
	"errors"
	"fmt"

	"repro/internal/engine"
	"repro/internal/rng"
)

// ChoicesProcess is the d-choices generalization of the repeated
// balls-into-bins process discussed in the paper's related work (§1.3,
// citing Czumaj & Stemann [36]): every round each non-empty bin releases
// one ball, and each released ball samples d bins independently and
// uniformly at random and joins the least loaded of them.
//
// Loads are compared against the post-departure, pre-arrival snapshot of
// the round (all departures are simultaneous, then all balls choose, then
// all arrivals land), which keeps the process synchronous and well-defined;
// ties go to the first-sampled bin. d = 1 is exactly the paper's process.
//
// The "power of two choices" effect carries over from the one-shot setting:
// experiment E18 shows the stationary maximum load collapses from Θ(log n)
// at d = 1 to a small constant for d ≥ 2.
type ChoicesProcess struct {
	n   int
	d   int
	m   int64
	eng *engine.State
	src *rng.Source

	round int64
}

// NewChoicesProcess builds a d-choices process over a copy of the initial
// configuration. d must be ≥ 1.
func NewChoicesProcess(loads []int32, d int, src *rng.Source) (*ChoicesProcess, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("core: NewChoicesProcess with no bins")
	}
	if d < 1 {
		return nil, fmt.Errorf("core: NewChoicesProcess with d = %d < 1", d)
	}
	if src == nil {
		return nil, errors.New("core: NewChoicesProcess with nil rng source")
	}
	eng, err := engine.New(loads, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return &ChoicesProcess{
		n:   n,
		d:   d,
		m:   eng.Sum(),
		eng: eng,
		src: src,
	}, nil
}

// Step advances one synchronous round: simultaneous departures, then every
// released ball samples d candidate bins against the post-departure
// snapshot and joins the least loaded, then all arrivals merge. All d
// draws for one ball precede the next ball's draws, balls in released-bin
// order — the same draw sequence as a dense scan.
func (p *ChoicesProcess) Step() {
	n := p.n
	departures := p.eng.ReleaseEach(nil)
	d := p.d
	for i := 0; i < departures; i++ {
		best := p.src.Intn(n)
		bestLoad := p.eng.Load(best)
		for j := 1; j < d; j++ {
			c := p.src.Intn(n)
			if l := p.eng.Load(c); l < bestLoad {
				best, bestLoad = c, l
			}
		}
		p.eng.Deposit(best)
	}
	p.eng.Commit()
	p.round++
}

// Run advances the process by k rounds.
func (p *ChoicesProcess) Run(k int64) {
	for i := int64(0); i < k; i++ {
		p.Step()
	}
}

// N returns the number of bins.
func (p *ChoicesProcess) N() int { return p.n }

// Choices returns d.
func (p *ChoicesProcess) Choices() int { return p.d }

// Balls returns the number of balls.
func (p *ChoicesProcess) Balls() int64 { return p.m }

// Round returns the number of completed rounds.
func (p *ChoicesProcess) Round() int64 { return p.round }

// MaxLoad returns the current maximum bin load.
func (p *ChoicesProcess) MaxLoad() int32 { return p.eng.MaxLoad() }

// EmptyBins returns the current number of empty bins.
func (p *ChoicesProcess) EmptyBins() int { return p.eng.EmptyBins() }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (p *ChoicesProcess) NonEmptyBins() int { return p.eng.NonEmptyBins() }

// Load returns the load of bin u.
func (p *ChoicesProcess) Load(u int) int32 { return p.eng.Load(u) }

// LoadsCopy returns a fresh copy of the load vector.
func (p *ChoicesProcess) LoadsCopy() []int32 { return p.eng.LoadsCopy() }

// CheckInvariants verifies ball conservation and the engine statistics.
func (p *ChoicesProcess) CheckInvariants() error {
	if err := p.eng.CheckInvariants(); err != nil {
		return fmt.Errorf("core: choices: %w", err)
	}
	if s := p.eng.Sum(); s != p.m {
		return fmt.Errorf("core: choices balls not conserved: %d != %d", s, p.m)
	}
	return nil
}
