package core

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// ChoicesProcess is the d-choices generalization of the repeated
// balls-into-bins process discussed in the paper's related work (§1.3,
// citing Czumaj & Stemann [36]): every round each non-empty bin releases
// one ball, and each released ball samples d bins independently and
// uniformly at random and joins the least loaded of them.
//
// Loads are compared against the post-departure, pre-arrival snapshot of
// the round (all departures are simultaneous, then all balls choose, then
// all arrivals land), which keeps the process synchronous and well-defined;
// ties go to the first-sampled bin. d = 1 is exactly the paper's process.
//
// The "power of two choices" effect carries over from the one-shot setting:
// experiment E18 shows the stationary maximum load collapses from Θ(log n)
// at d = 1 to a small constant for d ≥ 2.
type ChoicesProcess struct {
	n        int
	d        int
	m        int64
	loads    []int32
	arrivals []int32
	src      *rng.Source

	round   int64
	maxLoad int32
	empty   int
}

// NewChoicesProcess builds a d-choices process over a copy of the initial
// configuration. d must be ≥ 1.
func NewChoicesProcess(loads []int32, d int, src *rng.Source) (*ChoicesProcess, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("core: NewChoicesProcess with no bins")
	}
	if d < 1 {
		return nil, fmt.Errorf("core: NewChoicesProcess with d = %d < 1", d)
	}
	if src == nil {
		return nil, errors.New("core: NewChoicesProcess with nil rng source")
	}
	p := &ChoicesProcess{
		n:        n,
		d:        d,
		loads:    make([]int32, n),
		arrivals: make([]int32, n),
		src:      src,
	}
	for i, l := range loads {
		if l < 0 {
			return nil, fmt.Errorf("core: bin %d has negative load %d", i, l)
		}
		p.loads[i] = l
		p.m += int64(l)
	}
	p.refreshStats()
	return p, nil
}

func (p *ChoicesProcess) refreshStats() {
	var max int32
	empty := 0
	for _, l := range p.loads {
		if l > max {
			max = l
		}
		if l == 0 {
			empty++
		}
	}
	p.maxLoad = max
	p.empty = empty
}

// Step advances one synchronous round: simultaneous departures, then every
// released ball samples d candidate bins against the post-departure
// snapshot and joins the least loaded, then all arrivals merge.
func (p *ChoicesProcess) Step() {
	n := p.n
	loads := p.loads
	departures := 0
	for u := 0; u < n; u++ {
		if loads[u] > 0 {
			loads[u]--
			departures++
		}
	}
	d := p.d
	for i := 0; i < departures; i++ {
		best := p.src.Intn(n)
		bestLoad := loads[best]
		for j := 1; j < d; j++ {
			c := p.src.Intn(n)
			if loads[c] < bestLoad {
				best, bestLoad = c, loads[c]
			}
		}
		p.arrivals[best]++
	}
	var max int32
	empty := 0
	for v := 0; v < n; v++ {
		l := loads[v] + p.arrivals[v]
		p.arrivals[v] = 0
		loads[v] = l
		if l > max {
			max = l
		}
		if l == 0 {
			empty++
		}
	}
	p.maxLoad = max
	p.empty = empty
	p.round++
}

// Run advances the process by k rounds.
func (p *ChoicesProcess) Run(k int64) {
	for i := int64(0); i < k; i++ {
		p.Step()
	}
}

// N returns the number of bins.
func (p *ChoicesProcess) N() int { return p.n }

// Choices returns d.
func (p *ChoicesProcess) Choices() int { return p.d }

// Balls returns the number of balls.
func (p *ChoicesProcess) Balls() int64 { return p.m }

// Round returns the number of completed rounds.
func (p *ChoicesProcess) Round() int64 { return p.round }

// MaxLoad returns the current maximum bin load.
func (p *ChoicesProcess) MaxLoad() int32 { return p.maxLoad }

// EmptyBins returns the current number of empty bins.
func (p *ChoicesProcess) EmptyBins() int { return p.empty }

// Load returns the load of bin u.
func (p *ChoicesProcess) Load(u int) int32 { return p.loads[u] }

// LoadsCopy returns a fresh copy of the load vector.
func (p *ChoicesProcess) LoadsCopy() []int32 {
	out := make([]int32, p.n)
	copy(out, p.loads)
	return out
}

// CheckInvariants verifies ball conservation and non-negativity.
func (p *ChoicesProcess) CheckInvariants() error {
	var s int64
	for i, l := range p.loads {
		if l < 0 {
			return fmt.Errorf("core: choices bin %d negative load %d", i, l)
		}
		s += int64(l)
	}
	if s != p.m {
		return fmt.Errorf("core: choices balls not conserved: %d != %d", s, p.m)
	}
	return nil
}
