package core

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func TestStrategyStringRoundTrip(t *testing.T) {
	for _, s := range []Strategy{FIFO, LIFO, Random} {
		got, err := ParseStrategy(s.String())
		if err != nil {
			t.Fatal(err)
		}
		if got != s {
			t.Fatalf("round trip %v -> %v", s, got)
		}
	}
	if _, err := ParseStrategy("bogus"); err == nil {
		t.Error("bogus strategy accepted")
	}
	if Strategy(9).String() == "" {
		t.Error("unknown strategy String should be non-empty")
	}
}

func TestNewTokenProcessValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewTokenProcess(nil, r, TokenOptions{}); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := NewTokenProcess([]int32{-1}, r, TokenOptions{}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewTokenProcess([]int32{1}, nil, TokenOptions{}); err == nil {
		t.Error("nil source accepted")
	}
}

func TestTokenInitialPlacement(t *testing.T) {
	p, err := NewTokenProcess([]int32{2, 0, 3}, rng.New(1), TokenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Balls() != 5 || p.N() != 3 {
		t.Fatal("dims wrong")
	}
	wantPos := []int{0, 0, 2, 2, 2}
	for b, w := range wantPos {
		if p.Position(b) != w {
			t.Fatalf("ball %d at %d, want %d", b, p.Position(b), w)
		}
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestTokenInvariantsUnderAllStrategies(t *testing.T) {
	for _, strat := range []Strategy{FIFO, LIFO, Random} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			r := rng.New(5)
			loads := config.UniformRandom(40, 40, r)
			p, err := NewTokenProcess(loads, r, TokenOptions{Strategy: strat})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 500; i++ {
				p.Step()
				if err := p.CheckInvariants(); err != nil {
					t.Fatalf("round %d: %v", i, err)
				}
			}
		})
	}
}

// TestEngineEquivalence is the load-law cross-check: driven by identical
// destination sources, the anonymous and token engines must produce
// identical load vectors round by round — for every strategy, because ball
// identity cannot influence loads. This is the implementation-level
// expression of the paper's strategy-obliviousness.
func TestEngineEquivalence(t *testing.T) {
	for _, strat := range []Strategy{FIFO, LIFO, Random} {
		strat := strat
		t.Run(strat.String(), func(t *testing.T) {
			const n = 64
			setup := rng.New(31)
			loads := config.UniformRandom(n, n, setup)

			anon, err := NewProcess(loads, rng.New(77))
			if err != nil {
				t.Fatal(err)
			}
			tok, err := NewTokenProcess(loads, rng.New(77), TokenOptions{
				Strategy:   strat,
				PickSource: rng.New(1234), // separate stream, never touches dest draws
			})
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < 400; i++ {
				anon.Step()
				tok.Step()
				for u := 0; u < n; u++ {
					if anon.Load(u) != tok.Load(u) {
						t.Fatalf("round %d bin %d: anon %d vs token %d (strategy %v)",
							i, u, anon.Load(u), tok.Load(u), strat)
					}
				}
			}
		})
	}
}

func TestTokenConservationProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32, stratRaw uint8) bool {
		strat := Strategy(stratRaw % 3)
		r := rng.New(uint64(seed))
		n := 20
		p, err := NewTokenProcess(config.UniformRandom(n, n, r), r, TokenOptions{Strategy: strat})
		if err != nil {
			return false
		}
		for i := 0; i < 100; i++ {
			p.Step()
		}
		return p.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestHopsCountRelaunches(t *testing.T) {
	// Total hops after k rounds equals the total number of non-empty-bin
	// extractions, which for one ball per bin and n=1 is k.
	p, err := NewTokenProcess([]int32{1}, rng.New(3), TokenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(17)
	if p.Hops(0) != 17 {
		t.Fatalf("hops = %d, want 17", p.Hops(0))
	}
	if p.MinHops() != 17 {
		t.Fatalf("MinHops = %d", p.MinHops())
	}
}

func TestProgressLowerBound(t *testing.T) {
	// §4: under FIFO every ball performs Ω(t / log n) steps. At test scale
	// (n = 256, t = 4096) the min progress should comfortably exceed
	// t / (8 ln n).
	const n = 256
	const rounds = 4096
	r := rng.New(41)
	p, err := NewTokenProcess(config.OnePerBin(n), r, TokenOptions{Strategy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(rounds)
	bound := int64(float64(rounds) / (8 * math.Log(n)))
	if got := p.MinHops(); got < bound {
		t.Fatalf("min progress %d < %d = t/(8 ln n)", got, bound)
	}
}

func TestDelayTracking(t *testing.T) {
	// n=1: the single ball is released every round, so every delay is 1.
	p, err := NewTokenProcess([]int32{1}, rng.New(3), TokenOptions{TrackDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(10)
	if p.MaxDelay() != 1 {
		t.Fatalf("max delay = %d, want 1", p.MaxDelay())
	}
	if p.MeanDelay() != 1 {
		t.Fatalf("mean delay = %v, want 1", p.MeanDelay())
	}
}

func TestDelayBoundedByLoadFIFO(t *testing.T) {
	// Under FIFO the max delay over a window is at most max load over the
	// window + 1 (a ball waits at most for the queue ahead of it).
	const n = 128
	r := rng.New(43)
	p, err := NewTokenProcess(config.OnePerBin(n), r, TokenOptions{Strategy: FIFO, TrackDelays: true})
	if err != nil {
		t.Fatal(err)
	}
	var worstLoad int32
	for i := 0; i < 2000; i++ {
		p.Step()
		if p.MaxLoad() > worstLoad {
			worstLoad = p.MaxLoad()
		}
	}
	if p.MaxDelay() > int64(worstLoad)+1 {
		t.Fatalf("max delay %d > max load %d + 1", p.MaxDelay(), worstLoad)
	}
	if p.MeanDelay() < 1 {
		t.Fatalf("mean delay %v < 1", p.MeanDelay())
	}
}

func TestNoDelayStatsWhenDisabled(t *testing.T) {
	p, err := NewTokenProcess([]int32{1, 1}, rng.New(3), TokenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(20)
	if p.MaxDelay() != 0 || p.MeanDelay() != 0 {
		t.Fatal("delay stats collected while disabled")
	}
}

func TestCoverTracking(t *testing.T) {
	const n = 16
	r := rng.New(47)
	p, err := NewTokenProcess(config.OnePerBin(n), r, TokenOptions{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	// Initially each ball has visited exactly its own bin.
	for b := 0; b < n; b++ {
		if p.VisitCount(b) != 1 {
			t.Fatalf("ball %d initial visits = %d", b, p.VisitCount(b))
		}
	}
	round, ok := p.RunUntilCovered(int64(100 * n * n))
	if !ok {
		t.Fatal("did not cover")
	}
	if round < int64(n) {
		t.Fatalf("cover round %d implausibly small", round)
	}
	if p.Covered() != n {
		t.Fatalf("covered = %d, want %d", p.Covered(), n)
	}
	for b := 0; b < n; b++ {
		if p.VisitCount(b) != n {
			t.Fatalf("ball %d visited %d bins after cover", b, p.VisitCount(b))
		}
	}
}

func TestCoverSingleBin(t *testing.T) {
	p, err := NewTokenProcess([]int32{3}, rng.New(1), TokenOptions{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.CoverRound() != 0 {
		t.Fatalf("n=1 should be covered at round 0, got %d", p.CoverRound())
	}
}

func TestRunUntilCoveredRequiresTracking(t *testing.T) {
	p, err := NewTokenProcess([]int32{1, 1}, rng.New(1), TokenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := p.RunUntilCovered(10); ok || r != -1 {
		t.Fatal("cover without tracking should fail")
	}
}

func TestMaxLoadTrackedByTokenEngine(t *testing.T) {
	p, err := NewTokenProcess([]int32{4, 0, 0, 0}, rng.New(1), TokenOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if p.MaxLoad() != 4 || p.EmptyBins() != 3 {
		t.Fatal("initial stats wrong")
	}
	p.Step()
	if p.MaxLoad() < 1 {
		t.Fatal("max load vanished")
	}
}

func TestFIFOOrder(t *testing.T) {
	// Deterministic FIFO check on n=1: with a single bin every destination
	// is bin 0, so the queue should rotate in strict FIFO order.
	p, err := NewTokenProcess([]int32{3}, rng.New(9), TokenOptions{Strategy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	// Queue starts [0 1 2]; after one step ball 0 moves to tail: [1 2 0].
	p.Step()
	if got := p.queue[0][p.head[0]:]; got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("queue after 1 step = %v, want [1 2 0]", got)
	}
	p.Step()
	if got := p.queue[0][p.head[0]:]; got[0] != 2 || got[1] != 0 || got[2] != 1 {
		t.Fatalf("queue after 2 steps = %v, want [2 0 1]", got)
	}
}

func TestLIFOOrder(t *testing.T) {
	// LIFO on n=1: the newest ball (tail) is re-released every round, so
	// after the first step the same ball keeps bouncing.
	p, err := NewTokenProcess([]int32{3}, rng.New(9), TokenOptions{Strategy: LIFO})
	if err != nil {
		t.Fatal(err)
	}
	p.Step() // ball 2 leaves and re-enters at tail
	p.Step()
	p.Step()
	if p.Hops(2) != 3 || p.Hops(0) != 0 || p.Hops(1) != 0 {
		t.Fatalf("hops = [%d %d %d], want [0 0 3]", p.Hops(0), p.Hops(1), p.Hops(2))
	}
}

func TestFIFOCompaction(t *testing.T) {
	// Long single-bin run: the queue storage must not grow without bound.
	p, err := NewTokenProcess([]int32{200}, rng.New(9), TokenOptions{Strategy: FIFO})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(20000)
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if c := cap(p.queue[0]); c > 4096 {
		t.Fatalf("queue capacity grew to %d; compaction not working", c)
	}
}

func BenchmarkTokenStepFIFO1024(b *testing.B) {
	p, err := NewTokenProcess(config.OnePerBin(1024), rng.New(1), TokenOptions{Strategy: FIFO})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkTokenStepCover1024(b *testing.B) {
	p, err := NewTokenProcess(config.OnePerBin(1024), rng.New(1), TokenOptions{Strategy: FIFO, TrackCover: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}
