package core

import (
	"fmt"
)

// EnumerateArrivals walks every realization of `rounds` synchronous rounds
// of the repeated balls-into-bins process from the initial configuration,
// invoking visit with the per-round arrival counts into observedBin and the
// realization's exact probability. Probabilities over all visits sum to 1.
//
// This is the machinery behind the Appendix B reproduction (experiment
// E12): for n = 2 it computes P(X₁ = 0, X₂ = 0) = 1/8 > 3/32 =
// P(X₁ = 0)·P(X₂ = 0) exactly, proving arrivals are not negatively
// associated. It also cross-validates the Monte-Carlo engines on small
// systems.
//
// The number of realizations is Π_t n^{w_t} (w_t = non-empty bins in round
// t); enumeration aborts with an error once more than maxOutcomes leaves
// have been visited. Intended for tiny systems only.
func EnumerateArrivals(initial []int32, observedBin, rounds int, maxOutcomes int64, visit func(arrivals []int, prob float64)) error {
	n := len(initial)
	if n < 1 {
		return fmt.Errorf("core: EnumerateArrivals with no bins")
	}
	if observedBin < 0 || observedBin >= n {
		return fmt.Errorf("core: EnumerateArrivals observedBin %d outside [0,%d)", observedBin, n)
	}
	if rounds < 0 {
		return fmt.Errorf("core: EnumerateArrivals rounds = %d < 0", rounds)
	}
	if visit == nil {
		return fmt.Errorf("core: EnumerateArrivals nil visitor")
	}
	for i, l := range initial {
		if l < 0 {
			return fmt.Errorf("core: EnumerateArrivals bin %d negative load %d", i, l)
		}
	}
	if maxOutcomes < 1 {
		maxOutcomes = 1
	}
	e := &enumerator{
		n:           n,
		bin:         observedBin,
		rounds:      rounds,
		visit:       visit,
		arrHist:     make([]int, rounds),
		maxOutcomes: maxOutcomes,
	}
	loads := make([]int32, n)
	copy(loads, initial)
	if err := e.recurse(loads, 0, 1.0); err != nil {
		return err
	}
	return nil
}

type enumerator struct {
	n           int
	bin         int
	rounds      int
	visit       func([]int, float64)
	arrHist     []int
	visited     int64
	maxOutcomes int64
}

func (e *enumerator) recurse(loads []int32, t int, prob float64) error {
	if t == e.rounds {
		e.visited++
		if e.visited > e.maxOutcomes {
			return fmt.Errorf("core: EnumerateArrivals exceeded %d outcomes", e.maxOutcomes)
		}
		out := make([]int, e.rounds)
		copy(out, e.arrHist)
		e.visit(out, prob)
		return nil
	}
	// Collect non-empty bins.
	var w []int
	for u, l := range loads {
		if l > 0 {
			w = append(w, u)
		}
	}
	if len(w) == 0 {
		// No balls at all: the round is a no-op with probability 1.
		e.arrHist[t] = 0
		return e.recurse(loads, t+1, prob)
	}
	// Iterate over all n^|w| destination assignments with a mixed-radix
	// counter.
	dests := make([]int, len(w))
	p := prob
	for i := 0; i < len(w); i++ {
		p /= float64(e.n)
	}
	next := make([]int32, e.n)
	for {
		// Apply the update rule for this assignment.
		copy(next, loads)
		arrObserved := 0
		for _, u := range w {
			next[u]--
		}
		for i := range w {
			next[dests[i]]++
			if dests[i] == e.bin {
				arrObserved++
			}
		}
		e.arrHist[t] = arrObserved
		child := make([]int32, e.n)
		copy(child, next)
		if err := e.recurse(child, t+1, p); err != nil {
			return err
		}
		// Increment the counter.
		i := 0
		for ; i < len(dests); i++ {
			dests[i]++
			if dests[i] < e.n {
				break
			}
			dests[i] = 0
		}
		if i == len(dests) {
			return nil
		}
	}
}
