package graph

import (
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestCompleteBasics(t *testing.T) {
	g, err := NewComplete(5)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 5 || g.Degree(0) != 5 {
		t.Fatal("complete dims wrong")
	}
	if g.Neighbor(3, 2) != 2 {
		t.Fatal("complete neighbor wrong")
	}
	if !Connected(g) {
		t.Fatal("complete not connected")
	}
	if d, ok := IsRegular(g); !ok || d != 5 {
		t.Fatal("complete not regular")
	}
	if _, err := NewComplete(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestCompleteSampleUniform(t *testing.T) {
	g, err := NewComplete(8)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	counts := make([]int, 8)
	const draws = 80000
	for i := 0; i < draws; i++ {
		counts[g.Sample(3, r)]++
	}
	for v, c := range counts {
		if c < 9400 || c > 10600 {
			t.Fatalf("vertex %d sampled %d times, want ~10000", v, c)
		}
	}
}

func TestRing(t *testing.T) {
	g, err := NewRing(6)
	if err != nil {
		t.Fatal(err)
	}
	if g.Neighbor(0, 0) != 5 || g.Neighbor(0, 1) != 1 {
		t.Fatal("ring neighbors wrong")
	}
	if g.Neighbor(5, 1) != 0 {
		t.Fatal("ring wraparound wrong")
	}
	if !Connected(g) {
		t.Fatal("ring not connected")
	}
	if d := Diameter(g); d != 3 {
		t.Fatalf("ring-6 diameter = %d, want 3", d)
	}
	if _, err := NewRing(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestRingSingleton(t *testing.T) {
	g, err := NewRing(1)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 1 || g.Neighbor(0, 0) != 0 {
		t.Fatal("singleton ring should self-loop")
	}
	r := rng.New(1)
	if g.Sample(0, r) != 0 {
		t.Fatal("singleton sample should be 0")
	}
}

func TestTorus(t *testing.T) {
	g, err := NewTorus(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 12 {
		t.Fatal("torus size wrong")
	}
	if d, ok := IsRegular(g); !ok || d != 4 {
		t.Fatal("torus should be 4-regular")
	}
	if !Connected(g) {
		t.Fatal("torus not connected")
	}
	// Vertex 0 = (0,0): up = (2,0) = 8, down = (1,0) = 4, left = (0,3) = 3,
	// right = (0,1) = 1.
	want := []int{8, 4, 3, 1}
	for i, w := range want {
		if g.Neighbor(0, i) != w {
			t.Fatalf("torus neighbor(0,%d) = %d, want %d", i, g.Neighbor(0, i), w)
		}
	}
	if _, err := NewTorus(1, 5); err == nil {
		t.Error("1-row torus accepted")
	}
}

func TestHypercube(t *testing.T) {
	g, err := NewHypercube(4)
	if err != nil {
		t.Fatal(err)
	}
	if g.N() != 16 {
		t.Fatal("hypercube size wrong")
	}
	if d, ok := IsRegular(g); !ok || d != 4 {
		t.Fatal("hypercube-4 should be 4-regular")
	}
	if !Connected(g) {
		t.Fatal("hypercube not connected")
	}
	if d := Diameter(g); d != 4 {
		t.Fatalf("hypercube-4 diameter = %d, want 4", d)
	}
	if g.Neighbor(5, 1) != 7 {
		t.Fatalf("flip bit 1 of 5 should be 7, got %d", g.Neighbor(5, 1))
	}
	if _, err := NewHypercube(0); err == nil {
		t.Error("d=0 accepted")
	}
	if _, err := NewHypercube(31); err == nil {
		t.Error("d=31 accepted")
	}
}

func TestAdjacencyValidation(t *testing.T) {
	if _, err := NewAdjacency(nil, "x"); err == nil {
		t.Error("empty adjacency accepted")
	}
	if _, err := NewAdjacency([][]int32{{5}}, "x"); err == nil {
		t.Error("out-of-range neighbor accepted")
	}
}

func TestRandomRegular(t *testing.T) {
	r := rng.New(7)
	g, err := NewRandomRegular(100, 4, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	if d, ok := IsRegular(g); !ok || d != 4 {
		t.Fatalf("not 4-regular")
	}
	if !Connected(g) {
		// A random 4-regular graph is connected w.h.p.; at n=100 failure
		// would indicate a generator bug.
		t.Fatal("random 4-regular on 100 vertices disconnected")
	}
	// Simplicity: no self-loops, no duplicate neighbors.
	for v := 0; v < g.N(); v++ {
		seen := map[int]bool{}
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if u == v {
				t.Fatalf("self-loop at %d", v)
			}
			if seen[u] {
				t.Fatalf("parallel edge %d-%d", v, u)
			}
			seen[u] = true
		}
	}
}

func TestRandomRegularSymmetric(t *testing.T) {
	r := rng.New(9)
	g, err := NewRandomRegular(60, 3, r, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Undirected: u in adj[v] iff v in adj[u].
	for v := 0; v < g.N(); v++ {
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			found := false
			for j := 0; j < g.Degree(u); j++ {
				if g.Neighbor(u, j) == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d-%d not symmetric", v, u)
			}
		}
	}
}

func TestRandomRegularValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := NewRandomRegular(5, 3, r, 10); err == nil {
		t.Error("odd n·d accepted")
	}
	if _, err := NewRandomRegular(4, 4, r, 10); err == nil {
		t.Error("d >= n accepted")
	}
	if _, err := NewRandomRegular(1, 1, r, 10); err == nil {
		t.Error("n < 2 accepted")
	}
}

func TestLazy(t *testing.T) {
	base, err := NewRing(10)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewLazy(base, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if g.Degree(0) != 3 {
		t.Fatal("lazy degree should include self")
	}
	if g.Neighbor(4, 0) != 4 {
		t.Fatal("lazy neighbor 0 should be self")
	}
	if g.Neighbor(4, 1) != base.Neighbor(4, 0) {
		t.Fatal("lazy neighbor shift wrong")
	}
	r := rng.New(3)
	stays := 0
	const draws = 50000
	for i := 0; i < draws; i++ {
		if g.Sample(4, r) == 4 {
			stays++
		}
	}
	if stays < 23500 || stays > 26500 {
		t.Fatalf("lazy stay rate %d/%d, want ~50%%", stays, draws)
	}
	if _, err := NewLazy(nil, 0.5); err == nil {
		t.Error("nil base accepted")
	}
	if _, err := NewLazy(base, 1.0); err == nil {
		t.Error("p=1 accepted")
	}
}

func TestDiameterDisconnected(t *testing.T) {
	adj := [][]int32{{1}, {0}, {3}, {2}} // two disjoint edges
	g, err := NewAdjacency(adj, "disc")
	if err != nil {
		t.Fatal(err)
	}
	if Connected(g) {
		t.Fatal("disconnected graph reported connected")
	}
	if Diameter(g) != -1 {
		t.Fatal("diameter of disconnected graph should be -1")
	}
}

func TestSampleStaysInNeighborhood(t *testing.T) {
	if err := quick.Check(func(seed uint32, vRaw uint8) bool {
		r := rng.New(uint64(seed))
		g, err := NewTorus(5, 5)
		if err != nil {
			return false
		}
		v := int(vRaw) % g.N()
		u := g.Sample(v, r)
		for i := 0; i < g.Degree(v); i++ {
			if g.Neighbor(v, i) == u {
				return true
			}
		}
		return false
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestNames(t *testing.T) {
	comp, _ := NewComplete(4)
	ring, _ := NewRing(4)
	torus, _ := NewTorus(2, 2)
	cube, _ := NewHypercube(2)
	lazy, _ := NewLazy(ring, 0.5)
	for _, g := range []Graph{comp, ring, torus, cube, lazy} {
		if g.Name() == "" {
			t.Errorf("%T has empty name", g)
		}
	}
}

func BenchmarkRandomRegularBuild(b *testing.B) {
	r := rng.New(1)
	for i := 0; i < b.N; i++ {
		if _, err := NewRandomRegular(256, 4, r, 500); err != nil {
			b.Fatal(err)
		}
	}
}
