// Package graph provides the network substrate for the multi-token
// traversal application (§4) and the general-graph open questions (§5):
// the complete graph with self-loops (on which parallel walks are exactly
// the repeated balls-into-bins process), rings, 2-D tori, hypercubes and
// random d-regular graphs, plus a lazy-walk wrapper and BFS utilities used
// by the tests.
package graph

import (
	"errors"
	"fmt"

	"repro/internal/rng"
)

// Graph is an undirected graph on vertices 0..N()−1 supporting the
// operations the walk engine needs. Implementations must be safe for
// concurrent reads (they are immutable after construction).
type Graph interface {
	// N returns the number of vertices.
	N() int
	// Degree returns the number of neighbors of v (counting a self-loop
	// once).
	Degree(v int) int
	// Neighbor returns the i-th neighbor of v, 0 ≤ i < Degree(v).
	Neighbor(v, i int) int
	// Sample returns a uniformly random neighbor of v.
	Sample(v int, r *rng.Source) int
	// Name returns a short human-readable description.
	Name() string
}

// Complete is the complete graph on n vertices including self-loops:
// Sample(v) is uniform over all n vertices, exactly the paper's
// re-assignment rule, so parallel walks on Complete are the repeated
// balls-into-bins process.
type Complete struct {
	n int
}

// NewComplete returns the complete graph (with self-loops) on n ≥ 1
// vertices.
func NewComplete(n int) (*Complete, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: NewComplete n = %d < 1", n)
	}
	return &Complete{n: n}, nil
}

// N returns the vertex count.
func (g *Complete) N() int { return g.n }

// Degree returns n (every vertex, self included).
func (g *Complete) Degree(int) int { return g.n }

// Neighbor returns vertex i.
func (g *Complete) Neighbor(_, i int) int { return i }

// Sample returns a uniform vertex.
func (g *Complete) Sample(_ int, r *rng.Source) int { return r.Intn(g.n) }

// Name returns "complete-n".
func (g *Complete) Name() string { return fmt.Sprintf("complete-%d", g.n) }

// Ring is the n-cycle (each vertex adjacent to its two cyclic neighbors;
// n = 2 degenerates to a single double edge treated as two neighbors, n = 1
// is a self-loop).
type Ring struct {
	n int
}

// NewRing returns the cycle on n ≥ 1 vertices.
func NewRing(n int) (*Ring, error) {
	if n < 1 {
		return nil, fmt.Errorf("graph: NewRing n = %d < 1", n)
	}
	return &Ring{n: n}, nil
}

// N returns the vertex count.
func (g *Ring) N() int { return g.n }

// Degree returns 2 (or 1 when n == 1).
func (g *Ring) Degree(int) int {
	if g.n == 1 {
		return 1
	}
	return 2
}

// Neighbor returns the left (i=0) or right (i=1) cyclic neighbor.
func (g *Ring) Neighbor(v, i int) int {
	if g.n == 1 {
		return 0
	}
	if i == 0 {
		return (v + g.n - 1) % g.n
	}
	return (v + 1) % g.n
}

// Sample returns one of the two cyclic neighbors uniformly.
func (g *Ring) Sample(v int, r *rng.Source) int {
	return g.Neighbor(v, r.Intn(g.Degree(v)))
}

// Name returns "ring-n".
func (g *Ring) Name() string { return fmt.Sprintf("ring-%d", g.n) }

// Torus is the rows×cols 2-D torus (4-regular grid with wraparound).
type Torus struct {
	rows, cols int
}

// NewTorus returns the rows×cols torus; both dimensions must be ≥ 2 so the
// graph is 4-regular without parallel self-edges collapsing.
func NewTorus(rows, cols int) (*Torus, error) {
	if rows < 2 || cols < 2 {
		return nil, fmt.Errorf("graph: NewTorus %dx%d needs both dims >= 2", rows, cols)
	}
	return &Torus{rows: rows, cols: cols}, nil
}

// N returns rows*cols.
func (g *Torus) N() int { return g.rows * g.cols }

// Degree returns 4.
func (g *Torus) Degree(int) int { return 4 }

// Neighbor returns the up/down/left/right neighbor for i = 0..3.
func (g *Torus) Neighbor(v, i int) int {
	row, col := v/g.cols, v%g.cols
	switch i {
	case 0:
		row = (row + g.rows - 1) % g.rows
	case 1:
		row = (row + 1) % g.rows
	case 2:
		col = (col + g.cols - 1) % g.cols
	default:
		col = (col + 1) % g.cols
	}
	return row*g.cols + col
}

// Sample returns a uniform grid neighbor.
func (g *Torus) Sample(v int, r *rng.Source) int {
	return g.Neighbor(v, r.Intn(4))
}

// Name returns "torus-RxC".
func (g *Torus) Name() string { return fmt.Sprintf("torus-%dx%d", g.rows, g.cols) }

// Hypercube is the d-dimensional boolean hypercube on 2^d vertices.
type Hypercube struct {
	dim int
	n   int
}

// NewHypercube returns the hypercube of dimension d, 1 ≤ d ≤ 30.
func NewHypercube(d int) (*Hypercube, error) {
	if d < 1 || d > 30 {
		return nil, fmt.Errorf("graph: NewHypercube d = %d outside [1, 30]", d)
	}
	return &Hypercube{dim: d, n: 1 << uint(d)}, nil
}

// N returns 2^d.
func (g *Hypercube) N() int { return g.n }

// Degree returns d.
func (g *Hypercube) Degree(int) int { return g.dim }

// Neighbor flips bit i of v.
func (g *Hypercube) Neighbor(v, i int) int { return v ^ (1 << uint(i)) }

// Sample flips a uniformly chosen bit.
func (g *Hypercube) Sample(v int, r *rng.Source) int {
	return v ^ (1 << uint(r.Intn(g.dim)))
}

// Name returns "hypercube-d".
func (g *Hypercube) Name() string { return fmt.Sprintf("hypercube-%d", g.dim) }

// Adjacency is an explicit adjacency-list graph; it backs the random
// regular generator and can represent any simple graph.
type Adjacency struct {
	adj  [][]int32
	name string
}

// NewAdjacency wraps adjacency lists. Lists are not copied; callers must
// not mutate them afterwards.
func NewAdjacency(adj [][]int32, name string) (*Adjacency, error) {
	if len(adj) == 0 {
		return nil, errors.New("graph: NewAdjacency with no vertices")
	}
	for v, ns := range adj {
		for _, u := range ns {
			if u < 0 || int(u) >= len(adj) {
				return nil, fmt.Errorf("graph: vertex %d has out-of-range neighbor %d", v, u)
			}
		}
	}
	return &Adjacency{adj: adj, name: name}, nil
}

// N returns the vertex count.
func (g *Adjacency) N() int { return len(g.adj) }

// Degree returns len(adj[v]).
func (g *Adjacency) Degree(v int) int { return len(g.adj[v]) }

// Neighbor returns adj[v][i].
func (g *Adjacency) Neighbor(v, i int) int { return int(g.adj[v][i]) }

// Sample returns a uniform entry of adj[v]; v must have degree ≥ 1.
func (g *Adjacency) Sample(v int, r *rng.Source) int {
	return int(g.adj[v][r.Intn(len(g.adj[v]))])
}

// Name returns the label given at construction.
func (g *Adjacency) Name() string { return g.name }

// NewRandomRegular generates a simple d-regular graph on n vertices by the
// configuration model (uniform stub matching) with whole-sample rejection
// of self-loops and parallel edges. n·d must be even and d < n. For d ≥ 3
// the acceptance probability is bounded away from 0 asymptotically
// (≈ e^{−(d²−1)/4}); maxAttempts bounds the retries.
func NewRandomRegular(n, d int, r *rng.Source, maxAttempts int) (*Adjacency, error) {
	if n < 2 || d < 1 || d >= n {
		return nil, fmt.Errorf("graph: NewRandomRegular(n=%d, d=%d) invalid", n, d)
	}
	if n*d%2 != 0 {
		return nil, fmt.Errorf("graph: NewRandomRegular n·d = %d odd", n*d)
	}
	if maxAttempts < 1 {
		maxAttempts = 1
	}
	stubs := make([]int32, n*d)
	for attempt := 0; attempt < maxAttempts; attempt++ {
		for i := range stubs {
			stubs[i] = int32(i / d)
		}
		r.Shuffle(len(stubs), func(i, j int) { stubs[i], stubs[j] = stubs[j], stubs[i] })
		adj := make([][]int32, n)
		ok := true
		seen := make(map[int64]bool, n*d/2)
		for i := 0; i < len(stubs); i += 2 {
			a, b := stubs[i], stubs[i+1]
			if a == b {
				ok = false
				break
			}
			lo, hi := a, b
			if lo > hi {
				lo, hi = hi, lo
			}
			key := int64(lo)<<32 | int64(hi)
			if seen[key] {
				ok = false
				break
			}
			seen[key] = true
			adj[a] = append(adj[a], b)
			adj[b] = append(adj[b], a)
		}
		if !ok {
			continue
		}
		return NewAdjacency(adj, fmt.Sprintf("random-%d-regular-%d", d, n))
	}
	return nil, fmt.Errorf("graph: NewRandomRegular(n=%d, d=%d) failed after %d attempts", n, d, maxAttempts)
}

// Lazy wraps a graph so that walks stay in place with probability p; it
// removes periodicity issues on bipartite graphs (rings with even n,
// hypercubes) without changing the stationary distribution on regular
// graphs.
type Lazy struct {
	G Graph
	P float64
}

// NewLazy wraps g with staying probability p in [0, 1).
func NewLazy(g Graph, p float64) (*Lazy, error) {
	if g == nil {
		return nil, errors.New("graph: NewLazy with nil graph")
	}
	if p < 0 || p >= 1 {
		return nil, fmt.Errorf("graph: NewLazy p = %v outside [0, 1)", p)
	}
	return &Lazy{G: g, P: p}, nil
}

// N returns the underlying vertex count.
func (g *Lazy) N() int { return g.G.N() }

// Degree returns the underlying degree plus the implicit self-loop.
func (g *Lazy) Degree(v int) int { return g.G.Degree(v) + 1 }

// Neighbor returns v itself for i = 0 and the underlying neighbors shifted
// by one.
func (g *Lazy) Neighbor(v, i int) int {
	if i == 0 {
		return v
	}
	return g.G.Neighbor(v, i-1)
}

// Sample stays with probability P, otherwise moves like the base graph.
func (g *Lazy) Sample(v int, r *rng.Source) int {
	if r.Bernoulli(g.P) {
		return v
	}
	return g.G.Sample(v, r)
}

// Name returns "lazy(base)".
func (g *Lazy) Name() string { return fmt.Sprintf("lazy(%s)", g.G.Name()) }

// Connected reports whether g is connected, by BFS from vertex 0.
func Connected(g Graph) bool {
	n := g.N()
	if n == 0 {
		return true
	}
	seen := make([]bool, n)
	queue := make([]int, 0, n)
	queue = append(queue, 0)
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for i := 0; i < g.Degree(v); i++ {
			u := g.Neighbor(v, i)
			if !seen[u] {
				seen[u] = true
				count++
				queue = append(queue, u)
			}
		}
	}
	return count == n
}

// IsRegular reports whether every vertex has the same degree, returning
// that degree.
func IsRegular(g Graph) (int, bool) {
	n := g.N()
	if n == 0 {
		return 0, true
	}
	d := g.Degree(0)
	for v := 1; v < n; v++ {
		if g.Degree(v) != d {
			return 0, false
		}
	}
	return d, true
}

// Diameter returns the exact diameter by BFS from every vertex — O(n·m),
// intended for tests on small graphs. It returns −1 for a disconnected
// graph.
func Diameter(g Graph) int {
	n := g.N()
	diam := 0
	dist := make([]int, n)
	queue := make([]int, 0, n)
	for s := 0; s < n; s++ {
		for i := range dist {
			dist[i] = -1
		}
		dist[s] = 0
		queue = queue[:0]
		queue = append(queue, s)
		for head := 0; head < len(queue); head++ {
			v := queue[head]
			for i := 0; i < g.Degree(v); i++ {
				u := g.Neighbor(v, i)
				if dist[u] < 0 {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
				}
			}
		}
		for _, d := range dist {
			if d < 0 {
				return -1
			}
			if d > diam {
				diam = d
			}
		}
	}
	return diam
}
