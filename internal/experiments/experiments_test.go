package experiments

import (
	"strings"
	"testing"
)

func smallCfg() Config {
	return Config{Scale: Small, Seed: 12345}
}

func TestParseScale(t *testing.T) {
	for _, s := range []string{"small", "medium", "large"} {
		if _, err := ParseScale(s); err != nil {
			t.Errorf("ParseScale(%q): %v", s, err)
		}
	}
	if _, err := ParseScale("huge"); err == nil {
		t.Error("bogus scale accepted")
	}
}

func TestRegistryComplete(t *testing.T) {
	reg := Registry()
	if len(reg) != 20 {
		t.Fatalf("registry has %d experiments, want 20", len(reg))
	}
	seen := map[string]bool{}
	for _, e := range reg {
		if !strings.HasPrefix(e.ID, "E") || len(e.ID) != 3 {
			t.Errorf("bad experiment id %q", e.ID)
		}
		if seen[e.ID] {
			t.Errorf("duplicate id %q", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("%s: incomplete entry", e.ID)
		}
	}
}

func TestByID(t *testing.T) {
	if _, ok := ByID("E04"); !ok {
		t.Error("E04 not found")
	}
	if _, ok := ByID("E99"); ok {
		t.Error("E99 found")
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Scale != Medium || c.Seed != 1 {
		t.Fatalf("defaults wrong: %+v", c)
	}
}

func TestRatioSpread(t *testing.T) {
	if got := ratioSpread([]float64{2, 4, 8}); got != 4 {
		t.Errorf("spread = %v", got)
	}
	if ratioSpread(nil) != 0 {
		t.Error("empty spread should be 0")
	}
	if ratioSpread([]float64{0, 1}) != 0 {
		t.Error("non-positive entries should yield 0")
	}
}

// runOne executes an experiment at small scale and applies shared sanity
// checks.
func runOne(t *testing.T, id string, wantPass bool) *Result {
	t.Helper()
	e, ok := ByID(id)
	if !ok {
		t.Fatalf("%s not registered", id)
	}
	res, err := e.Run(smallCfg())
	if err != nil {
		t.Fatalf("%s failed: %v", id, err)
	}
	if res.ID != id {
		t.Errorf("result id %q, want %q", res.ID, id)
	}
	if res.Table == nil || res.Table.NumRows() == 0 {
		t.Fatalf("%s produced no rows", id)
	}
	if res.Claim == "" || res.Title == "" {
		t.Errorf("%s missing metadata", id)
	}
	if wantPass && !res.Pass {
		var sb strings.Builder
		_ = res.Table.RenderText(&sb)
		t.Errorf("%s did not pass its shape check:\n%s", id, sb.String())
	}
	return res
}

func TestE01(t *testing.T) { runOne(t, "E01", true) }
func TestE02(t *testing.T) { runOne(t, "E02", true) }
func TestE03(t *testing.T) { runOne(t, "E03", true) }
func TestE04(t *testing.T) { runOne(t, "E04", true) }
func TestE05(t *testing.T) { runOne(t, "E05", true) }
func TestE06(t *testing.T) { runOne(t, "E06", true) }
func TestE07(t *testing.T) { runOne(t, "E07", true) }
func TestE08(t *testing.T) { runOne(t, "E08", true) }
func TestE09(t *testing.T) { runOne(t, "E09", true) }
func TestE10(t *testing.T) { runOne(t, "E10", true) }
func TestE11(t *testing.T) { runOne(t, "E11", true) }
func TestE12(t *testing.T) { runOne(t, "E12", true) }
func TestE13(t *testing.T) { runOne(t, "E13", true) }
func TestE14(t *testing.T) { runOne(t, "E14", true) }
func TestE15(t *testing.T) { runOne(t, "E15", true) }
func TestE16(t *testing.T) { runOne(t, "E16", true) }
func TestE17(t *testing.T) { runOne(t, "E17", true) }
func TestE18(t *testing.T) { runOne(t, "E18", true) }
func TestE19(t *testing.T) { runOne(t, "E19", true) }

func TestRunAllSmall(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite in -short mode")
	}
	results, err := RunAll(smallCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Registry()) {
		t.Fatalf("got %d results", len(results))
	}
	for _, r := range results {
		if !r.Pass {
			t.Errorf("%s failed its shape check", r.ID)
		}
	}
}

func TestDeterministicResults(t *testing.T) {
	// The same config must yield byte-identical tables.
	run := func() string {
		res, err := E05TetrisEmptying(smallCfg())
		if err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		if err := res.Table.RenderCSV(&sb); err != nil {
			t.Fatal(err)
		}
		return sb.String()
	}
	if run() != run() {
		t.Fatal("experiment not deterministic")
	}
}
