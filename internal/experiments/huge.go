package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/table"
)

// e20Shards is the fixed shard count for the huge-n sweep. It is pinned
// (not GOMAXPROCS) because the shard count selects the random law's
// decomposition: with a fixed value the table reproduces bit-for-bit on
// any machine, while the worker count — which does not affect the
// trajectory — still scales with the hardware.
const e20Shards = 64

// E20HugeN runs the sharded multi-core engine at n far beyond what the
// sequential layer can reach in one run — up to n = 2²⁷ ≈ 1.3·10⁸ bins at
// the large scale — and checks that the window max load from a balanced
// start stays on the Θ(log n) plateau (Theorem 1(a); the regime where the
// tight constants of Los & Sauerwald 2022 become visible). Statistics come
// from the streaming observer pipeline, so memory stays O(n) regardless of
// the window length.
func E20HugeN(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	type cell struct {
		n      int
		window int64
	}
	grid := pick(cfg.Scale,
		[]cell{{1 << 12, 512}, {1 << 13, 256}, {1 << 14, 128}, {1 << 15, 64}},
		[]cell{{1 << 16, 1024}, {1 << 18, 256}, {1 << 20, 128}},
		[]cell{
			{1 << 20, 1024}, {1 << 21, 512}, {1 << 22, 256}, {1 << 23, 128},
			{1 << 24, 64}, {1 << 25, 64}, {1 << 26, 64}, {1 << 27, 64},
		},
	)
	tbl := table.New("E20 sharded engine: max-load plateau at huge n",
		"n", "shards", "window T", "max load M", "M/ln n", "p90 round max", "mean empty frac")
	var ratios []float64
	emptyOK := true
	for i, c := range grid {
		// A private master seed per row so rows never share shard streams.
		seed := rng.NewStream(cfg.Seed, uint64(2000+i)).Uint64()
		p, err := shard.NewProcess(config.OnePerBin(c.n), seed,
			shard.Options{Shards: e20Shards, Workers: cfg.Parallelism})
		if err != nil {
			return nil, err
		}
		pipe, err := shard.NewPipeline([]float64{0.9})
		if err != nil {
			p.Close()
			return nil, err
		}
		engine.Run(p, c.window, pipe)
		shards := p.Engine().Shards()
		// Release the row's pool workers eagerly — the grid creates one
		// engine per row and the sweep can run for minutes.
		p.Close()
		m := float64(pipe.WindowMax())
		ratio := m / lnF(c.n)
		ratios = append(ratios, ratio)
		_, p90 := pipe.Quantiles()
		meanEmpty := pipe.EmptyMean()
		if meanEmpty < 0.30 || meanEmpty > 0.50 {
			emptyOK = false
		}
		tbl.AddRow(c.n, shards, c.window, pipe.WindowMax(),
			ratio, p90[0], meanEmpty)
	}
	spread := ratioSpread(ratios)
	ratioOK := true
	for _, r := range ratios {
		if r < 0.7 || r > 6 {
			ratioOK = false
		}
	}
	tbl.AddNote(fmt.Sprintf(
		"M/ln n spread across a %d× range of n: %.2f (flat ⇒ Θ(log n) plateau); "+
			"shards fixed at %d so the table is machine-independent",
		grid[len(grid)-1].n/grid[0].n, spread, e20Shards))
	return &Result{
		ID:    "E20",
		Title: "E20 sharded engine: single-run max load at n up to 1.3·10⁸",
		Claim: "Theorem 1(a) at production scale: one sharded run per n, window max load M = Θ(log n) with the plateau flat in M/ln n",
		Table: tbl,
		Pass:  ratioOK && emptyOK && spread <= 2.2 && !math.IsNaN(spread) && spread > 0,
	}, nil
}
