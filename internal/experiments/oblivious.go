package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/table"
)

// E12NegativeAssociation reproduces Appendix B: for n = 2 starting from
// (1, 1), the arrival counts X₁, X₂ into bin 0 satisfy
// P(X₁=0, X₂=0) = 1/8 > 3/32 = P(X₁=0)·P(X₂=0), so the arrivals are NOT
// negatively associated and standard concentration tools do not apply to
// the original process — the motivation for the Tetris detour. Both an
// exact enumeration and a Monte-Carlo estimate are reported.
func E12NegativeAssociation(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	trials := pick(cfg.Scale, 100000, 400000, 2000000)

	var exBoth, ex1, ex2 float64
	if err := core.EnumerateArrivals([]int32{1, 1}, 0, 2, 1000, func(arr []int, p float64) {
		if arr[0] == 0 {
			ex1 += p
		}
		if arr[1] == 0 {
			ex2 += p
		}
		if arr[0] == 0 && arr[1] == 0 {
			exBoth += p
		}
	}); err != nil {
		return nil, err
	}

	// Monte Carlo on the real engine.
	src := rng.NewStream(cfg.Seed, 12)
	var mcBoth, mc1, mc2 float64
	for i := 0; i < trials; i++ {
		p, err := core.NewProcess([]int32{1, 1}, src)
		if err != nil {
			return nil, err
		}
		before := p.Load(0)
		p.Step()
		x1 := p.Load(0) - max32(before-1, 0)
		before = p.Load(0)
		p.Step()
		x2 := p.Load(0) - max32(before-1, 0)
		if x1 == 0 {
			mc1++
		}
		if x2 == 0 {
			mc2++
		}
		if x1 == 0 && x2 == 0 {
			mcBoth++
		}
	}
	mc1 /= float64(trials)
	mc2 /= float64(trials)
	mcBoth /= float64(trials)

	t := table.New("E12 Appendix B: negative-association counterexample (n = 2, start (1,1))",
		"quantity", "paper", "exact", "monte carlo")
	t.AddRow("P(X1=0)", "1/4 = 0.25", ex1, mc1)
	t.AddRow("P(X2=0)", "3/8 = 0.375", ex2, mc2)
	t.AddRow("P(X1=0, X2=0)", "1/8 = 0.125", exBoth, mcBoth)
	t.AddRow("P(X1=0)·P(X2=0)", "3/32 = 0.09375", ex1*ex2, mc1*mc2)

	pass := math.Abs(ex1-0.25) < 1e-12 &&
		math.Abs(ex2-0.375) < 1e-12 &&
		math.Abs(exBoth-0.125) < 1e-12 &&
		exBoth > ex1*ex2 &&
		mcBoth > mc1*mc2 &&
		math.Abs(mcBoth-0.125) < 0.01
	t.AddNote("joint exceeds product ⇒ NOT negatively associated; empty rounds make future empty rounds MORE likely")
	return &Result{
		ID:    "E12",
		Title: "Arrivals are not negatively associated",
		Claim: "Appendix B: P(X1=0, X2=0) = 1/8 > 3/32 = P(X1=0)·P(X2=0) for n = 2",
		Table: t,
		Pass:  pass,
	}, nil
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// E16Oblivious verifies the paper's remark (§2 footnote 2) that the results
// are oblivious to the queueing strategy, at two levels:
//
//  1. Engine level (exact): driven by the same destination stream, FIFO,
//     LIFO, Random and the anonymous engine produce identical load
//     trajectories — ball identity cannot influence loads.
//  2. Law level (statistical): across independent runs, the window-max-load
//     distributions of the three strategies coincide within Monte-Carlo
//     error.
func E16Oblivious(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 128, 512, 2048)
	trials := pick(cfg.Scale, 8, 20, 50)
	windowMult := pick(cfg.Scale, 8, 16, 32)
	window := int64(windowMult * n)

	strategies := []core.Strategy{core.FIFO, core.LIFO, core.Random}

	// Level 1: exact trajectory equality on shared destination stream.
	identical := true
	{
		loads := config.OnePerBin(n)
		ref, err := core.NewProcess(loads, rng.NewStream(cfg.Seed, 160))
		if err != nil {
			return nil, err
		}
		toks := make([]*core.TokenProcess, len(strategies))
		for i, s := range strategies {
			tp, err := core.NewTokenProcess(loads, rng.NewStream(cfg.Seed, 160), core.TokenOptions{
				Strategy:   s,
				PickSource: rng.NewStream(cfg.Seed, 161+uint64(i)),
			})
			if err != nil {
				return nil, err
			}
			toks[i] = tp
		}
		check := int64(512)
		if check > window {
			check = window
		}
		for r := int64(0); r < check && identical; r++ {
			ref.Step()
			for _, tp := range toks {
				tp.Step()
			}
			for u := 0; u < n && identical; u++ {
				for _, tp := range toks {
					if tp.Load(u) != ref.Load(u) {
						identical = false
					}
				}
			}
		}
	}

	// Level 2: distribution comparison across independent streams.
	t := table.New(fmt.Sprintf("E16 strategy obliviousness (n = %d, window %d)", n, window),
		"strategy", "trials", "mean window max", "std", "95%% CI half-width")
	means := make([]float64, len(strategies))
	ses := make([]float64, len(strategies))
	for i, s := range strategies {
		s := s
		res, err := sim.WindowMax(trials, cfg.Seed+uint64(1600+i), window,
			func(_ int, src *rng.Source) (engine.Stepper, error) {
				tp, err := core.NewTokenProcess(config.OnePerBin(n), src, core.TokenOptions{Strategy: s})
				if err != nil {
					return nil, err
				}
				return tp, nil
			})
		if err != nil {
			return nil, err
		}
		means[i] = res.Summary.Mean
		ses[i] = res.Summary.SE
		t.AddRow(s.String(), trials, res.Summary.Mean, res.Summary.Std, 1.96*res.Summary.SE)
	}
	lawsAgree := true
	for i := 0; i < len(strategies); i++ {
		for j := i + 1; j < len(strategies); j++ {
			tol := 4*math.Sqrt(ses[i]*ses[i]+ses[j]*ses[j]) + 0.5
			if math.Abs(means[i]-means[j]) > tol {
				lawsAgree = false
			}
		}
	}
	t.AddRow("anonymous≡token", "-", map[bool]string{true: "identical trajectories", false: "MISMATCH"}[identical], "-", "-")
	t.AddNote("same destination stream ⇒ bit-identical load trajectories for every strategy (engine-level proof of obliviousness)")
	return &Result{
		ID:    "E16",
		Title: "Queueing-strategy obliviousness",
		Claim: "§2 fn.2: the process law (loads) is independent of the queueing strategy",
		Table: t,
		Pass:  identical && lawsAgree,
	}, nil
}
