package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/stats"
	"repro/internal/table"
	"repro/internal/timeseries"
)

// E01Stability reproduces Theorem 1(a): starting from a legitimate
// configuration (one ball per bin), the maximum load over a long window
// stays O(log n) — the normalized column max_t M(t) / ln n must be flat in
// n and bounded by a small constant.
func E01Stability(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256}, []int{256, 512, 1024, 2048, 4096}, []int{256, 512, 1024, 2048, 4096, 8192})
	trials := pick(cfg.Scale, 3, 5, 10)
	windowMult := pick(cfg.Scale, 8, 32, 64)

	t := table.New("E01 Theorem 1(a): window max load from a legitimate start",
		"n", "window T", "trials", "mean max M", "worst max M", "mean M/ln n", "6·ln n bound", "within bound")
	ratios := make([]float64, 0, len(ns))
	pass := true
	for _, n := range ns {
		window := int64(windowMult * n)
		res, err := sim.WindowMax(trials, cfg.Seed+uint64(n), window,
			func(_ int, src *rng.Source) (engine.Stepper, error) {
				p, err := core.NewProcess(config.OnePerBin(n), src)
				if err != nil {
					return nil, err
				}
				return p, nil
			})
		if err != nil {
			return nil, err
		}
		bound := 6 * lnF(n)
		ratio := res.Summary.Mean / lnF(n)
		within := res.Summary.Max <= bound
		if !within {
			pass = false
		}
		ratios = append(ratios, ratio)
		t.AddRow(n, window, trials, res.Summary.Mean, res.Summary.Max, ratio, bound, boolCell(within))
	}
	spread := ratioSpread(ratios)
	if spread > 1.8 {
		pass = false
	}
	t.AddNote(fmt.Sprintf("M/ln n spread across n: %.2f (flat ⇒ Θ(log n); paper predicts O(log n))", spread))
	return &Result{
		ID:    "E01",
		Title: "Stability: max load over polynomial windows",
		Claim: "Theorem 1(a): M(t) = O(log n) for all t = O(n^c) w.h.p. from a legitimate start",
		Table: t,
		Pass:  pass,
	}, nil
}

// E02Convergence reproduces Theorem 1(b): from the worst configuration
// (all n balls in one bin), the process reaches a legitimate configuration
// within O(n) rounds — convergence time must fit a line through the origin
// in n.
func E02Convergence(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256, 512}, []int{256, 512, 1024, 2048, 4096}, []int{512, 1024, 2048, 4096, 8192, 16384})
	trials := pick(cfg.Scale, 3, 8, 16)

	t := table.New("E02 Theorem 1(b): convergence time from all-in-one",
		"n", "trials", "mean T_conv", "p95 T_conv", "T_conv/n", "threshold β·ln n")
	xs := make([]float64, 0, len(ns))
	ys := make([]float64, 0, len(ns))
	for _, n := range ns {
		threshold := config.LegitimateThreshold(n, config.Beta)
		res, err := sim.RunScalar(trials, cfg.Seed+uint64(2*n), "tconv",
			func(_ int, src *rng.Source) (float64, error) {
				p, err := core.NewProcess(config.AllInOne(n, n), src)
				if err != nil {
					return 0, err
				}
				rounds, ok := p.ConvergenceTime(threshold, int64(50*n))
				if !ok {
					return 0, fmt.Errorf("no convergence within 50n for n=%d", n)
				}
				return float64(rounds), nil
			})
		if err != nil {
			return nil, err
		}
		xs = append(xs, float64(n))
		ys = append(ys, res.Summary.Mean)
		t.AddRow(n, trials, res.Summary.Mean, res.Summary.P95, res.Summary.Mean/float64(n), int(threshold))
	}
	fit, err := stats.FitThroughOrigin(xs, ys)
	if err != nil {
		return nil, err
	}
	pass := fit.R2 > 0.95 && fit.Slope > 0.2 && fit.Slope < 5
	t.AddNote(fmt.Sprintf("fit T_conv = %.3f·n, R² = %.4f (paper: O(n), i.e. linear with constant slope)", fit.Slope, fit.R2))
	return &Result{
		ID:    "E02",
		Title: "Self-stabilization: linear convergence",
		Claim: "Theorem 1(b): from any configuration a legitimate configuration is reached within O(n) rounds w.h.p.",
		Table: t,
		Pass:  pass,
	}, nil
}

// E03EmptyBins reproduces Lemmas 1–2: in every round after the first, at
// least n/4 bins are empty, from legitimate and worst-case starts alike.
func E03EmptyBins(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 512}, []int{256, 1024, 4096}, []int{1024, 4096, 16384})
	windowMult := pick(cfg.Scale, 8, 32, 64)

	t := table.New("E03 Lemmas 1–2: minimum empty-bin fraction over the window (rounds ≥ 2)",
		"n", "start", "window T", "min empty frac", "mean empty frac", "≥ 1/4")
	pass := true
	for _, n := range ns {
		for _, start := range []config.Generator{config.GenOnePerBin, config.GenAllInOne} {
			src := rng.NewStream(cfg.Seed, uint64(3*n))
			loads, err := config.Make(start, n, n, src)
			if err != nil {
				return nil, err
			}
			p, err := core.NewProcess(loads, src)
			if err != nil {
				return nil, err
			}
			window := int64(windowMult * n)
			p.Step() // Lemma 1 speaks about rounds after the first
			var ef engine.EmptyFraction
			engine.Run(p, window-1, &ef)
			ok := ef.Min() >= 0.25
			if !ok {
				pass = false
			}
			t.AddRow(n, string(start), window, ef.Min(), ef.Mean(), boolCell(ok))
		}
	}
	t.AddNote("paper: P(≥ n/4 empty) ≥ 1 − e^{−αn} per round; stationary fraction concentrates near 0.37–0.42")
	return &Result{
		ID:    "E03",
		Title: "Empty bins: the n/4 floor",
		Claim: "Lemma 1 + Lemma 2: #empty ≥ n/4 in all rounds 1..T w.h.p., from any start",
		Table: t,
		Pass:  pass,
	}, nil
}

// E11SqrtBaseline compares the paper's Θ(log n) stability bound against the
// prior O(√t) bound of [12] over a long window with geometric checkpoints:
// the observed M(t) stays flat near ln n while √t grows past it.
func E11SqrtBaseline(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 256, 1024, 4096)
	window := int64(n) * int64(n)
	if maxW := pick(cfg.Scale, int64(1<<16), int64(1<<20), int64(1<<24)); window > maxW {
		window = maxW
	}

	src := rng.NewStream(cfg.Seed, 11)
	p, err := core.NewProcess(config.OnePerBin(n), src)
	if err != nil {
		return nil, err
	}
	cps, err := timeseries.NewCheckpoints(int64(n)/4, 2)
	if err != nil {
		return nil, err
	}
	var wm engine.WindowMax
	engine.Run(p, window, &wm, engine.ObserverFunc(func(s engine.Stepper) {
		cps.Observe(s.Round(), float64(wm.Max()))
	}))

	t := table.New(fmt.Sprintf("E11 observed running-max load vs the prior O(√t) bound (n = %d)", n),
		"t", "running max M", "ln n", "√t ([12] shape)", "M ≤ √t")
	pass := true
	times := cps.Times()
	vals := cps.Values()
	for i, tm := range times {
		sq := math.Sqrt(float64(tm))
		ok := vals[i] <= sq || tm < int64(float64(n)) // √t only binds once t is large
		if tm >= int64(n) && vals[i] > sq {
			pass = false
			ok = false
		}
		t.AddRow(tm, vals[i], lnF(n), sq, boolCell(ok))
	}
	final := vals[len(vals)-1]
	if final > 8*lnF(n) {
		pass = false
	}
	t.AddNote(fmt.Sprintf("final running max %.0f vs 8·ln n = %.1f and √T = %.0f: the log-bound wins by %.0fx",
		final, 8*lnF(n), math.Sqrt(float64(window)), math.Sqrt(float64(window))/final))
	return &Result{
		ID:    "E11",
		Title: "Crossover against the prior √t analysis",
		Claim: "Theorem 1 strictly improves the O(√t) max-load bound of [12] (flat log vs growing √t)",
		Table: t,
		Pass:  pass,
	}, nil
}

// E13ManyBalls probes the §5 open question: what happens for m ≠ n balls.
// For m ≤ n Theorem 1's proof applies unchanged (the paper notes this); for
// m > n the question is open — the experiment records the observed window
// max to show the empirical shape (the max grows with m/n but stays flat
// over the window for moderate ratios).
func E13ManyBalls(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 256, 1024, 4096)
	windowMult := pick(cfg.Scale, 8, 32, 64)
	trials := pick(cfg.Scale, 2, 4, 8)
	ratios := []float64{0.5, 1, 2, 4}

	t := table.New(fmt.Sprintf("E13 window max load for m balls in n = %d bins", n),
		"m", "m/n", "window T", "mean max M", "M/ln n", "M at T/2 vs T (flatness)")
	window := int64(windowMult * n)
	pass := true
	var ratioAtOne float64
	for _, ratio := range ratios {
		m := int(ratio * float64(n))
		res, err := sim.Run(sim.Spec{
			Trials:      trials,
			Seed:        cfg.Seed + uint64(m),
			Metrics:     []string{"max", "maxHalf"},
			Parallelism: cfg.Parallelism,
		}, func(_ int, src *rng.Source) ([]float64, error) {
			p, err := core.NewProcess(config.UniformRandom(n, m, src), src)
			if err != nil {
				return nil, err
			}
			var wm engine.WindowMax
			var half float64
			i := int64(0)
			engine.Run(p, window, &wm, engine.ObserverFunc(func(engine.Stepper) {
				if i == window/2 {
					half = float64(wm.Max())
				}
				i++
			}))
			return []float64{float64(wm.Max()), half}, nil
		})
		if err != nil {
			return nil, err
		}
		mean := res[0].Summary.Mean
		half := res[1].Summary.Mean
		flat := fmt.Sprintf("%.1f / %.1f", half, mean)
		norm := mean / lnF(n)
		if ratio == 1 {
			ratioAtOne = norm
			if norm > 4 {
				pass = false
			}
		}
		t.AddRow(m, ratio, window, mean, norm, flat)
	}
	// m = n log n — the paper's explicit open question "any m = O(n log n)".
	mBig := int(float64(n) * lnF(n))
	res, err := sim.WindowMax(trials, cfg.Seed+uint64(mBig), window,
		func(_ int, src *rng.Source) (engine.Stepper, error) {
			p, err := core.NewProcess(config.UniformRandom(n, mBig, src), src)
			if err != nil {
				return nil, err
			}
			return p, nil
		})
	if err != nil {
		return nil, err
	}
	t.AddRow(mBig, "ln n", window, res.Summary.Mean, res.Summary.Mean/lnF(n), "-")
	t.AddNote(fmt.Sprintf("m = n: M/ln n = %.2f (Theorem 1 regime); m > n rows are the open-question record", ratioAtOne))
	return &Result{
		ID:    "E13",
		Title: "Open question: m ≠ n balls",
		Claim: "§5: Theorem 1 covers m ≤ n; whether it extends to m = O(n log n) is open — empirical record",
		Table: t,
		Pass:  pass,
	}, nil
}
