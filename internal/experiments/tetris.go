package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/tetris"
)

// E05TetrisEmptying reproduces Lemma 4: in the Tetris process, starting
// from any configuration (here the worst case, all balls in one bin), every
// bin is empty at least once within 5n rounds w.h.p.
func E05TetrisEmptying(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256, 512}, []int{256, 512, 1024, 2048, 4096}, []int{512, 1024, 4096, 16384})
	trials := pick(cfg.Scale, 4, 10, 20)

	t := table.New("E05 Lemma 4: first round by which every Tetris bin has emptied (start: all-in-one)",
		"n", "trials", "mean round", "worst round", "worst/n", "≤ 5n")
	pass := true
	for _, n := range ns {
		res, err := sim.RunScalar(trials, cfg.Seed+uint64(5*n), "allEmptied",
			func(_ int, src *rng.Source) (float64, error) {
				p, err := tetris.New(config.AllInOne(n, n), src, tetris.Options{})
				if err != nil {
					return 0, err
				}
				round, ok := p.RunUntilAllEmptied(int64(20 * n))
				if !ok {
					return 0, fmt.Errorf("bins not all emptied within 20n for n=%d", n)
				}
				return float64(round), nil
			})
		if err != nil {
			return nil, err
		}
		worstOverN := res.Summary.Max / float64(n)
		ok := res.Summary.Max <= float64(5*n)
		if !ok {
			pass = false
		}
		t.AddRow(n, trials, res.Summary.Mean, res.Summary.Max, worstOverN, boolCell(ok))
	}
	t.AddNote("paper bound: 5n rounds w.h.p.; the drain of the heavy bin dominates (rate ≈ 1 − 3/4 = 1/4 per round)")
	return &Result{
		ID:    "E05",
		Title: "Tetris emptying time",
		Claim: "Lemma 4: from any initial configuration, every Tetris bin empties within 5n rounds w.h.p.",
		Table: t,
		Pass:  pass,
	}, nil
}

// E07TetrisLoad reproduces Lemma 6: Tetris started from a legitimate
// configuration keeps its max load O(log n) over a long window.
func E07TetrisLoad(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256}, []int{256, 512, 1024, 2048, 4096}, []int{512, 1024, 4096, 8192})
	trials := pick(cfg.Scale, 3, 5, 10)
	windowMult := pick(cfg.Scale, 8, 32, 64)

	t := table.New("E07 Lemma 6: Tetris window max load from a legitimate start",
		"n", "window T", "trials", "mean max M̂", "worst max M̂", "mean M̂/ln n", "within 6·ln n")
	ratios := make([]float64, 0, len(ns))
	pass := true
	for _, n := range ns {
		window := int64(windowMult * n)
		res, err := sim.WindowMax(trials, cfg.Seed+uint64(7*n), window,
			func(_ int, src *rng.Source) (engine.Stepper, error) {
				p, err := tetris.New(config.OnePerBin(n), src, tetris.Options{})
				if err != nil {
					return nil, err
				}
				return p, nil
			})
		if err != nil {
			return nil, err
		}
		ratio := res.Summary.Mean / lnF(n)
		ok := res.Summary.Max <= 6*lnF(n)
		if !ok {
			pass = false
		}
		ratios = append(ratios, ratio)
		t.AddRow(n, window, trials, res.Summary.Mean, res.Summary.Max, ratio, boolCell(ok))
	}
	if ratioSpread(ratios) > 1.8 {
		pass = false
	}
	t.AddNote(fmt.Sprintf("M̂/ln n spread across n: %.2f (flat ⇒ Θ(log n)); Tetris's constant exceeds the original's — it is the dominating process", ratioSpread(ratios)))
	return &Result{
		ID:    "E07",
		Title: "Tetris stability",
		Claim: "Lemma 6: Tetris max load is O(log n) for all t = O(n^c) w.h.p. from a legitimate start",
		Table: t,
		Pass:  pass,
	}, nil
}

// E15LeakyBins runs the batched-arrival extension of [18]: per-round
// arrival totals Binomial(n, λ) or Poisson(λn). The stationary max load is
// finite for λ < 1 and grows as λ → 1.
func E15LeakyBins(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 256, 1024, 4096)
	windowMult := pick(cfg.Scale, 8, 32, 64)
	lambdas := []float64{0.5, 0.75, 0.9}

	t := table.New(fmt.Sprintf("E15 leaky bins ([18]): window max load, n = %d", n),
		"arrival law", "λ", "window T", "max M̂", "M̂/ln n", "mean balls in system")
	window := int64(windowMult * n)
	pass := true
	prevByLaw := map[string]float64{}
	for _, law := range []tetris.ArrivalLaw{tetris.BinomialArrivals, tetris.PoissonArrivals} {
		for _, lambda := range lambdas {
			src := rng.NewStream(cfg.Seed, uint64(15000)+uint64(lambda*100)+uint64(law))
			p, err := tetris.New(config.OnePerBin(n), src, tetris.Options{Law: law, Lambda: lambda})
			if err != nil {
				return nil, err
			}
			// Warm-up to reach stationarity before measuring.
			p.Run(int64(4 * n))
			var wm engine.WindowMax
			var ballsSum float64
			engine.Run(p, window, &wm, engine.ObserverFunc(func(engine.Stepper) {
				ballsSum += float64(p.Balls())
			}))
			maxLoad := float64(wm.Max())
			norm := maxLoad / lnF(n)
			// [18]'s bound is O(log n) for fixed λ < 1 with the constant
			// scaling like 1/(1−λ); band the check accordingly.
			if maxLoad > 3*lnF(n)/(1-lambda) {
				pass = false
			}
			if prev, okPrev := prevByLaw[law.String()]; okPrev && maxLoad < prev {
				// Max load must not decrease as λ increases (within a law).
				pass = false
			}
			prevByLaw[law.String()] = maxLoad
			t.AddRow(law.String(), lambda, window, maxLoad, norm, ballsSum/float64(window))
		}
	}
	t.AddNote("[18] proves O(log n) max load for λ < 1 (\"the power of leaky bins\"); load grows as λ → 1")
	return &Result{
		ID:    "E15",
		Title: "Leaky bins with batched arrivals",
		Claim: "[18] (follow-up the paper cites in §1.3): probabilistic Tetris keeps logarithmic loads for λ < 1",
		Table: t,
		Pass:  pass,
	}, nil
}
