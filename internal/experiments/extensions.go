package experiments

import (
	"fmt"
	"math"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/table"
)

// E17Tightness probes the paper's final open question (§5): is the
// O(log n) bound on the repeated process's max load tight, or can it be
// improved to the one-shot Θ(log n / log log n)? The paper conjectures the
// max load exceeds log n / log log n with non-negligible probability over
// polynomial windows. The experiment compares, per n: the one-shot max
// (fresh uniform throw, the classical Θ(ln n / ln ln n) baseline), the
// repeated process's stationary window max, and both normalizers.
func E17Tightness(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{256, 1024}, []int{256, 1024, 4096, 16384}, []int{1024, 4096, 16384, 65536})
	trials := pick(cfg.Scale, 3, 5, 10)
	windowMult := pick(cfg.Scale, 8, 32, 64)

	t := table.New("E17 §5 tightness: repeated window max vs the one-shot Θ(ln n/ln ln n) baseline",
		"n", "window T", "one-shot max", "repeated window max", "ln n/ln ln n", "ln n", "rep. max ÷ (ln n/ln ln n)", "exceeds one-shot")
	pass := true
	excessRatios := make([]float64, 0, len(ns))
	for _, n := range ns {
		window := int64(windowMult * n)
		res, err := sim.Run(sim.Spec{
			Trials:      trials,
			Seed:        cfg.Seed + uint64(17*n),
			Metrics:     []string{"oneshot", "repeated"},
			Parallelism: cfg.Parallelism,
		}, func(_ int, src *rng.Source) ([]float64, error) {
			loads := config.UniformRandom(n, n, src)
			oneShot := float64(config.MaxLoad(loads))
			p, err := core.NewProcess(loads, src)
			if err != nil {
				return nil, err
			}
			var wm engine.WindowMax
			engine.Run(p, window, &wm)
			return []float64{oneShot, float64(wm.Max())}, nil
		})
		if err != nil {
			return nil, err
		}
		oneShot := res[0].Summary.Mean
		repeated := res[1].Summary.Mean
		lnln := lnF(n) / math.Log(lnF(n))
		ratio := repeated / lnln
		excessRatios = append(excessRatios, ratio)
		exceeds := repeated > oneShot
		// The conjecture's direction: the repeated max should sit above the
		// one-shot level (the correlations hurt), and within O(log n).
		if !exceeds || repeated > 6*lnF(n) {
			pass = false
		}
		t.AddRow(n, window, oneShot, repeated, lnln, lnF(n), ratio, boolCell(exceeds))
	}
	growing := len(excessRatios) >= 2 && excessRatios[len(excessRatios)-1] > excessRatios[0]
	t.AddNote(fmt.Sprintf("rep. max ÷ (ln n/ln ln n) trend across n: %.2f → %.2f (growing ⇒ consistent with the paper's conjecture that Θ(log n/log log n) is NOT achievable; growing=%v)",
		excessRatios[0], excessRatios[len(excessRatios)-1], growing))
	t.AddNote("the window max sits between the two normalizers: strictly above the one-shot law, within O(log n)")
	return &Result{
		ID:    "E17",
		Title: "Tightness: log n vs log n/log log n",
		Claim: "§5: the paper conjectures max load exceeds log n/log log n with non-negligible probability over poly windows",
		Table: t,
		Pass:  pass,
	}, nil
}

// E18DChoices runs the d-choices generalization the paper cites ([36],
// also used for deletions [37]): every relaunched ball samples d bins and
// joins the least loaded. The one-shot "power of two choices" carries over
// to the repeated setting: window max collapses from Θ(log n) at d = 1 to
// a small constant at d ≥ 2.
func E18DChoices(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 512, 2048, 8192)
	windowMult := pick(cfg.Scale, 8, 32, 64)
	trials := pick(cfg.Scale, 3, 5, 10)
	ds := []int{1, 2, 3, 4}

	t := table.New(fmt.Sprintf("E18 power of d choices in the repeated setting (n = %d)", n),
		"d", "window T", "trials", "mean window max", "worst window max", "mean ÷ ln n", "mean ÷ (ln ln n/ln d + 1)")
	window := int64(windowMult * n)
	maxes := make([]float64, 0, len(ds))
	for _, d := range ds {
		d := d
		res, err := sim.WindowMax(trials, cfg.Seed+uint64(1800+d), window,
			func(_ int, src *rng.Source) (engine.Stepper, error) {
				p, err := core.NewChoicesProcess(config.OnePerBin(n), d, src)
				if err != nil {
					return nil, err
				}
				return p, nil
			})
		if err != nil {
			return nil, err
		}
		maxes = append(maxes, res.Summary.Mean)
		gapNorm := math.NaN()
		if d >= 2 {
			gapNorm = res.Summary.Mean / (math.Log(lnF(n))/math.Log(float64(d)) + 1)
		}
		gapCell := "-"
		if !math.IsNaN(gapNorm) {
			gapCell = table.FormatFloat(gapNorm)
		}
		t.AddRow(d, window, trials, res.Summary.Mean, res.Summary.Max, res.Summary.Mean/lnF(n), gapCell)
	}
	// Shape: d = 2 collapses the max well below d = 1; d ≥ 2 all small.
	pass := maxes[1] < 0.75*maxes[0]
	for _, m := range maxes[1:] {
		if m > maxes[0] {
			pass = false
		}
	}
	t.AddNote("one-shot theory ([19], [36]): max gap drops from Θ(log n/log log n) to log log n/log d + O(1); the repeated process shows the same collapse")
	return &Result{
		ID:    "E18",
		Title: "Power of d choices (extension)",
		Claim: "[36]-style d-choices generalization (paper §1.3): two choices collapse the max load",
		Table: t,
		Pass:  pass,
	}, nil
}
