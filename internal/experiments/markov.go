package experiments

import (
	"fmt"

	"repro/internal/markov"
	"repro/internal/rng"
	"repro/internal/table"
)

// E06DriftChain reproduces Lemma 5: for the drift chain Z_t with increments
// Binomial(3n/4, 1/n) − 1 and absorption at 0, the tail P_k(τ > t) is at
// most e^{−t/144} whenever t ≥ 8k. The experiment reports the exact tail
// (dynamic programming), a Monte-Carlo estimate, and the paper's bound.
func E06DriftChain(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 256, 1024, 4096)
	ks := pick(cfg.Scale, []int{1, 4, 8}, []int{1, 2, 4, 8, 16, 32}, []int{1, 2, 4, 8, 16, 32, 64})
	mcTrials := pick(cfg.Scale, 5000, 20000, 100000)

	chain, err := markov.NewChain(n)
	if err != nil {
		return nil, err
	}
	t := table.New(fmt.Sprintf("E06 Lemma 5: absorption tail of the drift chain (n = %d, drift %.4f)", n, chain.Drift()),
		"k", "t", "exact P_k(τ>t)", "MC estimate", "bound e^{−t/144}", "bound holds")
	src := rng.NewStream(cfg.Seed, 6)
	pass := true
	for _, k := range ks {
		base := 8 * k
		ts := []int64{int64(base), int64(base + 72), int64(base + 144), int64(base + 288)}
		tmax := int(ts[len(ts)-1])
		exact, err := chain.ExactTail(k, tmax, k+tmax+64)
		if err != nil {
			return nil, err
		}
		mc, err := chain.TailMC(k, ts, mcTrials, src)
		if err != nil {
			return nil, err
		}
		for i, tt := range ts {
			bound := markov.PaperBound(tt)
			holds := exact[tt] <= bound+1e-12
			if !holds {
				pass = false
			}
			t.AddRow(k, tt, exact[tt], mc[i], bound, boolCell(holds))
		}
	}
	meanAbs, _ := chain.HittingTimeMean(16, mcTrials/4, 1<<20, src)
	t.AddNote(fmt.Sprintf("mean absorption time from k=16: %.1f (Wald with drift −1/4 predicts ≈ 64)", meanAbs))
	t.AddNote("the exact tail decays ≈ e^{−t/22}, comfortably inside the paper's e^{−t/144}")
	return &Result{
		ID:    "E06",
		Title: "Drift chain absorption tail",
		Claim: "Lemma 5: P_k(τ > t) ≤ e^{−t/144} for every t ≥ 8k",
		Table: t,
		Pass:  pass,
	}, nil
}
