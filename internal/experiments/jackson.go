package experiments

import (
	"fmt"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/jackson"
	"repro/internal/rng"
	"repro/internal/table"
)

// E19Jackson compares the paper's synchronous process against the closed
// Jackson network (§1.3) — the sequential classical model with an exact
// product-form stationary law. The table puts side by side, per n: the
// exact stationary max-load quantiles of the sequential model (computable
// because of product form), its simulated window max, and the parallel
// process's window max. Both models sit at Θ(log n); the paper's
// contribution is proving this for the parallel process, where product-form
// machinery fails (its chain is non-reversible and arrivals are not
// negatively associated, cf. E12).
func E19Jackson(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256}, []int{256, 1024, 4096}, []int{1024, 4096})
	windowMult := pick(cfg.Scale, 8, 32, 64)

	t := table.New("E19 sequential baseline: closed Jackson network (§1.3) vs the parallel process",
		"n", "window T", "exact seq. p50 max", "exact seq. p99.9 max", "seq. window max (sim)", "parallel window max (sim)", "seq/par", "both Θ(log n)")
	pass := true
	for _, n := range ns {
		window := int64(windowMult * n)
		p50, err := jackson.StationaryMaxQuantile(n, n, 0.5)
		if err != nil {
			return nil, err
		}
		p999, err := jackson.StationaryMaxQuantile(n, n, 0.999)
		if err != nil {
			return nil, err
		}
		src := rng.NewStream(cfg.Seed, uint64(1900+n))
		net, err := jackson.New(config.OnePerBin(n), src)
		if err != nil {
			return nil, err
		}
		net.RunRounds(window)
		seqMax := float64(net.WindowMaxLoad())

		proc, err := core.NewProcess(config.OnePerBin(n), src)
		if err != nil {
			return nil, err
		}
		var wm engine.WindowMax
		engine.Run(proc, window, &wm)
		parMax := float64(wm.Max())

		ratio := seqMax / parMax
		bothLog := seqMax <= 6*lnF(n) && parMax <= 6*lnF(n) &&
			seqMax >= float64(p50) && float64(p50) >= 1
		if !bothLog || ratio < 0.3 || ratio > 3 {
			pass = false
		}
		t.AddRow(n, window, p50, p999, seqMax, parMax, ratio, boolCell(bothLog))
	}
	t.AddNote("the sequential model's quantiles are EXACT (product form / uniform compositions); the paper's process admits no such formula")
	t.AddNote(fmt.Sprintf("shape: both models' window maxima are Θ(log n) and within a small factor of each other (legitimacy threshold uses β = %.0f)", config.Beta))
	return &Result{
		ID:    "E19",
		Title: "Closed Jackson network baseline",
		Claim: "§1.3: the closest classical model (sequential, product-form) matches the parallel process's Θ(log n) congestion — the delta is the proof, not the shape",
		Table: t,
		Pass:  pass,
	}, nil
}
