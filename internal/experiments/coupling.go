package experiments

import (
	"repro/internal/config"
	"repro/internal/coupling"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/table"
)

// E04Coupling reproduces Lemma 3: on the joint probability space, Tetris
// dominates the original process per bin, every round, with zero case-(ii)
// fallbacks, provided the start has ≥ n/4 empty bins.
func E04Coupling(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256}, []int{256, 512, 1024, 2048}, []int{512, 1024, 4096, 8192})
	trials := pick(cfg.Scale, 3, 6, 12)
	windowMult := pick(cfg.Scale, 8, 32, 64)

	t := table.New("E04 Lemma 3: coupled run of the original and Tetris processes",
		"n", "window T", "trials", "case-(ii) rounds", "domination violations", "mean M_T", "mean M̂_T", "M̂_T ≥ M_T")
	pass := true
	for _, n := range ns {
		window := int64(windowMult * n)
		res, err := sim.Run(sim.Spec{
			Trials:      trials,
			Seed:        cfg.Seed + uint64(4*n),
			Metrics:     []string{"caseII", "violated", "mOrig", "mTet"},
			Parallelism: cfg.Parallelism,
		}, func(_ int, src *rng.Source) ([]float64, error) {
			// Uniform throw: ≈ n/e empty bins, satisfying the Lemma 3
			// hypothesis w.h.p.
			loads := config.UniformRandom(n, n, src)
			if !coupling.StartHadQuarterEmpty(loads) {
				// Astronomically unlikely; regenerate deterministically.
				loads = config.AllInOne(n, n)
			}
			c, err := coupling.New(loads, src)
			if err != nil {
				return nil, err
			}
			c.Run(window)
			violated := 0.0
			if !c.Dominated() {
				violated = 1
			}
			return []float64{
				float64(c.CaseIIRounds()),
				violated,
				float64(c.WindowMaxOriginal()),
				float64(c.WindowMaxTetris()),
			}, nil
		})
		if err != nil {
			return nil, err
		}
		caseII := res[0].Summary.Max
		violations := res[1].Summary.Max
		mOrig := res[2].Summary.Mean
		mTet := res[3].Summary.Mean
		ok := caseII == 0 && violations == 0 && mTet >= mOrig
		if !ok {
			pass = false
		}
		t.AddRow(n, window, trials, int(caseII), int(violations), mOrig, mTet, boolCell(mTet >= mOrig))
	}
	t.AddNote("paper: case (ii) requires |W(t)| > 3n/4, which has probability e^{−Ω(n)} per round (Lemma 2)")
	return &Result{
		ID:    "E04",
		Title: "Coupling and stochastic domination",
		Claim: "Lemma 3: P(M_T ≥ k) ≤ P(M̂_T ≥ k) + T·e^{−γn} via pathwise domination",
		Table: t,
		Pass:  pass,
	}, nil
}
