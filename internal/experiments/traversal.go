package experiments

import (
	"fmt"
	"math"

	"repro/internal/adversary"
	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/graph"
	"repro/internal/mixing"
	"repro/internal/rng"
	"repro/internal/sim"
	"repro/internal/table"
	"repro/internal/walks"
)

// E08CoverTime reproduces Corollary 1: the parallel cover time of n tokens
// on the clique is O(n log² n) — only a log n factor above the single-token
// cover time Θ(n log n).
func E08CoverTime(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{32, 64}, []int{64, 128, 256, 512}, []int{128, 256, 512, 1024, 2048})
	trials := pick(cfg.Scale, 3, 5, 10)

	t := table.New("E08 Corollary 1: parallel vs single-token cover time on the clique",
		"n", "trials", "parallel cover", "par/(n·ln²n)", "single cover", "single/(n·ln n)", "slowdown", "slowdown/ln n")
	parNorms := make([]float64, 0, len(ns))
	pass := true
	for _, n := range ns {
		res, err := sim.Run(sim.Spec{
			Trials:      trials,
			Seed:        cfg.Seed + uint64(8*n),
			Metrics:     []string{"parallel", "single"},
			Parallelism: cfg.Parallelism,
		}, func(_ int, src *rng.Source) ([]float64, error) {
			g, err := graph.NewComplete(n)
			if err != nil {
				return nil, err
			}
			tr, err := walks.NewOnePerNode(g, src, walks.Options{TrackCover: true})
			if err != nil {
				return nil, err
			}
			lim := int64(500 * float64(n) * math.Pow(lnF(n), 2))
			parallel, ok := tr.RunUntilCovered(lim)
			if !ok {
				return nil, fmt.Errorf("no parallel cover within %d rounds (n=%d)", lim, n)
			}
			single, ok := walks.SingleWalkCover(g, 0, src, lim)
			if !ok {
				return nil, fmt.Errorf("no single cover within %d rounds (n=%d)", lim, n)
			}
			return []float64{float64(parallel), float64(single)}, nil
		})
		if err != nil {
			return nil, err
		}
		par := res[0].Summary.Mean
		single := res[1].Summary.Mean
		parNorm := par / (float64(n) * lnF(n) * lnF(n))
		singleNorm := single / (float64(n) * lnF(n))
		slow := par / single
		parNorms = append(parNorms, parNorm)
		t.AddRow(n, trials, par, parNorm, single, singleNorm, slow, slow/lnF(n))
	}
	// Shape: parallel/(n ln² n) flat and O(1); slowdown grows ≈ log n.
	if ratioSpread(parNorms) > 3 {
		pass = false
	}
	for _, v := range parNorms {
		if v > 5 {
			pass = false
		}
	}
	t.AddNote(fmt.Sprintf("par/(n·ln²n) spread: %.2f (flat ⇒ Θ(n log² n); single-token baseline is Θ(n log n))", ratioSpread(parNorms)))
	return &Result{
		ID:    "E08",
		Title: "Parallel cover time on the clique",
		Claim: "Corollary 1: multi-token traversal covers in O(n log² n) w.h.p. — one log factor above a single walk",
		Table: t,
		Pass:  pass,
	}, nil
}

// E09Progress reproduces the §4 progress claims: under FIFO, over t rounds
// every ball performs Ω(t / log n) walk steps, and no ball waits more than
// O(log n) rounds at a bin (in the stable regime).
func E09Progress(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	ns := pick(cfg.Scale, []int{128, 256}, []int{256, 512, 1024, 2048}, []int{512, 1024, 4096})
	trials := pick(cfg.Scale, 3, 5, 10)
	windowMult := pick(cfg.Scale, 8, 16, 32)

	t := table.New("E09 §4: per-ball progress and per-visit delay under FIFO",
		"n", "rounds t", "trials", "min hops", "min hops·ln n / t", "max delay", "max delay / ln n")
	pass := true
	normProg := make([]float64, 0, len(ns))
	for _, n := range ns {
		rounds := int64(windowMult * n)
		res, err := sim.Run(sim.Spec{
			Trials:      trials,
			Seed:        cfg.Seed + uint64(9*n),
			Metrics:     []string{"minHops", "maxDelay"},
			Parallelism: cfg.Parallelism,
		}, func(_ int, src *rng.Source) ([]float64, error) {
			p, err := core.NewTokenProcess(config.OnePerBin(n), src, core.TokenOptions{
				Strategy:    core.FIFO,
				TrackDelays: true,
			})
			if err != nil {
				return nil, err
			}
			p.Run(rounds)
			return []float64{float64(p.MinHops()), float64(p.MaxDelay())}, nil
		})
		if err != nil {
			return nil, err
		}
		minHops := res[0].Summary.Min
		maxDelay := res[1].Summary.Max
		prog := minHops * lnF(n) / float64(rounds)
		delayNorm := maxDelay / lnF(n)
		normProg = append(normProg, prog)
		if prog < 0.05 || delayNorm > 8 {
			pass = false
		}
		t.AddRow(n, rounds, trials, minHops, prog, maxDelay, delayNorm)
	}
	t.AddNote("paper: progress Ω(t/log n) per ball over any poly window; FIFO delay per visit ≤ load at entry = O(log n)")
	t.AddNote(fmt.Sprintf("normalized progress across n: spread %.2f (flat constant ⇒ matching Ω(t/log n))", ratioSpread(normProg)))
	return &Result{
		ID:    "E09",
		Title: "FIFO progress and delays",
		Claim: "§4: every ball performs Ω(t/log n) walk steps; per-visit delay is O(log n) w.h.p.",
		Table: t,
		Pass:  pass,
	}, nil
}

// E10Adversary reproduces §4.1: with an adversary arbitrarily reassigning
// all tokens every γn rounds (γ ≥ 6), the cover time keeps its O(n log² n)
// shape — a constant-factor slowdown only.
func E10Adversary(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	n := pick(cfg.Scale, 64, 256, 1024)
	trials := pick(cfg.Scale, 3, 5, 10)
	gammas := []int64{6, 8, 12}

	runCover := func(sched adversary.Schedule, place adversary.Placement, seedOff uint64) (float64, error) {
		res, err := sim.RunScalar(trials, cfg.Seed+seedOff, "cover",
			func(_ int, src *rng.Source) (float64, error) {
				g, err := graph.NewComplete(n)
				if err != nil {
					return 0, err
				}
				tr, err := walks.NewOnePerNode(g, src, walks.Options{TrackCover: true})
				if err != nil {
					return 0, err
				}
				lim := int64(2000 * float64(n) * math.Pow(lnF(n), 2))
				cover, _, ok, err := adversary.RunTraversalUntilCovered(tr, sched, place, lim, src)
				if err != nil {
					return 0, err
				}
				if !ok {
					return 0, fmt.Errorf("no cover under faults within %d rounds", lim)
				}
				return float64(cover), nil
			})
		if err != nil {
			return 0, err
		}
		return res.Summary.Mean, nil
	}

	baseline, err := runCover(adversary.Never{}, adversary.AllToOne{}, 100)
	if err != nil {
		return nil, err
	}
	t := table.New(fmt.Sprintf("E10 §4.1: cover time under periodic adversarial reassignment (n = %d)", n),
		"schedule", "placement", "mean cover", "vs fault-free", "constant factor")
	t.AddRow("never", "-", baseline, 1.0, boolCell(true))
	pass := true
	for _, gamma := range gammas {
		sched, err := adversary.NewPeriodic(gamma * int64(n))
		if err != nil {
			return nil, err
		}
		for _, place := range []adversary.Placement{adversary.AllToOne{}, adversary.HalfAndHalf{A: 0, B: n - 1}} {
			cover, err := runCover(sched, place, 101+uint64(gamma)+uint64(len(place.Name())))
			if err != nil {
				return nil, err
			}
			ratio := cover / baseline
			ok := ratio < 6
			if !ok {
				pass = false
			}
			t.AddRow(sched.Name(), place.Name(), cover, ratio, boolCell(ok))
		}
	}
	t.AddNote("paper: faults at frequency ≤ 1/(γn), γ ≥ 6, slow the O(n log² n) cover time by at most a constant factor")
	return &Result{
		ID:    "E10",
		Title: "Adversarial fault tolerance",
		Claim: "§4.1: the cover-time bound survives adversarial reassignment once every γn rounds",
		Table: t,
		Pass:  pass,
	}, nil
}

// E14RegularGraphs probes the §5 conjecture: on regular graphs the max
// load should stay far below the O(√t) bound of [12] (conjectured
// logarithmic). It runs the one-token-per-node walk process on rings, tori,
// hypercubes and random 4-regular graphs, recording the running max at
// geometric checkpoints.
func E14RegularGraphs(cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	target := pick(cfg.Scale, 256, 1024, 4096)
	windowMult := pick(cfg.Scale, 16, 64, 256)

	// Per family: the graph plus the spectral gap of its simple random
	// walk — closed-form where known, power iteration for the expander
	// (see internal/mixing). The conjecture is interesting precisely
	// because it spans gaps from Θ(1/n²) (ring) to Θ(1) (clique).
	builders := []struct {
		name string
		make func(src *rng.Source) (graph.Graph, error)
		gap  func(g graph.Graph, src *rng.Source) (float64, error)
	}{
		{"clique", func(*rng.Source) (graph.Graph, error) { return graph.NewComplete(target) },
			func(graph.Graph, *rng.Source) (float64, error) { return 1, nil }},
		{"ring", func(*rng.Source) (graph.Graph, error) { return graph.NewRing(target) },
			func(g graph.Graph, _ *rng.Source) (float64, error) {
				return 1 - math.Cos(2*math.Pi/float64(g.N())), nil
			}},
		{"torus", func(*rng.Source) (graph.Graph, error) {
			side := int(math.Round(math.Sqrt(float64(target))))
			return graph.NewTorus(side, side)
		}, func(g graph.Graph, _ *rng.Source) (float64, error) {
			side := math.Sqrt(float64(g.N()))
			return 1 - (1+math.Cos(2*math.Pi/side))/2, nil
		}},
		{"hypercube", func(*rng.Source) (graph.Graph, error) {
			d := int(math.Round(math.Log2(float64(target))))
			return graph.NewHypercube(d)
		}, func(g graph.Graph, _ *rng.Source) (float64, error) {
			return 2 / math.Round(math.Log2(float64(g.N()))), nil
		}},
		{"random-4-regular", func(src *rng.Source) (graph.Graph, error) {
			return graph.NewRandomRegular(target, 4, src, 2000)
		}, func(g graph.Graph, src *rng.Source) (float64, error) {
			gap, _, err := mixing.SpectralGap(g, 2000, src)
			return gap, err
		}},
	}

	t := table.New(fmt.Sprintf("E14 §5 conjecture: running max load on regular graphs (~%d nodes)", target),
		"graph", "n", "walk gap 1−λ₂", "window T", "final running max", "ln n", "√T", "max ≪ √T")
	pass := true
	for i, b := range builders {
		src := rng.NewStream(cfg.Seed, uint64(1400+i))
		g, err := b.make(src)
		if err != nil {
			return nil, err
		}
		gap, err := b.gap(g, src)
		if err != nil {
			return nil, err
		}
		n := g.N()
		window := int64(windowMult * n)
		tr, err := walks.NewOnePerNode(g, src, walks.Options{})
		if err != nil {
			return nil, err
		}
		tr.Run(window)
		final := float64(tr.WindowMaxLoad())
		sqrtT := math.Sqrt(float64(window))
		ok := final <= sqrtT/2
		if !ok {
			pass = false
		}
		t.AddRow(b.name, n, gap, window, final, lnF(n), sqrtT, boolCell(ok))
	}
	t.AddNote("conjecture (§5): max load stays logarithmic on any regular graph; [12] only proves O(√t)")
	t.AddNote("the flat max load persists across 4 orders of magnitude in spectral gap — congestion does not track mixing speed")
	return &Result{
		ID:    "E14",
		Title: "Regular graphs beyond the clique",
		Claim: "§5: conjectured O(log n) max load on regular graphs — empirical support (all far below √t)",
		Table: t,
		Pass:  pass,
	}, nil
}
