// Package experiments defines the reproduction suite E01–E20: one experiment
// per quantitative claim of the paper (the paper itself has no empirical
// tables or figures, so the theorems, lemmas, corollary, the Appendix B
// counterexample and the §5 conjectures are the evaluation artifacts — see
// DESIGN.md §3 for the full index), plus the E20 production-scale sweep on
// the sharded multi-core engine.
//
// Every experiment is deterministic given (Scale, Seed), produces a Table
// that cmd/rbb-experiments renders (and EXPERIMENTS.md records), and carries
// a Pass flag computed from the paper's predicted shape. Pass criteria are
// deliberately generous bands: the reproduction checks shapes (who wins, by
// what order, where crossovers fall), not absolute constants.
package experiments

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/table"
)

// Scale selects the parameter grid. Small is sized for unit tests (< ~2 s
// per experiment), Medium for interactive runs, Large for the recorded
// tables in EXPERIMENTS.md.
type Scale string

// Supported scales.
const (
	Small  Scale = "small"
	Medium Scale = "medium"
	Large  Scale = "large"
)

// ParseScale validates a scale name.
func ParseScale(s string) (Scale, error) {
	switch Scale(s) {
	case Small, Medium, Large:
		return Scale(s), nil
	default:
		return "", fmt.Errorf("experiments: unknown scale %q (want small|medium|large)", s)
	}
}

// Config parameterizes a run.
type Config struct {
	// Scale selects the parameter grid (default Medium).
	Scale Scale
	// Seed is the master seed (default 1).
	Seed uint64
	// Parallelism caps worker count for multi-trial experiments
	// (0 = GOMAXPROCS).
	Parallelism int
}

func (c Config) withDefaults() Config {
	if c.Scale == "" {
		c.Scale = Medium
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Result is one experiment's outcome.
type Result struct {
	// ID is the experiment identifier ("E01".."E20").
	ID string
	// Title is a one-line description.
	Title string
	// Claim cites the paper statement being reproduced.
	Claim string
	// Table holds the measured rows.
	Table *table.Table
	// Pass reports whether the paper's predicted shape held.
	Pass bool
	// Notes carries qualitative observations (also rendered).
	Notes []string
}

// Runner executes one experiment.
type Runner func(Config) (*Result, error)

// Entry pairs an experiment with its metadata for the registry.
type Entry struct {
	ID    string
	Title string
	Run   Runner
}

// Registry lists all experiments in order.
func Registry() []Entry {
	return []Entry{
		{"E01", "Theorem 1(a): stability — max load stays O(log n) over long windows", E01Stability},
		{"E02", "Theorem 1(b): convergence from any configuration in O(n) rounds", E02Convergence},
		{"E03", "Lemmas 1–2: at least n/4 empty bins in every round after the first", E03EmptyBins},
		{"E04", "Lemma 3: Tetris pathwise dominates the original process", E04Coupling},
		{"E05", "Lemma 4: every Tetris bin empties within 5n rounds", E05TetrisEmptying},
		{"E06", "Lemma 5: drift-chain absorption tail P_k(τ>t) ≤ e^{−t/144}", E06DriftChain},
		{"E07", "Lemma 6: Tetris max load stays O(log n) from a legitimate start", E07TetrisLoad},
		{"E08", "Corollary 1: parallel cover time O(n log² n) on the clique", E08CoverTime},
		{"E09", "§4: FIFO progress Ω(t/log n) and O(log n) per-visit delay", E09Progress},
		{"E10", "§4.1: adversarial faults every γn rounds cost only a constant factor", E10Adversary},
		{"E11", "vs [12]: observed max load ≈ log n beats the prior O(√t) bound", E11SqrtBaseline},
		{"E12", "Appendix B: arrivals are not negatively associated (n = 2)", E12NegativeAssociation},
		{"E13", "§5 open question: behaviour for m ≠ n balls", E13ManyBalls},
		{"E14", "§5 conjecture: max load on regular graphs stays far below √t", E14RegularGraphs},
		{"E15", "[18] extension: leaky bins with Binomial/Poisson batched arrivals", E15LeakyBins},
		{"E16", "§2 fn.2: max-load law is oblivious to the queueing strategy", E16Oblivious},
		{"E17", "§5 tightness: repeated max vs the one-shot log n/log log n law", E17Tightness},
		{"E18", "extension [36]: power of d choices in the repeated setting", E18DChoices},
		{"E19", "baseline (§1.3): closed Jackson network, exact product form vs simulation", E19Jackson},
		{"E20", "scale: sharded multi-core engine, one run at n up to 1.3·10⁸ bins", E20HugeN},
	}
}

// ByID returns the registry entry for an id like "E04" (case-sensitive).
func ByID(id string) (Entry, bool) {
	for _, e := range Registry() {
		if e.ID == id {
			return e, true
		}
	}
	return Entry{}, false
}

// RunAll executes every experiment and returns results in registry order.
// It stops at the first hard error; Pass=false results are not errors.
func RunAll(cfg Config) ([]*Result, error) {
	var out []*Result
	for _, e := range Registry() {
		r, err := e.Run(cfg)
		if err != nil {
			return out, fmt.Errorf("%s: %w", e.ID, err)
		}
		out = append(out, r)
	}
	return out, nil
}

// --- shared helpers -------------------------------------------------------

// pick returns the grid for the config's scale.
func pick[T any](s Scale, small, medium, large T) T {
	switch s {
	case Small:
		return small
	case Large:
		return large
	default:
		return medium
	}
}

// lnF is a shorthand for the natural log of an int.
func lnF(n int) float64 { return math.Log(float64(n)) }

// ratioSpread returns max/min of a positive slice (0 if empty or any
// non-positive entry).
func ratioSpread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if sorted[0] <= 0 {
		return 0
	}
	return sorted[len(sorted)-1] / sorted[0]
}

// boolCell renders pass/fail cells consistently.
func boolCell(b bool) string {
	if b {
		return "yes"
	}
	return "NO"
}
