package markov

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestNewChainValidation(t *testing.T) {
	if _, err := NewChain(1); err == nil {
		t.Error("n=1 accepted")
	}
	if _, err := NewChain(0); err == nil {
		t.Error("n=0 accepted")
	}
}

func TestDriftIsMinusQuarter(t *testing.T) {
	c, err := NewChain(1024)
	if err != nil {
		t.Fatal(err)
	}
	if d := c.Drift(); math.Abs(d-(-0.25)) > 0.001 {
		t.Fatalf("drift = %v, want ≈ -1/4", d)
	}
	if c.N() != 1024 {
		t.Fatal("N accessor wrong")
	}
}

func TestAbsorptionFromZero(t *testing.T) {
	c, err := NewChain(64)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	tau, ok := c.AbsorptionTime(0, 100, r)
	if !ok || tau != 0 {
		t.Fatalf("absorption from 0 = (%d, %v), want (0, true)", tau, ok)
	}
}

func TestAbsorptionMeanApprox4k(t *testing.T) {
	// With drift −1/4, E_k[τ] ≈ 4k by Wald.
	c, err := NewChain(256)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	for _, k := range []int{4, 16} {
		mean, done := c.HittingTimeMean(k, 4000, 100000, r)
		if done != 4000 {
			t.Fatalf("k=%d: %d walks did not absorb", k, 4000-done)
		}
		want := 4 * float64(k)
		if math.Abs(mean-want) > 0.25*want+2 {
			t.Errorf("k=%d: mean absorption %v, want ≈ %v", k, mean, want)
		}
	}
}

func TestExactTailValidation(t *testing.T) {
	c, err := NewChain(64)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ExactTail(-1, 10, 50); err == nil {
		t.Error("negative k accepted")
	}
	if _, err := c.ExactTail(5, 10, 4); err == nil {
		t.Error("cap < k accepted")
	}
	if _, err := c.ExactTail(5, -1, 50); err == nil {
		t.Error("negative tmax accepted")
	}
}

func TestExactTailFromZero(t *testing.T) {
	c, err := NewChain(64)
	if err != nil {
		t.Fatal(err)
	}
	tails, err := c.ExactTail(0, 5, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range tails {
		if v != 0 {
			t.Fatalf("tail[%d] = %v from k=0, want 0", i, v)
		}
	}
}

func TestExactTailMonotone(t *testing.T) {
	c, err := NewChain(128)
	if err != nil {
		t.Fatal(err)
	}
	tails, err := c.ExactTail(8, 200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if tails[0] != 1 {
		t.Fatalf("tail[0] = %v, want 1", tails[0])
	}
	for i := 1; i < len(tails); i++ {
		if tails[i] > tails[i-1]+1e-12 {
			t.Fatalf("tail not monotone at t=%d", i)
		}
	}
	// Minimum absorption time from k=8 is 8 steps (one down-step per round).
	for i := 1; i < 8; i++ {
		if tails[i] != 1 {
			t.Fatalf("tail[%d] = %v, but absorption before t=8 is impossible from k=8", i, tails[i])
		}
	}
	// Empirical decay is ≈ e^{−t/22}, far below the paper's e^{−t/144}.
	if tails[200] > 1e-3 {
		t.Fatalf("tail[200] = %v, chain should be (nearly) absorbed", tails[200])
	}
}

func TestLemma5BoundHolds(t *testing.T) {
	// The paper's bound P_k(τ > t) ≤ e^{−t/144} for t ≥ 8k, checked against
	// the exact tail for several k.
	c, err := NewChain(256)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 4, 8, 16} {
		tmax := 8*k + 400
		tails, err := c.ExactTail(k, tmax, k+600)
		if err != nil {
			t.Fatal(err)
		}
		for tt := 8 * k; tt <= tmax; tt++ {
			if !BoundApplies(k, int64(tt)) {
				t.Fatalf("BoundApplies(%d, %d) false", k, tt)
			}
			if tails[tt] > PaperBound(int64(tt))+1e-12 {
				t.Fatalf("k=%d t=%d: exact tail %v exceeds bound %v",
					k, tt, tails[tt], PaperBound(int64(tt)))
			}
		}
	}
}

func TestBoundApplies(t *testing.T) {
	if BoundApplies(10, 79) {
		t.Error("t=79 < 8k=80 should not apply")
	}
	if !BoundApplies(10, 80) {
		t.Error("t=80 = 8k should apply")
	}
}

func TestTailMCMatchesExact(t *testing.T) {
	c, err := NewChain(128)
	if err != nil {
		t.Fatal(err)
	}
	k := 6
	ts := []int64{10, 24, 48, 96}
	r := rng.New(7)
	mc, err := c.TailMC(k, ts, 40000, r)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := c.ExactTail(k, int(ts[len(ts)-1]), k+400)
	if err != nil {
		t.Fatal(err)
	}
	for i, tt := range ts {
		want := exact[tt]
		if math.Abs(mc[i]-want) > 0.01 {
			t.Errorf("t=%d: MC %v vs exact %v", tt, mc[i], want)
		}
	}
}

func TestTailMCValidation(t *testing.T) {
	c, err := NewChain(64)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	if _, err := c.TailMC(3, []int64{5, 2}, 10, r); err == nil {
		t.Error("descending times accepted")
	}
	if _, err := c.TailMC(3, []int64{5}, 0, r); err == nil {
		t.Error("zero trials accepted")
	}
	out, err := c.TailMC(3, nil, 10, r)
	if err != nil || out != nil {
		t.Error("empty times should return nil, nil")
	}
}

func TestPaperBound(t *testing.T) {
	if PaperBound(0) != 1 {
		t.Error("bound at 0 should be 1")
	}
	if math.Abs(PaperBound(144)-math.Exp(-1)) > 1e-12 {
		t.Error("bound at 144 should be 1/e")
	}
}

func BenchmarkAbsorptionTime(b *testing.B) {
	c, err := NewChain(1024)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.AbsorptionTime(16, 100000, r)
	}
}

func BenchmarkExactTail(b *testing.B) {
	c, err := NewChain(256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.ExactTail(8, 200, 300); err != nil {
			b.Fatal(err)
		}
	}
}
