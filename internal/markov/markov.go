// Package markov implements the one-dimensional drift chain of Lemma 5:
//
//	Z_t = 0                    if Z_{t−1} = 0   (absorbing)
//	Z_t = Z_{t−1} − 1 + X_t    if Z_{t−1} ≥ 1
//
// with X_t i.i.d. Binomial(⌈3n/4⌉, 1/n). This is exactly the law of a
// single bin's load in the Tetris process until it first empties. The paper
// proves P_k(τ > t) ≤ e^{−t/144} for all t ≥ 8k, where τ is the absorption
// time from Z_0 = k.
//
// The package offers both Monte-Carlo absorption-time sampling and an exact
// tail computation by dynamic programming over the (truncated) state
// distribution, so the experiment harness can put the simulated, exact and
// bound curves side by side (experiment E6).
package markov

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
)

// Chain is the Lemma 5 chain for a given n. Create with NewChain.
type Chain struct {
	n      int
	trials int
	p      float64
	binom  *dist.Binomial
}

// NewChain builds the chain whose increment is X − 1 with
// X ~ Binomial(⌈3n/4⌉, 1/n).
func NewChain(n int) (*Chain, error) {
	if n < 2 {
		return nil, fmt.Errorf("markov: NewChain n = %d < 2", n)
	}
	trials := (3*n + 3) / 4
	p := 1.0 / float64(n)
	b, err := dist.NewBinomial(trials, p)
	if err != nil {
		return nil, err
	}
	return &Chain{n: n, trials: trials, p: p, binom: b}, nil
}

// N returns the bin-count parameter n.
func (c *Chain) N() int { return c.n }

// Drift returns E[X] − 1 = 3/4 − 1 + O(1/n), the per-step expected change
// while above zero (≈ −1/4, the negative balance of §3.1 step (i)).
func (c *Chain) Drift() float64 { return c.binom.Mean() - 1 }

// AbsorptionTime simulates the chain from state k and returns the first
// time it hits 0, capped at maxT (in which case ok is false).
func (c *Chain) AbsorptionTime(k int, maxT int64, r *rng.Source) (t int64, ok bool) {
	if k <= 0 {
		return 0, true
	}
	z := int64(k)
	for t = 1; t <= maxT; t++ {
		z += int64(c.binom.Sample(r)) - 1
		if z == 0 {
			return t, true
		}
	}
	return maxT, false
}

// TailMC estimates P_k(τ > t) for each t in ts by Monte Carlo with the
// given number of trials. ts must be sorted ascending.
func (c *Chain) TailMC(k int, ts []int64, trials int, r *rng.Source) ([]float64, error) {
	if trials < 1 {
		return nil, errors.New("markov: TailMC needs at least one trial")
	}
	for i := 1; i < len(ts); i++ {
		if ts[i] < ts[i-1] {
			return nil, errors.New("markov: TailMC times must be ascending")
		}
	}
	if len(ts) == 0 {
		return nil, nil
	}
	maxT := ts[len(ts)-1]
	surviving := make([]int64, len(ts))
	for i := 0; i < trials; i++ {
		tau, ok := c.AbsorptionTime(k, maxT, r)
		if !ok {
			tau = maxT + 1
		}
		for j, t := range ts {
			if tau > t {
				surviving[j]++
			}
		}
	}
	out := make([]float64, len(ts))
	for j, s := range surviving {
		out[j] = float64(s) / float64(trials)
	}
	return out, nil
}

// ExactTail computes P_k(τ > t) for t = 0..tmax by evolving the exact state
// distribution, truncated at state cap (mass escaping past cap is counted
// as surviving, so the result is an upper bound on the true tail and exact
// whenever escape mass is negligible). Choose cap ≳ k + 10·√tmax for
// 1e-12-level accuracy.
func (c *Chain) ExactTail(k, tmax, cap int) ([]float64, error) {
	if k < 0 {
		return nil, fmt.Errorf("markov: ExactTail k = %d < 0", k)
	}
	if cap < k+1 {
		return nil, fmt.Errorf("markov: ExactTail cap %d too small for k = %d", cap, k)
	}
	if tmax < 0 {
		return nil, fmt.Errorf("markov: ExactTail tmax = %d < 0", tmax)
	}
	// Increment PMF: P(X = j) for j = 0..support. The binomial has mean
	// ≈ 3/4, so all but ~1e-18 of its mass sits below j ≈ 30; trim the
	// support there (the discarded mass is re-normalized onto the retained
	// entries, keeping each step stochastic and the DP exact to float
	// precision).
	support := c.trials
	for support > 1 && c.binom.PMF(support) < 1e-18 {
		support--
	}
	inc := make([]float64, support+1)
	var incSum float64
	for j := 0; j <= support; j++ {
		inc[j] = c.binom.PMF(j)
		incSum += inc[j]
	}
	for j := range inc {
		inc[j] /= incSum
	}
	// p[s] = P(Z_t = s, not yet absorbed), states 1..cap; absorbed mass
	// accumulates separately.
	p := make([]float64, cap+1)
	q := make([]float64, cap+1)
	var absorbed float64
	if k == 0 {
		absorbed = 1
	} else {
		p[k] = 1
	}
	tails := make([]float64, tmax+1)
	tails[0] = 1 - absorbed
	for t := 1; t <= tmax; t++ {
		for i := range q {
			q[i] = 0
		}
		for s := 1; s <= cap; s++ {
			ps := p[s]
			if ps == 0 {
				continue
			}
			// Z moves to s − 1 + j.
			for j := 0; j <= support; j++ {
				ns := s - 1 + j
				if ns == 0 {
					absorbed += ps * inc[j]
					continue
				}
				if ns > cap {
					// Truncation: park escaping mass at cap (it stays
					// unabsorbed, keeping the tail an upper bound).
					q[cap] += ps * inc[j]
					continue
				}
				q[ns] += ps * inc[j]
			}
		}
		p, q = q, p
		tails[t] = 1 - absorbed
		if tails[t] < 0 {
			tails[t] = 0
		}
	}
	return tails, nil
}

// PaperBound returns the Lemma 5 bound e^{−t/144}, valid for t ≥ 8k.
func PaperBound(t int64) float64 {
	return math.Exp(-float64(t) / 144)
}

// BoundApplies reports whether the Lemma 5 bound is claimed at (k, t),
// i.e. t ≥ 8k.
func BoundApplies(k int, t int64) bool {
	return t >= int64(8*k)
}

// HittingTimeMean estimates E_k[τ] by Monte Carlo. With drift −1/4 the
// walk's mean absorption time from k is ≈ 4k; the E6 table reports this
// next to the tail bounds.
func (c *Chain) HittingTimeMean(k int, trials int, maxT int64, r *rng.Source) (mean float64, completed int) {
	var sum float64
	for i := 0; i < trials; i++ {
		t, ok := c.AbsorptionTime(k, maxT, r)
		if ok {
			sum += float64(t)
			completed++
		}
	}
	if completed == 0 {
		return 0, 0
	}
	return sum / float64(completed), completed
}
