package checkpoint

import (
	"fmt"
	"io"
	"os"

	"repro/internal/atomicio"
)

// WriteFile atomically replaces path with the serialized snapshot
// (internal/atomicio: temp file in the same directory, fsync, rename). A
// crash mid-write therefore leaves either the old checkpoint or the new
// one, never a torn file — which the CRCs would reject anyway, but a valid
// previous checkpoint is strictly better than a rejected torn one.
func WriteFile(path string, snap *Snapshot) error {
	return WriteFileOptions(path, snap, Options{})
}

// WriteFileOptions is WriteFile with explicit serialization options.
func WriteFileOptions(path string, snap *Snapshot, opts Options) error {
	// Save's own errors already carry the package prefix; OS-level errors
	// name the file, so neither needs further wrapping.
	return atomicio.WriteFile(path, func(w io.Writer) error {
		return SaveOptions(w, snap, opts)
	})
}

// WriteFileFunc atomically replaces path with whatever write produces —
// the streaming form of WriteFileOptions, for engines that serialize their
// own checkpoint stream (see StreamProcess) instead of handing back a
// snapshot to encode here.
func WriteFileFunc(path string, write func(io.Writer) error) error {
	return atomicio.WriteFile(path, write)
}

// ReadFile loads a snapshot from path.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	defer f.Close()
	return Load(f)
}
