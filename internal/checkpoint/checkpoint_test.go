package checkpoint

import (
	"bytes"
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/shard"
)

// makeRun returns a mid-flight process and pipeline to snapshot.
func makeRun(t *testing.T, n, shards int, rounds int64, probs []float64) (*shard.Process, *shard.Pipeline) {
	t.Helper()
	p, err := shard.NewProcess(config.OnePerBin(n), 21, shard.Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := shard.NewPipeline(probs)
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < rounds; i++ {
		p.Step()
		pipe.Observe(p)
	}
	return p, pipe
}

// snapshotOf serializes the current state of a run.
func snapshotOf(t *testing.T, p *shard.Process, pipe *shard.Pipeline) *Snapshot {
	t.Helper()
	eng, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	snap := &Snapshot{Seed: 21, Engine: eng}
	if pipe != nil {
		snap.Observer = pipe.Snapshot()
	}
	return snap
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		n, shards int
		probs     []float64
	}{
		{1, 1, nil},
		{100, 3, nil},
		{257, 8, []float64{0.5, 0.9, 0.99}},
		{64, 64, []float64{0.5}},
	} {
		p, pipe := makeRun(t, tc.n, tc.shards, 50, tc.probs)
		if tc.probs == nil {
			pipe = nil
		}
		snap := snapshotOf(t, p, pipe)
		var buf bytes.Buffer
		if err := Save(&buf, snap); err != nil {
			t.Fatalf("n=%d S=%d: %v", tc.n, tc.shards, err)
		}
		got, err := Load(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("n=%d S=%d: %v", tc.n, tc.shards, err)
		}
		if !reflect.DeepEqual(snap, got) {
			t.Fatalf("n=%d S=%d: round trip not exact", tc.n, tc.shards)
		}
	}
}

// TestSaveDeterministic: the byte stream is a pure function of the
// snapshot, which is what lets the CI gate compare checkpoints with cmp.
func TestSaveDeterministic(t *testing.T) {
	p, pipe := makeRun(t, 200, 4, 30, []float64{0.5, 0.9})
	snap := snapshotOf(t, p, pipe)
	var a, b bytes.Buffer
	if err := Save(&a, snap); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("two saves of the same snapshot differ")
	}
}

// TestLoadRejectsCorruption: flipping any single byte of a checkpoint must
// be detected — by a structural check or, failing everything else, by the
// CRC trailer.
func TestLoadRejectsCorruption(t *testing.T) {
	p, pipe := makeRun(t, 96, 3, 25, []float64{0.9})
	snap := snapshotOf(t, p, pipe)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := range data {
		corrupt := append([]byte(nil), data...)
		corrupt[i] ^= 0x5a
		if _, err := Load(bytes.NewReader(corrupt)); err == nil {
			t.Fatalf("flipped byte %d of %d went undetected", i, len(data))
		}
	}
}

// TestLoadRejectsTruncation: every strict prefix must error, never panic.
func TestLoadRejectsTruncation(t *testing.T) {
	p, _ := makeRun(t, 64, 2, 10, nil)
	snap := snapshotOf(t, p, nil)
	var buf bytes.Buffer
	if err := Save(&buf, snap); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for i := 0; i < len(data); i++ {
		if _, err := Load(bytes.NewReader(data[:i])); err == nil {
			t.Fatalf("prefix of %d/%d bytes accepted", i, len(data))
		}
	}
}

// TestLoadRejectsTrailingData: a checkpoint is a whole file; bytes after
// the trailer violate the one-state-one-encoding property.
func TestLoadRejectsTrailingData(t *testing.T) {
	p, _ := makeRun(t, 32, 2, 5, nil)
	var buf bytes.Buffer
	if err := Save(&buf, snapshotOf(t, p, nil)); err != nil {
		t.Fatal(err)
	}
	data := append(buf.Bytes(), 0)
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func TestLoadRejectsChecksum(t *testing.T) {
	p, _ := makeRun(t, 32, 2, 5, nil)
	var buf bytes.Buffer
	if err := Save(&buf, snapshotOf(t, p, nil)); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(data)-1] ^= 0xff
	if _, err := Load(bytes.NewReader(data)); !errors.Is(err, ErrChecksum) {
		t.Fatalf("got %v, want ErrChecksum", err)
	}
}

func TestWriteReadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "run.ckpt")
	p, pipe := makeRun(t, 128, 4, 40, []float64{0.5})
	snap := snapshotOf(t, p, pipe)
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, got) {
		t.Fatal("file round trip not exact")
	}
	// Overwrite is atomic: writing again leaves exactly one file.
	if err := WriteFile(path, snap); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after rewrite, want 1", len(entries))
	}
}

// TestRunResumeEquivalence is the in-process form of the CI gate: run to
// round T with a mid-point checkpoint, resume in a fresh engine, and
// require the final checkpoints — loads, rng states, observer accumulators,
// everything — to be byte-identical, for S = 1 and S > 1.
func TestRunResumeEquivalence(t *testing.T) {
	const (
		n      = 4096
		target = 120
		cut    = 50
	)
	for _, shards := range []int{1, 8} {
		dir := t.TempDir()
		fullPath := filepath.Join(dir, "full.ckpt")
		halfPath := filepath.Join(dir, "half.ckpt")
		resPath := filepath.Join(dir, "resumed.ckpt")

		newRun := func() (*shard.Process, *shard.Pipeline) {
			p, err := shard.NewProcess(config.OnePerBin(n), 5, shard.Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			pipe, err := shard.NewPipeline([]float64{0.5, 0.99})
			if err != nil {
				t.Fatal(err)
			}
			return p, pipe
		}

		p, pipe := newRun()
		if _, _, err := Run(context.Background(), p, target, Policy{Path: fullPath, Seed: 5, Pipeline: pipe}); err != nil {
			t.Fatal(err)
		}
		p, pipe = newRun()
		if _, _, err := Run(context.Background(), p, cut, Policy{Path: halfPath, Seed: 5, Pipeline: pipe}); err != nil {
			t.Fatal(err)
		}
		snap, err := ReadFile(halfPath)
		if err != nil {
			t.Fatal(err)
		}
		rp, rpipe, err := Resume(snap, shard.Options{})
		if err != nil {
			t.Fatal(err)
		}
		if rp.Round() != cut || rpipe == nil {
			t.Fatalf("S=%d: resumed at round %d, pipeline %v", shards, rp.Round(), rpipe)
		}
		if _, _, err := Run(context.Background(), rp, target, Policy{Path: resPath, Seed: snap.Seed, Pipeline: rpipe}); err != nil {
			t.Fatal(err)
		}
		full, err := os.ReadFile(fullPath)
		if err != nil {
			t.Fatal(err)
		}
		res, err := os.ReadFile(resPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(full, res) {
			t.Fatalf("S=%d: resumed final checkpoint differs from uninterrupted", shards)
		}
	}
}

// TestRunPeriodicAndInterrupt: the periodic hook writes on schedule, and
// the interrupt hook snapshots and stops at the next round boundary.
func TestRunPeriodicAndInterrupt(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "p.ckpt")
	p, err := shard.NewProcess(config.OnePerBin(512), 9, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Periodic: run 10 rounds with Every=4; the file at return is the final
	// snapshot (round 10).
	if _, _, err := Run(context.Background(), p, 10, Policy{Path: path, Every: 4, Seed: 9}); err != nil {
		t.Fatal(err)
	}
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine.Round != 10 {
		t.Fatalf("final snapshot at round %d, want 10", snap.Engine.Round)
	}
	if snap.Observer != nil {
		t.Fatal("observer section present without a pipeline")
	}
	// Interrupt: an already-cancelled context stops the run after one round.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	round, stopped, err := Run(ctx, p, 1000, Policy{Path: path, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !stopped || round != 11 {
		t.Fatalf("interrupt: stopped=%v round=%d, want true, 11", stopped, round)
	}
	snap, err = ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine.Round != 11 {
		t.Fatalf("interrupt snapshot at round %d, want 11", snap.Engine.Round)
	}
	// Resuming the interrupt snapshot continues to the uninterrupted state.
	rp, _, err := Resume(snap, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := shard.NewProcess(config.OnePerBin(512), 9, shard.Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	ref.Run(30)
	rp.Run(30 - rp.Round())
	got, want := rp.LoadsCopy(), ref.LoadsCopy()
	for u := range got {
		if got[u] != want[u] {
			t.Fatalf("bin %d: %d vs %d", u, got[u], want[u])
		}
	}
}

// TestRunTrigger: a value on Policy.Trigger writes an on-demand snapshot
// at the next round boundary without stopping the run.
func TestRunTrigger(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.ckpt")
	p, err := shard.NewProcess(config.OnePerBin(256), 3, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	trigger := make(chan struct{}, 1)
	trigger <- struct{}{}
	// The trigger is consumed after round 1; capture the file it produced
	// before the final write overwrites it.
	var triggered int64 = -1
	probe := engine.ObserverFunc(func(engine.Stepper) {
		if triggered < 0 {
			if snap, err := ReadFile(path); err == nil {
				triggered = snap.Engine.Round
			}
		}
	})
	round, stopped, err := Run(context.Background(), p, 5, Policy{Path: path, Seed: 3, Trigger: trigger}, probe)
	if err != nil {
		t.Fatal(err)
	}
	if stopped || round != 5 {
		t.Fatalf("stopped=%v round=%d, want false, 5", stopped, round)
	}
	if triggered != 1 {
		t.Fatalf("triggered snapshot at round %d, want 1", triggered)
	}
	snap, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Engine.Round != 5 {
		t.Fatalf("final snapshot at round %d, want 5", snap.Engine.Round)
	}
}

func TestSaveValidation(t *testing.T) {
	var buf bytes.Buffer
	if err := Save(&buf, nil); err == nil {
		t.Error("nil snapshot accepted")
	}
	if err := Save(&buf, &Snapshot{}); err == nil {
		t.Error("nil engine accepted")
	}
	if err := Save(&buf, &Snapshot{Engine: &shard.EngineSnapshot{N: 0}}); err == nil {
		t.Error("zero bins accepted")
	}
}
