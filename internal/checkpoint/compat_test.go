package checkpoint

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/shard"
)

var update = flag.Bool("update", false, "rewrite golden testdata files")

// goldenV1Path holds a format-v1 checkpoint committed to the repo: the
// bytes the v1 encoder wrote before format v2 existed. Old files in the
// wild must keep loading forever; this blob is the contract. Regenerate
// (only when intentionally breaking v1 compatibility, which should never
// happen) with: go test ./internal/checkpoint -run GoldenV1 -args -update
const goldenV1Path = "testdata/v1.ckpt"

// goldenV1Run recomputes the run the golden blob snapshots: OnePerBin(70),
// seed 3, 3 shards, 20 rounds, quantiles {0.5, 0.9} — a pure function of
// those constants, reproducible on any machine.
func goldenV1Run(t *testing.T, rounds int64) (*shard.Process, *shard.Pipeline) {
	t.Helper()
	p, err := shard.NewProcess(config.OnePerBin(70), 3, shard.Options{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := shard.NewPipeline([]float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < rounds; i++ {
		p.Step()
		pipe.Observe(p)
	}
	return p, pipe
}

func goldenV1Snapshot(t *testing.T) *Snapshot {
	t.Helper()
	p, pipe := goldenV1Run(t, 20)
	defer p.Close()
	eng, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	return &Snapshot{Seed: 3, Engine: eng, Observer: pipe.Snapshot()}
}

// TestGoldenV1Load: the committed v1 blob still loads under the v2 code,
// decodes to exactly the state it was written from, and re-encodes with
// the legacy encoder to the identical bytes (v1 is byte-canonical too).
func TestGoldenV1Load(t *testing.T) {
	if *update {
		snap := goldenV1Snapshot(t)
		var buf bytes.Buffer
		if err := saveV1(&buf, snap); err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(goldenV1Path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenV1Path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", goldenV1Path, buf.Len())
	}
	data, err := os.ReadFile(goldenV1Path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatalf("golden v1 blob no longer loads: %v", err)
	}
	want := goldenV1Snapshot(t)
	// v1 records no storage widths; the loader leaves Width 0 and restore
	// re-derives the narrowest fit. Compare against the live snapshot with
	// its widths erased the same way.
	for i := range want.Engine.Shards {
		want.Engine.Shards[i].Width = 0
	}
	if !reflect.DeepEqual(snap, want) {
		t.Fatalf("golden v1 blob decoded to a different state:\n got %+v\nwant %+v", snap, want)
	}
	var re bytes.Buffer
	if err := saveV1(&re, snap); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), data) {
		t.Fatal("legacy encoder no longer reproduces the golden v1 bytes")
	}
}

// TestGoldenV1Resume: a run resumed from the v1 blob is byte-identical to
// the uninterrupted run — same loads, and the next (v2) checkpoint it
// writes matches the uninterrupted run's byte for byte, because restore
// re-derives the same storage widths v1 never recorded.
func TestGoldenV1Resume(t *testing.T) {
	data, err := os.ReadFile(goldenV1Path)
	if err != nil {
		t.Fatal(err)
	}
	snap, err := Load(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	p, pipe, err := Resume(snap, shard.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	for p.Round() < 40 {
		p.Step()
		pipe.Observe(p)
	}
	ref, refPipe := goldenV1Run(t, 40)
	defer ref.Close()
	if !reflect.DeepEqual(p.LoadsCopy(), ref.LoadsCopy()) {
		t.Fatal("resumed run diverged from the uninterrupted run")
	}
	if !reflect.DeepEqual(pipe.Summary(), refPipe.Summary()) {
		t.Fatalf("resumed summary diverged:\n got %+v\nwant %+v", pipe.Summary(), refPipe.Summary())
	}
	save := func(p *shard.Process, pipe *shard.Pipeline) []byte {
		eng, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := Save(&buf, &Snapshot{Seed: 3, Engine: eng, Observer: pipe.Snapshot()}); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}
	if !bytes.Equal(save(p, pipe), save(ref, refPipe)) {
		t.Fatal("v2 checkpoint written after a v1 resume differs from the uninterrupted run's")
	}
}
