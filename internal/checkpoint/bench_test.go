package checkpoint

import (
	"bytes"
	"io"
	"sync"
	"testing"

	"repro/internal/config"
	"repro/internal/shard"
)

// The recorded format comparison (BENCH_compact.json, CI bench-smoke):
// encode and decode throughput and bytes on the wire for the legacy
// monolithic v1 format against framed v2, raw and flate-compressed, at the
// acceptance shape n = 2²⁵, S = 8. The state is a dense balanced run a few
// rounds in — every shard at uint8 storage width, the steady state the
// Θ(log n) max-load bound makes typical.
const (
	benchN      = 1 << 25
	benchShards = 8
)

var benchSnap = sync.OnceValue(func() *Snapshot {
	p, err := shard.NewProcess(config.OnePerBin(benchN), 7, shard.Options{Shards: benchShards})
	if err != nil {
		panic(err)
	}
	defer p.Close()
	pipe, err := shard.NewPipeline([]float64{0.5, 0.99})
	if err != nil {
		panic(err)
	}
	for i := 0; i < 3; i++ {
		p.Step()
		pipe.Observe(p)
	}
	eng, err := p.Snapshot()
	if err != nil {
		panic(err)
	}
	return &Snapshot{Seed: 7, Engine: eng, Observer: pipe.Snapshot()}
})

// countWriter measures bytes on the wire without buffering them.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func benchEncode(b *testing.B, save func(w io.Writer, snap *Snapshot) error) {
	snap := benchSnap()
	b.SetBytes(int64(benchN)) // throughput in bins/s
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		var cw countWriter
		if err := save(&cw, snap); err != nil {
			b.Fatal(err)
		}
		wire = cw.n
	}
	b.ReportMetric(float64(wire), "wire-bytes")
}

func BenchmarkEncodeV1(b *testing.B) {
	benchEncode(b, saveV1)
}

func BenchmarkEncodeV2Raw(b *testing.B) {
	benchEncode(b, func(w io.Writer, snap *Snapshot) error {
		return SaveOptions(w, snap, Options{})
	})
}

func BenchmarkEncodeV2Flate(b *testing.B) {
	benchEncode(b, func(w io.Writer, snap *Snapshot) error {
		return SaveOptions(w, snap, Options{Compress: true})
	})
}

func benchDecode(b *testing.B, save func(w io.Writer, snap *Snapshot) error) {
	var buf bytes.Buffer
	if err := save(&buf, benchSnap()); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Load(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDecodeV1(b *testing.B) {
	benchDecode(b, saveV1)
}

func BenchmarkDecodeV2Raw(b *testing.B) {
	benchDecode(b, func(w io.Writer, snap *Snapshot) error {
		return SaveOptions(w, snap, Options{})
	})
}

func BenchmarkDecodeV2Flate(b *testing.B) {
	benchDecode(b, func(w io.Writer, snap *Snapshot) error {
		return SaveOptions(w, snap, Options{Compress: true})
	})
}
