package checkpoint

import (
	"bytes"
	"testing"

	"repro/internal/config"
	"repro/internal/shard"
)

// FuzzLoad feeds arbitrary bytes to Load: on corrupted, truncated or
// adversarial input it must return an error — never panic, and never hand
// back a snapshot that Save cannot reproduce byte-for-byte. The seed corpus
// holds valid checkpoints (with and without an observer section) so the
// fuzzer starts from the interesting part of the input space.
func FuzzLoad(f *testing.F) {
	for _, withObs := range []bool{false, true} {
		p, err := shard.NewProcess(config.OnePerBin(70), 3, shard.Options{Shards: 3})
		if err != nil {
			f.Fatal(err)
		}
		pipe, err := shard.NewPipeline([]float64{0.5, 0.9})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			p.Step()
			pipe.Observe(p)
		}
		eng, err := p.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		snap := &Snapshot{Seed: 3, Engine: eng}
		if withObs {
			snap.Observer = pipe.Snapshot()
		}
		var buf bytes.Buffer
		if err := Save(&buf, snap); err != nil {
			f.Fatal(err)
		}
		f.Add(buf.Bytes())
		// Truncated, extended and bit-flipped variants widen the corpus.
		f.Add(buf.Bytes()[:buf.Len()/2])
		f.Add(append(append([]byte(nil), buf.Bytes()...), 0))
		flipped := append([]byte(nil), buf.Bytes()...)
		flipped[buf.Len()/3] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("RBBCKPT\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Anything Load accepts must re-serialize to exactly the accepted
		// bytes: the format has a single canonical encoding per state.
		var out bytes.Buffer
		if err := Save(&out, snap); err != nil {
			t.Fatalf("Load accepted a snapshot Save rejects: %v", err)
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted input is not canonical")
		}
	})
}
