package checkpoint

import (
	"bytes"
	"encoding/binary"
	"reflect"
	"testing"

	"repro/internal/config"
	"repro/internal/shard"
)

// FuzzLoad feeds arbitrary bytes to Load: on corrupted, truncated or
// adversarial input it must return an error — never panic, and never hand
// back a snapshot the matching encoder cannot reproduce. Uncompressed
// checkpoints (v1 and v2) must round-trip byte-for-byte — one state, one
// encoding; compressed v2 input must round-trip logically (a crafted flate
// stream can decode to a valid payload without matching our encoder's
// bytes). The seed corpus holds valid checkpoints in every format variant
// so the fuzzer starts from the interesting part of the input space.
func FuzzLoad(f *testing.F) {
	for _, withObs := range []bool{false, true} {
		p, err := shard.NewProcess(config.OnePerBin(70), 3, shard.Options{Shards: 3})
		if err != nil {
			f.Fatal(err)
		}
		pipe, err := shard.NewPipeline([]float64{0.5, 0.9})
		if err != nil {
			f.Fatal(err)
		}
		for i := 0; i < 20; i++ {
			p.Step()
			pipe.Observe(p)
		}
		eng, err := p.Snapshot()
		if err != nil {
			f.Fatal(err)
		}
		snap := &Snapshot{Seed: 3, Engine: eng}
		if withObs {
			snap.Observer = pipe.Snapshot()
		}
		for _, enc := range []func(*bytes.Buffer) error{
			func(b *bytes.Buffer) error { return Save(b, snap) },
			func(b *bytes.Buffer) error { return SaveOptions(b, snap, Options{Compress: true}) },
			func(b *bytes.Buffer) error { return saveV1(b, snap) },
		} {
			var buf bytes.Buffer
			if err := enc(&buf); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
			// Truncated, extended and bit-flipped variants widen the corpus.
			f.Add(buf.Bytes()[:buf.Len()/2])
			f.Add(append(append([]byte(nil), buf.Bytes()...), 0))
			flipped := append([]byte(nil), buf.Bytes()...)
			flipped[buf.Len()/3] ^= 0x80
			f.Add(flipped)
		}
	}
	f.Add([]byte{})
	f.Add([]byte("RBBCKPT\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Load(bytes.NewReader(data))
		if err != nil {
			return
		}
		// len(data) >= 36: Load validated magic, version and flags already.
		version := binary.LittleEndian.Uint32(data[8:12])
		compressed := version == Version2 && binary.LittleEndian.Uint32(data[32:36])&flagCompress != 0
		var out bytes.Buffer
		switch {
		case version == Version1:
			err = saveV1(&out, snap)
		default:
			err = SaveOptions(&out, snap, Options{Compress: compressed})
		}
		if err != nil {
			t.Fatalf("Load accepted a snapshot the encoder rejects: %v", err)
		}
		if compressed {
			// Logical round trip: the re-encoded bytes must load back to the
			// identical snapshot.
			got, err := Load(bytes.NewReader(out.Bytes()))
			if err != nil {
				t.Fatalf("re-encoded snapshot does not load: %v", err)
			}
			if !reflect.DeepEqual(got, snap) {
				t.Fatal("compressed round trip lost state")
			}
			return
		}
		if !bytes.Equal(out.Bytes(), data) {
			t.Fatal("accepted input is not canonical")
		}
	})
}
