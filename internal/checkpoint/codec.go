package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/shard"
	"repro/internal/stats"
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// leWriter serializes little-endian values into a buffered, CRC-teed
// writer, latching the first error.
type leWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (w *leWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

func (w *leWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.bytes(w.buf[:8])
}

func (w *leWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.bytes(w.buf[:4])
}

func (w *leWriter) i32(v int32)   { w.u32(uint32(v)) }
func (w *leWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *leWriter) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.bytes([]byte{b})
}

// Save serializes snap to dst in the versioned binary format, ending with
// the CRC-32C trailer. The byte stream is a pure function of the snapshot
// contents (no timestamps, no padding entropy), so two runs that reach the
// same state produce byte-identical checkpoints — the CI resume-equivalence
// gate compares files with cmp for exactly this reason.
func Save(dst io.Writer, snap *Snapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	crc := crc32.New(castagnoli)
	w := &leWriter{w: bufio.NewWriterSize(io.MultiWriter(dst, crc), 1<<16)}

	w.bytes(magic[:])
	w.u32(Version)
	w.u64(snap.Seed)
	eng := snap.Engine
	w.u64(uint64(eng.N))
	w.u32(uint32(len(eng.Shards)))
	var flags uint32
	if snap.Observer != nil {
		flags |= flagObserver
	}
	w.u32(flags)
	w.u64(uint64(eng.Round))
	for i := range eng.Shards {
		sh := &eng.Shards[i]
		for _, v := range sh.RNG {
			w.u64(v)
		}
		w.u64(uint64(len(sh.Loads)))
		for _, l := range sh.Loads {
			w.i32(l)
		}
		w.u64(uint64(len(sh.Work)))
		for _, v := range sh.Work {
			w.u64(v)
		}
	}
	if obs := snap.Observer; obs != nil {
		w.u64(uint64(obs.Rounds))
		w.i32(obs.WindowMax)
		w.bool(obs.WindowAny)
		w.f64(obs.EmptyMin)
		w.f64(obs.EmptySum)
		w.u64(uint64(obs.EmptyRounds))
		w.u32(uint32(len(obs.Sketches)))
		for _, st := range obs.Sketches {
			w.f64(st.P)
			w.u64(uint64(st.Count))
			for _, v := range st.Q {
				w.f64(v)
			}
			for _, v := range st.Pos {
				w.f64(v)
			}
			for _, v := range st.Want {
				w.f64(v)
			}
		}
	}
	if w.err != nil {
		return fmt.Errorf("checkpoint: save: %w", w.err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := dst.Write(trailer[:]); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// leReader deserializes little-endian values from a CRC-teed reader,
// latching the first error. Truncation surfaces as a wrapped
// io.ErrUnexpectedEOF.
type leReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (r *leReader) read(n int) []byte {
	if r.err == nil {
		if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("checkpoint: truncated input: %w", io.ErrUnexpectedEOF)
			}
			r.err = err
			for i := range r.buf {
				r.buf[i] = 0
			}
		}
	}
	return r.buf[:n]
}

func (r *leReader) u64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }
func (r *leReader) u32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }

func (r *leReader) i64(what string) int64 {
	v := r.u64()
	if r.err == nil && v > math.MaxInt64 {
		r.err = fmt.Errorf("checkpoint: %s %d overflows int64", what, v)
	}
	return int64(v)
}

func (r *leReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *leReader) bool() bool {
	b := r.read(1)[0]
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("checkpoint: invalid bool byte %d", b)
	}
	return b == 1
}

// i32Slice reads n int32 values in bounded chunks: the slice grows with the
// bytes actually present, so a corrupted header demanding a huge count
// errors out on truncation long before it can demand a huge allocation.
func (r *leReader) i32Slice(n int) []int32 {
	const chunk = 1 << 16
	c := n
	if c > chunk {
		c = chunk
	}
	out := make([]int32, 0, c)
	for len(out) < n && r.err == nil {
		out = append(out, int32(r.u32()))
	}
	return out
}

// u64Slice is the uint64 analogue of i32Slice.
func (r *leReader) u64Slice(n int) []uint64 {
	const chunk = 1 << 13
	c := n
	if c > chunk {
		c = chunk
	}
	out := make([]uint64, 0, c)
	for len(out) < n && r.err == nil {
		out = append(out, r.u64())
	}
	return out
}

// Load deserializes one checkpoint from src, validating every field and the
// CRC trailer; the trailer must be followed by EOF (a checkpoint is a whole
// file, not a stream prefix). Corrupted or truncated input yields an error;
// Load never panics and never allocates more than a constant factor of the
// bytes actually read. The returned snapshot still goes through the structural
// re-validation of shard.RestoreEngine when it is turned back into a live
// engine.
func Load(src io.Reader) (*Snapshot, error) {
	crc := crc32.New(castagnoli)
	br := bufio.NewReaderSize(src, 1<<16)
	r := &leReader{r: io.TeeReader(br, crc)}

	var m [8]byte
	copy(m[:], r.read(8))
	if r.err != nil {
		return nil, r.err
	}
	if m != magic {
		return nil, errors.New("checkpoint: bad magic (not a checkpoint file)")
	}
	if v := r.u32(); r.err == nil && v != Version {
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (want %d)", v, Version)
	}
	seed := r.u64()
	n := r.u64()
	if r.err == nil && (n < 1 || n > maxBins) {
		return nil, fmt.Errorf("checkpoint: %d bins outside [1, %d]", n, int64(maxBins))
	}
	s := r.u32()
	if r.err == nil && (s < 1 || uint64(s) > n || s > maxShards) {
		return nil, fmt.Errorf("checkpoint: %d shards for %d bins", s, n)
	}
	flags := r.u32()
	if r.err == nil && flags&^uint32(flagObserver) != 0 {
		return nil, fmt.Errorf("checkpoint: unknown flags %#x", flags)
	}
	round := r.i64("round")
	if r.err != nil {
		return nil, r.err
	}

	eng := &shard.EngineSnapshot{
		N:      int(n),
		Round:  round,
		Shards: make([]shard.ShardSnapshot, s),
	}
	for i := range eng.Shards {
		sh := &eng.Shards[i]
		for j := range sh.RNG {
			sh.RNG[j] = r.u64()
		}
		if r.err == nil && sh.RNG[0]|sh.RNG[1]|sh.RNG[2]|sh.RNG[3] == 0 {
			return nil, fmt.Errorf("checkpoint: shard %d has all-zero rng state", i)
		}
		size := shard.PartitionSize(int(n), int(s), i)
		if got := r.u64(); r.err == nil && got != uint64(size) {
			return nil, fmt.Errorf("checkpoint: shard %d holds %d bins, partition wants %d", i, got, size)
		}
		sh.Loads = r.i32Slice(size)
		for _, l := range sh.Loads {
			if l < 0 {
				return nil, fmt.Errorf("checkpoint: shard %d has negative load %d", i, l)
			}
		}
		nwords := (size + 63) / 64
		if got := r.u64(); r.err == nil && got != uint64(nwords) {
			return nil, fmt.Errorf("checkpoint: shard %d has %d worklist words, want %d", i, got, nwords)
		}
		sh.Work = r.u64Slice(nwords)
		if r.err != nil {
			return nil, r.err
		}
	}

	var obs *shard.PipelineSnapshot
	if flags&flagObserver != 0 {
		obs = &shard.PipelineSnapshot{}
		obs.Rounds = r.i64("observer rounds")
		obs.WindowMax = int32(r.u32())
		obs.WindowAny = r.bool()
		obs.EmptyMin = r.f64()
		obs.EmptySum = r.f64()
		obs.EmptyRounds = r.i64("observer empty rounds")
		nq := r.u32()
		if r.err == nil && nq > maxQuantiles {
			return nil, fmt.Errorf("checkpoint: %d quantile sketches exceed %d", nq, maxQuantiles)
		}
		for q := uint32(0); q < nq && r.err == nil; q++ {
			var st stats.P2State
			st.P = r.f64()
			st.Count = r.i64("sketch count")
			for j := range st.Q {
				st.Q[j] = r.f64()
			}
			for j := range st.Pos {
				st.Pos[j] = r.f64()
			}
			for j := range st.Want {
				st.Want[j] = r.f64()
			}
			obs.Sketches = append(obs.Sketches, st)
		}
		if r.err != nil {
			return nil, r.err
		}
		if obs.WindowMax < 0 {
			return nil, fmt.Errorf("checkpoint: negative observer window max %d", obs.WindowMax)
		}
	}

	sum := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated trailer: %w", io.ErrUnexpectedEOF)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != sum {
		return nil, ErrChecksum
	}
	// The trailer must end the stream: trailing bytes would break the
	// one-state-one-encoding property the CI cmp gate and FuzzLoad rely on.
	if _, err := br.ReadByte(); err == nil {
		return nil, errors.New("checkpoint: trailing data after trailer")
	} else if err != io.EOF {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	snap := &Snapshot{Seed: seed, Engine: eng, Observer: obs}
	if err := snap.validate(); err != nil {
		return nil, err
	}
	return snap, nil
}
