package checkpoint

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"repro/internal/shard"
	"repro/internal/stats"
)

// castagnoli is the CRC-32C polynomial table (hardware-accelerated on
// amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// leWriter serializes little-endian values into a buffered, CRC-teed
// writer, latching the first error.
type leWriter struct {
	w   *bufio.Writer
	err error
	buf [8]byte
}

func (w *leWriter) bytes(p []byte) {
	if w.err != nil {
		return
	}
	_, w.err = w.w.Write(p)
}

func (w *leWriter) u64(v uint64) {
	binary.LittleEndian.PutUint64(w.buf[:8], v)
	w.bytes(w.buf[:8])
}

func (w *leWriter) u32(v uint32) {
	binary.LittleEndian.PutUint32(w.buf[:4], v)
	w.bytes(w.buf[:4])
}

func (w *leWriter) i32(v int32)   { w.u32(uint32(v)) }
func (w *leWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

func (w *leWriter) bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	w.bytes([]byte{b})
}

// loads writes the load vector at the given storage width (8, 16 or 32
// bits per bin, unsigned below 32). Narrow widths go out in bulk chunks:
// the per-value function-call overhead of the v1 int32 path is most of its
// encode cost, and the chunked form is what makes narrow checkpoints
// faster to write, not just smaller. Values must fit the width (the caller
// range-checks against loadLimit).
func (w *leWriter) loads(ls []int32, width uint8) {
	var buf [4096]byte
	switch width {
	case 8:
		for len(ls) > 0 && w.err == nil {
			k := min(len(ls), len(buf))
			for i, v := range ls[:k] {
				buf[i] = byte(v)
			}
			w.bytes(buf[:k])
			ls = ls[k:]
		}
	case 16:
		for len(ls) > 0 && w.err == nil {
			k := min(len(ls), len(buf)/2)
			for i, v := range ls[:k] {
				binary.LittleEndian.PutUint16(buf[2*i:], uint16(v))
			}
			w.bytes(buf[:2*k])
			ls = ls[k:]
		}
	default:
		for _, v := range ls {
			w.i32(v)
		}
	}
}

// loadLimit is the largest load storable at a width.
func loadLimit(width uint8) int32 {
	switch width {
	case 8:
		return math.MaxUint8
	case 16:
		return math.MaxUint16
	default:
		return math.MaxInt32
	}
}

// writeShardPayload serializes one shard's state: rng stream state, bin
// count, loads at the given width, worklist words. At width 32 the bytes
// are exactly a v1 shard section, which is what makes a v2 width-32
// uncompressed frame payload byte-identical to its v1 counterpart.
func writeShardPayload(w *leWriter, sh *shard.ShardSnapshot, width uint8) {
	for _, v := range sh.RNG {
		w.u64(v)
	}
	w.u64(uint64(len(sh.Loads)))
	w.loads(sh.Loads, width)
	w.u64(uint64(len(sh.Work)))
	for _, v := range sh.Work {
		w.u64(v)
	}
}

// writeObserverFields serializes the observer-pipeline accumulators (the
// v1 observer section and the v2 observer frame payload share this layout).
func writeObserverFields(w *leWriter, obs *shard.PipelineSnapshot) {
	w.u64(uint64(obs.Rounds))
	w.i32(obs.WindowMax)
	w.bool(obs.WindowAny)
	w.f64(obs.EmptyMin)
	w.f64(obs.EmptySum)
	w.u64(uint64(obs.EmptyRounds))
	w.u32(uint32(len(obs.Sketches)))
	for _, st := range obs.Sketches {
		w.f64(st.P)
		w.u64(uint64(st.Count))
		for _, v := range st.Q {
			w.f64(v)
		}
		for _, v := range st.Pos {
			w.f64(v)
		}
		for _, v := range st.Want {
			w.f64(v)
		}
	}
}

// saveV1 writes the legacy monolithic v1 format: header, inline int32
// shard sections, observer section, one whole-stream CRC trailer. It is
// kept verbatim as the reference encoder behind the v1 golden blob, the
// compatibility tests and the format benchmarks; Save writes v2.
func saveV1(dst io.Writer, snap *Snapshot) error {
	if err := snap.validate(); err != nil {
		return err
	}
	crc := crc32.New(castagnoli)
	w := &leWriter{w: bufio.NewWriterSize(io.MultiWriter(dst, crc), 1<<16)}

	w.bytes(magic[:])
	w.u32(Version1)
	w.u64(snap.Seed)
	eng := snap.Engine
	w.u64(uint64(eng.N))
	w.u32(uint32(len(eng.Shards)))
	var flags uint32
	if snap.Observer != nil {
		flags |= flagObserver
	}
	w.u32(flags)
	w.u64(uint64(eng.Round))
	for i := range eng.Shards {
		writeShardPayload(w, &eng.Shards[i], 32)
	}
	if snap.Observer != nil {
		writeObserverFields(w, snap.Observer)
	}
	if w.err != nil {
		return fmt.Errorf("checkpoint: save: %w", w.err)
	}
	if err := w.w.Flush(); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	var trailer [4]byte
	binary.LittleEndian.PutUint32(trailer[:], crc.Sum32())
	if _, err := dst.Write(trailer[:]); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// leReader deserializes little-endian values from a CRC-teed reader,
// latching the first error. Truncation surfaces as a wrapped
// io.ErrUnexpectedEOF.
type leReader struct {
	r   io.Reader
	err error
	buf [8]byte
}

func (r *leReader) read(n int) []byte {
	if r.err == nil {
		if _, err := io.ReadFull(r.r, r.buf[:n]); err != nil {
			if err == io.EOF || err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("checkpoint: truncated input: %w", io.ErrUnexpectedEOF)
			}
			r.err = err
			for i := range r.buf {
				r.buf[i] = 0
			}
		}
	}
	return r.buf[:n]
}

// full reads len(p) bytes, latching truncation like read.
func (r *leReader) full(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			err = fmt.Errorf("checkpoint: truncated input: %w", io.ErrUnexpectedEOF)
		}
		r.err = err
	}
}

func (r *leReader) u64() uint64 { return binary.LittleEndian.Uint64(r.read(8)) }
func (r *leReader) u32() uint32 { return binary.LittleEndian.Uint32(r.read(4)) }

func (r *leReader) i64(what string) int64 {
	v := r.u64()
	if r.err == nil && v > math.MaxInt64 {
		r.err = fmt.Errorf("checkpoint: %s %d overflows int64", what, v)
	}
	return int64(v)
}

func (r *leReader) f64() float64 { return math.Float64frombits(r.u64()) }

func (r *leReader) bool() bool {
	b := r.read(1)[0]
	if r.err == nil && b > 1 {
		r.err = fmt.Errorf("checkpoint: invalid bool byte %d", b)
	}
	return b == 1
}

// i32Slice reads n int32 values in bounded chunks: the slice grows with the
// bytes actually present, so a corrupted header demanding a huge count
// errors out on truncation long before it can demand a huge allocation.
func (r *leReader) i32Slice(n int) []int32 {
	const chunk = 1 << 16
	out := make([]int32, 0, min(n, chunk))
	for len(out) < n && r.err == nil {
		out = append(out, int32(r.u32()))
	}
	return out
}

// u64Slice is the uint64 analogue of i32Slice.
func (r *leReader) u64Slice(n int) []uint64 {
	const chunk = 1 << 13
	out := make([]uint64, 0, min(n, chunk))
	for len(out) < n && r.err == nil {
		out = append(out, r.u64())
	}
	return out
}

// loadSlice reads n loads stored at the given width, widening to int32.
// Narrow widths read in bulk chunks (mirroring leWriter.loads); the output
// grows with the bytes actually present, like i32Slice.
func (r *leReader) loadSlice(n int, width uint8) []int32 {
	if width == 32 {
		return r.i32Slice(n)
	}
	const chunk = 1 << 12
	var buf [2 * chunk]byte
	out := make([]int32, 0, min(n, chunk))
	for len(out) < n && r.err == nil {
		k := min(n-len(out), chunk)
		if width == 8 {
			b := buf[:k]
			r.full(b)
			if r.err != nil {
				break
			}
			for _, v := range b {
				out = append(out, int32(v))
			}
		} else {
			b := buf[:2*k]
			r.full(b)
			if r.err != nil {
				break
			}
			for i := 0; i < k; i++ {
				out = append(out, int32(binary.LittleEndian.Uint16(b[2*i:])))
			}
		}
	}
	return out
}

// readShardPayload parses one shard's state (a v1 section or a v2 frame
// payload), validating partition arithmetic, rng non-degeneracy and load
// range. The returned snapshot records the storage width it was read at.
func readShardPayload(r *leReader, n, s, i int, width uint8) (shard.ShardSnapshot, error) {
	var sh shard.ShardSnapshot
	for j := range sh.RNG {
		sh.RNG[j] = r.u64()
	}
	if r.err == nil && sh.RNG[0]|sh.RNG[1]|sh.RNG[2]|sh.RNG[3] == 0 {
		return sh, fmt.Errorf("checkpoint: shard %d has all-zero rng state", i)
	}
	size := shard.PartitionSize(n, s, i)
	if got := r.u64(); r.err == nil && got != uint64(size) {
		return sh, fmt.Errorf("checkpoint: shard %d holds %d bins, partition wants %d", i, got, size)
	}
	sh.Loads = r.loadSlice(size, width)
	if width == 32 {
		// Narrower widths are unsigned on the wire, so only the int32 form
		// can smuggle a negative load.
		for _, l := range sh.Loads {
			if l < 0 {
				return sh, fmt.Errorf("checkpoint: shard %d has negative load %d", i, l)
			}
		}
	}
	nwords := (size + 63) / 64
	if got := r.u64(); r.err == nil && got != uint64(nwords) {
		return sh, fmt.Errorf("checkpoint: shard %d has %d worklist words, want %d", i, got, nwords)
	}
	sh.Work = r.u64Slice(nwords)
	if r.err != nil {
		return sh, r.err
	}
	sh.Width = width
	return sh, nil
}

// readObserverFields parses the observer accumulators (shared by the v1
// section and the v2 frame payload).
func readObserverFields(r *leReader) (*shard.PipelineSnapshot, error) {
	obs := &shard.PipelineSnapshot{}
	obs.Rounds = r.i64("observer rounds")
	obs.WindowMax = int32(r.u32())
	obs.WindowAny = r.bool()
	obs.EmptyMin = r.f64()
	obs.EmptySum = r.f64()
	obs.EmptyRounds = r.i64("observer empty rounds")
	nq := r.u32()
	if r.err == nil && nq > maxQuantiles {
		return nil, fmt.Errorf("checkpoint: %d quantile sketches exceed %d", nq, maxQuantiles)
	}
	for q := uint32(0); q < nq && r.err == nil; q++ {
		var st stats.P2State
		st.P = r.f64()
		st.Count = r.i64("sketch count")
		for j := range st.Q {
			st.Q[j] = r.f64()
		}
		for j := range st.Pos {
			st.Pos[j] = r.f64()
		}
		for j := range st.Want {
			st.Want[j] = r.f64()
		}
		obs.Sketches = append(obs.Sketches, st)
	}
	if r.err != nil {
		return nil, r.err
	}
	if obs.WindowMax < 0 {
		return nil, fmt.Errorf("checkpoint: negative observer window max %d", obs.WindowMax)
	}
	return obs, nil
}

// Load deserializes one checkpoint from src — either format version —
// validating every field and every CRC; the stream must end exactly where
// the format says it does (a checkpoint is a whole file, not a stream
// prefix). Corrupted or truncated input yields an error; Load never panics
// and never allocates more than a constant factor of the bytes actually
// read. The returned snapshot still goes through the structural
// re-validation of shard.RestoreEngine when it is turned back into a live
// engine.
func Load(src io.Reader) (*Snapshot, error) {
	br := bufio.NewReaderSize(src, 1<<16)
	pre, _ := br.Peek(12)
	if len(pre) >= 8 {
		var m [8]byte
		copy(m[:], pre)
		if m != magic {
			return nil, errors.New("checkpoint: bad magic (not a checkpoint file)")
		}
	}
	if len(pre) < 12 {
		return nil, fmt.Errorf("checkpoint: truncated input: %w", io.ErrUnexpectedEOF)
	}
	switch ver := binary.LittleEndian.Uint32(pre[8:12]); ver {
	case Version1:
		return loadV1(br)
	case Version2:
		return loadV2(br)
	default:
		return nil, fmt.Errorf("checkpoint: unsupported format version %d (want %d or %d)", ver, Version1, Version2)
	}
}

// loadV1 parses the legacy monolithic format. The CRC trailer covers the
// whole stream from the magic on, so the magic and version are re-read
// through the tee here (Load only peeked at them).
func loadV1(br *bufio.Reader) (*Snapshot, error) {
	crc := crc32.New(castagnoli)
	r := &leReader{r: io.TeeReader(br, crc)}

	r.read(8) // magic, validated by Load
	r.u32()   // version, dispatched by Load
	seed := r.u64()
	n := r.u64()
	if r.err == nil && (n < 1 || n > maxBins) {
		return nil, fmt.Errorf("checkpoint: %d bins outside [1, %d]", n, int64(maxBins))
	}
	s := r.u32()
	if r.err == nil && (s < 1 || uint64(s) > n || s > maxShards) {
		return nil, fmt.Errorf("checkpoint: %d shards for %d bins", s, n)
	}
	flags := r.u32()
	if r.err == nil && flags&^uint32(flagObserver) != 0 {
		return nil, fmt.Errorf("checkpoint: unknown flags %#x", flags)
	}
	round := r.i64("round")
	if r.err != nil {
		return nil, r.err
	}

	eng := &shard.EngineSnapshot{
		N:      int(n),
		Round:  round,
		Shards: make([]shard.ShardSnapshot, s),
	}
	for i := range eng.Shards {
		sh, err := readShardPayload(r, int(n), int(s), i, 32)
		if err != nil {
			return nil, err
		}
		// v1 records no storage width; leave it unrecorded so restore
		// re-derives the narrowest fit.
		sh.Width = 0
		eng.Shards[i] = sh
	}

	var obs *shard.PipelineSnapshot
	if flags&flagObserver != 0 {
		var err error
		if obs, err = readObserverFields(r); err != nil {
			return nil, err
		}
	}

	sum := crc.Sum32()
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return nil, fmt.Errorf("checkpoint: truncated trailer: %w", io.ErrUnexpectedEOF)
	}
	if binary.LittleEndian.Uint32(trailer[:]) != sum {
		return nil, ErrChecksum
	}
	// The trailer must end the stream: trailing bytes would break the
	// one-state-one-encoding property the CI cmp gate and FuzzLoad rely on.
	if _, err := br.ReadByte(); err == nil {
		return nil, errors.New("checkpoint: trailing data after trailer")
	} else if err != io.EOF {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	snap := &Snapshot{Seed: seed, Engine: eng, Observer: obs}
	if err := snap.validate(); err != nil {
		return nil, err
	}
	return snap, nil
}
