package checkpoint

import (
	"bufio"
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
	"math"
	"runtime"

	"repro/internal/shard"
)

// Fixed sizes of the v2 framing (see the package comment for the layout).
const (
	headerSize      = 48 // magic .. round (44 bytes) + header CRC
	frameHeaderSize = 15 // kind, index, width, enc, plen
	// maxObserverPayload bounds the raw observer frame payload: the fixed
	// accumulators plus maxQuantiles sketches of 17 f64/u64 fields each.
	maxObserverPayload = 64 + maxQuantiles*(16+15*8)
)

// maxCompressedLen bounds how large a flate stream over raw bytes can be:
// stored blocks add ~5 bytes per 64 KiB plus small constants, so anything
// past this slack is corruption, rejected before a byte of it is read.
func maxCompressedLen(raw uint64) uint64 { return raw + raw/8 + 64 }

// Header is the fixed v2 preamble: everything needed to size and validate
// the frames that follow. WriteHeader/ReadHeader exist so the proc
// transport can emit a checkpoint stream without the coordinator ever
// holding more than one relayed frame.
type Header struct {
	// Seed is the run's master seed (provenance).
	Seed uint64
	// N is the number of bins.
	N int
	// Shards is the shard count S.
	Shards int
	// Round is the number of completed rounds at the cut.
	Round int64
	// Observer marks that an observer frame follows the shard frames.
	Observer bool
	// Compress marks flate-compressed frame payloads.
	Compress bool
}

// WriteHeader emits the v2 header, CRC included.
func WriteHeader(w io.Writer, h Header) error {
	if h.N < 1 || int64(h.N) > maxBins {
		return fmt.Errorf("checkpoint: %d bins outside [1, %d]", h.N, int64(maxBins))
	}
	if h.Shards < 1 || h.Shards > h.N || h.Shards > maxShards {
		return fmt.Errorf("checkpoint: %d shards for %d bins", h.Shards, h.N)
	}
	if h.Round < 0 {
		return fmt.Errorf("checkpoint: round %d < 0", h.Round)
	}
	var buf [headerSize]byte
	copy(buf[:8], magic[:])
	binary.LittleEndian.PutUint32(buf[8:], Version2)
	binary.LittleEndian.PutUint64(buf[12:], h.Seed)
	binary.LittleEndian.PutUint64(buf[20:], uint64(h.N))
	binary.LittleEndian.PutUint32(buf[28:], uint32(h.Shards))
	var flags uint32
	if h.Observer {
		flags |= flagObserver
	}
	if h.Compress {
		flags |= flagCompress
	}
	binary.LittleEndian.PutUint32(buf[32:], flags)
	binary.LittleEndian.PutUint64(buf[36:], uint64(h.Round))
	binary.LittleEndian.PutUint32(buf[44:], crc32.Checksum(buf[:44], castagnoli))
	if _, err := w.Write(buf[:]); err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// ReadHeader parses and validates a v2 header.
func ReadHeader(r io.Reader) (Header, error) {
	var h Header
	var buf [headerSize]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return h, fmt.Errorf("checkpoint: truncated header: %w", io.ErrUnexpectedEOF)
	}
	var m [8]byte
	copy(m[:], buf[:8])
	if m != magic {
		return h, errors.New("checkpoint: bad magic (not a checkpoint file)")
	}
	if v := binary.LittleEndian.Uint32(buf[8:12]); v != Version2 {
		return h, fmt.Errorf("checkpoint: format version %d, want %d", v, Version2)
	}
	if binary.LittleEndian.Uint32(buf[44:48]) != crc32.Checksum(buf[:44], castagnoli) {
		return h, fmt.Errorf("checkpoint: header: %w", ErrChecksum)
	}
	h.Seed = binary.LittleEndian.Uint64(buf[12:20])
	n := binary.LittleEndian.Uint64(buf[20:28])
	if n < 1 || n > maxBins {
		return h, fmt.Errorf("checkpoint: %d bins outside [1, %d]", n, int64(maxBins))
	}
	h.N = int(n)
	s := binary.LittleEndian.Uint32(buf[28:32])
	if s < 1 || uint64(s) > n || s > maxShards {
		return h, fmt.Errorf("checkpoint: %d shards for %d bins", s, n)
	}
	h.Shards = int(s)
	flags := binary.LittleEndian.Uint32(buf[32:36])
	if flags&^uint32(flagObserver|flagCompress) != 0 {
		return h, fmt.Errorf("checkpoint: unknown flags %#x", flags)
	}
	h.Observer = flags&flagObserver != 0
	h.Compress = flags&flagCompress != 0
	round := binary.LittleEndian.Uint64(buf[36:44])
	if round > math.MaxInt64 {
		return h, fmt.Errorf("checkpoint: round %d overflows int64", round)
	}
	h.Round = int64(round)
	return h, nil
}

// appendFrame assembles one frame around an already-encoded raw payload,
// compressing it when asked and appending the frame CRC.
func appendFrame(dst []byte, kind byte, index uint32, width byte, compress bool, payload []byte) ([]byte, error) {
	enc := byte(0)
	if compress {
		var cb bytes.Buffer
		cb.Grow(len(payload)/4 + 64)
		fw, err := flate.NewWriter(&cb, flate.BestSpeed)
		if err != nil {
			return dst, fmt.Errorf("checkpoint: save: %w", err)
		}
		if _, err = fw.Write(payload); err == nil {
			err = fw.Close()
		}
		if err != nil {
			return dst, fmt.Errorf("checkpoint: save: %w", err)
		}
		payload = cb.Bytes()
		enc = 1
	}
	start := len(dst)
	dst = append(dst, kind)
	dst = binary.LittleEndian.AppendUint32(dst, index)
	dst = append(dst, width, enc)
	dst = binary.LittleEndian.AppendUint64(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(dst[start:], castagnoli)), nil
}

// AppendShardFrame encodes shard index of an engine snapshot as one v2
// checkpoint frame and appends it to dst. A frame is self-contained — own
// CRC, self-described width and encoding — which is what lets the proc
// transport's workers encode their own shards concurrently and stream the
// bytes to a coordinator that only relays them. The stored width is the
// snapshot's recorded storage width; an unrecorded width (a snapshot that
// came from a v1 checkpoint) stores at the narrowest fit, mirroring what
// restore derives.
func AppendShardFrame(dst []byte, sh *shard.ShardSnapshot, index, n, shards int, compress bool) ([]byte, error) {
	if index < 0 || index >= shards {
		return dst, fmt.Errorf("checkpoint: shard index %d outside [0, %d)", index, shards)
	}
	size := shard.PartitionSize(n, shards, index)
	if len(sh.Loads) != size {
		return dst, fmt.Errorf("checkpoint: shard %d holds %d bins, partition wants %d", index, len(sh.Loads), size)
	}
	if nwords := (size + 63) / 64; len(sh.Work) != nwords {
		return dst, fmt.Errorf("checkpoint: shard %d has %d worklist words, want %d", index, len(sh.Work), nwords)
	}
	var maxLoad int32
	for _, l := range sh.Loads {
		if l < 0 {
			return dst, fmt.Errorf("checkpoint: shard %d has negative load %d", index, l)
		}
		maxLoad = max(maxLoad, l)
	}
	width := sh.Width
	if width == 0 {
		width = 8
		for maxLoad > loadLimit(width) {
			width *= 2
		}
	}
	switch width {
	case 8, 16, 32:
		if maxLoad > loadLimit(width) {
			return dst, fmt.Errorf("checkpoint: shard %d max load %d exceeds storage width %d", index, maxLoad, width)
		}
	default:
		return dst, fmt.Errorf("checkpoint: shard %d has invalid storage width %d", index, sh.Width)
	}
	var buf bytes.Buffer
	buf.Grow(32 + 8 + size*int(width)/8 + 8 + len(sh.Work)*8)
	w := &leWriter{w: bufio.NewWriterSize(&buf, 1<<15)}
	writeShardPayload(w, sh, width)
	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.err != nil {
		return dst, fmt.Errorf("checkpoint: save: %w", w.err)
	}
	return appendFrame(dst, frameShard, uint32(index), width, compress, buf.Bytes())
}

// AppendObserverFrame encodes the observer-pipeline frame of a v2
// checkpoint and appends it to dst.
func AppendObserverFrame(dst []byte, obs *shard.PipelineSnapshot, compress bool) ([]byte, error) {
	if obs == nil {
		return dst, errors.New("checkpoint: nil observer snapshot")
	}
	if len(obs.Sketches) > maxQuantiles {
		return dst, fmt.Errorf("checkpoint: %d quantile sketches exceed %d", len(obs.Sketches), maxQuantiles)
	}
	var buf bytes.Buffer
	w := &leWriter{w: bufio.NewWriterSize(&buf, 1<<12)}
	writeObserverFields(w, obs)
	if w.err == nil {
		w.err = w.w.Flush()
	}
	if w.err != nil {
		return dst, fmt.Errorf("checkpoint: save: %w", w.err)
	}
	return appendFrame(dst, frameObserver, 0, 0, compress, buf.Bytes())
}

// framePayload wires up the streaming parse of one frame's payload: the
// next plen bytes of the stream, CRC-teed, optionally run through flate.
// close verifies exhaustion — the parser must consume exactly the declared
// payload, and a flate stream must end exactly at its last field — so a
// valid frame has precisely one byte encoding.
type framePayload struct {
	lr  *io.LimitedReader
	fr  io.ReadCloser
	src io.Reader
}

func newFramePayload(br io.Reader, crc hash.Hash32, plen uint64, enc byte) *framePayload {
	p := &framePayload{lr: &io.LimitedReader{R: br, N: int64(plen)}}
	p.src = io.TeeReader(p.lr, crc)
	if enc == 1 {
		p.fr = flate.NewReader(p.src)
		p.src = p.fr
	}
	return p
}

func (p *framePayload) close(what string) error {
	if p.fr != nil {
		var b [1]byte
		if k, _ := p.fr.Read(b[:]); k != 0 {
			return fmt.Errorf("checkpoint: %s frame decompresses past its fields", what)
		}
		p.fr.Close()
	}
	if p.lr.N != 0 {
		return fmt.Errorf("checkpoint: %s frame payload has %d trailing bytes", what, p.lr.N)
	}
	return nil
}

// readFrameHeader reads and validates the fixed frame prologue, returning
// the frame CRC with the prologue already folded in. wantEnc < 0 accepts
// either encoding (frames are self-described); otherwise the encoding must
// match the checkpoint header's compress flag.
func readFrameHeader(br io.Reader, wantKind byte, wantEnc int8) (index uint32, width, enc byte, plen uint64, crc hash.Hash32, err error) {
	var hdr [frameHeaderSize]byte
	if _, err = io.ReadFull(br, hdr[:]); err != nil {
		return 0, 0, 0, 0, nil, fmt.Errorf("checkpoint: truncated frame: %w", io.ErrUnexpectedEOF)
	}
	if hdr[0] != wantKind {
		return 0, 0, 0, 0, nil, fmt.Errorf("checkpoint: frame kind %d, want %d", hdr[0], wantKind)
	}
	if hdr[6] > 1 {
		return 0, 0, 0, 0, nil, fmt.Errorf("checkpoint: unknown frame encoding %d", hdr[6])
	}
	if wantEnc >= 0 && hdr[6] != byte(wantEnc) {
		return 0, 0, 0, 0, nil, fmt.Errorf("checkpoint: frame encoding %d does not match header flag %d", hdr[6], wantEnc)
	}
	crc = crc32.New(castagnoli)
	crc.Write(hdr[:])
	return binary.LittleEndian.Uint32(hdr[1:5]), hdr[5], hdr[6],
		binary.LittleEndian.Uint64(hdr[7:15]), crc, nil
}

// readFrameCRC consumes and verifies the frame trailer.
func readFrameCRC(br io.Reader, crc hash.Hash32, what string) error {
	var fc [4]byte
	if _, err := io.ReadFull(br, fc[:]); err != nil {
		return fmt.Errorf("checkpoint: truncated frame: %w", io.ErrUnexpectedEOF)
	}
	if binary.LittleEndian.Uint32(fc[:]) != crc.Sum32() {
		return fmt.Errorf("checkpoint: %s frame: %w", what, ErrChecksum)
	}
	return nil
}

// readShardFrame parses one shard frame from br, streaming: the payload is
// never buffered beyond the decoded slices themselves.
func readShardFrame(br io.Reader, n, s int, wantEnc int8) (int, shard.ShardSnapshot, error) {
	var zero shard.ShardSnapshot
	index, width, enc, plen, crc, err := readFrameHeader(br, frameShard, wantEnc)
	if err != nil {
		return 0, zero, err
	}
	if index >= uint32(s) {
		return 0, zero, fmt.Errorf("checkpoint: frame for shard %d of %d", index, s)
	}
	if width != 8 && width != 16 && width != 32 {
		return 0, zero, fmt.Errorf("checkpoint: shard %d frame has invalid storage width %d", index, width)
	}
	size := shard.PartitionSize(n, s, int(index))
	nwords := (size + 63) / 64
	raw := uint64(32 + 8 + size*int(width)/8 + 8 + nwords*8)
	if enc == 0 && plen != raw {
		return 0, zero, fmt.Errorf("checkpoint: shard %d frame payload %d bytes, want %d", index, plen, raw)
	}
	if enc == 1 && plen > maxCompressedLen(raw) {
		return 0, zero, fmt.Errorf("checkpoint: shard %d compressed payload %d bytes exceeds bound %d", index, plen, maxCompressedLen(raw))
	}
	p := newFramePayload(br, crc, plen, enc)
	sh, err := readShardPayload(&leReader{r: p.src}, n, s, int(index), width)
	if err != nil {
		return 0, zero, err
	}
	if err := p.close(fmt.Sprintf("shard %d", index)); err != nil {
		return 0, zero, err
	}
	if err := readFrameCRC(br, crc, fmt.Sprintf("shard %d", index)); err != nil {
		return 0, zero, err
	}
	return int(index), sh, nil
}

// readObserverFrame parses the observer frame.
func readObserverFrame(br io.Reader, wantEnc int8) (*shard.PipelineSnapshot, error) {
	index, width, enc, plen, crc, err := readFrameHeader(br, frameObserver, wantEnc)
	if err != nil {
		return nil, err
	}
	if index != 0 || width != 0 {
		return nil, fmt.Errorf("checkpoint: observer frame has index %d width %d, want 0 0", index, width)
	}
	bound := uint64(maxObserverPayload)
	if enc == 1 {
		bound = maxCompressedLen(bound)
	}
	if plen > bound {
		return nil, fmt.Errorf("checkpoint: observer payload %d bytes exceeds bound %d", plen, bound)
	}
	p := newFramePayload(br, crc, plen, enc)
	obs, err := readObserverFields(&leReader{r: p.src})
	if err != nil {
		return nil, err
	}
	if err := p.close("observer"); err != nil {
		return nil, err
	}
	if err := readFrameCRC(br, crc, "observer"); err != nil {
		return nil, err
	}
	return obs, nil
}

// DecodeShardFrame parses exactly one shard frame from data — the inverse
// of AppendShardFrame, used by the proc transport's workers on join
// payloads. The frame's self-described encoding is honored; data must hold
// the frame and nothing else.
func DecodeShardFrame(data []byte, n, shards int) (int, shard.ShardSnapshot, error) {
	br := bytes.NewReader(data)
	idx, sh, err := readShardFrame(br, n, shards, -1)
	if err != nil {
		return 0, sh, err
	}
	if br.Len() != 0 {
		return 0, sh, fmt.Errorf("checkpoint: %d trailing bytes after shard frame", br.Len())
	}
	return idx, sh, nil
}

// Save serializes snap to dst in the current format (v2, uncompressed).
// The byte stream is a pure function of the snapshot contents (no
// timestamps, no padding entropy), so two runs that reach the same state
// produce byte-identical checkpoints — the CI resume-equivalence gate
// compares files with cmp for exactly this reason.
func Save(dst io.Writer, snap *Snapshot) error { return SaveOptions(dst, snap, Options{}) }

// SaveOptions is Save with explicit serialization options. Shard frames
// are encoded concurrently (bounded window, GOMAXPROCS goroutines) and
// written in shard order; with S shards on C cores the encode runs at
// roughly min(S, C)× the single-thread rate, which matters at n = 2³⁰
// where a checkpoint is gigabytes even at width 8.
func SaveOptions(dst io.Writer, snap *Snapshot, opts Options) error {
	if err := snap.validate(); err != nil {
		return err
	}
	eng := snap.Engine
	bw := bufio.NewWriterSize(dst, 1<<16)
	err := WriteHeader(bw, Header{
		Seed:     snap.Seed,
		N:        eng.N,
		Shards:   len(eng.Shards),
		Round:    eng.Round,
		Observer: snap.Observer != nil,
		Compress: opts.Compress,
	})
	if err != nil {
		return err
	}
	workers := min(runtime.GOMAXPROCS(0), len(eng.Shards))
	type result struct {
		buf []byte
		err error
	}
	// A channel of per-frame channels keeps output in shard order while the
	// window (2×workers in-flight frames) bounds resident encoded bytes;
	// the writer drains every channel even after an error so no encoder
	// goroutine is left behind.
	frames := make(chan chan result, 2*workers)
	go func() {
		sem := make(chan struct{}, workers)
		for i := range eng.Shards {
			ch := make(chan result, 1)
			frames <- ch
			sem <- struct{}{}
			go func(i int, ch chan<- result) {
				defer func() { <-sem }()
				buf, err := AppendShardFrame(nil, &eng.Shards[i], i, eng.N, len(eng.Shards), opts.Compress)
				ch <- result{buf, err}
			}(i, ch)
		}
		close(frames)
	}()
	for ch := range frames {
		r := <-ch
		if err == nil {
			err = r.err
		}
		if err == nil {
			_, err = bw.Write(r.buf)
		}
	}
	if err == nil && snap.Observer != nil {
		var buf []byte
		if buf, err = AppendObserverFrame(nil, snap.Observer, opts.Compress); err == nil {
			_, err = bw.Write(buf)
		}
	}
	if err == nil {
		err = bw.Flush()
	}
	if err != nil {
		return fmt.Errorf("checkpoint: save: %w", err)
	}
	return nil
}

// loadV2 parses the framed format (the 12 peeked magic/version bytes are
// still unconsumed; ReadHeader re-reads them from the buffer).
func loadV2(br *bufio.Reader) (*Snapshot, error) {
	h, err := ReadHeader(br)
	if err != nil {
		return nil, err
	}
	wantEnc := int8(0)
	if h.Compress {
		wantEnc = 1
	}
	eng := &shard.EngineSnapshot{
		N:      h.N,
		Round:  h.Round,
		Shards: make([]shard.ShardSnapshot, h.Shards),
	}
	for i := range eng.Shards {
		idx, sh, err := readShardFrame(br, h.N, h.Shards, wantEnc)
		if err != nil {
			return nil, err
		}
		if idx != i {
			return nil, fmt.Errorf("checkpoint: frame for shard %d, want %d (frames are in shard order)", idx, i)
		}
		eng.Shards[i] = sh
	}
	var obs *shard.PipelineSnapshot
	if h.Observer {
		if obs, err = readObserverFrame(br, wantEnc); err != nil {
			return nil, err
		}
	}
	// The last frame must end the stream: trailing bytes would break the
	// one-state-one-encoding property the CI cmp gate and FuzzLoad rely on.
	if _, err := br.ReadByte(); err == nil {
		return nil, errors.New("checkpoint: trailing data after last frame")
	} else if err != io.EOF {
		return nil, fmt.Errorf("checkpoint: %w", err)
	}
	snap := &Snapshot{Seed: h.Seed, Engine: eng, Observer: obs}
	if err := snap.validate(); err != nil {
		return nil, err
	}
	return snap, nil
}
