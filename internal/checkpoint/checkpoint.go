// Package checkpoint is the save/restore layer for sharded runs: it gives a
// poly(n)-window simulation at n = 10⁷–10⁹ — hours of wall-clock — the
// ability to survive a restart or migrate between machines without
// perturbing the trajectory by a single draw.
//
// # Format v2 (current)
//
// A v2 checkpoint is a fixed header followed by independently checksummed
// frames — one per shard, in shard order, plus an optional observer frame —
// all little-endian:
//
//	header:
//	  magic   [8]byte  "RBBCKPT\n"
//	  version uint32   (2)
//	  seed    uint64   master seed of the run (provenance; restore reads the
//	                   serialized rng states, not this)
//	  n       uint64   number of bins
//	  shards  uint32   shard count S (the random law's decomposition)
//	  flags   uint32   bit 0: an observer frame follows the shard frames
//	                   bit 1: frame payloads are flate-compressed
//	  round   uint64   completed rounds at the cut
//	  hcrc    uint32   CRC-32C (Castagnoli) of the 40 preceding bytes
//	frame (one per shard s = 0..S-1, then the observer frame iff flag 0):
//	  kind    uint8    1 = shard, 2 = observer
//	  index   uint32   shard id (0 for the observer frame)
//	  width   uint8    storage width of the loads: 8, 16 or 32 bits
//	                   (0 for the observer frame)
//	  enc     uint8    0 = raw, 1 = flate (must match header flag bit 1)
//	  plen    uint64   encoded payload length in bytes
//	  payload plen bytes
//	  fcrc    uint32   CRC-32C of the frame from kind through payload
//	shard frame payload (before compression):
//	  rng    [4]uint64  xoshiro256** state of stream (seed, s)
//	  size   uint64     owned bins (must equal the canonical partition)
//	  loads  size × (width/8)-byte unsigned values (int32 when width = 32)
//	  nwords uint64     worklist words (must equal ceil(size/64))
//	  work   nwords × uint64
//	observer frame payload (before compression):
//	  rounds uint64; windowmax int32; windowany uint8
//	  emptymin, emptysum float64; emptyrounds uint64
//	  nq     uint32
//	  per quantile: p float64; count uint64; q, pos, want 5 × float64 each
//
// Frames carry their own CRC so a multi-process run serializes them
// concurrently — each worker encodes its own shards and streams the frames
// over its pipe; the coordinator relays bytes and never materializes the
// whole blob (see internal/shard/transport/proc). The per-frame width is
// the engine's storage width (Θ(log n) max loads w.h.p. make uint8 the
// common case), which is what shrinks a checkpoint ~4× before compression.
//
// # Format v1 (legacy, still loaded)
//
// Version 1 is the monolithic form: the same header fields (no hcrc),
// every shard section inline with int32 loads, the observer section, and a
// single trailing CRC-32C over the entire stream. Load accepts both
// versions; Save always writes v2. A v2 checkpoint at width 32 with
// compression off carries byte-identical shard payloads to v1's sections.
//
// # Integrity
//
// Load validates everything it reads — magic, version, partition arithmetic,
// non-negative loads, worklist word counts, rng-state non-degeneracy,
// observer marker monotonicity — before the engine ever sees the data, and
// verifies every CRC; corrupted or truncated input yields an error, never a
// panic and never a silently wrong resume. Decompression is bounded by the
// exact expected payload size computed from (n, S, width), so a corrupted
// length cannot demand absurd memory. The worklist words are redundant with
// the loads on purpose: shard.RestoreEngine cross-checks the two, so a
// flipped bit that survives the CRC check (it cannot, but defense in depth
// is cheap here) is still caught structurally.
//
// # Determinism contract
//
// A run saved at round t and resumed is byte-identical to the uninterrupted
// run for every (seed, n, S), S = 1 included: the snapshot carries the raw
// xoshiro256** state of every shard stream (rng.Source.State/SetState), the
// full load vector, the per-shard storage widths (the widening ratchet is
// deterministic state), and the streaming-observer accumulators, which
// together are the entire reachable state of the round protocol. An
// uncompressed checkpoint is additionally a canonical encoding — one state,
// one byte stream (FuzzLoad pins this); compressed payloads are
// deterministic within one binary but not across Go releases, so
// byte-comparison gates use uncompressed checkpoints or files produced by
// the same binary. The test suite and the CI resume-equivalence job pin
// the contract.
package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/shard"
)

// Format versions. Save writes Version; Load accepts both.
const (
	Version1 = 1
	Version2 = 2
	// Version is the current format version written by Save.
	Version = Version2
)

// magic identifies a checkpoint file.
var magic = [8]byte{'R', 'B', 'B', 'C', 'K', 'P', 'T', '\n'}

// Header flags.
const (
	// flagObserver marks a snapshot carrying an observer-pipeline section
	// (v1) or observer frame (v2).
	flagObserver = 1 << 0
	// flagCompress marks flate-compressed frame payloads (v2 only).
	flagCompress = 1 << 1
)

// Frame kinds (v2).
const (
	frameShard    = 1
	frameObserver = 2
)

// Format sanity caps: far above every supported configuration (ROADMAP
// targets n ≥ 10⁹ ≈ 2³⁰), low enough that a corrupted header cannot demand
// absurd work before the per-field validation rejects it.
const (
	maxBins      = 1 << 34
	maxShards    = 1 << 20
	maxQuantiles = 1 << 10
)

// ErrChecksum is returned by Load when a CRC does not match its payload.
var ErrChecksum = errors.New("checkpoint: CRC mismatch")

// Options configures serialization.
type Options struct {
	// Compress flate-compresses every frame payload (compress/flate at
	// BestSpeed — the sparse regime's load vectors are mostly small values,
	// so even the fastest level collapses them). Compressed output is
	// deterministic within one binary but not guaranteed across Go
	// releases; leave it off when checkpoints are compared byte-for-byte
	// across builds.
	Compress bool
}

// Snapshot is one whole-run checkpoint: the run's provenance seed, the
// sharded engine state, and (optionally) the streaming-observer state.
type Snapshot struct {
	// Seed is the master seed the run was started from. It is recorded for
	// provenance and header printing; restore uses the serialized per-shard
	// rng states.
	Seed uint64
	// Engine is the full deterministic engine state.
	Engine *shard.EngineSnapshot
	// Observer is the streaming-pipeline state, or nil if the run has no
	// observer pipeline attached.
	Observer *shard.PipelineSnapshot
}

// validate checks the in-memory snapshot shape before serialization.
func (s *Snapshot) validate() error {
	if s == nil || s.Engine == nil {
		return errors.New("checkpoint: nil snapshot or engine state")
	}
	e := s.Engine
	if e.N < 1 || e.N > maxBins {
		return fmt.Errorf("checkpoint: %d bins outside [1, %d]", e.N, int64(maxBins))
	}
	if len(e.Shards) < 1 || len(e.Shards) > e.N || len(e.Shards) > maxShards {
		return fmt.Errorf("checkpoint: %d shards for %d bins", len(e.Shards), e.N)
	}
	if e.Round < 0 {
		return fmt.Errorf("checkpoint: round %d < 0", e.Round)
	}
	if s.Observer != nil && len(s.Observer.Sketches) > maxQuantiles {
		return fmt.Errorf("checkpoint: %d quantile sketches exceed %d", len(s.Observer.Sketches), maxQuantiles)
	}
	return nil
}
