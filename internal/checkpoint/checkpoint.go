// Package checkpoint is the save/restore layer for sharded runs: it gives a
// poly(n)-window simulation at n = 10⁷–10⁸ — hours of wall-clock — the
// ability to survive a restart or migrate between machines without
// perturbing the trajectory by a single draw.
//
// # Format
//
// A checkpoint is a versioned, self-describing little-endian binary blob:
//
//	magic   [8]byte  "RBBCKPT\n"
//	version uint32   (currently 1)
//	seed    uint64   master seed of the run (provenance; restore reads the
//	                 serialized rng states, not this)
//	n       uint64   number of bins
//	shards  uint32   shard count S (the random law's decomposition)
//	flags   uint32   bit 0: an observer-pipeline section follows the shards
//	round   uint64   completed rounds at the cut
//	per shard s = 0..S-1:
//	  rng    [4]uint64  xoshiro256** state of stream (seed, s)
//	  size   uint64     owned bins (must equal the canonical partition)
//	  loads  size × int32
//	  nwords uint64     worklist words (must equal ceil(size/64))
//	  work   nwords × uint64
//	observer section (iff flag bit 0):
//	  rounds uint64; windowmax int32; windowany uint8
//	  emptymin, emptysum float64; emptyrounds uint64
//	  nq     uint32
//	  per quantile: p float64; count uint64; q, pos, want 5 × float64 each
//	trailer:
//	  crc    uint32   CRC-32C (Castagnoli) of every preceding byte
//
// # Integrity
//
// Load validates everything it reads — magic, version, partition arithmetic,
// non-negative loads, worklist word counts, rng-state non-degeneracy,
// observer marker monotonicity — before the engine ever sees the data, and
// verifies the CRC trailer; corrupted or truncated input yields an error,
// never a panic and never a silently wrong resume. The worklist words are
// redundant with the loads on purpose: shard.RestoreEngine cross-checks the
// two, so a flipped bit that survives the CRC check (it cannot, but defense
// in depth is cheap here) is still caught structurally.
//
// # Determinism contract
//
// A run saved at round t and resumed is byte-identical to the uninterrupted
// run for every (seed, n, S), S = 1 included: the snapshot carries the raw
// xoshiro256** state of every shard stream (rng.Source.State/SetState), the
// full load vector, and the streaming-observer accumulators, which together
// are the entire reachable state of the round protocol. The test suite and
// the CI resume-equivalence job pin this.
package checkpoint

import (
	"errors"
	"fmt"

	"repro/internal/shard"
)

// Version is the current format version written by Save.
const Version = 1

// magic identifies a checkpoint file.
var magic = [8]byte{'R', 'B', 'B', 'C', 'K', 'P', 'T', '\n'}

// flagObserver marks a snapshot carrying an observer-pipeline section.
const flagObserver = 1 << 0

// Format sanity caps: far above every supported configuration (ROADMAP
// targets n ≥ 10⁹ ≈ 2³⁰), low enough that a corrupted header cannot demand
// absurd work before the per-field validation rejects it.
const (
	maxBins      = 1 << 34
	maxShards    = 1 << 20
	maxQuantiles = 1 << 10
)

// ErrChecksum is returned by Load when the CRC trailer does not match the
// payload.
var ErrChecksum = errors.New("checkpoint: CRC mismatch")

// Snapshot is one whole-run checkpoint: the run's provenance seed, the
// sharded engine state, and (optionally) the streaming-observer state.
type Snapshot struct {
	// Seed is the master seed the run was started from. It is recorded for
	// provenance and header printing; restore uses the serialized per-shard
	// rng states.
	Seed uint64
	// Engine is the full deterministic engine state.
	Engine *shard.EngineSnapshot
	// Observer is the streaming-pipeline state, or nil if the run has no
	// observer pipeline attached.
	Observer *shard.PipelineSnapshot
}

// validate checks the in-memory snapshot shape before serialization.
func (s *Snapshot) validate() error {
	if s == nil || s.Engine == nil {
		return errors.New("checkpoint: nil snapshot or engine state")
	}
	e := s.Engine
	if e.N < 1 || e.N > maxBins {
		return fmt.Errorf("checkpoint: %d bins outside [1, %d]", e.N, int64(maxBins))
	}
	if len(e.Shards) < 1 || len(e.Shards) > e.N || len(e.Shards) > maxShards {
		return fmt.Errorf("checkpoint: %d shards for %d bins", len(e.Shards), e.N)
	}
	if e.Round < 0 {
		return fmt.Errorf("checkpoint: round %d < 0", e.Round)
	}
	if s.Observer != nil && len(s.Observer.Sketches) > maxQuantiles {
		return fmt.Errorf("checkpoint: %d quantile sketches exceed %d", len(s.Observer.Sketches), maxQuantiles)
	}
	return nil
}
