package checkpoint

import "repro/internal/obs"

// Checkpoint-write telemetry. Helpers rather than inline calls because
// Run's observer parameter shadows the obs package name in its body.
var (
	mCkptWrites = obs.Default.Counter("rbb_ckpt_writes_total",
		"Successful checkpoint writes (periodic, triggered, interrupt and final).")
	mCkptSeconds = obs.Default.Histogram("rbb_ckpt_write_seconds",
		"Wall-clock duration of one checkpoint write, encode and file I/O included.", nil)
)

// startCkptSpan opens the trace span of one checkpoint write on the
// checkpoint lane.
func startCkptSpan() obs.Span { return obs.StartSpan("ckpt", obs.LaneCkpt) }

// noteCkptWrite records one successful checkpoint write of the given
// duration.
func noteCkptWrite(seconds float64) {
	if obs.Enabled() {
		mCkptWrites.Inc()
		mCkptSeconds.Observe(seconds)
	}
}
