package checkpoint

import (
	"fmt"

	"repro/internal/engine"
	"repro/internal/shard"
)

// Policy configures whole-run checkpointing for Run.
type Policy struct {
	// Path is the checkpoint destination, atomically replaced on every
	// write. Empty disables checkpointing (Run degenerates to a plain
	// observe loop).
	Path string
	// Every is the period of the periodic hook: a snapshot is written after
	// every Every-th completed round. 0 writes only the final (and
	// interrupt-triggered) snapshot.
	Every int64
	// Seed is the run's master seed, recorded in the snapshot header for
	// provenance.
	Seed uint64
	// Pipeline, when non-nil, is observed after every round and its
	// accumulator state rides inside every snapshot, so resumed summaries
	// cover the whole run, not just the post-resume suffix.
	Pipeline *shard.Pipeline
	// Interrupt, when non-nil, is the kill hook: once it is closed (or a
	// value arrives), Run writes a snapshot at the next round boundary and
	// returns early. cmd/rbb-sim wires SIGTERM/SIGINT into it.
	Interrupt <-chan struct{}
}

// Run drives p to round target under pol, notifying obs (and pol.Pipeline)
// after every round. All checkpoint hooks are barrier-synchronized for
// free: Engine.Step returns only after the release and commit barriers, so
// every snapshot taken between Steps is a consistent whole-run cut — no
// extra synchronization protocol exists, by construction.
//
// Run returns the number of completed rounds and whether it stopped early
// on pol.Interrupt. When pol.Path is set, a snapshot is on disk at return:
// written every pol.Every rounds, at interruption, and at normal
// completion.
func Run(p *shard.Process, target int64, pol Policy, obs ...engine.Observer) (int64, bool, error) {
	if pol.Pipeline != nil {
		obs = append(obs, pol.Pipeline)
	}
	write := func() error {
		if pol.Path == "" {
			return nil
		}
		eng, err := p.Snapshot()
		if err != nil {
			return err
		}
		snap := &Snapshot{Seed: pol.Seed, Engine: eng}
		if pol.Pipeline != nil {
			snap.Observer = pol.Pipeline.Snapshot()
		}
		return WriteFile(pol.Path, snap)
	}
	for p.Round() < target {
		p.Step()
		for _, o := range obs {
			o.Observe(p)
		}
		select {
		case <-pol.Interrupt:
			if err := write(); err != nil {
				return p.Round(), true, fmt.Errorf("interrupt snapshot: %w", err)
			}
			return p.Round(), true, nil
		default:
		}
		if pol.Every > 0 && p.Round()%pol.Every == 0 && p.Round() < target {
			if err := write(); err != nil {
				return p.Round(), false, fmt.Errorf("periodic snapshot: %w", err)
			}
		}
	}
	if err := write(); err != nil {
		return p.Round(), false, fmt.Errorf("final snapshot: %w", err)
	}
	return p.Round(), false, nil
}

// Resume rebuilds a live process and (optionally) its observer pipeline
// from a snapshot, applying opts for Workers. The snapshot's shard count is
// authoritative (it is part of the saved random law).
func Resume(snap *Snapshot, opts shard.Options) (*shard.Process, *shard.Pipeline, error) {
	if err := snap.validate(); err != nil {
		return nil, nil, err
	}
	p, err := shard.RestoreProcess(snap.Engine, opts)
	if err != nil {
		return nil, nil, err
	}
	var pipe *shard.Pipeline
	if snap.Observer != nil {
		pipe, err = shard.RestorePipeline(snap.Observer)
		if err != nil {
			return nil, nil, err
		}
	}
	return p, pipe, nil
}
