package checkpoint

import (
	"context"
	"fmt"
	"io"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
)

// Policy configures whole-run checkpointing for Run.
type Policy struct {
	// Path is the checkpoint destination, atomically replaced on every
	// write. Empty disables checkpointing (Run degenerates to a plain
	// observe loop, still cancellable through its context).
	Path string
	// Every is the period of the periodic hook: a snapshot is written after
	// every Every-th completed round. 0 writes only the final (and
	// interrupt- or trigger-driven) snapshots.
	Every int64
	// Seed is the run's master seed, recorded in the snapshot header for
	// provenance.
	Seed uint64
	// Pipeline, when non-nil, is observed after every round and its
	// accumulator state rides inside every snapshot, so resumed summaries
	// cover the whole run, not just the post-resume suffix.
	Pipeline *shard.Pipeline
	// Trigger, when non-nil, requests an on-demand snapshot: each value
	// received causes a write at the next round boundary without stopping
	// the run. The service frontend wires its checkpoint-now endpoint into
	// it.
	Trigger <-chan struct{}
	// InterruptSnapshot, if non-nil, is consulted when ctx is cancelled:
	// returning false skips the stop snapshot (the run still stops). The
	// service frontend uses it to avoid writing — and immediately
	// deleting — a full snapshot when the stop is a client cancellation
	// rather than a shutdown; at n = 10⁸ that is ~0.5 GB of pointless
	// file I/O per cancel. nil means always snapshot.
	InterruptSnapshot func() bool
	// Compress flate-compresses checkpoint frame payloads (see
	// Options.Compress for the determinism caveat).
	Compress bool
	// OnWrite, if non-nil, is called after every successful checkpoint
	// write with the wall-clock time the write took (snapshot or stream,
	// encode and file I/O included). cmd/rbb-sim feeds its
	// ckpt_encode_seconds summary field from it.
	OnWrite func(seconds float64)
}

// Process is the engine surface Run drives: a round stepper that can
// snapshot its complete deterministic state between rounds. *shard.Process
// implements it, and so does the multi-process coordinator engine of
// internal/shard/transport/proc — which is how `rbb-sim -procs P` shares
// this runner (periodic, triggered and snapshot-and-stop checkpoints)
// with single-process runs.
type Process interface {
	engine.Stepper
	Snapshot() (*shard.EngineSnapshot, error)
}

// StreamProcess is implemented by engines that serialize their own
// checkpoint stream — the proc transport's coordinator, whose workers
// encode their shards concurrently into self-checksummed frames that the
// coordinator relays straight to dst. Run prefers this path over
// Process.Snapshot when it is available: it removes the coordinator-side
// snapshot gather and whole-blob buffer from checkpointing entirely.
type StreamProcess interface {
	StreamCheckpoint(dst io.Writer, seed uint64, obs *shard.PipelineSnapshot, opts Options) error
}

// Run drives p to round target under pol, notifying obs (and pol.Pipeline)
// after every round. All checkpoint hooks are barrier-synchronized for
// free: Engine.Step returns only after the release and commit barriers, so
// every snapshot taken between Steps is a consistent whole-run cut — no
// extra synchronization protocol exists, by construction.
//
// Cancelling ctx is the snapshot-and-stop hook: Run writes a snapshot at
// the next round boundary and returns early with stopped = true. Both
// cmd/rbb-sim and rbb-serve share this path — the CLI derives ctx from
// SIGTERM/SIGINT via signal.NotifyContext, the server from its shutdown
// and per-run cancellation contexts — so there is exactly one
// snapshot-and-stop implementation.
//
// Run returns the number of completed rounds and whether it stopped early
// on ctx. When pol.Path is set, a snapshot is on disk at return: written
// every pol.Every rounds, on each pol.Trigger receive, at cancellation,
// and at normal completion.
func Run(ctx context.Context, p Process, target int64, pol Policy, obs ...engine.Observer) (int64, bool, error) {
	// The pipeline observes before the caller's observers, so a caller
	// observer reading the pipeline (the server's stream events do) sees
	// the accumulators already folded over the round it is looking at.
	if pol.Pipeline != nil {
		obs = append([]engine.Observer{pol.Pipeline}, obs...)
	}
	// written remembers the round of the last successful write, so a
	// trigger snapshot landing on a periodic boundary or the final round
	// does not produce two identical back-to-back full writes.
	written := int64(-1)
	write := func() error {
		if pol.Path == "" {
			return nil
		}
		span := startCkptSpan()
		start := time.Now()
		var obs *shard.PipelineSnapshot
		if pol.Pipeline != nil {
			obs = pol.Pipeline.Snapshot()
		}
		opts := Options{Compress: pol.Compress}
		if sp, ok := p.(StreamProcess); ok {
			err := WriteFileFunc(pol.Path, func(w io.Writer) error {
				return sp.StreamCheckpoint(w, pol.Seed, obs, opts)
			})
			if err != nil {
				return err
			}
		} else {
			eng, err := p.Snapshot()
			if err != nil {
				return err
			}
			snap := &Snapshot{Seed: pol.Seed, Engine: eng, Observer: obs}
			if err := WriteFileOptions(pol.Path, snap, opts); err != nil {
				return err
			}
		}
		seconds := time.Since(start).Seconds()
		noteCkptWrite(seconds)
		span.End()
		if pol.OnWrite != nil {
			pol.OnWrite(seconds)
		}
		written = p.Round()
		return nil
	}
	for p.Round() < target {
		p.Step()
		for _, o := range obs {
			o.Observe(p)
		}
		// Cancellation wins over a simultaneous trigger: both cases write,
		// but only cancellation stops, so checking it first keeps shutdown
		// latency one round.
		select {
		case <-ctx.Done():
			if pol.InterruptSnapshot == nil || pol.InterruptSnapshot() {
				if err := write(); err != nil {
					return p.Round(), true, fmt.Errorf("interrupt snapshot: %w", err)
				}
			}
			return p.Round(), true, nil
		default:
		}
		select {
		case <-pol.Trigger:
			if err := write(); err != nil {
				return p.Round(), false, fmt.Errorf("triggered snapshot: %w", err)
			}
		default:
		}
		if pol.Every > 0 && p.Round()%pol.Every == 0 && p.Round() < target && written != p.Round() {
			if err := write(); err != nil {
				return p.Round(), false, fmt.Errorf("periodic snapshot: %w", err)
			}
		}
	}
	if written != p.Round() {
		if err := write(); err != nil {
			return p.Round(), false, fmt.Errorf("final snapshot: %w", err)
		}
	}
	return p.Round(), false, nil
}

// Resume rebuilds a live process and (optionally) its observer pipeline
// from a snapshot, applying opts for Workers. The snapshot's shard count is
// authoritative (it is part of the saved random law).
func Resume(snap *Snapshot, opts shard.Options) (*shard.Process, *shard.Pipeline, error) {
	if err := snap.validate(); err != nil {
		return nil, nil, err
	}
	p, err := shard.RestoreProcess(snap.Engine, opts)
	if err != nil {
		return nil, nil, err
	}
	var pipe *shard.Pipeline
	if snap.Observer != nil {
		pipe, err = shard.RestorePipeline(snap.Observer)
		if err != nil {
			return nil, nil, err
		}
	}
	return p, pipe, nil
}
