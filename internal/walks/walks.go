// Package walks implements the multi-token traversal protocol of §4:
// m tokens perform random walks on a graph under the constraint that every
// node processes and releases at most one token per round (FIFO order).
// On the complete graph with self-loops this is exactly the repeated
// balls-into-bins process; on other graphs it is the general protocol the
// paper's §5 conjectures about.
//
// The engine tracks per-token visited sets, so it measures the parallel
// cover time (Corollary 1: O(n log² n) on the clique, w.h.p.), per-token
// progress, and node congestion (max load). A single-token baseline walk
// (SingleWalkCover) provides the O(n log n) reference the corollary
// compares against.
package walks

import (
	"errors"
	"fmt"

	"repro/internal/bitset"
	"repro/internal/engine"
	"repro/internal/graph"
	"repro/internal/rng"
)

// Options configures a Traversal.
type Options struct {
	// TrackCover enables the m×n visited matrix and cover detection
	// (required by RunUntilCovered). Off by default because it costs m·n
	// bits.
	TrackCover bool
}

// Traversal is a running multi-token traversal. Create with New; not safe
// for concurrent use.
type Traversal struct {
	g graph.Graph
	n int
	m int

	src *rng.Source

	queue [][]int32
	head  []int32
	eng   *engine.State

	pos  []int32
	hops []int64

	moves    []move
	reassign []int32 // scratch load vector for ReassignAll

	round     int64
	windowMax int32

	trackCover bool
	visited    *bitset.Matrix
	visitCount []int32
	covered    int
	coverRound int64
}

type move struct {
	token int32
	dest  int32
}

// New builds a traversal with loads[u] tokens initially queued at node u
// (tokens numbered in node order). It returns an error for a nil graph or
// source, a load vector of the wrong length, or negative loads.
func New(g graph.Graph, loads []int32, src *rng.Source, opts Options) (*Traversal, error) {
	if g == nil {
		return nil, errors.New("walks: New with nil graph")
	}
	if src == nil {
		return nil, errors.New("walks: New with nil rng source")
	}
	n := g.N()
	if len(loads) != n {
		return nil, fmt.Errorf("walks: %d loads for %d nodes", len(loads), n)
	}
	var m int64
	for i, l := range loads {
		if l < 0 {
			return nil, fmt.Errorf("walks: node %d has negative load %d", i, l)
		}
		m += int64(l)
	}
	if m > int64(1)<<31-1 {
		return nil, fmt.Errorf("walks: %d tokens exceed capacity", m)
	}
	eng, err := engine.New(loads, engine.Options{})
	if err != nil {
		return nil, fmt.Errorf("walks: %w", err)
	}
	t := &Traversal{
		g:          g,
		n:          n,
		m:          int(m),
		src:        src,
		queue:      make([][]int32, n),
		head:       make([]int32, n),
		eng:        eng,
		pos:        make([]int32, m),
		hops:       make([]int64, m),
		moves:      make([]move, 0, n),
		trackCover: opts.TrackCover,
		coverRound: -1,
	}
	tok := int32(0)
	for u := 0; u < n; u++ {
		l := loads[u]
		if l > 0 {
			q := make([]int32, l)
			for i := int32(0); i < l; i++ {
				q[i] = tok
				t.pos[tok] = int32(u)
				tok++
			}
			t.queue[u] = q
		}
	}
	if t.trackCover {
		t.visited = bitset.NewMatrix(t.m, n)
		t.visitCount = make([]int32, t.m)
		for k := 0; k < t.m; k++ {
			t.visited.TestAndSet(k, int(t.pos[k]))
			t.visitCount[k] = 1
			if n == 1 {
				t.covered++
			}
		}
		if t.m == 0 || (n == 1 && t.covered == t.m) {
			t.coverRound = 0
		}
	}
	t.windowMax = t.eng.MaxLoad()
	return t, nil
}

// NewOnePerNode builds the canonical traversal start: one token on every
// node (m = n), the paper's multi-token setting.
func NewOnePerNode(g graph.Graph, src *rng.Source, opts Options) (*Traversal, error) {
	if g == nil {
		return nil, errors.New("walks: NewOnePerNode with nil graph")
	}
	loads := make([]int32, g.N())
	for i := range loads {
		loads[i] = 1
	}
	return New(g, loads, src, opts)
}

// Step advances one synchronous round: every non-empty node releases its
// oldest token to a uniformly random neighbor; all moves land after all
// extractions. Node queue lengths and load statistics live in the shared
// stepping layer, which visits non-empty nodes in increasing node order —
// the same order (and therefore the same draw sequence) as a dense scan.
func (t *Traversal) Step() {
	n := t.n
	moves := t.moves[:0]
	t.eng.ReleaseEach(func(u int) {
		q := t.queue[u]
		h := t.head[u]
		token := q[h]
		h++
		if int(h) == len(q) {
			t.queue[u] = q[:0]
			h = 0
		} else if h >= 64 && int(h)*2 >= len(q) {
			nLive := copy(q, q[h:])
			t.queue[u] = q[:nLive]
			h = 0
		}
		t.head[u] = h
		dest := int32(t.g.Sample(u, t.src))
		moves = append(moves, move{token: token, dest: dest})
	})
	now := t.round + 1
	for _, mv := range moves {
		k := mv.token
		u := mv.dest
		t.queue[u] = append(t.queue[u], k)
		t.eng.Deposit(int(u))
		t.pos[k] = u
		t.hops[k]++
		if t.trackCover && !t.visited.TestAndSet(int(k), int(u)) {
			t.visitCount[k]++
			if int(t.visitCount[k]) == n {
				t.covered++
				if t.covered == t.m && t.coverRound < 0 {
					t.coverRound = now
				}
			}
		}
	}
	t.eng.Commit()
	t.moves = moves
	t.round = now
	if m := t.eng.MaxLoad(); m > t.windowMax {
		t.windowMax = m
	}
}

// Run advances k rounds.
func (t *Traversal) Run(k int64) {
	for i := int64(0); i < k; i++ {
		t.Step()
	}
}

// ReassignAll moves every token to positions[token] and rebuilds the FIFO
// queues in token order — the §4.1 adversarial fault. Visited sets are
// preserved (and the new position counts as visited). The token count and
// graph are unchanged.
func (t *Traversal) ReassignAll(positions []int32) error {
	if len(positions) != t.m {
		return fmt.Errorf("walks: ReassignAll with %d positions, want %d", len(positions), t.m)
	}
	for k, p := range positions {
		if p < 0 || int(p) >= t.n {
			return fmt.Errorf("walks: token %d assigned to invalid node %d", k, p)
		}
	}
	for u := 0; u < t.n; u++ {
		t.queue[u] = t.queue[u][:0]
		t.head[u] = 0
	}
	if t.reassign == nil {
		t.reassign = make([]int32, t.n)
	}
	loads := t.reassign
	for i := range loads {
		loads[i] = 0
	}
	for k, p := range positions {
		t.queue[p] = append(t.queue[p], int32(k))
		loads[p]++
		t.pos[k] = p
		if t.trackCover && !t.visited.TestAndSet(k, int(p)) {
			t.visitCount[k]++
			if int(t.visitCount[k]) == t.n {
				t.covered++
				if t.covered == t.m && t.coverRound < 0 {
					t.coverRound = t.round
				}
			}
		}
	}
	if err := t.eng.Reload(loads); err != nil {
		return err
	}
	if m := t.eng.MaxLoad(); m > t.windowMax {
		t.windowMax = m
	}
	return nil
}

// N returns the node count.
func (t *Traversal) N() int { return t.n }

// Tokens returns the token count m.
func (t *Traversal) Tokens() int { return t.m }

// Graph returns the underlying graph.
func (t *Traversal) Graph() graph.Graph { return t.g }

// Round returns the number of completed rounds.
func (t *Traversal) Round() int64 { return t.round }

// MaxLoad returns the current maximum node congestion.
func (t *Traversal) MaxLoad() int32 { return t.eng.MaxLoad() }

// WindowMaxLoad returns the running maximum congestion since construction.
func (t *Traversal) WindowMaxLoad() int32 { return t.windowMax }

// EmptyNodes returns the number of token-free nodes.
func (t *Traversal) EmptyNodes() int { return t.eng.EmptyBins() }

// EmptyBins returns the number of token-free nodes (engine.Stepper naming).
func (t *Traversal) EmptyBins() int { return t.eng.EmptyBins() }

// NonEmptyBins returns the number of nodes currently holding tokens.
func (t *Traversal) NonEmptyBins() int { return t.eng.NonEmptyBins() }

// Load returns the queue length at node u.
func (t *Traversal) Load(u int) int32 { return t.eng.Load(u) }

// LoadsCopy returns a fresh copy of the per-node queue-length vector.
func (t *Traversal) LoadsCopy() []int32 { return t.eng.LoadsCopy() }

// Position returns the node currently holding token k.
func (t *Traversal) Position(k int) int { return int(t.pos[k]) }

// Hops returns the number of walk steps token k has performed.
func (t *Traversal) Hops(k int) int64 { return t.hops[k] }

// MinHops returns the minimum progress over tokens.
func (t *Traversal) MinHops() int64 {
	if t.m == 0 {
		return 0
	}
	min := t.hops[0]
	for _, h := range t.hops[1:] {
		if h < min {
			min = h
		}
	}
	return min
}

// Covered returns the number of tokens that have visited every node.
func (t *Traversal) Covered() int { return t.covered }

// CoverRound returns the parallel cover time — the first round by which
// every token had visited every node — or −1 if not yet reached (or cover
// tracking is off).
func (t *Traversal) CoverRound() int64 { return t.coverRound }

// VisitCount returns the number of distinct nodes token k has visited
// (0 when TrackCover is off).
func (t *Traversal) VisitCount(k int) int {
	if !t.trackCover {
		return 0
	}
	return int(t.visitCount[k])
}

// RunUntilCovered steps until the parallel cover completes or maxRounds
// elapse; requires TrackCover.
func (t *Traversal) RunUntilCovered(maxRounds int64) (int64, bool) {
	if !t.trackCover {
		return -1, false
	}
	for i := int64(0); t.coverRound < 0 && i < maxRounds; i++ {
		t.Step()
	}
	return t.coverRound, t.coverRound >= 0
}

// CheckInvariants verifies queue/load/position consistency.
func (t *Traversal) CheckInvariants() error {
	if err := t.eng.CheckInvariants(); err != nil {
		return fmt.Errorf("walks: %w", err)
	}
	seen := make([]bool, t.m)
	var total int64
	for u := 0; u < t.n; u++ {
		live := t.queue[u][t.head[u]:]
		if int32(len(live)) != t.eng.Load(u) {
			return fmt.Errorf("walks: node %d queue %d != load %d", u, len(live), t.eng.Load(u))
		}
		total += int64(len(live))
		for _, k := range live {
			if k < 0 || int(k) >= t.m {
				return fmt.Errorf("walks: node %d holds invalid token %d", u, k)
			}
			if seen[k] {
				return fmt.Errorf("walks: token %d appears twice", k)
			}
			seen[k] = true
			if t.pos[k] != int32(u) {
				return fmt.Errorf("walks: token %d position %d but found at %d", k, t.pos[k], u)
			}
		}
	}
	if total != int64(t.m) {
		return fmt.Errorf("walks: %d tokens in queues, want %d", total, t.m)
	}
	return nil
}

// SingleWalkCover runs one token's simple random walk from start and
// returns its cover time (first round all nodes visited), capped at
// maxRounds. This is the baseline Corollary 1 compares the parallel cover
// time against.
func SingleWalkCover(g graph.Graph, start int, src *rng.Source, maxRounds int64) (int64, bool) {
	if g == nil || src == nil {
		return -1, false
	}
	n := g.N()
	if start < 0 || start >= n {
		return -1, false
	}
	visited := bitset.New(n)
	visited.Set(start)
	remaining := n - 1
	v := start
	for t := int64(1); t <= maxRounds; t++ {
		v = g.Sample(v, src)
		if !visited.TestAndSet(v) {
			remaining--
			if remaining == 0 {
				return t, true
			}
		}
	}
	return maxRounds, remaining == 0
}
