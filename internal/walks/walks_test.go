package walks

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func completeGraph(t testing.TB, n int) *graph.Complete {
	g, err := graph.NewComplete(n)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestNewValidation(t *testing.T) {
	g := completeGraph(t, 4)
	r := rng.New(1)
	if _, err := New(nil, []int32{1}, r, Options{}); err == nil {
		t.Error("nil graph accepted")
	}
	if _, err := New(g, []int32{1, 1, 1, 1}, nil, Options{}); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New(g, []int32{1, 1}, r, Options{}); err == nil {
		t.Error("wrong-length loads accepted")
	}
	if _, err := New(g, []int32{1, -1, 1, 1}, r, Options{}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewOnePerNode(nil, r, Options{}); err == nil {
		t.Error("NewOnePerNode nil graph accepted")
	}
}

func TestOnePerNodeSetup(t *testing.T) {
	g := completeGraph(t, 8)
	tr, err := NewOnePerNode(g, rng.New(2), Options{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Tokens() != 8 || tr.N() != 8 {
		t.Fatal("dims wrong")
	}
	for k := 0; k < 8; k++ {
		if tr.Position(k) != k {
			t.Fatalf("token %d starts at %d", k, tr.Position(k))
		}
		if tr.VisitCount(k) != 1 {
			t.Fatalf("token %d initial visits %d", k, tr.VisitCount(k))
		}
	}
	if tr.MaxLoad() != 1 || tr.EmptyNodes() != 0 {
		t.Fatal("initial stats wrong")
	}
	if tr.Graph() != g {
		t.Fatal("graph accessor wrong")
	}
}

func TestInvariantsOverRun(t *testing.T) {
	for _, mk := range []func() graph.Graph{
		func() graph.Graph { return completeGraph(t, 24) },
		func() graph.Graph { g, _ := graph.NewRing(24); return g },
		func() graph.Graph { g, _ := graph.NewTorus(4, 6); return g },
		func() graph.Graph { g, _ := graph.NewHypercube(4); return g },
	} {
		g := mk()
		tr, err := NewOnePerNode(g, rng.New(3), Options{})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 300; i++ {
			tr.Step()
			if err := tr.CheckInvariants(); err != nil {
				t.Fatalf("%s round %d: %v", g.Name(), i, err)
			}
		}
	}
}

func TestCliqueEquivalenceToProcessLaw(t *testing.T) {
	// On the clique with self-loops, walk congestion follows the repeated
	// balls-into-bins law: n/4 empty-bin bound should hold (Lemma 1).
	const n = 256
	g := completeGraph(t, n)
	tr, err := NewOnePerNode(g, rng.New(5), Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 1000; i++ {
		tr.Step()
		if tr.EmptyNodes() < n/4 {
			t.Fatalf("round %d: %d empty nodes < n/4", i+1, tr.EmptyNodes())
		}
	}
	if tr.WindowMaxLoad() > int32(4*math.Log(n)) {
		t.Fatalf("window max load %d exceeds 4 ln n", tr.WindowMaxLoad())
	}
}

func TestParallelCoverClique(t *testing.T) {
	// Corollary 1 shape at test scale: parallel cover on the clique within
	// c·n·ln²n rounds. For n = 64: n ln² n ≈ 1107.
	const n = 64
	g := completeGraph(t, n)
	tr, err := NewOnePerNode(g, rng.New(7), Options{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	lim := int64(20 * float64(n) * math.Pow(math.Log(n), 2))
	round, ok := tr.RunUntilCovered(lim)
	if !ok {
		t.Fatalf("no parallel cover within %d rounds", lim)
	}
	// Single-token cover is ≥ n ln n ≈ 266; parallel must be at least the
	// single-token minimum n−1.
	if round < n-1 {
		t.Fatalf("cover round %d < n-1", round)
	}
	if tr.Covered() != n {
		t.Fatalf("covered = %d", tr.Covered())
	}
	t.Logf("parallel cover at round %d (n ln² n = %.0f)", round, float64(n)*math.Pow(math.Log(n), 2))
}

func TestRunUntilCoveredRequiresTracking(t *testing.T) {
	tr, err := NewOnePerNode(completeGraph(t, 4), rng.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if r, ok := tr.RunUntilCovered(10); ok || r != -1 {
		t.Fatal("cover without tracking should fail")
	}
}

func TestSingleWalkCoverClique(t *testing.T) {
	// Coupon collector: expected cover ≈ n H_n ≈ n ln n. For n = 128 that
	// is ≈ 695; within 20x is a safe w.h.p. band.
	const n = 128
	g := completeGraph(t, n)
	r := rng.New(9)
	round, ok := SingleWalkCover(g, 0, r, int64(40*n*8))
	if !ok {
		t.Fatal("single walk did not cover")
	}
	if round < n-1 {
		t.Fatalf("cover %d < n-1", round)
	}
}

func TestSingleWalkCoverRing(t *testing.T) {
	// Ring cover time is Θ(n²).
	const n = 32
	g, err := graph.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(11)
	round, ok := SingleWalkCover(g, 0, r, int64(100*n*n))
	if !ok {
		t.Fatal("ring walk did not cover")
	}
	if round < n-1 {
		t.Fatalf("cover %d < n-1", round)
	}
}

func TestSingleWalkCoverErrors(t *testing.T) {
	g := completeGraph(t, 4)
	r := rng.New(1)
	if _, ok := SingleWalkCover(nil, 0, r, 10); ok {
		t.Error("nil graph accepted")
	}
	if _, ok := SingleWalkCover(g, 0, nil, 10); ok {
		t.Error("nil source accepted")
	}
	if _, ok := SingleWalkCover(g, 9, r, 10); ok {
		t.Error("bad start accepted")
	}
	if _, ok := SingleWalkCover(g, 0, r, 1); ok {
		t.Error("cover in 1 round on 4 nodes should be impossible")
	}
}

func TestReassignAll(t *testing.T) {
	const n = 16
	tr, err := NewOnePerNode(completeGraph(t, n), rng.New(13), Options{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	tr.Run(50)
	// Adversary: all tokens onto node 3.
	positions := make([]int32, n)
	for i := range positions {
		positions[i] = 3
	}
	if err := tr.ReassignAll(positions); err != nil {
		t.Fatal(err)
	}
	if tr.Load(3) != n || tr.MaxLoad() != n {
		t.Fatalf("load(3) = %d after reassign", tr.Load(3))
	}
	if tr.EmptyNodes() != n-1 {
		t.Fatalf("empty = %d", tr.EmptyNodes())
	}
	for k := 0; k < n; k++ {
		if tr.Position(k) != 3 {
			t.Fatalf("token %d at %d", k, tr.Position(k))
		}
	}
	if err := tr.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Visits preserved and node 3 marked visited for all.
	for k := 0; k < n; k++ {
		if tr.VisitCount(k) < 2 {
			t.Fatalf("token %d lost visit history", k)
		}
	}
}

func TestReassignAllValidation(t *testing.T) {
	tr, err := NewOnePerNode(completeGraph(t, 4), rng.New(1), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.ReassignAll([]int32{0, 0}); err == nil {
		t.Error("wrong length accepted")
	}
	if err := tr.ReassignAll([]int32{0, 1, 2, 9}); err == nil {
		t.Error("invalid node accepted")
	}
}

func TestReassignThenRecover(t *testing.T) {
	// After an adversarial concentration the process should still make
	// progress and eventually cover (self-stabilization in action).
	const n = 24
	tr, err := NewOnePerNode(completeGraph(t, n), rng.New(17), Options{TrackCover: true})
	if err != nil {
		t.Fatal(err)
	}
	positions := make([]int32, n)
	if err := tr.ReassignAll(positions); err != nil { // all to node 0
		t.Fatal(err)
	}
	round, ok := tr.RunUntilCovered(int64(200 * n * 25))
	if !ok {
		t.Fatal("no cover after adversarial concentration")
	}
	if round <= 0 {
		t.Fatal("cover round must be positive")
	}
}

func TestHopsProgress(t *testing.T) {
	const n = 64
	tr, err := NewOnePerNode(completeGraph(t, n), rng.New(19), Options{})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 2048
	tr.Run(rounds)
	bound := int64(float64(rounds) / (8 * math.Log(n)))
	if got := tr.MinHops(); got < bound {
		t.Fatalf("min hops %d < %d", got, bound)
	}
	var total int64
	for k := 0; k < n; k++ {
		total += tr.Hops(k)
	}
	// Total hops = total departures ≤ n per round.
	if total > int64(n)*rounds {
		t.Fatalf("total hops %d exceeds n·t", total)
	}
}

func TestTokenConservationProperty(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		g, err := graph.NewTorus(4, 4)
		if err != nil {
			return false
		}
		tr, err := NewOnePerNode(g, r, Options{})
		if err != nil {
			return false
		}
		tr.Run(150)
		return tr.CheckInvariants() == nil
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() *Traversal {
		tr, err := NewOnePerNode(completeGraph(t, 32), rng.New(99), Options{})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := mk(), mk()
	a.Run(300)
	b.Run(300)
	for u := 0; u < 32; u++ {
		if a.Load(u) != b.Load(u) {
			t.Fatal("same seed diverged")
		}
	}
}

func BenchmarkTraversalStepClique1024(b *testing.B) {
	g, err := graph.NewComplete(1024)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := NewOnePerNode(g, rng.New(1), Options{TrackCover: true})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Step()
	}
}

func BenchmarkSingleWalkStep(b *testing.B) {
	g, err := graph.NewComplete(1024)
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(1)
	v := 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v = g.Sample(v, r)
	}
	_ = v
}
