package shard

import "repro/internal/obs"

// Telemetry of the round protocol. Everything here is observational —
// durations and counts recorded after the fact — and is never read back by
// the kernel, so trajectories are byte-identical with metrics on or off
// (see the obs package doc and the neutrality test in cmd/rbb-sim).
var (
	mPhaseRelease = obs.Default.Histogram("rbb_phase_seconds",
		"Wall-clock duration of one round-protocol phase across all owned shards.",
		nil, obs.Label{Key: "phase", Value: "release"})
	mPhaseCommit = obs.Default.Histogram("rbb_phase_seconds",
		"Wall-clock duration of one round-protocol phase across all owned shards.",
		nil, obs.Label{Key: "phase", Value: "commit"})
	mRounds = obs.Default.Counter("rbb_rounds_total",
		"Completed simulation rounds.")
	mExchangeBalls = obs.Default.Counter("rbb_exchange_balls_total",
		"Balls moved through the exchange (drained at commit).")
	mExchangeMsgs = obs.Default.Counter("rbb_exchange_messages_total",
		"Non-empty shard-to-shard exchange buffers drained at commit.")
)
