package shard

import (
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rng"
)

// TestSnapshotResumeExactTrajectory is the package-level statement of the
// checkpoint determinism contract: a process saved at round t and restored
// into a fresh engine produces loads and statistics byte-identical to the
// uninterrupted run at every subsequent round, for S = 1 and S > 1 and for
// both canonical starts.
func TestSnapshotResumeExactTrajectory(t *testing.T) {
	const (
		n    = 257 // deliberately not a power of two
		seed = 13
		cut  = 150
		tail = 200
	)
	for _, shards := range []int{1, 3, 8} {
		for name, loads := range map[string][]int32{
			"one-per-bin": config.OnePerBin(n),
			"all-in-one":  config.AllInOne(n, n),
		} {
			full, err := NewProcess(loads, seed, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			half, err := NewProcess(loads, seed, Options{Shards: shards})
			if err != nil {
				t.Fatal(err)
			}
			full.Run(cut)
			half.Run(cut)
			snap, err := half.Snapshot()
			if err != nil {
				t.Fatal(err)
			}
			resumed, err := RestoreProcess(snap, Options{})
			if err != nil {
				t.Fatalf("S=%d %s: %v", shards, name, err)
			}
			if resumed.Round() != cut || resumed.Balls() != half.Balls() {
				t.Fatalf("S=%d %s: restored round=%d balls=%d", shards, name, resumed.Round(), resumed.Balls())
			}
			if err := resumed.CheckInvariants(); err != nil {
				t.Fatalf("S=%d %s: %v", shards, name, err)
			}
			for r := 0; r < tail; r++ {
				full.Step()
				resumed.Step()
				if full.MaxLoad() != resumed.MaxLoad() || full.EmptyBins() != resumed.EmptyBins() {
					t.Fatalf("S=%d %s: stats diverge at round %d", shards, name, full.Round())
				}
			}
			got, want := resumed.LoadsCopy(), full.LoadsCopy()
			for u := range got {
				if got[u] != want[u] {
					t.Fatalf("S=%d %s: bin %d: resumed %d vs uninterrupted %d", shards, name, u, got[u], want[u])
				}
			}
		}
	}
}

// TestSnapshotResumeSingleShardMatchesSequential pins S=1 parity across a
// checkpoint boundary: the resumed single-shard process still reproduces
// the sequential core.Process driven by rng.NewStream(seed, 0) exactly.
func TestSnapshotResumeSingleShardMatchesSequential(t *testing.T) {
	const (
		n    = 129
		seed = 7
		cut  = 120
		tail = 280
	)
	loads := config.AllInOne(n, n)
	p, err := NewProcess(loads, seed, Options{Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := core.NewProcess(loads, rng.NewStream(seed, 0))
	if err != nil {
		t.Fatal(err)
	}
	p.Run(cut)
	ref.Run(cut)
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := RestoreProcess(snap, Options{})
	if err != nil {
		t.Fatal(err)
	}
	resumed.Run(tail)
	ref.Run(tail)
	got, want := resumed.LoadsCopy(), ref.LoadsCopy()
	for u := range got {
		if got[u] != want[u] {
			t.Fatalf("bin %d: resumed %d vs sequential %d", u, got[u], want[u])
		}
	}
}

// TestSnapshotWorkerInvariance: the restored trajectory does not depend on
// the restored engine's worker count.
func TestSnapshotWorkerInvariance(t *testing.T) {
	const (
		n      = 200
		seed   = 3
		shards = 4
	)
	p, err := NewProcess(config.OnePerBin(n), seed, Options{Shards: shards})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(80)
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var ref []int32
	for _, workers := range []int{1, 2, 4} {
		r, err := RestoreProcess(snap, Options{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		r.Run(120)
		loads := r.LoadsCopy()
		if ref == nil {
			ref = loads
			continue
		}
		for u := range loads {
			if loads[u] != ref[u] {
				t.Fatalf("workers=%d: bin %d diverges", workers, u)
			}
		}
	}
}

// TestRestoreEngineRejectsCorruptSnapshots: every structural violation a
// decoder could let through is still caught at restore.
func TestRestoreEngineRejectsCorruptSnapshots(t *testing.T) {
	p, err := NewProcess(config.OnePerBin(64), 1, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	p.Run(10)
	fresh := func() *EngineSnapshot {
		snap, err := p.Snapshot()
		if err != nil {
			t.Fatal(err)
		}
		return snap
	}
	if _, err := RestoreEngine(nil, Options{}); err == nil {
		t.Error("nil snapshot accepted")
	}
	snap := fresh()
	snap.Round = -1
	if _, err := RestoreEngine(snap, Options{}); err == nil {
		t.Error("negative round accepted")
	}
	snap = fresh()
	snap.Shards[1].RNG = [4]uint64{}
	if _, err := RestoreEngine(snap, Options{}); err == nil {
		t.Error("all-zero rng state accepted")
	}
	snap = fresh()
	snap.Shards[2].Work[0] ^= 1 // flip a worklist bit out from under the loads
	if _, err := RestoreEngine(snap, Options{}); err == nil {
		t.Error("inconsistent worklist accepted")
	}
	snap = fresh()
	snap.Shards[0].Loads = snap.Shards[0].Loads[:len(snap.Shards[0].Loads)-1]
	if _, err := RestoreEngine(snap, Options{}); err == nil {
		t.Error("short shard accepted")
	}
	snap = fresh()
	snap.Shards[3].Loads[0] = -2
	if _, err := RestoreEngine(snap, Options{}); err == nil {
		t.Error("negative load accepted")
	}
	// And an untouched snapshot still restores.
	if _, err := RestoreEngine(fresh(), Options{}); err != nil {
		t.Errorf("clean snapshot rejected: %v", err)
	}
}

// TestPipelineSnapshotRoundTrip: a pipeline restored mid-stream continues
// to identical summaries.
func TestPipelineSnapshotRoundTrip(t *testing.T) {
	p, err := NewProcess(config.AllInOne(128, 128), 5, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewPipeline([]float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 100; r++ {
		p.Step()
		full.Observe(p)
	}
	resumed, err := RestorePipeline(full.Snapshot())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 150; r++ {
		p.Step()
		full.Observe(p)
		resumed.Observe(p)
	}
	if full.WindowMax() != resumed.WindowMax() ||
		full.EmptyMin() != resumed.EmptyMin() ||
		full.EmptyMean() != resumed.EmptyMean() ||
		full.Rounds() != resumed.Rounds() ||
		full.String() != resumed.String() {
		t.Fatalf("pipelines diverge: %q vs %q", full, resumed)
	}
	if _, err := RestorePipeline(nil); err == nil {
		t.Error("nil pipeline snapshot accepted")
	}
	bad := full.Snapshot()
	bad.Rounds = -1
	if _, err := RestorePipeline(bad); err == nil {
		t.Error("negative rounds accepted")
	}
	bad = full.Snapshot()
	bad.Sketches[0].P = 2
	if _, err := RestorePipeline(bad); err == nil {
		t.Error("out-of-range quantile accepted")
	}
}
