package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/tetris"
)

// ArrivalKind names a per-round arrival law that the sharded engine can
// execute and the multi-process transports can carry across process and
// machine boundaries. The kind values are part of the wire protocol
// (internal/shard/transport/wire) — append only, never renumber.
type ArrivalKind uint8

const (
	// ArrivalRelaunch is the repeated balls-into-bins rule: every ball
	// released in the round is re-thrown. Conserves balls.
	ArrivalRelaunch ArrivalKind = iota
	// ArrivalQuota throws exactly ⌈λ·n⌉ balls per round, split into fixed
	// per-shard quotas summing to the total (tetris.Deterministic).
	ArrivalQuota
	// ArrivalBinomial throws Binomial(n, λ) balls per round; shard s draws
	// Binomial(n_s, λ) from its own stream (tetris.BinomialArrivals).
	ArrivalBinomial
	// ArrivalPoisson throws Poisson(λ·n) balls per round; shard s draws
	// Poisson(λ·n_s) from its own stream (tetris.PoissonArrivals).
	ArrivalPoisson
)

// String returns the kind name.
func (k ArrivalKind) String() string {
	switch k {
	case ArrivalRelaunch:
		return "relaunch"
	case ArrivalQuota:
		return "quota"
	case ArrivalBinomial:
		return "binomial"
	case ArrivalPoisson:
		return "poisson"
	default:
		return fmt.Sprintf("arrival(%d)", uint8(k))
	}
}

// ArrivalRule is the serializable description of an arrival law: the kind
// plus its rate parameter. It is the unit every placement consumes — the
// in-process engines build their Arrivals closure from it, and the
// proc/tcp transports encode it into the worker join payload so all
// process kinds cross process and machine boundaries.
//
// The per-shard decomposition is re-derived deterministically from
// (kind, λ, n, S) on whichever side executes it, so a rule — like a
// checkpoint — is placement-free: the trajectory depends only on
// (seed, n, S, rule).
type ArrivalRule struct {
	// Kind selects the law. The zero value is ArrivalRelaunch.
	Kind ArrivalKind
	// Lambda is the arrival rate per bin for the non-relaunch kinds;
	// 0 means the paper's 3/4. Must be 0 for ArrivalRelaunch.
	Lambda float64
}

// RuleForLaw maps a tetris arrival law to its sharded rule.
func RuleForLaw(law tetris.ArrivalLaw, lambda float64) (ArrivalRule, error) {
	switch law {
	case tetris.Deterministic:
		return ArrivalRule{Kind: ArrivalQuota, Lambda: lambda}, nil
	case tetris.BinomialArrivals:
		return ArrivalRule{Kind: ArrivalBinomial, Lambda: lambda}, nil
	case tetris.PoissonArrivals:
		return ArrivalRule{Kind: ArrivalPoisson, Lambda: lambda}, nil
	default:
		return ArrivalRule{}, fmt.Errorf("shard: unknown arrival law %v", law)
	}
}

// Law maps the rule back to its tetris arrival law; ok is false for
// ArrivalRelaunch, which has no tetris counterpart.
func (r ArrivalRule) Law() (tetris.ArrivalLaw, bool) {
	switch r.Kind {
	case ArrivalQuota:
		return tetris.Deterministic, true
	case ArrivalBinomial:
		return tetris.BinomialArrivals, true
	case ArrivalPoisson:
		return tetris.PoissonArrivals, true
	default:
		return 0, false
	}
}

// Conserves reports whether the rule conserves balls (arrivals ≡ releases).
func (r ArrivalRule) Conserves() bool { return r.Kind == ArrivalRelaunch }

// String renders "relaunch" or "quota(λ=0.75)".
func (r ArrivalRule) String() string {
	if r.Kind == ArrivalRelaunch {
		return r.Kind.String()
	}
	return fmt.Sprintf("%s(λ=%v)", r.Kind, r.Lambda)
}

// Normalize validates the rule and fills the λ default (3/4 for the
// batched kinds), returning the canonical form.
func (r ArrivalRule) Normalize() (ArrivalRule, error) {
	switch r.Kind {
	case ArrivalRelaunch:
		if r.Lambda != 0 {
			return r, fmt.Errorf("shard: relaunch rule with lambda = %v", r.Lambda)
		}
		return r, nil
	case ArrivalQuota, ArrivalBinomial, ArrivalPoisson:
		if r.Lambda == 0 {
			r.Lambda = 0.75
		}
		if r.Lambda < 0 || r.Lambda > 1 || math.IsNaN(r.Lambda) {
			return r, fmt.Errorf("shard: lambda = %v outside (0, 1]", r.Lambda)
		}
		return r, nil
	default:
		return r, fmt.Errorf("shard: unknown arrival kind %d", uint8(r.Kind))
	}
}

// ArrivalRuleWireSize is the encoded size of a rule: one kind byte plus
// the λ float64 bits, little-endian.
const ArrivalRuleWireSize = 9

// AppendWire appends the rule's wire encoding to dst.
func (r ArrivalRule) AppendWire(dst []byte) []byte {
	dst = append(dst, byte(r.Kind))
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(r.Lambda))
	return append(dst, b[:]...)
}

// DecodeArrivalRule decodes and validates a rule from its wire encoding.
func DecodeArrivalRule(b []byte) (ArrivalRule, error) {
	if len(b) < ArrivalRuleWireSize {
		return ArrivalRule{}, fmt.Errorf("shard: arrival rule truncated at %d bytes", len(b))
	}
	r := ArrivalRule{
		Kind:   ArrivalKind(b[0]),
		Lambda: math.Float64frombits(binary.LittleEndian.Uint64(b[1:9])),
	}
	return r.Normalize()
}

// Arrivals builds the per-shard arrival closure for a run of n bins in
// the given shard count: the batch decomposition described on Tetris —
// fixed quotas for ArrivalQuota, Binomial(n_s, λ) for ArrivalBinomial,
// Poisson(λ·n_s) for ArrivalPoisson — indexed by global shard. The
// decomposition is a pure function of (rule, n, shards), so every
// placement of the same run derives the same closure.
func (r ArrivalRule) Arrivals(n, shards int) (Arrivals, error) {
	r, err := r.Normalize()
	if err != nil {
		return nil, err
	}
	if shards < 1 || n < shards {
		return nil, fmt.Errorf("shard: arrivals over %d shards of %d bins", shards, n)
	}
	switch r.Kind {
	case ArrivalRelaunch:
		return func(_, released int, _ *rng.Source) int { return released }, nil
	case ArrivalQuota:
		k := int(math.Ceil(r.Lambda * float64(n)))
		quota := make([]int, shards)
		base, rem := k/shards, k%shards
		for i := range quota {
			quota[i] = base
			if i < rem {
				quota[i]++
			}
		}
		return func(s, _ int, _ *rng.Source) int { return quota[s] }, nil
	case ArrivalBinomial:
		binom := make([]*dist.Binomial, shards)
		for i := range binom {
			b, err := dist.NewBinomial(PartitionSize(n, shards, i), r.Lambda)
			if err != nil {
				return nil, err
			}
			binom[i] = b
		}
		return func(s, _ int, src *rng.Source) int { return binom[s].Sample(src) }, nil
	case ArrivalPoisson:
		pois := make([]*dist.Poisson, shards)
		for i := range pois {
			p, err := dist.NewPoisson(r.Lambda * float64(PartitionSize(n, shards, i)))
			if err != nil {
				return nil, err
			}
			pois[i] = p
		}
		return func(s, _ int, src *rng.Source) int { return pois[s].Sample(src) }, nil
	default:
		return nil, fmt.Errorf("shard: unknown arrival kind %d", uint8(r.Kind))
	}
}
