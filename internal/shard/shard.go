// Package shard is the data-parallel single-run engine: it executes one
// synchronous balls-into-bins round across multiple cores by partitioning
// the bins into contiguous shards, so a single run scales to n = 10⁷–10⁸
// bins — the regime where the paper's Θ(log n) max-load plateau (and the
// tight constants of Los & Sauerwald 2022) become visually unambiguous.
//
// # Partitioning
//
// The n bins are split into S contiguous shards of near-equal size (the
// first n mod S shards hold one extra bin). Shard s owns its slice of the
// load vector wrapped in its own engine.State — bitset worklist, local
// MaxLoad/EmptyBins and the hybrid sparse/dense round execution all come
// from the sequential stepping layer — plus an independent deterministic
// RNG stream rng.NewStream(seed, s).
//
// # Round protocol
//
// A round runs in two parallel phases separated by barriers:
//
//	release  — every shard removes one ball from each of its non-empty
//	           bins, decides its arrival count, draws that many uniform
//	           destinations in [0, n) from its own stream, and stages them
//	           in per-(src,dst) message buffers.
//	commit   — every shard drains the buffers addressed to it (in source
//	           shard order), merges the arrivals into its local State, and
//	           refreshes its local statistics.
//
// After the commit barrier the coordinator folds the per-shard statistics
// into the global MaxLoad/EmptyBins in O(S). No shard ever touches another
// shard's state; the buffers are written only by their source shard during
// release and drained only by their destination shard during commit, with
// the phase barrier ordering the two.
//
// # Determinism contract
//
// A run is a pure function of (seed, n, S): shard s performs its arrival-
// count draws and then exactly one destination draw per staged ball, in
// local bin order, from its private stream, so neither the number of
// worker goroutines nor their scheduling can affect the trajectory
// (Workers only changes wall-clock; the P-invariance test pins this).
//
// The layer is law-equivalent — NOT trajectory-equivalent — to
// internal/engine: with S shards the destination draws come from S
// independent streams instead of one, so for the same seed the sampled
// path differs from core.Process while the sampled distribution is
// identical (i.i.d. uniform destinations, one per released ball). With
// S = 1 the draw sequence collapses to exactly the sequential one, and the
// equivalence becomes trajectory-exact against a process driven by
// rng.NewStream(seed, 0); the test suite pins both facts.
package shard

import (
	"errors"
	"fmt"
	"math/bits"
	"runtime"
	"sync"

	"repro/internal/engine"
	"repro/internal/rng"
)

// Options configures an Engine.
type Options struct {
	// Shards is the number of contiguous bin partitions S (clamped to n).
	// It selects the random law's decomposition: results are a pure
	// function of (seed, n, Shards). 0 means runtime.GOMAXPROCS(0); pass
	// an explicit value for results that reproduce across machines.
	Shards int
	// Workers is the number of goroutines executing shard phases (clamped
	// to Shards). 0 means min(GOMAXPROCS, Shards). The trajectory is
	// independent of Workers.
	Workers int
	// OnEmptied, if non-nil, is invoked during the commit phase for every
	// bin (global index) that was non-empty at the start of the round and
	// is empty after arrivals merge. Calls for bins of one shard arrive in
	// increasing bin order from that shard's worker goroutine; calls for
	// bins of different shards may be concurrent, so the callback must
	// only touch per-bin (or otherwise shard-disjoint) state.
	OnEmptied func(u int)
}

// Arrivals decides how many uniformly-placed balls shard s contributes in
// the round that just released `released` balls from s's bins. It runs in
// the release phase on s's worker goroutine and may draw from src (the
// shard's private stream); those draws precede the destination draws in
// the shard's sequence. It must not retain src.
type Arrivals func(s, released int, src *rng.Source) int

// Engine is the sharded round executor. Create with NewEngine; drive it
// with Step. Not safe for concurrent use (each Step internally fans out to
// Workers goroutines and joins them before returning).
type Engine struct {
	n       int
	shards  []shardPart
	workers int
	// shift routes a destination to its shard with v >> shift when every
	// shard has the same power-of-two size (the common n = 2^k case);
	// −1 selects the general divide-based router.
	shift int

	round   int64
	maxLoad int32
	empty   int

	released []int // per-shard release counts of the in-flight round
	staged   []int // per-shard arrival counts of the in-flight round
}

// shardPart is one contiguous partition: a sequential engine.State over the
// local bins, a private RNG stream, and the outgoing message buffers.
type shardPart struct {
	base  int // global index of the first owned bin
	size  int
	state *engine.State
	src   *rng.Source
	// out[d] holds the global destination bins of balls this shard sends
	// to shard d in the current round. Written by this shard during
	// release, drained (and reset) by shard d during commit; the phase
	// barrier orders the two.
	out [][]int32
}

// NewEngine partitions loads into shards and returns the engine. The
// initial configuration is copied. It returns an error if loads is empty
// or contains a negative entry.
func NewEngine(loads []int32, seed uint64, opts Options) (*Engine, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("shard: NewEngine with no bins")
	}
	s := opts.Shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	w := opts.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s {
		w = s
	}
	e := &Engine{
		n:        n,
		shards:   make([]shardPart, s),
		workers:  w,
		released: make([]int, s),
		staged:   make([]int, s),
	}
	base := 0
	for i := range e.shards {
		size := PartitionSize(n, s, i)
		var eopts engine.Options
		if opts.OnEmptied != nil {
			cb, off := opts.OnEmptied, base
			eopts.OnEmptied = func(u int) { cb(off + u) }
		}
		st, err := engine.New(loads[base:base+size], eopts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		e.shards[i] = shardPart{
			base:  base,
			size:  size,
			state: st,
			src:   rng.NewStream(seed, uint64(i)),
			out:   make([][]int32, s),
		}
		base += size
	}
	e.shift = -1
	if q, r := n/s, n%s; r == 0 && q&(q-1) == 0 {
		e.shift = bits.TrailingZeros(uint(q))
	}
	e.refreshStats()
	return e, nil
}

// PartitionSize returns the canonical size of shard i when n bins are
// split into s contiguous shards: the first n mod s shards hold one extra
// bin. It is the single definition of the partition arithmetic —
// checkpoint decoding validates serialized shard sizes against it.
func PartitionSize(n, s, i int) int {
	size := n / s
	if i < n%s {
		size++
	}
	return size
}

// shardOf returns the shard owning global bin v. The first n mod S shards
// hold q+1 bins, the rest q; with a uniform power-of-two partition the
// lookup is a single shift (the hot path of destination routing).
func (e *Engine) shardOf(v int) int {
	if e.shift >= 0 {
		return v >> e.shift
	}
	s := len(e.shards)
	q, r := e.n/s, e.n%s
	big := r * (q + 1)
	if v < big {
		return v / (q + 1)
	}
	return r + (v-big)/q
}

// refreshStats folds the per-shard statistics into the global ones.
func (e *Engine) refreshStats() {
	var max int32
	empty := 0
	for i := range e.shards {
		st := e.shards[i].state
		if m := st.MaxLoad(); m > max {
			max = m
		}
		empty += st.EmptyBins()
	}
	e.maxLoad = max
	e.empty = empty
}

// parallel runs f once per shard, distributed round-robin over the
// workers, and returns after every call completes (the phase barrier).
func (e *Engine) parallel(f func(i int, sh *shardPart)) {
	if e.workers == 1 {
		for i := range e.shards {
			f(i, &e.shards[i])
		}
		return
	}
	var wg sync.WaitGroup
	for w := 0; w < e.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(e.shards); i += e.workers {
				f(i, &e.shards[i])
			}
		}(w)
	}
	wg.Wait()
}

// Step advances one synchronous round: release in parallel (departures,
// arrival-count decision, destination draws into the message buffers),
// barrier, commit in parallel (drain buffers, merge, local stats),
// barrier, then fold the global statistics. arrivals must not be nil.
func (e *Engine) Step(arrivals Arrivals) {
	n := e.n
	// Phase 1 — release and stage.
	e.parallel(func(i int, sh *shardPart) {
		released := sh.state.ReleaseEach(nil)
		k := arrivals(i, released, sh.src)
		src, out, bound := sh.src, sh.out, uint64(n)
		if shift := e.shift; shift >= 0 {
			for j := 0; j < k; j++ {
				v := src.Uint64n(bound)
				d := v >> uint(shift)
				out[d] = append(out[d], int32(v))
			}
		} else {
			for j := 0; j < k; j++ {
				v := int(src.Uint64n(bound))
				d := e.shardOf(v)
				out[d] = append(out[d], int32(v))
			}
		}
		e.released[i] = released
		e.staged[i] = k
	})
	// Phase 2 — exchange and commit. Shard i drains out[s][i] for every
	// source s in increasing s order (arrival order does not affect the
	// merged loads; a fixed order keeps any OnEmptied side effects and the
	// buffer resets deterministic).
	e.parallel(func(i int, sh *shardPart) {
		base := int32(sh.base)
		for s := range e.shards {
			buf := e.shards[s].out[i]
			sh.state.DepositBatch(buf, base)
			e.shards[s].out[i] = buf[:0]
		}
		sh.state.Commit()
	})
	e.refreshStats()
	e.round++
}

// ShardSnapshot is the checkpointed state of one shard: its private rng
// stream, its local load slice and its local worklist words (the latter are
// derivable from the loads; carrying both lets restore cross-check them).
type ShardSnapshot struct {
	RNG   [4]uint64
	Loads []int32
	Work  []uint64
}

// EngineSnapshot is the complete deterministic state of an Engine between
// rounds: everything the round protocol reads is either here or derived
// from it, so a restored engine continues the trajectory exactly. It is
// plain data; internal/checkpoint owns the serialized form.
type EngineSnapshot struct {
	N      int
	Round  int64
	Shards []ShardSnapshot
}

// Snapshot captures the full engine state. Step returns only after both
// phase barriers, so a snapshot taken by the driving goroutine between
// Steps is always a consistent whole-run cut — no draining or quiescing
// protocol is needed beyond "not during a Step call".
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	snap := &EngineSnapshot{
		N:      e.n,
		Round:  e.round,
		Shards: make([]ShardSnapshot, len(e.shards)),
	}
	for i := range e.shards {
		sh := &e.shards[i]
		loads, work, err := sh.state.Snapshot()
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		snap.Shards[i] = ShardSnapshot{RNG: sh.src.State(), Loads: loads, Work: work}
	}
	return snap, nil
}

// RestoreEngine rebuilds an engine from a snapshot. The shard count comes
// from the snapshot (opts.Shards is ignored — it is part of the saved
// random law); Workers and OnEmptied are taken from opts as usual. Every
// structural property is validated: the per-shard slice sizes must match
// the canonical partition of N into len(Shards) shards, the worklist words
// must agree with the loads, and the rng states must be valid. The restored
// engine's Released/Staged read 0 until its first Step (the in-flight
// counters of the pre-snapshot round are not part of the trajectory).
func RestoreEngine(snap *EngineSnapshot, opts Options) (*Engine, error) {
	if snap == nil {
		return nil, errors.New("shard: RestoreEngine with nil snapshot")
	}
	if snap.Round < 0 {
		return nil, fmt.Errorf("shard: snapshot round %d < 0", snap.Round)
	}
	s := len(snap.Shards)
	if s < 1 || s > snap.N {
		return nil, fmt.Errorf("shard: snapshot has %d shards for %d bins", s, snap.N)
	}
	loads := make([]int32, 0, snap.N)
	for i := range snap.Shards {
		loads = append(loads, snap.Shards[i].Loads...)
	}
	if len(loads) != snap.N {
		return nil, fmt.Errorf("shard: snapshot shards hold %d bins, header says %d", len(loads), snap.N)
	}
	opts.Shards = s
	e, err := NewEngine(loads, 0, opts)
	if err != nil {
		return nil, err
	}
	for i := range e.shards {
		sh := &e.shards[i]
		ss := &snap.Shards[i]
		if sh.size != len(ss.Loads) {
			return nil, fmt.Errorf("shard: snapshot shard %d holds %d bins, partition wants %d", i, len(ss.Loads), sh.size)
		}
		if err := sh.state.Restore(ss.Loads, ss.Work); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if err := sh.src.SetState(ss.RNG); err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	e.round = snap.Round
	e.refreshStats()
	return e, nil
}

// N returns the number of bins.
func (e *Engine) N() int { return e.n }

// Shards returns the number of shards S.
func (e *Engine) Shards() int { return len(e.shards) }

// Workers returns the number of goroutines used per phase.
func (e *Engine) Workers() int { return e.workers }

// Round returns the number of completed rounds.
func (e *Engine) Round() int64 { return e.round }

// MaxLoad returns the current global maximum bin load.
func (e *Engine) MaxLoad() int32 { return e.maxLoad }

// EmptyBins returns the current global number of empty bins.
func (e *Engine) EmptyBins() int { return e.empty }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (e *Engine) NonEmptyBins() int { return e.n - e.empty }

// Released returns the number of balls released in the last round (0
// before the first round).
func (e *Engine) Released() int {
	t := 0
	for _, r := range e.released {
		t += r
	}
	return t
}

// Staged returns the number of balls thrown in the last round (0 before
// the first round).
func (e *Engine) Staged() int {
	t := 0
	for _, k := range e.staged {
		t += k
	}
	return t
}

// Load returns the load of global bin u.
func (e *Engine) Load(u int) int32 {
	sh := &e.shards[e.shardOf(u)]
	return sh.state.Load(u - sh.base)
}

// LoadsCopy returns a fresh copy of the full load vector.
func (e *Engine) LoadsCopy() []int32 {
	out := make([]int32, 0, e.n)
	for i := range e.shards {
		out = append(out, e.shards[i].state.Loads()...)
	}
	return out
}

// Sum returns the total number of balls currently in the system.
func (e *Engine) Sum() int64 {
	var t int64
	for i := range e.shards {
		t += e.shards[i].state.Sum()
	}
	return t
}

// CheckInvariants verifies every shard's internal invariants, the
// partition bookkeeping and the aggregated statistics.
func (e *Engine) CheckInvariants() error {
	base := 0
	var max int32
	empty := 0
	for i := range e.shards {
		sh := &e.shards[i]
		if sh.base != base {
			return fmt.Errorf("shard: shard %d base %d, want %d", i, sh.base, base)
		}
		if err := sh.state.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", i, err)
		}
		for d, buf := range sh.out {
			if len(buf) != 0 {
				return fmt.Errorf("shard: leftover %d staged balls %d→%d", len(buf), i, d)
			}
		}
		if m := sh.state.MaxLoad(); m > max {
			max = m
		}
		empty += sh.state.EmptyBins()
		base += sh.size
	}
	if base != e.n {
		return fmt.Errorf("shard: partition covers %d bins, want %d", base, e.n)
	}
	if max != e.maxLoad {
		return fmt.Errorf("shard: aggregate max load %d, shards say %d", e.maxLoad, max)
	}
	if empty != e.empty {
		return fmt.Errorf("shard: aggregate empty count %d, shards say %d", e.empty, empty)
	}
	return nil
}
