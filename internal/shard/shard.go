// Package shard is the data-parallel single-run engine: it executes one
// synchronous balls-into-bins round across multiple cores by partitioning
// the bins into contiguous shards, so a single run scales to n = 10⁷–10⁸
// bins — the regime where the paper's Θ(log n) max-load plateau (and the
// tight constants of Los & Sauerwald 2022) become visually unambiguous.
//
// # Partitioning
//
// The n bins are split into S contiguous shards of near-equal size (the
// first n mod S shards hold one extra bin). Shard s owns its slice of the
// load vector wrapped in its own engine.State — bitset worklist, local
// MaxLoad/EmptyBins and the hybrid sparse/dense round execution all come
// from the sequential stepping layer — plus an independent deterministic
// RNG stream rng.NewStream(seed, s).
//
// # Round protocol
//
// A round runs in two parallel phases separated by barriers:
//
//	release  — every shard removes one ball from each of its non-empty
//	           bins, decides its arrival count, draws that many uniform
//	           destinations in [0, n) from its own stream, and stages them
//	           in per-(src,dst) message buffers.
//	exchange — every buffer reaches its destination shard: in-process
//	           destinations read their source buffers in place, remote
//	           destinations (multi-process transport) receive serialized
//	           copies.
//	commit   — every shard drains the buffers addressed to it (in source
//	           shard order), merges the arrivals into its local State, and
//	           refreshes its local statistics.
//
// After the commit barrier the coordinator folds the per-shard statistics
// into the global MaxLoad/EmptyBins in O(S). No shard ever touches another
// shard's state; the buffers are written only by their source shard during
// release and drained only by their destination shard during commit, with
// the phase barrier ordering the two.
//
// # Transports
//
// The protocol kernel (Group) is placement-agnostic: where the per-shard
// phase work executes is delegated to a transport. In-process, Options.
// Transport selects between a persistent worker pool with shard→worker
// affinity (TransportPool, the default — each shard is stepped by the same
// long-lived goroutine for the engine's lifetime) and per-phase goroutine
// spawning (TransportSpawn, the original behavior). Across processes,
// internal/shard/transport/proc runs shard ranges in worker processes
// connected by pipes. All transports execute the identical protocol, so
// the trajectory never depends on the choice — only wall-clock does.
//
// # Determinism contract
//
// A run is a pure function of (seed, n, S): shard s performs its arrival-
// count draws and then exactly one destination draw per staged ball, in
// local bin order, from its private stream, so neither the number of
// workers, their placement (pool, spawn, processes), nor their scheduling
// can affect the trajectory (Workers and Transport only change wall-clock;
// the P-invariance and transport-invariance tests pin this).
//
// The layer is law-equivalent — NOT trajectory-equivalent — to
// internal/engine: with S shards the destination draws come from S
// independent streams instead of one, so for the same seed the sampled
// path differs from core.Process while the sampled distribution is
// identical (i.i.d. uniform destinations, one per released ball). With
// S = 1 the draw sequence collapses to exactly the sequential one, and the
// equivalence becomes trajectory-exact against a process driven by
// rng.NewStream(seed, 0); the test suite pins both facts.
package shard

import (
	"errors"
	"fmt"
	"runtime"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/shard/transport"
	"repro/internal/shard/transport/local"
)

// TransportKind selects the in-process phase-execution transport of an
// Engine. The trajectory is independent of the choice by construction.
type TransportKind int

const (
	// TransportPool is the persistent worker pool with shard→worker
	// affinity (the default): W long-lived goroutines, each stepping a
	// fixed contiguous block of shards for the engine's lifetime, so a
	// shard's working set stays in one core's cache hierarchy and its
	// lazily-faulted pages are first-touched on the stepping worker.
	TransportPool TransportKind = iota
	// TransportSpawn launches fresh goroutines for every phase — the
	// pre-pool behavior, kept as the ablation baseline and for callers
	// that create many short-lived engines.
	TransportSpawn
)

// String returns the flag spelling of the kind.
func (k TransportKind) String() string {
	switch k {
	case TransportPool:
		return "pool"
	case TransportSpawn:
		return "spawn"
	}
	return fmt.Sprintf("TransportKind(%d)", int(k))
}

// ParseTransportKind parses a transport name: "pool" (or empty, the
// default) and "spawn".
func ParseTransportKind(s string) (TransportKind, error) {
	switch s {
	case "", "pool":
		return TransportPool, nil
	case "spawn":
		return TransportSpawn, nil
	}
	return 0, fmt.Errorf("shard: unknown transport %q (want pool|spawn)", s)
}

// newRunner builds the in-process runner for the kind.
func (k TransportKind) newRunner(shards, workers int) (transport.Runner, error) {
	switch k {
	case TransportPool:
		return local.NewPool(shards, workers), nil
	case TransportSpawn:
		return local.NewSpawn(shards, workers), nil
	}
	return nil, fmt.Errorf("shard: unknown transport kind %d", int(k))
}

// Options configures an Engine.
type Options struct {
	// Shards is the number of contiguous bin partitions S (clamped to n).
	// It selects the random law's decomposition: results are a pure
	// function of (seed, n, Shards). 0 means runtime.GOMAXPROCS(0); pass
	// an explicit value for results that reproduce across machines.
	Shards int
	// Workers is the number of goroutines executing shard phases (clamped
	// to Shards). 0 means min(GOMAXPROCS, Shards). The trajectory is
	// independent of Workers.
	Workers int
	// Transport selects the in-process phase transport (default
	// TransportPool). The trajectory is independent of it.
	Transport TransportKind
	// OnEmptied, if non-nil, is invoked during the commit phase for every
	// bin (global index) that was non-empty at the start of the round and
	// is empty after arrivals merge. Calls for bins of one shard arrive in
	// increasing bin order from that shard's worker; calls for bins of
	// different shards may be concurrent, so the callback must only touch
	// per-bin (or otherwise shard-disjoint) state.
	OnEmptied func(u int)
	// Width is the per-shard load-storage floor (default engine.WidthAuto:
	// each shard stores at the narrowest width fitting its loads and widens
	// on demand). The trajectory is independent of it; only memory and the
	// recorded snapshot widths depend on it.
	Width engine.Width
	// Kernel selects the dense-round implementation of every shard's state
	// (default engine.KernelBatched). The trajectory is independent of it;
	// only speed depends on it.
	Kernel engine.Kernel
}

// groupOptions lowers the engine-facing options into the group layer.
func (o Options) groupOptions() GroupOptions {
	return GroupOptions{OnEmptied: o.OnEmptied, Width: o.Width, Kernel: o.Kernel}
}

// resolve clamps the shard and worker counts against n.
func (o Options) resolve(n int) (s, w int) {
	s = o.Shards
	if s <= 0 {
		s = runtime.GOMAXPROCS(0)
	}
	if s > n {
		s = n
	}
	w = o.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > s {
		w = s
	}
	return s, w
}

// Arrivals decides how many uniformly-placed balls shard s contributes in
// the round that just released `released` balls from s's bins. It runs in
// the release phase on s's worker and may draw from src (the shard's
// private stream); those draws precede the destination draws in the
// shard's sequence. It must not retain src.
type Arrivals func(s, released int, src *rng.Source) int

// Engine is the sharded round executor over an in-process transport: a
// Group owning every shard of the run. Create with NewEngine; drive it
// with Step; Close it to release the transport's workers (an abandoned,
// unclosed engine is reaped by the garbage collector eventually, but
// long-lived callers creating many engines should Close deterministically).
// Not safe for concurrent use (each Step internally fans out to the
// transport's workers and joins them before returning).
type Engine struct {
	g       *Group
	workers int

	round    int64
	maxLoad  int32
	empty    int
	released int
	staged   int
}

// NewEngine partitions loads into shards and returns the engine. The
// initial configuration is copied. It returns an error if loads is empty
// or contains a negative entry.
func NewEngine(loads []int32, seed uint64, opts Options) (*Engine, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("shard: NewEngine with no bins")
	}
	s, w := opts.resolve(n)
	runner, err := opts.Transport.newRunner(s, w)
	if err != nil {
		return nil, err
	}
	g, err := NewGroup(n, s, 0, s, loads, seed, runner, opts.groupOptions())
	if err != nil {
		runner.Close()
		return nil, err
	}
	e := &Engine{g: g, workers: w}
	e.refreshStats()
	return e, nil
}

// refreshStats folds the per-shard statistics into the global ones.
func (e *Engine) refreshStats() {
	e.maxLoad = e.g.MaxLoad()
	e.empty = e.g.EmptyBins()
}

// Step advances one synchronous round: release in parallel (departures,
// arrival-count decision, destination draws into the message buffers),
// barrier, commit in parallel (drain buffers, merge, local stats),
// barrier, then fold the global statistics. arrivals must not be nil.
func (e *Engine) Step(arrivals Arrivals) {
	e.g.Release(arrivals)
	e.g.Commit()
	e.released = e.g.Released()
	e.staged = e.g.Staged()
	e.refreshStats()
	e.round++
	mRounds.Inc()
}

// ShardSnapshot is the checkpointed state of one shard: its private rng
// stream, its local load slice, its local worklist words (the latter are
// derivable from the loads; carrying both lets restore cross-check them)
// and its storage width. The width is part of the deterministic state — the
// engine-level ratchet may hold a shard wider than its current values
// require, and a resumed run must keep that width so later snapshots stay
// byte-identical to the uninterrupted run's. Width 0 means "unrecorded"
// (format v1 checkpoints): restore re-derives the narrowest fitting width.
type ShardSnapshot struct {
	RNG   [4]uint64
	Loads []int32
	Work  []uint64
	Width uint8
}

// EngineSnapshot is the complete deterministic state of an Engine between
// rounds: everything the round protocol reads is either here or derived
// from it, so a restored engine continues the trajectory exactly. It is
// plain data; internal/checkpoint owns the serialized form.
type EngineSnapshot struct {
	N      int
	Round  int64
	Shards []ShardSnapshot
}

// InitialSnapshot builds the round-zero EngineSnapshot of a fresh run —
// exactly the state NewEngine(loads, seed, Options{Shards: shards,
// Width: width}) would snapshot before its first Step — without
// constructing an engine. The proc transport uses it (serialized through
// internal/checkpoint) as the worker join payload; shards follows the
// Options.Shards convention (0 means GOMAXPROCS, clamped to n) and width
// the Options.Width one (the floor of each shard's auto-fitted storage
// width).
func InitialSnapshot(loads []int32, seed uint64, shards int, width engine.Width) (*EngineSnapshot, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("shard: InitialSnapshot with no bins")
	}
	s, _ := Options{Shards: shards}.resolve(n)
	snap := &EngineSnapshot{N: n, Shards: make([]ShardSnapshot, s)}
	base := 0
	for i := range snap.Shards {
		size := PartitionSize(n, s, i)
		part := loads[base : base+size]
		work := make([]uint64, (size+63)/64)
		var max int32
		for u, l := range part {
			if l < 0 {
				return nil, fmt.Errorf("shard: bin %d has negative load %d", base+u, l)
			}
			if l > 0 {
				work[u>>6] |= 1 << uint(u&63)
				if l > max {
					max = l
				}
			}
		}
		snap.Shards[i] = ShardSnapshot{
			RNG:   rng.NewStream(seed, uint64(i)).State(),
			Loads: append([]int32(nil), part...),
			Work:  work,
			Width: uint8(engine.WidthFor(max, width)),
		}
		base += size
	}
	return snap, nil
}

// Snapshot captures the full engine state. Step returns only after both
// phase barriers, so a snapshot taken by the driving goroutine between
// Steps is always a consistent whole-run cut — no draining or quiescing
// protocol is needed beyond "not during a Step call".
func (e *Engine) Snapshot() (*EngineSnapshot, error) {
	snap := &EngineSnapshot{
		N:      e.g.N(),
		Round:  e.round,
		Shards: make([]ShardSnapshot, e.g.Shards()),
	}
	for i := range snap.Shards {
		ss, err := e.g.SnapshotShard(i)
		if err != nil {
			return nil, err
		}
		snap.Shards[i] = ss
	}
	return snap, nil
}

// RestoreEngine rebuilds an engine from a snapshot. The shard count comes
// from the snapshot (opts.Shards is ignored — it is part of the saved
// random law); Workers, Transport and OnEmptied are taken from opts as
// usual. Every structural property is validated: the per-shard slice sizes
// must match the canonical partition of N into len(Shards) shards, the
// worklist words must agree with the loads, and the rng states must be
// valid. The restored engine's Released/Staged read 0 until its first Step
// (the in-flight counters of the pre-snapshot round are not part of the
// trajectory).
func RestoreEngine(snap *EngineSnapshot, opts Options) (*Engine, error) {
	if snap == nil {
		return nil, errors.New("shard: RestoreEngine with nil snapshot")
	}
	s := len(snap.Shards)
	if s < 1 || s > snap.N {
		return nil, fmt.Errorf("shard: snapshot has %d shards for %d bins", s, snap.N)
	}
	opts.Shards = s
	_, w := opts.resolve(snap.N)
	runner, err := opts.Transport.newRunner(s, w)
	if err != nil {
		return nil, err
	}
	g, err := NewGroupFromSnapshot(snap, 0, s, runner, opts.groupOptions())
	if err != nil {
		runner.Close()
		return nil, err
	}
	e := &Engine{g: g, workers: w, round: snap.Round}
	e.refreshStats()
	return e, nil
}

// Close releases the engine's transport resources (the pool's persistent
// workers). The engine must not be stepped afterwards. Idempotent.
func (e *Engine) Close() error { return e.g.Close() }

// N returns the number of bins.
func (e *Engine) N() int { return e.g.N() }

// Shards returns the number of shards S.
func (e *Engine) Shards() int { return e.g.Shards() }

// Workers returns the number of workers used per phase.
func (e *Engine) Workers() int { return e.workers }

// Round returns the number of completed rounds.
func (e *Engine) Round() int64 { return e.round }

// MaxLoad returns the current global maximum bin load.
func (e *Engine) MaxLoad() int32 { return e.maxLoad }

// EmptyBins returns the current global number of empty bins.
func (e *Engine) EmptyBins() int { return e.empty }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (e *Engine) NonEmptyBins() int { return e.g.N() - e.empty }

// Released returns the number of balls released in the last round (0
// before the first round).
func (e *Engine) Released() int { return e.released }

// Staged returns the number of balls thrown in the last round (0 before
// the first round).
func (e *Engine) Staged() int { return e.staged }

// shardOf returns the shard owning global bin v.
func (e *Engine) shardOf(v int) int { return e.g.ShardOf(v) }

// shardSize returns the bin count of shard i.
func (e *Engine) shardSize(i int) int { return PartitionSize(e.g.N(), e.g.Shards(), i) }

// Load returns the load of global bin u.
func (e *Engine) Load(u int) int32 { return e.g.Load(u) }

// LoadsCopy returns a fresh copy of the full load vector.
func (e *Engine) LoadsCopy() []int32 {
	return e.g.AppendLoads(make([]int32, 0, e.g.N()))
}

// Sum returns the total number of balls currently in the system.
func (e *Engine) Sum() int64 { return e.g.Sum() }

// LoadBytes returns the resident bytes of the engine's load vectors and
// arrival staging areas at their current storage widths — the memory the
// compact representation is accountable for (worklists, buffers and
// scratch are excluded). Deterministic for a given trajectory, so it is
// safe to report in byte-compared summaries.
func (e *Engine) LoadBytes() int64 { return e.g.LoadBytes() }

// ScratchBytes returns the resident bytes of the shards' per-round scratch
// buffers (destination staging, the batched kernel's partition buffer and
// bucket cursors). Unlike LoadBytes it depends on the kernel and on how far
// the run has progressed, so it must never enter byte-compared summaries —
// it exists for memory accounting and the zero-alloc steady-state tests.
func (e *Engine) ScratchBytes() int64 { return e.g.ScratchBytes() }

// CheckInvariants verifies every shard's internal invariants, the
// partition bookkeeping and the aggregated statistics.
func (e *Engine) CheckInvariants() error {
	if err := e.g.CheckInvariants(); err != nil {
		return err
	}
	if max := e.g.MaxLoad(); max != e.maxLoad {
		return fmt.Errorf("shard: aggregate max load %d, shards say %d", e.maxLoad, max)
	}
	if empty := e.g.EmptyBins(); empty != e.empty {
		return fmt.Errorf("shard: aggregate empty count %d, shards say %d", e.empty, empty)
	}
	return nil
}
