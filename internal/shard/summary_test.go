package shard

import (
	"encoding/json"
	"reflect"
	"testing"

	"repro/internal/config"
)

// observedPipeline returns a pipeline that has watched a real sharded run
// long enough for the P² sketches to leave their exact-sample phase.
func observedPipeline(t *testing.T, rounds int64) *Pipeline {
	t.Helper()
	p, err := NewProcess(config.AllInOne(512, 512), 11, Options{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := NewPipeline([]float64{0.5, 0.9, 0.99})
	if err != nil {
		t.Fatal(err)
	}
	for i := int64(0); i < rounds; i++ {
		p.Step()
		pipe.Observe(p)
	}
	return pipe
}

// TestSummaryJSONRoundTrip: the Summary digest survives a JSON round trip
// exactly, and equal pipelines produce byte-equal encodings (the property
// the CI serve-smoke diff relies on).
func TestSummaryJSONRoundTrip(t *testing.T) {
	pipe := observedPipeline(t, 40)
	sum := pipe.Summary()
	if sum.Rounds != 40 || sum.WindowMax == 0 || len(sum.Quantiles) != 3 {
		t.Fatalf("implausible summary: %+v", sum)
	}
	blob, err := json.Marshal(sum)
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sum, back) {
		t.Fatalf("summary JSON round trip not exact:\n got %+v\nwant %+v", back, sum)
	}
	blob2, err := json.Marshal(observedPipeline(t, 40).Summary())
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("equal runs encode differently:\n%s\n%s", blob, blob2)
	}
}

// TestSummaryEmptyPipeline: a pipeline with no quantiles and no observed
// rounds still marshals (no NaN can reach the encoder).
func TestSummaryEmptyPipeline(t *testing.T) {
	pipe, err := NewPipeline(nil)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(pipe.Summary())
	if err != nil {
		t.Fatal(err)
	}
	var back Summary
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if back.Rounds != 0 || back.WindowMax != 0 || back.EmptyMin != 1 || back.Quantiles != nil {
		t.Fatalf("zero-observation summary: %+v", back)
	}
}

// TestPipelineSnapshotJSONRoundTrip: the full observer snapshot — window
// max, empty-fraction accumulators and the complete P² marker tables —
// survives JSON, and the decoded snapshot restores a pipeline that
// continues the stream exactly as the original.
func TestPipelineSnapshotJSONRoundTrip(t *testing.T) {
	pipe := observedPipeline(t, 30)
	snap := pipe.Snapshot()
	blob, err := json.Marshal(snap)
	if err != nil {
		t.Fatal(err)
	}
	back := new(PipelineSnapshot)
	if err := json.Unmarshal(blob, back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(snap, back) {
		t.Fatalf("snapshot JSON round trip not exact:\n got %+v\nwant %+v", back, snap)
	}
	restored, err := RestorePipeline(back)
	if err != nil {
		t.Fatal(err)
	}
	// Feed both pipelines the same suffix and require identical summaries.
	p, err := NewProcess(config.OnePerBin(256), 7, Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		p.Step()
		pipe.Observe(p)
		restored.Observe(p)
	}
	if !reflect.DeepEqual(pipe.Summary(), restored.Summary()) {
		t.Fatalf("restored pipeline diverged:\n got %+v\nwant %+v", restored.Summary(), pipe.Summary())
	}
}
