package shard

import (
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rng"
	"repro/internal/shard/transport"
)

// shardPart is one contiguous partition: a sequential engine.State over the
// local bins, a private RNG stream, and the outgoing message buffers.
type shardPart struct {
	base  int // global index of the first owned bin
	size  int
	state *engine.State
	src   *rng.Source
	// out[d] holds the global destination bins of balls this shard sends
	// to global shard d in the current round. Written by this shard during
	// release; in-process destinations are drained (and reset) by shard d
	// during commit, remote destinations are shipped by the transport
	// between the phases and reset after commit. The phase barrier orders
	// writers and readers.
	out [][]int32
}

// Group is the in-process kernel of the round protocol: it holds shards
// [Lo, Hi) of a run partitioned into Shards contiguous shards over N bins,
// and executes the per-shard release and commit phases on them through a
// transport.Runner. The whole-run Engine is a Group owning every shard; a
// proc-transport worker is a Group owning a sub-range, with the remote
// legs of the exchange carried by Outgoing/Deliver.
//
// A Group is driven strictly phase-sequentially by one goroutine:
// Release, then (for sub-range groups) ship Outgoing buffers and Deliver
// inbound ones, then Commit. Each phase call returns only after every
// owned shard's work completed — the runner is the phase barrier.
type Group struct {
	n      int // global bins
	s      int // global shard count
	lo, hi int // owned shard range [lo, hi)
	// shift routes a destination to its shard with v >> shift when every
	// shard has the same power-of-two size (the common n = 2^k case);
	// −1 selects the general divide-based router.
	shift  int
	parts  []shardPart // parts[i] is global shard lo+i
	runner transport.Runner

	// inbox[i][src] is the delivered buffer for owned shard lo+i from
	// remote shard src (nil/empty for in-process sources, which are read
	// straight out of their part's out row). Written by Deliver between
	// the phases, drained and reset by Commit.
	inbox [][][]int32

	released []int // per owned shard, release counts of the in-flight round
	staged   []int // per owned shard, arrival counts of the in-flight round
}

// PartitionSize returns the canonical size of shard i when n bins are
// split into s contiguous shards: the first n mod s shards hold one extra
// bin. It is the single definition of the partition arithmetic —
// checkpoint decoding validates serialized shard sizes against it.
func PartitionSize(n, s, i int) int {
	size := n / s
	if i < n%s {
		size++
	}
	return size
}

// PartitionStart returns the global index of the first bin of shard i
// under the canonical partition of n bins into s shards.
func PartitionStart(n, s, i int) int {
	q, r := n/s, n%s
	if i <= r {
		return i * (q + 1)
	}
	return r*(q+1) + (i-r)*q
}

// GroupOptions carries the per-shard engine configuration into a group's
// states: the OnEmptied callback (invoked with global bin indices), the
// storage-width floor, and the dense-round kernel. Width and Kernel are
// trajectory-neutral; the zero value is the default configuration.
type GroupOptions struct {
	OnEmptied func(u int)
	Width     engine.Width
	Kernel    engine.Kernel
}

// NewGroup builds fresh shard states for shards [lo, hi) of a run over n
// bins split into s shards, copying the owned bins from loads (which must
// hold exactly the bins of those shards, i.e. the global range
// [PartitionStart(lo), PartitionStart(hi))). Shard i draws from
// rng.NewStream(seed, i). The group takes ownership of runner and closes it
// with Close.
func NewGroup(n, s, lo, hi int, loads []int32, seed uint64, runner transport.Runner, gopts GroupOptions) (*Group, error) {
	g, err := newGroupFrame(n, s, lo, hi, runner)
	if err != nil {
		return nil, err
	}
	if want := PartitionStart(n, s, hi) - PartitionStart(n, s, lo); len(loads) != want {
		return nil, fmt.Errorf("shard: group loads hold %d bins, shards [%d,%d) own %d", len(loads), lo, hi, want)
	}
	off := 0
	for i := range g.parts {
		sh := &g.parts[i]
		st, err := newPartState(loads[off:off+sh.size], sh.base, gopts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", lo+i, err)
		}
		sh.state = st
		sh.src = rng.NewStream(seed, uint64(lo+i))
		off += sh.size
	}
	g.prefault()
	return g, nil
}

// NewGroupFromSnapshot builds the kernel for shards [lo, hi) from a
// whole-run snapshot, restoring each owned shard's loads, worklist, rng
// stream and storage width with the same structural cross-checks as
// RestoreEngine (gopts.Width is the restore-side floor; a shard never
// restores narrower than its snapshot recorded, so resumed runs keep the
// ratchet). The proc transport uses it — with the serialized checkpoint as
// the join payload — to migrate shard ranges into worker processes. Only
// the snapshot entries of shards [lo, hi) are read, so a sub-range caller
// may hand in a sparsely populated Shards slice.
func NewGroupFromSnapshot(snap *EngineSnapshot, lo, hi int, runner transport.Runner, gopts GroupOptions) (*Group, error) {
	if snap == nil {
		return nil, errors.New("shard: NewGroupFromSnapshot with nil snapshot")
	}
	if snap.Round < 0 {
		return nil, fmt.Errorf("shard: snapshot round %d < 0", snap.Round)
	}
	s := len(snap.Shards)
	if s < 1 || s > snap.N {
		return nil, fmt.Errorf("shard: snapshot has %d shards for %d bins", s, snap.N)
	}
	g, err := newGroupFrame(snap.N, s, lo, hi, runner)
	if err != nil {
		return nil, err
	}
	for i := range g.parts {
		sh := &g.parts[i]
		ss := &snap.Shards[lo+i]
		if sh.size != len(ss.Loads) {
			return nil, fmt.Errorf("shard: snapshot shard %d holds %d bins, partition wants %d", lo+i, len(ss.Loads), sh.size)
		}
		st, err := newPartState(ss.Loads, sh.base, gopts)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", lo+i, err)
		}
		if err := st.Restore(ss.Loads, ss.Work); err != nil {
			return nil, fmt.Errorf("shard %d: %w", lo+i, err)
		}
		if err := st.WidenTo(engine.Width(ss.Width)); err != nil {
			return nil, fmt.Errorf("shard %d: %w", lo+i, err)
		}
		sh.state = st
		sh.src = rng.New(0)
		if err := sh.src.SetState(ss.RNG); err != nil {
			return nil, fmt.Errorf("shard %d: %w", lo+i, err)
		}
	}
	g.prefault()
	return g, nil
}

// newGroupFrame allocates the group skeleton (partition bookkeeping,
// buffers) without shard states.
func newGroupFrame(n, s, lo, hi int, runner transport.Runner) (*Group, error) {
	if n < 1 {
		return nil, errors.New("shard: group with no bins")
	}
	if s < 1 || s > n {
		return nil, fmt.Errorf("shard: %d shards for %d bins", s, n)
	}
	if lo < 0 || hi > s || lo >= hi {
		return nil, fmt.Errorf("shard: group range [%d,%d) outside %d shards", lo, hi, s)
	}
	if runner == nil {
		return nil, errors.New("shard: group with nil runner")
	}
	g := &Group{
		n:        n,
		s:        s,
		lo:       lo,
		hi:       hi,
		shift:    -1,
		parts:    make([]shardPart, hi-lo),
		runner:   runner,
		released: make([]int, hi-lo),
		staged:   make([]int, hi-lo),
	}
	if q, r := n/s, n%s; r == 0 && q&(q-1) == 0 {
		g.shift = bits.TrailingZeros(uint(q))
	}
	for i := range g.parts {
		g.parts[i] = shardPart{
			base: PartitionStart(n, s, lo+i),
			size: PartitionSize(n, s, lo+i),
			out:  make([][]int32, s),
		}
	}
	if lo > 0 || hi < s {
		g.inbox = make([][][]int32, hi-lo)
		for i := range g.inbox {
			g.inbox[i] = make([][]int32, s)
		}
	}
	return g, nil
}

// newPartState builds one shard's engine.State, rebasing the OnEmptied
// callback to global bin indices.
func newPartState(loads []int32, base int, gopts GroupOptions) (*engine.State, error) {
	eopts := engine.Options{Width: gopts.Width, Kernel: gopts.Kernel}
	if onEmptied := gopts.OnEmptied; onEmptied != nil {
		eopts.OnEmptied = func(u int) { onEmptied(base + u) }
	}
	return engine.New(loads, eopts)
}

// prefault runs the worker-pinned page warm-up once: with the pooled
// runner, each shard's state is touched by the worker that will step it
// for the engine's lifetime, so lazily-allocated pages are first-touched
// on the right thread (see engine.State.Prefault).
func (g *Group) prefault() {
	g.runner.Run(func(i int) { g.parts[i].state.Prefault() })
}

// ShardOf returns the global shard owning global bin v. The first n mod S
// shards hold q+1 bins, the rest q; with a uniform power-of-two partition
// the lookup is a single shift (the hot path of destination routing).
func (g *Group) ShardOf(v int) int {
	if g.shift >= 0 {
		return v >> g.shift
	}
	q, r := g.n/g.s, g.n%g.s
	big := r * (q + 1)
	if v < big {
		return v / (q + 1)
	}
	return r + (v-big)/q
}

// owns reports whether global shard s is held by this group.
func (g *Group) owns(s int) bool { return s >= g.lo && s < g.hi }

// Release runs the release phase on every owned shard: remove one ball
// from each non-empty bin, decide the shard's arrival count via arrivals,
// draw that many uniform destinations in [0, n) from the shard's private
// stream, and stage them in the per-destination outgoing buffers. Returns
// after the phase barrier.
func (g *Group) Release(arrivals Arrivals) {
	sp := obs.StartSpan("release", obs.LanePhases)
	tm := obs.StartTimer()
	n := g.n
	g.runner.Run(func(i int) {
		sh := &g.parts[i]
		released := sh.state.ReleaseEach(nil)
		k := arrivals(g.lo+i, released, sh.src)
		src, out, bound := sh.src, sh.out, uint64(n)
		if shift := g.shift; shift >= 0 {
			for j := 0; j < k; j++ {
				v := src.Uint64n(bound)
				d := v >> uint(shift)
				out[d] = append(out[d], int32(v))
			}
		} else {
			for j := 0; j < k; j++ {
				v := int(src.Uint64n(bound))
				d := g.ShardOf(v)
				out[d] = append(out[d], int32(v))
			}
		}
		g.released[i] = released
		g.staged[i] = k
	})
	tm.ObserveSeconds(mPhaseRelease)
	sp.End()
}

// Outgoing returns the staged buffer from owned shard src to global shard
// dst — the remote leg of the exchange. Valid between Release and Commit;
// the caller must not retain the slice past Commit (which resets it).
func (g *Group) Outgoing(src, dst int) []int32 {
	return g.parts[src-g.lo].out[dst]
}

// Deliver stages an inbound exchange buffer from remote shard src to owned
// shard dst, copying it into the group's retained buffer. It must be
// called between Release and Commit, and at most once per (src, dst) pair
// per round.
func (g *Group) Deliver(src, dst int, buf []int32) {
	i := dst - g.lo
	g.inbox[i][src] = append(g.inbox[i][src][:0], buf...)
}

// Commit runs the commit phase on every owned shard: drain the buffers
// addressed to it — in global source-shard order, in-process sources read
// directly, remote sources from the delivered inbox — merge the arrivals,
// and refresh the shard statistics. After the phase barrier the
// remote-destined outgoing buffers (already shipped by the transport) are
// reset for the next round.
func (g *Group) Commit() {
	sp := obs.StartSpan("commit", obs.LanePhases)
	tm := obs.StartTimer()
	count := obs.Enabled()
	g.runner.Run(func(i int) {
		sh := &g.parts[i]
		d := g.lo + i
		base := int32(sh.base)
		balls, msgs := 0, 0
		for s := 0; s < g.s; s++ {
			var buf []int32
			if g.owns(s) {
				buf = g.parts[s-g.lo].out[d]
				sh.state.DepositBatch(buf, base)
				g.parts[s-g.lo].out[d] = buf[:0]
			} else {
				buf = g.inbox[i][s]
				sh.state.DepositBatch(buf, base)
				g.inbox[i][s] = buf[:0]
			}
			if count && len(buf) > 0 && s != d {
				balls += len(buf)
				msgs++
			}
		}
		sh.state.Commit()
		if count {
			// One atomic add per shard per round, never per ball.
			mExchangeBalls.Add(uint64(balls))
			mExchangeMsgs.Add(uint64(msgs))
		}
	})
	if g.lo > 0 || g.hi < g.s {
		for i := range g.parts {
			out := g.parts[i].out
			for d := range out {
				if !g.owns(d) {
					out[d] = out[d][:0]
				}
			}
		}
	}
	tm.ObserveSeconds(mPhaseCommit)
	sp.End()
}

// N returns the global number of bins.
func (g *Group) N() int { return g.n }

// Shards returns the global shard count S.
func (g *Group) Shards() int { return g.s }

// Lo returns the first owned shard.
func (g *Group) Lo() int { return g.lo }

// Hi returns the shard after the last owned one.
func (g *Group) Hi() int { return g.hi }

// MaxLoad returns the maximum load over the owned shards. Valid between
// rounds (after Commit).
func (g *Group) MaxLoad() int32 {
	var max int32
	for i := range g.parts {
		if m := g.parts[i].state.MaxLoad(); m > max {
			max = m
		}
	}
	return max
}

// EmptyBins returns the number of empty bins over the owned shards. Valid
// between rounds (after Commit).
func (g *Group) EmptyBins() int {
	empty := 0
	for i := range g.parts {
		empty += g.parts[i].state.EmptyBins()
	}
	return empty
}

// Released returns the number of balls the owned shards released in the
// last round (0 before the first). Valid from Release on.
func (g *Group) Released() int {
	t := 0
	for _, r := range g.released {
		t += r
	}
	return t
}

// Staged returns the number of balls the owned shards threw in the last
// round (0 before the first). Valid from Release on.
func (g *Group) Staged() int {
	t := 0
	for _, k := range g.staged {
		t += k
	}
	return t
}

// Sum returns the total number of balls currently in the owned shards.
func (g *Group) Sum() int64 {
	var t int64
	for i := range g.parts {
		t += g.parts[i].state.Sum()
	}
	return t
}

// Load returns the load of global bin u, which must be owned by the group.
func (g *Group) Load(u int) int32 {
	sh := &g.parts[g.ShardOf(u)-g.lo]
	return sh.state.Load(u - sh.base)
}

// AppendLoads appends the owned shards' loads (in global bin order) to dst
// and returns the extended slice.
func (g *Group) AppendLoads(dst []int32) []int32 {
	for i := range g.parts {
		dst = g.parts[i].state.AppendLoads(dst)
	}
	return dst
}

// LoadBytes returns the resident bytes of the owned shards' load vectors
// and staging areas at their current storage widths.
func (g *Group) LoadBytes() int64 {
	var t int64
	for i := range g.parts {
		t += g.parts[i].state.LoadBytes()
	}
	return t
}

// ScratchBytes returns the resident bytes of the owned shards' per-round
// scratch buffers (see engine.State.ScratchBytes). Kernel- and
// history-dependent, so it is reported alongside — never folded into —
// LoadBytes.
func (g *Group) ScratchBytes() int64 {
	var t int64
	for i := range g.parts {
		t += g.parts[i].state.ScratchBytes()
	}
	return t
}

// SnapshotShard captures the checkpoint state of owned shard s (global
// id). Valid between rounds.
func (g *Group) SnapshotShard(s int) (ShardSnapshot, error) {
	sh := &g.parts[s-g.lo]
	loads, work, err := sh.state.Snapshot()
	if err != nil {
		return ShardSnapshot{}, fmt.Errorf("shard %d: %w", s, err)
	}
	return ShardSnapshot{RNG: sh.src.State(), Loads: loads, Work: work, Width: uint8(sh.state.Width())}, nil
}

// CheckInvariants verifies every owned shard's internal invariants and the
// partition bookkeeping, including that no staged exchange buffer leaked
// past its round.
func (g *Group) CheckInvariants() error {
	for i := range g.parts {
		sh := &g.parts[i]
		if want := PartitionStart(g.n, g.s, g.lo+i); sh.base != want {
			return fmt.Errorf("shard: shard %d base %d, want %d", g.lo+i, sh.base, want)
		}
		if err := sh.state.CheckInvariants(); err != nil {
			return fmt.Errorf("shard %d: %w", g.lo+i, err)
		}
		for d, buf := range sh.out {
			if len(buf) != 0 {
				return fmt.Errorf("shard: leftover %d staged balls %d→%d", len(buf), g.lo+i, d)
			}
		}
	}
	for i := range g.inbox {
		for s, buf := range g.inbox[i] {
			if len(buf) != 0 {
				return fmt.Errorf("shard: leftover %d delivered balls %d→%d", len(buf), s, g.lo+i)
			}
		}
	}
	return nil
}

// Close releases the group's runner. The group must not be used
// afterwards.
func (g *Group) Close() error { return g.runner.Close() }
