package shard

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/tetris"
)

// Process is the sharded repeated balls-into-bins engine: the law of
// core.Process (every non-empty bin releases one ball to an independently
// and uniformly chosen bin) executed by the data-parallel Engine. It
// implements engine.Stepper. Create with NewProcess; one Step fans out to
// the engine's workers internally, so a *Process itself must not be shared
// between goroutines.
type Process struct {
	eng *Engine
	m   int64
}

// NewProcess builds a sharded process over a copy of loads. Shard s draws
// from rng.NewStream(seed, s); the run is a pure function of
// (seed, len(loads), opts.Shards).
func NewProcess(loads []int32, seed uint64, opts Options) (*Process, error) {
	if opts.OnEmptied != nil {
		return nil, errors.New("shard: NewProcess does not support OnEmptied")
	}
	eng, err := NewEngine(loads, seed, opts)
	if err != nil {
		return nil, err
	}
	m := eng.Sum()
	if m > math.MaxInt32 {
		return nil, fmt.Errorf("shard: %d balls exceed int32 bin capacity", m)
	}
	return &Process{eng: eng, m: m}, nil
}

// Snapshot captures the full process state for checkpointing. A Process
// holds no randomized state beyond its engine (the ball count is derived
// from the loads), so the engine snapshot is the whole checkpoint.
func (p *Process) Snapshot() (*EngineSnapshot, error) { return p.eng.Snapshot() }

// RestoreProcess rebuilds a sharded process from a snapshot taken with
// Snapshot. The restored process continues the trajectory exactly: for any
// round r past the snapshot, its loads are byte-identical to those of the
// uninterrupted run.
func RestoreProcess(snap *EngineSnapshot, opts Options) (*Process, error) {
	if opts.OnEmptied != nil {
		return nil, errors.New("shard: RestoreProcess does not support OnEmptied")
	}
	eng, err := RestoreEngine(snap, opts)
	if err != nil {
		return nil, err
	}
	m := eng.Sum()
	if m > math.MaxInt32 {
		return nil, fmt.Errorf("shard: %d balls exceed int32 bin capacity", m)
	}
	return &Process{eng: eng, m: m}, nil
}

// relaunch is the RBB arrival rule: every released ball is re-thrown.
func relaunch(_, released int, _ *rng.Source) int { return released }

// Step advances one synchronous round.
func (p *Process) Step() { p.eng.Step(relaunch) }

// Run advances the process by k rounds.
func (p *Process) Run(k int64) {
	for i := int64(0); i < k; i++ {
		p.Step()
	}
}

// Engine returns the underlying sharded engine.
func (p *Process) Engine() *Engine { return p.eng }

// Close releases the engine's transport resources. Idempotent.
func (p *Process) Close() error { return p.eng.Close() }

// N returns the number of bins.
func (p *Process) N() int { return p.eng.N() }

// Balls returns the number of balls m.
func (p *Process) Balls() int64 { return p.m }

// Round returns the number of completed rounds.
func (p *Process) Round() int64 { return p.eng.Round() }

// MaxLoad returns the current maximum bin load.
func (p *Process) MaxLoad() int32 { return p.eng.MaxLoad() }

// EmptyBins returns the current number of empty bins.
func (p *Process) EmptyBins() int { return p.eng.EmptyBins() }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (p *Process) NonEmptyBins() int { return p.eng.NonEmptyBins() }

// Load returns the load of bin u.
func (p *Process) Load(u int) int32 { return p.eng.Load(u) }

// LoadsCopy returns a fresh copy of the current load vector.
func (p *Process) LoadsCopy() []int32 { return p.eng.LoadsCopy() }

// LoadBytes returns the resident bytes of the load vectors and staging
// areas (see Engine.LoadBytes).
func (p *Process) LoadBytes() int64 { return p.eng.LoadBytes() }

// CheckInvariants verifies ball conservation and the engine invariants.
func (p *Process) CheckInvariants() error {
	if err := p.eng.CheckInvariants(); err != nil {
		return err
	}
	if s := p.eng.Sum(); s != p.m {
		return fmt.Errorf("shard: balls not conserved: %d != %d", s, p.m)
	}
	return nil
}

// TetrisOptions configures a sharded Tetris process.
type TetrisOptions struct {
	// Options configures the sharding (OnEmptied must be nil; the Tetris
	// process owns the hook for its first-emptying tracker).
	Options
	// Law is the arrival law (default tetris.Deterministic).
	Law tetris.ArrivalLaw
	// Lambda is the arrival rate per bin; 0 means the paper's 3/4.
	Lambda float64
}

// Tetris is the sharded Tetris / batched-arrival ("leaky bins") process:
// every round each non-empty bin discards one ball and K fresh balls land
// uniformly at random. It implements engine.Stepper.
//
// The batch is decomposed exactly across shards so the sharded law matches
// the sequential one: under tetris.Deterministic, K = ⌈λn⌉ is split into
// fixed per-shard quotas summing to K (uniform destinations make any split
// law-neutral); under tetris.BinomialArrivals shard s draws
// Binomial(n_s, λ) and under tetris.PoissonArrivals it draws
// Poisson(λ·n_s) from its own stream — sums of independent binomials with
// a common p, and of independent Poissons, recover Binomial(n, λ) and
// Poisson(λn) exactly.
type Tetris struct {
	eng    *Engine
	rule   ArrivalRule
	arrive Arrivals
	balls  int64

	// firstEmpty[u] is the first round at which global bin u was empty (0
	// if it started empty), or −1 if it has never been empty. Written only
	// by u's owning shard during commit (disjoint slices ⇒ race-free);
	// perShardNever counts that shard's never-emptied bins.
	firstEmpty    []int64
	perShardNever []int64
	roundNow      int64 // snapshot of the in-flight round, read by the hook
}

// NewTetris builds a sharded Tetris process over a copy of loads.
func NewTetris(loads []int32, seed uint64, opts TetrisOptions) (*Tetris, error) {
	if opts.OnEmptied != nil {
		return nil, errors.New("shard: NewTetris does not support a caller OnEmptied")
	}
	n := len(loads)
	rule, err := RuleForLaw(opts.Law, opts.Lambda)
	if err != nil {
		return nil, err
	}
	if rule, err = rule.Normalize(); err != nil {
		return nil, err
	}
	t := &Tetris{
		rule:       rule,
		firstEmpty: make([]int64, n),
	}
	shOpts := opts.Options
	shOpts.OnEmptied = t.markEmptied
	eng, err := NewEngine(loads, seed, shOpts)
	if err != nil {
		return nil, err
	}
	t.eng = eng
	t.balls = eng.Sum()
	s := eng.Shards()
	t.perShardNever = make([]int64, s)
	for u, l := range loads {
		if l == 0 {
			t.firstEmpty[u] = 0
		} else {
			t.firstEmpty[u] = -1
			t.perShardNever[eng.shardOf(u)]++
		}
	}
	if t.arrive, err = rule.Arrivals(n, s); err != nil {
		return nil, err
	}
	return t, nil
}

// markEmptied is the engine's OnEmptied hook. It runs during the commit
// phase on the owning shard's worker; different shards touch disjoint
// firstEmpty entries and their own perShardNever slot.
func (t *Tetris) markEmptied(u int) {
	if t.firstEmpty[u] < 0 {
		t.firstEmpty[u] = t.roundNow + 1
		t.perShardNever[t.eng.shardOf(u)]--
	}
}

// Rule returns the canonical arrival rule the process executes.
func (t *Tetris) Rule() ArrivalRule { return t.rule }

// Step advances one round: departures, then the decomposed batch of
// uniform arrivals.
func (t *Tetris) Step() {
	t.roundNow = t.eng.Round()
	t.eng.Step(t.arrive)
	t.balls += int64(t.eng.Staged()) - int64(t.eng.Released())
}

// Run advances the process by k rounds.
func (t *Tetris) Run(k int64) {
	for i := int64(0); i < k; i++ {
		t.Step()
	}
}

// Engine returns the underlying sharded engine.
func (t *Tetris) Engine() *Engine { return t.eng }

// LoadBytes returns the resident bytes of the load vectors and staging
// areas (see Engine.LoadBytes).
func (t *Tetris) LoadBytes() int64 { return t.eng.LoadBytes() }

// Close releases the engine's transport resources. Idempotent.
func (t *Tetris) Close() error { return t.eng.Close() }

// N returns the number of bins.
func (t *Tetris) N() int { return t.eng.N() }

// Round returns the number of completed rounds.
func (t *Tetris) Round() int64 { return t.eng.Round() }

// MaxLoad returns the current maximum bin load.
func (t *Tetris) MaxLoad() int32 { return t.eng.MaxLoad() }

// EmptyBins returns the current number of empty bins.
func (t *Tetris) EmptyBins() int { return t.eng.EmptyBins() }

// NonEmptyBins returns the current number of non-empty bins.
func (t *Tetris) NonEmptyBins() int { return t.eng.NonEmptyBins() }

// Balls returns the current total number of balls (Tetris does not
// conserve balls).
func (t *Tetris) Balls() int64 { return t.balls }

// Load returns the load of bin u.
func (t *Tetris) Load(u int) int32 { return t.eng.Load(u) }

// LoadsCopy returns a fresh copy of the load vector.
func (t *Tetris) LoadsCopy() []int32 { return t.eng.LoadsCopy() }

// FirstEmptyRound returns the first round at which bin u was empty, or −1
// if it has not emptied yet.
func (t *Tetris) FirstEmptyRound(u int) int64 { return t.firstEmpty[u] }

// AllEmptiedRound returns the first round by which every bin had been
// empty at least once, or −1 if some bin has never emptied (Lemma 4: from
// any start this is at most 5n w.h.p.).
func (t *Tetris) AllEmptiedRound() (int64, bool) {
	for _, c := range t.perShardNever {
		if c > 0 {
			return -1, false
		}
	}
	var worst int64
	for _, r := range t.firstEmpty {
		if r > worst {
			worst = r
		}
	}
	return worst, true
}

// CheckInvariants verifies the engine invariants and the ball counter.
func (t *Tetris) CheckInvariants() error {
	if err := t.eng.CheckInvariants(); err != nil {
		return err
	}
	if s := t.eng.Sum(); s != t.balls {
		return fmt.Errorf("shard: tetris ball counter %d != actual %d", t.balls, s)
	}
	return nil
}

// Steppers (compile-time check).
var (
	_ engine.Stepper = (*Process)(nil)
	_ engine.Stepper = (*Tetris)(nil)
)
