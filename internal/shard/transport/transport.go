// Package transport defines the placement abstraction under the sharded
// round protocol: a Runner executes the per-shard work of one protocol
// phase (release or commit) across the shards held in the local process and
// returns only when all of it has completed — it IS the phase barrier of
// the protocol.
//
// The round protocol itself (what runs inside a phase, which buffers move
// between release and commit) lives in internal/shard; a Runner decides
// only *where* the per-shard work executes: freshly spawned goroutines
// (transport/local.Spawn), a persistent worker pool with shard→worker
// affinity (transport/local.Pool, the default), or — one level up, where
// whole shard ranges live in other processes — the multi-process
// coordinator in transport/proc, which composes a local Runner inside each
// worker process.
//
// The determinism contract of internal/shard survives any Runner by
// construction: every per-shard phase function draws only from that shard's
// private rng stream and touches only that shard's state and buffer rows,
// so placement (and scheduling) can change wall-clock but never the
// trajectory. The transport-invariance matrix test in transport/proc pins
// this across all shipped runners.
package transport

// Runner executes per-shard phase work over the shards held in-process.
// Implementations are safe for use from one driving goroutine at a time
// (the round protocol is strictly phase-sequential).
type Runner interface {
	// Run calls f(i) exactly once for every local shard index i in
	// [0, shards) — distributed over the runner's workers — and returns
	// after every call has completed. It is the collective barrier ending
	// a protocol phase.
	Run(f func(i int))
	// Close releases the runner's resources (persistent workers). The
	// runner must not be used afterwards; Close is idempotent.
	Close() error
}
