// Package tcp is the multi-machine transport of the sharded round
// protocol: a coordinator Engine drives the transport-agnostic wire
// protocol (package internal/shard/transport/wire) over TCP sockets, so a
// run can span worker processes on other hosts. The join payload is the
// checkpoint blob, exactly as over pipes — any checkpoint reopens under
// any worker count, transport or machine set, and the trajectory stays the
// same pure function of (seed, n, S, rule), byte-pinned by the
// transport-invariance matrix.
//
// Workers come to exist three ways:
//
//   - Self-spawn (the default, and what tests and single-box runs use):
//     the coordinator listens on Options.Listen (127.0.0.1:0 unless set)
//     and re-executes the current binary P times with RBB_TCP_CONNECT set;
//     each child calls MaybeWorker, dials back and serves the session.
//   - External dial-in (Options.External): operators launch
//     `rbb-sim -worker -connect host:port` on other machines against a
//     coordinator running with -listen; the coordinator accepts the first
//     P connections in arrival order (placement invariance makes the
//     order immaterial).
//   - Host daemons (Options.Hosts): operators run
//     `rbb-sim -worker -listen addr` daemons and the coordinator dials
//     them — the mode rbb-serve uses for placement.hosts, because dialing
//     lets the service verify reachability before accepting a run.
//
// In mesh mode (Options.Mesh) the coordinator distributes a roster at
// join and workers exchange their cross-range buffers directly over
// worker↔worker sockets, halving relay traffic; the coordinator keeps
// only barriers, stats folds and checkpoint frame relay (see the wire
// package doc for the protocol).
package tcp

import (
	"errors"
	"fmt"
	"net"
	"os"
	"os/exec"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/shard/transport/wire"
)

// connectEnvVar carries the coordinator address to a self-spawned worker.
const connectEnvVar = "RBB_TCP_CONNECT"

// Options configures a coordinator Engine.
type Options struct {
	// Procs is the number of worker processes P (clamped to [1, S];
	// with Hosts set it must be 0 or len(Hosts)). The trajectory is
	// independent of it.
	Procs int
	// Workers is the per-process pool worker count handed to each
	// worker's local transport (0 = the worker's GOMAXPROCS).
	Workers int
	// Shards is the shard count S used by NewProcess for fresh runs
	// (Options.Shards convention: 0 = GOMAXPROCS, clamped to n).
	Shards int
	// Width is the per-shard load storage width floor handed to every
	// worker.
	Width engine.Width
	// Kernel is the dense-round kernel handed to every worker.
	Kernel engine.Kernel
	// Rule is the arrival rule the workers execute each round (zero
	// value: relaunch).
	Rule shard.ArrivalRule
	// Mesh switches the exchange to direct worker↔worker delivery.
	Mesh bool
	// Listen is the coordinator's listen address for self-spawned or
	// external workers (default 127.0.0.1:0). Ignored with Hosts.
	Listen string
	// External accepts P operator-launched workers (rbb-sim -worker
	// -connect) on Listen instead of self-spawning.
	External bool
	// Hosts dials one worker daemon (rbb-sim -worker -listen) per entry
	// instead of listening; P becomes len(Hosts).
	Hosts []string
	// Command is the argv launching one self-spawned worker (default:
	// {os.Executable()}). The launched process must call MaybeWorker.
	Command []string
	// AcceptTimeout bounds the wait for each worker connection or host
	// dial (default 60s).
	AcceptTimeout time.Duration
}

// Telemetry of the TCP transport, recorded on the coordinator side.
// Per-peer byte counters are labeled by worker slot ("w0", "w1", ... —
// bounded cardinality) in spawn/accept modes and by host address in
// Hosts mode. Observational only; see the obs package doc.
func linkCounters(peer string) (tx, rx *obs.Counter) {
	tx = obs.Default.Counter("rbb_tcp_tx_bytes_total",
		"Bytes written to one worker's coordinator socket.",
		obs.Label{Key: "peer", Value: peer})
	rx = obs.Default.Counter("rbb_tcp_rx_bytes_total",
		"Bytes read from one worker's coordinator socket.",
		obs.Label{Key: "peer", Value: peer})
	return tx, rx
}

// Engine is the coordinator side of the TCP transport. It implements the
// same stepping surface as shard.Process (engine.Stepper plus Snapshot,
// so checkpoint.Run drives it unchanged); see wire.Coordinator for the
// failure semantics — a mid-round transport failure panics from Step with
// the failing worker's peer address (and exit status, when self-spawned)
// after cancelling the surviving workers.
type Engine struct {
	*wire.Coordinator
	children []*child
}

// child is one self-spawned worker process. The watcher goroutine owns
// werr until it closes done; readers must receive from done first.
type child struct {
	cmd  *exec.Cmd
	done chan struct{}
	werr error
}

// New connects opts-many workers and migrates the snapshot's state into
// them (see the wire package doc for the join payload). The snapshot's
// shard count is authoritative; opts.Procs is clamped to it.
func New(snap *checkpoint.Snapshot, opts Options) (*Engine, error) {
	if snap == nil || snap.Engine == nil {
		return nil, errors.New("tcp: New with nil snapshot")
	}
	s := len(snap.Engine.Shards)
	p := opts.Procs
	if len(opts.Hosts) > 0 {
		if p != 0 && p != len(opts.Hosts) {
			return nil, fmt.Errorf("tcp: %d procs with %d hosts", p, len(opts.Hosts))
		}
		if len(opts.Hosts) > s {
			return nil, fmt.Errorf("tcp: %d hosts for %d shards", len(opts.Hosts), s)
		}
		p = len(opts.Hosts)
	}
	if p < 1 {
		p = 1
	}
	if p > s {
		p = s
	}
	e := &Engine{}
	links, err := e.connectWorkers(p, opts)
	if err != nil {
		e.reap()
		return nil, err
	}
	transport := "tcp"
	if opts.Mesh {
		transport = "tcp-mesh"
	}
	co, err := wire.NewCoordinator(snap, links, wire.Config{
		Workers:   opts.Workers,
		Width:     opts.Width,
		Kernel:    opts.Kernel,
		Rule:      opts.Rule,
		Mesh:      opts.Mesh,
		Transport: transport,
	})
	if err != nil {
		e.reap()
		return nil, fmt.Errorf("tcp: %w", err)
	}
	e.Coordinator = co
	return e, nil
}

// NewProcess builds a fresh multi-process run over a copy of loads — the
// same pure function of (seed, len(loads), shards, rule) as the
// in-process engines, executed across TCP workers.
func NewProcess(loads []int32, seed uint64, opts Options) (*Engine, error) {
	es, err := shard.InitialSnapshot(loads, seed, opts.Shards, opts.Width)
	if err != nil {
		return nil, err
	}
	return New(&checkpoint.Snapshot{Seed: seed, Engine: es}, opts)
}

// connectWorkers establishes the P worker sockets: dialing host daemons,
// or listening and (unless External) self-spawning dial-back children.
func (e *Engine) connectWorkers(p int, opts Options) ([]*wire.Link, error) {
	timeout := opts.AcceptTimeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	if len(opts.Hosts) > 0 {
		links := make([]*wire.Link, 0, p)
		for _, h := range opts.Hosts {
			nc, err := dialWorker(h, timeout)
			if err != nil {
				for _, l := range links {
					l.CloseIO()
				}
				return nil, err
			}
			links = append(links, e.link(nc, h, h))
		}
		return links, nil
	}
	addr := opts.Listen
	if addr == "" {
		addr = "127.0.0.1:0"
	}
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("tcp: listening on %s: %w", addr, err)
	}
	defer ln.Close()
	if !opts.External {
		argv := opts.Command
		if len(argv) == 0 {
			exe, err := os.Executable()
			if err != nil {
				return nil, fmt.Errorf("tcp: resolving worker binary: %w", err)
			}
			argv = []string{exe}
		}
		for i := 0; i < p; i++ {
			if err := e.spawn(argv, ln.Addr().String()); err != nil {
				return nil, err
			}
		}
	}
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Now().Add(timeout))
	}
	links := make([]*wire.Link, 0, p)
	for i := 0; i < p; i++ {
		nc, err := ln.Accept()
		if err != nil {
			for _, l := range links {
				l.CloseIO()
			}
			// A self-spawned child that died before dialing back explains
			// the missed accept far better than the bare timeout does.
			if dead := e.anyExited(); dead != nil {
				return nil, fmt.Errorf("tcp: accepting worker %d of %d: %w", i+1, p, dead)
			}
			return nil, fmt.Errorf("tcp: accepting worker %d of %d: %w", i+1, p, err)
		}
		links = append(links, e.link(nc, nc.RemoteAddr().String(), fmt.Sprintf("w%d", i)))
	}
	return links, nil
}

// dialWorker dials one worker daemon under a trace span.
func dialWorker(addr string, timeout time.Duration) (net.Conn, error) {
	sp := obs.StartSpan("dial "+addr, obs.LanePhases)
	nc, err := net.DialTimeout("tcp", addr, timeout)
	sp.End()
	if err != nil {
		return nil, fmt.Errorf("tcp: dialing worker %s: %w", addr, err)
	}
	return nc, nil
}

// link wraps one worker socket. Exited reports a freshly-dead self-spawned
// worker (arrival order does not identify which child owns which socket,
// so any child's exit status decorates the failure — with one dead worker,
// the usual case, it is the right one).
func (e *Engine) link(nc net.Conn, name, peerLabel string) *wire.Link {
	tx, rx := linkCounters(peerLabel)
	return &wire.Link{
		R:       nc,
		W:       nc,
		Name:    name,
		Tx:      tx,
		Rx:      rx,
		Exited:  e.anyExited,
		CloseIO: func() { nc.Close() },
	}
}

// spawn launches one dial-back worker child and its exit watcher.
func (e *Engine) spawn(argv []string, addr string) error {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), connectEnvVar+"="+addr)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		return fmt.Errorf("tcp: spawning worker: %w", err)
	}
	c := &child{cmd: cmd, done: make(chan struct{})}
	e.children = append(e.children, c)
	go func() {
		c.werr = cmd.Wait()
		close(c.done)
	}()
	return nil
}

// anyExited reports the first self-spawned worker found dead, giving a
// dying child a moment to be reaped so its exit status makes the error.
func (e *Engine) anyExited() error {
	if len(e.children) == 0 {
		return nil
	}
	deadline := time.Now().Add(500 * time.Millisecond)
	for {
		for _, c := range e.children {
			select {
			case <-c.done:
				if c.werr != nil {
					return fmt.Errorf("worker pid %d exited: %w", c.cmd.Process.Pid, c.werr)
				}
				return fmt.Errorf("worker pid %d exited", c.cmd.Process.Pid)
			default:
			}
		}
		if time.Now().After(deadline) {
			return nil
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// reap force-kills and waits any self-spawned children (bounded); used on
// construction failure and after Close.
func (e *Engine) reap() {
	for _, c := range e.children {
		select {
		case <-c.done:
		case <-time.After(5 * time.Second):
			c.cmd.Process.Kill()
			<-c.done
		}
	}
	e.children = nil
}

// Close shuts the workers down (quit frames, socket close) and reaps any
// self-spawned children with a bounded wait. Idempotent.
func (e *Engine) Close() error {
	var err error
	if e.Coordinator != nil {
		err = e.Coordinator.Close()
	}
	e.reap()
	return err
}

// Probe checks that a worker daemon at addr is reachable: it dials and
// immediately closes (daemons treat a connection with no frames as a
// non-event). rbb-serve uses it to reject unreachable placement hosts at
// submit time instead of failing mid-run.
func Probe(addr string, timeout time.Duration) error {
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	nc, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return err
	}
	return nc.Close()
}
