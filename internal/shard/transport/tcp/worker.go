package tcp

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"

	"repro/internal/obs"
	"repro/internal/shard/transport/wire"
)

// IsWorker reports whether this process was spawned as a tcp-transport
// dial-back worker.
func IsWorker() bool { return os.Getenv(connectEnvVar) != "" }

// MaybeWorker turns the process into a transport worker when it was
// self-spawned as one: it dials the coordinator named by RBB_TCP_CONNECT,
// serves the session and exits. In any other process it returns
// immediately. Every binary that constructs a tcp Engine must call it
// first thing in main (alongside proc.MaybeWorker).
func MaybeWorker() {
	addr := os.Getenv(connectEnvVar)
	if addr == "" {
		return
	}
	if err := Connect(addr); err != nil {
		fmt.Fprintln(os.Stderr, "rbb tcp worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Connect dials a coordinator and serves one worker session until the
// coordinator quits or disconnects — the `rbb-sim -worker -connect`
// entry point for workers launched on other hosts against a listening
// coordinator.
func Connect(addr string) error {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return fmt.Errorf("tcp: dialing coordinator %s: %w", addr, err)
	}
	defer nc.Close()
	if err := serveSession(nc); err != nil && !errors.Is(err, io.EOF) {
		return err
	}
	return nil
}

// ListenAndServe runs a worker daemon: it listens on addr and serves one
// coordinator session at a time, forever — the `rbb-sim -worker -listen`
// entry point for the host-daemon mode rbb-serve's placement.hosts dials.
// Connections that close before sending a frame (reachability probes) are
// ignored; session errors are logged to logw (default stderr) and the
// daemon keeps serving. It returns only on a listener failure.
func ListenAndServe(addr string, logw io.Writer) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("tcp: listening on %s: %w", addr, err)
	}
	if logw == nil {
		logw = os.Stderr
	}
	fmt.Fprintf(logw, "rbb tcp worker: listening on %s\n", ln.Addr())
	return Serve(ln, logw)
}

// Serve is ListenAndServe over an existing listener (tests use it to
// learn the bound port before serving).
func Serve(ln net.Listener, logw io.Writer) error {
	if logw == nil {
		logw = os.Stderr
	}
	for {
		nc, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("tcp: accepting coordinator: %w", err)
		}
		if err := serveSession(nc); err != nil && !errors.Is(err, io.EOF) {
			fmt.Fprintf(logw, "rbb tcp worker: session from %s: %v\n", nc.RemoteAddr(), err)
		}
		nc.Close()
	}
}

// serveSession runs the wire worker protocol over one coordinator socket.
// The peer listener for mesh mode binds the same interface the
// coordinator reached us on (its address is what peers on other machines
// can route to) with an ephemeral port.
func serveSession(nc net.Conn) error {
	return wire.ServeWorker(nc, nc, wire.WorkerConfig{
		NewPeerListener: func() (net.Listener, string, error) {
			host, _, err := net.SplitHostPort(nc.LocalAddr().String())
			if err != nil {
				return nil, "", err
			}
			ln, err := net.Listen("tcp", net.JoinHostPort(host, "0"))
			if err != nil {
				return nil, "", err
			}
			return ln, ln.Addr().String(), nil
		},
		PeerCounters: func(peer string) (tx, rx *obs.Counter) {
			// Worker-side registries are scraped by nothing today; the
			// counters exist so a future worker telemetry endpoint gets
			// mesh traffic for free.
			tx = obs.Default.Counter("rbb_mesh_tx_bytes_total",
				"Bytes written to one peer's mesh socket.",
				obs.Label{Key: "peer", Value: peer})
			rx = obs.Default.Counter("rbb_mesh_rx_bytes_total",
				"Bytes read from one peer's mesh socket.",
				obs.Label{Key: "peer", Value: peer})
			return tx, rx
		},
	})
}
