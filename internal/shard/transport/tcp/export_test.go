package tcp

// KillWorker force-kills the i-th self-spawned worker child, simulating
// a mid-run worker death for the fail-fast tests. Test binaries only.
func (e *Engine) KillWorker(i int) {
	c := e.children[i]
	c.cmd.Process.Kill()
	<-c.done
}
