package tcp_test

import (
	"bytes"
	"io"
	"net"
	"os"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/shard"
	"repro/internal/shard/transport/proc"
	"repro/internal/shard/transport/tcp"
	"repro/internal/tetris"
)

// The coordinator re-executes this test binary as its workers: the proc
// hook serves pipe workers, the tcp hook dials back self-spawned tcp
// workers. In a normal test process both return immediately.
func TestMain(m *testing.M) {
	proc.MaybeWorker()
	tcp.MaybeWorker()
	os.Exit(m.Run())
}

// ckptBytes serializes the current engine state of p in the checkpoint
// format, the strongest equality we can assert across transports.
func ckptBytes(t *testing.T, seed uint64, p checkpoint.Process) []byte {
	t.Helper()
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	var b bytes.Buffer
	if err := checkpoint.Save(&b, &checkpoint.Snapshot{Seed: seed, Engine: snap}); err != nil {
		t.Fatalf("Save: %v", err)
	}
	return b.Bytes()
}

// TestTransportInvarianceMatrixTCP extends the transport-invariance
// matrix across the TCP transport: the in-process pool, the pipe
// transport, the TCP star and the TCP worker mesh must all produce
// byte-identical checkpoints for the same (seed, n, S).
func TestTransportInvarianceMatrixTCP(t *testing.T) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 16
	}
	const (
		seed   = 3
		s      = 8
		rounds = 50
	)
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = 1
	}

	run := func(t *testing.T, build func() (checkpoint.Process, func() error, error)) []byte {
		t.Helper()
		p, close, err := build()
		if err != nil {
			t.Fatalf("build: %v", err)
		}
		defer close()
		for r := 0; r < rounds; r++ {
			p.(interface{ Step() }).Step()
		}
		return ckptBytes(t, seed, p)
	}

	want := run(t, func() (checkpoint.Process, func() error, error) {
		p, err := shard.NewProcess(loads, seed, shard.Options{Shards: s, Workers: 4})
		if err != nil {
			return nil, nil, err
		}
		return p, p.Close, nil
	})

	variants := []struct {
		name  string
		build func() (checkpoint.Process, func() error, error)
	}{
		{"proc-P2", func() (checkpoint.Process, func() error, error) {
			e, err := proc.NewProcess(loads, seed, proc.Options{Shards: s, Procs: 2, Workers: 2})
			if err != nil {
				return nil, nil, err
			}
			return e, e.Close, nil
		}},
		{"tcp-P2", func() (checkpoint.Process, func() error, error) {
			e, err := tcp.NewProcess(loads, seed, tcp.Options{Shards: s, Procs: 2, Workers: 2})
			if err != nil {
				return nil, nil, err
			}
			return e, e.Close, nil
		}},
		{"tcp-mesh-P2", func() (checkpoint.Process, func() error, error) {
			e, err := tcp.NewProcess(loads, seed, tcp.Options{Shards: s, Procs: 2, Workers: 2, Mesh: true})
			if err != nil {
				return nil, nil, err
			}
			return e, e.Close, nil
		}},
	}
	for _, v := range variants {
		t.Run(v.name, func(t *testing.T) {
			if got := run(t, v.build); !bytes.Equal(got, want) {
				t.Fatalf("%s checkpoint differs from pool after %d rounds", v.name, rounds)
			}
		})
	}
}

// TestTCPMigrationFromPipes pins the cross-transport resume path: a run
// born on the pipe transport, checkpointed mid-flight and reopened on
// TCP mesh workers with a different P must land byte-identical to an
// uninterrupted in-process run.
func TestTCPMigrationFromPipes(t *testing.T) {
	const (
		n     = 1 << 14
		seed  = 29
		s     = 6
		half  = 40
		total = 100
	)
	loads := make([]int32, n)

	full, err := shard.NewProcess(loads, seed, shard.Options{Shards: s})
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	defer full.Close()
	full.Run(total)
	want := ckptBytes(t, seed, full)

	first, err := proc.NewProcess(loads, seed, proc.Options{Shards: s, Procs: 2})
	if err != nil {
		t.Fatalf("proc.NewProcess: %v", err)
	}
	for r := 0; r < half; r++ {
		first.Step()
	}
	mid := ckptBytes(t, seed, first)
	if err := first.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	snap, err := checkpoint.Load(bytes.NewReader(mid))
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	e, err := tcp.New(snap, tcp.Options{Procs: 3, Mesh: true})
	if err != nil {
		t.Fatalf("tcp.New: %v", err)
	}
	defer e.Close()
	if got := e.Round(); got != half {
		t.Fatalf("resumed at round %d, want %d", got, half)
	}
	for r := half; r < total; r++ {
		e.Step()
	}
	if got := ckptBytes(t, seed, e); !bytes.Equal(got, want) {
		t.Fatalf("pipes-born run migrated to tcp mesh diverged from uninterrupted run")
	}
}

// TestTCPHostsAndProbe drives the host-daemon mode in-process: two
// Serve loops on loopback listeners play the role of `rbb-sim -worker
// -listen` daemons, the coordinator dials them via Options.Hosts, and
// the mesh run must match the in-process pool. Probe must accept the
// live daemons (and not disturb them — the run follows the probes on
// the same listeners) and reject a dead port.
func TestTCPHostsAndProbe(t *testing.T) {
	const (
		n      = 1 << 14
		seed   = 7
		s      = 4
		rounds = 60
	)
	loads := make([]int32, n)

	hosts := make([]string, 2)
	for i := range hosts {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("Listen: %v", err)
		}
		defer ln.Close()
		hosts[i] = ln.Addr().String()
		go tcp.Serve(ln, io.Discard)
	}

	for _, h := range hosts {
		if err := tcp.Probe(h, time.Second); err != nil {
			t.Fatalf("Probe(%s): %v", h, err)
		}
	}
	dead, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("Listen: %v", err)
	}
	deadAddr := dead.Addr().String()
	dead.Close()
	if err := tcp.Probe(deadAddr, 500*time.Millisecond); err == nil {
		t.Fatalf("Probe(%s) of a closed port succeeded", deadAddr)
	}

	ref, err := shard.NewProcess(loads, seed, shard.Options{Shards: s})
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	defer ref.Close()
	ref.Run(rounds)
	want := ckptBytes(t, seed, ref)

	e, err := tcp.NewProcess(loads, seed, tcp.Options{Shards: s, Hosts: hosts, Mesh: true})
	if err != nil {
		t.Fatalf("tcp.NewProcess(hosts): %v", err)
	}
	defer e.Close()
	if got := e.Procs(); got != len(hosts) {
		t.Fatalf("Procs() = %d, want %d", got, len(hosts))
	}
	for r := 0; r < rounds; r++ {
		e.Step()
	}
	if got := ckptBytes(t, seed, e); !bytes.Equal(got, want) {
		t.Fatalf("hosts-mode mesh checkpoint differs from pool")
	}
}

// TestArrivalRulesOverTCP pins the serialized arrival rules: each rule
// kind crosses the wire and produces the same trajectory on TCP mesh
// workers as the pipe transport (byte-identical checkpoints) and as the
// in-process Tetris engine (identical loads and ball counts).
func TestArrivalRulesOverTCP(t *testing.T) {
	const (
		n      = 1 << 13
		seed   = 17
		s      = 4
		rounds = 80
	)
	laws := []struct {
		name string
		law  tetris.ArrivalLaw
	}{
		{"quota", tetris.Deterministic},
		{"binomial", tetris.BinomialArrivals},
		{"poisson", tetris.PoissonArrivals},
	}
	for _, l := range laws {
		t.Run(l.name, func(t *testing.T) {
			loads := make([]int32, n)
			ref, err := shard.NewTetris(loads, seed, shard.TetrisOptions{Options: shard.Options{Shards: s}, Law: l.law})
			if err != nil {
				t.Fatalf("NewTetris: %v", err)
			}
			defer ref.Close()
			ref.Run(rounds)
			rule := ref.Rule()

			pipe, err := proc.NewProcess(loads, seed, proc.Options{Shards: s, Procs: 2, Rule: rule})
			if err != nil {
				t.Fatalf("proc.NewProcess: %v", err)
			}
			defer pipe.Close()
			mesh, err := tcp.NewProcess(loads, seed, tcp.Options{Shards: s, Procs: 2, Rule: rule, Mesh: true})
			if err != nil {
				t.Fatalf("tcp.NewProcess: %v", err)
			}
			defer mesh.Close()
			for r := 0; r < rounds; r++ {
				pipe.Step()
				mesh.Step()
			}

			if got, want := ckptBytes(t, seed, mesh), ckptBytes(t, seed, pipe); !bytes.Equal(got, want) {
				t.Fatalf("%s rule: tcp-mesh checkpoint differs from proc", l.name)
			}
			if got, want := mesh.Balls(), ref.Balls(); got != want {
				t.Fatalf("%s rule: Balls() = %d over tcp, %d in process", l.name, got, want)
			}
			got, want := mesh.LoadsCopy(), ref.LoadsCopy()
			if !bytes.Equal(int32Bytes(got), int32Bytes(want)) {
				t.Fatalf("%s rule: loads diverged between tcp mesh and in-process tetris", l.name)
			}
		})
	}
}

func int32Bytes(v []int32) []byte {
	b := make([]byte, 0, 4*len(v))
	for _, x := range v {
		b = append(b, byte(x), byte(x>>8), byte(x>>16), byte(x>>24))
	}
	return b
}

// TestTCPWorkerDeathFailFast kills one worker mid-run and requires the
// coordinator to fail fast — a panic naming the dead worker (with its
// exit status, since it is self-spawned) rather than a hang on the dead
// socket — and to shut the surviving worker down cleanly.
func TestTCPWorkerDeathFailFast(t *testing.T) {
	const (
		n    = 1 << 12
		seed = 5
		s    = 4
	)
	loads := make([]int32, n)
	e, err := tcp.NewProcess(loads, seed, tcp.Options{Shards: s, Procs: 2})
	if err != nil {
		t.Fatalf("tcp.NewProcess: %v", err)
	}
	defer e.Close()
	e.Step()
	e.KillWorker(0)

	done := make(chan any, 1)
	go func() {
		defer func() { done <- recover() }()
		for i := 0; i < 1_000_000; i++ {
			e.Step()
		}
		done <- nil
	}()
	select {
	case r := <-done:
		if r == nil {
			t.Fatalf("Step kept succeeding after worker kill")
		}
		msg, ok := r.(string)
		if !ok {
			if err, isErr := r.(error); isErr {
				msg = err.Error()
			} else {
				t.Fatalf("panic value %T: %v", r, r)
			}
		}
		if !strings.Contains(msg, "round") || !strings.Contains(msg, "exited") {
			t.Fatalf("panic %q does not name the round and the dead worker", msg)
		}
	case <-time.After(30 * time.Second):
		t.Fatalf("coordinator hung on dead worker instead of failing fast")
	}
}

// TestTCPValidation exercises the construction guard rails.
func TestTCPValidation(t *testing.T) {
	if _, err := tcp.New(nil, tcp.Options{}); err == nil {
		t.Fatalf("New(nil) succeeded")
	}
	if _, err := tcp.NewProcess(make([]int32, 8), 1, tcp.Options{Shards: 2, Procs: 3, Hosts: []string{"a", "b"}}); err == nil {
		t.Fatalf("mismatched Procs vs Hosts succeeded")
	}
	if _, err := tcp.NewProcess(make([]int32, 8), 1, tcp.Options{Shards: 2, Hosts: []string{"a", "b", "c"}}); err == nil {
		t.Fatalf("more hosts than shards succeeded")
	}
	// Procs above S clamps rather than errors, mirroring proc.
	e, err := tcp.NewProcess(make([]int32, 16), 1, tcp.Options{Shards: 2, Procs: 8})
	if err != nil {
		t.Fatalf("NewProcess: %v", err)
	}
	if got := e.Procs(); got != 2 {
		t.Fatalf("Procs() = %d, want clamp to 2", got)
	}
	e.Step()
	if err := e.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestTCPSpawnExitStatus: a self-spawned worker that dies before joining
// fails construction with its exit status in the error, not a bare accept
// timeout.
func TestTCPSpawnExitStatus(t *testing.T) {
	_, err := tcp.NewProcess(make([]int32, 8), 1, tcp.Options{
		Shards: 2, Procs: 2,
		Command:       []string{"/bin/false"},
		AcceptTimeout: 2 * time.Second,
	})
	if err == nil {
		t.Fatal("dead-on-arrival worker command succeeded")
	}
	if !strings.Contains(err.Error(), "exited") || !strings.Contains(err.Error(), "exit status 1") {
		t.Fatalf("error %q does not carry the worker's exit status", err)
	}
}

// benchTCP measures dense rounds over the loopback TCP transport; the
// star/mesh pair is the BENCH_tcp.json ablation (EXPERIMENTS.md E26):
// identical trajectories, different relay topology.
func benchTCP(b *testing.B, mesh bool) {
	n := 1 << 20
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = 1
	}
	e, err := tcp.NewProcess(loads, 1, tcp.Options{Shards: 8, Procs: 2, Mesh: mesh})
	if err != nil {
		b.Fatal(err)
	}
	defer e.Close()
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

func BenchmarkTCPStar(b *testing.B) { benchTCP(b, false) }
func BenchmarkTCPMesh(b *testing.B) { benchTCP(b, true) }
