// Package wire is the transport-agnostic framing and round protocol shared
// by the multi-process transports (transport/proc over pipes, transport/tcp
// over sockets): a Coordinator in the submitting process drives P workers,
// each holding a contiguous range of the run's shards in a shard.Group, over
// any pair of byte streams. The transports only differ in how the streams
// come to exist — spawned pipes or dialed sockets — and hand them to this
// package as Links.
//
// # Worker join payload
//
// A worker joins by receiving the protocol version, its shard range, the
// serialized arrival rule (shard.ArrivalRule — so every process kind
// crosses process and machine boundaries), and the checkpoint-format-v2
// header of the run plus one self-checksummed frame per shard it owns —
// only its own state, not the whole run. State migration between process
// topologies and machines is therefore free: any checkpoint can be
// reopened under any worker count or transport (the shard count, not the
// placement, is the random law's key), and the coordinator never buffers a
// serialized copy of the whole run.
//
// # Round protocol (star)
//
//	coordinator → workers     step
//	workers     → coordinator exchange: every (src, dst) buffer with a
//	                          remote destination
//	coordinator → workers     commit: the inbound buffers of each worker's
//	                          shards, relayed from their source workers
//	workers     → coordinator stats: released/staged counts + per-range
//	                          max load, empty bins, resident load bytes
//
// The round-trips are the collective barriers: the coordinator sends no
// commit before reading every exchange, and completes no Step before
// reading every stats fold, so the two-phase structure of the in-process
// engine is preserved exactly.
//
// # Round protocol (mesh)
//
// In mesh mode the coordinator leaves the data path. At join each worker
// opens a peer listener and reports its address in the init ack; the
// coordinator distributes the roster, worker i dials every peer j < i
// (identified by a hello preamble) and accepts every j > i, and acks with
// a ready frame. A round is then
//
//	coordinator → workers     step
//	worker i    → worker j    peer frame: round id + the (src, dst)
//	                          buffers from i's shards to j's, directly
//	workers     → coordinator stats (as above — the round's only barrier)
//
// Each ball crosses the network once instead of twice and the coordinator
// relays nothing; it keeps only the barrier, the stats fold, and the
// checkpoint frame relay. Writes to peers run on one goroutine per peer
// while reads drain sequentially — every stream has a single reader and a
// single writer, so the mesh cannot deadlock — and the per-(src, dst)
// buffers carry explicit indices that are validated against the sender's
// range on receipt. The trajectory is the same pure function of
// (seed, n, S, rule) as in-process execution — pinned byte-for-byte by the
// transport-invariance matrix test and the CI proc-/tcp-equivalence gates.
package wire

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"repro/internal/obs"
	"repro/internal/shard"
)

// ProtoVersion is the wire protocol version, checked at worker join so a
// mixed-binary deployment fails loudly instead of desynchronizing.
// Version 3 moved the framing out of transport/proc and added the arrival
// rule to the init frame, the released/staged counts to the stats frame,
// and the roster/ready/peer frames of the worker↔worker mesh. Version 4
// added the dense-round kernel byte to the init frame (after the width
// floor).
const ProtoVersion = 4

// Message types. Every frame is one type byte followed by a type-specific
// payload; the per-message layouts are documented next to their writers.
const (
	mInit        byte = iota + 1 // c→w: version, lo, hi, workers, width floor, kernel, arrival rule, mesh flag, v2 header + owned shard frames
	mInitOK                      // w→c: join acknowledged + resident load bytes + peer-listen address (empty in star mode)
	mStep                        // c→w: run the release phase (mesh: the whole round)
	mExchange                    // w→c (star): remote-destined buffers
	mCommit                      // c→w (star): inbound buffers; run the commit phase
	mStats                       // w→c: released/staged + post-commit max load, empty bins, resident load bytes
	mSnapshotReq                 // c→w: encode the owned shards (compress byte)
	mSnapshot                    // w→c: length-prefixed v2 shard frames, in shard order
	mQuit                        // c→w: exit cleanly
	mErr                         // w→c: fatal worker error (utf-8 description)
	mRoster                      // c→w (mesh): worker's own index + every worker's peer address
	mReady                       // w→c (mesh): all peer links established
	mPeerFrame                   // w→w (mesh): round id + the (src, dst) buffers between the two ranges
)

// peerMagic opens a dialed peer connection ahead of the hello indices, so
// a stray connection to a peer listener fails loudly instead of
// desynchronizing the mesh.
const peerMagic uint64 = 0x5242424d45534833 // "RBBMESH3"

// maxBufLen caps a single decoded exchange buffer (paranoia against a
// desynchronized stream demanding an absurd allocation; the chunked decode
// already bounds memory by the bytes actually present). 1<<31 − 1 so the
// untyped constant still fits an int on 32-bit platforms.
const maxBufLen = 1<<31 - 1

// maxAddrLen bounds a roster peer address.
const maxAddrLen = 1 << 10

// conn is one framed stream endpoint: buffered reads and writes of
// little-endian values with first-error latching, mirroring the codec
// style of internal/checkpoint. The read and write halves keep separate
// scratch and error state, so one goroutine may read while another
// writes — the shape the mesh exchange relies on; neither half tolerates
// two concurrent users.
type conn struct {
	br   *bufio.Reader
	bw   *bufio.Writer
	rerr error
	werr error
	rb   [8]byte
	wb   [8]byte
}

// newConn frames the stream, counting raw bytes into the optional
// counters (one atomic add per 64 KiB buffered transfer).
func newConn(r io.Reader, w io.Writer, tx, rx *obs.Counter) *conn {
	if rx != nil {
		r = countingReader{r, rx}
	}
	if tx != nil {
		w = countingWriter{w, tx}
	}
	return &conn{
		br: bufio.NewReaderSize(r, 1<<16),
		bw: bufio.NewWriterSize(w, 1<<16),
	}
}

// err returns the first latched error of either half.
func (c *conn) err() error {
	if c.werr != nil {
		return c.werr
	}
	return c.rerr
}

func (c *conn) failW(err error) {
	if c.werr == nil && err != nil {
		c.werr = err
	}
}

func (c *conn) failR(err error) {
	if c.rerr == nil && err != nil {
		c.rerr = err
	}
}

func (c *conn) wBytes(p []byte) {
	if c.werr == nil {
		_, err := c.bw.Write(p)
		c.failW(err)
	}
}

func (c *conn) wByte(v byte) { c.wBytes([]byte{v}) }

func (c *conn) wU32(v uint32) {
	binary.LittleEndian.PutUint32(c.wb[:4], v)
	c.wBytes(c.wb[:4])
}

func (c *conn) wU64(v uint64) {
	binary.LittleEndian.PutUint64(c.wb[:8], v)
	c.wBytes(c.wb[:8])
}

// wI32Buf writes a length-prefixed []int32 in bulk chunks.
func (c *conn) wI32Buf(vs []int32) {
	c.wU32(uint32(len(vs)))
	var chunk [1 << 12]byte
	for len(vs) > 0 && c.werr == nil {
		k := len(vs)
		if k > len(chunk)/4 {
			k = len(chunk) / 4
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], uint32(vs[i]))
		}
		c.wBytes(chunk[:4*k])
		vs = vs[k:]
	}
}

// wBlob writes a u64-length-prefixed byte blob (a checkpoint frame on the
// join and snapshot paths, an address on the roster path).
func (c *conn) wBlob(p []byte) {
	c.wU64(uint64(len(p)))
	c.wBytes(p)
}

// rBlob reads a u64-length-prefixed byte blob bounded by maxLen.
func (c *conn) rBlob(maxLen uint64) []byte {
	n := c.rU64()
	if c.rerr != nil {
		return nil
	}
	if n > maxLen {
		c.failR(fmt.Errorf("wire: %d-byte blob exceeds bound %d", n, maxLen))
		return nil
	}
	buf := make([]byte, int(n))
	if _, err := io.ReadFull(c.br, buf); err != nil {
		c.failR(fmt.Errorf("wire: truncated blob: %w", err))
		return nil
	}
	return buf
}

func (c *conn) flush() {
	if c.werr == nil {
		c.failW(c.bw.Flush())
	}
}

func (c *conn) read(n int) []byte {
	if c.rerr == nil {
		if _, err := io.ReadFull(c.br, c.rb[:n]); err != nil {
			if err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("wire: truncated frame: %w", err)
			}
			c.failR(err)
			for i := range c.rb {
				c.rb[i] = 0
			}
		}
	}
	return c.rb[:n]
}

func (c *conn) rByte() byte  { return c.read(1)[0] }
func (c *conn) rU32() uint32 { return binary.LittleEndian.Uint32(c.read(4)) }
func (c *conn) rU64() uint64 { return binary.LittleEndian.Uint64(c.read(8)) }

// rI32Buf reads a length-prefixed []int32 into dst's backing array
// (growing it as needed) and returns the filled slice. Decoding is chunked
// so a corrupted length cannot demand memory beyond the bytes present.
func (c *conn) rI32Buf(dst []int32) []int32 {
	cnt := int(c.rU32())
	if c.rerr != nil {
		return dst[:0]
	}
	if cnt < 0 || cnt > maxBufLen {
		c.failR(fmt.Errorf("wire: exchange buffer of %d balls", cnt))
		return dst[:0]
	}
	dst = dst[:0]
	var chunk [1 << 12]byte
	for got := 0; got < cnt && c.rerr == nil; {
		k := cnt - got
		if k > len(chunk)/4 {
			k = len(chunk) / 4
		}
		if _, err := io.ReadFull(c.br, chunk[:4*k]); err != nil {
			c.failR(fmt.Errorf("wire: truncated exchange buffer: %w", err))
			return dst
		}
		for i := 0; i < k; i++ {
			dst = append(dst, int32(binary.LittleEndian.Uint32(chunk[4*i:])))
		}
		got += k
	}
	return dst
}

// wErrFrame sends a fatal worker error (best effort).
func (c *conn) wErrFrame(err error) {
	c.werr = nil // report even after a latched failure
	msg := []byte(err.Error())
	c.wByte(mErr)
	c.wU32(uint32(len(msg)))
	c.wBytes(msg)
	c.flush()
}

// expect reads the next frame type and requires it to be want, decoding a
// worker error frame into a Go error.
func (c *conn) expect(want byte) error {
	t := c.rByte()
	if c.rerr != nil {
		return c.rerr
	}
	if t == mErr {
		n := int(c.rU32())
		if c.rerr != nil || n < 0 || n > 1<<16 {
			return errors.New("wire: worker failed (unreadable error frame)")
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(c.br, msg); err != nil {
			return fmt.Errorf("wire: worker failed (truncated error frame): %w", err)
		}
		return fmt.Errorf("wire: worker: %s", msg)
	}
	if t != want {
		return fmt.Errorf("wire: unexpected frame type %d (want %d)", t, want)
	}
	return nil
}

// frameBound is the sanity cap on one relayed shard frame: the widest raw
// payload (int32 loads) plus flate slack and framing.
func frameBound(n, s, i int) uint64 {
	size := uint64(shard.PartitionSize(n, s, i))
	raw := 48 + size*4 + (size+63)/64*8
	return raw + raw/8 + 128
}

// countingReader / countingWriter sit between the raw stream and the
// bufio layer, so one atomic add covers a whole buffered transfer.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 && obs.Enabled() {
		cr.c.Add(uint64(n))
	}
	return n, err
}

type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 && obs.Enabled() {
		cw.c.Add(uint64(n))
	}
	return n, err
}
