package wire

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
)

// Telemetry of the coordinator, recorded on the coordinator side (workers
// count into their own process registries, which nothing scrapes; that is
// deliberate — the coordinator owns the run's metrics surface).
// Observational only; see the obs package doc. Same families the
// in-process kernel registers: in a multi-process run the coordinator
// holds no Group, so these count the relayed (cross-process) legs.
var (
	mPhaseExchange = obs.Default.Histogram("rbb_phase_seconds",
		"Wall-clock duration of one round-protocol phase across all owned shards.",
		nil, obs.Label{Key: "phase", Value: "exchange"})
	mRounds = obs.Default.Counter("rbb_rounds_total",
		"Completed simulation rounds.")
	mExchangeBalls = obs.Default.Counter("rbb_exchange_balls_total",
		"Balls moved through the exchange (drained at commit).")
	mExchangeMsgs = obs.Default.Counter("rbb_exchange_messages_total",
		"Non-empty shard-to-shard exchange buffers drained at commit.")
)

// Link is one worker connection handed to the coordinator by a transport:
// a byte stream plus the transport-specific hooks the coordinator needs to
// fail fast and shut down cleanly. The coordinator owns the stream from
// NewCoordinator on.
type Link struct {
	// R and W are the stream halves (a pipe pair, one socket).
	R io.Reader
	W io.Writer
	// Name identifies the worker in errors: a peer address, a pid.
	Name string
	// Tx and Rx count raw stream bytes when non-nil.
	Tx, Rx *obs.Counter
	// Exited, when non-nil, reports how the worker process died (its exit
	// status) so a stream failure carries the root cause. It must not
	// block for long and must return nil while the worker is alive.
	Exited func() error
	// CloseIO force-closes the underlying stream, unblocking any pending
	// read or write on either end. Required.
	CloseIO func()
	// Finalize reaps the worker after CloseIO (bounded process wait,
	// socket teardown). Optional.
	Finalize func() error

	c      *conn
	lo, hi int
}

// Config configures a Coordinator.
type Config struct {
	// Workers is the per-process pool worker count handed to each
	// worker's local transport (0 = the worker's GOMAXPROCS). The
	// trajectory is independent of it.
	Workers int
	// Width is the per-shard load storage width floor handed to every
	// worker. The trajectory is independent of it.
	Width engine.Width
	// Kernel is the dense-round kernel handed to every worker. The
	// trajectory is independent of it.
	Kernel engine.Kernel
	// Rule is the arrival rule every worker executes (zero value:
	// relaunch, the repeated balls-into-bins law).
	Rule shard.ArrivalRule
	// Mesh switches the exchange from coordinator relay (star) to direct
	// worker↔worker delivery; workers must be able to open peer
	// listeners (the tcp transport can, pipes cannot).
	Mesh bool
	// Transport labels errors and barrier metrics ("proc", "tcp", ...).
	Transport string
}

// Coordinator drives the round protocol over a set of worker links. It
// implements the same stepping surface as shard.Process (engine.Stepper
// plus Snapshot, so checkpoint.Run drives it unchanged). Transports embed
// it in their Engine types; create with NewCoordinator. Not safe for
// concurrent use.
//
// A transport failure mid-run — a worker crash, a broken pipe or socket —
// is unrecoverable and surfaces as a panic from Step, because
// engine.Stepper leaves no error channel; the coordinator's state is
// authoritative only at round boundaries and a half-exchanged round cannot
// be rolled back. On any failure the coordinator closes every link first
// (a clean cancellation: workers blocked at a frame boundary observe EOF
// and exit) and decorates the error with the failing worker's name and,
// when the transport reports one, its exit status.
type Coordinator struct {
	n, s      int
	links     []*Link
	cfg       Config
	rule      shard.ArrivalRule
	balls     int64
	round     int64
	maxLoad   int32
	empty     int
	released  int
	staged    int
	loadBytes int64
	barrier   *obs.Histogram

	// rbuf[src][dst] are the retained decode buffers of the star relay;
	// rows allocate lazily, so memory follows the (src, dst) pairs that
	// actually cross processes. Unused in mesh mode.
	rbuf   [][][]int32
	closed bool
}

// NewCoordinator joins the given workers and migrates the snapshot's state
// into them: link i owns shard range [PartitionStart(s, p, i),
// PartitionStart(s, p, i+1)) and receives the checkpoint v2 header plus
// one frame per owned shard — only its own slice of the run. The
// coordinator never serializes the whole run into one buffer; per-worker
// join payloads are encoded and sent worker by worker. In mesh mode the
// join additionally distributes the peer roster and waits for every
// worker's ready ack. On error the links are already shut down.
func NewCoordinator(snap *checkpoint.Snapshot, links []*Link, cfg Config) (*Coordinator, error) {
	co := &Coordinator{links: links, cfg: cfg}
	if err := co.join(snap); err != nil {
		co.abort()
		return nil, err
	}
	return co, nil
}

func (co *Coordinator) join(snap *checkpoint.Snapshot) error {
	if snap == nil || snap.Engine == nil {
		return errors.New("wire: join with nil snapshot")
	}
	es := snap.Engine
	s := len(es.Shards)
	p := len(co.links)
	if p < 1 || p > s {
		return fmt.Errorf("wire: %d workers for %d shards", p, s)
	}
	switch co.cfg.Width {
	case engine.WidthAuto, engine.Width8, engine.Width16, engine.Width32:
	default:
		return fmt.Errorf("wire: invalid load width %d", co.cfg.Width)
	}
	switch co.cfg.Kernel {
	case engine.KernelBatched, engine.KernelScalar:
	default:
		return fmt.Errorf("wire: invalid kernel %d", co.cfg.Kernel)
	}
	rule, err := co.cfg.Rule.Normalize()
	if err != nil {
		return err
	}
	co.rule = rule
	co.n, co.s = es.N, s
	co.round = es.Round
	co.rbuf = make([][][]int32, s)
	co.barrier = obs.Default.Histogram("rbb_coord_barrier_seconds",
		"Coordinator wall-clock wait for the round-closing stats barrier.",
		nil, obs.Label{Key: "transport", Value: co.cfg.Transport})
	// The pre-join fold of the snapshot's statistics: the coordinator
	// never holds live shard state, so the global stats start from the
	// snapshot and are re-folded from worker messages every round.
	for i := range es.Shards {
		for _, l := range es.Shards[i].Loads {
			if l > co.maxLoad {
				co.maxLoad = l
			}
			if l == 0 {
				co.empty++
			}
			co.balls += int64(l)
		}
	}
	var header bytes.Buffer
	err = checkpoint.WriteHeader(&header, checkpoint.Header{
		Seed:   snap.Seed,
		N:      es.N,
		Shards: s,
		Round:  es.Round,
	})
	if err != nil {
		return err
	}
	mesh := byte(0)
	if co.cfg.Mesh {
		mesh = 1
	}
	var frame []byte
	var ruleBuf []byte
	for i, l := range co.links {
		l.lo = shard.PartitionStart(s, p, i)
		l.hi = shard.PartitionStart(s, p, i+1)
		l.c = newConn(l.R, l.W, l.Tx, l.Rx)
		c := l.c
		c.wByte(mInit)
		c.wU32(ProtoVersion)
		c.wU32(uint32(l.lo))
		c.wU32(uint32(l.hi))
		c.wU32(uint32(co.cfg.Workers))
		c.wByte(uint8(co.cfg.Width))
		c.wByte(uint8(co.cfg.Kernel))
		c.wBytes(rule.AppendWire(ruleBuf[:0]))
		c.wByte(mesh)
		c.wBytes(header.Bytes())
		for i := l.lo; i < l.hi && c.werr == nil; i++ {
			// Join frames are never compressed: they cross the link once.
			frame, err = checkpoint.AppendShardFrame(frame[:0], &es.Shards[i], i, es.N, s, false)
			if err != nil {
				return err
			}
			c.wBlob(frame)
		}
		c.flush()
		if c.werr != nil {
			return co.linkErr(l, "joining", c.werr)
		}
	}
	addrs := make([][]byte, p)
	for i, l := range co.links {
		c := l.c
		if err := c.expect(mInitOK); err != nil {
			return co.linkErr(l, "joining", err)
		}
		co.loadBytes += int64(c.rU64())
		addrs[i] = c.rBlob(maxAddrLen)
		if err := c.err(); err != nil {
			return co.linkErr(l, "joining", err)
		}
		if co.cfg.Mesh && len(addrs[i]) == 0 {
			return co.linkErr(l, "joining", errors.New("wire: mesh worker reported no peer address"))
		}
	}
	if !co.cfg.Mesh {
		return nil
	}
	// Distribute the roster and wait for every worker's peer links.
	for i, l := range co.links {
		c := l.c
		c.wByte(mRoster)
		c.wU32(uint32(i))
		c.wU32(uint32(p))
		for _, a := range addrs {
			c.wBlob(a)
		}
		c.flush()
		if c.werr != nil {
			return co.linkErr(l, "distributing roster", c.werr)
		}
	}
	for _, l := range co.links {
		if err := l.c.expect(mReady); err != nil {
			return co.linkErr(l, "establishing mesh", err)
		}
	}
	return nil
}

// linkErr decorates a stream failure with the worker's identity, range and
// — when the transport can report one — exit status, so a dead worker
// surfaces as its root cause instead of a bare broken pipe.
func (co *Coordinator) linkErr(l *Link, doing string, err error) error {
	name := l.Name
	if name == "" {
		name = "worker"
	}
	err = fmt.Errorf("%s %s [%d,%d): %w", doing, name, l.lo, l.hi, err)
	if l.Exited != nil {
		if xerr := l.Exited(); xerr != nil {
			err = fmt.Errorf("%w (%v)", err, xerr)
		}
	}
	return err
}

// abort shuts every link down after a failure: a best-effort quit frame,
// then a forced stream close — the clean cancellation that unblocks the
// surviving workers (they observe EOF at a frame boundary and exit) —
// then the transport finalizers. Idempotent.
func (co *Coordinator) abort() {
	if co.closed {
		return
	}
	co.closed = true
	for _, l := range co.links {
		if l.c != nil {
			l.c.wByte(mQuit)
			l.c.flush()
		}
		if l.CloseIO != nil {
			l.CloseIO()
		}
	}
	for _, l := range co.links {
		if l.Finalize != nil {
			l.Finalize()
		}
	}
}

// Close shuts the workers down: a quit frame, stream close, then the
// transports' finalizers (bounded process wait, socket teardown).
// Idempotent.
func (co *Coordinator) Close() error {
	if co.closed {
		return nil
	}
	co.closed = true
	var firstErr error
	for _, l := range co.links {
		if l.c != nil {
			l.c.wByte(mQuit)
			l.c.flush()
		}
		if l.CloseIO != nil {
			l.CloseIO()
		}
	}
	for _, l := range co.links {
		if l.Finalize != nil {
			if err := l.Finalize(); err != nil && firstErr == nil {
				firstErr = co.linkErr(l, "closing", err)
			}
		}
	}
	return firstErr
}

// Step advances one synchronous round across the workers. It panics on a
// transport failure (see the type comment) after cancelling the surviving
// workers.
func (co *Coordinator) Step() {
	if err := co.step(); err != nil {
		panic(fmt.Sprintf("%s: round %d: %v", co.cfg.Transport, co.round, err))
	}
}

func (co *Coordinator) step() error {
	if co.closed {
		return errors.New("engine is closed")
	}
	err := co.stepLinks()
	if err != nil {
		co.abort()
	}
	return err
}

func (co *Coordinator) stepLinks() error {
	// Release on every worker (mesh: the whole round runs from this).
	for _, l := range co.links {
		l.c.wByte(mStep)
		l.c.flush()
		if l.c.werr != nil {
			return co.linkErr(l, "stepping", l.c.werr)
		}
	}
	if !co.cfg.Mesh {
		if err := co.relay(); err != nil {
			return err
		}
	}
	// Fold the stats — the round's closing barrier.
	sp := obs.StartSpan("barrier", obs.LanePhases)
	tm := obs.StartTimer()
	var max int32
	empty := 0
	released, staged := 0, 0
	var loadBytes int64
	for _, l := range co.links {
		c := l.c
		if err := c.expect(mStats); err != nil {
			return co.linkErr(l, "folding stats", err)
		}
		released += int(c.rU64())
		staged += int(c.rU64())
		if m := int32(c.rU32()); m > max {
			max = m
		}
		empty += int(c.rU64())
		loadBytes += int64(c.rU64())
		if err := c.err(); err != nil {
			return co.linkErr(l, "folding stats", err)
		}
	}
	tm.ObserveSeconds(co.barrier)
	sp.End()
	co.maxLoad, co.empty, co.loadBytes = max, empty, loadBytes
	co.released, co.staged = released, staged
	co.balls += int64(staged) - int64(released)
	co.round++
	mRounds.Inc()
	return nil
}

// relay runs the star exchange: collect every remote-destined buffer, then
// relay each worker's inbound buffers with its commit frame. The relay
// retains the decode buffers per (src, dst) pair, so steady-state rounds
// allocate nothing.
func (co *Coordinator) relay() error {
	sp := obs.StartSpan("exchange", obs.LanePhases)
	tm := obs.StartTimer()
	count := obs.Enabled()
	balls, msgs := 0, 0
	for _, l := range co.links {
		c := l.c
		if err := c.expect(mExchange); err != nil {
			return co.linkErr(l, "collecting exchange", err)
		}
		nbuf := int(c.rU32())
		want := (l.hi - l.lo) * (co.s - (l.hi - l.lo))
		if c.rerr == nil && nbuf != want {
			return co.linkErr(l, "collecting exchange", fmt.Errorf("wire: %d buffers, want %d", nbuf, want))
		}
		for i := 0; i < nbuf; i++ {
			src, dst := int(c.rU32()), int(c.rU32())
			if c.rerr != nil {
				return co.linkErr(l, "collecting exchange", c.rerr)
			}
			if src < l.lo || src >= l.hi || dst < 0 || dst >= co.s || (dst >= l.lo && dst < l.hi) {
				return co.linkErr(l, "collecting exchange", fmt.Errorf("wire: buffer %d→%d outside range", src, dst))
			}
			if co.rbuf[src] == nil {
				co.rbuf[src] = make([][]int32, co.s)
			}
			co.rbuf[src][dst] = c.rI32Buf(co.rbuf[src][dst])
			if count && len(co.rbuf[src][dst]) > 0 {
				balls += len(co.rbuf[src][dst])
				msgs++
			}
		}
		if err := c.err(); err != nil {
			return co.linkErr(l, "collecting exchange", err)
		}
	}
	for _, l := range co.links {
		c := l.c
		c.wByte(mCommit)
		c.wU32(uint32((co.s - (l.hi - l.lo)) * (l.hi - l.lo)))
		for src := 0; src < co.s; src++ {
			if src >= l.lo && src < l.hi {
				continue
			}
			for dst := l.lo; dst < l.hi; dst++ {
				c.wU32(uint32(src))
				c.wU32(uint32(dst))
				var buf []int32
				if co.rbuf[src] != nil {
					buf = co.rbuf[src][dst]
				}
				c.wI32Buf(buf)
			}
		}
		c.flush()
		if c.werr != nil {
			return co.linkErr(l, "relaying commit", c.werr)
		}
	}
	tm.ObserveSeconds(mPhaseExchange)
	sp.End()
	if count {
		mExchangeBalls.Add(uint64(balls))
		mExchangeMsgs.Add(uint64(msgs))
	}
	return nil
}

// StreamCheckpoint serializes the run straight to dst in checkpoint format
// v2: every worker encodes its own shards into self-checksummed frames
// concurrently, and the coordinator relays the frame bytes in shard order
// without decoding — or ever materializing — them. The result is what
// checkpoint.SaveOptions would produce from Snapshot, minus the
// coordinator-side gather and whole-blob buffer. checkpoint.Run prefers
// this path (see checkpoint.StreamProcess). A failure mid-stream is
// unrecoverable (the control stream is desynchronized) and shuts the
// links down like a Step failure.
func (co *Coordinator) StreamCheckpoint(dst io.Writer, seed uint64, obs *shard.PipelineSnapshot, opts checkpoint.Options) error {
	if co.closed {
		return errors.New("wire: StreamCheckpoint on closed coordinator")
	}
	err := co.streamCheckpoint(dst, seed, obs, opts)
	if err != nil {
		co.abort()
	}
	return err
}

func (co *Coordinator) streamCheckpoint(dst io.Writer, seed uint64, obs *shard.PipelineSnapshot, opts checkpoint.Options) error {
	err := checkpoint.WriteHeader(dst, checkpoint.Header{
		Seed:     seed,
		N:        co.n,
		Shards:   co.s,
		Round:    co.round,
		Observer: obs != nil,
		Compress: opts.Compress,
	})
	if err != nil {
		return err
	}
	// Request every worker up front so they all encode in parallel; drain
	// in worker (= shard) order.
	for _, l := range co.links {
		l.c.wByte(mSnapshotReq)
		if opts.Compress {
			l.c.wByte(1)
		} else {
			l.c.wByte(0)
		}
		l.c.flush()
		if l.c.werr != nil {
			return co.linkErr(l, "requesting snapshot", l.c.werr)
		}
	}
	for _, l := range co.links {
		c := l.c
		if err := c.expect(mSnapshot); err != nil {
			return co.linkErr(l, "gathering snapshot", err)
		}
		for i := l.lo; i < l.hi; i++ {
			flen := c.rU64()
			if c.rerr != nil {
				return co.linkErr(l, "gathering snapshot", c.rerr)
			}
			if flen > frameBound(co.n, co.s, i) {
				return fmt.Errorf("wire: shard %d frame of %d bytes exceeds bound %d", i, flen, frameBound(co.n, co.s, i))
			}
			if _, err := io.CopyN(dst, c.br, int64(flen)); err != nil {
				return fmt.Errorf("wire: relaying shard %d frame: %w", i, err)
			}
		}
	}
	if obs != nil {
		frame, err := checkpoint.AppendObserverFrame(nil, obs, opts.Compress)
		if err != nil {
			return err
		}
		if _, err := dst.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot gathers the full deterministic engine state from the workers —
// the same whole-run cut shard.Engine.Snapshot produces, so checkpoints
// written under this transport are byte-identical to in-process ones. It
// runs the streamed frame protocol into a buffer and decodes it; callers
// that only want the serialized form should use StreamCheckpoint and skip
// the decode (checkpoint.Run does).
func (co *Coordinator) Snapshot() (*shard.EngineSnapshot, error) {
	var buf bytes.Buffer
	// The header seed is provenance only and not part of the engine state;
	// zero is fine for a decode-and-discard pass.
	if err := co.StreamCheckpoint(&buf, 0, nil, checkpoint.Options{}); err != nil {
		return nil, err
	}
	snap, err := checkpoint.Load(&buf)
	if err != nil {
		return nil, err
	}
	return snap.Engine, nil
}

// N returns the number of bins.
func (co *Coordinator) N() int { return co.n }

// Shards returns the shard count S (the random law's key).
func (co *Coordinator) Shards() int { return co.s }

// Procs returns the number of worker processes.
func (co *Coordinator) Procs() int { return len(co.links) }

// Rule returns the canonical arrival rule the workers execute.
func (co *Coordinator) Rule() shard.ArrivalRule { return co.rule }

// Round returns the number of completed rounds.
func (co *Coordinator) Round() int64 { return co.round }

// MaxLoad returns the current global maximum bin load.
func (co *Coordinator) MaxLoad() int32 { return co.maxLoad }

// EmptyBins returns the current global number of empty bins.
func (co *Coordinator) EmptyBins() int { return co.empty }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (co *Coordinator) NonEmptyBins() int { return co.n - co.empty }

// Released returns the number of balls released in the last round.
func (co *Coordinator) Released() int { return co.released }

// Staged returns the number of balls thrown in the last round.
func (co *Coordinator) Staged() int { return co.staged }

// Balls returns the current total number of balls, folded from the
// workers' released/staged counts (constant under conserving rules).
func (co *Coordinator) Balls() int64 { return co.balls }

// LoadBytes returns the resident bytes of the workers' load vectors and
// staging areas, summed from their stats messages (join ack, then every
// round). Deterministic for a given trajectory, width floor and round.
func (co *Coordinator) LoadBytes() int64 { return co.loadBytes }

// Load returns the load of bin u. It gathers a full snapshot per call —
// O(n) plus a stream round-trip — and exists for engine.Stepper
// conformance; per-round statistics come from the folded
// MaxLoad/EmptyBins.
func (co *Coordinator) Load(u int) int32 { return co.LoadsCopy()[u] }

// LoadsCopy returns a fresh copy of the full load vector (a snapshot
// gather; see Load).
func (co *Coordinator) LoadsCopy() []int32 {
	snap, err := co.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("wire: LoadsCopy: %v", err))
	}
	out := make([]int32, 0, co.n)
	for i := range snap.Shards {
		out = append(out, snap.Shards[i].Loads...)
	}
	return out
}

// Compile-time checks: the coordinator is a checkpoint-able stepper that
// can also serialize its own checkpoint stream.
var (
	_ engine.Stepper           = (*Coordinator)(nil)
	_ checkpoint.Process       = (*Coordinator)(nil)
	_ checkpoint.StreamProcess = (*Coordinator)(nil)
)
