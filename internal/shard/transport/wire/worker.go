package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/shard/transport/local"
)

// Mesh handshake bounds: every peer listener exists before the roster is
// distributed (listeners are opened before the init ack), so dials need no
// retry — only a hang guard.
const (
	peerDialTimeout   = 20 * time.Second
	peerAcceptTimeout = 60 * time.Second
)

// WorkerConfig configures the worker side of the protocol.
type WorkerConfig struct {
	// Tx and Rx count raw control-stream bytes when non-nil.
	Tx, Rx *obs.Counter
	// NewPeerListener opens the listener other workers dial in mesh mode
	// and returns it with the address to advertise in the roster. nil
	// means the transport cannot mesh (pipes); joining a mesh run then
	// fails loudly.
	NewPeerListener func() (net.Listener, string, error)
	// PeerCounters returns the tx/rx byte counters for one peer stream
	// (keyed by the peer's roster address). Optional.
	PeerCounters func(peer string) (tx, rx *obs.Counter)
}

// workerState is one joined worker: its group, arrival closure and — in
// mesh mode — its peer streams.
type workerState struct {
	c      *conn
	g      *shard.Group
	arrive shard.Arrivals
	round  int64

	mesh      bool
	self      int
	procs     int
	peers     []*conn // indexed by worker; nil at self and in star mode
	peerConns []net.Conn
	dbuf      []int32 // reusable inbound decode buffer
}

func (st *workerState) close() {
	for _, pc := range st.peerConns {
		pc.Close()
	}
	if st.g != nil {
		st.g.Close()
	}
}

// ServeWorker runs the worker side of the protocol on the given stream
// until a quit frame or EOF (the coordinator exiting) and returns the
// first protocol or engine error. An EOF before any frame arrives is
// returned as io.EOF so listener-mode workers can treat reachability
// probes (dial, then close) as non-events.
func ServeWorker(r io.Reader, w io.Writer, cfg WorkerConfig) error {
	c := newConn(r, w, cfg.Tx, cfg.Rx)
	st, err := workerJoin(c, cfg)
	if err != nil {
		if !errors.Is(err, io.EOF) {
			c.wErrFrame(err)
		}
		return err
	}
	defer st.close()
	if err := workerLoop(st); err != nil {
		c.wErrFrame(err)
		return err
	}
	return nil
}

// workerJoin handles the init frame: read the arrival rule, the checkpoint
// v2 header and the owned shard frames, and restore the owned shard range
// from them. The worker builds a sparsely populated engine snapshot — only
// its own shards are filled — which is all shard.NewGroupFromSnapshot
// reads for a sub-range restore. In mesh mode it then opens the peer
// listener, reports its address, and establishes every peer stream from
// the roster.
func workerJoin(c *conn, cfg WorkerConfig) (*workerState, error) {
	if err := c.expect(mInit); err != nil {
		return nil, err
	}
	if v := c.rU32(); c.rerr == nil && v != ProtoVersion {
		return nil, fmt.Errorf("protocol version %d, worker speaks %d", v, ProtoVersion)
	}
	lo, hi := int(c.rU32()), int(c.rU32())
	workers := int(c.rU32())
	width := engine.Width(c.rByte())
	kernel := engine.Kernel(c.rByte())
	ruleBytes := make([]byte, shard.ArrivalRuleWireSize)
	if _, err := io.ReadFull(c.br, ruleBytes); err != nil {
		c.failR(err)
	}
	mesh := c.rByte()
	if err := c.err(); err != nil {
		return nil, err
	}
	switch width {
	case engine.WidthAuto, engine.Width8, engine.Width16, engine.Width32:
	default:
		return nil, fmt.Errorf("invalid load width %d", width)
	}
	switch kernel {
	case engine.KernelBatched, engine.KernelScalar:
	default:
		return nil, fmt.Errorf("invalid kernel %d", kernel)
	}
	if mesh > 1 {
		return nil, fmt.Errorf("invalid mesh flag %d", mesh)
	}
	rule, err := shard.DecodeArrivalRule(ruleBytes)
	if err != nil {
		return nil, err
	}
	h, err := checkpoint.ReadHeader(c.br)
	if err != nil {
		return nil, fmt.Errorf("join payload: %w", err)
	}
	if lo < 0 || hi > h.Shards || lo >= hi {
		return nil, fmt.Errorf("shard range [%d,%d) outside %d shards", lo, hi, h.Shards)
	}
	if workers < 0 || workers > 1<<16 {
		return nil, fmt.Errorf("%d local workers", workers)
	}
	arrive, err := rule.Arrivals(h.N, h.Shards)
	if err != nil {
		return nil, err
	}
	es := &shard.EngineSnapshot{
		N:      h.N,
		Round:  h.Round,
		Shards: make([]shard.ShardSnapshot, h.Shards),
	}
	for i := lo; i < hi; i++ {
		frame := c.rBlob(frameBound(h.N, h.Shards, i))
		if c.rerr != nil {
			return nil, c.rerr
		}
		idx, sh, err := checkpoint.DecodeShardFrame(frame, h.N, h.Shards)
		if err != nil {
			return nil, fmt.Errorf("join payload: %w", err)
		}
		if idx != i {
			return nil, fmt.Errorf("join frame for shard %d, want %d", idx, i)
		}
		es.Shards[i] = sh
	}
	g, err := shard.NewGroupFromSnapshot(es, lo, hi, local.NewPool(hi-lo, workers),
		shard.GroupOptions{Width: width, Kernel: kernel})
	if err != nil {
		return nil, err
	}
	st := &workerState{c: c, g: g, arrive: arrive, round: h.Round, mesh: mesh == 1}
	var ln net.Listener
	advertise := ""
	if st.mesh {
		if cfg.NewPeerListener == nil {
			g.Close()
			return nil, errors.New("mesh mode unsupported on this transport")
		}
		if ln, advertise, err = cfg.NewPeerListener(); err != nil {
			g.Close()
			return nil, fmt.Errorf("opening peer listener: %w", err)
		}
		defer ln.Close()
	}
	c.wByte(mInitOK)
	c.wU64(uint64(g.LoadBytes()))
	c.wBlob([]byte(advertise))
	c.flush()
	if c.werr != nil {
		st.close()
		return nil, c.werr
	}
	if st.mesh {
		if err := workerMeshJoin(st, cfg, ln); err != nil {
			st.close()
			return nil, err
		}
		c.wByte(mReady)
		c.flush()
	}
	if err := c.err(); err != nil {
		st.close()
		return nil, err
	}
	return st, nil
}

// workerMeshJoin receives the roster and establishes one stream per peer:
// this worker dials every peer with a lower index (their listeners are
// guaranteed up — every listener opens before any init ack) and accepts
// every higher one, identified by a hello preamble.
func workerMeshJoin(st *workerState, cfg WorkerConfig, ln net.Listener) error {
	c := st.c
	if err := c.expect(mRoster); err != nil {
		return err
	}
	self, procs := int(c.rU32()), int(c.rU32())
	if c.rerr != nil {
		return c.rerr
	}
	if procs < 1 || procs > 1<<16 || self < 0 || self >= procs {
		return fmt.Errorf("roster slot %d of %d", self, procs)
	}
	addrs := make([]string, procs)
	for i := range addrs {
		addrs[i] = string(c.rBlob(maxAddrLen))
	}
	if c.rerr != nil {
		return c.rerr
	}
	st.self, st.procs = self, procs
	st.peers = make([]*conn, procs)
	peerConn := func(j int, nc net.Conn) {
		var tx, rx *obs.Counter
		if cfg.PeerCounters != nil {
			tx, rx = cfg.PeerCounters(addrs[j])
		}
		st.peerConns = append(st.peerConns, nc)
		st.peers[j] = newConn(nc, nc, tx, rx)
	}
	for j := 0; j < self; j++ {
		nc, err := net.DialTimeout("tcp", addrs[j], peerDialTimeout)
		if err != nil {
			return fmt.Errorf("dialing peer %d at %s: %w", j, addrs[j], err)
		}
		peerConn(j, nc)
		pc := st.peers[j]
		pc.wU64(peerMagic)
		pc.wU32(ProtoVersion)
		pc.wU32(uint32(self))
		pc.flush()
		if pc.werr != nil {
			return fmt.Errorf("greeting peer %d at %s: %w", j, addrs[j], pc.werr)
		}
	}
	if d, ok := ln.(interface{ SetDeadline(time.Time) error }); ok {
		d.SetDeadline(time.Now().Add(peerAcceptTimeout))
	}
	for got := self + 1; got < procs; got++ {
		nc, err := ln.Accept()
		if err != nil {
			return fmt.Errorf("accepting peer: %w", err)
		}
		// The hello preamble is read raw — exactly 16 bytes, no
		// read-ahead — so the framed conn built afterwards starts clean.
		var hello [16]byte
		nc.SetReadDeadline(time.Now().Add(peerDialTimeout))
		_, err = io.ReadFull(nc, hello[:])
		nc.SetReadDeadline(time.Time{})
		magic := binary.LittleEndian.Uint64(hello[:8])
		version := binary.LittleEndian.Uint32(hello[8:12])
		j := int(binary.LittleEndian.Uint32(hello[12:16]))
		if err != nil || magic != peerMagic || version != ProtoVersion {
			nc.Close()
			return fmt.Errorf("bad peer hello from %s", nc.RemoteAddr())
		}
		if j <= self || j >= procs || st.peers[j] != nil {
			nc.Close()
			return fmt.Errorf("peer hello names slot %d (own slot %d of %d)", j, self, procs)
		}
		peerConn(j, nc)
	}
	return nil
}

// workerLoop serves rounds and snapshots until quit/EOF.
func workerLoop(st *workerState) error {
	c := st.c
	g := st.g
	for {
		t := c.rByte()
		if c.rerr != nil {
			if errors.Is(c.rerr, io.EOF) {
				return nil // coordinator gone: clean shutdown
			}
			return c.rerr
		}
		switch t {
		case mStep:
			g.Release(st.arrive)
			if st.mesh {
				if err := workerMeshExchange(st); err != nil {
					return err
				}
				g.Commit()
				st.round++
				workerStats(c, g)
			} else {
				c.wByte(mExchange)
				c.wU32(uint32((g.Hi() - g.Lo()) * (g.Shards() - (g.Hi() - g.Lo()))))
				for src := g.Lo(); src < g.Hi(); src++ {
					for dst := 0; dst < g.Shards(); dst++ {
						if dst >= g.Lo() && dst < g.Hi() {
							continue
						}
						c.wU32(uint32(src))
						c.wU32(uint32(dst))
						c.wI32Buf(g.Outgoing(src, dst))
					}
				}
				c.flush()
			}
		case mCommit:
			if st.mesh {
				return errors.New("commit frame in mesh mode")
			}
			nbuf := int(c.rU32())
			for i := 0; i < nbuf && c.rerr == nil; i++ {
				src, dst := int(c.rU32()), int(c.rU32())
				st.dbuf = c.rI32Buf(st.dbuf)
				if c.rerr != nil {
					break
				}
				if src < 0 || src >= g.Shards() || (src >= g.Lo() && src < g.Hi()) || dst < g.Lo() || dst >= g.Hi() {
					return fmt.Errorf("inbound buffer %d→%d outside range [%d,%d)", src, dst, g.Lo(), g.Hi())
				}
				g.Deliver(src, dst, st.dbuf)
			}
			if c.rerr != nil {
				return c.rerr
			}
			g.Commit()
			st.round++
			workerStats(c, g)
		case mSnapshotReq:
			compress := c.rByte()
			if c.rerr != nil {
				return c.rerr
			}
			if compress > 1 {
				return fmt.Errorf("invalid snapshot compress byte %d", compress)
			}
			if err := workerSnapshot(c, g, compress == 1); err != nil {
				return err
			}
		case mQuit:
			return nil
		default:
			return fmt.Errorf("unexpected frame type %d", t)
		}
		if err := c.err(); err != nil {
			return err
		}
	}
}

// workerStats sends the round-closing stats frame.
func workerStats(c *conn, g *shard.Group) {
	c.wByte(mStats)
	c.wU64(uint64(g.Released()))
	c.wU64(uint64(g.Staged()))
	c.wU32(uint32(g.MaxLoad()))
	c.wU64(uint64(g.EmptyBins()))
	c.wU64(uint64(g.LoadBytes()))
	c.flush()
}

// workerMeshExchange delivers this round's cross-worker buffers directly:
// one goroutine per peer writes the outbound frame (each stream has a
// dedicated writer, so no send can deadlock), while inbound frames drain
// sequentially in peer order — the arrival order on each stream is fixed,
// and Deliver copies into the inbox, so the commit drain stays in global
// source order regardless of peer scheduling.
func workerMeshExchange(st *workerState) error {
	g := st.g
	var wg sync.WaitGroup
	for j, pc := range st.peers {
		if pc == nil {
			continue
		}
		wg.Add(1)
		go func(j int, pc *conn) {
			defer wg.Done()
			plo := shard.PartitionStart(g.Shards(), st.procs, j)
			phi := shard.PartitionStart(g.Shards(), st.procs, j+1)
			pc.wByte(mPeerFrame)
			pc.wU64(uint64(st.round))
			for src := g.Lo(); src < g.Hi(); src++ {
				for dst := plo; dst < phi; dst++ {
					pc.wU32(uint32(src))
					pc.wU32(uint32(dst))
					pc.wI32Buf(g.Outgoing(src, dst))
				}
			}
			pc.flush()
		}(j, pc)
	}
	var err error
	for j, pc := range st.peers {
		if pc == nil {
			continue
		}
		if err = workerMeshReceive(st, j, pc); err != nil {
			err = fmt.Errorf("peer %d: %w", j, err)
			break
		}
	}
	wg.Wait()
	if err != nil {
		return err
	}
	for j, pc := range st.peers {
		if pc != nil && pc.werr != nil {
			return fmt.Errorf("peer %d: %w", j, pc.werr)
		}
	}
	return nil
}

// workerMeshReceive drains peer j's frame for the in-flight round: the
// (src, dst) buffers from j's shards to ours, in canonical order.
func workerMeshReceive(st *workerState, j int, pc *conn) error {
	g := st.g
	if err := pc.expect(mPeerFrame); err != nil {
		return err
	}
	if r := pc.rU64(); pc.rerr == nil && r != uint64(st.round) {
		return fmt.Errorf("frame for round %d, want %d", r, st.round)
	}
	plo := shard.PartitionStart(g.Shards(), st.procs, j)
	phi := shard.PartitionStart(g.Shards(), st.procs, j+1)
	for src := plo; src < phi; src++ {
		for dst := g.Lo(); dst < g.Hi(); dst++ {
			rsrc, rdst := int(pc.rU32()), int(pc.rU32())
			st.dbuf = pc.rI32Buf(st.dbuf)
			if pc.rerr != nil {
				return pc.rerr
			}
			if rsrc != src || rdst != dst {
				return fmt.Errorf("buffer %d→%d, want %d→%d", rsrc, rdst, src, dst)
			}
			g.Deliver(src, dst, st.dbuf)
		}
	}
	return nil
}

// workerSnapshot encodes the owned shards as checkpoint v2 frames —
// concurrently, in a bounded window — and streams them to the coordinator
// in shard order. Across P workers this is the fan-out that makes a
// multi-process checkpoint encode scale with the process count.
func workerSnapshot(c *conn, g *shard.Group, compress bool) error {
	c.wByte(mSnapshot)
	type result struct {
		buf []byte
		err error
	}
	workers := min(runtime.GOMAXPROCS(0), g.Hi()-g.Lo())
	frames := make(chan chan result, 2*workers)
	go func() {
		sem := make(chan struct{}, workers)
		for s := g.Lo(); s < g.Hi(); s++ {
			ch := make(chan result, 1)
			frames <- ch
			sem <- struct{}{}
			go func(s int, ch chan<- result) {
				defer func() { <-sem }()
				ss, err := g.SnapshotShard(s)
				if err != nil {
					ch <- result{nil, err}
					return
				}
				buf, err := checkpoint.AppendShardFrame(nil, &ss, s, g.N(), g.Shards(), compress)
				ch <- result{buf, err}
			}(s, ch)
		}
		close(frames)
	}()
	var ferr error
	for ch := range frames {
		r := <-ch
		if ferr == nil {
			ferr = r.err
		}
		if ferr == nil {
			c.wBlob(r.buf)
		}
	}
	if ferr != nil {
		return ferr
	}
	c.flush()
	return c.werr
}
