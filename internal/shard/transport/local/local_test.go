package local

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/shard/transport"
)

// runners builds one of each runner kind for a (shards, workers) shape.
func runners(shards, workers int) map[string]transport.Runner {
	return map[string]transport.Runner{
		"spawn": NewSpawn(shards, workers),
		"pool":  NewPool(shards, workers),
	}
}

// TestRunCoversEveryShard: Run must call f exactly once per shard index
// and act as a barrier, for every runner kind and several shapes.
func TestRunCoversEveryShard(t *testing.T) {
	for _, tc := range []struct{ shards, workers int }{
		{1, 1}, {7, 1}, {8, 3}, {16, 16}, {5, 9} /* workers clamp */, {64, 0}, /* GOMAXPROCS */
	} {
		for name, r := range runners(tc.shards, tc.workers) {
			counts := make([]int32, tc.shards)
			for round := 0; round < 3; round++ {
				r.Run(func(i int) { atomic.AddInt32(&counts[i], 1) })
			}
			for i, c := range counts {
				if c != 3 {
					t.Errorf("%s %d/%d: shard %d ran %d times, want 3", name, tc.shards, tc.workers, i, c)
				}
			}
			if err := r.Close(); err != nil {
				t.Errorf("%s: close: %v", name, err)
			}
			if err := r.Close(); err != nil {
				t.Errorf("%s: second close: %v", name, err)
			}
		}
	}
}

// TestWorkerClamp pins the 0-means-GOMAXPROCS and clamp-to-shards rules.
func TestWorkerClamp(t *testing.T) {
	if w := NewSpawn(4, 99).Workers(); w != 4 {
		t.Errorf("spawn workers = %d, want 4", w)
	}
	p := NewPool(4, 99)
	if w := p.Workers(); w != 4 {
		t.Errorf("pool workers = %d, want 4", w)
	}
	p.Close()
	want := runtime.GOMAXPROCS(0)
	if want > 16 {
		want = 16
	}
	p = NewPool(16, 0)
	if w := p.Workers(); w != want {
		t.Errorf("pool workers = %d, want %d", w, want)
	}
	p.Close()
}

// TestPoolAffinity pins the shard→worker affinity contract: across many
// Run calls, every shard is always executed by the same goroutine, and
// the blocks are contiguous.
func TestPoolAffinity(t *testing.T) {
	const (
		shards  = 12
		workers = 5
		rounds  = 20
	)
	p := NewPool(shards, workers)
	defer p.Close()
	var mu sync.Mutex
	owner := make(map[int][]byte, shards) // shard → goroutine stack ids seen
	gid := func() []byte {
		// The goroutine id line of a stack trace identifies the worker.
		buf := make([]byte, 64)
		return buf[:runtime.Stack(buf, false)]
	}
	first := make(map[int]string, shards)
	for round := 0; round < rounds; round++ {
		p.Run(func(i int) {
			id := string(gid())
			mu.Lock()
			if round == 0 {
				first[i] = id
			} else if first[i] != id {
				owner[i] = append(owner[i], 1)
			}
			mu.Unlock()
		})
	}
	for i, v := range owner {
		if len(v) > 0 {
			t.Errorf("shard %d migrated between workers %d times", i, len(v))
		}
	}
	// Contiguity: shards sharing a worker form one interval.
	byWorker := make(map[string][]int)
	for i := 0; i < shards; i++ {
		byWorker[first[i]] = append(byWorker[first[i]], i)
	}
	if len(byWorker) != workers {
		t.Fatalf("%d distinct workers, want %d", len(byWorker), workers)
	}
	for id, ss := range byWorker {
		for j := 1; j < len(ss); j++ {
			if ss[j] != ss[j-1]+1 {
				t.Errorf("worker %q owns non-contiguous shards %v", id[:16], ss)
			}
		}
	}
}

// TestPoolCleanupReapsWorkers: an abandoned pool's goroutines exit once
// the GC runs the cleanup — the leak guard for engines dropped without
// Close.
func TestPoolCleanupReapsWorkers(t *testing.T) {
	before := runtime.NumGoroutine()
	func() {
		for i := 0; i < 8; i++ {
			p := NewPool(8, 4)
			p.Run(func(int) {})
		}
	}()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		runtime.GC()
		if runtime.NumGoroutine() <= before+2 {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Errorf("goroutines: %d before, %d after GC — pool workers not reaped", before, runtime.NumGoroutine())
}

// TestPoolConcurrentPhases hammers Run under the race detector: the phase
// work reads and writes disjoint per-shard state, which must be properly
// ordered by the barrier.
func TestPoolConcurrentPhases(t *testing.T) {
	const shards = 16
	p := NewPool(shards, 4)
	defer p.Close()
	state := make([]int, shards)
	sum := 0
	for round := 0; round < 200; round++ {
		p.Run(func(i int) { state[i]++ })
		// Between barriers the driver may read every shard's state.
		for _, v := range state {
			sum += v
		}
	}
	want := 0
	for r := 1; r <= 200; r++ {
		want += r * shards
	}
	if sum != want {
		t.Fatalf("sum %d, want %d", sum, want)
	}
}
