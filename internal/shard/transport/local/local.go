// Package local implements the in-process transports of the sharded round
// protocol: Spawn, which launches fresh goroutines for every phase (the
// original engine behavior), and Pool, a persistent worker pool with
// shard→worker affinity (the default since the transport refactor).
//
// Spawn pays a goroutine create/join per worker per phase — two phases per
// round — which shows up once rounds get short (small n, many shards) and
// scatters a shard's state across whichever OS threads the fresh goroutines
// land on. Pool keeps W long-lived workers, each owning a fixed contiguous
// block of shards; a shard is stepped by the same worker for the lifetime
// of the engine, so its working set stays in one core's cache hierarchy
// (and, with a first-touch NUMA policy, its lazily-faulted pages stay on
// the node that steps it — see engine.State.Prefault).
package local

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/shard/transport"
)

// mBarrierWait records, per worker per phase, how long that worker's slice
// of the phase barrier idled for stragglers: phase wall time minus the
// worker's own busy time. Observational only — see the obs package doc.
var (
	mBarrierPool = obs.Default.Histogram("rbb_barrier_wait_seconds",
		"Per-worker idle time at the phase barrier (phase duration minus worker busy time).",
		nil, obs.Label{Key: "transport", Value: "pool"})
	mBarrierSpawn = obs.Default.Histogram("rbb_barrier_wait_seconds",
		"Per-worker idle time at the phase barrier (phase duration minus worker busy time).",
		nil, obs.Label{Key: "transport", Value: "spawn"})
)

// observeBarrier turns a phase's total wall time and per-worker busy times
// into barrier-wait observations.
func observeBarrier(h *obs.Histogram, total time.Duration, busy []time.Duration) {
	for _, b := range busy {
		wait := total - b
		if wait < 0 {
			wait = 0
		}
		h.Observe(wait.Seconds())
	}
}

// Spawn is the spawn-per-phase runner: Run starts one goroutine per worker,
// distributes the shards round-robin, and joins them. It holds no
// resources; Close is a no-op.
type Spawn struct {
	shards  int
	workers int
}

// NewSpawn returns a spawn-per-phase runner over shards shards using up to
// workers goroutines per phase (clamped to [1, shards]).
func NewSpawn(shards, workers int) *Spawn {
	return &Spawn{shards: shards, workers: clampWorkers(shards, workers)}
}

// Run implements transport.Runner.
func (s *Spawn) Run(f func(i int)) {
	if s.workers == 1 {
		for i := 0; i < s.shards; i++ {
			f(i)
		}
		return
	}
	measure := obs.Enabled()
	var busy []time.Duration
	var t0 time.Time
	if measure {
		busy = make([]time.Duration, s.workers)
		t0 = time.Now()
	}
	var wg sync.WaitGroup
	for w := 0; w < s.workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			start := time.Time{}
			if measure {
				start = time.Now()
			}
			for i := w; i < s.shards; i += s.workers {
				f(i)
			}
			if measure {
				busy[w] = time.Since(start)
			}
		}(w)
	}
	wg.Wait()
	if measure {
		observeBarrier(mBarrierSpawn, time.Since(t0), busy)
	}
}

// Close implements transport.Runner (no-op).
func (s *Spawn) Close() error { return nil }

// Workers returns the per-phase goroutine count.
func (s *Spawn) Workers() int { return s.workers }

// poolShared is the part of a Pool reachable from its worker goroutines and
// from the GC cleanup. It deliberately excludes the Pool struct itself, so
// an abandoned Pool becomes unreachable and the cleanup can reap the
// workers even when Close was never called.
type poolShared struct {
	once sync.Once
	reqs []chan func(i int)
}

func (s *poolShared) close() {
	s.once.Do(func() {
		for _, ch := range s.reqs {
			close(ch)
		}
	})
}

// Pool is the persistent worker pool: W long-lived goroutines, worker w
// owning the fixed contiguous shard block [w·S/W, (w+1)·S/W). Every Run
// executes a shard's work on its owning worker, so the affinity holds
// across phases and rounds. Close (or garbage collection of an abandoned
// pool) terminates the workers.
type Pool struct {
	shared  *poolShared
	wg      *sync.WaitGroup
	shards  int
	workers int
	closed  bool
	// busy[w] is worker w's busy time in the phase dispatched last; workers
	// write their slot before wg.Done, Run reads after wg.Wait. Workers
	// capture the slice, never the Pool (see the cleanup note in NewPool).
	busy []time.Duration
}

// NewPool starts a pool of up to workers persistent goroutines over shards
// shards (clamped to [1, shards]). A single-worker pool starts no
// goroutine at all: the driving goroutine is the persistent worker —
// affinity and first-touch placement hold trivially — and the channel
// handoff would be pure overhead.
func NewPool(shards, workers int) *Pool {
	w := clampWorkers(shards, workers)
	p := &Pool{
		shared:  &poolShared{},
		wg:      new(sync.WaitGroup),
		shards:  shards,
		workers: w,
	}
	if w == 1 {
		return p
	}
	p.shared.reqs = make([]chan func(i int), w)
	p.busy = make([]time.Duration, w)
	for i := 0; i < w; i++ {
		// Contiguous blocks, remainder spread over the first shards%w
		// workers — the same arithmetic as the bin partition, so a pool
		// over S shards with W=S is exactly one shard per worker.
		lo := blockStart(shards, w, i)
		hi := blockStart(shards, w, i+1)
		ch := make(chan func(i int))
		p.shared.reqs[i] = ch
		wg := p.wg
		busy, slot := p.busy, i
		go func() {
			for f := range ch {
				if obs.Enabled() {
					start := time.Now()
					for s := lo; s < hi; s++ {
						f(s)
					}
					busy[slot] = time.Since(start)
				} else {
					busy[slot] = 0
					for s := lo; s < hi; s++ {
						f(s)
					}
				}
				wg.Done()
			}
		}()
	}
	// Safety net for engines that are dropped without Close: the workers
	// reference only their channel, block bounds and the WaitGroup — never
	// the Pool — so an abandoned Pool is collectable and this cleanup
	// closes the request channels, ending the worker goroutines.
	runtime.AddCleanup(p, func(s *poolShared) { s.close() }, p.shared)
	return p
}

// blockStart returns the first shard of worker w's block when shards are
// split into workers contiguous blocks (first shards mod workers blocks one
// larger).
func blockStart(shards, workers, w int) int {
	q, r := shards/workers, shards%workers
	if w <= r {
		return w * (q + 1)
	}
	return r*(q+1) + (w-r)*q
}

// Run implements transport.Runner: each worker applies f to its block; Run
// returns after every worker has finished (the phase barrier). Run must not
// be called after Close.
func (p *Pool) Run(f func(i int)) {
	if p.closed {
		panic("local: Pool.Run after Close")
	}
	if p.workers == 1 {
		for i := 0; i < p.shards; i++ {
			f(i)
		}
		return
	}
	measure := obs.Enabled()
	var t0 time.Time
	if measure {
		t0 = time.Now()
	}
	p.wg.Add(p.workers)
	for _, ch := range p.shared.reqs {
		ch <- f
	}
	p.wg.Wait()
	if measure {
		observeBarrier(mBarrierPool, time.Since(t0), p.busy)
	}
}

// Close terminates the worker goroutines. Idempotent.
func (p *Pool) Close() error {
	p.closed = true
	p.shared.close()
	return nil
}

// Workers returns the number of persistent workers.
func (p *Pool) Workers() int { return p.workers }

// clampWorkers resolves a worker-count request against the shard count:
// 0 means GOMAXPROCS, and the result is clamped to [1, shards].
func clampWorkers(shards, workers int) int {
	if shards < 1 {
		panic(fmt.Sprintf("local: runner over %d shards", shards))
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > shards {
		workers = shards
	}
	return workers
}

// Compile-time interface checks.
var (
	_ transport.Runner = (*Spawn)(nil)
	_ transport.Runner = (*Pool)(nil)
)
