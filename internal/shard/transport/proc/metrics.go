package proc

import (
	"io"

	"repro/internal/obs"
)

// Telemetry of the multi-process transport, recorded on the coordinator
// side (workers count into their own process registries, which nothing
// scrapes; that is deliberate — the coordinator owns the run's metrics
// surface). Observational only; see the obs package doc.
var (
	mProcTx = obs.Default.Counter("rbb_proc_tx_bytes_total",
		"Bytes written to worker-process pipes.")
	mProcRx = obs.Default.Counter("rbb_proc_rx_bytes_total",
		"Bytes read from worker-process pipes.")
	mPhaseExchange = obs.Default.Histogram("rbb_phase_seconds",
		"Wall-clock duration of one round-protocol phase across all owned shards.",
		nil, obs.Label{Key: "phase", Value: "exchange"})
	// Same families the in-process kernel registers: in a proc run the
	// coordinator holds no Group, so these count the relayed (cross-process)
	// legs of the exchange instead.
	mProcRounds = obs.Default.Counter("rbb_rounds_total",
		"Completed simulation rounds.")
	mProcExchangeBalls = obs.Default.Counter("rbb_exchange_balls_total",
		"Balls moved through the exchange (drained at commit).")
	mProcExchangeMsgs = obs.Default.Counter("rbb_exchange_messages_total",
		"Non-empty shard-to-shard exchange buffers drained at commit.")
)

// countingReader / countingWriter sit between the raw pipe and the bufio
// layer, so one atomic add covers a whole 64 KiB buffered transfer.
type countingReader struct {
	r io.Reader
	c *obs.Counter
}

func (cr countingReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	if n > 0 && obs.Enabled() {
		cr.c.Add(uint64(n))
	}
	return n, err
}

type countingWriter struct {
	w io.Writer
	c *obs.Counter
}

func (cw countingWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	if n > 0 && obs.Enabled() {
		cw.c.Add(uint64(n))
	}
	return n, err
}
