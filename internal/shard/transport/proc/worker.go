package proc

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/checkpoint"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/shard/transport/local"
)

// relaunch is the RBB arrival rule — the one law the multi-process
// transport carries (see the Engine type comment).
func relaunch(_, released int, _ *rng.Source) int { return released }

// WorkerMain runs the worker side of the protocol on the given pipe
// endpoints until a quit frame or EOF (the coordinator exiting) and
// returns the first protocol or engine error. MaybeWorker is the usual
// entry point; tests call WorkerMain directly from their re-exec hook.
func WorkerMain(r io.Reader, w io.Writer) error {
	c := newConn(r, w)
	g, err := workerJoin(c)
	if err != nil {
		c.wErrFrame(err)
		return err
	}
	defer g.Close()
	if err := workerLoop(c, g); err != nil {
		c.wErrFrame(err)
		return err
	}
	return nil
}

// workerJoin handles the init frame: decode the checkpoint join payload
// and restore the owned shard range from it.
func workerJoin(c *conn) (*shard.Group, error) {
	if err := c.expect(mInit); err != nil {
		return nil, err
	}
	if v := c.rU32(); c.err == nil && v != protoVersion {
		return nil, fmt.Errorf("protocol version %d, worker speaks %d", v, protoVersion)
	}
	lo, hi := int(c.rU32()), int(c.rU32())
	workers := int(c.rU32())
	blobLen := c.rU64()
	if c.err != nil {
		return nil, c.err
	}
	if blobLen > 1<<40 {
		return nil, fmt.Errorf("join payload of %d bytes", blobLen)
	}
	blob := make([]byte, int(blobLen))
	if _, err := io.ReadFull(c.br, blob); err != nil {
		return nil, fmt.Errorf("truncated join payload: %w", err)
	}
	snap, err := checkpoint.Load(bytes.NewReader(blob))
	if err != nil {
		return nil, fmt.Errorf("join payload: %w", err)
	}
	s := len(snap.Engine.Shards)
	if lo < 0 || hi > s || lo >= hi {
		return nil, fmt.Errorf("shard range [%d,%d) outside %d shards", lo, hi, s)
	}
	if workers < 0 || workers > 1<<16 {
		return nil, fmt.Errorf("%d local workers", workers)
	}
	g, err := shard.NewGroupFromSnapshot(snap.Engine, lo, hi, local.NewPool(hi-lo, workers), nil)
	if err != nil {
		return nil, err
	}
	c.wByte(mInitOK)
	c.flush()
	return g, c.err
}

// workerLoop serves rounds and snapshots until quit/EOF.
func workerLoop(c *conn, g *shard.Group) error {
	var dbuf []int32 // reusable inbound decode buffer
	for {
		t := c.rByte()
		if c.err != nil {
			if errors.Is(c.err, io.EOF) {
				return nil // coordinator gone: clean shutdown
			}
			return c.err
		}
		switch t {
		case mStep:
			g.Release(relaunch)
			c.wByte(mExchange)
			c.wU64(uint64(g.Released()))
			c.wU64(uint64(g.Staged()))
			c.wU32(uint32((g.Hi() - g.Lo()) * (g.Shards() - (g.Hi() - g.Lo()))))
			for src := g.Lo(); src < g.Hi(); src++ {
				for dst := 0; dst < g.Shards(); dst++ {
					if dst >= g.Lo() && dst < g.Hi() {
						continue
					}
					c.wU32(uint32(src))
					c.wU32(uint32(dst))
					c.wI32Buf(g.Outgoing(src, dst))
				}
			}
			c.flush()
		case mCommit:
			nbuf := int(c.rU32())
			for i := 0; i < nbuf && c.err == nil; i++ {
				src, dst := int(c.rU32()), int(c.rU32())
				dbuf = c.rI32Buf(dbuf)
				if c.err != nil {
					break
				}
				if src < 0 || src >= g.Shards() || (src >= g.Lo() && src < g.Hi()) || dst < g.Lo() || dst >= g.Hi() {
					return fmt.Errorf("inbound buffer %d→%d outside range [%d,%d)", src, dst, g.Lo(), g.Hi())
				}
				g.Deliver(src, dst, dbuf)
			}
			if c.err != nil {
				return c.err
			}
			g.Commit()
			c.wByte(mStats)
			c.wU32(uint32(g.MaxLoad()))
			c.wU64(uint64(g.EmptyBins()))
			c.flush()
		case mSnapshotReq:
			c.wByte(mSnapshot)
			for s := g.Lo(); s < g.Hi() && c.err == nil; s++ {
				ss, err := g.SnapshotShard(s)
				if err != nil {
					return err
				}
				c.wU32(uint32(s))
				for _, v := range ss.RNG {
					c.wU64(v)
				}
				c.wI32Buf(ss.Loads)
				c.wU32(uint32(len(ss.Work)))
				for _, v := range ss.Work {
					c.wU64(v)
				}
			}
			c.flush()
		case mQuit:
			return nil
		default:
			return fmt.Errorf("unexpected frame type %d", t)
		}
		if c.err != nil {
			return c.err
		}
	}
}
