package proc

import (
	"errors"
	"fmt"
	"io"
	"runtime"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/shard/transport/local"
)

// relaunch is the RBB arrival rule — the one law the multi-process
// transport carries (see the Engine type comment).
func relaunch(_, released int, _ *rng.Source) int { return released }

// WorkerMain runs the worker side of the protocol on the given pipe
// endpoints until a quit frame or EOF (the coordinator exiting) and
// returns the first protocol or engine error. MaybeWorker is the usual
// entry point; tests call WorkerMain directly from their re-exec hook.
func WorkerMain(r io.Reader, w io.Writer) error {
	c := newConn(r, w)
	g, err := workerJoin(c)
	if err != nil {
		c.wErrFrame(err)
		return err
	}
	defer g.Close()
	if err := workerLoop(c, g); err != nil {
		c.wErrFrame(err)
		return err
	}
	return nil
}

// workerJoin handles the init frame: read the checkpoint v2 header and the
// owned shard frames, and restore the owned shard range from them. The
// worker builds a sparsely populated engine snapshot — only its own shards
// are filled — which is all shard.NewGroupFromSnapshot reads for a
// sub-range restore.
func workerJoin(c *conn) (*shard.Group, error) {
	if err := c.expect(mInit); err != nil {
		return nil, err
	}
	if v := c.rU32(); c.err == nil && v != protoVersion {
		return nil, fmt.Errorf("protocol version %d, worker speaks %d", v, protoVersion)
	}
	lo, hi := int(c.rU32()), int(c.rU32())
	workers := int(c.rU32())
	width := engine.Width(c.rByte())
	if c.err != nil {
		return nil, c.err
	}
	switch width {
	case engine.WidthAuto, engine.Width8, engine.Width16, engine.Width32:
	default:
		return nil, fmt.Errorf("invalid load width %d", width)
	}
	h, err := checkpoint.ReadHeader(c.br)
	if err != nil {
		return nil, fmt.Errorf("join payload: %w", err)
	}
	if lo < 0 || hi > h.Shards || lo >= hi {
		return nil, fmt.Errorf("shard range [%d,%d) outside %d shards", lo, hi, h.Shards)
	}
	if workers < 0 || workers > 1<<16 {
		return nil, fmt.Errorf("%d local workers", workers)
	}
	es := &shard.EngineSnapshot{
		N:      h.N,
		Round:  h.Round,
		Shards: make([]shard.ShardSnapshot, h.Shards),
	}
	for i := lo; i < hi; i++ {
		frame := c.rBlob(frameBound(h.N, h.Shards, i))
		if c.err != nil {
			return nil, c.err
		}
		idx, sh, err := checkpoint.DecodeShardFrame(frame, h.N, h.Shards)
		if err != nil {
			return nil, fmt.Errorf("join payload: %w", err)
		}
		if idx != i {
			return nil, fmt.Errorf("join frame for shard %d, want %d", idx, i)
		}
		es.Shards[i] = sh
	}
	g, err := shard.NewGroupFromSnapshot(es, lo, hi, local.NewPool(hi-lo, workers), nil, width)
	if err != nil {
		return nil, err
	}
	c.wByte(mInitOK)
	c.wU64(uint64(g.LoadBytes()))
	c.flush()
	return g, c.err
}

// workerLoop serves rounds and snapshots until quit/EOF.
func workerLoop(c *conn, g *shard.Group) error {
	var dbuf []int32 // reusable inbound decode buffer
	for {
		t := c.rByte()
		if c.err != nil {
			if errors.Is(c.err, io.EOF) {
				return nil // coordinator gone: clean shutdown
			}
			return c.err
		}
		switch t {
		case mStep:
			g.Release(relaunch)
			c.wByte(mExchange)
			c.wU64(uint64(g.Released()))
			c.wU64(uint64(g.Staged()))
			c.wU32(uint32((g.Hi() - g.Lo()) * (g.Shards() - (g.Hi() - g.Lo()))))
			for src := g.Lo(); src < g.Hi(); src++ {
				for dst := 0; dst < g.Shards(); dst++ {
					if dst >= g.Lo() && dst < g.Hi() {
						continue
					}
					c.wU32(uint32(src))
					c.wU32(uint32(dst))
					c.wI32Buf(g.Outgoing(src, dst))
				}
			}
			c.flush()
		case mCommit:
			nbuf := int(c.rU32())
			for i := 0; i < nbuf && c.err == nil; i++ {
				src, dst := int(c.rU32()), int(c.rU32())
				dbuf = c.rI32Buf(dbuf)
				if c.err != nil {
					break
				}
				if src < 0 || src >= g.Shards() || (src >= g.Lo() && src < g.Hi()) || dst < g.Lo() || dst >= g.Hi() {
					return fmt.Errorf("inbound buffer %d→%d outside range [%d,%d)", src, dst, g.Lo(), g.Hi())
				}
				g.Deliver(src, dst, dbuf)
			}
			if c.err != nil {
				return c.err
			}
			g.Commit()
			c.wByte(mStats)
			c.wU32(uint32(g.MaxLoad()))
			c.wU64(uint64(g.EmptyBins()))
			c.wU64(uint64(g.LoadBytes()))
			c.flush()
		case mSnapshotReq:
			compress := c.rByte()
			if c.err != nil {
				return c.err
			}
			if compress > 1 {
				return fmt.Errorf("invalid snapshot compress byte %d", compress)
			}
			if err := workerSnapshot(c, g, compress == 1); err != nil {
				return err
			}
		case mQuit:
			return nil
		default:
			return fmt.Errorf("unexpected frame type %d", t)
		}
		if c.err != nil {
			return c.err
		}
	}
}

// workerSnapshot encodes the owned shards as checkpoint v2 frames —
// concurrently, in a bounded window — and streams them to the coordinator
// in shard order. Across P workers this is the fan-out that makes a
// multi-process checkpoint encode scale with the process count.
func workerSnapshot(c *conn, g *shard.Group, compress bool) error {
	c.wByte(mSnapshot)
	type result struct {
		buf []byte
		err error
	}
	workers := min(runtime.GOMAXPROCS(0), g.Hi()-g.Lo())
	frames := make(chan chan result, 2*workers)
	go func() {
		sem := make(chan struct{}, workers)
		for s := g.Lo(); s < g.Hi(); s++ {
			ch := make(chan result, 1)
			frames <- ch
			sem <- struct{}{}
			go func(s int, ch chan<- result) {
				defer func() { <-sem }()
				ss, err := g.SnapshotShard(s)
				if err != nil {
					ch <- result{nil, err}
					return
				}
				buf, err := checkpoint.AppendShardFrame(nil, &ss, s, g.N(), g.Shards(), compress)
				ch <- result{buf, err}
			}(s, ch)
		}
		close(frames)
	}()
	var ferr error
	for ch := range frames {
		r := <-ch
		if ferr == nil {
			ferr = r.err
		}
		if ferr == nil {
			c.wBlob(r.buf)
		}
	}
	if ferr != nil {
		return ferr
	}
	c.flush()
	return c.err
}
