package proc

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// protoVersion is the wire protocol version, checked at worker join so a
// mixed-binary deployment fails loudly instead of desynchronizing. Version
// 2 replaced the monolithic checkpoint-blob join payload and snapshot
// gather with checkpoint format v2 frames: workers encode and decode their
// own shards, the coordinator only relays bytes.
const protoVersion = 2

// Message types. Every frame is one type byte followed by a type-specific
// payload; the per-message layouts are documented next to their writers.
const (
	mInit        byte = iota + 1 // c→w: version, lo, hi, workers, width floor, v2 header + owned shard frames
	mInitOK                      // w→c: join acknowledged + resident load bytes
	mStep                        // c→w: run the release phase
	mExchange                    // w→c: released, staged, remote-destined buffers
	mCommit                      // c→w: inbound buffers; run the commit phase
	mStats                       // w→c: post-commit max load + empty bins + resident load bytes
	mSnapshotReq                 // c→w: encode the owned shards (compress byte)
	mSnapshot                    // w→c: length-prefixed v2 shard frames, in shard order
	mQuit                        // c→w: exit cleanly
	mErr                         // w→c: fatal worker error (utf-8 description)
)

// maxBufLen caps a single decoded exchange buffer (paranoia against a
// desynchronized stream demanding an absurd allocation; the chunked decode
// already bounds memory by the bytes actually present). 1<<31 − 1 so the
// untyped constant still fits an int on 32-bit platforms.
const maxBufLen = 1<<31 - 1

// conn is one framed pipe endpoint: buffered reads and writes of
// little-endian values with first-error latching, mirroring the codec
// style of internal/checkpoint.
type conn struct {
	br  *bufio.Reader
	bw  *bufio.Writer
	err error
	b   [8]byte
}

func newConn(r io.Reader, w io.Writer) *conn {
	return &conn{
		br: bufio.NewReaderSize(countingReader{r, mProcRx}, 1<<16),
		bw: bufio.NewWriterSize(countingWriter{w, mProcTx}, 1<<16),
	}
}

func (c *conn) fail(err error) {
	if c.err == nil && err != nil {
		c.err = err
	}
}

func (c *conn) wBytes(p []byte) {
	if c.err == nil {
		_, err := c.bw.Write(p)
		c.fail(err)
	}
}

func (c *conn) wByte(v byte) { c.wBytes([]byte{v}) }

func (c *conn) wU32(v uint32) {
	binary.LittleEndian.PutUint32(c.b[:4], v)
	c.wBytes(c.b[:4])
}

func (c *conn) wU64(v uint64) {
	binary.LittleEndian.PutUint64(c.b[:8], v)
	c.wBytes(c.b[:8])
}

// wI32Buf writes a length-prefixed []int32 in bulk chunks.
func (c *conn) wI32Buf(vs []int32) {
	c.wU32(uint32(len(vs)))
	var chunk [1 << 12]byte
	for len(vs) > 0 && c.err == nil {
		k := len(vs)
		if k > len(chunk)/4 {
			k = len(chunk) / 4
		}
		for i := 0; i < k; i++ {
			binary.LittleEndian.PutUint32(chunk[4*i:], uint32(vs[i]))
		}
		c.wBytes(chunk[:4*k])
		vs = vs[k:]
	}
}

// wBlob writes a u64-length-prefixed byte blob (a checkpoint frame on the
// join and snapshot paths).
func (c *conn) wBlob(p []byte) {
	c.wU64(uint64(len(p)))
	c.wBytes(p)
}

// rBlob reads a u64-length-prefixed byte blob bounded by maxLen.
func (c *conn) rBlob(maxLen uint64) []byte {
	n := c.rU64()
	if c.err != nil {
		return nil
	}
	if n > maxLen {
		c.fail(fmt.Errorf("proc: %d-byte blob exceeds bound %d", n, maxLen))
		return nil
	}
	buf := make([]byte, int(n))
	if _, err := io.ReadFull(c.br, buf); err != nil {
		c.fail(fmt.Errorf("proc: truncated blob: %w", err))
		return nil
	}
	return buf
}

func (c *conn) flush() {
	if c.err == nil {
		c.fail(c.bw.Flush())
	}
}

func (c *conn) read(n int) []byte {
	if c.err == nil {
		if _, err := io.ReadFull(c.br, c.b[:n]); err != nil {
			if err == io.ErrUnexpectedEOF {
				err = fmt.Errorf("proc: truncated frame: %w", err)
			}
			c.fail(err)
			for i := range c.b {
				c.b[i] = 0
			}
		}
	}
	return c.b[:n]
}

func (c *conn) rByte() byte  { return c.read(1)[0] }
func (c *conn) rU32() uint32 { return binary.LittleEndian.Uint32(c.read(4)) }
func (c *conn) rU64() uint64 { return binary.LittleEndian.Uint64(c.read(8)) }

// rI32Buf reads a length-prefixed []int32 into dst's backing array
// (growing it as needed) and returns the filled slice. Decoding is chunked
// so a corrupted length cannot demand memory beyond the bytes present.
func (c *conn) rI32Buf(dst []int32) []int32 {
	cnt := int(c.rU32())
	if c.err != nil {
		return dst[:0]
	}
	if cnt < 0 || cnt > maxBufLen {
		c.fail(fmt.Errorf("proc: exchange buffer of %d balls", cnt))
		return dst[:0]
	}
	dst = dst[:0]
	var chunk [1 << 12]byte
	for got := 0; got < cnt && c.err == nil; {
		k := cnt - got
		if k > len(chunk)/4 {
			k = len(chunk) / 4
		}
		if _, err := io.ReadFull(c.br, chunk[:4*k]); err != nil {
			c.fail(fmt.Errorf("proc: truncated exchange buffer: %w", err))
			return dst
		}
		for i := 0; i < k; i++ {
			dst = append(dst, int32(binary.LittleEndian.Uint32(chunk[4*i:])))
		}
		got += k
	}
	return dst
}

// wErrFrame sends a fatal worker error (best effort).
func (c *conn) wErrFrame(err error) {
	c.err = nil // report even after a latched failure
	msg := []byte(err.Error())
	c.wByte(mErr)
	c.wU32(uint32(len(msg)))
	c.wBytes(msg)
	c.flush()
}

// expect reads the next frame type and requires it to be want, decoding a
// worker error frame into a Go error.
func (c *conn) expect(want byte) error {
	t := c.rByte()
	if c.err != nil {
		return c.err
	}
	if t == mErr {
		n := int(c.rU32())
		if c.err != nil || n < 0 || n > 1<<16 {
			return errors.New("proc: worker failed (unreadable error frame)")
		}
		msg := make([]byte, n)
		if _, err := io.ReadFull(c.br, msg); err != nil {
			return fmt.Errorf("proc: worker failed (truncated error frame): %w", err)
		}
		return fmt.Errorf("proc: worker: %s", msg)
	}
	if t != want {
		return fmt.Errorf("proc: unexpected frame type %d (want %d)", t, want)
	}
	return nil
}
