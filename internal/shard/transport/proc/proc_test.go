package proc_test

import (
	"bytes"
	"os"
	"strings"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/shard"
	"repro/internal/shard/transport/proc"
)

// TestMain doubles as the worker entry point: the coordinator re-executes
// this test binary, and MaybeWorker diverts the child into the worker
// protocol before any test runs.
func TestMain(m *testing.M) {
	proc.MaybeWorker()
	os.Exit(m.Run())
}

// ckptBytes serializes the current engine state of p in the checkpoint
// format — the byte-comparison currency of the invariance tests.
func ckptBytes(t *testing.T, seed uint64, p checkpoint.Process) []byte {
	t.Helper()
	snap, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	if err := checkpoint.Save(&b, &checkpoint.Snapshot{Seed: seed, Engine: snap}); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestTransportInvarianceMatrix is the tentpole acceptance gate: the same
// (seed, n, S) trajectory, executed under spawn-per-phase, the persistent
// pool (W = 1 and 4), and the 2-process transport, must produce
// byte-identical final checkpoints. Full size is n = 2²⁰, S = 8 (the CI
// resume-equivalence scale); -short drops n to 2¹⁶ for the race job.
func TestTransportInvarianceMatrix(t *testing.T) {
	n := 1 << 20
	if testing.Short() {
		n = 1 << 16
	}
	const (
		seed   = 3
		s      = 8
		rounds = 50
	)
	loads := config.OnePerBin(n)

	type variant struct {
		name string
		run  func() []byte
	}
	inproc := func(kind shard.TransportKind, workers int) func() []byte {
		return func() []byte {
			p, err := shard.NewProcess(loads, seed, shard.Options{Shards: s, Workers: workers, Transport: kind})
			if err != nil {
				t.Fatal(err)
			}
			defer p.Close()
			p.Run(rounds)
			return ckptBytes(t, seed, p)
		}
	}
	variants := []variant{
		{"spawn(W=4)", inproc(shard.TransportSpawn, 4)},
		{"pool(W=1)", inproc(shard.TransportPool, 1)},
		{"pool(W=4)", inproc(shard.TransportPool, 4)},
		{"proc(P=2)", func() []byte {
			e, err := proc.NewProcess(loads, seed, proc.Options{Shards: s, Procs: 2, Workers: 2})
			if err != nil {
				t.Fatal(err)
			}
			defer e.Close()
			for r := 0; r < rounds; r++ {
				e.Step()
			}
			return ckptBytes(t, seed, e)
		}},
	}
	ref := variants[0].run()
	if len(ref) == 0 {
		t.Fatal("empty reference checkpoint")
	}
	for _, v := range variants[1:] {
		if got := v.run(); !bytes.Equal(got, ref) {
			t.Errorf("%s: final checkpoint differs from %s (%d vs %d bytes)", v.name, variants[0].name, len(got), len(ref))
		}
	}
}

// TestProcStats pins the folded per-round statistics against an in-process
// run of the same law: MaxLoad, EmptyBins, Released and Staged must match
// round for round, and ball conservation must hold.
func TestProcStats(t *testing.T) {
	const (
		n      = 4096
		s      = 4
		seed   = 11
		rounds = 120
	)
	loads := config.AllInOne(n, n)
	ref, err := shard.NewProcess(loads, seed, shard.Options{Shards: s})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	e, err := proc.NewProcess(loads, seed, proc.Options{Shards: s, Procs: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Balls() != int64(n) {
		t.Fatalf("balls %d, want %d", e.Balls(), n)
	}
	if e.N() != n || e.Shards() != s || e.Procs() != 2 {
		t.Fatalf("shape: n=%d s=%d procs=%d", e.N(), e.Shards(), e.Procs())
	}
	for r := 0; r < rounds; r++ {
		ref.Step()
		e.Step()
		if e.MaxLoad() != ref.MaxLoad() || e.EmptyBins() != ref.EmptyBins() {
			t.Fatalf("round %d: stats diverge: max %d vs %d, empty %d vs %d",
				r, e.MaxLoad(), ref.MaxLoad(), e.EmptyBins(), ref.EmptyBins())
		}
		if e.Released() != ref.Engine().Released() || e.Staged() != ref.Engine().Staged() {
			t.Fatalf("round %d: flow diverges: released %d vs %d, staged %d vs %d",
				r, e.Released(), ref.Engine().Released(), e.Staged(), ref.Engine().Staged())
		}
	}
	got, want := e.LoadsCopy(), ref.LoadsCopy()
	for u := range got {
		if got[u] != want[u] {
			t.Fatalf("bin %d: load %d vs %d", u, got[u], want[u])
		}
	}
	if e.Round() != rounds {
		t.Fatalf("round %d, want %d", e.Round(), rounds)
	}
}

// TestProcMigration pins the join-payload claim: a checkpoint written by
// an in-process run migrates into a multi-process topology mid-run, and
// the continued trajectory matches the uninterrupted in-process one
// byte for byte.
func TestProcMigration(t *testing.T) {
	const (
		n     = 1 << 14
		s     = 6
		seed  = 29
		half  = 80
		total = 160
	)
	loads := config.OnePerBin(n)

	full, err := shard.NewProcess(loads, seed, shard.Options{Shards: s})
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	full.Run(total)
	want := ckptBytes(t, seed, full)

	first, err := shard.NewProcess(loads, seed, shard.Options{Shards: s})
	if err != nil {
		t.Fatal(err)
	}
	defer first.Close()
	first.Run(half)
	eng, err := first.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Round-trip through the serialized form, as a real migration would.
	var mid bytes.Buffer
	if err := checkpoint.Save(&mid, &checkpoint.Snapshot{Seed: seed, Engine: eng}); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Load(bytes.NewReader(mid.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	e, err := proc.New(snap, proc.Options{Procs: 3})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Round() != half {
		t.Fatalf("migrated engine at round %d, want %d", e.Round(), half)
	}
	for e.Round() < total {
		e.Step()
	}
	if got := ckptBytes(t, seed, e); !bytes.Equal(got, want) {
		t.Error("migrated 3-process continuation differs from uninterrupted in-process run")
	}
}

// TestProcValidation covers the coordinator's argument checking.
// TestProcWorkerExitStatus: a worker that dies before completing the join
// handshake fails construction with its exit status in the error.
func TestProcWorkerExitStatus(t *testing.T) {
	_, err := proc.NewProcess(make([]int32, 8), 1, proc.Options{
		Shards: 2, Procs: 2, Command: []string{"/bin/false"},
	})
	if err == nil {
		t.Fatal("dead-on-arrival worker command succeeded")
	}
	if !strings.Contains(err.Error(), "exit status 1") {
		t.Fatalf("error %q does not carry the worker's exit status", err)
	}
}

func TestProcValidation(t *testing.T) {
	if _, err := proc.New(nil, proc.Options{Procs: 2}); err == nil {
		t.Error("nil snapshot accepted")
	}
	if _, err := proc.NewProcess(nil, 1, proc.Options{Shards: 2, Procs: 2}); err == nil {
		t.Error("no bins accepted")
	}
	// Procs beyond S clamps rather than failing (placement must never
	// change the law).
	e, err := proc.NewProcess(make([]int32, 16), 1, proc.Options{Shards: 2, Procs: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	if e.Procs() != 2 {
		t.Errorf("procs = %d, want clamp to 2", e.Procs())
	}
	e.Step()
	if err := e.Close(); err != nil {
		t.Errorf("close: %v", err)
	}
	if err := e.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
}
