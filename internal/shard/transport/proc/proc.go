// Package proc is the multi-process transport of the sharded round
// protocol: a coordinator Engine in the submitting process drives P worker
// processes, each holding a contiguous range of the run's shards in a
// shard.Group stepped by its own in-process worker pool. Exchange buffers
// and barrier messages travel over the workers' stdin/stdout pipes in a
// little-endian binary framing; the coordinator relays cross-process
// buffers (star topology — every pipe pair connects a worker to the
// coordinator only).
//
// # Worker join payload
//
// A worker joins by receiving the checkpoint-format-v2 header of the run
// plus one self-checksummed frame per shard it owns — only its own state,
// not the whole run — and restoring its shard range with the full
// structural validation of checkpoint.DecodeShardFrame and
// shard.NewGroupFromSnapshot. Fresh runs frame shard.InitialSnapshot;
// resumed runs frame the loaded checkpoint (either format version). State
// migration between process topologies is therefore free: any checkpoint
// can be reopened under any -procs value (the shard count, not the process
// count, is the random law's key), and the coordinator never buffers a
// serialized copy of the whole run.
//
// # Round protocol
//
//	coordinator → workers   step
//	workers     → coordinator   exchange: released/staged counts + every
//	                            (src, dst) buffer with a remote destination
//	coordinator → workers   commit: the inbound buffers of each worker's
//	                            shards, relayed from their source workers
//	workers     → coordinator   stats: per-range max load + empty bins
//
// The pipe round-trips are the collective barriers: the coordinator sends
// no commit before reading every exchange, and completes no Step before
// reading every stats fold, so the two-phase structure of the in-process
// engine is preserved exactly. The trajectory is the same pure function of
// (seed, n, S) as in-process execution — pinned byte-for-byte by the
// transport-invariance matrix test and the CI proc-equivalence gate.
//
// # Worker processes
//
// Workers are re-executions of the current binary: the coordinator spawns
// Options.Command (default os.Executable()) with RBB_PROC_WORKER=1 in the
// environment, and the child's main must call MaybeWorker before doing
// anything else. cmd/rbb-sim does; so does this package's test binary.
package proc

import (
	"fmt"
	"os"

	"repro/internal/engine"
)

// workerEnvVar marks a spawned process as a proc-transport worker.
const workerEnvVar = "RBB_PROC_WORKER"

// IsWorker reports whether this process was spawned as a proc-transport
// worker.
func IsWorker() bool { return os.Getenv(workerEnvVar) == "1" }

// MaybeWorker turns the process into a transport worker when it was
// spawned as one: it runs the worker protocol on stdin/stdout and exits.
// In any other process it returns immediately. Every binary that
// constructs a proc Engine must call it first thing in main.
func MaybeWorker() {
	if !IsWorker() {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rbb proc worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// Options configures a coordinator Engine.
type Options struct {
	// Procs is the number of worker processes P (clamped to [1, S]). The
	// trajectory is independent of it.
	Procs int
	// Workers is the per-process pool worker count handed to each
	// worker's local transport (0 = the worker's GOMAXPROCS). The
	// trajectory is independent of it.
	Workers int
	// Shards is the shard count S used by NewProcess for fresh runs
	// (Options.Shards convention: 0 = GOMAXPROCS, clamped to n). New
	// ignores it — a snapshot's shard count is part of the saved law.
	Shards int
	// Command is the argv launching one worker process (default:
	// {os.Executable()}). The launched process must call MaybeWorker.
	Command []string
	// Width is the per-shard load storage width floor handed to every
	// worker (engine.Options.Width convention: WidthAuto stores each shard
	// at the narrowest width its loads fit, widening on demand). The
	// trajectory is independent of it.
	Width engine.Width
}
