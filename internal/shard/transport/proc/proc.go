// Package proc is the multi-process transport of the sharded round
// protocol over pipes: a coordinator Engine in the submitting process
// spawns P worker processes — re-executions of the current binary — and
// drives the transport-agnostic wire protocol (package
// internal/shard/transport/wire) over their stdin/stdout pipe pairs in a
// star topology. The join payload, round protocol, checkpoint relay and
// failure semantics live in the wire package; this package only owns the
// spawn step and the process lifecycle.
//
// Workers are re-executions of the current binary: the coordinator spawns
// Options.Command (default os.Executable()) with RBB_PROC_WORKER=1 in the
// environment, and the child's main must call MaybeWorker before doing
// anything else. cmd/rbb-sim and cmd/rbb-serve do; so does this package's
// test binary.
//
// Pipes cannot mesh (workers of one coordinator share no channel of their
// own), so the proc transport always relays exchanges through the
// coordinator; the tcp transport adds the worker↔worker mesh.
package proc

import (
	"fmt"
	"io"
	"os"

	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/shard/transport/wire"
)

// workerEnvVar marks a spawned process as a proc-transport worker.
const workerEnvVar = "RBB_PROC_WORKER"

// Telemetry of the pipe transport, recorded on the coordinator side
// (workers count into their own process registries, which nothing
// scrapes). Observational only; see the obs package doc.
var (
	mProcTx = obs.Default.Counter("rbb_proc_tx_bytes_total",
		"Bytes written to worker-process pipes.")
	mProcRx = obs.Default.Counter("rbb_proc_rx_bytes_total",
		"Bytes read from worker-process pipes.")
)

// IsWorker reports whether this process was spawned as a proc-transport
// worker.
func IsWorker() bool { return os.Getenv(workerEnvVar) == "1" }

// MaybeWorker turns the process into a transport worker when it was
// spawned as one: it runs the worker protocol on stdin/stdout and exits.
// In any other process it returns immediately. Every binary that
// constructs a proc Engine must call it first thing in main.
func MaybeWorker() {
	if !IsWorker() {
		return
	}
	if err := WorkerMain(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "rbb proc worker:", err)
		os.Exit(1)
	}
	os.Exit(0)
}

// WorkerMain runs the worker side of the protocol on the given pipe
// endpoints until a quit frame or EOF (the coordinator exiting) and
// returns the first protocol or engine error. MaybeWorker is the usual
// entry point; tests call WorkerMain directly from their re-exec hook.
func WorkerMain(r io.Reader, w io.Writer) error {
	return wire.ServeWorker(r, w, wire.WorkerConfig{})
}

// Options configures a coordinator Engine.
type Options struct {
	// Procs is the number of worker processes P (clamped to [1, S]). The
	// trajectory is independent of it.
	Procs int
	// Workers is the per-process pool worker count handed to each
	// worker's local transport (0 = the worker's GOMAXPROCS). The
	// trajectory is independent of it.
	Workers int
	// Shards is the shard count S used by NewProcess for fresh runs
	// (Options.Shards convention: 0 = GOMAXPROCS, clamped to n). New
	// ignores it — a snapshot's shard count is part of the saved law.
	Shards int
	// Command is the argv launching one worker process (default:
	// {os.Executable()}). The launched process must call MaybeWorker.
	Command []string
	// Width is the per-shard load storage width floor handed to every
	// worker (engine.Options.Width convention: WidthAuto stores each shard
	// at the narrowest width its loads fit, widening on demand). The
	// trajectory is independent of it.
	Width engine.Width
	// Kernel is the dense-round kernel handed to every worker (default
	// engine.KernelBatched). The trajectory is independent of it.
	Kernel engine.Kernel
	// Rule is the arrival rule the workers execute each round (zero
	// value: relaunch, the repeated balls-into-bins law). It is encoded
	// into the join payload, so every process kind crosses process
	// boundaries.
	Rule shard.ArrivalRule
}
