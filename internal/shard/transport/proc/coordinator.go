package proc

import (
	"errors"
	"fmt"
	"os"
	"os/exec"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/shard"
	"repro/internal/shard/transport/wire"
)

// Engine is the coordinator side of the multi-process transport: it
// implements the same stepping surface as shard.Process (engine.Stepper
// plus Snapshot, so checkpoint.Run drives it unchanged) by driving the
// wire round protocol over P worker processes' pipes. Create with New
// (from any checkpoint snapshot) or NewProcess (fresh run); Close
// terminates the workers. Not safe for concurrent use.
//
// A transport failure mid-run — a worker crash, a broken pipe — is
// unrecoverable and surfaces as a panic from Step, because engine.Stepper
// leaves no error channel; the coordinator's state is authoritative only
// at round boundaries and a half-exchanged round cannot be rolled back.
// The error names the failing worker and carries its exit status when the
// process has died, and the surviving workers are cancelled cleanly
// before it surfaces (see wire.Coordinator).
type Engine struct {
	*wire.Coordinator
}

// New spawns opts.Procs worker processes and migrates the snapshot's state
// into them: each worker receives the checkpoint v2 header plus one frame
// per shard it owns — only its own slice of the run — and restores its
// contiguous range from them (see the wire package doc). The snapshot's
// shard count is authoritative; opts.Procs is clamped to it.
func New(snap *checkpoint.Snapshot, opts Options) (*Engine, error) {
	if snap == nil || snap.Engine == nil {
		return nil, errors.New("proc: New with nil snapshot")
	}
	s := len(snap.Engine.Shards)
	p := opts.Procs
	if p < 1 {
		p = 1
	}
	if p > s {
		p = s
	}
	argv := opts.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("proc: resolving worker binary: %w", err)
		}
		argv = []string{exe}
	}
	links := make([]*wire.Link, 0, p)
	for i := 0; i < p; i++ {
		l, err := spawnWorker(argv)
		if err != nil {
			for _, prev := range links {
				prev.CloseIO()
				prev.Finalize()
			}
			return nil, err
		}
		links = append(links, l)
	}
	co, err := wire.NewCoordinator(snap, links, wire.Config{
		Workers:   opts.Workers,
		Width:     opts.Width,
		Kernel:    opts.Kernel,
		Rule:      opts.Rule,
		Transport: "proc",
	})
	if err != nil {
		return nil, fmt.Errorf("proc: %w", err)
	}
	return &Engine{co}, nil
}

// NewProcess builds a fresh multi-process run over a copy of loads — the
// same pure function of (seed, len(loads), shards, rule) as the in-process
// engines, executed across opts.Procs processes.
func NewProcess(loads []int32, seed uint64, opts Options) (*Engine, error) {
	es, err := shard.InitialSnapshot(loads, seed, opts.Shards, opts.Width)
	if err != nil {
		return nil, err
	}
	return New(&checkpoint.Snapshot{Seed: seed, Engine: es}, opts)
}

// spawnWorker launches one worker process and wraps its pipes in a wire
// link. A watcher goroutine owns cmd.Wait, so a pipe failure can be
// decorated with the worker's exit status (Exited) and Close can reap the
// process with a bounded wait (Finalize).
func spawnWorker(argv []string) (*wire.Link, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), workerEnvVar+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("proc: worker pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("proc: worker pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("proc: spawning worker: %w", err)
	}
	done := make(chan struct{})
	var waitErr error
	go func() {
		waitErr = cmd.Wait()
		close(done)
	}()
	return &wire.Link{
		R:    stdout,
		W:    stdin,
		Name: fmt.Sprintf("worker pid %d", cmd.Process.Pid),
		Tx:   mProcTx,
		Rx:   mProcRx,
		Exited: func() error {
			// A dying process races its own pipe EOF; give Wait a moment
			// so the exit status makes it into the error.
			select {
			case <-done:
			case <-time.After(500 * time.Millisecond):
				return nil
			}
			if waitErr != nil {
				return fmt.Errorf("worker exited: %w", waitErr)
			}
			return errors.New("worker exited")
		},
		CloseIO: func() { stdin.Close() },
		Finalize: func() error {
			select {
			case <-done:
				return waitErr
			case <-time.After(5 * time.Second):
				cmd.Process.Kill()
				<-done
				return errors.New("did not exit; killed")
			}
		},
	}, nil
}
