package proc

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
)

// workerProc is one spawned worker process and its framed pipe endpoint.
type workerProc struct {
	cmd    *exec.Cmd
	stdin  io.WriteCloser
	c      *conn
	lo, hi int // owned global shard range
}

// Engine is the coordinator side of the multi-process transport: it
// implements the same stepping surface as shard.Process (engine.Stepper
// plus Snapshot, so checkpoint.Run drives it unchanged) by relaying the
// round protocol between P worker processes. Create with New (from any
// checkpoint snapshot) or NewProcess (fresh run); Close terminates the
// workers. Not safe for concurrent use.
//
// Only the repeated balls-into-bins arrival law (every released ball is
// re-thrown) is supported across processes; the in-process transports
// carry the other laws.
//
// A transport failure mid-run — a worker crash, a broken pipe — is
// unrecoverable and surfaces as a panic from Step, because engine.Stepper
// leaves no error channel; the coordinator's state is authoritative only
// at round boundaries and a half-exchanged round cannot be rolled back.
type Engine struct {
	n, s  int
	procs []*workerProc
	balls int64

	round            int64
	maxLoad          int32
	empty            int
	released, staged int
	loadBytes        int64

	// rbuf[src][dst] are the retained decode buffers of the relay; rows
	// allocate lazily, so memory follows the (src, dst) pairs that
	// actually cross processes.
	rbuf   [][][]int32
	closed bool
}

// New spawns opts.Procs worker processes and migrates the snapshot's state
// into them: each worker receives the checkpoint v2 header plus one frame
// per shard it owns — only its own slice of the run — and restores its
// contiguous range from them. The coordinator never serializes the whole
// run into one buffer; per-worker join payloads are encoded and sent
// worker by worker. The snapshot's shard count is authoritative;
// opts.Procs is clamped to it.
func New(snap *checkpoint.Snapshot, opts Options) (*Engine, error) {
	if snap == nil || snap.Engine == nil {
		return nil, errors.New("proc: New with nil snapshot")
	}
	es := snap.Engine
	s := len(es.Shards)
	p := opts.Procs
	if p < 1 {
		p = 1
	}
	if p > s {
		p = s
	}
	switch opts.Width {
	case engine.WidthAuto, engine.Width8, engine.Width16, engine.Width32:
	default:
		return nil, fmt.Errorf("proc: invalid load width %d", opts.Width)
	}
	var header bytes.Buffer
	err := checkpoint.WriteHeader(&header, checkpoint.Header{
		Seed:   snap.Seed,
		N:      es.N,
		Shards: s,
		Round:  es.Round,
	})
	if err != nil {
		return nil, err
	}
	e := &Engine{
		n:     es.N,
		s:     s,
		round: es.Round,
		rbuf:  make([][][]int32, s),
	}
	// The pre-spawn fold of the snapshot's statistics: the coordinator
	// never holds live shard state, so the global stats start from the
	// snapshot and are re-folded from worker messages every round.
	empty := 0
	for i := range es.Shards {
		for _, l := range es.Shards[i].Loads {
			if l > e.maxLoad {
				e.maxLoad = l
			}
			if l == 0 {
				empty++
			}
			e.balls += int64(l)
		}
	}
	e.empty = empty

	argv := opts.Command
	if len(argv) == 0 {
		exe, err := os.Executable()
		if err != nil {
			return nil, fmt.Errorf("proc: resolving worker binary: %w", err)
		}
		argv = []string{exe}
	}
	for i := 0; i < p; i++ {
		w, err := spawnWorker(argv, s, p, i)
		if err != nil {
			e.Close()
			return nil, err
		}
		e.procs = append(e.procs, w)
	}
	var frame []byte
	for _, w := range e.procs {
		c := w.c
		c.wByte(mInit)
		c.wU32(protoVersion)
		c.wU32(uint32(w.lo))
		c.wU32(uint32(w.hi))
		c.wU32(uint32(opts.Workers))
		c.wByte(uint8(opts.Width))
		c.wBytes(header.Bytes())
		for i := w.lo; i < w.hi && c.err == nil; i++ {
			// Join frames are never compressed: they cross a local pipe once.
			frame, err = checkpoint.AppendShardFrame(frame[:0], &es.Shards[i], i, es.N, s, false)
			if err != nil {
				e.Close()
				return nil, err
			}
			c.wBlob(frame)
		}
		c.flush()
		if c.err != nil {
			err := fmt.Errorf("proc: joining worker [%d,%d): %w", w.lo, w.hi, c.err)
			e.Close()
			return nil, err
		}
	}
	for _, w := range e.procs {
		c := w.c
		if err := c.expect(mInitOK); err != nil {
			e.Close()
			return nil, fmt.Errorf("proc: joining worker [%d,%d): %w", w.lo, w.hi, err)
		}
		e.loadBytes += int64(c.rU64())
		if c.err != nil {
			err := c.err
			e.Close()
			return nil, fmt.Errorf("proc: joining worker [%d,%d): %w", w.lo, w.hi, err)
		}
	}
	return e, nil
}

// NewProcess builds a fresh multi-process rbb run over a copy of loads —
// the same pure function of (seed, len(loads), shards) as
// shard.NewProcess, executed across opts.Procs processes.
func NewProcess(loads []int32, seed uint64, opts Options) (*Engine, error) {
	es, err := shard.InitialSnapshot(loads, seed, opts.Shards, opts.Width)
	if err != nil {
		return nil, err
	}
	return New(&checkpoint.Snapshot{Seed: seed, Engine: es}, opts)
}

// spawnWorker launches worker p of procs and assigns its shard range.
func spawnWorker(argv []string, shards, procs, p int) (*workerProc, error) {
	cmd := exec.Command(argv[0], argv[1:]...)
	cmd.Env = append(os.Environ(), workerEnvVar+"=1")
	cmd.Stderr = os.Stderr
	stdin, err := cmd.StdinPipe()
	if err != nil {
		return nil, fmt.Errorf("proc: worker pipe: %w", err)
	}
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return nil, fmt.Errorf("proc: worker pipe: %w", err)
	}
	if err := cmd.Start(); err != nil {
		return nil, fmt.Errorf("proc: spawning worker: %w", err)
	}
	return &workerProc{
		cmd:   cmd,
		stdin: stdin,
		c:     newConn(stdout, stdin),
		lo:    shard.PartitionStart(shards, procs, p),
		hi:    shard.PartitionStart(shards, procs, p+1),
	}, nil
}

// Step advances one synchronous round across the worker processes. It
// panics on a transport failure (see the type comment).
func (e *Engine) Step() {
	if err := e.step(); err != nil {
		panic(fmt.Sprintf("proc: round %d: %v", e.round, err))
	}
}

func (e *Engine) step() error {
	if e.closed {
		return errors.New("engine is closed")
	}
	// Release on every worker.
	for _, w := range e.procs {
		w.c.wByte(mStep)
		w.c.flush()
		if w.c.err != nil {
			return w.c.err
		}
	}
	// Collect the exchanges: released/staged counts plus every buffer with
	// a remote destination. The relay retains the decode buffers per
	// (src, dst) pair, so steady-state rounds allocate nothing.
	sp := obs.StartSpan("exchange", obs.LanePhases)
	tm := obs.StartTimer()
	count := obs.Enabled()
	balls, msgs := 0, 0
	released, staged := 0, 0
	for _, w := range e.procs {
		c := w.c
		if err := c.expect(mExchange); err != nil {
			return err
		}
		released += int(c.rU64())
		staged += int(c.rU64())
		nbuf := int(c.rU32())
		want := (w.hi - w.lo) * (e.s - (w.hi - w.lo))
		if c.err == nil && nbuf != want {
			return fmt.Errorf("worker [%d,%d) sent %d buffers, want %d", w.lo, w.hi, nbuf, want)
		}
		for i := 0; i < nbuf; i++ {
			src, dst := int(c.rU32()), int(c.rU32())
			if c.err != nil {
				return c.err
			}
			if src < w.lo || src >= w.hi || dst < 0 || dst >= e.s || (dst >= w.lo && dst < w.hi) {
				return fmt.Errorf("worker [%d,%d) sent buffer %d→%d", w.lo, w.hi, src, dst)
			}
			if e.rbuf[src] == nil {
				e.rbuf[src] = make([][]int32, e.s)
			}
			e.rbuf[src][dst] = c.rI32Buf(e.rbuf[src][dst])
			if count && len(e.rbuf[src][dst]) > 0 {
				balls += len(e.rbuf[src][dst])
				msgs++
			}
		}
		if c.err != nil {
			return c.err
		}
	}
	// Relay each worker's inbound buffers and run the commit phase.
	for _, w := range e.procs {
		c := w.c
		c.wByte(mCommit)
		c.wU32(uint32((e.s - (w.hi - w.lo)) * (w.hi - w.lo)))
		for src := 0; src < e.s; src++ {
			if src >= w.lo && src < w.hi {
				continue
			}
			for dst := w.lo; dst < w.hi; dst++ {
				c.wU32(uint32(src))
				c.wU32(uint32(dst))
				var buf []int32
				if e.rbuf[src] != nil {
					buf = e.rbuf[src][dst]
				}
				c.wI32Buf(buf)
			}
		}
		c.flush()
		if c.err != nil {
			return c.err
		}
	}
	tm.ObserveSeconds(mPhaseExchange)
	sp.End()
	if count {
		mProcExchangeBalls.Add(uint64(balls))
		mProcExchangeMsgs.Add(uint64(msgs))
	}
	// Fold the stats — the round's closing barrier.
	var max int32
	empty := 0
	var loadBytes int64
	for _, w := range e.procs {
		c := w.c
		if err := c.expect(mStats); err != nil {
			return err
		}
		if m := int32(c.rU32()); m > max {
			max = m
		}
		empty += int(c.rU64())
		loadBytes += int64(c.rU64())
		if c.err != nil {
			return c.err
		}
	}
	e.maxLoad, e.empty, e.loadBytes = max, empty, loadBytes
	e.released, e.staged = released, staged
	e.round++
	mProcRounds.Inc()
	return nil
}

// frameBound is the sanity cap on one relayed shard frame: the widest raw
// payload (int32 loads) plus flate slack and framing.
func frameBound(n, s, i int) uint64 {
	size := uint64(shard.PartitionSize(n, s, i))
	raw := 48 + size*4 + (size+63)/64*8
	return raw + raw/8 + 128
}

// StreamCheckpoint serializes the run straight to dst in checkpoint format
// v2: every worker encodes its own shards into self-checksummed frames
// concurrently, and the coordinator relays the frame bytes in shard order
// without decoding — or ever materializing — them. The result is what
// checkpoint.SaveOptions would produce from Snapshot, minus the
// coordinator-side gather and whole-blob buffer. checkpoint.Run prefers
// this path (see checkpoint.StreamProcess).
func (e *Engine) StreamCheckpoint(dst io.Writer, seed uint64, obs *shard.PipelineSnapshot, opts checkpoint.Options) error {
	if e.closed {
		return errors.New("proc: StreamCheckpoint on closed engine")
	}
	err := checkpoint.WriteHeader(dst, checkpoint.Header{
		Seed:     seed,
		N:        e.n,
		Shards:   e.s,
		Round:    e.round,
		Observer: obs != nil,
		Compress: opts.Compress,
	})
	if err != nil {
		return err
	}
	// Request every worker up front so they all encode in parallel; drain
	// in worker (= shard) order.
	for _, w := range e.procs {
		w.c.wByte(mSnapshotReq)
		if opts.Compress {
			w.c.wByte(1)
		} else {
			w.c.wByte(0)
		}
		w.c.flush()
		if w.c.err != nil {
			return w.c.err
		}
	}
	for _, w := range e.procs {
		c := w.c
		if err := c.expect(mSnapshot); err != nil {
			return err
		}
		for i := w.lo; i < w.hi; i++ {
			flen := c.rU64()
			if c.err != nil {
				return c.err
			}
			if flen > frameBound(e.n, e.s, i) {
				return fmt.Errorf("proc: shard %d frame of %d bytes exceeds bound %d", i, flen, frameBound(e.n, e.s, i))
			}
			if _, err := io.CopyN(dst, c.br, int64(flen)); err != nil {
				return fmt.Errorf("proc: relaying shard %d frame: %w", i, err)
			}
		}
	}
	if obs != nil {
		frame, err := checkpoint.AppendObserverFrame(nil, obs, opts.Compress)
		if err != nil {
			return err
		}
		if _, err := dst.Write(frame); err != nil {
			return err
		}
	}
	return nil
}

// Snapshot gathers the full deterministic engine state from the workers —
// the same whole-run cut shard.Engine.Snapshot produces, so checkpoints
// written under this transport are byte-identical to in-process ones. It
// runs the streamed frame protocol into a buffer and decodes it; callers
// that only want the serialized form should use StreamCheckpoint and skip
// the decode (checkpoint.Run does).
func (e *Engine) Snapshot() (*shard.EngineSnapshot, error) {
	var buf bytes.Buffer
	// The header seed is provenance only and not part of the engine state;
	// zero is fine for a decode-and-discard pass.
	if err := e.StreamCheckpoint(&buf, 0, nil, checkpoint.Options{}); err != nil {
		return nil, err
	}
	snap, err := checkpoint.Load(&buf)
	if err != nil {
		return nil, err
	}
	return snap.Engine, nil
}

// Close shuts the workers down: a quit frame, then pipe close, then a
// bounded wait (kill on timeout). Idempotent.
func (e *Engine) Close() error {
	if e.closed {
		return nil
	}
	e.closed = true
	var firstErr error
	for _, w := range e.procs {
		w.c.wByte(mQuit)
		w.c.flush()
		w.stdin.Close()
		done := make(chan error, 1)
		go func() { done <- w.cmd.Wait() }()
		select {
		case err := <-done:
			if err != nil && firstErr == nil {
				firstErr = fmt.Errorf("proc: worker [%d,%d): %w", w.lo, w.hi, err)
			}
		case <-time.After(5 * time.Second):
			w.cmd.Process.Kill()
			<-done
			if firstErr == nil {
				firstErr = fmt.Errorf("proc: worker [%d,%d) did not exit; killed", w.lo, w.hi)
			}
		}
	}
	return firstErr
}

// N returns the number of bins.
func (e *Engine) N() int { return e.n }

// Shards returns the shard count S (the random law's key).
func (e *Engine) Shards() int { return e.s }

// Procs returns the number of worker processes.
func (e *Engine) Procs() int { return len(e.procs) }

// Round returns the number of completed rounds.
func (e *Engine) Round() int64 { return e.round }

// MaxLoad returns the current global maximum bin load.
func (e *Engine) MaxLoad() int32 { return e.maxLoad }

// EmptyBins returns the current global number of empty bins.
func (e *Engine) EmptyBins() int { return e.empty }

// NonEmptyBins returns |W(t)|, the current number of non-empty bins.
func (e *Engine) NonEmptyBins() int { return e.n - e.empty }

// Released returns the number of balls released in the last round.
func (e *Engine) Released() int { return e.released }

// Staged returns the number of balls thrown in the last round.
func (e *Engine) Staged() int { return e.staged }

// Balls returns the number of balls m (rbb conserves them).
func (e *Engine) Balls() int64 { return e.balls }

// LoadBytes returns the resident bytes of the workers' load vectors and
// staging areas, summed from their stats messages (join ack, then every
// round). Deterministic for a given trajectory, width floor and round.
func (e *Engine) LoadBytes() int64 { return e.loadBytes }

// Load returns the load of bin u. It gathers a full snapshot per call —
// O(n) plus a pipe round-trip — and exists for engine.Stepper conformance;
// per-round statistics come from the folded MaxLoad/EmptyBins.
func (e *Engine) Load(u int) int32 { return e.LoadsCopy()[u] }

// LoadsCopy returns a fresh copy of the full load vector (a snapshot
// gather; see Load).
func (e *Engine) LoadsCopy() []int32 {
	snap, err := e.Snapshot()
	if err != nil {
		panic(fmt.Sprintf("proc: LoadsCopy: %v", err))
	}
	out := make([]int32, 0, e.n)
	for i := range snap.Shards {
		out = append(out, snap.Shards[i].Loads...)
	}
	return out
}

// Compile-time checks: the coordinator is a checkpoint-able stepper that
// can also serialize its own checkpoint stream.
var (
	_ engine.Stepper           = (*Engine)(nil)
	_ checkpoint.Process       = (*Engine)(nil)
	_ checkpoint.StreamProcess = (*Engine)(nil)
)
