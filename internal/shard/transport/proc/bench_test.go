package proc_test

import (
	"io"
	"testing"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/shard/transport/proc"
)

// The recorded end-to-end checkpoint-encode comparison under the
// multi-process transport (BENCH_compact.json): the streamed path — every
// worker encodes its own shards as v2 frames in parallel, the coordinator
// relays bytes — against the gather-then-encode shape of the pre-v2
// protocol, where the coordinator first materializes the whole
// EngineSnapshot and then serializes it centrally. The gather baseline
// rides today's streaming plumbing, so it is if anything faster than the
// true historical path; the recorded ratio is conservative. Acceptance
// shape: n = 2²⁵, S = 8, P = 4.
const (
	benchN      = 1 << 25
	benchShards = 8
	benchProcs  = 4
)

// countWriter measures bytes on the wire without buffering them.
type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}

func benchEngine(b *testing.B, width engine.Width) *proc.Engine {
	b.Helper()
	e, err := proc.NewProcess(config.OnePerBin(benchN), 7,
		proc.Options{Shards: benchShards, Procs: benchProcs, Width: width})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	for r := 0; r < 3; r++ {
		e.Step()
	}
	return e
}

func benchStream(b *testing.B, opts checkpoint.Options) {
	e := benchEngine(b, engine.WidthAuto)
	b.SetBytes(int64(benchN))
	b.ResetTimer()
	var wire int64
	for i := 0; i < b.N; i++ {
		var cw countWriter
		if err := e.StreamCheckpoint(&cw, 7, nil, opts); err != nil {
			b.Fatal(err)
		}
		wire = cw.n
	}
	b.ReportMetric(float64(wire), "wire-bytes")
}

func BenchmarkProcStreamV2Raw(b *testing.B) {
	benchStream(b, checkpoint.Options{})
}

func BenchmarkProcStreamV2Flate(b *testing.B) {
	benchStream(b, checkpoint.Options{Compress: true})
}

// BenchmarkProcGatherEncode reconstructs the pre-v2 end-to-end shape with
// today's plumbing: load state pinned at int32 (the pre-compaction
// representation, 4× the pipe bytes), the whole EngineSnapshot gathered
// and decoded at the coordinator, then serialized centrally in one pass.
func BenchmarkProcGatherEncode(b *testing.B) {
	e := benchEngine(b, engine.Width32)
	b.SetBytes(int64(benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		snap, err := e.Snapshot()
		if err != nil {
			b.Fatal(err)
		}
		if err := checkpoint.Save(io.Discard, &checkpoint.Snapshot{Seed: 7, Engine: snap}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkProcStepDense keeps a round-throughput number next to the
// encode pair so a regression in the hot loop cannot hide behind
// checkpoint wins.
func BenchmarkProcStepDense(b *testing.B) {
	e := benchEngine(b, engine.WidthAuto)
	b.SetBytes(int64(benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
