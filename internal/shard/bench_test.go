package shard

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/rng"
)

// The recorded comparison (BENCH_shard.json, CI bench-smoke): the sharded
// engine against the sequential internal/engine path at n = 2²², on the
// balanced (dense regime) and all-in-one (sparse regime) starts, with the
// shard count held fixed at 8 while the worker count varies — so the W1 vs
// WMax pair isolates pure parallel speedup on identical work.
const (
	benchN      = 1 << 22
	benchShards = 8
)

func benchSharded(b *testing.B, loads []int32, workers int) {
	p, err := NewProcess(loads, 1, Options{Shards: benchShards, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(loads)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func benchSequential(b *testing.B, loads []int32) {
	p, err := core.NewProcess(loads, rng.NewStream(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(loads)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkShardBalancedW1(b *testing.B) {
	benchSharded(b, config.OnePerBin(benchN), 1)
}

func BenchmarkShardBalancedWMax(b *testing.B) {
	benchSharded(b, config.OnePerBin(benchN), runtime.GOMAXPROCS(0))
}

func BenchmarkSeqBalanced(b *testing.B) {
	benchSequential(b, config.OnePerBin(benchN))
}

func BenchmarkShardAllInOneW1(b *testing.B) {
	benchSharded(b, config.AllInOne(benchN, benchN), 1)
}

func BenchmarkShardAllInOneWMax(b *testing.B) {
	benchSharded(b, config.AllInOne(benchN, benchN), runtime.GOMAXPROCS(0))
}

func BenchmarkSeqAllInOne(b *testing.B) {
	benchSequential(b, config.AllInOne(benchN, benchN))
}
