package shard

import (
	"runtime"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/rng"
)

// obsSetEnabledForBench flips the global telemetry switch for one benchmark
// and restores the default (enabled) afterwards, so the Obs pair never
// leaks state into the other benchmarks or tests in the package.
func obsSetEnabledForBench(b *testing.B, on bool) {
	b.Helper()
	obs.SetEnabled(on)
	b.Cleanup(func() { obs.SetEnabled(true) })
}

// The recorded comparison (BENCH_shard.json, CI bench-smoke): the sharded
// engine against the sequential internal/engine path at n = 2²², on the
// balanced (dense regime) and all-in-one (sparse regime) starts, with the
// shard count held fixed at 8 while the worker count varies — so the W1 vs
// WMax pair isolates pure parallel speedup on identical work.
const (
	benchN      = 1 << 22
	benchShards = 8
)

func benchSharded(b *testing.B, loads []int32, workers int) {
	p, err := NewProcess(loads, 1, Options{Shards: benchShards, Workers: workers})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.SetBytes(int64(len(loads)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func benchSequential(b *testing.B, loads []int32) {
	p, err := core.NewProcess(loads, rng.NewStream(1, 0))
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(loads)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkShardBalancedW1(b *testing.B) {
	benchSharded(b, config.OnePerBin(benchN), 1)
}

func BenchmarkShardBalancedWMax(b *testing.B) {
	benchSharded(b, config.OnePerBin(benchN), runtime.GOMAXPROCS(0))
}

func BenchmarkSeqBalanced(b *testing.B) {
	benchSequential(b, config.OnePerBin(benchN))
}

func BenchmarkShardAllInOneW1(b *testing.B) {
	benchSharded(b, config.AllInOne(benchN, benchN), 1)
}

func BenchmarkShardAllInOneWMax(b *testing.B) {
	benchSharded(b, config.AllInOne(benchN, benchN), runtime.GOMAXPROCS(0))
}

func BenchmarkSeqAllInOne(b *testing.B) {
	benchSequential(b, config.AllInOne(benchN, benchN))
}

// The transport ablation pair (BENCH_pool.json, EXPERIMENTS E23): the
// identical decomposition stepped through the persistent affinity pool
// versus spawn-per-phase. Two regimes: many short phases (small bins per
// shard, S = 64 — the per-phase goroutine create/join cost of spawn is a
// visible fraction of the round) and the big-n shape of the recorded
// BENCH_shard.json comparison.
const (
	ablateSmallN = 1 << 16
	ablateShards = 64
)

func benchTransport(b *testing.B, n, shards int, kind TransportKind) {
	p, err := NewProcess(config.OnePerBin(n), 1,
		Options{Shards: shards, Workers: runtime.GOMAXPROCS(0), Transport: kind})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.SetBytes(int64(n))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

// The storage-width ablation pair (BENCH_compact.json): the identical
// dense balanced round stepped with loads held in uint8 cells (the auto
// steady state — max load is Θ(log n) w.h.p.) versus a pinned int32 floor,
// the pre-compaction representation. Same trajectory, 4× less load-vector
// traffic per round at width 8.
func benchWidth(b *testing.B, w engine.Width) {
	p, err := NewProcess(config.OnePerBin(benchN), 1,
		Options{Shards: benchShards, Workers: 1, Width: w})
	if err != nil {
		b.Fatal(err)
	}
	defer p.Close()
	b.SetBytes(int64(benchN))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Step()
	}
}

func BenchmarkShardDenseWidth8(b *testing.B) {
	benchWidth(b, engine.Width8)
}

func BenchmarkShardDenseWidth32(b *testing.B) {
	benchWidth(b, engine.Width32)
}

// The instrumentation-overhead pair (BENCH_obs.json): the recorded dense
// balanced round with the obs metrics/span hot paths enabled (the default)
// versus globally disabled. The design target is <2% — a handful of atomic
// adds per phase, one add per shard per round for the exchange tallies,
// never per-ball work.
func BenchmarkShardBalancedObsOff(b *testing.B) {
	obsSetEnabledForBench(b, false)
	benchSharded(b, config.OnePerBin(benchN), runtime.GOMAXPROCS(0))
}

func BenchmarkShardBalancedObsOn(b *testing.B) {
	obsSetEnabledForBench(b, true)
	benchSharded(b, config.OnePerBin(benchN), runtime.GOMAXPROCS(0))
}

func BenchmarkShardPoolSmallS64(b *testing.B) {
	benchTransport(b, ablateSmallN, ablateShards, TransportPool)
}

func BenchmarkShardSpawnSmallS64(b *testing.B) {
	benchTransport(b, ablateSmallN, ablateShards, TransportSpawn)
}

func BenchmarkShardPoolBigS8(b *testing.B) {
	benchTransport(b, benchN, benchShards, TransportPool)
}

func BenchmarkShardSpawnBigS8(b *testing.B) {
	benchTransport(b, benchN, benchShards, TransportSpawn)
}
