package shard

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/engine"
	"repro/internal/stats"
)

// Pipeline is the streaming observer for huge single runs: it folds each
// round's statistics into O(1)-memory accumulators — running window max
// load, min/mean empty-bin fraction, and P² quantile sketches of the
// per-round max load — so a 10⁸-bin run keeps a full summary without any
// per-round history. It implements engine.Observer and works with any
// engine.Stepper (sharded or sequential).
type Pipeline struct {
	window engine.WindowMax
	empty  engine.EmptyFraction
	probs  []float64
	sketch []*stats.P2Quantile
	rounds int64
}

// NewPipeline builds a pipeline tracking the given max-load quantile
// probabilities (each in (0, 1), sorted copies are kept; the list may be
// empty).
func NewPipeline(quantiles []float64) (*Pipeline, error) {
	probs := append([]float64(nil), quantiles...)
	sort.Float64s(probs)
	p := &Pipeline{probs: probs}
	for _, q := range probs {
		s, err := stats.NewP2Quantile(q)
		if err != nil {
			return nil, fmt.Errorf("shard: pipeline quantile: %w", err)
		}
		p.sketch = append(p.sketch, s)
	}
	return p, nil
}

// PipelineSnapshot is the serializable state of a Pipeline. The tracked
// probabilities ride inside the sketch states (P2State.P), in the
// pipeline's sorted order. The struct marshals to JSON (the service
// frontend's wire form); internal/checkpoint owns the binary form.
type PipelineSnapshot struct {
	Rounds      int64           `json:"rounds"`
	WindowMax   int32           `json:"window_max"`
	WindowAny   bool            `json:"window_any"`
	EmptyMin    float64         `json:"empty_min"`
	EmptySum    float64         `json:"empty_sum"`
	EmptyRounds int64           `json:"empty_rounds"`
	Sketches    []stats.P2State `json:"sketches,omitempty"`
}

// Snapshot captures the pipeline state for checkpointing.
func (p *Pipeline) Snapshot() *PipelineSnapshot {
	snap := &PipelineSnapshot{Rounds: p.rounds}
	snap.WindowMax, snap.WindowAny = p.window.State()
	snap.EmptyMin, snap.EmptySum, snap.EmptyRounds = p.empty.State()
	for _, sk := range p.sketch {
		snap.Sketches = append(snap.Sketches, sk.State())
	}
	return snap
}

// RestorePipeline rebuilds a pipeline from a snapshot. The restored
// pipeline continues the stream exactly: observing the same subsequent
// rounds yields the same summaries as the uninterrupted pipeline.
func RestorePipeline(snap *PipelineSnapshot) (*Pipeline, error) {
	if snap == nil {
		return nil, errors.New("shard: RestorePipeline with nil snapshot")
	}
	if snap.Rounds < 0 || snap.EmptyRounds < 0 {
		return nil, errors.New("shard: RestorePipeline with negative round count")
	}
	if math.IsNaN(snap.EmptyMin) || math.IsNaN(snap.EmptySum) {
		return nil, errors.New("shard: RestorePipeline with NaN empty-fraction state")
	}
	p := &Pipeline{rounds: snap.Rounds}
	p.window.SetState(snap.WindowMax, snap.WindowAny)
	p.empty.SetState(snap.EmptyMin, snap.EmptySum, snap.EmptyRounds)
	for i, st := range snap.Sketches {
		sk, err := stats.RestoreP2Quantile(st)
		if err != nil {
			return nil, fmt.Errorf("shard: pipeline quantile: %w", err)
		}
		if i > 0 && st.P < p.probs[i-1] {
			return nil, errors.New("shard: RestorePipeline quantiles not sorted")
		}
		p.probs = append(p.probs, st.P)
		p.sketch = append(p.sketch, sk)
	}
	return p, nil
}

// Observe implements engine.Observer.
func (p *Pipeline) Observe(s engine.Stepper) {
	p.window.Observe(s)
	p.empty.Observe(s)
	m := float64(s.MaxLoad())
	for _, sk := range p.sketch {
		sk.Add(m)
	}
	p.rounds++
}

// Rounds returns the number of observed rounds.
func (p *Pipeline) Rounds() int64 { return p.rounds }

// WindowMax returns the maximum observed load (0 before any observation).
func (p *Pipeline) WindowMax() int32 { return p.window.Max() }

// EmptyMin returns the minimum observed empty-bin fraction.
func (p *Pipeline) EmptyMin() float64 { return p.empty.Min() }

// EmptyMean returns the mean observed empty-bin fraction.
func (p *Pipeline) EmptyMean() float64 { return p.empty.Mean() }

// QuantileEstimate is one row of a Summary's quantile table: the tracked
// probability and the current P² estimate of that quantile of the
// per-round max load.
type QuantileEstimate struct {
	P        float64 `json:"p"`
	Estimate float64 `json:"estimate"`
}

// Summary is the JSON-marshalable digest of a Pipeline: the run-so-far
// observer statistics, with the quantile sketches collapsed to their
// estimates. It is the result payload of rbb-serve and of rbb-sim -json;
// two runs with equal trajectories produce byte-equal encodings (every
// field is a deterministic function of the observed rounds).
type Summary struct {
	Rounds    int64              `json:"rounds"`
	WindowMax int32              `json:"window_max"`
	EmptyMin  float64            `json:"empty_min"`
	EmptyMean float64            `json:"empty_mean"`
	Quantiles []QuantileEstimate `json:"quantiles,omitempty"`
	// MemBytesPerBin is the resident load-storage bytes per bin at the end
	// of the run (SummaryFor fills it when the stepper reports LoadBytes).
	// Storage widths only ever ratchet up, so the final figure is also the
	// peak. It is a deterministic function of the trajectory and the width
	// floor — safe for byte-compared summaries.
	MemBytesPerBin float64 `json:"mem_bytes_per_bin,omitempty"`
	// CkptEncodeSeconds is the cumulative wall-clock time of every
	// checkpoint write across the run — periodic, triggered and final,
	// encode and file I/O included. Timing is machine noise, not
	// trajectory: callers fill it only when explicitly asked (rbb-sim
	// -timings), so default summaries stay byte-comparable.
	CkptEncodeSeconds float64 `json:"ckpt_encode_seconds,omitempty"`
}

// Summary returns the current digest of the pipeline.
func (p *Pipeline) Summary() Summary {
	s := Summary{
		Rounds:    p.rounds,
		WindowMax: p.window.Max(),
		EmptyMin:  p.empty.Min(),
		EmptyMean: p.empty.Mean(),
	}
	for i, sk := range p.sketch {
		s.Quantiles = append(s.Quantiles, QuantileEstimate{P: p.probs[i], Estimate: sk.Quantile()})
	}
	return s
}

// SummaryFor returns the current digest with memory accounting taken from
// the stepper that produced the trajectory: when s reports LoadBytes (the
// sharded engines and the proc coordinator do), MemBytesPerBin is filled.
func (p *Pipeline) SummaryFor(s engine.Stepper) Summary {
	sum := p.Summary()
	if lb, ok := s.(interface{ LoadBytes() int64 }); ok && s.N() > 0 {
		sum.MemBytesPerBin = float64(lb.LoadBytes()) / float64(s.N())
	}
	return sum
}

// Quantiles returns the tracked probabilities (sorted) and the current
// estimates of the per-round max-load quantiles, in matching order.
func (p *Pipeline) Quantiles() (probs, estimates []float64) {
	probs = append([]float64(nil), p.probs...)
	for _, sk := range p.sketch {
		estimates = append(estimates, sk.Quantile())
	}
	return probs, estimates
}

// String renders a one-line summary ("p50=7 p90=9 p99=11 ..."), empty if
// no quantiles are tracked.
func (p *Pipeline) String() string {
	var b strings.Builder
	for i, sk := range p.sketch {
		if i > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "p%s=%.4g", trimProb(p.probs[i]), sk.Quantile())
	}
	return b.String()
}

// trimProb renders 0.5 → "50", 0.99 → "99", 0.999 → "99.9". The product
// is rounded to 0.1 so binary floating point cannot leak into the label
// (0.07 must render "7", not "7.000000000000001").
func trimProb(p float64) string {
	return strings.TrimSuffix(strconv.FormatFloat(math.Round(p*1000)/10, 'f', -1, 64), ".0")
}

var _ engine.Observer = (*Pipeline)(nil)
