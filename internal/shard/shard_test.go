package shard

import (
	"sort"
	"testing"

	"repro/internal/config"
	"repro/internal/core"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/stats"
	"repro/internal/tetris"
)

func TestEngineValidation(t *testing.T) {
	if _, err := NewEngine(nil, 1, Options{}); err == nil {
		t.Error("no bins accepted")
	}
	if _, err := NewEngine([]int32{-1}, 1, Options{}); err == nil {
		t.Error("negative load accepted")
	}
	if _, err := NewProcess([]int32{1}, 1, Options{OnEmptied: func(int) {}}); err == nil {
		t.Error("NewProcess accepted OnEmptied")
	}
	if _, err := NewTetris([]int32{1}, 1, TetrisOptions{Lambda: 1.5}); err == nil {
		t.Error("lambda > 1 accepted")
	}
	if _, err := NewTetris([]int32{1}, 1, TetrisOptions{Law: tetris.ArrivalLaw(99)}); err == nil {
		t.Error("bogus arrival law accepted")
	}
}

func TestPartition(t *testing.T) {
	for _, tc := range []struct{ n, s int }{
		{1, 1}, {7, 3}, {64, 8}, {100, 7}, {5, 8}, // s > n clamps to n
	} {
		e, err := NewEngine(make([]int32, tc.n), 1, Options{Shards: tc.s})
		if err != nil {
			t.Fatal(err)
		}
		wantS := tc.s
		if wantS > tc.n {
			wantS = tc.n
		}
		if e.Shards() != wantS {
			t.Fatalf("n=%d s=%d: got %d shards", tc.n, tc.s, e.Shards())
		}
		// Every bin maps to the shard whose range contains it, and sizes
		// differ by at most one.
		for v := 0; v < tc.n; v++ {
			i := e.shardOf(v)
			base, size := PartitionStart(tc.n, wantS, i), PartitionSize(tc.n, wantS, i)
			if v < base || v >= base+size {
				t.Fatalf("n=%d s=%d: bin %d mapped to shard %d [%d,%d)",
					tc.n, tc.s, v, i, base, base+size)
			}
		}
		min, max := tc.n, 0
		for i := 0; i < wantS; i++ {
			if sz := e.shardSize(i); sz < min {
				min = sz
			} else if sz > max {
				max = sz
			}
		}
		if max > 0 && max-min > 1 {
			t.Fatalf("n=%d s=%d: shard sizes range [%d,%d]", tc.n, tc.s, min, max)
		}
	}
}

// TestWorkerInvariance is the P-invariance contract: with the shard count
// held fixed, the aggregate trajectory is byte-identical whether the
// phases run on one goroutine or eight.
func TestWorkerInvariance(t *testing.T) {
	const (
		n      = 1 << 12
		seed   = 42
		shards = 8
		rounds = 300
	)
	loads := config.AllInOne(n, n)
	a, err := NewProcess(loads, seed, Options{Shards: shards, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewProcess(loads, seed, Options{Shards: shards, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	if a.Engine().Workers() != 1 || b.Engine().Workers() != 8 {
		t.Fatalf("workers = %d, %d; want 1, 8", a.Engine().Workers(), b.Engine().Workers())
	}
	for r := 0; r < rounds; r++ {
		a.Step()
		b.Step()
		if a.MaxLoad() != b.MaxLoad() || a.EmptyBins() != b.EmptyBins() {
			t.Fatalf("round %d: stats diverge: max %d vs %d, empty %d vs %d",
				r, a.MaxLoad(), b.MaxLoad(), a.EmptyBins(), b.EmptyBins())
		}
	}
	la, lb := a.LoadsCopy(), b.LoadsCopy()
	for u := range la {
		if la[u] != lb[u] {
			t.Fatalf("bin %d: load %d (P=1) vs %d (P=8)", u, la[u], lb[u])
		}
	}
	if err := a.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if err := b.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// TestTransportInvariance is the in-process half of the transport
// contract: with (seed, n, S) fixed, spawn-per-phase and the persistent
// pool (at several worker counts, under both dense kernels) produce
// byte-identical trajectories. The cross-process half lives in
// transport/proc's matrix test.
func TestTransportInvariance(t *testing.T) {
	const (
		n      = 1 << 13
		seed   = 17
		shards = 8
		rounds = 250
	)
	loads := config.AllInOne(n, n)
	variants := []Options{
		{Shards: shards, Workers: 4, Transport: TransportSpawn},
		{Shards: shards, Workers: 1, Transport: TransportPool},
		{Shards: shards, Workers: 4, Transport: TransportPool},
		{Shards: shards, Workers: shards, Transport: TransportPool},
		{Shards: shards, Workers: 4, Transport: TransportPool, Kernel: engine.KernelScalar},
		{Shards: shards, Workers: 4, Transport: TransportSpawn, Kernel: engine.KernelScalar},
	}
	var ref []int32
	var refMax int32
	for vi, opts := range variants {
		p, err := NewProcess(loads, seed, opts)
		if err != nil {
			t.Fatal(err)
		}
		var wm int32
		for r := 0; r < rounds; r++ {
			p.Step()
			if m := p.MaxLoad(); m > wm {
				wm = m
			}
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("variant %d: %v", vi, err)
		}
		got := p.LoadsCopy()
		if err := p.Close(); err != nil {
			t.Fatalf("variant %d: close: %v", vi, err)
		}
		if vi == 0 {
			ref, refMax = got, wm
			continue
		}
		if wm != refMax {
			t.Fatalf("variant %d (%v W=%d): window max %d vs %d", vi, opts.Transport, opts.Workers, wm, refMax)
		}
		for u := range got {
			if got[u] != ref[u] {
				t.Fatalf("variant %d (%v W=%d): bin %d: load %d vs %d", vi, opts.Transport, opts.Workers, u, got[u], ref[u])
			}
		}
	}
}

// TestTransportKindParse covers the flag surface of the transport enum.
func TestTransportKindParse(t *testing.T) {
	for in, want := range map[string]TransportKind{"": TransportPool, "pool": TransportPool, "spawn": TransportSpawn} {
		got, err := ParseTransportKind(in)
		if err != nil || got != want {
			t.Errorf("ParseTransportKind(%q) = %v, %v", in, got, err)
		}
		if in != "" && got.String() != in {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), in)
		}
	}
	if _, err := ParseTransportKind("bogus"); err == nil {
		t.Error("bogus transport accepted")
	}
}

// TestInitialSnapshot pins that the engine-free fresh-run snapshot equals
// the snapshot of a freshly built engine — the proc transport's fresh-run
// join payload depends on this identity.
func TestInitialSnapshot(t *testing.T) {
	const n, s, seed = 1000, 7, 23
	loads := config.UniformRandom(n, 1700, rng.New(4))
	want, err := NewEngine(loads, seed, Options{Shards: s})
	if err != nil {
		t.Fatal(err)
	}
	defer want.Close()
	wantSnap, err := want.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	got, err := InitialSnapshot(loads, seed, s, engine.WidthAuto)
	if err != nil {
		t.Fatal(err)
	}
	if got.N != wantSnap.N || got.Round != wantSnap.Round || len(got.Shards) != len(wantSnap.Shards) {
		t.Fatalf("shape: got (%d,%d,%d) want (%d,%d,%d)",
			got.N, got.Round, len(got.Shards), wantSnap.N, wantSnap.Round, len(wantSnap.Shards))
	}
	for i := range got.Shards {
		g, w := &got.Shards[i], &wantSnap.Shards[i]
		if g.RNG != w.RNG {
			t.Fatalf("shard %d: rng state differs", i)
		}
		for u := range g.Loads {
			if g.Loads[u] != w.Loads[u] {
				t.Fatalf("shard %d bin %d: %d vs %d", i, u, g.Loads[u], w.Loads[u])
			}
		}
		for j := range g.Work {
			if g.Work[j] != w.Work[j] {
				t.Fatalf("shard %d word %d: %x vs %x", i, j, g.Work[j], w.Work[j])
			}
		}
	}
	if _, err := InitialSnapshot(nil, 1, 2, engine.WidthAuto); err == nil {
		t.Error("empty loads accepted")
	}
	if _, err := InitialSnapshot([]int32{-1}, 1, 1, engine.WidthAuto); err == nil {
		t.Error("negative load accepted")
	}
}

// TestSingleShardMatchesSequential pins the S = 1 anchor of the
// determinism contract: with one shard the draw sequence collapses to the
// sequential one, so the trajectory equals core.Process driven by
// rng.NewStream(seed, 0) exactly.
func TestSingleShardMatchesSequential(t *testing.T) {
	const (
		n    = 257 // deliberately not a power of two
		seed = 7
	)
	for name, loads := range map[string][]int32{
		"one-per-bin": config.OnePerBin(n),
		"all-in-one":  config.AllInOne(n, n),
	} {
		p, err := NewProcess(loads, seed, Options{Shards: 1})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.NewProcess(loads, rng.NewStream(seed, 0))
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 400; r++ {
			p.Step()
			ref.Step()
		}
		got, want := p.LoadsCopy(), ref.LoadsCopy()
		for u := range got {
			if got[u] != want[u] {
				t.Fatalf("%s: bin %d: %d vs sequential %d", name, u, got[u], want[u])
			}
		}
		if p.MaxLoad() != ref.MaxLoad() || p.EmptyBins() != ref.EmptyBins() {
			t.Fatalf("%s: stats diverge", name)
		}
	}
}

// TestTetrisSingleShardMatchesSequential pins the same anchor for the
// batched process under all three arrival laws.
func TestTetrisSingleShardMatchesSequential(t *testing.T) {
	const (
		n    = 130
		seed = 11
	)
	for _, law := range []tetris.ArrivalLaw{tetris.Deterministic, tetris.BinomialArrivals, tetris.PoissonArrivals} {
		p, err := NewTetris(config.AllInOne(n, n), seed,
			TetrisOptions{Options: Options{Shards: 1}, Law: law, Lambda: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		ref, err := tetris.New(config.AllInOne(n, n), rng.NewStream(seed, 0),
			tetris.Options{Law: law, Lambda: 0.7})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 400; r++ {
			p.Step()
			ref.Step()
		}
		got, want := p.LoadsCopy(), ref.LoadsCopy()
		for u := range got {
			if got[u] != want[u] {
				t.Fatalf("law %v: bin %d: %d vs sequential %d", law, u, got[u], want[u])
			}
		}
		if p.Balls() != ref.Balls() {
			t.Fatalf("law %v: balls %d vs %d", law, p.Balls(), ref.Balls())
		}
		// The first-emptying tracker must agree with the sequential one.
		for u := 0; u < n; u++ {
			if p.FirstEmptyRound(u) != ref.FirstEmptyRound(u) {
				t.Fatalf("law %v: bin %d first-empty %d vs %d",
					law, u, p.FirstEmptyRound(u), ref.FirstEmptyRound(u))
			}
		}
	}
}

// TestLawCrossCheck is the distributional equivalence check at small n:
// with several shards the trajectory differs from the sequential engine,
// but the sampled law must agree. Compare mean window-max load and mean
// empty fraction across independent trials.
func TestLawCrossCheck(t *testing.T) {
	const (
		n      = 256
		rounds = 400
		trials = 100
	)
	var seqMax, shMax, seqEmpty, shEmpty stats.Stream
	for trial := 0; trial < trials; trial++ {
		ref, err := core.NewProcess(config.OnePerBin(n), rng.NewStream(1000+uint64(trial), 0))
		if err != nil {
			t.Fatal(err)
		}
		var refWM int32
		for r := 0; r < rounds; r++ {
			ref.Step()
			if m := ref.MaxLoad(); m > refWM {
				refWM = m
			}
		}
		seqMax.Add(float64(refWM))
		seqEmpty.Add(float64(ref.EmptyBins()) / n)

		p, err := NewProcess(config.OnePerBin(n), 2000+uint64(trial), Options{Shards: 4, Workers: 2})
		if err != nil {
			t.Fatal(err)
		}
		var pWM int32
		for r := 0; r < rounds; r++ {
			p.Step()
			if m := p.MaxLoad(); m > pWM {
				pWM = m
			}
		}
		shMax.Add(float64(pWM))
		shEmpty.Add(float64(p.EmptyBins()) / n)
	}
	if d := seqMax.Mean() - shMax.Mean(); d > 0.75 || d < -0.75 {
		t.Errorf("window-max means diverge: sequential %.3f vs sharded %.3f", seqMax.Mean(), shMax.Mean())
	}
	if d := seqEmpty.Mean() - shEmpty.Mean(); d > 0.02 || d < -0.02 {
		t.Errorf("empty-fraction means diverge: sequential %.4f vs sharded %.4f", seqEmpty.Mean(), shEmpty.Mean())
	}
}

func TestConservationAndInvariants(t *testing.T) {
	for _, shards := range []int{2, 3, 5, 16} {
		loads := config.UniformRandom(200, 350, rng.New(uint64(shards)))
		p, err := NewProcess(loads, uint64(90+shards), Options{Shards: shards, Workers: 3})
		if err != nil {
			t.Fatal(err)
		}
		for r := 0; r < 150; r++ {
			p.Step()
		}
		if err := p.CheckInvariants(); err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if p.Balls() != 350 {
			t.Fatalf("shards=%d: balls %d", shards, p.Balls())
		}
		if p.Round() != 150 {
			t.Fatalf("shards=%d: round %d", shards, p.Round())
		}
	}
}

func TestTetrisEmptying(t *testing.T) {
	const n = 256
	p, err := NewTetris(config.AllInOne(n, n), 5, TetrisOptions{Options: Options{Shards: 4, Workers: 4}})
	if err != nil {
		t.Fatal(err)
	}
	if _, done := p.AllEmptiedRound(); done {
		t.Fatal("all-in-one start reported all-emptied before running (bin 0 is full)")
	}
	maxRounds := int64(20 * n)
	for i := int64(0); i < maxRounds; i++ {
		if _, done := p.AllEmptiedRound(); done {
			break
		}
		p.Step()
	}
	r, done := p.AllEmptiedRound()
	if !done {
		t.Fatalf("not all bins emptied within %d rounds", maxRounds)
	}
	if r < 1 || r > maxRounds {
		t.Fatalf("all-emptied round %d out of range", r)
	}
	if err := p.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestPipeline(t *testing.T) {
	pl, err := NewPipeline([]float64{0.5, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProcess(config.OnePerBin(512), 3, Options{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	const rounds = 600
	var exact []int32
	for r := 0; r < rounds; r++ {
		p.Step()
		pl.Observe(p)
		exact = append(exact, p.MaxLoad())
	}
	if pl.Rounds() != rounds {
		t.Fatalf("rounds %d, want %d", pl.Rounds(), rounds)
	}
	var wm int32
	for _, m := range exact {
		if m > wm {
			wm = m
		}
	}
	if pl.WindowMax() != wm {
		t.Fatalf("window max %d, want %d", pl.WindowMax(), wm)
	}
	if min, mean := pl.EmptyMin(), pl.EmptyMean(); min <= 0 || min > mean || mean >= 1 {
		t.Fatalf("empty fraction summary implausible: min %v mean %v", min, mean)
	}
	probs, est := pl.Quantiles()
	if len(probs) != 2 || len(est) != 2 {
		t.Fatalf("quantiles: %v %v", probs, est)
	}
	// The sketch of an int-valued stream must land within one of the exact
	// quantile, and the estimates must be ordered.
	if est[0] > est[1] {
		t.Fatalf("p50 %v > p90 %v", est[0], est[1])
	}
	fs := make([]float64, len(exact))
	for i, m := range exact {
		fs[i] = float64(m)
	}
	sort.Float64s(fs)
	for i, q := range probs {
		want := stats.Quantile(fs, q)
		if d := est[i] - want; d > 1.5 || d < -1.5 {
			t.Errorf("p%v estimate %v, exact %v", q, est[i], want)
		}
	}
	if s := pl.String(); s == "" {
		t.Error("String() empty with tracked quantiles")
	}
}
