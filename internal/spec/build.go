package spec

import (
	"fmt"
	"strings"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/rng"
	"repro/internal/shard"
	"repro/internal/shard/transport/proc"
	"repro/internal/shard/transport/tcp"
	"repro/internal/tetris"
)

// Process is the run surface Build and Open return: the engine stepping
// interface plus teardown. Every ProcessRBB backend additionally
// implements checkpoint.Process (and the multi-process ones
// checkpoint.StreamProcess), so checkpoint.Run drives them unchanged.
type Process interface {
	engine.Stepper
	Close() error
}

// MakeLoads builds the spec's initial configuration exactly as every
// frontend always has: config.Make seeded with rng.New(Seed) — the first
// half of the (seed, n, shards) purity contract.
func (sp RunSpec) MakeLoads() ([]int32, error) {
	balls := sp.M
	if sp.Process != ProcessRBB {
		balls = sp.N
	}
	return config.Make(config.Generator(sp.Init), sp.N, balls, rng.New(sp.Seed))
}

// Rule maps the spec's process kind and λ onto the wire-encodable arrival
// rule the multi-process transports execute.
func (sp RunSpec) Rule() (shard.ArrivalRule, error) {
	switch sp.Process {
	case ProcessRBB:
		return shard.ArrivalRule{}, nil
	case ProcessTetris:
		return shard.RuleForLaw(tetris.Deterministic, sp.Lambda)
	case ProcessBatches:
		return shard.RuleForLaw(tetris.BinomialArrivals, sp.Lambda)
	}
	return shard.ArrivalRule{}, fmt.Errorf("unknown process %q", sp.Process)
}

// workers resolves the per-process phase worker count: the placement's if
// set, else the host default.
func (sp RunSpec) workers(hostDefault int) int {
	if sp.Placement.Workers > 0 {
		return sp.Placement.Workers
	}
	return hostDefault
}

// Build lowers a normalized spec into a fresh run on its placement.
// hostWorkers is the host's default phase worker count (rbb-serve's
// -run-workers; 0 = GOMAXPROCS), overridden by Placement.Workers.
func (sp RunSpec) Build(hostWorkers int) (Process, error) {
	loads, err := sp.MakeLoads()
	if err != nil {
		return nil, err
	}
	w := sp.workers(hostWorkers)
	width := engine.Width(sp.LoadWidth)
	kernel := sp.Kernel()
	switch kind := sp.transport(); kind {
	case TransportPool, TransportSpawn:
		shOpts := shard.Options{Shards: sp.Shards, Workers: w, Transport: sp.PoolKind(), Width: width, Kernel: kernel}
		if sp.Process == ProcessRBB {
			return shard.NewProcess(loads, sp.Seed, shOpts)
		}
		law := tetris.Deterministic
		if sp.Process == ProcessBatches {
			law = tetris.BinomialArrivals
		}
		return shard.NewTetris(loads, sp.Seed, shard.TetrisOptions{Options: shOpts, Law: law, Lambda: sp.Lambda})
	case TransportProc:
		rule, err := sp.Rule()
		if err != nil {
			return nil, err
		}
		return proc.NewProcess(loads, sp.Seed, proc.Options{
			Shards: sp.Shards, Procs: sp.Placement.Procs, Workers: w, Rule: rule, Width: width,
			Kernel: kernel,
		})
	case TransportTCP, TransportTCPMesh:
		rule, err := sp.Rule()
		if err != nil {
			return nil, err
		}
		return tcp.NewProcess(loads, sp.Seed, tcp.Options{
			Shards: sp.Shards, Procs: sp.Placement.Procs, Workers: w, Rule: rule, Width: width,
			Kernel: kernel, Mesh: kind == TransportTCPMesh, Hosts: sp.Placement.Hosts,
		})
	default:
		return nil, fmt.Errorf("unknown placement.transport %q", sp.transport())
	}
}

// Open lowers a normalized ProcessRBB spec into a run resumed from snap on
// the spec's placement — any checkpoint reopens under any placement, and
// the continued trajectory is byte-identical to an uninterrupted run. The
// returned pipeline restores the snapshot's observer accumulators (nil if
// the snapshot predates them).
func (sp RunSpec) Open(snap *checkpoint.Snapshot, hostWorkers int) (Process, *shard.Pipeline, error) {
	if sp.Process != ProcessRBB {
		return nil, nil, fmt.Errorf("process %q does not support checkpoints", sp.Process)
	}
	w := sp.workers(hostWorkers)
	kernel := sp.Kernel()
	switch kind := sp.transport(); kind {
	case TransportPool, TransportSpawn:
		return checkpoint.Resume(snap, shard.Options{Workers: w, Transport: sp.PoolKind(), Kernel: kernel})
	case TransportProc, TransportTCP, TransportTCPMesh:
		var (
			p   Process
			err error
		)
		if kind == TransportProc {
			p, err = proc.New(snap, proc.Options{Procs: sp.Placement.Procs, Workers: w, Kernel: kernel})
		} else {
			p, err = tcp.New(snap, tcp.Options{
				Procs: sp.Placement.Procs, Workers: w, Kernel: kernel,
				Mesh: kind == TransportTCPMesh, Hosts: sp.Placement.Hosts,
			})
		}
		if err != nil {
			return nil, nil, err
		}
		var pipe *shard.Pipeline
		if snap.Observer != nil {
			if pipe, err = shard.RestorePipeline(snap.Observer); err != nil {
				p.Close()
				return nil, nil, err
			}
		}
		return p, pipe, nil
	default:
		return nil, nil, fmt.Errorf("unknown placement.transport %q", sp.transport())
	}
}

// UnreachableHostsError reports placement hosts that failed the
// reachability probe; rbb-serve renders it as a structured 400 naming
// every bad host.
type UnreachableHostsError struct {
	// Hosts are the unreachable addresses, in placement order.
	Hosts []string
	// Causes are the dial errors, parallel to Hosts.
	Causes []error
}

func (e *UnreachableHostsError) Error() string {
	parts := make([]string, len(e.Hosts))
	for i, h := range e.Hosts {
		parts[i] = fmt.Sprintf("%s (%v)", h, e.Causes[i])
	}
	return "unreachable placement hosts: " + strings.Join(parts, "; ")
}

// ProbePlacement verifies every placement host answers a TCP dial within
// timeout (0 = the probe default), returning an *UnreachableHostsError
// naming all failures. Specs without hosts pass trivially. A passing probe
// is advisory — a host can die between probe and join — but it turns the
// common misconfiguration (wrong port, daemon not started) into an
// immediate, attributable rejection instead of a mid-join failure.
func (sp RunSpec) ProbePlacement(timeout time.Duration) error {
	var bad UnreachableHostsError
	for _, h := range sp.Placement.Hosts {
		if err := tcp.Probe(h, timeout); err != nil {
			bad.Hosts = append(bad.Hosts, h)
			bad.Causes = append(bad.Causes, err)
		}
	}
	if len(bad.Hosts) > 0 {
		return &bad
	}
	return nil
}
