// Package spec defines RunSpec, the one canonical, versioned,
// JSON-serializable description of a simulation run. Every frontend lowers
// into it and every backend is built from it: cmd/rbb-sim's flags, the
// rbb-serve submission body and the persisted run manifest are all
// RunSpecs, and Build/Open lower a normalized RunSpec into the in-process
// sharded engines (internal/shard), the pipe transport
// (internal/shard/transport/proc) or the TCP transport
// (internal/shard/transport/tcp).
//
// The struct splits into two planes:
//
//   - The law: Process, Seed, N, M, Rounds, Shards, Init, Lambda. These
//     determine the trajectory — a run is a pure function of them — and
//     only these feed ResultKey, the result-cache identity.
//   - Everything else: Placement (transport, worker processes, hosts),
//     observer knobs (Quantiles, StreamEvery) and the checkpoint policy
//     (CheckpointEvery). These change wall-clock, telemetry and the
//     restart story, never the result; the quantile set does shape the
//     Summary and therefore stays in ResultKey.
//
// # Compatibility
//
// RunSpec keeps the flat JSON field names served since the first rbb-serve
// release, so every pre-placement client body decodes unchanged. The one
// superseded field is the flat "transport" (pool|spawn): it is retained as
// a documented shim that Normalize folds into Placement.Transport.
// Normalized specs always carry "version": 1 and a populated "placement".
package spec

import (
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"

	"repro/internal/config"
	"repro/internal/engine"
	"repro/internal/shard"
)

// Version is the RunSpec schema version Normalize stamps. Version 0 (the
// field absent: every pre-versioning spec) is accepted and upgraded.
const Version = 1

// Process kinds accepted by RunSpec.Process.
const (
	// ProcessRBB is the paper's repeated balls-into-bins process
	// (checkpointable: periodic snapshots, snapshot-and-stop, resume).
	ProcessRBB = "rbb"
	// ProcessTetris is the leaky-bins process with a deterministic ⌈λn⌉
	// batch per round.
	ProcessTetris = "tetris"
	// ProcessBatches is the leaky-bins process with Binomial(n, λ) batches
	// — the Berenbrink et al. (2016) batched-arrival model.
	ProcessBatches = "batches"
)

// Transport kinds accepted by Placement.Transport. The trajectory is
// independent of all of them (the transport-invariance matrix pins it).
const (
	// TransportPool steps the run in process on the persistent worker pool
	// with shard→worker affinity (the default).
	TransportPool = "pool"
	// TransportSpawn steps the run in process with per-phase goroutines.
	TransportSpawn = "spawn"
	// TransportProc spreads the run over Procs local worker processes
	// connected by pipes (star topology).
	TransportProc = "proc"
	// TransportTCP spreads the run over worker processes connected by TCP
	// sockets — self-spawned locally, or daemons named by Hosts — with
	// exchanges relayed through the coordinator (star topology).
	TransportTCP = "tcp"
	// TransportTCPMesh is TransportTCP with direct worker↔worker exchange
	// delivery; the coordinator keeps only barriers, stats folds and
	// checkpoint relay.
	TransportTCPMesh = "tcp-mesh"
)

// Placement says where a run executes — and nothing about what it
// computes. Two specs differing only in Placement produce byte-identical
// results.
type Placement struct {
	// Transport is one of the Transport* kinds (default TransportPool).
	Transport string `json:"transport,omitempty"`
	// Workers is the phase worker goroutine count — of the run itself for
	// the in-process transports, of each worker process for the
	// multi-process ones (0 = the host default: rbb-serve's -run-workers,
	// or GOMAXPROCS).
	Workers int `json:"workers,omitempty"`
	// Procs is the worker process count P for the proc and tcp transports
	// (default 2; clamped to the shard count). With Hosts it must be
	// absent or len(Hosts).
	Procs int `json:"procs,omitempty"`
	// Hosts lists worker daemon addresses ("host:port", one worker each)
	// for the tcp transports; empty self-spawns Procs local workers.
	Hosts []string `json:"hosts,omitempty"`
	// Kernel selects the dense-round kernel: "batched" (the default) or
	// "scalar". Like every placement field it never perturbs the
	// trajectory — the kernels are byte-equivalent — so it is excluded
	// from ResultKey.
	Kernel string `json:"kernel,omitempty"`
}

// multiProcess reports whether the transport crosses process boundaries.
func (p Placement) multiProcess() bool {
	switch p.Transport {
	case TransportProc, TransportTCP, TransportTCPMesh:
		return true
	}
	return false
}

// RunSpec is one run submission. The zero value of every optional field
// selects the documented default; Normalize makes the defaults explicit so
// a stored spec is self-describing.
type RunSpec struct {
	// Version is the schema version (0 = pre-versioning, upgraded to
	// Version by Normalize).
	Version int `json:"version,omitempty"`
	// Process is the process kind: rbb (default), tetris, or batches.
	Process string `json:"process,omitempty"`
	// Seed is the master seed; shard s draws from rng.NewStream(Seed, s).
	Seed uint64 `json:"seed"`
	// N is the number of bins (required, ≥ 1).
	N int `json:"n"`
	// M is the number of balls for rbb (default N; ignored by tetris and
	// batches, whose ball count is dynamic).
	M int `json:"m,omitempty"`
	// Rounds is the target round count (required, ≥ 1).
	Rounds int64 `json:"rounds"`
	// Shards is the shard count S, part of the random law's key (default
	// 1, so results reproduce across machines unless the client opts into
	// a wider decomposition).
	Shards int `json:"shards,omitempty"`
	// Init names the initial configuration family (default one-per-bin).
	Init string `json:"init,omitempty"`
	// Lambda is the per-bin arrival rate for tetris and batches (default
	// 0.75, the paper's stable regime).
	Lambda float64 `json:"lambda,omitempty"`
	// Quantiles are the max-load quantile probabilities tracked by the
	// run's P² sketches, each in (0, 1).
	Quantiles []float64 `json:"quantiles,omitempty"`
	// CheckpointEvery is the periodic snapshot period in rounds for rbb
	// runs (0 = the host's default; snapshots are also written on
	// shutdown and at completion).
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// StreamEvery is the round period of stream events (0 = auto,
	// ~256 events per run).
	StreamEvery int64 `json:"stream_every,omitempty"`
	// LoadWidth is the per-shard load storage width floor in bits: 0
	// (auto: narrowest that fits, widening on demand), 8, 16 or 32. It
	// changes memory and checkpoint size only, never the result, and is
	// therefore excluded from ResultKey.
	LoadWidth int `json:"load_width,omitempty"`
	// Placement says where the run executes; see Placement.
	Placement Placement `json:"placement,omitzero"`

	// Transport is the pre-placement flat transport field (pool|spawn).
	//
	// Deprecated: set Placement.Transport. Normalize folds this field into
	// the placement and clears it; it exists so every pre-placement client
	// body and persisted manifest keeps decoding to the same run.
	Transport string `json:"transport,omitempty"`
}

// Normalize fills defaults in place and validates the spec.
// defaultCheckpointEvery is the host's periodic-checkpoint default for
// specs that do not set their own.
func (sp *RunSpec) Normalize(defaultCheckpointEvery int64) error {
	if sp.Version < 0 || sp.Version > Version {
		return fmt.Errorf("unsupported spec version %d (this build speaks <= %d)", sp.Version, Version)
	}
	sp.Version = Version
	if sp.Process == "" {
		sp.Process = ProcessRBB
	}
	switch sp.Process {
	case ProcessRBB, ProcessTetris, ProcessBatches:
	default:
		return fmt.Errorf("unknown process %q (want %s|%s|%s)", sp.Process, ProcessRBB, ProcessTetris, ProcessBatches)
	}
	if sp.N < 1 {
		return fmt.Errorf("need n >= 1, got %d", sp.N)
	}
	if sp.Rounds < 1 {
		return fmt.Errorf("need rounds >= 1, got %d", sp.Rounds)
	}
	if sp.Process == ProcessRBB {
		if sp.M == 0 {
			sp.M = sp.N
		}
		if sp.M < 0 {
			return fmt.Errorf("need m >= 0, got %d", sp.M)
		}
		if sp.Lambda != 0 {
			return fmt.Errorf("lambda applies only to the tetris and batches processes")
		}
	} else {
		if sp.M != 0 {
			return fmt.Errorf("m applies only to the rbb process")
		}
		// A JSON 0 is indistinguishable from an absent field, so 0 means
		// "default" rather than an error, matching rbb-sim's -lambda flag.
		if sp.Lambda == 0 {
			sp.Lambda = 0.75
		}
		if sp.Lambda < 0 || sp.Lambda > 1 || math.IsNaN(sp.Lambda) {
			return fmt.Errorf("need lambda in (0, 1], got %v", sp.Lambda)
		}
	}
	if sp.Shards == 0 {
		sp.Shards = 1
	}
	if sp.Shards < 1 {
		return fmt.Errorf("need shards >= 1, got %d", sp.Shards)
	}
	if sp.Shards > sp.N {
		return fmt.Errorf("need shards <= n, got %d > %d", sp.Shards, sp.N)
	}
	if sp.Init == "" {
		sp.Init = string(config.GenOnePerBin)
	}
	if !slices.Contains(config.Generators(), config.Generator(sp.Init)) {
		return fmt.Errorf("unknown init %q", sp.Init)
	}
	for _, q := range sp.Quantiles {
		if math.IsNaN(q) || q <= 0 || q >= 1 {
			return fmt.Errorf("quantile %v outside (0, 1)", q)
		}
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("need checkpoint_every >= 0, got %d", sp.CheckpointEvery)
	}
	if sp.CheckpointEvery == 0 {
		sp.CheckpointEvery = defaultCheckpointEvery
	}
	if sp.StreamEvery < 0 {
		return fmt.Errorf("need stream_every >= 0, got %d", sp.StreamEvery)
	}
	if sp.StreamEvery == 0 {
		sp.StreamEvery = sp.Rounds / 256
		if sp.StreamEvery < 1 {
			sp.StreamEvery = 1
		}
	}
	switch sp.LoadWidth {
	case 0, 8, 16, 32:
	default:
		return fmt.Errorf("unknown load_width %d (want 0|8|16|32)", sp.LoadWidth)
	}
	return sp.NormalizePlacement()
}

// NormalizePlacement folds the deprecated flat transport into the
// placement, fills placement defaults and validates the combination. It
// is the placement-only slice of Normalize, for frontends (cmd/rbb-sim)
// whose remaining fields keep CLI semantics — shards 0 = GOMAXPROCS,
// rounds 0 allowed — that Normalize's service defaults would override.
// With Shards 0 the procs-vs-shards checks are left to the engines, which
// clamp.
func (sp *RunSpec) NormalizePlacement() error {
	p := &sp.Placement
	if p.Transport == "" {
		p.Transport = sp.Transport // the pre-placement shim; "" falls through
	}
	if sp.Transport != "" && sp.Transport != p.Transport {
		return fmt.Errorf("transport %q contradicts placement.transport %q (the flat field is a deprecated alias; drop it)",
			sp.Transport, p.Transport)
	}
	sp.Transport = "" // normalized specs carry the placement only
	if p.Transport == "" {
		p.Transport = TransportPool
	}
	switch p.Transport {
	case TransportPool, TransportSpawn, TransportProc, TransportTCP, TransportTCPMesh:
	default:
		return fmt.Errorf("unknown placement.transport %q (want %s|%s|%s|%s|%s)", p.Transport,
			TransportPool, TransportSpawn, TransportProc, TransportTCP, TransportTCPMesh)
	}
	if _, err := engine.ParseKernel(p.Kernel); err != nil {
		return fmt.Errorf("unknown placement.kernel %q (want batched|scalar)", p.Kernel)
	}
	if p.Kernel == "" {
		p.Kernel = engine.KernelBatched.String()
	}
	if p.Workers < 0 {
		return fmt.Errorf("need placement.workers >= 0, got %d", p.Workers)
	}
	if p.Procs < 0 {
		return fmt.Errorf("need placement.procs >= 0, got %d", p.Procs)
	}
	if !p.multiProcess() {
		if p.Procs > 1 {
			return fmt.Errorf("placement.procs %d needs a multi-process transport (%s|%s|%s), got %q",
				p.Procs, TransportProc, TransportTCP, TransportTCPMesh, p.Transport)
		}
		if len(p.Hosts) > 0 {
			return fmt.Errorf("placement.hosts needs a tcp transport, got %q", p.Transport)
		}
		p.Procs = 0
		return nil
	}
	if len(p.Hosts) > 0 {
		if p.Transport == TransportProc {
			return fmt.Errorf("placement.hosts needs a tcp transport, got %q", p.Transport)
		}
		if p.Procs != 0 && p.Procs != len(p.Hosts) {
			return fmt.Errorf("placement.procs %d contradicts %d placement.hosts (drop procs: hosts implies it)",
				p.Procs, len(p.Hosts))
		}
		if sp.Shards > 0 && len(p.Hosts) > sp.Shards {
			return fmt.Errorf("%d placement.hosts for %d shards (one worker per host needs hosts <= shards)",
				len(p.Hosts), sp.Shards)
		}
		p.Procs = len(p.Hosts)
		return nil
	}
	if p.Procs == 0 {
		p.Procs = 2
	}
	if sp.Shards > 0 && p.Procs > sp.Shards {
		return fmt.Errorf("placement.procs %d exceeds %d shards (each worker needs a non-empty shard range)",
			p.Procs, sp.Shards)
	}
	return nil
}

// transport resolves the effective transport kind, tolerating
// un-normalized specs (pre-placement manifests carry only the flat field).
func (sp RunSpec) transport() string {
	if sp.Placement.Transport != "" {
		return sp.Placement.Transport
	}
	if sp.Transport != "" {
		return sp.Transport
	}
	return TransportPool
}

// ResultKey canonicalizes the result-determining fields of a normalized
// spec: two specs with equal keys produce byte-identical Summaries.
// Version, Placement and the snapshot/stream knobs are deliberately
// absent — they never perturb the trajectory, so specs differing only
// there share a result.
func (sp RunSpec) ResultKey() string {
	qs := append([]float64(nil), sp.Quantiles...)
	sort.Float64s(qs)
	var b strings.Builder
	fmt.Fprintf(&b, "%s|%d|%d|%d|%d|%d|%s|%s",
		sp.Process, sp.Seed, sp.N, sp.M, sp.Rounds, sp.Shards, sp.Init,
		strconv.FormatFloat(sp.Lambda, 'g', -1, 64))
	for _, q := range qs {
		b.WriteByte('|')
		b.WriteString(strconv.FormatFloat(q, 'g', -1, 64))
	}
	return b.String()
}

// Kernel resolves the effective dense-round kernel, tolerating
// un-normalized specs (empty means the batched default).
func (sp RunSpec) Kernel() engine.Kernel {
	k, err := engine.ParseKernel(sp.Placement.Kernel)
	if err != nil {
		return engine.KernelBatched
	}
	return k
}

// PoolKind maps the effective transport onto the in-process phase
// transport handed to shard.Options: the in-process kinds map to
// themselves, and the multi-process ones to the pool (each worker process
// steps its range on its local pool).
func (sp RunSpec) PoolKind() shard.TransportKind {
	if sp.transport() == TransportSpawn {
		return shard.TransportSpawn
	}
	return shard.TransportPool
}
