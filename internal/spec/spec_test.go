package spec

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

// TestJSONRoundTrip: a normalized spec survives marshal → unmarshal →
// normalize unchanged — the property that lets rbb-serve persist specs in
// its manifest and lets checkpointed runs re-submit themselves.
func TestJSONRoundTrip(t *testing.T) {
	sp := RunSpec{
		Process: ProcessTetris, Seed: 7, N: 4096, Rounds: 500, Shards: 8,
		Init: "all-in-one", Lambda: 0.5, Quantiles: []float64{0.5, 0.99},
		LoadWidth: 16,
		Placement: Placement{Transport: TransportTCPMesh, Procs: 4, Workers: 2},
	}
	if err := sp.Normalize(100); err != nil {
		t.Fatal(err)
	}
	blob, err := json.Marshal(sp)
	if err != nil {
		t.Fatal(err)
	}
	var back RunSpec
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("round trip changed the spec:\n got %+v\nwant %+v", back, sp)
	}
	if err := back.Normalize(100); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sp, back) {
		t.Fatalf("re-normalizing a normalized spec changed it:\n got %+v\nwant %+v", back, sp)
	}
	// The deprecated flat field never reappears in normalized output.
	if strings.Contains(string(blob), `"transport":"tcp-mesh"`) && !strings.Contains(string(blob), `"placement"`) {
		t.Fatalf("normalized spec serialized the flat transport: %s", blob)
	}
}

// TestCompatShim: every pre-placement client body — the flat
// {"transport": "pool"|"spawn"} shape served since the first rbb-serve —
// keeps decoding to the same run. The flat field folds into the placement
// and is cleared; a contradiction between the two is an error, not a
// silent pick.
func TestCompatShim(t *testing.T) {
	legacy := `{"seed":1,"n":256,"rounds":50,"transport":"spawn"}`
	var sp RunSpec
	if err := json.Unmarshal([]byte(legacy), &sp); err != nil {
		t.Fatal(err)
	}
	if err := sp.Normalize(0); err != nil {
		t.Fatal(err)
	}
	if sp.Placement.Transport != TransportSpawn || sp.Transport != "" {
		t.Fatalf("flat transport did not fold into the placement: %+v", sp)
	}

	// Agreeing duplicate is tolerated; contradiction is rejected.
	agree := RunSpec{N: 8, Rounds: 1, Transport: TransportSpawn, Placement: Placement{Transport: TransportSpawn}}
	if err := agree.Normalize(0); err != nil {
		t.Fatalf("agreeing flat+placement transport rejected: %v", err)
	}
	bad := RunSpec{N: 8, Rounds: 1, Transport: TransportPool, Placement: Placement{Transport: TransportSpawn}}
	if err := bad.Normalize(0); err == nil || !strings.Contains(err.Error(), "contradicts") {
		t.Fatalf("contradicting transports accepted: %v", err)
	}

	// Un-normalized manifests (flat field only) still resolve: the tolerant
	// readers used by Build/Open fall back to the flat field.
	old := RunSpec{Transport: TransportSpawn}
	if got := old.transport(); got != TransportSpawn {
		t.Fatalf("transport() = %q, want spawn", got)
	}
	if old.PoolKind() == (RunSpec{}).PoolKind() {
		t.Fatal("PoolKind did not distinguish spawn from the pool default")
	}
}

// TestVersioning: future schema versions are rejected, past ones upgraded.
func TestVersioning(t *testing.T) {
	sp := RunSpec{Version: Version + 1, N: 8, Rounds: 1}
	if err := sp.Normalize(0); err == nil {
		t.Fatal("future version accepted")
	}
	sp = RunSpec{N: 8, Rounds: 1}
	if err := sp.Normalize(0); err != nil {
		t.Fatal(err)
	}
	if sp.Version != Version {
		t.Fatalf("normalize stamped version %d, want %d", sp.Version, Version)
	}
}

// TestResultKeyExcludesPlacement: the cache key covers exactly the
// result-determining fields — two specs differing only in placement,
// checkpoint policy, stream cadence or storage width share a key, and
// every law field perturbs it.
func TestResultKeyExcludesPlacement(t *testing.T) {
	base := func() RunSpec {
		sp := RunSpec{Seed: 3, N: 1024, M: 512, Rounds: 100, Shards: 4, Quantiles: []float64{0.9, 0.5}}
		if err := sp.Normalize(10); err != nil {
			t.Fatal(err)
		}
		return sp
	}
	ref := base().ResultKey()

	same := base()
	same.Placement = Placement{Transport: TransportTCPMesh, Procs: 4, Hosts: nil, Workers: 3, Kernel: "scalar"}
	same.CheckpointEvery, same.StreamEvery, same.LoadWidth = 77, 5, 32
	if err := same.NormalizePlacement(); err != nil {
		t.Fatal(err)
	}
	if same.ResultKey() != ref {
		t.Fatalf("placement/policy fields leaked into the result key:\n %q\n %q", same.ResultKey(), ref)
	}
	// The kernel knob alone is placement-plane too: batched and scalar
	// specs share one result.
	kern := base()
	kern.Placement.Kernel = "scalar"
	if err := kern.NormalizePlacement(); err != nil {
		t.Fatal(err)
	}
	if kern.ResultKey() != ref {
		t.Fatal("placement.kernel leaked into the result key")
	}
	// Quantile order is canonicalized.
	reordered := base()
	reordered.Quantiles = []float64{0.5, 0.9}
	if reordered.ResultKey() != ref {
		t.Fatal("quantile order perturbed the result key")
	}

	for name, mut := range map[string]func(*RunSpec){
		"seed":   func(sp *RunSpec) { sp.Seed = 4 },
		"n":      func(sp *RunSpec) { sp.N = 2048 },
		"m":      func(sp *RunSpec) { sp.M = 513 },
		"rounds": func(sp *RunSpec) { sp.Rounds = 101 },
		"shards": func(sp *RunSpec) { sp.Shards = 8 },
		"init":   func(sp *RunSpec) { sp.Init = "uniform" },
	} {
		sp := base()
		mut(&sp)
		if sp.ResultKey() == ref {
			t.Errorf("%s did not perturb the result key", name)
		}
	}
}

// TestNormalizePlacement covers the placement validation matrix for both
// frontends: the serve path (explicit shards) and the CLI path (shards 0 =
// GOMAXPROCS, where shard-count checks defer to the engines' clamping).
func TestNormalizePlacement(t *testing.T) {
	cases := []struct {
		name    string
		in      RunSpec
		wantErr string
		want    Placement
	}{
		{name: "default pool", in: RunSpec{}, want: Placement{Transport: TransportPool, Kernel: "batched"}},
		{name: "unknown kind", in: RunSpec{Placement: Placement{Transport: "carrier-pigeon"}}, wantErr: "unknown placement.transport"},
		{name: "unknown kernel", in: RunSpec{Placement: Placement{Kernel: "vectorized"}}, wantErr: "unknown placement.kernel"},
		{name: "scalar kernel", in: RunSpec{Placement: Placement{Kernel: "scalar"}}, want: Placement{Transport: TransportPool, Kernel: "scalar"}},
		{name: "procs on pool", in: RunSpec{Placement: Placement{Transport: TransportPool, Procs: 2}}, wantErr: "multi-process transport"},
		{name: "hosts on spawn", in: RunSpec{Placement: Placement{Transport: TransportSpawn, Hosts: []string{"a"}}}, wantErr: "placement.hosts needs a tcp transport"},
		{name: "hosts on proc", in: RunSpec{Placement: Placement{Transport: TransportProc, Hosts: []string{"a"}}}, wantErr: "placement.hosts needs a tcp transport"},
		{name: "proc defaults procs", in: RunSpec{Placement: Placement{Transport: TransportProc}}, want: Placement{Transport: TransportProc, Procs: 2, Kernel: "batched"}},
		{name: "hosts imply procs", in: RunSpec{Placement: Placement{Transport: TransportTCP, Hosts: []string{"a:1", "b:1"}}},
			want: Placement{Transport: TransportTCP, Procs: 2, Hosts: []string{"a:1", "b:1"}, Kernel: "batched"}},
		{name: "procs contradict hosts", in: RunSpec{Placement: Placement{Transport: TransportTCP, Procs: 3, Hosts: []string{"a:1"}}}, wantErr: "contradicts"},
		{name: "hosts exceed shards", in: RunSpec{Shards: 2, Placement: Placement{Transport: TransportTCPMesh, Hosts: []string{"a", "b", "c"}}}, wantErr: "hosts <= shards"},
		{name: "procs exceed shards", in: RunSpec{Shards: 2, Placement: Placement{Transport: TransportProc, Procs: 4}}, wantErr: "exceeds"},
		{name: "cli shards 0 skips shard checks", in: RunSpec{Placement: Placement{Transport: TransportProc, Procs: 64}},
			want: Placement{Transport: TransportProc, Procs: 64, Kernel: "batched"}},
		{name: "negative procs", in: RunSpec{Placement: Placement{Transport: TransportProc, Procs: -1}}, wantErr: "procs >= 0"},
		{name: "negative workers", in: RunSpec{Placement: Placement{Workers: -1}}, wantErr: "workers >= 0"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := tc.in.NormalizePlacement()
			if tc.wantErr != "" {
				if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
					t.Fatalf("err = %v, want substring %q", err, tc.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(tc.in.Placement, tc.want) {
				t.Fatalf("placement = %+v, want %+v", tc.in.Placement, tc.want)
			}
		})
	}
}

// TestNormalizeErrors covers the law-plane validation.
func TestNormalizeErrors(t *testing.T) {
	cases := []struct {
		name string
		in   RunSpec
	}{
		{"bad process", RunSpec{Process: "bogus", N: 8, Rounds: 1}},
		{"n zero", RunSpec{Rounds: 1}},
		{"rounds zero", RunSpec{N: 8}},
		{"lambda on rbb", RunSpec{N: 8, Rounds: 1, Lambda: 0.5}},
		{"m on tetris", RunSpec{Process: ProcessTetris, N: 8, M: 4, Rounds: 1}},
		{"lambda out of range", RunSpec{Process: ProcessTetris, N: 8, Rounds: 1, Lambda: 1.5}},
		{"shards over n", RunSpec{N: 4, Rounds: 1, Shards: 8}},
		{"bad init", RunSpec{N: 8, Rounds: 1, Init: "bogus"}},
		{"bad quantile", RunSpec{N: 8, Rounds: 1, Quantiles: []float64{1.5}}},
		{"bad load width", RunSpec{N: 8, Rounds: 1, LoadWidth: 7}},
		{"negative checkpoint every", RunSpec{N: 8, Rounds: 1, CheckpointEvery: -1}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.in.Normalize(0); err == nil {
				t.Fatalf("spec %+v accepted", tc.in)
			}
		})
	}
}
