// Package mixing estimates random-walk mixing quantities for the graph
// substrate: the spectral gap of the simple random walk (via power
// iteration on the lazy chain) and exact total-variation mixing times (via
// distribution evolution). The paper's §1.3 situates repeated
// balls-into-bins among parallel-walk analyses in the gossip model, where
// walk mixing is the central quantity; §5's conjecture about general
// regular graphs is exactly a question about slow-mixing topologies
// (rings: gap Θ(1/n²)) versus fast ones (hypercubes, random regular
// graphs: gap Ω(1/log n) or constant).
//
// All routines require a regular graph (uniform stationary distribution);
// they validate this and return an error otherwise.
package mixing

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/graph"
	"repro/internal/rng"
)

// maxVertices bounds the dense vectors allocated by this package.
const maxVertices = 1 << 20

// stepLazy applies one step of the lazy walk (P+I)/2 to the vector v,
// writing into out: out = (v + P v)/2 with P the simple-random-walk
// transition matrix (row u spreads mass 1/deg(u) to each neighbor).
func stepLazy(g graph.Graph, v, out []float64) {
	n := g.N()
	for i := range out {
		out[i] = 0
	}
	for u := 0; u < n; u++ {
		mass := v[u]
		if mass == 0 {
			continue
		}
		deg := g.Degree(u)
		share := mass / (2 * float64(deg))
		for i := 0; i < deg; i++ {
			out[g.Neighbor(u, i)] += share
		}
		out[u] += mass / 2
	}
}

// validate checks the graph is usable: non-nil, regular, within size
// bounds, and with positive degree.
func validate(g graph.Graph) (n, deg int, err error) {
	if g == nil {
		return 0, 0, errors.New("mixing: nil graph")
	}
	n = g.N()
	if n < 2 {
		return 0, 0, fmt.Errorf("mixing: graph has %d vertices, need >= 2", n)
	}
	if n > maxVertices {
		return 0, 0, fmt.Errorf("mixing: graph has %d vertices, cap is %d", n, maxVertices)
	}
	deg, ok := graph.IsRegular(g)
	if !ok {
		return 0, 0, errors.New("mixing: graph is not regular (stationary distribution not uniform)")
	}
	if deg < 1 {
		return 0, 0, errors.New("mixing: zero-degree graph")
	}
	return n, deg, nil
}

// SpectralGap estimates 1 − λ₂ of the simple random walk on a regular
// graph, where λ₂ is the second-largest eigenvalue (not in absolute
// value). It runs iters power iterations on the lazy chain (P+I)/2 —
// whose spectrum is non-negative, so bipartiteness cannot mislead the
// estimate — after deflating the known top eigenvector (uniform), and
// converts back: λ₂ = 2·λ₂(lazy) − 1.
//
// The estimate converges from below; iters ≈ 20·n²/d suffices for rings
// (the slowest family here), far fewer for expanders. Typical use passes
// a few thousand.
func SpectralGap(g graph.Graph, iters int, src *rng.Source) (gap, lambda2 float64, err error) {
	n, _, err := validate(g)
	if err != nil {
		return 0, 0, err
	}
	if iters < 1 {
		return 0, 0, fmt.Errorf("mixing: iters = %d < 1", iters)
	}
	if src == nil {
		return 0, 0, errors.New("mixing: nil rng source")
	}
	v := make([]float64, n)
	w := make([]float64, n)
	for i := range v {
		v[i] = src.NormFloat64()
	}
	deflate(v)
	normalize(v)
	lam := 0.0
	for it := 0; it < iters; it++ {
		stepLazy(g, v, w)
		deflate(w)
		lam = norm(w) // Rayleigh-style growth estimate: |P_lazy v| for unit v
		if lam == 0 {
			// v landed in the kernel; λ₂(lazy) = 0 ⇒ λ₂ = −1.
			return 2, -1, nil
		}
		inv := 1 / lam
		for i := range w {
			w[i] *= inv
		}
		v, w = w, v
	}
	lambda2 = 2*lam - 1
	return 1 - lambda2, lambda2, nil
}

// deflate removes the component along the all-ones vector.
func deflate(v []float64) {
	mean := 0.0
	for _, x := range v {
		mean += x
	}
	mean /= float64(len(v))
	for i := range v {
		v[i] -= mean
	}
}

func norm(v []float64) float64 {
	s := 0.0
	for _, x := range v {
		s += x * x
	}
	return math.Sqrt(s)
}

func normalize(v []float64) {
	nv := norm(v)
	if nv == 0 {
		return
	}
	inv := 1 / nv
	for i := range v {
		v[i] *= inv
	}
}

// RelaxationTime returns 1/gap, the relaxation time of the walk.
func RelaxationTime(gap float64) float64 {
	if gap <= 0 {
		return math.Inf(1)
	}
	return 1 / gap
}

// TVFromUniform returns the total-variation distance between the
// distribution vector p and the uniform distribution on n points.
func TVFromUniform(p []float64) float64 {
	n := float64(len(p))
	tv := 0.0
	for _, x := range p {
		tv += math.Abs(x - 1/n)
	}
	return tv / 2
}

// MixingTimeTV computes the exact ε-total-variation mixing time of the
// LAZY walk started from vertex start on a regular graph, by evolving the
// distribution step by step. Returns the first t with
// TV(p_t, uniform) ≤ eps, or (maxSteps, false) if not reached.
//
// Cost is O(maxSteps · n · d); use on small graphs or fast-mixing
// families (a ring's Θ(n²) mixing makes large rings expensive by design —
// that is the phenomenon being measured).
func MixingTimeTV(g graph.Graph, start int, eps float64, maxSteps int) (int, bool, error) {
	n, _, err := validate(g)
	if err != nil {
		return 0, false, err
	}
	if start < 0 || start >= n {
		return 0, false, fmt.Errorf("mixing: start %d outside [0,%d)", start, n)
	}
	if eps <= 0 || eps >= 1 {
		return 0, false, fmt.Errorf("mixing: eps = %v outside (0,1)", eps)
	}
	if maxSteps < 0 {
		return 0, false, fmt.Errorf("mixing: maxSteps = %d < 0", maxSteps)
	}
	p := make([]float64, n)
	q := make([]float64, n)
	p[start] = 1
	if TVFromUniform(p) <= eps {
		return 0, true, nil
	}
	for t := 1; t <= maxSteps; t++ {
		stepLazy(g, p, q)
		p, q = q, p
		if TVFromUniform(p) <= eps {
			return t, true, nil
		}
	}
	return maxSteps, false, nil
}
