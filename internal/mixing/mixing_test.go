package mixing

import (
	"math"
	"testing"

	"repro/internal/graph"
	"repro/internal/rng"
)

// Known second eigenvalues of the simple random walk:
//   - complete graph with self-loops: λ₂ = 0 (gap 1)
//   - ring of n: λ₂ = cos(2π/n)
//   - hypercube of dim d: λ₂ = 1 − 2/d
//   - 2-D torus side s: λ₂ = (1 + cos(2π/s))/2

func TestSpectralGapComplete(t *testing.T) {
	g, err := graph.NewComplete(64)
	if err != nil {
		t.Fatal(err)
	}
	gap, lam, err := SpectralGap(g, 200, rng.New(1))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(lam) > 0.01 || math.Abs(gap-1) > 0.01 {
		t.Fatalf("complete: λ2 = %v, gap = %v; want 0, 1", lam, gap)
	}
}

func TestSpectralGapRing(t *testing.T) {
	const n = 64
	g, err := graph.NewRing(n)
	if err != nil {
		t.Fatal(err)
	}
	gap, lam, err := SpectralGap(g, 40000, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	want := math.Cos(2 * math.Pi / n)
	if math.Abs(lam-want) > 1e-3 {
		t.Fatalf("ring-%d: λ2 = %v, want %v", n, lam, want)
	}
	if gap < 0 {
		t.Fatalf("negative gap %v", gap)
	}
}

func TestSpectralGapHypercube(t *testing.T) {
	const d = 6
	g, err := graph.NewHypercube(d)
	if err != nil {
		t.Fatal(err)
	}
	_, lam, err := SpectralGap(g, 4000, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	want := 1 - 2.0/d
	if math.Abs(lam-want) > 1e-3 {
		t.Fatalf("hypercube-%d: λ2 = %v, want %v", d, lam, want)
	}
}

func TestSpectralGapTorus(t *testing.T) {
	const side = 8
	g, err := graph.NewTorus(side, side)
	if err != nil {
		t.Fatal(err)
	}
	_, lam, err := SpectralGap(g, 20000, rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	want := (1 + math.Cos(2*math.Pi/side)) / 2
	if math.Abs(lam-want) > 1e-3 {
		t.Fatalf("torus-%d: λ2 = %v, want %v", side, lam, want)
	}
}

func TestSpectralGapOrdering(t *testing.T) {
	// Expander-vs-ring: random 4-regular gap must far exceed the ring's.
	src := rng.New(5)
	ringG, err := graph.NewRing(256)
	if err != nil {
		t.Fatal(err)
	}
	rrG, err := graph.NewRandomRegular(256, 4, src, 2000)
	if err != nil {
		t.Fatal(err)
	}
	ringGap, _, err := SpectralGap(ringG, 60000, src)
	if err != nil {
		t.Fatal(err)
	}
	rrGap, _, err := SpectralGap(rrG, 2000, src)
	if err != nil {
		t.Fatal(err)
	}
	if rrGap < 20*ringGap {
		t.Fatalf("random-regular gap %v not ≫ ring gap %v", rrGap, ringGap)
	}
}

func TestSpectralGapValidation(t *testing.T) {
	src := rng.New(1)
	if _, _, err := SpectralGap(nil, 10, src); err == nil {
		t.Error("nil graph accepted")
	}
	g, err := graph.NewComplete(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SpectralGap(g, 0, src); err == nil {
		t.Error("iters=0 accepted")
	}
	if _, _, err := SpectralGap(g, 10, nil); err == nil {
		t.Error("nil source accepted")
	}
	// Irregular graph rejected.
	adj := [][]int32{{1}, {0, 2}, {1}}
	ir, err := graph.NewAdjacency(adj, "path")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := SpectralGap(ir, 10, src); err == nil {
		t.Error("irregular graph accepted")
	}
}

func TestMixingTimeComplete(t *testing.T) {
	g, err := graph.NewComplete(64)
	if err != nil {
		t.Fatal(err)
	}
	tm, ok, err := MixingTimeTV(g, 0, 0.25, 100)
	if err != nil || !ok {
		t.Fatalf("complete did not mix: %v %v", ok, err)
	}
	// Lazy uniform walk is within 1/4 TV after a couple of steps.
	if tm > 3 {
		t.Fatalf("complete mixing time %d, want <= 3", tm)
	}
}

func TestMixingTimeHypercubeVsRing(t *testing.T) {
	cube, err := graph.NewHypercube(6) // 64 vertices
	if err != nil {
		t.Fatal(err)
	}
	ring, err := graph.NewRing(64)
	if err != nil {
		t.Fatal(err)
	}
	tCube, ok, err := MixingTimeTV(cube, 0, 0.25, 10000)
	if err != nil || !ok {
		t.Fatalf("hypercube did not mix: %v %v", ok, err)
	}
	tRing, ok, err := MixingTimeTV(ring, 0, 0.25, 100000)
	if err != nil || !ok {
		t.Fatalf("ring did not mix: %v %v", ok, err)
	}
	if tRing < 8*tCube {
		t.Fatalf("ring (%d) should mix much slower than hypercube (%d)", tRing, tCube)
	}
}

func TestMixingTimeHitsCap(t *testing.T) {
	ring, err := graph.NewRing(128)
	if err != nil {
		t.Fatal(err)
	}
	_, ok, err := MixingTimeTV(ring, 0, 0.01, 5)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("ring-128 cannot mix in 5 steps")
	}
}

func TestMixingTimeValidation(t *testing.T) {
	g, err := graph.NewComplete(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := MixingTimeTV(g, -1, 0.25, 10); err == nil {
		t.Error("bad start accepted")
	}
	if _, _, err := MixingTimeTV(g, 0, 0, 10); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, _, err := MixingTimeTV(g, 0, 1.5, 10); err == nil {
		t.Error("eps>1 accepted")
	}
	if _, _, err := MixingTimeTV(g, 0, 0.25, -1); err == nil {
		t.Error("negative maxSteps accepted")
	}
}

func TestTVFromUniform(t *testing.T) {
	// Point mass on one of 4: TV = (|1-1/4| + 3·|0-1/4|)/2 = 3/4.
	if tv := TVFromUniform([]float64{1, 0, 0, 0}); math.Abs(tv-0.75) > 1e-12 {
		t.Fatalf("TV = %v, want 0.75", tv)
	}
	if tv := TVFromUniform([]float64{0.25, 0.25, 0.25, 0.25}); tv != 0 {
		t.Fatalf("uniform TV = %v, want 0", tv)
	}
}

func TestRelaxationTime(t *testing.T) {
	if RelaxationTime(0.5) != 2 {
		t.Error("relaxation wrong")
	}
	if !math.IsInf(RelaxationTime(0), 1) {
		t.Error("zero gap should give +Inf")
	}
}

func BenchmarkSpectralGapRandomRegular(b *testing.B) {
	src := rng.New(1)
	g, err := graph.NewRandomRegular(512, 4, src, 2000)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := SpectralGap(g, 500, src); err != nil {
			b.Fatal(err)
		}
	}
}
