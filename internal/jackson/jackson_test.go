package jackson

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/config"
	"repro/internal/rng"
)

func TestNewValidation(t *testing.T) {
	r := rng.New(1)
	if _, err := New(nil, r); err == nil {
		t.Error("no stations accepted")
	}
	if _, err := New([]int32{1}, nil); err == nil {
		t.Error("nil source accepted")
	}
	if _, err := New([]int32{-1}, r); err == nil {
		t.Error("negative load accepted")
	}
}

func TestEventConservesJobs(t *testing.T) {
	if err := quick.Check(func(seed uint32) bool {
		r := rng.New(uint64(seed))
		net, err := New(config.UniformRandom(30, 30, r), r)
		if err != nil {
			return false
		}
		for i := 0; i < 1000; i++ {
			net.Event()
			if net.CheckInvariants() != nil {
				return false
			}
		}
		return net.Jobs() == 30 && net.Events() == 1000
	}, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyNetworkNoop(t *testing.T) {
	net, err := New([]int32{0, 0, 0}, rng.New(2))
	if err != nil {
		t.Fatal(err)
	}
	net.Round()
	if net.MaxLoad() != 0 || net.Jobs() != 0 {
		t.Fatal("empty network changed state")
	}
	if net.Events() != 3 {
		t.Fatalf("events = %d, want 3", net.Events())
	}
}

func TestSingleStation(t *testing.T) {
	net, err := New([]int32{4}, rng.New(3))
	if err != nil {
		t.Fatal(err)
	}
	net.RunRounds(10)
	if net.Load(0) != 4 {
		t.Fatal("single station should self-loop")
	}
	if err := net.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundIsNEvents(t *testing.T) {
	net, err := New(config.OnePerBin(17), rng.New(4))
	if err != nil {
		t.Fatal(err)
	}
	net.Round()
	if net.Events() != 17 {
		t.Fatalf("events = %d, want 17", net.Events())
	}
}

func TestWindowMaxMonotone(t *testing.T) {
	net, err := New(config.OnePerBin(64), rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	prev := net.WindowMaxLoad()
	for i := 0; i < 200; i++ {
		net.Round()
		if net.WindowMaxLoad() < prev {
			t.Fatal("window max decreased")
		}
		if net.MaxLoad() > net.WindowMaxLoad() {
			t.Fatal("current max exceeds window max")
		}
		prev = net.WindowMaxLoad()
	}
}

func TestStationaryMaxCDFSmallExact(t *testing.T) {
	// n=2, m=2: compositions (0,2),(1,1),(2,0); P(max<=1) = 1/3.
	cdf, err := StationaryMaxCDF(2, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf-1.0/3) > 1e-12 {
		t.Fatalf("CDF(2,2,1) = %v, want 1/3", cdf)
	}
	// n=3, m=2: 6 compositions, 3 with max<=1.
	cdf, err = StationaryMaxCDF(3, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(cdf-0.5) > 1e-12 {
		t.Fatalf("CDF(3,2,1) = %v, want 1/2", cdf)
	}
	// k >= m is certain.
	cdf, err = StationaryMaxCDF(5, 3, 3)
	if err != nil || cdf != 1 {
		t.Fatalf("CDF at k=m should be 1, got %v (%v)", cdf, err)
	}
}

func TestStationaryMaxCDFMonotone(t *testing.T) {
	prev := 0.0
	for k := 0; k <= 40; k++ {
		cdf, err := StationaryMaxCDF(64, 64, k)
		if err != nil {
			t.Fatal(err)
		}
		if cdf < prev-1e-9 {
			t.Fatalf("CDF not monotone at k=%d: %v < %v", k, cdf, prev)
		}
		prev = cdf
	}
	if prev < 1-1e-9 {
		t.Fatalf("CDF did not reach 1: %v", prev)
	}
}

func TestStationaryMaxCDFValidation(t *testing.T) {
	if _, err := StationaryMaxCDF(0, 1, 1); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := StationaryMaxCDF(1, -1, 1); err == nil {
		t.Error("m<0 accepted")
	}
	if _, err := StationaryMaxCDF(1, 1, -1); err == nil {
		t.Error("k<0 accepted")
	}
}

func TestStationaryMaxQuantile(t *testing.T) {
	q, err := StationaryMaxQuantile(2, 2, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	if q != 1 { // CDF(1) = 1/3 >= 0.3
		t.Fatalf("quantile = %d, want 1", q)
	}
	q, err = StationaryMaxQuantile(2, 2, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if q != 2 { // CDF(1)=1/3 < 0.5, CDF(2)=1
		t.Fatalf("quantile = %d, want 2", q)
	}
	if _, err := StationaryMaxQuantile(2, 2, 1.5); err == nil {
		t.Error("q>1 accepted")
	}
}

// TestEmpiricalMatchesProductForm validates simulator and formula against
// each other: re-weighting each event sample by 1/|W| converts the
// embedded jump chain's time-average into the CTMC's product-form
// stationary law, whose station-0 marginal is
// P(q0 = j) = C(m−j+n−2, n−2)/C(m+n−1, n−1).
func TestEmpiricalMatchesProductForm(t *testing.T) {
	const n, m = 6, 6
	r := rng.New(9)
	net, err := New(config.UniformRandom(n, m, r), r)
	if err != nil {
		t.Fatal(err)
	}
	net.RunRounds(2000) // warm up
	var wZero, wTotal float64
	const events = 2000000
	for i := 0; i < events; i++ {
		net.Event()
		w := 1.0 / float64(net.NonEmpty())
		wTotal += w
		if net.Load(0) == 0 {
			wZero += w
		}
	}
	got := wZero / wTotal
	want := math.Exp(logChoose(m+n-2, n-2) - logChoose(m+n-1, n-1)) // j=0 marginal
	if math.Abs(got-want) > 0.02 {
		t.Fatalf("P(q0=0): weighted empirical %v vs product form %v", got, want)
	}
}

// TestSequentialMaxLogarithmic verifies the classical shape: the
// stationary max of the closed Jackson network is Θ(log n), like the
// parallel process.
func TestSequentialMaxLogarithmic(t *testing.T) {
	const n = 1024
	p50, err := StationaryMaxQuantile(n, n, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ln := math.Log(n)
	if float64(p50) < ln/math.Log(math.Log(n)) || float64(p50) > 4*ln {
		t.Fatalf("stationary median max %d outside the Θ(log n) band (ln n = %.1f)", p50, ln)
	}
	// Simulated window max should land in the same band.
	r := rng.New(11)
	net, err := New(config.OnePerBin(n), r)
	if err != nil {
		t.Fatal(err)
	}
	net.RunRounds(8 * 8) // short warm window
	net.RunRounds(8 * int64(8))
	wm := float64(net.WindowMaxLoad())
	if wm < 2 || wm > 6*ln {
		t.Fatalf("simulated window max %v outside band", wm)
	}
}

func BenchmarkEvent(b *testing.B) {
	r := rng.New(1)
	net, err := New(config.OnePerBin(1024), r)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		net.Event()
	}
}
