// Package jackson implements the closed Jackson network the paper singles
// out (§1.3) as the closest classical queueing model: n stations with unit
// exponential service, uniform routing, and m circulating jobs — the
// *sequential* counterpart of the repeated balls-into-bins process.
//
// Because service times are exponential and routing uniform, the embedded
// jump chain is simple: at every event one uniformly chosen non-empty
// station completes a job, which joins a uniformly chosen station. Unlike
// the paper's synchronous process, this chain is reversible with a
// product-form stationary distribution; with equal rates it is the uniform
// distribution over all C(m+n−1, n−1) compositions of m jobs into n queues.
// That classical fact gives an *exact* stationary max-load law
// (StationaryMaxCDF, via inclusion–exclusion over compositions), which
// experiment E19 compares against the parallel process: the paper's point
// is that its process is *not* amenable to this product-form machinery,
// yet achieves the same Θ(log n) congestion.
package jackson

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/rng"
)

// Network is a closed Jackson network on the complete graph (uniform
// routing, self-loops included), simulated through its embedded jump
// chain. One "round" is defined as n consecutive events, matching the
// parallel process's n potential moves per round. Not safe for concurrent
// use.
type Network struct {
	n     int
	m     int64
	loads []int32
	src   *rng.Source

	// nonEmpty holds the indices of non-empty stations; position[u] is u's
	// index in nonEmpty (or -1). This makes uniform sampling of a
	// non-empty station O(1).
	nonEmpty []int32
	position []int32

	events    int64
	windowMax int32
}

// New builds a network over a copy of the initial configuration.
func New(loads []int32, src *rng.Source) (*Network, error) {
	n := len(loads)
	if n < 1 {
		return nil, errors.New("jackson: New with no stations")
	}
	if src == nil {
		return nil, errors.New("jackson: New with nil rng source")
	}
	net := &Network{
		n:        n,
		loads:    make([]int32, n),
		src:      src,
		position: make([]int32, n),
	}
	for i := range net.position {
		net.position[i] = -1
	}
	for i, l := range loads {
		if l < 0 {
			return nil, fmt.Errorf("jackson: station %d has negative load %d", i, l)
		}
		net.loads[i] = l
		net.m += int64(l)
		if l > 0 {
			net.position[i] = int32(len(net.nonEmpty))
			net.nonEmpty = append(net.nonEmpty, int32(i))
		}
		if l > net.windowMax {
			net.windowMax = l
		}
	}
	return net, nil
}

// removeNonEmpty drops station u from the non-empty set (its load hit 0).
func (net *Network) removeNonEmpty(u int32) {
	pos := net.position[u]
	last := net.nonEmpty[len(net.nonEmpty)-1]
	net.nonEmpty[pos] = last
	net.position[last] = pos
	net.nonEmpty = net.nonEmpty[:len(net.nonEmpty)-1]
	net.position[u] = -1
}

// addNonEmpty inserts station u into the non-empty set.
func (net *Network) addNonEmpty(u int32) {
	net.position[u] = int32(len(net.nonEmpty))
	net.nonEmpty = append(net.nonEmpty, u)
}

// Event executes one jump of the embedded chain: a uniformly random
// non-empty station completes one job, which moves to a uniformly random
// station. No-op if the network is empty.
func (net *Network) Event() {
	if len(net.nonEmpty) == 0 {
		net.events++
		return
	}
	u := net.nonEmpty[net.src.Intn(len(net.nonEmpty))]
	net.loads[u]--
	if net.loads[u] == 0 {
		net.removeNonEmpty(u)
	}
	v := int32(net.src.Intn(net.n))
	if net.loads[v] == 0 {
		net.addNonEmpty(v)
	}
	net.loads[v]++
	if net.loads[v] > net.windowMax {
		net.windowMax = net.loads[v]
	}
	net.events++
}

// Round executes n events — the sequential analogue of one synchronous
// round of the parallel process.
func (net *Network) Round() {
	for i := 0; i < net.n; i++ {
		net.Event()
	}
}

// RunRounds executes k rounds.
func (net *Network) RunRounds(k int64) {
	for i := int64(0); i < k; i++ {
		net.Round()
	}
}

// N returns the number of stations.
func (net *Network) N() int { return net.n }

// Jobs returns the number of circulating jobs m.
func (net *Network) Jobs() int64 { return net.m }

// Events returns the number of executed jump events.
func (net *Network) Events() int64 { return net.events }

// MaxLoad returns the current maximum queue length (O(n) scan).
func (net *Network) MaxLoad() int32 {
	var max int32
	for _, l := range net.loads {
		if l > max {
			max = l
		}
	}
	return max
}

// WindowMaxLoad returns the running maximum queue length observed since
// construction.
func (net *Network) WindowMaxLoad() int32 { return net.windowMax }

// Load returns the queue length at station u.
func (net *Network) Load(u int) int32 { return net.loads[u] }

// NonEmpty returns the current number of busy stations.
func (net *Network) NonEmpty() int { return len(net.nonEmpty) }

// LoadsCopy returns a copy of the queue-length vector.
func (net *Network) LoadsCopy() []int32 {
	out := make([]int32, net.n)
	copy(out, net.loads)
	return out
}

// CheckInvariants verifies job conservation and non-empty-set consistency.
func (net *Network) CheckInvariants() error {
	var s int64
	busy := 0
	for u, l := range net.loads {
		if l < 0 {
			return fmt.Errorf("jackson: station %d negative load %d", u, l)
		}
		s += int64(l)
		if l > 0 {
			busy++
			pos := net.position[u]
			if pos < 0 || int(pos) >= len(net.nonEmpty) || net.nonEmpty[pos] != int32(u) {
				return fmt.Errorf("jackson: station %d missing from non-empty set", u)
			}
		} else if net.position[u] != -1 {
			return fmt.Errorf("jackson: empty station %d still indexed", u)
		}
	}
	if s != net.m {
		return fmt.Errorf("jackson: jobs not conserved: %d != %d", s, net.m)
	}
	if busy != len(net.nonEmpty) {
		return fmt.Errorf("jackson: non-empty set size %d != %d busy stations", len(net.nonEmpty), busy)
	}
	return nil
}

// StationaryMaxCDF returns P(max queue ≤ k) under the exact product-form
// stationary distribution — the uniform distribution over compositions of
// m jobs into n queues: N_k(n, m) / C(m+n−1, n−1), where N_k counts
// compositions with every part ≤ k.
//
// Numerics: neither the textbook inclusion–exclusion (catastrophic
// cancellation beyond n ≈ 100) nor a raw count DP (the target sum m lies
// astronomically deep in the tail of the count distribution, underflowing
// any single scaling) survives large n. Instead we use the exponential
// tilt: uniform-over-compositions is the law of n i.i.d. Geometric(θ)
// parts conditioned on their sum being m, for any θ ∈ (0,1), so
//
//	CDF = P(all parts ≤ k, Σ = m) / P(Σ = m)
//
// with the numerator computed by a sub-probability DP over truncated
// geometric parts and the denominator in closed form,
// C(m+n−1, n−1)(1−θ)ⁿθᵐ. Choosing θ = m/(m+n) centers the sum's mode at
// exactly m, so all DP mass stays within float range (a per-stage
// max-rescale guards the extremes). Cost O(n·m·min(k, m)).
func StationaryMaxCDF(n, m, k int) (float64, error) {
	if n < 1 || m < 0 || k < 0 {
		return 0, fmt.Errorf("jackson: StationaryMaxCDF(%d, %d, %d) invalid", n, m, k)
	}
	if m == 0 || k >= m {
		return 1, nil
	}
	if k == 0 {
		// Only the all-zero composition; impossible for m > 0.
		return 0, nil
	}
	if int64(k)*int64(n) < int64(m) {
		// Even k in every queue cannot hold m jobs.
		return 0, nil
	}
	theta := float64(m) / float64(m+n)
	logTheta := math.Log(theta)
	log1mTheta := math.Log1p(-theta)
	// Truncated geometric weights w[a] = (1−θ)θ^a, a = 0..k.
	if k > m {
		k = m
	}
	w := make([]float64, k+1)
	for a := 0; a <= k; a++ {
		w[a] = math.Exp(log1mTheta + float64(a)*logTheta)
	}
	f := make([]float64, m+1)
	g := make([]float64, m+1)
	f[0] = 1
	logScale := 0.0
	for j := 0; j < n; j++ {
		for s := range g {
			g[s] = 0
		}
		var max float64
		for s := 0; s <= m; s++ {
			fs := f[s]
			if fs == 0 {
				continue
			}
			hi := k
			if s+hi > m {
				hi = m - s
			}
			for a := 0; a <= hi; a++ {
				g[s+a] += fs * w[a]
			}
		}
		for _, v := range g {
			if v > max {
				max = v
			}
		}
		if max == 0 {
			return 0, nil
		}
		inv := 1 / max
		for s := range g {
			g[s] *= inv
		}
		logScale += math.Log(max)
		f, g = g, f
	}
	if f[m] <= 0 {
		return 0, nil
	}
	logNum := logScale + math.Log(f[m])
	logDen := logChoose(m+n-1, n-1) + float64(n)*log1mTheta + float64(m)*logTheta
	cdf := math.Exp(logNum - logDen)
	if cdf > 1 {
		cdf = 1
	}
	return cdf, nil
}

// StationaryMaxQuantile returns the smallest k with
// StationaryMaxCDF(n, m, k) ≥ q, by doubling then binary search on the
// monotone CDF (O(log m) CDF evaluations).
func StationaryMaxQuantile(n, m int, q float64) (int, error) {
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("jackson: quantile %v outside [0,1]", q)
	}
	if m == 0 {
		return 0, nil
	}
	at := func(k int) (float64, error) { return StationaryMaxCDF(n, m, k) }
	// Find an upper bracket by doubling.
	hi := 1
	for {
		cdf, err := at(hi)
		if err != nil {
			return 0, err
		}
		if cdf >= q || hi >= m {
			break
		}
		hi *= 2
		if hi > m {
			hi = m
		}
	}
	lo := 0
	for lo < hi {
		mid := (lo + hi) / 2
		cdf, err := at(mid)
		if err != nil {
			return 0, err
		}
		if cdf >= q {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo, nil
}

func logChoose(n, k int) float64 {
	if k < 0 || k > n {
		return math.Inf(-1)
	}
	if k == 0 || k == n {
		return 0
	}
	ln, _ := math.Lgamma(float64(n + 1))
	lk, _ := math.Lgamma(float64(k + 1))
	lnk, _ := math.Lgamma(float64(n - k + 1))
	return ln - lk - lnk
}
