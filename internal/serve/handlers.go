package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"net/http/pprof"
	"strings"

	"repro/internal/obs"
	sp "repro/internal/spec"
)

// maxBodyBytes bounds a submission body; a Spec is a few hundred bytes.
const maxBodyBytes = 1 << 20

// Handler returns the HTTP surface of the server.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/runs", s.handleSubmit)
	mux.HandleFunc("GET /v1/runs", s.handleList)
	mux.HandleFunc("GET /v1/runs/{id}", s.handleGet)
	mux.HandleFunc("GET /v1/runs/{id}/result", s.handleResult)
	mux.HandleFunc("GET /v1/runs/{id}/stream", s.handleStream)
	mux.HandleFunc("POST /v1/runs/{id}/cancel", s.handleCancel)
	mux.HandleFunc("DELETE /v1/runs/{id}", s.handleCancel)
	mux.HandleFunc("POST /v1/runs/{id}/checkpoint", s.handleCheckpoint)
	mux.HandleFunc("POST /v1/campaigns", s.handleCampaignSubmit)
	mux.HandleFunc("GET /v1/campaigns", s.handleCampaignList)
	mux.HandleFunc("GET /v1/campaigns/{id}", s.handleCampaignGet)
	mux.HandleFunc("GET /v1/campaigns/{id}/aggregate", s.handleCampaignAggregate)
	mux.HandleFunc("GET /v1/campaigns/{id}/stream", s.handleCampaignStream)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /version", handleVersion)
	if s.opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return s.instrument(mux)
}

// writeJSON emits v with the given status code.
func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

// writeError emits {"error": msg}.
func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func (s *Server) handleSubmit(w http.ResponseWriter, req *http.Request) {
	var spec Spec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad spec: %v", err))
		return
	}
	info, err := s.Submit(spec)
	if err != nil {
		var (
			bad         *badRequestError
			unreachable *sp.UnreachableHostsError
		)
		switch {
		case errors.As(err, &unreachable):
			// Structured body: clients retrying a placement need the bad
			// addresses, not a prose blob to parse.
			writeJSON(w, http.StatusBadRequest, map[string]any{
				"error":       err.Error(),
				"unreachable": unreachable.Hosts,
			})
		case errors.As(err, &bad):
			writeError(w, http.StatusBadRequest, err.Error())
		case errors.Is(err, errQueueFull):
			writeError(w, http.StatusServiceUnavailable, err.Error())
		default:
			writeError(w, http.StatusInternalServerError, err.Error())
		}
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Runs())
}

func (s *Server) handleGet(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownRun.Error())
		return
	}
	writeJSON(w, http.StatusOK, r.Info())
}

// handleResult serves the final Summary of a done run — encoded exactly as
// `rbb-sim -json` prints it, so the two are diffable byte for byte.
func (s *Server) handleResult(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownRun.Error())
		return
	}
	info := r.Info()
	switch info.Status {
	case StatusDone:
		writeJSON(w, http.StatusOK, info.Summary)
	case StatusFailed:
		writeError(w, http.StatusConflict, fmt.Sprintf("run failed: %s", info.Error))
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("run is %s at round %d", info.Status, info.Round))
	}
}

func (s *Server) handleCancel(w http.ResponseWriter, req *http.Request) {
	id := req.PathValue("id")
	cancelled, err := s.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if !cancelled {
		r, _ := s.lookup(id)
		writeError(w, http.StatusConflict, fmt.Sprintf("run already %s", r.Info().Status))
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "cancelling"})
}

func (s *Server) handleCheckpoint(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownRun.Error())
		return
	}
	if s.store == nil {
		writeError(w, http.StatusConflict, "server has no data directory")
		return
	}
	if !r.requestCheckpoint() {
		writeError(w, http.StatusConflict, "run is not a running rbb process")
		return
	}
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "checkpoint requested"})
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	queued, running, terminal := s.Counters()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"workers":  s.opts.Workers,
		"queued":   queued,
		"running":  running,
		"terminal": terminal,
		"revision": obs.Build().Revision,
	})
}

// handleMetrics serves the process registry in the Prometheus text format,
// refreshing the scrape-time run-state gauges first.
func (s *Server) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	queued, running, terminal := s.Counters()
	mRunsQueued.Set(int64(queued))
	mRunsRunning.Set(int64(running))
	mRunsTerminal.Set(int64(terminal))
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obs.Default.WritePrometheus(w)
}

// handleVersion serves the binary's build provenance.
func handleVersion(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, obs.Build())
}

// handleStream tails a run's observer events: one JSON object per line
// (NDJSON), or SSE `data:` frames when the client asks for
// text/event-stream. The stream ends with the run's state as of the moment
// it left the scheduler — status done/failed/cancelled, or queued again if
// the server is shutting down. Slow consumers may miss intermediate
// samples (the run never blocks on a subscriber); the terminal line is
// always delivered.
func (s *Server) handleStream(w http.ResponseWriter, req *http.Request) {
	r, ok := s.lookup(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, errUnknownRun.Error())
		return
	}
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Flush the header frame now: a subscriber must see the stream open
	// before the first event, which can be arbitrarily far away.
	if flusher != nil {
		flusher.Flush()
	}
	writeLine := func(blob []byte) {
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", blob)
		} else {
			w.Write(blob)
			w.Write([]byte("\n"))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}

	ch := r.subscribe()
	if ch != nil {
		defer r.unsubscribe(ch)
	loop:
		for {
			select {
			case blob, open := <-ch:
				if !open {
					break loop
				}
				writeLine(blob)
			case <-req.Context().Done():
				return
			}
		}
	}
	// Terminal line: the authoritative post-run state, fetched from the
	// registry rather than the hub so it cannot be dropped.
	blob, err := json.Marshal(r.Info())
	if err != nil {
		return
	}
	writeLine(blob)
}
