package serve

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// run is one tracked simulation: the public RunInfo, the cancellation
// plumbing, the on-demand checkpoint trigger, and the stream fan-out hub.
type run struct {
	mu sync.Mutex

	info      RunInfo
	cancel    context.CancelFunc // set while running
	cancelled bool               // client requested cancellation

	// started/startRound anchor the live Progress estimate: the wall-clock
	// instant and completed round at which the run last entered a worker
	// slot (zero while not running).
	started    time.Time
	startRound int64

	// trigger carries on-demand checkpoint requests into checkpoint.Run
	// (capacity 1: requests arriving while one is pending coalesce).
	trigger chan struct{}

	// subs are the live stream subscribers. Events are sent best-effort
	// (a slow subscriber drops samples, never blocks the run); every
	// channel is closed exactly once when the run leaves the worker, and
	// subscribers then read the terminal state from the registry.
	subs map[chan []byte]struct{}
}

func newRun(id string, spec Spec) *run {
	return &run{
		info:    RunInfo{ID: id, Spec: spec, Status: StatusQueued},
		trigger: make(chan struct{}, 1),
		subs:    make(map[chan []byte]struct{}),
	}
}

// Info returns a copy of the public state.
func (r *run) Info() RunInfo {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.info
}

// setRunning transitions to running and installs the cancel hook. It
// reports false when the run was cancelled while queued (the worker must
// skip it).
func (r *run) setRunning(cancel context.CancelFunc) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.cancelled {
		return false
	}
	r.info.Status = StatusRunning
	r.cancel = cancel
	r.started = time.Now()
	r.startRound = r.info.Round
	return true
}

// requestCancel marks the run cancelled and fires the in-flight context if
// any. It reports whether the run was still cancellable (not terminal).
func (r *run) requestCancel() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Status.Terminal() {
		return false
	}
	r.cancelled = true
	if r.cancel != nil {
		r.cancel()
	}
	return true
}

// wasCancelled reports whether a client cancellation is pending.
func (r *run) wasCancelled() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.cancelled
}

// finish applies the terminal (or re-queued) state and closes every
// subscriber channel so stream handlers move on to the terminal read. The
// cancel hook is dropped; a re-queued run gets a fresh one when it next
// starts.
func (r *run) finish(mutate func(*RunInfo)) {
	r.mu.Lock()
	mutate(&r.info)
	r.cancel = nil
	// Progress is a running-state artifact; terminal and re-queued states
	// (and the persisted manifest) must not carry a stale estimate.
	r.info.Progress = nil
	r.started = time.Time{}
	subs := r.subs
	r.subs = make(map[chan []byte]struct{})
	r.mu.Unlock()
	for ch := range subs {
		close(ch)
	}
}

// subscribe registers a stream channel, or returns nil when the run is
// already terminal (the handler then renders the terminal state directly).
func (r *run) subscribe() chan []byte {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Status.Terminal() {
		return nil
	}
	ch := make(chan []byte, 64)
	r.subs[ch] = struct{}{}
	return ch
}

// unsubscribe removes a channel registered with subscribe. The caller must
// keep draining ch until it is closed or unsubscribe returns, whichever
// comes first (publish never blocks, so a buffered leftover is the worst
// case).
func (r *run) unsubscribe(ch chan []byte) {
	r.mu.Lock()
	if _, ok := r.subs[ch]; ok {
		delete(r.subs, ch)
		close(ch)
	}
	r.mu.Unlock()
}

// publish marshals ev once and fans it out to every subscriber,
// best-effort, and refreshes the run's last known round.
func (r *run) publish(ev Event) {
	blob, err := json.Marshal(ev)
	if err != nil {
		return // Event has no unmarshalable fields; unreachable.
	}
	r.mu.Lock()
	r.info.Round = ev.Round
	if !r.started.IsZero() {
		p := &Progress{
			Round:     ev.Round,
			MaxLoad:   ev.MaxLoad,
			EmptyFrac: ev.EmptyFrac,
			WindowMax: ev.WindowMax,
		}
		if done := ev.Round - r.startRound; done > 0 {
			if elapsed := time.Since(r.started).Seconds(); elapsed > 0 {
				p.RoundsPerSec = float64(done) / elapsed
				if rem := r.info.Spec.Rounds - ev.Round; rem > 0 {
					p.ETASeconds = float64(rem) / p.RoundsPerSec
				}
			}
		}
		r.info.Progress = p
	}
	for ch := range r.subs {
		select {
		case ch <- blob:
		default: // slow subscriber: drop the sample, never the run
		}
	}
	r.mu.Unlock()
}

// requestCheckpoint forwards an on-demand snapshot request to the run loop
// if the run is currently running an rbb process. It reports whether the
// request was accepted (false: not running, or not checkpointable).
func (r *run) requestCheckpoint() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.info.Status != StatusRunning || r.info.Spec.Process != ProcessRBB {
		return false
	}
	select {
	case r.trigger <- struct{}{}:
	default: // one already pending; coalesce
	}
	return true
}
