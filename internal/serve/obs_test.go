package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strings"
	"testing"
	"time"
)

// waitDone polls until the run with the given id is terminal.
func waitDone(t *testing.T, s *Server, id string) RunInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := s.Info(id)
		if !ok {
			t.Fatalf("run %s vanished", id)
		}
		if info.Status.Terminal() {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("run %s did not finish", id)
	return RunInfo{}
}

// TestMetricsEndpoint: after a run completes, /metrics serves Prometheus
// text covering the phase, round, serve-state and HTTP families.
func TestMetricsEndpoint(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	info, err := s.Submit(Spec{Seed: 7, N: 64, Rounds: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)
	// The request counter registers per (method, pattern, code) series as
	// requests complete; make one before scraping.
	if _, err := http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	text := string(body)
	for _, family := range []string{
		"rbb_phase_seconds",
		"rbb_rounds_total",
		"rbb_serve_runs",
		"rbb_http_requests_total",
		"rbb_http_request_seconds",
		"rbb_serve_cache_hits_total",
		"rbb_serve_cache_misses_total",
	} {
		if !strings.Contains(text, family) {
			t.Errorf("metrics exposition missing family %s", family)
		}
	}
	if !strings.Contains(text, `rbb_serve_runs{state="terminal"} 1`) {
		t.Errorf("terminal gauge not refreshed at scrape:\n%s", text)
	}

	// Cache effectiveness counters: the run above was a miss; an identical
	// resubmission is a hit. The registry is process-global, so pin the
	// deltas rather than absolute values.
	hits0, misses0 := metricValue(t, text, "rbb_serve_cache_hits_total"), metricValue(t, text, "rbb_serve_cache_misses_total")
	if misses0 < 1 {
		t.Errorf("cache miss counter = %v after a fresh submission", misses0)
	}
	info2, err := s.Submit(Spec{Seed: 7, N: 64, Rounds: 32, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if done := waitDone(t, s, info2.ID); !done.Cached {
		t.Errorf("identical resubmission was not served from cache")
	}
	resp2, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	body2, err := io.ReadAll(resp2.Body)
	if err != nil {
		t.Fatal(err)
	}
	text2 := string(body2)
	if hits := metricValue(t, text2, "rbb_serve_cache_hits_total"); hits != hits0+1 {
		t.Errorf("cache hits = %v after a cached resubmission, want %v", hits, hits0+1)
	}
	if misses := metricValue(t, text2, "rbb_serve_cache_misses_total"); misses != misses0 {
		t.Errorf("cache misses = %v after a cached resubmission, want %v", misses, misses0)
	}
}

// metricValue extracts an unlabeled counter's value from a Prometheus
// text exposition.
func metricValue(t *testing.T, text, name string) float64 {
	t.Helper()
	for _, line := range strings.Split(text, "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line, name+" %g", &v); err != nil {
				t.Fatalf("parse %q: %v", line, err)
			}
			return v
		}
	}
	t.Fatalf("metric %s not found in exposition", name)
	return 0
}

// TestVersionEndpoint: /version serves the build info JSON and healthz
// carries the revision.
func TestVersionEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Options{})
	resp, err := http.Get(hs.URL + "/version")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var v struct {
		GoVersion string `json:"go_version"`
		Revision  string `json:"revision"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		t.Fatal(err)
	}
	if v.GoVersion == "" || v.Revision == "" {
		t.Errorf("incomplete build info: %+v", v)
	}
	hr, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(hr.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["revision"] != v.Revision {
		t.Errorf("healthz revision %v, /version revision %v", h["revision"], v.Revision)
	}
}

// TestAccessLog: requests land in the structured log with method, pattern
// and status, and run lifecycle transitions are logged too.
func TestAccessLog(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	s, hs := newTestServer(t, Options{Workers: 1, Logger: logger})
	info, err := s.Submit(Spec{Seed: 1, N: 32, Rounds: 8})
	if err != nil {
		t.Fatal(err)
	}
	waitDone(t, s, info.ID)
	if _, err := http.Get(hs.URL + "/healthz"); err != nil {
		t.Fatal(err)
	}
	log := buf.String()
	for _, want := range []string{
		`"msg":"http request"`,
		`"pattern":"GET /healthz"`,
		`"status":200`,
		`"msg":"run queued"`,
		`"msg":"run started"`,
		`"msg":"run left worker"`,
	} {
		if !strings.Contains(log, want) {
			t.Errorf("log missing %s:\n%s", want, log)
		}
	}
}

// TestProgress: a running run's info carries a Progress estimate and the
// terminal info does not.
func TestProgress(t *testing.T) {
	r := newRun("r1", Spec{Seed: 1, N: 8, Rounds: 100})
	if !r.setRunning(func() {}) {
		t.Fatal("setRunning refused")
	}
	time.Sleep(2 * time.Millisecond)
	r.publish(Event{Round: 50, MaxLoad: 3, EmptyFrac: 0.25, WindowMax: 4})
	info := r.Info()
	p := info.Progress
	if p == nil {
		t.Fatal("no progress on running run")
	}
	if p.Round != 50 || p.MaxLoad != 3 || p.EmptyFrac != 0.25 || p.WindowMax != 4 {
		t.Errorf("progress = %+v", p)
	}
	if p.RoundsPerSec <= 0 {
		t.Errorf("rounds/sec = %v, want > 0", p.RoundsPerSec)
	}
	if p.ETASeconds <= 0 {
		t.Errorf("eta = %v, want > 0 at round 50 of 100", p.ETASeconds)
	}
	// The estimate must be consistent: eta ≈ remaining / rate.
	if got, want := p.ETASeconds, 50/p.RoundsPerSec; got < want*0.99 || got > want*1.01 {
		t.Errorf("eta %v inconsistent with rate (want ~%v)", got, want)
	}
	r.finish(func(info *RunInfo) { info.Status = StatusDone })
	if r.Info().Progress != nil {
		t.Error("terminal run still carries progress")
	}
	// The terminal JSON must not contain the field at all (stream terminal
	// lines and manifests stay stable).
	blob, err := json.Marshal(r.Info())
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "progress") {
		t.Errorf("terminal run info encodes progress: %s", blob)
	}
}
