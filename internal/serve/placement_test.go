package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"net"
	"net/http"
	"os"
	"reflect"
	"strings"
	"testing"

	"repro/internal/shard/transport/proc"
	"repro/internal/shard/transport/tcp"
	"repro/internal/spec"
)

// startWorkerDaemon runs an in-test `rbb-sim -worker -listen` equivalent
// and returns its address.
func startWorkerDaemon(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go tcp.Serve(ln, io.Discard)
	return ln.Addr().String()
}

// TestMain doubles as the transport worker entry point: runs placed on a
// multi-process transport re-execute the test binary as their workers, and
// MaybeWorker diverts those children into the worker protocol.
func TestMain(m *testing.M) {
	proc.MaybeWorker()
	tcp.MaybeWorker()
	os.Exit(m.Run())
}

// TestSubmitPlacement: runs placed on the multi-process transports
// complete with the byte-identical summary of the in-process oracle —
// placement crosses the HTTP boundary without perturbing results.
func TestSubmitPlacement(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1, RunWorkers: 1})
	for i, pl := range []spec.Placement{
		{Transport: spec.TransportProc, Procs: 2},
		{Transport: spec.TransportTCPMesh, Procs: 2},
	} {
		sp := Spec{Seed: uint64(100 + i), N: 512, Rounds: 150, Shards: 4, Quantiles: []float64{0.5}, Placement: pl}
		info := submit(t, hs, sp)
		done := waitStatus(t, s, info.ID, StatusDone)
		want := refSummary(t, Spec{Seed: sp.Seed, N: sp.N, Rounds: sp.Rounds, Shards: sp.Shards, Quantiles: sp.Quantiles})
		if done.Summary == nil || !reflect.DeepEqual(*done.Summary, want) {
			t.Errorf("placement %+v diverged from the in-process oracle:\n got %+v\nwant %+v", pl, done.Summary, want)
		}
	}
}

// TestSubmitPlacementCacheShared: two submissions differing only in
// placement share one result-cache entry — the key covers the law, not
// where it ran.
func TestSubmitPlacementCacheShared(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1, RunWorkers: 1})
	base := Spec{Seed: 77, N: 256, Rounds: 80, Shards: 2, Quantiles: []float64{0.9}}
	first := submit(t, hs, base)
	ref := waitStatus(t, s, first.ID, StatusDone)

	placed := base
	placed.Placement = spec.Placement{Transport: spec.TransportProc, Procs: 2}
	second := submit(t, hs, placed)
	got := waitStatus(t, s, second.ID, StatusDone)
	if got.Summary == nil || !reflect.DeepEqual(*got.Summary, *ref.Summary) {
		t.Fatalf("placement changed the cached result:\n got %+v\nwant %+v", got.Summary, ref.Summary)
	}
}

// TestSubmitKernelPlacement: the dense-kernel knob rides the placement
// plane end to end — a scalar-kernel submission runs to the byte-identical
// summary of the in-process oracle, and a second submission differing only
// in kernel shares the first's result-cache entry (the key covers the law,
// not how the dense loop was executed).
func TestSubmitKernelPlacement(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1, RunWorkers: 1})
	base := Spec{Seed: 91, N: 256, Rounds: 80, Shards: 2, Quantiles: []float64{0.9}}
	first := submit(t, hs, base)
	ref := waitStatus(t, s, first.ID, StatusDone)
	want := refSummary(t, base)
	if ref.Summary == nil || !reflect.DeepEqual(*ref.Summary, want) {
		t.Fatalf("batched-default run diverged from the oracle:\n got %+v\nwant %+v", ref.Summary, want)
	}

	placed := base
	placed.Placement = spec.Placement{Kernel: "scalar"}
	second := submit(t, hs, placed)
	got := waitStatus(t, s, second.ID, StatusDone)
	if got.Summary == nil || !reflect.DeepEqual(*got.Summary, *ref.Summary) {
		t.Fatalf("placement.kernel changed the cached result:\n got %+v\nwant %+v", got.Summary, ref.Summary)
	}
	if got.Spec.Placement.Kernel != "scalar" {
		t.Fatalf("kernel did not normalize into the stored spec: %+v", got.Spec.Placement)
	}
}

// TestSubmitLegacyFlatTransport pins the compat shim: the exact flat JSON
// body every pre-placement client sent (PR 4–7 era, with the top-level
// "transport" field) is still accepted and still runs.
func TestSubmitLegacyFlatTransport(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	body := `{"seed":5,"n":256,"rounds":60,"shards":2,"quantiles":[0.5],"transport":"spawn"}`
	resp, err := http.Post(hs.URL+"/v1/runs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("legacy flat body rejected: status %d", resp.StatusCode)
	}
	var info RunInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	if info.Spec.Placement.Transport != spec.TransportSpawn || info.Spec.Transport != "" {
		t.Fatalf("flat transport did not normalize into the placement: %+v", info.Spec)
	}
	done := waitStatus(t, s, info.ID, StatusDone)
	want := refSummary(t, Spec{Seed: 5, N: 256, Rounds: 60, Shards: 2, Quantiles: []float64{0.5}})
	if done.Summary == nil || !reflect.DeepEqual(*done.Summary, want) {
		t.Fatalf("legacy run diverged: %+v", done.Summary)
	}
}

// TestSubmitUnreachableHosts: a placement naming hosts nobody listens on
// is rejected up front with a structured 400 listing every bad address.
func TestSubmitUnreachableHosts(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	sp := Spec{Seed: 1, N: 64, Rounds: 10, Shards: 4,
		Placement: spec.Placement{Transport: spec.TransportTCP, Hosts: []string{"127.0.0.1:1", "127.0.0.1:2"}}}
	blob, _ := json.Marshal(sp)
	resp, err := http.Post(hs.URL+"/v1/runs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("unreachable hosts: status %d, want 400", resp.StatusCode)
	}
	var body struct {
		Error       string   `json:"error"`
		Unreachable []string `json:"unreachable"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(body.Unreachable, sp.Placement.Hosts) {
		t.Fatalf("unreachable = %v, want %v", body.Unreachable, sp.Placement.Hosts)
	}
	if !strings.Contains(body.Error, "unreachable placement hosts") {
		t.Fatalf("error = %q", body.Error)
	}
}

// TestSubmitReachableHosts: a placement whose hosts answer the probe is
// accepted and the run completes on the named daemons, matching the
// in-process oracle.
func TestSubmitReachableHosts(t *testing.T) {
	addrs := make([]string, 2)
	for i := range addrs {
		addrs[i] = startWorkerDaemon(t)
	}
	s, hs := newTestServer(t, Options{Workers: 1, RunWorkers: 1})
	sp := Spec{Seed: 31, N: 512, Rounds: 120, Shards: 4, Quantiles: []float64{0.5},
		Placement: spec.Placement{Transport: spec.TransportTCPMesh, Hosts: addrs}}
	info := submit(t, hs, sp)
	done := waitStatus(t, s, info.ID, StatusDone)
	want := refSummary(t, Spec{Seed: sp.Seed, N: sp.N, Rounds: sp.Rounds, Shards: sp.Shards, Quantiles: sp.Quantiles})
	if done.Summary == nil || !reflect.DeepEqual(*done.Summary, want) {
		t.Fatalf("hosted run diverged:\n got %+v\nwant %+v", done.Summary, want)
	}
}
