// Package serve is the long-running service frontend: an HTTP/JSON layer
// that multiplexes many concurrent sharded simulations over a bounded
// worker budget — the heavy-traffic path of the ROADMAP's north star.
//
// # API
//
//	POST   /v1/runs                 submit a run (Spec); 202 + RunInfo
//	GET    /v1/runs                 list all runs (newest last)
//	GET    /v1/runs/{id}            one run's RunInfo
//	GET    /v1/runs/{id}/result     final Summary; 409 until the run is done
//	GET    /v1/runs/{id}/stream     live observer events, NDJSON (or SSE
//	                                with Accept: text/event-stream)
//	POST   /v1/runs/{id}/cancel     cancel (DELETE /v1/runs/{id} is an alias)
//	POST   /v1/runs/{id}/checkpoint snapshot a running rbb run on demand
//	GET    /healthz                 liveness + scheduler counters
//
// # Determinism
//
// A run is the same pure function of (seed, n, shards) the CLI computes:
// the server builds the initial configuration and the sharded process
// exactly as cmd/rbb-sim does, so a run's result — and its byte-exact
// Summary encoding — matches `rbb-sim -json` for the same spec, no matter
// how many other runs share the scheduler. The worker budget, the per-run
// phase workers and the requested phase transport (Spec.Transport: the
// persistent affinity pool or per-phase goroutine spawning) change
// wall-clock only.
//
// # Result cache
//
// Because results are bit-identical by construction, a submission whose
// result-determining fields (process, seed, n, m, rounds, shards, init,
// lambda, quantile set — NOT the placement and snapshot knobs) match an
// already-completed run returns a new run that is immediately done,
// carrying the stored Summary and Cached: true, without recomputing.
//
// # Retention
//
// Options.MaxHistory and Options.TTL bound the terminal-run history:
// beyond MaxHistory terminal runs (oldest first) or past TTL since
// finishing, terminal runs — and their checkpoints and cache entries — are
// garbage-collected. Queued and running runs are never collected.
//
// # Crash and restart story
//
// With a data directory configured, every state transition persists to a
// JSON manifest and rbb runs write periodic binary checkpoints
// (internal/checkpoint). On shutdown the scheduler cancels the run
// contexts; checkpoint.Run snapshots each in-flight rbb run at its next
// round boundary and the run returns to the queue. A restarted server
// re-enqueues queued and interrupted runs, resuming rbb runs from their
// checkpoints — the continued trajectory is byte-identical to an
// uninterrupted one. Processes without snapshot support (tetris, batches)
// restart from round zero, which reproduces the same trajectory anyway.
package serve

import (
	"fmt"
	"math"
	"slices"

	"repro/internal/config"
	"repro/internal/shard"
)

// Process kinds accepted by Spec.Process.
const (
	// ProcessRBB is the paper's repeated balls-into-bins process
	// (checkpointable: periodic snapshots, snapshot-and-stop, resume).
	ProcessRBB = "rbb"
	// ProcessTetris is the leaky-bins process with a deterministic ⌈λn⌉
	// batch per round.
	ProcessTetris = "tetris"
	// ProcessBatches is the leaky-bins process with Binomial(n, λ) batches
	// — the Berenbrink et al. (2016) batched-arrival model.
	ProcessBatches = "batches"
)

// Spec is a run submission. The zero value of every optional field selects
// the documented default; Normalize makes the defaults explicit so the
// stored spec is self-describing.
type Spec struct {
	// Process is the process kind: rbb (default), tetris, or batches.
	Process string `json:"process,omitempty"`
	// Seed is the master seed; shard s draws from rng.NewStream(Seed, s).
	Seed uint64 `json:"seed"`
	// N is the number of bins (required, ≥ 1).
	N int `json:"n"`
	// M is the number of balls for rbb (default N; ignored by tetris and
	// batches, whose ball count is dynamic).
	M int `json:"m,omitempty"`
	// Rounds is the target round count (required, ≥ 1).
	Rounds int64 `json:"rounds"`
	// Shards is the shard count S, part of the random law's key (default
	// 1, so results reproduce across machines unless the client opts into
	// a wider decomposition).
	Shards int `json:"shards,omitempty"`
	// Init names the initial configuration family (default one-per-bin).
	Init string `json:"init,omitempty"`
	// Lambda is the per-bin arrival rate for tetris and batches (default
	// 0.75, the paper's stable regime).
	Lambda float64 `json:"lambda,omitempty"`
	// Quantiles are the max-load quantile probabilities tracked by the
	// run's P² sketches, each in (0, 1).
	Quantiles []float64 `json:"quantiles,omitempty"`
	// CheckpointEvery is the periodic snapshot period in rounds for rbb
	// runs (0 = the server's default; snapshots are also written on
	// shutdown and at completion). Ignored without a data directory.
	CheckpointEvery int64 `json:"checkpoint_every,omitempty"`
	// StreamEvery is the round period of stream events (0 = auto,
	// ~256 events per run).
	StreamEvery int64 `json:"stream_every,omitempty"`
	// Transport selects the in-process phase transport stepping the run:
	// "pool" (persistent workers with shard→worker affinity, the default)
	// or "spawn" (per-phase goroutines). It never affects the result —
	// only wall-clock — and is therefore excluded from the result-cache
	// key.
	Transport string `json:"transport,omitempty"`
}

// Normalize fills defaults in place and validates the spec.
func (sp *Spec) Normalize(defaultCheckpointEvery int64) error {
	if sp.Process == "" {
		sp.Process = ProcessRBB
	}
	switch sp.Process {
	case ProcessRBB, ProcessTetris, ProcessBatches:
	default:
		return fmt.Errorf("unknown process %q (want %s|%s|%s)", sp.Process, ProcessRBB, ProcessTetris, ProcessBatches)
	}
	if sp.N < 1 {
		return fmt.Errorf("need n >= 1, got %d", sp.N)
	}
	if sp.Rounds < 1 {
		return fmt.Errorf("need rounds >= 1, got %d", sp.Rounds)
	}
	if sp.Process == ProcessRBB {
		if sp.M == 0 {
			sp.M = sp.N
		}
		if sp.M < 0 {
			return fmt.Errorf("need m >= 0, got %d", sp.M)
		}
		if sp.Lambda != 0 {
			return fmt.Errorf("lambda applies only to the tetris and batches processes")
		}
	} else {
		if sp.M != 0 {
			return fmt.Errorf("m applies only to the rbb process")
		}
		// A JSON 0 is indistinguishable from an absent field, so 0 means
		// "default" rather than an error, matching rbb-sim's -lambda flag.
		if sp.Lambda == 0 {
			sp.Lambda = 0.75
		}
		if sp.Lambda < 0 || sp.Lambda > 1 || math.IsNaN(sp.Lambda) {
			return fmt.Errorf("need lambda in (0, 1], got %v", sp.Lambda)
		}
	}
	if sp.Shards == 0 {
		sp.Shards = 1
	}
	if sp.Shards < 1 {
		return fmt.Errorf("need shards >= 1, got %d", sp.Shards)
	}
	if sp.Shards > sp.N {
		return fmt.Errorf("need shards <= n, got %d > %d", sp.Shards, sp.N)
	}
	if sp.Init == "" {
		sp.Init = string(config.GenOnePerBin)
	}
	if !slices.Contains(config.Generators(), config.Generator(sp.Init)) {
		return fmt.Errorf("unknown init %q", sp.Init)
	}
	for _, q := range sp.Quantiles {
		if math.IsNaN(q) || q <= 0 || q >= 1 {
			return fmt.Errorf("quantile %v outside (0, 1)", q)
		}
	}
	if sp.CheckpointEvery < 0 {
		return fmt.Errorf("need checkpoint_every >= 0, got %d", sp.CheckpointEvery)
	}
	if sp.CheckpointEvery == 0 {
		sp.CheckpointEvery = defaultCheckpointEvery
	}
	if sp.StreamEvery < 0 {
		return fmt.Errorf("need stream_every >= 0, got %d", sp.StreamEvery)
	}
	if sp.StreamEvery == 0 {
		sp.StreamEvery = sp.Rounds / 256
		if sp.StreamEvery < 1 {
			sp.StreamEvery = 1
		}
	}
	kind, err := shard.ParseTransportKind(sp.Transport)
	if err != nil {
		return fmt.Errorf("unknown transport %q (want pool|spawn)", sp.Transport)
	}
	sp.Transport = kind.String()
	return nil
}

// transportKind returns the normalized phase-transport kind of the spec
// (specs persisted before the transport field default to the pool).
func (sp Spec) transportKind() shard.TransportKind {
	kind, err := shard.ParseTransportKind(sp.Transport)
	if err != nil {
		return shard.TransportPool
	}
	return kind
}

// Status is a run's scheduler state.
type Status string

const (
	// StatusQueued: waiting for a worker slot (fresh, or interrupted by a
	// shutdown and waiting to be resumed).
	StatusQueued Status = "queued"
	// StatusRunning: a worker is stepping the process.
	StatusRunning Status = "running"
	// StatusDone: completed; Summary holds the result.
	StatusDone Status = "done"
	// StatusFailed: aborted with an error (recorded in Error).
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled by the client.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// RunInfo is the public state of one run.
type RunInfo struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status Status `json:"status"`
	// Round is the last known completed round (refreshed on every stream
	// event, at interruption, and at completion).
	Round int64 `json:"round"`
	// Error is the failure cause when Status is failed.
	Error string `json:"error,omitempty"`
	// Summary is the observer digest, set once Status is done.
	Summary *shard.Summary `json:"summary,omitempty"`
	// FinishedUnix is the Unix time the run reached a terminal status
	// (0 while queued or running). The retention TTL counts from it.
	FinishedUnix int64 `json:"finished_unix,omitempty"`
	// Cached marks a run answered from the result cache: it was born
	// done, carrying the Summary of an earlier identical submission.
	Cached bool `json:"cached,omitempty"`
	// Progress is the live stepping rate of a running run, refreshed on
	// every stream event and absent outside the running state. Wall-clock
	// derived and therefore non-deterministic — clients must treat it as
	// display-only.
	Progress *Progress `json:"progress,omitempty"`
}

// Progress is a running run's live throughput estimate.
type Progress struct {
	// Round is the completed round count as of the last stream event.
	Round int64 `json:"round"`
	// RoundsPerSec is the mean stepping rate since the run (re)entered a
	// worker slot.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// ETASeconds estimates the remaining wall-clock at the current rate
	// (0 once the target round is reached).
	ETASeconds float64 `json:"eta_seconds"`
	// MaxLoad and EmptyFrac mirror the last stream event — the
	// summary-so-far without a second subscription.
	MaxLoad   int32   `json:"max_load"`
	EmptyFrac float64 `json:"empty_frac"`
	// WindowMax is the windowed max-load statistic as of the last event.
	WindowMax int32 `json:"window_max"`
}

// Event is one streaming observer sample, emitted every StreamEvery rounds
// and at the final round.
type Event struct {
	Round     int64   `json:"round"`
	MaxLoad   int32   `json:"max_load"`
	EmptyFrac float64 `json:"empty_frac"`
	WindowMax int32   `json:"window_max"`
}
