// Package serve is the long-running service frontend: an HTTP/JSON layer
// that multiplexes many concurrent sharded simulations over a bounded
// worker budget — the heavy-traffic path of the ROADMAP's north star.
//
// # API
//
//	POST   /v1/runs                 submit a run (Spec); 202 + RunInfo
//	GET    /v1/runs                 list all runs (newest last)
//	GET    /v1/runs/{id}            one run's RunInfo
//	GET    /v1/runs/{id}/result     final Summary; 409 until the run is done
//	GET    /v1/runs/{id}/stream     live observer events, NDJSON (or SSE
//	                                with Accept: text/event-stream)
//	POST   /v1/runs/{id}/cancel     cancel (DELETE /v1/runs/{id} is an alias)
//	POST   /v1/runs/{id}/checkpoint snapshot a running rbb run on demand
//	POST   /v1/campaigns            submit a parameter sweep
//	                                (campaign.CampaignSpec); 202 + CampaignInfo
//	GET    /v1/campaigns            list all campaigns (newest last)
//	GET    /v1/campaigns/{id}       one campaign's CampaignInfo
//	GET    /v1/campaigns/{id}/aggregate
//	                                phase-diagram table (?format=json|csv|text);
//	                                409 until the campaign is done
//	GET    /v1/campaigns/{id}/stream
//	                                per-point progress events, NDJSON or SSE
//	GET    /healthz                 liveness + scheduler counters
//
// # Determinism
//
// A run is the same pure function of (seed, n, shards) the CLI computes:
// the server builds the initial configuration and the process exactly as
// cmd/rbb-sim does — both lower the same spec.RunSpec — so a run's result
// and its byte-exact Summary encoding match `rbb-sim -json` for the same
// spec, no matter how many other runs share the scheduler. The worker
// budget, the per-run phase workers and the requested placement
// (Spec.Placement: in-process pool or spawn, local worker processes over
// pipes, or TCP workers — self-spawned or daemons on other hosts) change
// wall-clock only.
//
// # Result cache
//
// Because results are bit-identical by construction, a submission whose
// result-determining fields (process, seed, n, m, rounds, shards, init,
// lambda, quantile set — NOT the placement and snapshot knobs) match an
// already-completed run returns a new run that is immediately done,
// carrying the stored Summary and Cached: true, without recomputing.
//
// # Retention
//
// Options.MaxHistory and Options.TTL bound the terminal-run history:
// beyond MaxHistory terminal runs (oldest first) or past TTL since
// finishing, terminal runs — and their checkpoints and cache entries — are
// garbage-collected. Queued and running runs are never collected.
//
// # Crash and restart story
//
// With a data directory configured, every state transition persists to a
// JSON manifest and rbb runs write periodic binary checkpoints
// (internal/checkpoint). On shutdown the scheduler cancels the run
// contexts; checkpoint.Run snapshots each in-flight rbb run at its next
// round boundary and the run returns to the queue. A restarted server
// re-enqueues queued and interrupted runs, resuming rbb runs from their
// checkpoints — the continued trajectory is byte-identical to an
// uninterrupted one. Processes without snapshot support (tetris, batches)
// restart from round zero, which reproduces the same trajectory anyway.
package serve

import (
	"repro/internal/shard"
	"repro/internal/spec"
)

// Spec is a run submission — the canonical spec.RunSpec, verbatim. The
// HTTP body is its JSON encoding; see the spec package for every field,
// the placement surface and the compatibility shim that keeps
// pre-placement bodies (flat "transport" field) decoding unchanged.
type Spec = spec.RunSpec

// Process kinds accepted by Spec.Process, re-exported for callers of the
// Go API.
const (
	ProcessRBB     = spec.ProcessRBB
	ProcessTetris  = spec.ProcessTetris
	ProcessBatches = spec.ProcessBatches
)

// Status is a run's scheduler state.
type Status string

const (
	// StatusQueued: waiting for a worker slot (fresh, or interrupted by a
	// shutdown and waiting to be resumed).
	StatusQueued Status = "queued"
	// StatusRunning: a worker is stepping the process.
	StatusRunning Status = "running"
	// StatusDone: completed; Summary holds the result.
	StatusDone Status = "done"
	// StatusFailed: aborted with an error (recorded in Error).
	StatusFailed Status = "failed"
	// StatusCancelled: cancelled by the client.
	StatusCancelled Status = "cancelled"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool {
	return s == StatusDone || s == StatusFailed || s == StatusCancelled
}

// RunInfo is the public state of one run.
type RunInfo struct {
	ID     string `json:"id"`
	Spec   Spec   `json:"spec"`
	Status Status `json:"status"`
	// Round is the last known completed round (refreshed on every stream
	// event, at interruption, and at completion).
	Round int64 `json:"round"`
	// Error is the failure cause when Status is failed.
	Error string `json:"error,omitempty"`
	// Summary is the observer digest, set once Status is done.
	Summary *shard.Summary `json:"summary,omitempty"`
	// FinishedUnix is the Unix time the run reached a terminal status
	// (0 while queued or running). The retention TTL counts from it.
	FinishedUnix int64 `json:"finished_unix,omitempty"`
	// Cached marks a run answered from the result cache: it was born
	// done, carrying the Summary of an earlier identical submission.
	Cached bool `json:"cached,omitempty"`
	// Progress is the live stepping rate of a running run, refreshed on
	// every stream event and absent outside the running state. Wall-clock
	// derived and therefore non-deterministic — clients must treat it as
	// display-only.
	Progress *Progress `json:"progress,omitempty"`
}

// Progress is a running run's live throughput estimate.
type Progress struct {
	// Round is the completed round count as of the last stream event.
	Round int64 `json:"round"`
	// RoundsPerSec is the mean stepping rate since the run (re)entered a
	// worker slot.
	RoundsPerSec float64 `json:"rounds_per_sec"`
	// ETASeconds estimates the remaining wall-clock at the current rate
	// (0 once the target round is reached).
	ETASeconds float64 `json:"eta_seconds"`
	// MaxLoad and EmptyFrac mirror the last stream event — the
	// summary-so-far without a second subscription.
	MaxLoad   int32   `json:"max_load"`
	EmptyFrac float64 `json:"empty_frac"`
	// WindowMax is the windowed max-load statistic as of the last event.
	WindowMax int32 `json:"window_max"`
}

// Event is one streaming observer sample, emitted every StreamEvery rounds
// and at the final round.
type Event struct {
	Round     int64   `json:"round"`
	MaxLoad   int32   `json:"max_load"`
	EmptyFrac float64 `json:"empty_frac"`
	WindowMax int32   `json:"window_max"`
}
