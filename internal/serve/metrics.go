package serve

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// HTTP-layer telemetry. Request counters are labeled by the matched route
// pattern — never the raw URL — so label cardinality is bounded by the mux.
var (
	mHTTPSeconds = obs.Default.Histogram("rbb_http_request_seconds",
		"Wall-clock duration of one HTTP request.", nil)
	mRunsQueued = obs.Default.Gauge("rbb_serve_runs",
		"Runs by scheduler state, refreshed at scrape time.",
		obs.Label{Key: "state", Value: "queued"})
	mRunsRunning = obs.Default.Gauge("rbb_serve_runs",
		"Runs by scheduler state, refreshed at scrape time.",
		obs.Label{Key: "state", Value: "running"})
	mRunsTerminal = obs.Default.Gauge("rbb_serve_runs",
		"Runs by scheduler state, refreshed at scrape time.",
		obs.Label{Key: "state", Value: "terminal"})
	// Result-cache effectiveness: a hit answers a submission with a stored
	// summary and no worker time; a miss queues a real run. Campaigns with
	// seed-replica axes lean on this cache, so its ratio is load-bearing.
	mCacheHits = obs.Default.Counter("rbb_serve_cache_hits_total",
		"Submissions answered from the result cache without recomputing.")
	mCacheMisses = obs.Default.Counter("rbb_serve_cache_misses_total",
		"Submissions that missed the result cache and queued a run.")
)

// countRequest bumps the per-route request counter. The get-or-create
// lookup takes the registry mutex — fine at HTTP rates, nowhere near the
// simulation hot path.
func countRequest(method, pattern string, code int) {
	obs.Default.Counter("rbb_http_requests_total",
		"HTTP requests by method, matched route pattern and status code.",
		obs.Label{Key: "method", Value: method},
		obs.Label{Key: "path", Value: pattern},
		obs.Label{Key: "code", Value: strconv.Itoa(code)},
	).Inc()
}

// statusRecorder captures the response status for the access log and the
// request counter, forwarding Flush so streaming handlers keep working
// through the wrapper.
type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (sr *statusRecorder) WriteHeader(code int) {
	sr.code = code
	sr.ResponseWriter.WriteHeader(code)
}

func (sr *statusRecorder) Flush() {
	if f, ok := sr.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// instrument wraps the mux with request metrics and the structured access
// log: method, raw path, matched pattern, status and duration per request.
func (s *Server) instrument(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		start := time.Now()
		sr := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sr, req)
		elapsed := time.Since(start)
		pattern := req.Pattern
		if pattern == "" {
			pattern = "unmatched"
		}
		if obs.Enabled() {
			countRequest(req.Method, pattern, sr.code)
			mHTTPSeconds.Observe(elapsed.Seconds())
		}
		s.logger.Info("http request",
			"method", req.Method,
			"path", req.URL.Path,
			"pattern", pattern,
			"status", sr.code,
			"duration_ms", float64(elapsed)/float64(time.Millisecond),
		)
	})
}
