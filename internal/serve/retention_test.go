package serve

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"
)

// quickSpec is a small rbb spec completing in well under a second.
func quickSpec(seed uint64) Spec {
	return Spec{Seed: seed, N: 512, Rounds: 40, Shards: 2, Quantiles: []float64{0.5}}
}

// TestResultCache pins the cache contract: an identical resubmission is
// answered instantly from the stored result (bit-identical summary,
// Cached flag, no queue slot), placement-only differences still hit, and
// any result-determining difference misses.
func TestResultCache(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	first := submit(t, hs, quickSpec(1))
	done := waitStatus(t, s, first.ID, StatusDone)
	if done.Cached {
		t.Fatal("first run marked cached")
	}
	if done.FinishedUnix == 0 {
		t.Fatal("done run has no finish time")
	}

	hit := submit(t, hs, quickSpec(1))
	if hit.Status != StatusDone || !hit.Cached {
		t.Fatalf("resubmission: status %s cached %v, want immediate cached done", hit.Status, hit.Cached)
	}
	a, _ := json.Marshal(done.Summary)
	b, _ := json.Marshal(hit.Summary)
	if string(a) != string(b) {
		t.Fatalf("cached summary differs:\n%s\n%s", a, b)
	}
	if hit.Round != done.Round {
		t.Fatalf("cached round %d, want %d", hit.Round, done.Round)
	}

	// Placement and snapshot knobs are not part of the key.
	alt := quickSpec(1)
	alt.Transport = "spawn"
	alt.StreamEvery = 7
	if got := submit(t, hs, alt); !got.Cached {
		t.Error("transport/stream-only difference missed the cache")
	}

	// A result-determining difference must recompute.
	miss := submit(t, hs, quickSpec(2))
	if miss.Cached {
		t.Fatal("different seed hit the cache")
	}
	if got := waitStatus(t, s, miss.ID, StatusDone); got.Cached {
		t.Fatal("computed run marked cached")
	}
}

// TestResultCacheAcrossRestart: the cache is rebuilt from the persisted
// manifest, so identical resubmissions hit across server generations.
func TestResultCacheAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	s1, hs1 := newTestServer(t, Options{Workers: 1, Dir: dir})
	info := submit(t, hs1, quickSpec(5))
	waitStatus(t, s1, info.ID, StatusDone)
	s1.Shutdown()
	hs1.Close()

	_, hs2 := newTestServer(t, Options{Workers: 1, Dir: dir})
	if got := submit(t, hs2, quickSpec(5)); !got.Cached || got.Status != StatusDone {
		t.Fatalf("post-restart resubmission: status %s cached %v", got.Status, got.Cached)
	}
}

// TestMaxHistory: terminal runs beyond the cap are garbage-collected
// oldest-first, together with their checkpoints and cache entries; live
// runs are untouched.
func TestMaxHistory(t *testing.T) {
	dir := t.TempDir()
	s, hs := newTestServer(t, Options{Workers: 1, Dir: dir, MaxHistory: 2})
	var ids []string
	for seed := uint64(1); seed <= 4; seed++ {
		info := submit(t, hs, quickSpec(seed))
		waitStatus(t, s, info.ID, StatusDone)
		ids = append(ids, info.ID)
	}
	// The worker triggers GC right after the terminal transition; run one
	// more sweep synchronously so the assertion does not race it.
	s.gc()
	runs := s.Runs()
	if len(runs) != 2 {
		t.Fatalf("%d runs retained, want 2: %+v", len(runs), runs)
	}
	if runs[0].ID != ids[2] || runs[1].ID != ids[3] {
		t.Fatalf("retained %s,%s; want the newest %s,%s", runs[0].ID, runs[1].ID, ids[2], ids[3])
	}
	for _, id := range ids[:2] {
		if _, ok := s.Info(id); ok {
			t.Errorf("run %s still listed after GC", id)
		}
		if _, err := os.Stat(filepath.Join(dir, id+".ckpt")); !os.IsNotExist(err) {
			t.Errorf("checkpoint of GC'd run %s still on disk (err %v)", id, err)
		}
	}
	// The evicted runs' cache entries died with them: resubmitting seed 1
	// recomputes.
	if got := submit(t, hs, quickSpec(1)); got.Cached {
		t.Error("cache entry survived its run's GC")
	}
}

// TestTTL: terminal runs expire TTL after finishing, measured against the
// injected clock; unexpired ones survive the sweep.
func TestTTL(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1, TTL: time.Hour})
	// The clock is installed once (before any run exists, so no server
	// goroutine reads it concurrently) and advanced through an atomic:
	// worker goroutines may still be in their post-finish gc() when the
	// test moves time forward.
	base := time.Unix(1_700_000_000, 0)
	var offsetMin atomic.Int64
	s.now = func() time.Time { return base.Add(time.Duration(offsetMin.Load()) * time.Minute) }

	old := submit(t, hs, quickSpec(1))
	waitStatus(t, s, old.ID, StatusDone)

	offsetMin.Store(40)
	fresh := submit(t, hs, quickSpec(2))
	waitStatus(t, s, fresh.ID, StatusDone)

	offsetMin.Store(70)
	s.gc()
	if _, ok := s.Info(old.ID); ok {
		t.Error("expired run survived the TTL sweep")
	}
	if _, ok := s.Info(fresh.ID); !ok {
		t.Error("unexpired run was collected")
	}
}
