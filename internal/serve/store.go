package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/atomicio"
)

// store is the server's durable state: a JSON manifest of every run plus
// one binary checkpoint file per rbb run. All writes are atomic
// (internal/atomicio), so a crash leaves the previous consistent state.
type store struct {
	dir string
}

// manifest is the serialized scheduler state. Runs appear in submission
// order; NextID preserves ID uniqueness across restarts.
type manifest struct {
	NextID int       `json:"next_id"`
	Runs   []RunInfo `json:"runs"`
}

func newStore(dir string) (*store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("serve: data dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (st *store) manifestPath() string { return filepath.Join(st.dir, "runs.json") }

// CheckpointPath returns the checkpoint file of run id.
func (st *store) CheckpointPath(id string) string {
	return filepath.Join(st.dir, id+".ckpt")
}

// HasCheckpoint reports whether run id has a checkpoint on disk. A Stat
// failure other than not-exist is surfaced — silently treating an
// unreadable checkpoint as absent would restart a long run from round
// zero instead of resuming it.
func (st *store) HasCheckpoint(id string) (bool, error) {
	_, err := os.Stat(st.CheckpointPath(id))
	if err == nil {
		return true, nil
	}
	if os.IsNotExist(err) {
		return false, nil
	}
	return false, fmt.Errorf("serve: checkpoint: %w", err)
}

// RemoveCheckpoint deletes run id's checkpoint, if any.
func (st *store) RemoveCheckpoint(id string) {
	os.Remove(st.CheckpointPath(id))
}

// SaveManifest atomically replaces the manifest.
func (st *store) SaveManifest(m *manifest) error {
	return atomicio.WriteFile(st.manifestPath(), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(m)
	})
}

// LoadManifest reads the manifest; a missing file is an empty manifest.
func (st *store) LoadManifest() (*manifest, error) {
	blob, err := os.ReadFile(st.manifestPath())
	if os.IsNotExist(err) {
		return &manifest{}, nil
	}
	if err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	m := new(manifest)
	if err := json.Unmarshal(blob, m); err != nil {
		return nil, fmt.Errorf("serve: manifest: %w", err)
	}
	return m, nil
}
