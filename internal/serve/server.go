package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"runtime"
	"sync"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/engine"
	"repro/internal/obs"
	"repro/internal/shard"
	"repro/internal/spec"
)

// Options configures a Server.
type Options struct {
	// Workers is the scheduler budget: the number of runs stepped
	// concurrently (default GOMAXPROCS). Runs beyond it queue.
	Workers int
	// RunWorkers is the per-run phase worker count passed to the sharded
	// engine (shard.Options.Workers; default GOMAXPROCS, clamped to the
	// run's shard count). It never affects trajectories — with several
	// concurrent runs, 1 avoids oversubscribing the cores.
	RunWorkers int
	// MaxQueue bounds the number of queued runs (default 256); submissions
	// beyond it are rejected with 503.
	MaxQueue int
	// Dir is the data directory for the manifest and per-run checkpoints.
	// Empty runs the server in memory: no persistence, no restart story.
	Dir string
	// CheckpointEvery is the default periodic snapshot period in rounds
	// for rbb runs whose spec does not set one (default 0: snapshots only
	// on shutdown, on demand, and at completion).
	CheckpointEvery int64
	// MaxHistory bounds the number of retained terminal runs (0 =
	// unlimited): beyond it the oldest terminal runs are removed, along
	// with their checkpoints and result-cache entries. Queued and running
	// runs never count against it.
	MaxHistory int
	// TTL, when positive, removes terminal runs TTL after they finished
	// (a background janitor sweeps while the server runs; expired runs
	// are also collected opportunistically on submissions and
	// completions).
	TTL time.Duration
	// Logger receives the structured request and run-lifecycle log (nil
	// discards it — tests stay quiet by default).
	Logger *slog.Logger
	// Pprof mounts net/http/pprof under /debug/pprof/ on the handler. Off
	// by default: the profiling surface is opt-in, not part of the public
	// API.
	Pprof bool
}

// Server is the run service: a registry of runs, a bounded scheduler
// multiplexing them over Workers slots, and the HTTP layer (Handler).
// Create with New, stop with Shutdown.
type Server struct {
	opts   Options
	store  *store // nil in memory-only mode
	now    func() time.Time
	logger *slog.Logger

	mu     sync.Mutex
	runs   map[string]*run
	order  []string // submission order, for listing and the manifest
	queue  []string // FIFO of queued run ids
	nextID int
	// cache maps the result-determining spec key of every retained done
	// run to its stored result, so identical resubmissions are answered
	// without recomputing (bit-identical by construction). Entries die
	// with the run retention GC removes, which bounds the cache by the
	// retained history.
	cache map[string]cacheEntry
	// campaigns are the in-memory campaign drivers (see campaigns.go);
	// their points are ordinary runs and carry all the durability.
	campaigns     map[string]*campaignRun
	campaignOrder []string
	nextCampaign  int

	persistMu sync.Mutex // serializes manifest writes

	stopCtx context.Context
	stop    context.CancelFunc
	wake    chan struct{} // scheduler pokes, capacity Workers
	wg      sync.WaitGroup
}

// cacheEntry is one stored result: the producing run (whose GC evicts the
// entry) and the completed round count + summary served to cache hits.
type cacheEntry struct {
	runID   string
	round   int64
	summary *shard.Summary
}

// specKey canonicalizes the result-determining fields of a normalized
// spec. Placement and snapshot knobs (Placement, CheckpointEvery,
// StreamEvery) are deliberately absent: they never perturb the trajectory,
// so specs differing only there share a result.
func specKey(sp Spec) string { return sp.ResultKey() }

// New builds a server, restores any persisted state from opts.Dir, and
// starts the worker pool. Queued and interrupted runs from a previous
// process resume immediately — rbb runs from their checkpoints,
// byte-identically.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.MaxQueue <= 0 {
		opts.MaxQueue = 256
	}
	logger := opts.Logger
	if logger == nil {
		logger = slog.New(slog.DiscardHandler)
	}
	s := &Server{
		opts:      opts,
		now:       time.Now,
		logger:    logger,
		runs:      make(map[string]*run),
		cache:     make(map[string]cacheEntry),
		campaigns: make(map[string]*campaignRun),
		wake:      make(chan struct{}, opts.Workers),
	}
	s.stopCtx, s.stop = context.WithCancel(context.Background())
	if opts.Dir != "" {
		st, err := newStore(opts.Dir)
		if err != nil {
			return nil, err
		}
		s.store = st
		if err := s.restore(); err != nil {
			return nil, err
		}
		s.gc() // apply the retention policy to the inherited history
	}
	for i := 0; i < opts.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if opts.TTL > 0 {
		// The janitor sweeps expired terminal runs even when the server
		// is otherwise idle. Interval: half the TTL, clamped to [1s, 1m].
		interval := opts.TTL / 2
		if interval < time.Second {
			interval = time.Second
		}
		if interval > time.Minute {
			interval = time.Minute
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(interval)
			defer t.Stop()
			for {
				select {
				case <-s.stopCtx.Done():
					return
				case <-t.C:
					s.gc()
				}
			}
		}()
	}
	return s, nil
}

// restore loads the manifest and re-enqueues unfinished runs. A run that
// was mid-flight when the previous process died keeps its recorded round
// for display; the authoritative resume point is its checkpoint (absent
// one, the run restarts from round zero — same trajectory either way).
func (s *Server) restore() error {
	m, err := s.store.LoadManifest()
	if err != nil {
		return err
	}
	s.nextID = m.NextID
	for _, info := range m.Runs {
		// Terminal runs persisted before the finished_unix field (or by a
		// crash between transition and stamp) carry a zero finish time;
		// date them to the restore so a freshly enabled TTL ages them
		// from now instead of collecting the whole history at startup.
		if info.Status.Terminal() && info.FinishedUnix == 0 {
			info.FinishedUnix = s.now().Unix()
		}
		r := newRun(info.ID, info.Spec)
		r.info = info
		// A manifest persisted mid-run may carry a Progress estimate; it is
		// meaningless in any restored state.
		r.info.Progress = nil
		if !info.Status.Terminal() {
			r.info.Status = StatusQueued
			resumable := false
			if info.Spec.Process == ProcessRBB {
				if resumable, err = s.store.HasCheckpoint(info.ID); err != nil {
					return err
				}
			}
			if !resumable {
				r.info.Round = 0
			}
			s.queue = append(s.queue, info.ID)
		}
		s.runs[info.ID] = r
		s.order = append(s.order, info.ID)
		if info.Status == StatusDone && info.Summary != nil {
			s.cache[specKey(info.Spec)] = cacheEntry{runID: info.ID, round: info.Round, summary: info.Summary}
		}
	}
	s.logger.Info("state restored", "runs", len(m.Runs), "requeued", len(s.queue))
	return nil
}

// Submit validates and enqueues a run, returning its public state. A
// submission whose result-determining fields match a retained done run is
// answered from the result cache: the returned run is already done,
// carries the stored Summary and Cached: true, and never occupies a queue
// slot or a worker.
func (s *Server) Submit(spec Spec) (RunInfo, error) {
	if err := spec.Normalize(s.opts.CheckpointEvery); err != nil {
		return RunInfo{}, &badRequestError{err}
	}
	// Reject unreachable placement hosts at submit time: failing the
	// misconfigured submission with an attributable 4xx beats queueing a
	// run that dies mid-join. Probed before the cache lookup so a bad
	// placement is rejected deterministically, hit or miss.
	if err := spec.ProbePlacement(0); err != nil {
		return RunInfo{}, &badRequestError{err}
	}
	s.mu.Lock()
	if ent, ok := s.cache[specKey(spec)]; ok {
		if obs.Enabled() {
			mCacheHits.Inc()
		}
		s.nextID++
		id := fmt.Sprintf("r%06d", s.nextID)
		r := newRun(id, spec)
		r.info.Status = StatusDone
		r.info.Round = ent.round
		r.info.Summary = ent.summary
		r.info.Cached = true
		r.info.FinishedUnix = s.now().Unix()
		s.runs[id] = r
		s.order = append(s.order, id)
		s.mu.Unlock()
		s.logger.Info("run served from cache", "id", id, "source", ent.runID)
		s.persist()
		s.gc()
		return r.Info(), nil
	}
	if len(s.queue) >= s.opts.MaxQueue {
		s.mu.Unlock()
		return RunInfo{}, errQueueFull
	}
	if obs.Enabled() {
		mCacheMisses.Inc()
	}
	s.nextID++
	id := fmt.Sprintf("r%06d", s.nextID)
	r := newRun(id, spec)
	s.runs[id] = r
	s.order = append(s.order, id)
	s.queue = append(s.queue, id)
	s.mu.Unlock()
	s.logger.Info("run queued", "id", id, "process", spec.Process,
		"n", spec.N, "rounds", spec.Rounds, "shards", spec.Shards)
	s.persist()
	select {
	case s.wake <- struct{}{}:
	default:
	}
	s.gc()
	return r.Info(), nil
}

// finishRun applies a terminal (or re-queued) transition, stamping the
// finish time on terminal ones (the retention TTL counts from it).
func (s *Server) finishRun(r *run, mutate func(*RunInfo)) {
	ts := s.now().Unix()
	r.finish(func(info *RunInfo) {
		mutate(info)
		if info.Status.Terminal() {
			info.FinishedUnix = ts
		} else {
			info.FinishedUnix = 0
		}
	})
}

// gc applies the retention policy: terminal runs past Options.TTL, then
// the oldest terminal runs beyond Options.MaxHistory, are removed together
// with their checkpoints and result-cache entries. Terminal is a final
// state, so the scan can run unlocked and the removal re-acquire the lock
// without races.
func (s *Server) gc() {
	if s.opts.MaxHistory <= 0 && s.opts.TTL <= 0 {
		return
	}
	infos := s.Runs()
	victims := make(map[string]bool)
	cutoff := int64(0)
	if s.opts.TTL > 0 {
		cutoff = s.now().Add(-s.opts.TTL).Unix()
	}
	kept := 0
	for _, info := range infos {
		if info.Status.Terminal() {
			if s.opts.TTL > 0 && info.FinishedUnix <= cutoff {
				victims[info.ID] = true
			} else {
				kept++
			}
		}
	}
	if s.opts.MaxHistory > 0 && kept > s.opts.MaxHistory {
		excess := kept - s.opts.MaxHistory
		for _, info := range infos {
			if excess == 0 {
				break
			}
			if info.Status.Terminal() && !victims[info.ID] {
				victims[info.ID] = true
				excess--
			}
		}
	}
	if len(victims) == 0 {
		return
	}
	s.mu.Lock()
	order := s.order[:0]
	for _, id := range s.order {
		if victims[id] {
			delete(s.runs, id)
		} else {
			order = append(order, id)
		}
	}
	s.order = order
	for key, ent := range s.cache {
		if victims[ent.runID] {
			delete(s.cache, key)
		}
	}
	s.mu.Unlock()
	if s.store != nil {
		for id := range victims {
			s.store.RemoveCheckpoint(id)
		}
	}
	s.persist()
}

// lookup returns the run with the given id, if any.
func (s *Server) lookup(id string) (*run, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	r, ok := s.runs[id]
	return r, ok
}

// Info returns the public state of the run with the given id.
func (s *Server) Info(id string) (RunInfo, bool) {
	r, ok := s.lookup(id)
	if !ok {
		return RunInfo{}, false
	}
	return r.Info(), true
}

// Runs lists every run in submission order.
func (s *Server) Runs() []RunInfo {
	s.mu.Lock()
	ids := append([]string(nil), s.order...)
	runs := make([]*run, 0, len(ids))
	for _, id := range ids {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	out := make([]RunInfo, 0, len(runs))
	for _, r := range runs {
		out = append(out, r.Info())
	}
	return out
}

// Cancel cancels a queued or running run. It reports false when the run
// was already terminal.
func (s *Server) Cancel(id string) (bool, error) {
	r, ok := s.lookup(id)
	if !ok {
		return false, errUnknownRun
	}
	if !r.requestCancel() {
		return false, nil
	}
	// A queued run has no worker to observe the cancellation; finalize it
	// here. (A running one is finalized by its worker.) finish is a no-op
	// transition if the worker claimed the run between requestCancel and
	// this check — setRunning refuses cancelled runs, so the claim cannot
	// have succeeded.
	if r.Info().Status == StatusQueued {
		s.finishRun(r, func(info *RunInfo) { info.Status = StatusCancelled })
		// Drop the tombstone from the queue eagerly: workers skip
		// cancelled entries anyway, but a dead id left in s.queue would
		// count against MaxQueue and 503 live submissions.
		s.mu.Lock()
		for i, qid := range s.queue {
			if qid == id {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				break
			}
		}
		s.mu.Unlock()
		if s.store != nil {
			s.store.RemoveCheckpoint(id)
		}
		s.persist()
	}
	return true, nil
}

// Counters reports scheduler occupancy: queued, running, and terminal run
// counts.
func (s *Server) Counters() (queued, running, terminal int) {
	for _, info := range s.Runs() {
		switch {
		case info.Status == StatusQueued:
			queued++
		case info.Status == StatusRunning:
			running++
		default:
			terminal++
		}
	}
	return
}

// Shutdown stops the scheduler: every running run snapshots (rbb) and
// returns to the queue at its next round boundary, workers drain, and the
// manifest is persisted. The server must not be used afterwards; a new
// Server over the same directory picks the interrupted runs back up.
func (s *Server) Shutdown() {
	s.logger.Info("shutting down")
	s.stop()
	s.wg.Wait()
	s.persist()
	s.logger.Info("stopped")
}

// persist writes the manifest (memory-only mode: no-op). persistMu is
// held across both the state snapshot and the file write, so concurrent
// transitions cannot overwrite a newer manifest with a staler one.
// Errors are swallowed — a full disk must not kill the simulations; the
// next transition retries.
func (s *Server) persist() {
	if s.store == nil {
		return
	}
	s.persistMu.Lock()
	defer s.persistMu.Unlock()
	s.mu.Lock()
	m := &manifest{NextID: s.nextID}
	runs := make([]*run, 0, len(s.order))
	for _, id := range s.order {
		runs = append(runs, s.runs[id])
	}
	s.mu.Unlock()
	for _, r := range runs {
		m.Runs = append(m.Runs, r.Info())
	}
	_ = s.store.SaveManifest(m)
}

// nextQueued pops the first queued, not-yet-cancelled run (nil if none).
func (s *Server) nextQueued() *run {
	s.mu.Lock()
	defer s.mu.Unlock()
	for len(s.queue) > 0 {
		id := s.queue[0]
		s.queue = s.queue[1:]
		// A cancelled entry may linger here until popped, and retention
		// GC may have dropped it from the registry by then.
		if r := s.runs[id]; r != nil && !r.wasCancelled() {
			return r
		}
	}
	return nil
}

// worker is one scheduler slot: it claims queued runs and executes them
// until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		r := s.nextQueued()
		if r == nil {
			select {
			case <-s.stopCtx.Done():
				return
			case <-s.wake:
				continue
			}
		}
		s.execute(r)
		select {
		case <-s.stopCtx.Done():
			return
		default:
		}
	}
}

// execute runs one simulation to completion, cancellation, or shutdown.
func (s *Server) execute(r *run) {
	ctx, cancel := context.WithCancel(s.stopCtx)
	defer cancel()
	if !r.setRunning(cancel) {
		// Cancelled while queued and already finalized by Cancel.
		return
	}
	s.persist()
	info := r.Info()
	spec, id := info.Spec, info.ID
	s.logger.Info("run started", "id", id, "process", spec.Process, "from_round", info.Round)
	start := s.now()

	var (
		round       int64
		interrupted bool
		summary     *shard.Summary
		err         error
	)
	if spec.Process == ProcessRBB {
		round, interrupted, summary, err = s.runRBB(ctx, r, spec)
	} else {
		round, interrupted, summary, err = s.runTetris(ctx, r, spec)
	}

	switch {
	case err != nil:
		s.finishRun(r, func(info *RunInfo) {
			info.Status = StatusFailed
			info.Error = err.Error()
			info.Round = round
		})
	case interrupted && r.wasCancelled():
		s.finishRun(r, func(info *RunInfo) {
			info.Status = StatusCancelled
			info.Round = round
		})
		if s.store != nil {
			s.store.RemoveCheckpoint(id)
		}
	case interrupted:
		// Shutdown: back to the queue. The restart path resumes rbb runs
		// from the snapshot checkpoint.Run just wrote; non-checkpointable
		// processes re-run from round zero.
		s.finishRun(r, func(info *RunInfo) {
			info.Status = StatusQueued
			info.Round = round
			if spec.Process != ProcessRBB {
				info.Round = 0
			}
		})
	default:
		s.finishRun(r, func(info *RunInfo) {
			info.Status = StatusDone
			info.Round = round
			info.Summary = summary
		})
		// Feed the result cache (first writer wins; later identical runs
		// would store a bit-identical summary anyway). A concurrent gc()
		// may already have collected this run between the terminal
		// transition above and here — skip the write then, or the entry
		// would outlive every future sweep (gc evicts entries by their
		// producing run's id).
		s.mu.Lock()
		if _, live := s.runs[id]; live {
			if key := specKey(spec); s.cache[key].summary == nil {
				s.cache[key] = cacheEntry{runID: id, round: round, summary: summary}
			}
		}
		s.mu.Unlock()
	}
	s.logger.Info("run left worker", "id", id, "status", string(r.Info().Status),
		"round", round, "elapsed_ms", float64(s.now().Sub(start))/float64(time.Millisecond))
	s.persist()
	s.gc()
}

// streamObserver emits an Event every spec.StreamEvery rounds and at the
// target round.
func streamObserver(r *run, pipe *shard.Pipeline, spec Spec) engine.Observer {
	return engine.ObserverFunc(func(st engine.Stepper) {
		round := st.Round()
		if round%spec.StreamEvery != 0 && round != spec.Rounds {
			return
		}
		r.publish(Event{
			Round:     round,
			MaxLoad:   st.MaxLoad(),
			EmptyFrac: float64(st.EmptyBins()) / float64(st.N()),
			WindowMax: pipe.WindowMax(),
		})
	})
}

// runRBB executes (or resumes) a checkpointable rbb run under
// checkpoint.Run: periodic snapshots, on-demand trigger snapshots, and
// snapshot-and-stop on ctx cancellation. The spec's placement decides
// where the rounds execute — in process, over worker-process pipes, or
// over TCP workers — never what they compute.
func (s *Server) runRBB(ctx context.Context, r *run, sp Spec) (int64, bool, *shard.Summary, error) {
	id := r.Info().ID
	var (
		proc spec.Process
		pipe *shard.Pipeline
	)
	resume := false
	if s.store != nil {
		var err error
		if resume, err = s.store.HasCheckpoint(id); err != nil {
			return 0, false, nil, err
		}
	}
	if resume {
		snap, err := checkpoint.ReadFile(s.store.CheckpointPath(id))
		if err != nil {
			return 0, false, nil, fmt.Errorf("resume: %w", err)
		}
		// The checkpoint file is keyed only by run id; cross-check its
		// identity against the spec so a stale or foreign file (recycled
		// id, operator-edited store) can never impersonate this run's
		// result.
		if snap.Seed != sp.Seed || snap.Engine.N != sp.N || len(snap.Engine.Shards) != sp.Shards {
			return 0, false, nil, fmt.Errorf("resume: checkpoint is for (seed %d, n %d, shards %d), spec wants (seed %d, n %d, shards %d)",
				snap.Seed, snap.Engine.N, len(snap.Engine.Shards), sp.Seed, sp.N, sp.Shards)
		}
		proc, pipe, err = sp.Open(snap, s.opts.RunWorkers)
		if err != nil {
			return 0, false, nil, fmt.Errorf("resume: %w", err)
		}
	} else {
		var err error
		if proc, err = sp.Build(s.opts.RunWorkers); err != nil {
			return 0, false, nil, err
		}
	}
	defer proc.Close()
	p, ok := proc.(checkpoint.Process)
	if !ok {
		return 0, false, nil, fmt.Errorf("placement %q cannot snapshot an rbb run", sp.Placement.Transport)
	}
	if pipe == nil {
		var err error
		if pipe, err = shard.NewPipeline(sp.Quantiles); err != nil {
			return 0, false, nil, err
		}
	}
	pol := checkpoint.Policy{
		Every:    sp.CheckpointEvery,
		Seed:     sp.Seed,
		Pipeline: pipe,
		Trigger:  r.trigger,
		// A client cancellation deletes the run's checkpoint right after
		// the stop; don't write one just to unlink it (only shutdowns
		// need the stop snapshot).
		InterruptSnapshot: func() bool { return !r.wasCancelled() },
	}
	if s.store != nil {
		pol.Path = s.store.CheckpointPath(id)
	}
	round, interrupted, err := checkpoint.Run(ctx, p, sp.Rounds, pol, streamObserver(r, pipe, sp))
	if err != nil {
		return round, interrupted, nil, err
	}
	sum := pipe.SummaryFor(p)
	return round, interrupted, &sum, nil
}

// runTetris executes a tetris or batches run on the spec's placement (the
// serialized arrival rules carry these processes across process and
// machine boundaries too). No snapshot support: a shutdown re-queues the
// run from round zero, which replays the identical trajectory.
func (s *Server) runTetris(ctx context.Context, r *run, sp Spec) (int64, bool, *shard.Summary, error) {
	tp, err := sp.Build(s.opts.RunWorkers)
	if err != nil {
		return 0, false, nil, err
	}
	defer tp.Close()
	pipe, err := shard.NewPipeline(sp.Quantiles)
	if err != nil {
		return 0, false, nil, err
	}
	_, stopped := engine.RunContext(ctx, tp, sp.Rounds, pipe, streamObserver(r, pipe, sp))
	if stopped {
		return tp.Round(), true, nil, nil
	}
	sum := pipe.SummaryFor(tp)
	return tp.Round(), false, &sum, nil
}

// badRequestError marks a client error (HTTP 400).
type badRequestError struct{ err error }

func (e *badRequestError) Error() string { return e.err.Error() }
func (e *badRequestError) Unwrap() error { return e.err }

var (
	errUnknownRun = errors.New("unknown run")
	errQueueFull  = errors.New("queue full")
)
