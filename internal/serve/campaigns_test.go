package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/campaign"
	"repro/internal/spec"
	"repro/internal/table"
)

// testCampaignSpec is the serve tests' sweep: an n axis with seed
// replicas over rbb, small enough to finish in milliseconds.
func testCampaignSpec() campaign.CampaignSpec {
	return campaign.CampaignSpec{
		Name: "serve-test",
		Base: spec.RunSpec{Seed: 9, Rounds: 40, Shards: 2, Quantiles: []float64{0.5}},
		Axes: []campaign.Axis{
			{Field: campaign.FieldN, Values: []float64{32, 64}},
		},
		Replicas:    2,
		Concurrency: 2,
	}
}

// submitCampaign POSTs a campaign spec and returns the accepted info.
func submitCampaign(t *testing.T, hs *httptest.Server, cs campaign.CampaignSpec) CampaignInfo {
	t.Helper()
	blob, _ := json.Marshal(cs)
	resp, err := http.Post(hs.URL+"/v1/campaigns", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("submit campaign: status %d: %s", resp.StatusCode, body)
	}
	var info CampaignInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitCampaign polls until the campaign is terminal.
func waitCampaign(t *testing.T, s *Server, id string) CampaignInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := s.CampaignRunInfo(id)
		if !ok {
			t.Fatalf("campaign %s vanished", id)
		}
		if info.Status.Terminal() {
			return info
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("campaign %s did not finish", id)
	return CampaignInfo{}
}

// getAggregate fetches a campaign's aggregate artifact in one format.
func getAggregate(t *testing.T, hs *httptest.Server, id, format string) []byte {
	t.Helper()
	url := hs.URL + "/v1/campaigns/" + id + "/aggregate"
	if format != "" {
		url += "?format=" + format
	}
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("aggregate %s: status %d: %s", format, resp.StatusCode, body)
	}
	return body
}

// scrapeMetrics fetches the /metrics exposition text.
func scrapeMetrics(t *testing.T, hs *httptest.Server) string {
	t.Helper()
	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

// TestCampaignEndToEnd drives a campaign through the HTTP surface: submit,
// progress to done, aggregate artifact in all formats — and a second
// identical campaign answered entirely from the result cache with a
// byte-identical aggregate.
func TestCampaignEndToEnd(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	// The campaign point counter is process-global; pin the delta across
	// this campaign so the serve driver is known to feed it.
	const doneSeries = `rbb_campaign_points_total{status="done"}`
	done0 := metricValue(t, scrapeMetrics(t, hs), doneSeries)
	info := submitCampaign(t, hs, testCampaignSpec())
	if info.Points != 4 {
		t.Fatalf("points = %d, want 4", info.Points)
	}
	final := waitCampaign(t, s, info.ID)
	if final.Status != StatusDone || final.Done != 4 || final.Failed != 0 {
		t.Fatalf("campaign = %+v", final)
	}
	if done := metricValue(t, scrapeMetrics(t, hs), doneSeries); done != done0+4 {
		t.Errorf("campaign done points counter = %v, want %v", done, done0+4)
	}

	blob := getAggregate(t, hs, info.ID, "")
	var tb table.Table
	if err := json.Unmarshal(blob, &tb); err != nil {
		t.Fatalf("aggregate json: %v", err)
	}
	if tb.NumRows() != 2 {
		t.Errorf("aggregate rows = %d, want 2 (one per n)", tb.NumRows())
	}
	if tb.Columns[0] != "n" || tb.Columns[1] != "replicas" {
		t.Errorf("aggregate columns = %v", tb.Columns)
	}
	csvBlob := getAggregate(t, hs, info.ID, "csv")
	fromCSV, err := table.ParseCSV(bytes.NewReader(csvBlob))
	if err != nil {
		t.Fatal(err)
	}
	if len(fromCSV.Rows()) != 2 {
		t.Errorf("csv aggregate rows = %d", len(fromCSV.Rows()))
	}
	getAggregate(t, hs, info.ID, "text")

	// Every point result must equal the in-process oracle for its law.
	plan, err := func() (*campaign.Plan, error) { cs := testCampaignSpec(); return cs.Expand() }()
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range plan.Points {
		ref := refSummary(t, pt.Spec)
		run := submit(t, hs, pt.Spec) // all done already → cache hits
		got := waitDone(t, s, run.ID)
		if !got.Cached {
			t.Errorf("point %s law missed the cache after the campaign ran it", pt.ID)
		}
		refBlob, _ := json.Marshal(ref)
		gotBlob, _ := json.Marshal(got.Summary)
		if string(refBlob) != string(gotBlob) {
			t.Errorf("point %s summary differs from oracle", pt.ID)
		}
	}

	// Identical campaign again: all four points ride the cache.
	info2 := submitCampaign(t, hs, testCampaignSpec())
	final2 := waitCampaign(t, s, info2.ID)
	if final2.Status != StatusDone || final2.Cached != 4 {
		t.Fatalf("cached campaign = %+v, want 4 cache hits", final2)
	}
	if got := getAggregate(t, hs, info2.ID, ""); string(got) != string(blob) {
		t.Errorf("cached campaign aggregate differs:\n%s\nvs\n%s", got, blob)
	}
	if final.LawID != final2.LawID {
		t.Errorf("law ids differ: %s vs %s", final.LawID, final2.LawID)
	}
}

// TestCampaignStream tails a campaign's progress: per-point NDJSON events
// ending with the terminal CampaignInfo.
func TestCampaignStream(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	// Park a long run on the lone worker so no campaign point can finish
	// before the stream is attached.
	blocker := submit(t, hs, Spec{Seed: 1, N: 256, Rounds: 1 << 40})
	waitStatus(t, s, blocker.ID, StatusRunning)
	cs := testCampaignSpec()
	cs.Concurrency = 1
	info := submitCampaign(t, hs, cs)
	resp, err := http.Get(hs.URL + "/v1/campaigns/" + info.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Cancel(blocker.ID); err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) == 0 {
		t.Fatal("empty stream")
	}
	// Terminal line: the campaign info.
	var fin CampaignInfo
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &fin); err != nil {
		t.Fatalf("terminal line: %v", err)
	}
	if !fin.Status.Terminal() {
		t.Errorf("stream ended with non-terminal status %s", fin.Status)
	}
	sawDone := false
	for _, line := range lines[:len(lines)-1] {
		var ev CampaignEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil {
			t.Fatalf("event line %q: %v", line, err)
		}
		if ev.Status == "done" {
			sawDone = true
		}
	}
	if !sawDone {
		t.Error("no point completion event observed")
	}
	waitCampaign(t, s, info.ID)
}

// TestCampaignValidation: malformed and invalid specs are 400s, unknown
// campaigns 404, aggregates of unfinished campaigns 409.
func TestCampaignValidation(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	post := func(body string) int {
		resp, err := http.Post(hs.URL+"/v1/campaigns", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Errorf("malformed body: %d", code)
	}
	if code := post(`{"base":{"seed":1,"n":8,"rounds":4},"axes":[{"field":"workers","values":[1]}]}`); code != http.StatusBadRequest {
		t.Errorf("placement axis: %d", code)
	}
	resp, err := http.Get(hs.URL + "/v1/campaigns/c999999")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown campaign: %d", resp.StatusCode)
	}
}

// TestCampaignRemoteRunner points the campaign CLI runner at a live
// rbb-serve: points execute as server runs, the manifest and aggregate
// artifacts land in the local campaign directory, and the result equals
// an in-process campaign of the same spec byte for byte.
func TestCampaignRemoteRunner(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 2})

	refDir := t.TempDir()
	csLocal := testCampaignSpec()
	if _, err := campaign.Run(context.Background(), csLocal, campaign.Options{Dir: refDir}); err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	csRemote := testCampaignSpec()
	res, err := campaign.Run(context.Background(), csRemote, campaign.Options{Dir: dir, Server: hs.URL})
	if err != nil {
		t.Fatal(err)
	}
	if res.Done != 4 || res.Failed != 0 || res.Stopped {
		t.Fatalf("remote campaign = %+v", res)
	}
	for _, st := range res.Points {
		if st.RunID == "" {
			t.Errorf("point %s has no remote run id", st.ID)
		}
	}
	for _, name := range []string{campaign.ArtifactText, campaign.ArtifactCSV, campaign.ArtifactJSON} {
		ref, err := os.ReadFile(filepath.Join(refDir, name))
		if err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			t.Fatal(err)
		}
		if string(ref) != string(got) {
			t.Errorf("%s differs between in-process and remote campaign:\n%s\nvs\n%s", name, got, ref)
		}
	}
}
