package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/engine"
	"repro/internal/shard"
	"repro/internal/spec"
	"repro/internal/tetris"
)

// newTestServer builds a Server (+ its HTTP front) and tears both down
// with the test.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		s.Shutdown()
		hs.Close()
	})
	return s, hs
}

// refSummary recomputes a spec's result in-process, the way cmd/rbb-sim
// does — the oracle every service-path result must match exactly.
func refSummary(t *testing.T, spec Spec) shard.Summary {
	t.Helper()
	if err := spec.Normalize(0); err != nil {
		t.Fatal(err)
	}
	loads, err := spec.MakeLoads()
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := shard.NewPipeline(spec.Quantiles)
	if err != nil {
		t.Fatal(err)
	}
	var st engine.Stepper
	switch spec.Process {
	case ProcessRBB:
		p, err := shard.NewProcess(loads, spec.Seed, shard.Options{Shards: spec.Shards})
		if err != nil {
			t.Fatal(err)
		}
		st = p
	default:
		law := tetris.Deterministic
		if spec.Process == ProcessBatches {
			law = tetris.BinomialArrivals
		}
		tp, err := shard.NewTetris(loads, spec.Seed, shard.TetrisOptions{
			Options: shard.Options{Shards: spec.Shards},
			Law:     law,
			Lambda:  spec.Lambda,
		})
		if err != nil {
			t.Fatal(err)
		}
		st = tp
	}
	engine.Run(st, spec.Rounds, pipe)
	return pipe.SummaryFor(st)
}

// submit POSTs a spec and returns the accepted RunInfo.
func submit(t *testing.T, hs *httptest.Server, spec Spec) RunInfo {
	t.Helper()
	blob, _ := json.Marshal(spec)
	resp, err := http.Post(hs.URL+"/v1/runs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	var info RunInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatal(err)
	}
	return info
}

// waitStatus polls until the run reaches want (failing fast on any other
// terminal state).
func waitStatus(t *testing.T, s *Server, id string, want Status) RunInfo {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := s.Info(id)
		if !ok {
			t.Fatalf("run %s disappeared", id)
		}
		if info.Status == want {
			return info
		}
		if info.Status.Terminal() {
			t.Fatalf("run %s reached %s (error %q) while waiting for %s", id, info.Status, info.Error, want)
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("run %s never reached %s", id, want)
	return RunInfo{}
}

// TestSubmitStreamResult is the happy path: submit → stream → result, with
// the result checked against the in-process oracle.
func TestSubmitStreamResult(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2, Dir: t.TempDir()})
	spec := Spec{Seed: 7, N: 2048, Rounds: 400, Shards: 4, Quantiles: []float64{0.5, 0.99}}
	info := submit(t, hs, spec)
	if info.Status != StatusQueued && info.Status != StatusRunning {
		t.Fatalf("fresh run status %s", info.Status)
	}
	if info.Spec.M != 2048 || info.Spec.Process != ProcessRBB || info.Spec.Shards != 4 {
		t.Fatalf("normalization lost: %+v", info.Spec)
	}

	// Stream until the terminal line. Intermediate lines are Events with
	// monotonically increasing rounds; the last line is the RunInfo.
	resp, err := http.Get(hs.URL + "/v1/runs/" + info.ID + "/stream")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) == 0 {
		t.Fatal("stream delivered nothing")
	}
	last := int64(-1)
	for _, l := range lines[:len(lines)-1] {
		var ev Event
		if err := json.Unmarshal([]byte(l), &ev); err != nil {
			t.Fatalf("bad event %q: %v", l, err)
		}
		if ev.Round <= last {
			t.Fatalf("events out of order: %d after %d", ev.Round, last)
		}
		last = ev.Round
	}
	var final RunInfo
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil {
		t.Fatalf("bad terminal line %q: %v", lines[len(lines)-1], err)
	}
	if final.Status != StatusDone || final.Round != 400 || final.Summary == nil {
		t.Fatalf("terminal line: %+v", final)
	}

	want := refSummary(t, spec)
	if !reflect.DeepEqual(*final.Summary, want) {
		t.Fatalf("summary diverged from rbb-sim oracle:\n got %+v\nwant %+v", *final.Summary, want)
	}

	// The result endpoint serves the same summary.
	rr, err := http.Get(hs.URL + "/v1/runs/" + info.ID + "/result")
	if err != nil {
		t.Fatal(err)
	}
	defer rr.Body.Close()
	if rr.StatusCode != http.StatusOK {
		t.Fatalf("result status %d", rr.StatusCode)
	}
	var got shard.Summary
	if err := json.NewDecoder(rr.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("result endpoint diverged:\n got %+v\nwant %+v", got, want)
	}

	// Listing includes the run; health reports it terminal.
	if runs := s.Runs(); len(runs) != 1 || runs[0].ID != info.ID {
		t.Fatalf("listing: %+v", runs)
	}
	if q, r, term := s.Counters(); q != 0 || r != 0 || term != 1 {
		t.Fatalf("counters: %d/%d/%d", q, r, term)
	}
}

// TestStreamSSE: a done run's stream with an SSE accept header yields
// data: frames and the terminal state.
func TestStreamSSE(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 1})
	info := submit(t, hs, Spec{Seed: 3, N: 256, Rounds: 50, Shards: 1})
	waitStatus(t, s, info.ID, StatusDone)
	req, _ := http.NewRequest("GET", hs.URL+"/v1/runs/"+info.ID+"/stream", nil)
	req.Header.Set("Accept", "text/event-stream")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("content type %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.HasPrefix(buf.String(), "data: ") {
		t.Fatalf("not SSE framed: %q", buf.String())
	}
}

// TestTetrisAndBatches: the non-checkpointable processes run through the
// service and match their oracles.
func TestTetrisAndBatches(t *testing.T) {
	s, hs := newTestServer(t, Options{Workers: 2})
	for _, spec := range []Spec{
		{Process: ProcessTetris, Seed: 11, N: 1024, Rounds: 300, Shards: 2},
		{Process: ProcessBatches, Seed: 12, N: 1024, Rounds: 300, Shards: 4, Lambda: 0.5, Quantiles: []float64{0.9}},
	} {
		info := submit(t, hs, spec)
		final := waitStatus(t, s, info.ID, StatusDone)
		want := refSummary(t, spec)
		if !reflect.DeepEqual(*final.Summary, want) {
			t.Fatalf("%s summary diverged:\n got %+v\nwant %+v", spec.Process, *final.Summary, want)
		}
	}
}

// TestBadInput: malformed and invalid submissions are rejected with 400,
// unknown runs with 404, premature results with 409.
func TestBadInput(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 1})
	post := func(body string) int {
		resp, err := http.Post(hs.URL+"/v1/runs", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	for _, body := range []string{
		`{`,                                                 // malformed JSON
		`{"seed":1,"rounds":10}`,                            // n missing
		`{"n":100}`,                                         // rounds missing
		`{"n":100,"rounds":-1}`,                             // negative rounds
		`{"n":10,"rounds":5,"shards":20}`,                   // shards > n
		`{"n":10,"rounds":5,"process":"bogus"}`,             // unknown process
		`{"n":10,"rounds":5,"init":"bogus"}`,                // unknown init
		`{"n":10,"rounds":5,"quantiles":[1.5]}`,             // quantile outside (0,1)
		`{"n":10,"rounds":5,"process":"tetris","m":7}`,      // m on tetris
		`{"n":10,"rounds":5,"lambda":0.9}`,                  // lambda on rbb
		`{"n":10,"rounds":5,"lambda":2,"process":"tetris"}`, // bad lambda
		`{"n":10,"rounds":5,"bogus_field":1}`,               // unknown field
	} {
		if code := post(body); code != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, code)
		}
	}
	for _, url := range []string{"/v1/runs/zzz", "/v1/runs/zzz/result", "/v1/runs/zzz/stream"} {
		resp, err := http.Get(hs.URL + url)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("%s: status %d, want 404", url, resp.StatusCode)
		}
	}
	// checkpoint-now without a data directory is a conflict.
	info := submit(t, hs, Spec{Seed: 1, N: 64, Rounds: 5})
	resp, err := http.Post(hs.URL+"/v1/runs/"+info.ID+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("checkpoint without dir: status %d, want 409", resp.StatusCode)
	}
}

// TestCancelRunningAndQueued: cancelling hits both a running run (stops at
// the next round boundary, checkpoint removed) and a queued one (finalized
// immediately); a full queue rejects with 503.
func TestCancelRunningAndQueued(t *testing.T) {
	dir := t.TempDir()
	s, hs := newTestServer(t, Options{Workers: 1, RunWorkers: 1, MaxQueue: 1, Dir: dir})
	// A run long enough to still be in flight when the cancel lands.
	long := Spec{Seed: 2, N: 1024, Rounds: 50_000_000, Shards: 2, StreamEvery: 1}
	running := submit(t, hs, long)
	waitStatus(t, s, running.ID, StatusRunning)
	queued := submit(t, hs, Spec{Seed: 3, N: 64, Rounds: 10})

	// Queue is now full (capacity 1): the next submission bounces.
	blob, _ := json.Marshal(Spec{Seed: 4, N: 64, Rounds: 10})
	resp, err := http.Post(hs.URL+"/v1/runs", "application/json", bytes.NewReader(blob))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("full queue: status %d, want 503", resp.StatusCode)
	}

	// Cancel the queued run: terminal immediately, before any worker.
	req, _ := http.NewRequest("DELETE", hs.URL+"/v1/runs/"+queued.ID, nil)
	if resp, err = http.DefaultClient.Do(req); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel queued: status %d", resp.StatusCode)
	}
	if info, _ := s.Info(queued.ID); info.Status != StatusCancelled {
		t.Fatalf("queued run not cancelled: %+v", info)
	}
	// The cancelled entry frees its queue slot immediately: a new
	// submission fits even though the worker is still busy.
	queued2 := submit(t, hs, Spec{Seed: 5, N: 64, Rounds: 10})
	if ok, err := s.Cancel(queued2.ID); err != nil || !ok {
		t.Fatalf("cancel refilled slot: ok=%v err=%v", ok, err)
	}

	// Cancel the running run: stops at the next round boundary.
	if resp, err = http.Post(hs.URL+"/v1/runs/"+running.ID+"/cancel", "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("cancel running: status %d", resp.StatusCode)
	}
	final := waitStatus(t, s, running.ID, StatusCancelled)
	if final.Round <= 0 || final.Round >= long.Rounds {
		t.Fatalf("cancelled at round %d", final.Round)
	}
	if has, err := (&store{dir: dir}).HasCheckpoint(running.ID); err != nil || has {
		t.Fatalf("cancelled run left a checkpoint behind (has=%v err=%v)", has, err)
	}
	// Cancelling again is a conflict.
	if resp, err = http.Post(hs.URL+"/v1/runs/"+running.ID+"/cancel", "", nil); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("double cancel: status %d, want 409", resp.StatusCode)
	}
}

// TestCheckpointOnDemand: the checkpoint-now endpoint snapshots a running
// run without stopping it, and the snapshot resumes correctly.
func TestCheckpointOnDemand(t *testing.T) {
	dir := t.TempDir()
	s, hs := newTestServer(t, Options{Workers: 1, RunWorkers: 1, Dir: dir})
	spec := Spec{Seed: 5, N: 1024, Rounds: 50_000_000, Shards: 4, StreamEvery: 1}
	info := submit(t, hs, spec)
	waitStatus(t, s, info.ID, StatusRunning)
	resp, err := http.Post(hs.URL+"/v1/runs/"+info.ID+"/checkpoint", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("checkpoint-now: status %d", resp.StatusCode)
	}
	st := &store{dir: dir}
	deadline := time.Now().Add(30 * time.Second)
	for {
		has, err := st.HasCheckpoint(info.ID)
		if err != nil {
			t.Fatal(err)
		}
		if has {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("on-demand checkpoint never appeared")
		}
		time.Sleep(time.Millisecond)
	}
	if run, ok := s.Info(info.ID); !ok || run.Status != StatusRunning {
		t.Fatalf("run stopped by on-demand checkpoint: %+v", run)
	}
}

// TestHealth: the liveness endpoint reports scheduler counters.
func TestHealth(t *testing.T) {
	_, hs := newTestServer(t, Options{Workers: 3})
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var h map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h["status"] != "ok" || h["workers"] != float64(3) {
		t.Fatalf("health: %+v", h)
	}
}

// TestSpecNormalizeDefaults pins the documented defaults.
func TestSpecNormalizeDefaults(t *testing.T) {
	sp := Spec{Seed: 1, N: 100, Rounds: 1000}
	if err := sp.Normalize(250); err != nil {
		t.Fatal(err)
	}
	want := Spec{
		Version: 1, Process: ProcessRBB, Seed: 1, N: 100, M: 100, Rounds: 1000,
		Shards: 1, Init: "one-per-bin", CheckpointEvery: 250, StreamEvery: 3,
		Placement: spec.Placement{Transport: spec.TransportPool, Kernel: "batched"},
	}
	if !reflect.DeepEqual(sp, want) {
		t.Fatalf("normalized:\n got %+v\nwant %+v", sp, want)
	}
	tp := Spec{Process: ProcessTetris, Seed: 1, N: 100, Rounds: 10}
	if err := tp.Normalize(0); err != nil {
		t.Fatal(err)
	}
	if tp.Lambda != 0.75 || tp.M != 0 {
		t.Fatalf("tetris defaults: %+v", tp)
	}
}
