package serve

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/checkpoint"
	"repro/internal/shard"
)

// TestRestartResume is the acceptance gate for the service's crash story:
// a server killed mid-run (Shutdown = the SIGTERM path) snapshots its
// in-flight rbb run, a fresh server over the same data directory resumes
// it, and the completed run is byte-identical — final checkpoint and
// summary — to an uninterrupted run of the same spec. A tetris run queued
// behind it survives the restart too and replays from scratch.
func TestRestartResume(t *testing.T) {
	dir := t.TempDir()
	spec := Spec{Seed: 42, N: 1024, Rounds: 60_000, Shards: 4, Quantiles: []float64{0.5, 0.99}, StreamEvery: 25}
	tetrisSpec := Spec{Process: ProcessTetris, Seed: 43, N: 512, Rounds: 400, Shards: 2}
	opts := Options{Workers: 1, RunWorkers: 1, Dir: dir, CheckpointEvery: 5_000}

	s1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s1.Submit(spec)
	if err != nil {
		t.Fatal(err)
	}
	queuedTetris, err := s1.Submit(tetrisSpec)
	if err != nil {
		t.Fatal(err)
	}
	// Let the run make real progress, then pull the plug.
	waitStatus(t, s1, info.ID, StatusRunning)
	deadline := time.Now().Add(30 * time.Second)
	for {
		got, _ := s1.Info(info.ID)
		if got.Round >= 500 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("run never progressed: %+v", got)
		}
		time.Sleep(time.Millisecond)
	}
	s1.Shutdown()

	cut, _ := s1.Info(info.ID)
	if cut.Status != StatusQueued || cut.Round <= 0 || cut.Round >= spec.Rounds {
		t.Fatalf("after shutdown: %+v", cut)
	}
	st := &store{dir: dir}
	if has, err := st.HasCheckpoint(info.ID); err != nil || !has {
		t.Fatalf("shutdown left no checkpoint (has=%v err=%v)", has, err)
	}
	if tq, _ := s1.Info(queuedTetris.ID); tq.Status != StatusQueued {
		t.Fatalf("queued tetris run after shutdown: %+v", tq)
	}

	// Fresh server over the same directory: both runs complete.
	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	final := waitStatus(t, s2, info.ID, StatusDone)
	if final.Round != spec.Rounds || final.Summary == nil {
		t.Fatalf("resumed run finished wrong: %+v", final)
	}
	tetrisFinal := waitStatus(t, s2, queuedTetris.ID, StatusDone)

	// Oracle: the uninterrupted run, driven exactly as the server drives
	// it (checkpoint.Run with a pipeline), writing its own final snapshot.
	normalized := spec
	if err := normalized.Normalize(opts.CheckpointEvery); err != nil {
		t.Fatal(err)
	}
	loads, err := normalized.MakeLoads()
	if err != nil {
		t.Fatal(err)
	}
	p, err := shard.NewProcess(loads, normalized.Seed, shard.Options{Shards: normalized.Shards})
	if err != nil {
		t.Fatal(err)
	}
	pipe, err := shard.NewPipeline(normalized.Quantiles)
	if err != nil {
		t.Fatal(err)
	}
	refPath := filepath.Join(dir, "reference.ckpt")
	pol := checkpoint.Policy{Path: refPath, Seed: normalized.Seed, Pipeline: pipe}
	if _, _, err := checkpoint.Run(context.Background(), p, normalized.Rounds, pol); err != nil {
		t.Fatal(err)
	}

	refSum := pipe.SummaryFor(p)
	if !reflect.DeepEqual(*final.Summary, refSum) {
		t.Fatalf("resumed summary diverged from uninterrupted run:\n got %+v\nwant %+v", *final.Summary, refSum)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	gotBytes, err := os.ReadFile(st.CheckpointPath(info.ID))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(refBytes, gotBytes) {
		t.Fatal("final checkpoint of the interrupted+resumed run differs from the uninterrupted run")
	}

	// The tetris run replayed from round zero and matches its oracle.
	if !reflect.DeepEqual(*tetrisFinal.Summary, refSummary(t, tetrisSpec)) {
		t.Fatalf("restarted tetris run diverged: %+v", *tetrisFinal.Summary)
	}
}

// TestResumeRejectsForeignCheckpoint: a checkpoint file under a run's id
// that does not match the run's (seed, n, shards) must fail the run, not
// impersonate its result.
func TestResumeRejectsForeignCheckpoint(t *testing.T) {
	dir := t.TempDir()
	// A valid checkpoint of some OTHER run's law.
	p, err := shard.NewProcess(make([]int32, 64), 999, shard.Options{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := p.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	foreign := &checkpoint.Snapshot{Seed: 999, Engine: eng}
	st := &store{dir: dir}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	// The first submission will get id r000001; plant the foreign file
	// there before starting the server.
	if err := checkpoint.WriteFile(st.CheckpointPath("r000001"), foreign); err != nil {
		t.Fatal(err)
	}
	s, err := New(Options{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Shutdown()
	info, err := s.Submit(Spec{Seed: 1, N: 256, Rounds: 50, Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	if info.ID != "r000001" {
		t.Fatalf("expected first id r000001, got %s", info.ID)
	}
	failed := waitStatus(t, s, info.ID, StatusFailed)
	if !strings.Contains(failed.Error, "checkpoint is for") {
		t.Fatalf("wrong failure: %+v", failed)
	}
}

// TestRestartHistory: terminal runs survive a restart as history without
// being re-run.
func TestRestartHistory(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 1, Dir: dir}
	s1, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	info, err := s1.Submit(Spec{Seed: 9, N: 128, Rounds: 20})
	if err != nil {
		t.Fatal(err)
	}
	done := waitStatus(t, s1, info.ID, StatusDone)
	s1.Shutdown()

	s2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Shutdown()
	again, ok := s2.Info(info.ID)
	if !ok || !reflect.DeepEqual(again, done) {
		t.Fatalf("history lost across restart:\n got %+v\nwant %+v", again, done)
	}
	// IDs keep incrementing past restored history.
	next, err := s2.Submit(Spec{Seed: 10, N: 64, Rounds: 5})
	if err != nil {
		t.Fatal(err)
	}
	if next.ID == info.ID {
		t.Fatalf("ID reused after restart: %s", next.ID)
	}
}
