package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"repro/internal/campaign"
	"repro/internal/table"
)

// CampaignInfo is the public state of one campaign. Campaigns are an
// in-memory orchestration layer: every point is an ordinary run (durable,
// cached, resumable through the run machinery), while the campaign record
// itself dies with the process — durable campaign resumability lives in
// cmd/rbb-campaign, whose manifest directory survives restarts.
// Resubmitting a campaign after a restart rides the result cache, so
// completed points cost nothing the second time.
type CampaignInfo struct {
	ID string `json:"id"`
	// Name is the spec's label; LawID is the campaign's law identity
	// (campaign.Plan.ID) — placement- and concurrency-independent.
	Name  string `json:"name,omitempty"`
	LawID string `json:"law_id"`
	// Status is queued|running|done|failed (failed covers any point
	// failure and a server shutdown mid-campaign).
	Status Status `json:"status"`
	// Points is the expanded point count; Done/Failed/Cached count
	// terminal points, Cached the subset of Done answered from the
	// result cache.
	Points int    `json:"points"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	Cached int    `json:"cached"`
	Error  string `json:"error,omitempty"`
}

// CampaignEvent is one line of a campaign's progress stream: a point
// transition plus the campaign's running totals.
type CampaignEvent struct {
	Point  string `json:"point"`
	Index  int    `json:"index"`
	RunID  string `json:"run_id,omitempty"`
	Status string `json:"status"` // running | done | failed
	Cached bool   `json:"cached,omitempty"`
	Done   int    `json:"done"`
	Failed int    `json:"failed"`
	Points int    `json:"points"`
}

// campaignRun is one tracked campaign: public info, per-point states for
// the final aggregation, and the stream fan-out hub (same best-effort
// contract as run's).
type campaignRun struct {
	mu     sync.Mutex
	info   CampaignInfo
	spec   campaign.CampaignSpec
	plan   *campaign.Plan
	states []campaign.PointState
	table  *table.Table
	subs   map[chan []byte]struct{}
}

func newCampaignRun(id string, cs campaign.CampaignSpec, plan *campaign.Plan) *campaignRun {
	c := &campaignRun{
		info: CampaignInfo{ID: id, Name: cs.Name, LawID: plan.ID, Status: StatusQueued, Points: len(plan.Points)},
		spec: cs,
		plan: plan,
		subs: make(map[chan []byte]struct{}),
	}
	for _, pt := range plan.Points {
		c.states = append(c.states, campaign.PointState{
			ID: pt.ID, Index: pt.Index, Coords: pt.Coords, Status: campaign.StatusPending,
		})
	}
	return c
}

// Info returns a copy of the public state.
func (c *campaignRun) Info() CampaignInfo {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.info
}

// Aggregate returns the phase-diagram table, nil until the campaign is
// done.
func (c *campaignRun) Aggregate() *table.Table {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.table
}

// subscribe registers a stream channel, nil when already terminal.
func (c *campaignRun) subscribe() chan []byte {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.info.Status.Terminal() {
		return nil
	}
	ch := make(chan []byte, 64)
	c.subs[ch] = struct{}{}
	return ch
}

func (c *campaignRun) unsubscribe(ch chan []byte) {
	c.mu.Lock()
	if _, ok := c.subs[ch]; ok {
		delete(c.subs, ch)
		close(ch)
	}
	c.mu.Unlock()
}

// transition mutates point i under the lock, refreshes the counters and
// fans the event out to subscribers (best-effort, never blocking the
// driver). cached marks a point completion answered from the result
// cache.
func (c *campaignRun) transition(i int, cached bool, mutate func(*campaign.PointState)) {
	c.mu.Lock()
	mutate(&c.states[i])
	st := c.states[i]
	done, failed := 0, 0
	for j := range c.states {
		switch c.states[j].Status {
		case campaign.StatusDone:
			done++
		case campaign.StatusFailed:
			failed++
		}
	}
	if cached {
		c.info.Cached++
	}
	c.info.Status = StatusRunning
	c.info.Done, c.info.Failed = done, failed
	ev := CampaignEvent{
		Point: st.ID, Index: st.Index, RunID: st.RunID, Status: string(st.Status),
		Cached: cached, Done: done, Failed: failed, Points: c.info.Points,
	}
	blob, _ := json.Marshal(ev)
	for ch := range c.subs {
		select {
		case ch <- blob:
		default: // slow subscriber: drop the sample, never the campaign
		}
	}
	c.mu.Unlock()
}

// finish applies the terminal state and closes every subscriber channel.
func (c *campaignRun) finish(mutate func(*CampaignInfo)) {
	c.mu.Lock()
	mutate(&c.info)
	subs := c.subs
	c.subs = make(map[chan []byte]struct{})
	c.mu.Unlock()
	for ch := range subs {
		close(ch)
	}
}

// SubmitCampaign expands and starts a campaign: its points become
// ordinary submissions (identical law points hit the result cache) driven
// by a goroutine pool bounded by the spec's Concurrency.
func (s *Server) SubmitCampaign(cs campaign.CampaignSpec) (CampaignInfo, error) {
	plan, err := cs.Expand()
	if err != nil {
		return CampaignInfo{}, &badRequestError{err}
	}
	s.mu.Lock()
	s.nextCampaign++
	id := fmt.Sprintf("c%06d", s.nextCampaign)
	c := newCampaignRun(id, cs, plan)
	s.campaigns[id] = c
	s.campaignOrder = append(s.campaignOrder, id)
	s.mu.Unlock()
	s.logger.Info("campaign queued", "id", id, "law_id", plan.ID, "points", len(plan.Points))
	s.wg.Add(1)
	go s.driveCampaign(c)
	return c.Info(), nil
}

// CampaignRunInfo returns the public state of one campaign.
func (s *Server) CampaignRunInfo(id string) (CampaignInfo, bool) {
	s.mu.Lock()
	c, ok := s.campaigns[id]
	s.mu.Unlock()
	if !ok {
		return CampaignInfo{}, false
	}
	return c.Info(), true
}

// Campaigns lists every campaign in submission order.
func (s *Server) Campaigns() []CampaignInfo {
	s.mu.Lock()
	cs := make([]*campaignRun, 0, len(s.campaignOrder))
	for _, id := range s.campaignOrder {
		cs = append(cs, s.campaigns[id])
	}
	s.mu.Unlock()
	out := make([]CampaignInfo, 0, len(cs))
	for _, c := range cs {
		out = append(out, c.Info())
	}
	return out
}

// lookupCampaign returns the campaign with the given id, if any.
func (s *Server) lookupCampaign(id string) (*campaignRun, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	c, ok := s.campaigns[id]
	return c, ok
}

// awaitRun blocks until the run reaches a terminal state or the server
// shuts down, returning the last observed state.
func (s *Server) awaitRun(r *run) RunInfo {
	for {
		ch := r.subscribe()
		if ch == nil {
			return r.Info()
		}
	drain:
		for {
			select {
			case _, open := <-ch:
				if !open {
					break drain
				}
			case <-s.stopCtx.Done():
				r.unsubscribe(ch)
				return r.Info()
			}
		}
		info := r.Info()
		// A non-terminal state after the hub closed means the run was
		// re-queued by a shutdown; with the server stopping there is
		// nothing left to wait for.
		if info.Status.Terminal() || s.stopCtx.Err() != nil {
			return info
		}
	}
}

// driveCampaign executes a campaign's points through the ordinary Submit
// path with a bounded driver pool. Point failures don't stop the
// campaign; a server shutdown does (in-flight point runs snapshot and
// requeue through the run machinery, and the campaign reports failed —
// resubmit after restart to ride the result cache).
func (s *Server) driveCampaign(c *campaignRun) {
	defer s.wg.Done()
	conc := c.spec.Concurrency
	if conc < 1 {
		conc = 1
	}
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if s.stopCtx.Err() != nil {
					continue
				}
				s.driveCampaignPoint(c, i)
			}
		}()
	}
	for i := range c.plan.Points {
		jobs <- i
	}
	close(jobs)
	wg.Wait()

	info := c.Info()
	switch {
	case s.stopCtx.Err() != nil && info.Done+info.Failed < info.Points:
		c.finish(func(ci *CampaignInfo) {
			ci.Status = StatusFailed
			ci.Error = "interrupted by server shutdown (campaign progress is in-memory; resubmit to ride the result cache)"
		})
	case info.Failed > 0:
		c.finish(func(ci *CampaignInfo) {
			ci.Status = StatusFailed
			ci.Error = fmt.Sprintf("%d of %d points failed", info.Failed, info.Points)
		})
	default:
		c.mu.Lock()
		states := append([]campaign.PointState(nil), c.states...)
		c.mu.Unlock()
		tb, err := campaign.Aggregate(c.spec, c.plan, states)
		if err != nil {
			c.finish(func(ci *CampaignInfo) {
				ci.Status = StatusFailed
				ci.Error = fmt.Sprintf("aggregate: %v", err)
			})
			break
		}
		c.mu.Lock()
		c.table = tb
		c.mu.Unlock()
		c.finish(func(ci *CampaignInfo) { ci.Status = StatusDone })
	}
	info = c.Info()
	s.logger.Info("campaign finished", "id", info.ID, "status", string(info.Status),
		"done", info.Done, "failed", info.Failed)
}

// driveCampaignPoint runs one point: submit, await, record. Terminal
// outcomes feed campaign.NotePoint so the serve process exposes the same
// rbb_campaign_points_total / rbb_campaign_point_seconds series as the
// in-process runner.
func (s *Server) driveCampaignPoint(c *campaignRun, i int) {
	pt := c.plan.Points[i]
	start := time.Now()
	info, err := s.Submit(pt.Spec)
	if err != nil {
		campaign.NotePoint(campaign.StatusFailed, false, 0)
		c.transition(i, false, func(st *campaign.PointState) {
			st.Status, st.Error = campaign.StatusFailed, err.Error()
		})
		return
	}
	c.transition(i, false, func(st *campaign.PointState) {
		st.Status, st.RunID = campaign.StatusRunning, info.ID
	})
	r, ok := s.lookup(info.ID)
	if !ok {
		campaign.NotePoint(campaign.StatusFailed, false, 0)
		c.transition(i, false, func(st *campaign.PointState) {
			st.Status, st.Error = campaign.StatusFailed, "run vanished (retention policy evicted it mid-campaign)"
		})
		return
	}
	final := s.awaitRun(r)
	switch {
	case final.Status == StatusDone && final.Summary != nil:
		campaign.NotePoint(campaign.StatusDone, false, time.Since(start).Seconds())
		c.transition(i, final.Cached, func(st *campaign.PointState) {
			st.Status, st.Round = campaign.StatusDone, final.Round
			st.Summary, st.Digest = final.Summary, campaign.SummaryDigest(final.Summary)
		})
	case final.Status.Terminal():
		campaign.NotePoint(campaign.StatusFailed, false, 0)
		c.transition(i, false, func(st *campaign.PointState) {
			st.Status = campaign.StatusFailed
			st.Error = fmt.Sprintf("run %s %s: %s", final.ID, final.Status, final.Error)
		})
	default:
		// Server shutdown re-queued the run; leave the point pending for
		// the terminal accounting (the campaign reports interrupted).
		campaign.NotePoint(campaign.StatusPending, true, 0)
		c.transition(i, false, func(st *campaign.PointState) {
			st.Status, st.Round = campaign.StatusPending, final.Round
		})
	}
}

// --- HTTP handlers ---

func (s *Server) handleCampaignSubmit(w http.ResponseWriter, req *http.Request) {
	var cs campaign.CampaignSpec
	dec := json.NewDecoder(http.MaxBytesReader(w, req.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&cs); err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("bad campaign spec: %v", err))
		return
	}
	info, err := s.SubmitCampaign(cs)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (s *Server) handleCampaignList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Campaigns())
}

func (s *Server) handleCampaignGet(w http.ResponseWriter, req *http.Request) {
	info, ok := s.CampaignRunInfo(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	writeJSON(w, http.StatusOK, info)
}

// handleCampaignAggregate serves the phase-diagram artifact of a done
// campaign in the requested format (?format=json|csv|text, default json).
func (s *Server) handleCampaignAggregate(w http.ResponseWriter, req *http.Request) {
	c, ok := s.lookupCampaign(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	tb := c.Aggregate()
	if tb == nil {
		info := c.Info()
		writeError(w, http.StatusConflict, fmt.Sprintf("campaign is %s (%d/%d points done)", info.Status, info.Done, info.Points))
		return
	}
	format := table.Format(req.URL.Query().Get("format"))
	if format == "" {
		format = table.JSON
	}
	switch format {
	case table.JSON:
		w.Header().Set("Content-Type", "application/json")
	case table.CSV:
		w.Header().Set("Content-Type", "text/csv")
	case table.Text, table.Markdown:
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	default:
		writeError(w, http.StatusBadRequest, fmt.Sprintf("unknown format %q", format))
		return
	}
	w.WriteHeader(http.StatusOK)
	tb.RenderAs(w, format)
}

// handleCampaignStream tails a campaign's per-point progress events:
// NDJSON, or SSE frames under Accept: text/event-stream — the same
// contract as a run's stream, ending with the terminal CampaignInfo.
func (s *Server) handleCampaignStream(w http.ResponseWriter, req *http.Request) {
	c, ok := s.lookupCampaign(req.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown campaign")
		return
	}
	sse := strings.Contains(req.Header.Get("Accept"), "text/event-stream")
	if sse {
		w.Header().Set("Content-Type", "text/event-stream")
	} else {
		w.Header().Set("Content-Type", "application/x-ndjson")
	}
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	// Flush the header frame now: a subscriber must see the stream open
	// before the first event, which can be arbitrarily far away.
	if flusher != nil {
		flusher.Flush()
	}
	writeLine := func(blob []byte) {
		if sse {
			fmt.Fprintf(w, "data: %s\n\n", blob)
		} else {
			w.Write(blob)
			w.Write([]byte("\n"))
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
	ch := c.subscribe()
	if ch != nil {
		defer c.unsubscribe(ch)
	loop:
		for {
			select {
			case blob, open := <-ch:
				if !open {
					break loop
				}
				writeLine(blob)
			case <-req.Context().Done():
				return
			}
		}
	}
	blob, err := json.Marshal(c.Info())
	if err != nil {
		return
	}
	writeLine(blob)
}
