package serve

import (
	"reflect"
	"sync"
	"testing"
)

// TestConcurrentRuns races six runs — four rbb with distinct laws plus a
// tetris and a batches run — over a four-slot scheduler and requires every
// result to match its single-run oracle exactly: the acceptance bar that
// multiplexing cannot perturb any trajectory. Run under -race in CI.
func TestConcurrentRuns(t *testing.T) {
	s, _ := newTestServer(t, Options{Workers: 4, RunWorkers: 1, Dir: t.TempDir(), CheckpointEvery: 500})
	specs := []Spec{
		{Seed: 101, N: 2048, Rounds: 1500, Shards: 1, Quantiles: []float64{0.5}},
		{Seed: 102, N: 2048, Rounds: 1500, Shards: 4, Quantiles: []float64{0.9, 0.99}},
		{Seed: 103, N: 1024, Rounds: 2000, Shards: 8, Init: "all-in-one"},
		{Seed: 104, N: 4096, Rounds: 1000, Shards: 2},
		{Process: ProcessTetris, Seed: 105, N: 1024, Rounds: 1500, Shards: 4},
		{Process: ProcessBatches, Seed: 106, N: 1024, Rounds: 1500, Shards: 2, Lambda: 0.6},
	}
	// Submit from concurrent goroutines too: the registry, queue and
	// manifest writer all see simultaneous traffic. (Submit directly — the
	// HTTP path is exercised elsewhere, and t.Fatal is not goroutine-safe.)
	ids := make([]string, len(specs))
	errs := make([]error, len(specs))
	var wg sync.WaitGroup
	for i, spec := range specs {
		wg.Add(1)
		go func(i int, spec Spec) {
			defer wg.Done()
			info, err := s.Submit(spec)
			ids[i], errs[i] = info.ID, err
		}(i, spec)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	for i, id := range ids {
		final := waitStatus(t, s, id, StatusDone)
		want := refSummary(t, specs[i])
		if final.Summary == nil || !reflect.DeepEqual(*final.Summary, want) {
			t.Errorf("run %d (%s seed %d): summary diverged under concurrency:\n got %+v\nwant %+v",
				i, specs[i].Process, specs[i].Seed, final.Summary, want)
		}
		if final.Round != specs[i].Rounds {
			t.Errorf("run %d: finished at round %d, want %d", i, final.Round, specs[i].Rounds)
		}
	}
}
