package config

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/rng"
)

func TestLegitimateThreshold(t *testing.T) {
	if LegitimateThreshold(1, 4) != 1 {
		t.Error("n=1 threshold should be 1")
	}
	n := 1024
	want := int32(math.Ceil(4 * math.Log(1024)))
	if got := LegitimateThreshold(n, 4); got != want {
		t.Errorf("threshold(1024) = %d, want %d", got, want)
	}
}

func TestIsLegitimate(t *testing.T) {
	n := 256
	if !IsLegitimate(OnePerBin(n)) {
		t.Error("one-per-bin must be legitimate")
	}
	if IsLegitimate(AllInOne(n, n)) {
		t.Error("all-in-one must be illegitimate for n=256")
	}
}

func TestMaxLoadSumEmpty(t *testing.T) {
	loads := []int32{0, 3, 1, 0, 5}
	if MaxLoad(loads) != 5 {
		t.Error("MaxLoad wrong")
	}
	if Sum(loads) != 9 {
		t.Error("Sum wrong")
	}
	if CountEmpty(loads) != 2 {
		t.Error("CountEmpty wrong")
	}
	if MaxLoad(nil) != 0 || Sum(nil) != 0 || CountEmpty(nil) != 0 {
		t.Error("empty slice handling wrong")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int32{1, 2, 3}, 6); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	if err := Validate([]int32{1, 2, 3}, 7); err == nil {
		t.Error("wrong sum accepted")
	}
	if err := Validate([]int32{1, -1, 3}, 3); err == nil {
		t.Error("negative load accepted")
	}
}

func TestOnePerBin(t *testing.T) {
	loads := OnePerBin(100)
	if err := Validate(loads, 100); err != nil {
		t.Fatal(err)
	}
	if MaxLoad(loads) != 1 || CountEmpty(loads) != 0 {
		t.Error("one-per-bin shape wrong")
	}
}

func TestAllInOne(t *testing.T) {
	loads := AllInOne(50, 200)
	if err := Validate(loads, 200); err != nil {
		t.Fatal(err)
	}
	if loads[0] != 200 || CountEmpty(loads) != 49 {
		t.Error("all-in-one shape wrong")
	}
}

func TestKHeavy(t *testing.T) {
	loads, err := KHeavy(10, 25, 4)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(loads, 25); err != nil {
		t.Fatal(err)
	}
	// 25/4 = 6 each, remainder 1 on bin 0.
	if loads[0] != 7 || loads[1] != 6 || loads[3] != 6 || loads[4] != 0 {
		t.Errorf("KHeavy layout wrong: %v", loads[:5])
	}
	if _, err := KHeavy(10, 25, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KHeavy(10, 25, 11); err == nil {
		t.Error("k>n accepted")
	}
}

func TestKHeavyProperty(t *testing.T) {
	if err := quick.Check(func(nRaw, mRaw, kRaw uint8) bool {
		n := int(nRaw)%100 + 1
		m := int(mRaw)
		k := int(kRaw)%n + 1
		loads, err := KHeavy(n, m, k)
		if err != nil {
			return false
		}
		return Validate(loads, m) == nil
	}, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestUniformRandom(t *testing.T) {
	r := rng.New(1)
	loads := UniformRandom(1000, 1000, r)
	if err := Validate(loads, 1000); err != nil {
		t.Fatal(err)
	}
	// Classical one-shot max load for n=1000 is ~O(ln n / ln ln n) ≈ 3-7;
	// anything above 15 would be essentially impossible.
	if m := MaxLoad(loads); m > 15 || m < 2 {
		t.Errorf("uniform max load = %d, implausible", m)
	}
}

func TestZipfSkewedMax(t *testing.T) {
	r := rng.New(2)
	loads, err := Zipf(1000, 1000, 1.5, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(loads, 1000); err != nil {
		t.Fatal(err)
	}
	if MaxLoad(loads) < 50 {
		t.Errorf("Zipf(1.5) max load = %d, expected heavy head", MaxLoad(loads))
	}
}

func TestMake(t *testing.T) {
	r := rng.New(3)
	for _, g := range Generators() {
		n, m := 64, 64
		loads, err := Make(g, n, m, r)
		if err != nil {
			t.Fatalf("Make(%s): %v", g, err)
		}
		if err := Validate(loads, m); err != nil {
			t.Fatalf("Make(%s) invalid: %v", g, err)
		}
	}
}

func TestMakeErrors(t *testing.T) {
	r := rng.New(4)
	if _, err := Make("bogus", 8, 8, r); err == nil {
		t.Error("unknown generator accepted")
	}
	if _, err := Make(GenOnePerBin, 8, 9, r); err == nil {
		t.Error("one-per-bin with m != n accepted")
	}
	if _, err := Make(GenUniform, 8, 8, nil); err == nil {
		t.Error("uniform without rng accepted")
	}
	if _, err := Make(GenAllInOne, 0, 0, nil); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := Make(GenAllInOne, 4, -1, nil); err == nil {
		t.Error("m<0 accepted")
	}
}
