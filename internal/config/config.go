// Package config generates initial load configurations (the "arbitrary"
// starting assignments of the paper) and provides the legitimacy predicate.
//
// A configuration is a vector q of n bin loads with Σq = m. The paper takes
// m = n; the generators accept general m for the §5 open-question
// experiments (E13). A configuration is legitimate when its maximum load is
// at most Beta·ln(n) (Theorem 1's O(log n) with an explicit constant; Beta
// is exported so experiments can report sensitivity to it).
package config

import (
	"fmt"
	"math"

	"repro/internal/dist"
	"repro/internal/rng"
)

// Beta is the default legitimacy constant: a configuration is legitimate
// when max load ≤ Beta·ln n. The paper's Theorem 1 shows stability holds
// with some absolute constant; empirically the window maximum over long
// polynomial windows reaches ≈ 4·ln n (its stationary tail exponent is
// ≈ 0.54, see E07/E11), so Beta = 6 gives a legitimate set the process
// provably-in-practice stays inside while still being Θ(log n).
const Beta = 6.0

// LegitimateThreshold returns the maximum load allowed for a legitimate
// configuration of n bins: ceil(beta * ln n), and at least 1.
func LegitimateThreshold(n int, beta float64) int32 {
	if n < 2 {
		return 1
	}
	t := int32(math.Ceil(beta * math.Log(float64(n))))
	if t < 1 {
		t = 1
	}
	return t
}

// IsLegitimate reports whether loads has maximum load ≤ Beta·ln n with the
// default constant.
func IsLegitimate(loads []int32) bool {
	return MaxLoad(loads) <= LegitimateThreshold(len(loads), Beta)
}

// MaxLoad returns the maximum entry of loads (0 for an empty slice).
func MaxLoad(loads []int32) int32 {
	var max int32
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}

// Sum returns the total number of balls in loads.
func Sum(loads []int32) int64 {
	var s int64
	for _, l := range loads {
		s += int64(l)
	}
	return s
}

// CountEmpty returns the number of zero-load bins.
func CountEmpty(loads []int32) int {
	c := 0
	for _, l := range loads {
		if l == 0 {
			c++
		}
	}
	return c
}

// Validate checks that loads is a well-formed configuration of m balls:
// non-negative entries summing to m.
func Validate(loads []int32, m int) error {
	var s int64
	for i, l := range loads {
		if l < 0 {
			return fmt.Errorf("config: bin %d has negative load %d", i, l)
		}
		s += int64(l)
	}
	if s != int64(m) {
		return fmt.Errorf("config: loads sum to %d, want %d", s, m)
	}
	return nil
}

// OnePerBin returns the perfectly balanced configuration of n balls in n
// bins — the canonical legitimate start for the stability experiments.
func OnePerBin(n int) []int32 {
	loads := make([]int32, n)
	for i := range loads {
		loads[i] = 1
	}
	return loads
}

// AllInOne returns the worst-case configuration: all m balls in bin 0.
// This is the adversarial start for the convergence experiments (Theorem
// 1(b), Lemma 4).
func AllInOne(n, m int) []int32 {
	loads := make([]int32, n)
	if n > 0 {
		loads[0] = int32(m)
	}
	return loads
}

// KHeavy splits m balls evenly over the first k bins (remainder on bin 0):
// an interpolation between AllInOne (k=1) and balanced (k=n).
func KHeavy(n, m, k int) ([]int32, error) {
	if k < 1 || k > n {
		return nil, fmt.Errorf("config: KHeavy k = %d outside [1, %d]", k, n)
	}
	loads := make([]int32, n)
	per := m / k
	rem := m % k
	for i := 0; i < k; i++ {
		loads[i] = int32(per)
	}
	loads[0] += int32(rem)
	return loads, nil
}

// UniformRandom throws m balls independently and uniformly at random into n
// bins — the classical one-shot balls-into-bins configuration, whose max
// load is Θ(log n / log log n) w.h.p. for m = n.
func UniformRandom(n, m int, r *rng.Source) []int32 {
	loads := make([]int32, n)
	for i := 0; i < m; i++ {
		loads[r.Intn(n)]++
	}
	return loads
}

// Zipf throws m balls into n bins with bin popularity following a Zipf(s)
// law over a random permutation of the bins: a skewed but not degenerate
// illegitimate start.
func Zipf(n, m int, s float64, r *rng.Source) ([]int32, error) {
	z, err := dist.NewZipf(n, s)
	if err != nil {
		return nil, err
	}
	perm := r.Perm(n)
	loads := make([]int32, n)
	for i := 0; i < m; i++ {
		loads[perm[z.Sample(r)]]++
	}
	return loads, nil
}

// Generator names a configuration family; used by CLI flags and the
// experiment definitions.
type Generator string

// Supported generators.
const (
	GenOnePerBin Generator = "one-per-bin"
	GenAllInOne  Generator = "all-in-one"
	GenUniform   Generator = "uniform"
	GenZipf      Generator = "zipf"
)

// Generators lists the supported generator names.
func Generators() []Generator {
	return []Generator{GenOnePerBin, GenAllInOne, GenUniform, GenZipf}
}

// Make builds a configuration of m balls in n bins from a named generator.
// r may be nil for the deterministic generators.
func Make(g Generator, n, m int, r *rng.Source) ([]int32, error) {
	if n < 1 {
		return nil, fmt.Errorf("config: n = %d < 1", n)
	}
	if m < 0 {
		return nil, fmt.Errorf("config: m = %d < 0", m)
	}
	switch g {
	case GenOnePerBin:
		if m != n {
			return nil, fmt.Errorf("config: %s requires m == n (got m=%d n=%d)", g, m, n)
		}
		return OnePerBin(n), nil
	case GenAllInOne:
		return AllInOne(n, m), nil
	case GenUniform:
		if r == nil {
			return nil, fmt.Errorf("config: %s requires a random source", g)
		}
		return UniformRandom(n, m, r), nil
	case GenZipf:
		if r == nil {
			return nil, fmt.Errorf("config: %s requires a random source", g)
		}
		return Zipf(n, m, 1.2, r)
	default:
		return nil, fmt.Errorf("config: unknown generator %q", g)
	}
}
