// Package sim runs independent simulation trials, in parallel across
// GOMAXPROCS, with fully deterministic results: trial i always receives the
// generator rng.NewStream(seed, i), so the aggregate is a pure function of
// (seed, trials) regardless of scheduling or worker count.
package sim

import (
	"errors"
	"fmt"
	"runtime"
	"sync"

	"repro/internal/rng"
	"repro/internal/stats"
)

// Trial computes one independent replication. It receives the trial index
// and a private random source, and returns one or more named metric values
// (the same length for every trial).
type Trial func(trial int, src *rng.Source) ([]float64, error)

// Result aggregates a metric column across trials.
type Result struct {
	// Name of the metric (from the Spec).
	Name string
	// Summary over the trials.
	Summary stats.Summary
	// Values holds the per-trial observations in trial order.
	Values []float64
}

// Spec describes a batch of trials.
type Spec struct {
	// Trials is the number of replications (>= 1).
	Trials int
	// Seed is the master seed; trial i uses rng.NewStream(Seed, i).
	Seed uint64
	// Metrics names the columns returned by the Trial function.
	Metrics []string
	// Parallelism caps the worker count; 0 means GOMAXPROCS.
	Parallelism int
	// Progress, if non-nil, receives a liveness update after each trial
	// finishes (huge sweeps take minutes per trial; this is how they
	// report that they are alive). done counts completed trials — it
	// increments by one per call, reaching total on the last — and calls
	// are serialized, though they may originate from any worker goroutine
	// and trials complete in no particular order. The callback must not
	// call back into the running batch. Trials restored from a Checkpoint
	// file are counted as already done (the first callback of a resumed
	// batch starts above the restored count).
	Progress func(done, total int)
	// Checkpoint, if non-nil with a non-empty Path, makes the batch
	// resumable at trial granularity: completed rows are persisted after
	// every trial and a rerun of the identical spec skips them. The
	// aggregate of a resumed batch is bit-identical to the uninterrupted
	// one (trial i's stream depends only on (Seed, i)).
	Checkpoint *Checkpoint
}

// Run executes the spec. All trials run even if some fail; the first error
// (by trial index) is returned, with no results.
func Run(spec Spec, fn Trial) ([]Result, error) {
	if fn == nil {
		return nil, errors.New("sim: Run with nil trial function")
	}
	if spec.Trials < 1 {
		return nil, fmt.Errorf("sim: Trials = %d < 1", spec.Trials)
	}
	if len(spec.Metrics) == 0 {
		return nil, errors.New("sim: no metrics declared")
	}
	workers := spec.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > spec.Trials {
		workers = spec.Trials
	}

	nm := len(spec.Metrics)
	values := make([][]float64, nm)
	for i := range values {
		values[i] = make([]float64, spec.Trials)
	}
	errs := make([]error, spec.Trials)

	var ckpt *ckptState
	restored := map[int][]float64{}
	if spec.Checkpoint != nil && spec.Checkpoint.Path != "" {
		var err error
		ckpt, restored, err = loadProgress(spec)
		if err != nil {
			return nil, err
		}
		for t, row := range restored {
			for i, v := range row {
				values[i][t] = v
			}
		}
	}

	var (
		wg         sync.WaitGroup
		progressMu sync.Mutex
		completed  = len(restored)
	)
	report := func() {
		if spec.Progress == nil {
			return
		}
		progressMu.Lock()
		completed++
		spec.Progress(completed, spec.Trials)
		progressMu.Unlock()
	}
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for t := range next {
				src := rng.NewStream(spec.Seed, uint64(t))
				row, err := fn(t, src)
				if err != nil {
					errs[t] = err
					report()
					continue
				}
				if len(row) != nm {
					errs[t] = fmt.Errorf("sim: trial %d returned %d metrics, want %d", t, len(row), nm)
					report()
					continue
				}
				for i, v := range row {
					values[i][t] = v
				}
				if ckpt != nil {
					if err := ckpt.record(t, row); err != nil {
						errs[t] = err
					}
				}
				report()
			}
		}()
	}
	for t := 0; t < spec.Trials; t++ {
		if _, done := restored[t]; done {
			continue
		}
		next <- t
	}
	close(next)
	wg.Wait()

	for t, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sim: trial %d failed: %w", t, err)
		}
	}
	out := make([]Result, nm)
	for i, name := range spec.Metrics {
		out[i] = Result{
			Name:    name,
			Summary: stats.Summarize(values[i]),
			Values:  values[i],
		}
	}
	return out, nil
}

// RunScalar is a convenience wrapper for single-metric trials.
func RunScalar(trials int, seed uint64, name string, fn func(trial int, src *rng.Source) (float64, error)) (Result, error) {
	results, err := Run(Spec{Trials: trials, Seed: seed, Metrics: []string{name}},
		func(t int, src *rng.Source) ([]float64, error) {
			v, err := fn(t, src)
			if err != nil {
				return nil, err
			}
			return []float64{v}, nil
		})
	if err != nil {
		return Result{}, err
	}
	return results[0], nil
}
