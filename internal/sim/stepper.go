package sim

import (
	"repro/internal/engine"
	"repro/internal/rng"
)

// StepperBuilder constructs a fresh process for one trial, seeded from the
// trial's private source. Every engine in this repository satisfies
// engine.Stepper, so one builder signature covers them all.
type StepperBuilder func(trial int, src *rng.Source) (engine.Stepper, error)

// WindowMax runs trials of the most common experiment shape — build a
// process, advance it window rounds, report the running maximum load
// (the M_T statistic of Theorem 1(a)) — and aggregates the results.
func WindowMax(trials int, seed uint64, window int64, build StepperBuilder) (Result, error) {
	return RunScalar(trials, seed, "windowmax", func(t int, src *rng.Source) (float64, error) {
		s, err := build(t, src)
		if err != nil {
			return 0, err
		}
		var wm engine.WindowMax
		engine.Run(s, window, &wm)
		return float64(wm.Max()), nil
	})
}
