package sim

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	fn := func(trial int, src *rng.Source) ([]float64, error) {
		// A value that depends on both the trial stream and some work.
		s := 0.0
		for i := 0; i < 100; i++ {
			s += src.Float64()
		}
		return []float64{s, float64(trial)}, nil
	}
	run := func(par int) []Result {
		res, err := Run(Spec{Trials: 40, Seed: 7, Metrics: []string{"sum", "idx"}, Parallelism: par}, fn)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for m := range a {
		for i := range a[m].Values {
			if a[m].Values[i] != b[m].Values[i] {
				t.Fatalf("metric %d trial %d differs across parallelism", m, i)
			}
		}
	}
}

func TestRunTrialIndexing(t *testing.T) {
	res, err := Run(Spec{Trials: 10, Seed: 1, Metrics: []string{"idx"}},
		func(trial int, _ *rng.Source) ([]float64, error) {
			return []float64{float64(trial)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res[0].Values {
		if v != float64(i) {
			t.Fatalf("trial %d wrote %v", i, v)
		}
	}
	if res[0].Summary.N != 10 || res[0].Summary.Mean != 4.5 {
		t.Fatalf("summary wrong: %+v", res[0].Summary)
	}
}

func TestRunStreamsDiffer(t *testing.T) {
	res, err := Run(Spec{Trials: 8, Seed: 3, Metrics: []string{"first"}},
		func(_ int, src *rng.Source) ([]float64, error) {
			return []float64{src.Float64()}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range res[0].Values {
		if seen[v] {
			t.Fatal("two trials produced the same first draw; streams not independent")
		}
		seen[v] = true
	}
}

func TestProgressReportsEveryTrial(t *testing.T) {
	const trials = 23
	var (
		mu    sync.Mutex
		dones []int
	)
	_, err := Run(Spec{
		Trials:      trials,
		Seed:        9,
		Metrics:     []string{"x"},
		Parallelism: 4,
		Progress: func(done, total int) {
			if total != trials {
				t.Errorf("total = %d, want %d", total, trials)
			}
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
		},
	}, func(trial int, src *rng.Source) ([]float64, error) {
		return []float64{float64(trial)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != trials {
		t.Fatalf("progress called %d times, want %d", len(dones), trials)
	}
	// The callback is serialized around the shared counter, so the done
	// values must be exactly 1..trials in order of invocation.
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("dones[%d] = %d, want %d (got %v)", i, d, i+1, dones)
		}
	}
}

func TestProgressReportsFailedTrials(t *testing.T) {
	calls := 0
	_, err := Run(Spec{
		Trials:      5,
		Seed:        1,
		Metrics:     []string{"x"},
		Parallelism: 1,
		Progress:    func(done, total int) { calls++ },
	}, func(trial int, src *rng.Source) ([]float64, error) {
		if trial == 2 {
			return nil, errors.New("boom")
		}
		return []float64{1}, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	// All trials run even when some fail; each must still report.
	if calls != 5 {
		t.Fatalf("progress called %d times, want 5", calls)
	}
}

func TestRunErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Spec{Trials: 5, Seed: 1, Metrics: []string{"x"}},
		func(trial int, _ *rng.Source) ([]float64, error) {
			if trial == 3 {
				return nil, boom
			}
			return []float64{1}, nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	ok := func(int, *rng.Source) ([]float64, error) { return []float64{1}, nil }
	if _, err := Run(Spec{Trials: 0, Seed: 1, Metrics: []string{"x"}}, ok); err == nil {
		t.Error("0 trials accepted")
	}
	if _, err := Run(Spec{Trials: 1, Seed: 1}, ok); err == nil {
		t.Error("no metrics accepted")
	}
	if _, err := Run(Spec{Trials: 1, Seed: 1, Metrics: []string{"x"}}, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := Run(Spec{Trials: 1, Seed: 1, Metrics: []string{"x", "y"}},
		func(int, *rng.Source) ([]float64, error) { return []float64{1}, nil }); err == nil {
		t.Error("metric arity mismatch accepted")
	}
}

func TestRunScalar(t *testing.T) {
	res, err := RunScalar(6, 9, "val", func(trial int, _ *rng.Source) (float64, error) {
		return float64(trial * 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "val" || res.Summary.N != 6 || res.Summary.Max != 10 {
		t.Fatalf("scalar result wrong: %+v", res.Summary)
	}
}

func TestRunScalarError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := RunScalar(2, 1, "v", func(int, *rng.Source) (float64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatal("scalar error not propagated")
	}
}

func TestCheckpointResume(t *testing.T) {
	const trials = 12
	path := filepath.Join(t.TempDir(), "progress.json")
	spec := Spec{
		Trials:  trials,
		Seed:    77,
		Metrics: []string{"a", "b"},
	}
	trial := func(t int, src *rng.Source) ([]float64, error) {
		return []float64{float64(t) + src.Float64(), src.Float64()}, nil
	}
	// Reference: the uninterrupted batch, no checkpoint.
	want, err := Run(spec, trial)
	if err != nil {
		t.Fatal(err)
	}
	// First attempt dies on trial 7 after some trials persisted.
	spec.Checkpoint = &Checkpoint{Path: path}
	failing := func(tr int, src *rng.Source) ([]float64, error) {
		if tr == 7 {
			return nil, errors.New("injected crash")
		}
		return trial(tr, src)
	}
	if _, err := Run(spec, failing); err == nil {
		t.Fatal("injected failure not reported")
	}
	// Resume: only the missing trials run, and the aggregate is
	// bit-identical to the uninterrupted batch.
	var ran []int
	var mu sync.Mutex
	counting := func(tr int, src *rng.Source) ([]float64, error) {
		mu.Lock()
		ran = append(ran, tr)
		mu.Unlock()
		return trial(tr, src)
	}
	got, err := Run(spec, counting)
	if err != nil {
		t.Fatal(err)
	}
	if len(ran) >= trials {
		t.Fatalf("resume re-ran all %d trials", len(ran))
	}
	found := false
	for _, tr := range ran {
		if tr == 7 {
			found = true
		}
	}
	if !found {
		t.Fatal("resume skipped the failed trial")
	}
	for i := range want {
		for tr := range want[i].Values {
			if want[i].Values[tr] != got[i].Values[tr] {
				t.Fatalf("metric %d trial %d: %v vs %v", i, tr, got[i].Values[tr], want[i].Values[tr])
			}
		}
	}
	// A finished batch resumes to zero work.
	ran = nil
	if _, err := Run(spec, counting); err != nil {
		t.Fatal(err)
	}
	if len(ran) != 0 {
		t.Fatalf("finished batch re-ran %d trials", len(ran))
	}
}

func TestCheckpointProgressCountsRestored(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.json")
	spec := Spec{
		Trials:     6,
		Seed:       1,
		Metrics:    []string{"v"},
		Checkpoint: &Checkpoint{Path: path},
	}
	ok := func(tr int, src *rng.Source) ([]float64, error) { return []float64{float64(tr)}, nil }
	if _, err := Run(spec, ok); err != nil {
		t.Fatal(err)
	}
	// Wipe two trials from the file to force a partial resume.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var f map[string]any
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatal(err)
	}
	done := f["done"].(map[string]any)
	delete(done, "2")
	delete(done, "5")
	data, err = json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var first, calls int
	spec.Progress = func(done, total int) {
		if calls == 0 {
			first = done
		}
		calls++
		if total != 6 {
			t.Errorf("total %d, want 6", total)
		}
	}
	if _, err := Run(spec, ok); err != nil {
		t.Fatal(err)
	}
	if calls != 2 || first != 5 {
		t.Fatalf("progress calls=%d first done=%d, want 2 calls starting at 5", calls, first)
	}
}

func TestCheckpointSpecMismatch(t *testing.T) {
	path := filepath.Join(t.TempDir(), "progress.json")
	spec := Spec{
		Trials:     3,
		Seed:       9,
		Metrics:    []string{"v"},
		Checkpoint: &Checkpoint{Path: path},
	}
	ok := func(tr int, src *rng.Source) ([]float64, error) { return []float64{1}, nil }
	if _, err := Run(spec, ok); err != nil {
		t.Fatal(err)
	}
	for name, bad := range map[string]Spec{
		"seed":    {Trials: 3, Seed: 10, Metrics: []string{"v"}},
		"trials":  {Trials: 4, Seed: 9, Metrics: []string{"v"}},
		"metrics": {Trials: 3, Seed: 9, Metrics: []string{"w"}},
	} {
		bad.Checkpoint = &Checkpoint{Path: path}
		if _, err := Run(bad, ok); err == nil {
			t.Errorf("%s mismatch accepted", name)
		}
	}
	// Corrupt JSON is rejected, not silently restarted.
	if err := os.WriteFile(path, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Run(spec, ok); err == nil {
		t.Error("corrupt progress file accepted")
	}
}
