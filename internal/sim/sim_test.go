package sim

import (
	"errors"
	"sync"
	"testing"

	"repro/internal/rng"
)

func TestRunDeterministicAcrossParallelism(t *testing.T) {
	fn := func(trial int, src *rng.Source) ([]float64, error) {
		// A value that depends on both the trial stream and some work.
		s := 0.0
		for i := 0; i < 100; i++ {
			s += src.Float64()
		}
		return []float64{s, float64(trial)}, nil
	}
	run := func(par int) []Result {
		res, err := Run(Spec{Trials: 40, Seed: 7, Metrics: []string{"sum", "idx"}, Parallelism: par}, fn)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(1), run(8)
	for m := range a {
		for i := range a[m].Values {
			if a[m].Values[i] != b[m].Values[i] {
				t.Fatalf("metric %d trial %d differs across parallelism", m, i)
			}
		}
	}
}

func TestRunTrialIndexing(t *testing.T) {
	res, err := Run(Spec{Trials: 10, Seed: 1, Metrics: []string{"idx"}},
		func(trial int, _ *rng.Source) ([]float64, error) {
			return []float64{float64(trial)}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range res[0].Values {
		if v != float64(i) {
			t.Fatalf("trial %d wrote %v", i, v)
		}
	}
	if res[0].Summary.N != 10 || res[0].Summary.Mean != 4.5 {
		t.Fatalf("summary wrong: %+v", res[0].Summary)
	}
}

func TestRunStreamsDiffer(t *testing.T) {
	res, err := Run(Spec{Trials: 8, Seed: 3, Metrics: []string{"first"}},
		func(_ int, src *rng.Source) ([]float64, error) {
			return []float64{src.Float64()}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[float64]bool{}
	for _, v := range res[0].Values {
		if seen[v] {
			t.Fatal("two trials produced the same first draw; streams not independent")
		}
		seen[v] = true
	}
}

func TestProgressReportsEveryTrial(t *testing.T) {
	const trials = 23
	var (
		mu    sync.Mutex
		dones []int
	)
	_, err := Run(Spec{
		Trials:      trials,
		Seed:        9,
		Metrics:     []string{"x"},
		Parallelism: 4,
		Progress: func(done, total int) {
			if total != trials {
				t.Errorf("total = %d, want %d", total, trials)
			}
			mu.Lock()
			dones = append(dones, done)
			mu.Unlock()
		},
	}, func(trial int, src *rng.Source) ([]float64, error) {
		return []float64{float64(trial)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(dones) != trials {
		t.Fatalf("progress called %d times, want %d", len(dones), trials)
	}
	// The callback is serialized around the shared counter, so the done
	// values must be exactly 1..trials in order of invocation.
	for i, d := range dones {
		if d != i+1 {
			t.Fatalf("dones[%d] = %d, want %d (got %v)", i, d, i+1, dones)
		}
	}
}

func TestProgressReportsFailedTrials(t *testing.T) {
	calls := 0
	_, err := Run(Spec{
		Trials:      5,
		Seed:        1,
		Metrics:     []string{"x"},
		Parallelism: 1,
		Progress:    func(done, total int) { calls++ },
	}, func(trial int, src *rng.Source) ([]float64, error) {
		if trial == 2 {
			return nil, errors.New("boom")
		}
		return []float64{1}, nil
	})
	if err == nil {
		t.Fatal("error not propagated")
	}
	// All trials run even when some fail; each must still report.
	if calls != 5 {
		t.Fatalf("progress called %d times, want 5", calls)
	}
}

func TestRunErrorPropagates(t *testing.T) {
	boom := errors.New("boom")
	_, err := Run(Spec{Trials: 5, Seed: 1, Metrics: []string{"x"}},
		func(trial int, _ *rng.Source) ([]float64, error) {
			if trial == 3 {
				return nil, boom
			}
			return []float64{1}, nil
		})
	if err == nil || !errors.Is(err, boom) {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestRunValidation(t *testing.T) {
	ok := func(int, *rng.Source) ([]float64, error) { return []float64{1}, nil }
	if _, err := Run(Spec{Trials: 0, Seed: 1, Metrics: []string{"x"}}, ok); err == nil {
		t.Error("0 trials accepted")
	}
	if _, err := Run(Spec{Trials: 1, Seed: 1}, ok); err == nil {
		t.Error("no metrics accepted")
	}
	if _, err := Run(Spec{Trials: 1, Seed: 1, Metrics: []string{"x"}}, nil); err == nil {
		t.Error("nil fn accepted")
	}
	if _, err := Run(Spec{Trials: 1, Seed: 1, Metrics: []string{"x", "y"}},
		func(int, *rng.Source) ([]float64, error) { return []float64{1}, nil }); err == nil {
		t.Error("metric arity mismatch accepted")
	}
}

func TestRunScalar(t *testing.T) {
	res, err := RunScalar(6, 9, "val", func(trial int, _ *rng.Source) (float64, error) {
		return float64(trial * 2), nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Name != "val" || res.Summary.N != 6 || res.Summary.Max != 10 {
		t.Fatalf("scalar result wrong: %+v", res.Summary)
	}
}

func TestRunScalarError(t *testing.T) {
	boom := errors.New("boom")
	if _, err := RunScalar(2, 1, "v", func(int, *rng.Source) (float64, error) {
		return 0, boom
	}); !errors.Is(err, boom) {
		t.Fatal("scalar error not propagated")
	}
}
