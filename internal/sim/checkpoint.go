package sim

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"sync"

	"repro/internal/atomicio"
)

// Checkpoint is the batch-level resume policy: with it set, Run persists
// every completed trial's metric row to a progress file, and a later Run of
// the same spec skips those trials. Because trial i always draws from
// rng.NewStream(Seed, i), per-trial results are independent of execution
// order, so a resumed batch aggregates to exactly the numbers the
// uninterrupted batch would have produced — the engine-level analogue lives
// in internal/checkpoint; this is the sweep-level rung.
type Checkpoint struct {
	// Path of the progress file. It is rewritten atomically (temp file +
	// rename) after each completed trial, so a kill mid-sweep loses at most
	// the trials still in flight.
	Path string
}

// progressFile is the serialized form: the spec identity (validated on
// resume — resuming under a different seed, trial count or metric set is an
// error, not a silent mix) plus the completed rows. Values are stored as
// shortest-round-trip strings, which reproduce every float64 bit pattern
// including infinities.
type progressFile struct {
	Seed    uint64           `json:"seed"`
	Trials  int              `json:"trials"`
	Metrics []string         `json:"metrics"`
	Done    map[int][]string `json:"done"`
}

// ckptState is the live progress tracker shared by the worker goroutines.
type ckptState struct {
	mu   sync.Mutex
	path string
	file progressFile
}

// loadProgress reads an existing progress file (absent is fine: a fresh
// sweep) and validates it against the spec.
func loadProgress(spec Spec) (*ckptState, map[int][]float64, error) {
	c := &ckptState{
		path: spec.Checkpoint.Path,
		file: progressFile{
			Seed:    spec.Seed,
			Trials:  spec.Trials,
			Metrics: append([]string(nil), spec.Metrics...),
			Done:    make(map[int][]string),
		},
	}
	data, err := os.ReadFile(c.path)
	if err != nil {
		if os.IsNotExist(err) {
			return c, nil, nil
		}
		return nil, nil, fmt.Errorf("sim: checkpoint: %w", err)
	}
	var f progressFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, nil, fmt.Errorf("sim: checkpoint %s: %w", c.path, err)
	}
	if f.Seed != spec.Seed || f.Trials != spec.Trials {
		return nil, nil, fmt.Errorf("sim: checkpoint %s is for seed=%d trials=%d, spec wants seed=%d trials=%d",
			c.path, f.Seed, f.Trials, spec.Seed, spec.Trials)
	}
	if len(f.Metrics) != len(spec.Metrics) {
		return nil, nil, fmt.Errorf("sim: checkpoint %s tracks %d metrics, spec wants %d", c.path, len(f.Metrics), len(spec.Metrics))
	}
	for i, name := range spec.Metrics {
		if f.Metrics[i] != name {
			return nil, nil, fmt.Errorf("sim: checkpoint %s metric %d is %q, spec wants %q", c.path, i, f.Metrics[i], name)
		}
	}
	restored := make(map[int][]float64, len(f.Done))
	for t, row := range f.Done {
		if t < 0 || t >= spec.Trials {
			return nil, nil, fmt.Errorf("sim: checkpoint %s has trial %d outside [0, %d)", c.path, t, spec.Trials)
		}
		if len(row) != len(spec.Metrics) {
			return nil, nil, fmt.Errorf("sim: checkpoint %s trial %d has %d values, want %d", c.path, t, len(row), len(spec.Metrics))
		}
		vals := make([]float64, len(row))
		for i, s := range row {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil {
				return nil, nil, fmt.Errorf("sim: checkpoint %s trial %d value %q: %w", c.path, t, s, err)
			}
			vals[i] = v
		}
		restored[t] = vals
		c.file.Done[t] = row
	}
	return c, restored, nil
}

// record persists one completed trial. It is called from worker goroutines;
// the write is serialized and atomic.
func (c *ckptState) record(t int, row []float64) error {
	enc := make([]string, len(row))
	for i, v := range row {
		enc[i] = strconv.FormatFloat(v, 'g', -1, 64)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.file.Done[t] = enc
	data, err := json.Marshal(&c.file)
	if err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	if err := atomicio.WriteFile(c.path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	}); err != nil {
		return fmt.Errorf("sim: checkpoint: %w", err)
	}
	return nil
}
