// Package atomicio provides crash-safe file replacement, the single
// durability policy shared by every checkpoint writer in the repository
// (the binary run snapshots of internal/checkpoint and the JSON trial
// progress of internal/sim).
package atomicio

import (
	"io"
	"os"
	"path/filepath"
)

// WriteFile atomically replaces path with the bytes produced by write: the
// data goes to a temporary file in the same directory, is fsynced, and the
// file is renamed over path. A crash at any point leaves either the old
// file or the complete new one, never a torn or empty file.
func WriteFile(path string, write func(io.Writer) error) error {
	f, err := os.CreateTemp(filepath.Dir(path), filepath.Base(path)+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := write(f); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}
