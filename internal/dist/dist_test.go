package dist

import (
	"math"
	"testing"

	"repro/internal/rng"
)

// TestBinomialPMFNormalization checks Σ_k P(X=k) = 1 and the closed-form
// mean Σ k·P(X=k) = np across parameter corners.
func TestBinomialPMFNormalization(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{1, 0.5}, {10, 0.1}, {64, 1.0 / 64}, {768, 1.0 / 1024}, {1000, 0.75}, {5000, 0.999},
	} {
		var sum, mean float64
		for k := 0; k <= tc.n; k++ {
			pk := BinomialPMF(tc.n, tc.p, k)
			if pk < 0 {
				t.Fatalf("n=%d p=%v k=%d: negative PMF %v", tc.n, tc.p, k, pk)
			}
			sum += pk
			mean += float64(k) * pk
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("n=%d p=%v: PMF sums to %v", tc.n, tc.p, sum)
		}
		if want := float64(tc.n) * tc.p; math.Abs(mean-want) > 1e-6*(1+want) {
			t.Errorf("n=%d p=%v: PMF mean %v, want %v", tc.n, tc.p, mean, want)
		}
	}
	if BinomialPMF(10, 0.3, -1) != 0 || BinomialPMF(10, 0.3, 11) != 0 {
		t.Error("PMF outside support not zero")
	}
	if BinomialPMF(10, 0, 0) != 1 || BinomialPMF(10, 1, 10) != 1 {
		t.Error("degenerate PMFs wrong")
	}
}

// TestPoissonPMFNormalization checks the Poisson PMF sums to 1 over the
// effective support.
func TestPoissonPMFNormalization(t *testing.T) {
	for _, mean := range []float64{0.1, 1, 7.5, 100, 768} {
		var sum float64
		hi := int(mean + 20*math.Sqrt(mean) + 40)
		for k := 0; k <= hi; k++ {
			sum += PoissonPMF(mean, k)
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Errorf("mean=%v: PMF sums to %v", mean, sum)
		}
	}
	if PoissonPMF(0, 0) != 1 || PoissonPMF(0, 1) != 0 {
		t.Error("Poisson(0) PMF wrong")
	}
}

// TestBinomialSampleMoments checks the sampler's empirical mean and
// variance against np and np(1−p); tolerances are ~6 standard errors.
func TestBinomialSampleMoments(t *testing.T) {
	for _, tc := range []struct {
		n int
		p float64
	}{
		{768, 1.0 / 1024}, {64, 1.0 / 64}, {100, 0.3}, {10, 0.9},
	} {
		b, err := NewBinomial(tc.n, tc.p)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 200000
		r := rng.New(uint64(42 + tc.n))
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			x := float64(b.Sample(r))
			sum += x
			sumSq += x * x
		}
		mean := sum / samples
		variance := sumSq/samples - mean*mean
		se := math.Sqrt(b.Variance() / samples)
		if math.Abs(mean-b.Mean()) > 6*se+1e-9 {
			t.Errorf("Binomial(%d, %v): mean %v, want %v", tc.n, tc.p, mean, b.Mean())
		}
		if relErr := math.Abs(variance-b.Variance()) / b.Variance(); relErr > 0.05 {
			t.Errorf("Binomial(%d, %v): variance %v, want %v", tc.n, tc.p, variance, b.Variance())
		}
	}
}

// TestPoissonSampleMoments checks the Poisson sampler's mean and variance
// against λ.
func TestPoissonSampleMoments(t *testing.T) {
	for _, mean := range []float64{0.75, 7.5, 921.6} {
		p, err := NewPoisson(mean)
		if err != nil {
			t.Fatal(err)
		}
		const samples = 100000
		r := rng.New(uint64(1000 * mean))
		var sum, sumSq float64
		for i := 0; i < samples; i++ {
			x := float64(p.Sample(r))
			sum += x
			sumSq += x * x
		}
		m := sum / samples
		v := sumSq/samples - m*m
		se := math.Sqrt(mean / samples)
		if math.Abs(m-mean) > 6*se {
			t.Errorf("Poisson(%v): mean %v", mean, m)
		}
		if relErr := math.Abs(v-mean) / mean; relErr > 0.05 {
			t.Errorf("Poisson(%v): variance %v", mean, v)
		}
	}
}

// TestZipfFrequencies checks the sampled rank frequencies track the
// (k+1)^−s law, and that s = 0 degenerates to uniform.
func TestZipfFrequencies(t *testing.T) {
	const n = 16
	const s = 1.2
	z, err := NewZipf(n, s)
	if err != nil {
		t.Fatal(err)
	}
	if z.N() != n || z.S() != s {
		t.Fatal("accessors wrong")
	}
	var norm float64
	for k := 1; k <= n; k++ {
		norm += math.Pow(float64(k), -s)
	}
	const samples = 400000
	r := rng.New(7)
	counts := make([]int, n)
	for i := 0; i < samples; i++ {
		counts[z.Sample(r)]++
	}
	for k := 0; k < n; k++ {
		want := math.Pow(float64(k+1), -s) / norm
		got := float64(counts[k]) / samples
		se := math.Sqrt(want * (1 - want) / samples)
		if math.Abs(got-want) > 6*se {
			t.Errorf("rank %d: frequency %v, want %v", k, got, want)
		}
	}

	u, err := NewZipf(4, 0)
	if err != nil {
		t.Fatal(err)
	}
	uc := make([]int, 4)
	for i := 0; i < 40000; i++ {
		uc[u.Sample(r)]++
	}
	for k, c := range uc {
		if c < 9000 || c > 11000 {
			t.Errorf("s=0 rank %d count %d not ≈ uniform", k, c)
		}
	}
}

// TestDeterministicReplay pins the draw protocol: reseeding the source
// replays the identical sample sequence (each Sample consumes exactly two
// draws), which the golden trajectory tests depend on.
func TestDeterministicReplay(t *testing.T) {
	b, err := NewBinomial(768, 1.0/1024)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewPoisson(48)
	if err != nil {
		t.Fatal(err)
	}
	z, err := NewZipf(100, 1.1)
	if err != nil {
		t.Fatal(err)
	}
	draw := func(r *rng.Source) []int {
		out := make([]int, 0, 300)
		for i := 0; i < 100; i++ {
			out = append(out, b.Sample(r), p.Sample(r), z.Sample(r))
		}
		return out
	}
	a := draw(rng.New(12345))
	c := draw(rng.New(12345))
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("replay diverged at draw %d: %d vs %d", i, a[i], c[i])
		}
	}
	// Two draws per sample: interleaving with a raw source must stay in
	// lockstep with a manually advanced twin.
	r1, r2 := rng.New(9), rng.New(9)
	_ = b.Sample(r1)
	r2.Uint64n(1)
	r2.Float64()
	if r1.Uint64() != r2.Uint64() {
		t.Fatal("Sample did not consume exactly two draws")
	}
}

// TestConstructorErrors checks parameter validation.
func TestConstructorErrors(t *testing.T) {
	if _, err := NewBinomial(-1, 0.5); err == nil {
		t.Error("NewBinomial accepted trials < 0")
	}
	if _, err := NewBinomial(10, -0.1); err == nil {
		t.Error("NewBinomial accepted p < 0")
	}
	if _, err := NewBinomial(10, 1.1); err == nil {
		t.Error("NewBinomial accepted p > 1")
	}
	if _, err := NewBinomial(10, math.NaN()); err == nil {
		t.Error("NewBinomial accepted NaN")
	}
	if _, err := NewPoisson(-1); err == nil {
		t.Error("NewPoisson accepted negative mean")
	}
	if _, err := NewPoisson(math.Inf(1)); err == nil {
		t.Error("NewPoisson accepted +Inf")
	}
	if _, err := NewZipf(0, 1); err == nil {
		t.Error("NewZipf accepted n = 0")
	}
	if _, err := NewZipf(10, -1); err == nil {
		t.Error("NewZipf accepted s < 0")
	}
}

// TestDegenerateSamplers checks the p = 0, p = 1 and mean = 0 corners.
func TestDegenerateSamplers(t *testing.T) {
	r := rng.New(3)
	b0, err := NewBinomial(20, 0)
	if err != nil {
		t.Fatal(err)
	}
	b1, err := NewBinomial(20, 1)
	if err != nil {
		t.Fatal(err)
	}
	p0, err := NewPoisson(0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if v := b0.Sample(r); v != 0 {
			t.Fatalf("Binomial(20, 0) sampled %d", v)
		}
		if v := b1.Sample(r); v != 20 {
			t.Fatalf("Binomial(20, 1) sampled %d", v)
		}
		if v := p0.Sample(r); v != 0 {
			t.Fatalf("Poisson(0) sampled %d", v)
		}
	}
}
