// Package dist provides the discrete distributions used by the simulation
// engines and experiment harness: Binomial and Poisson samplers (backing the
// Tetris batched-arrival laws and the Lemma 5 drift chain) and a Zipf
// generator (backing the skewed initial configurations).
//
// All samplers draw exclusively from a caller-supplied *rng.Source, so every
// sample sequence is a deterministic function of the source state: replaying
// a seeded source replays the samples bit for bit, which the golden and
// law-equivalence tests rely on.
//
// Sampling uses Walker/Vose alias tables built once at construction over the
// distribution's effective support (entries below 1e-18 of mass are trimmed
// and the table renormalized; the trimmed mass is far below the resolution
// of any experiment in this repository). Each Sample consumes exactly two
// draws from the source: one bounded integer for the column and one float
// for the alias coin.
package dist

import (
	"fmt"
	"math"

	"repro/internal/rng"
)

// pmfTrim is the per-entry mass below which the alias table trims support.
const pmfTrim = 1e-18

// alias is a Walker/Vose alias table over {0, .., len(prob)-1}.
type alias struct {
	prob  []float64 // acceptance probability of the column itself
	alias []int32   // fallback outcome of the column
}

// newAlias builds an alias table from non-negative weights (renormalized;
// their sum must be positive and finite).
func newAlias(weights []float64) (*alias, error) {
	n := len(weights)
	if n == 0 {
		return nil, fmt.Errorf("dist: alias table with empty support")
	}
	var sum float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return nil, fmt.Errorf("dist: alias weight %d = %v", i, w)
		}
		sum += w
	}
	if sum <= 0 || math.IsInf(sum, 0) {
		return nil, fmt.Errorf("dist: alias weights sum to %v", sum)
	}
	a := &alias{
		prob:  make([]float64, n),
		alias: make([]int32, n),
	}
	// Scaled weights: mean 1 per column.
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / sum
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	// Numerical leftovers are full columns.
	for _, i := range large {
		a.prob[i] = 1
		a.alias[i] = i
	}
	for _, i := range small {
		a.prob[i] = 1
		a.alias[i] = i
	}
	return a, nil
}

// sample draws one outcome, consuming exactly two draws from r.
func (a *alias) sample(r *rng.Source) int {
	i := int(r.Uint64n(uint64(len(a.prob))))
	if r.Float64() < a.prob[i] {
		return i
	}
	return int(a.alias[i])
}

// logChoose returns log C(n, k) via lgamma.
func logChoose(n, k int) float64 {
	a, _ := math.Lgamma(float64(n) + 1)
	b, _ := math.Lgamma(float64(k) + 1)
	c, _ := math.Lgamma(float64(n-k) + 1)
	return a - b - c
}

// BinomialPMF returns P(X = k) for X ~ Binomial(n, p), computed in log
// space for numerical stability at large n.
func BinomialPMF(n int, p float64, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if p <= 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	if p >= 1 {
		if k == n {
			return 1
		}
		return 0
	}
	return math.Exp(logChoose(n, k) + float64(k)*math.Log(p) + float64(n-k)*math.Log1p(-p))
}

// PoissonPMF returns P(X = k) for X ~ Poisson(mean).
func PoissonPMF(mean float64, k int) float64 {
	if k < 0 {
		return 0
	}
	if mean == 0 {
		if k == 0 {
			return 1
		}
		return 0
	}
	lg, _ := math.Lgamma(float64(k) + 1)
	return math.Exp(float64(k)*math.Log(mean) - mean - lg)
}

// Binomial samples X ~ Binomial(trials, p) in O(1) per draw from a
// precomputed alias table. Create with NewBinomial; safe for concurrent use
// after construction (the table is read-only; the *rng.Source is not).
type Binomial struct {
	trials int
	p      float64
	table  *alias
}

// NewBinomial builds a Binomial(trials, p) sampler. It returns an error for
// trials < 0 or p outside [0, 1].
func NewBinomial(trials int, p float64) (*Binomial, error) {
	if trials < 0 {
		return nil, fmt.Errorf("dist: NewBinomial trials = %d < 0", trials)
	}
	if math.IsNaN(p) || p < 0 || p > 1 {
		return nil, fmt.Errorf("dist: NewBinomial p = %v outside [0, 1]", p)
	}
	// Effective support: contiguous run of k with PMF >= pmfTrim, always
	// including the mode so degenerate cases keep one entry.
	weights := supportWeights(trials, func(k int) float64 { return BinomialPMF(trials, p, k) }, p*float64(trials))
	table, err := newAlias(weights)
	if err != nil {
		return nil, err
	}
	return &Binomial{trials: trials, p: p, table: table}, nil
}

// supportWeights evaluates pmf(0..max) and trims the negligible tail above
// the last entry >= pmfTrim (keeping at least the entry nearest mode).
func supportWeights(max int, pmf func(int) float64, mode float64) []float64 {
	hi := max
	for hi > 0 && pmf(hi) < pmfTrim && float64(hi) > mode {
		hi--
	}
	weights := make([]float64, hi+1)
	for k := 0; k <= hi; k++ {
		weights[k] = pmf(k)
	}
	return weights
}

// Trials returns the number of trials n.
func (b *Binomial) Trials() int { return b.trials }

// P returns the success probability.
func (b *Binomial) P() float64 { return b.p }

// Mean returns n·p.
func (b *Binomial) Mean() float64 { return float64(b.trials) * b.p }

// Variance returns n·p·(1−p).
func (b *Binomial) Variance() float64 { return float64(b.trials) * b.p * (1 - b.p) }

// PMF returns the exact P(X = k) (not the trimmed table weight).
func (b *Binomial) PMF(k int) float64 { return BinomialPMF(b.trials, b.p, k) }

// Sample draws one value, consuming exactly two draws from r.
func (b *Binomial) Sample(r *rng.Source) int { return b.table.sample(r) }

// Poisson samples X ~ Poisson(mean) in O(1) per draw from a precomputed
// alias table over the effective support [0, mean + O(√mean)]. Create with
// NewPoisson.
type Poisson struct {
	mean  float64
	table *alias
}

// NewPoisson builds a Poisson(mean) sampler. It returns an error for a
// negative, NaN or infinite mean.
func NewPoisson(mean float64) (*Poisson, error) {
	if math.IsNaN(mean) || math.IsInf(mean, 0) || mean < 0 {
		return nil, fmt.Errorf("dist: NewPoisson mean = %v", mean)
	}
	// Support cap: mean + 16√mean + 32 keeps the trimmed tail below 1e-18
	// for any mean while bounding the table size at O(mean).
	cap := int(mean + 16*math.Sqrt(mean) + 32)
	weights := supportWeights(cap, func(k int) float64 { return PoissonPMF(mean, k) }, mean)
	table, err := newAlias(weights)
	if err != nil {
		return nil, err
	}
	return &Poisson{mean: mean, table: table}, nil
}

// Mean returns the Poisson mean (also its variance).
func (p *Poisson) Mean() float64 { return p.mean }

// PMF returns the exact P(X = k).
func (p *Poisson) PMF(k int) float64 { return PoissonPMF(p.mean, k) }

// Sample draws one value, consuming exactly two draws from r.
func (p *Poisson) Sample(r *rng.Source) int { return p.table.sample(r) }

// Zipf samples ranks 0..n−1 with P(k) ∝ (k+1)^−s — the skewed popularity
// law used by the Zipf initial-configuration generator. Create with NewZipf.
type Zipf struct {
	n     int
	s     float64
	table *alias
}

// NewZipf builds a Zipf sampler over n ranks with exponent s ≥ 0 (s = 0 is
// uniform). It returns an error for n < 1 or a NaN/negative/infinite s.
func NewZipf(n int, s float64) (*Zipf, error) {
	if n < 1 {
		return nil, fmt.Errorf("dist: NewZipf n = %d < 1", n)
	}
	if math.IsNaN(s) || math.IsInf(s, 0) || s < 0 {
		return nil, fmt.Errorf("dist: NewZipf s = %v", s)
	}
	weights := make([]float64, n)
	for k := 0; k < n; k++ {
		weights[k] = math.Pow(float64(k+1), -s)
	}
	table, err := newAlias(weights)
	if err != nil {
		return nil, err
	}
	return &Zipf{n: n, s: s, table: table}, nil
}

// N returns the number of ranks.
func (z *Zipf) N() int { return z.n }

// S returns the exponent.
func (z *Zipf) S() float64 { return z.s }

// Sample draws one rank in [0, n), consuming exactly two draws from r.
func (z *Zipf) Sample(r *rng.Source) int { return z.table.sample(r) }
