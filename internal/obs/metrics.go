package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 (atomic hot path).
type Counter struct{ v atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 (atomic hot path).
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (negative to subtract).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket distribution: per-bucket atomic counters plus
// an atomic sum, exported in Prometheus cumulative-bucket form. Bucket
// bounds are upper bounds (le); an implicit +Inf bucket catches the rest.
type Histogram struct {
	bounds []float64
	counts []atomic.Uint64 // len(bounds)+1; counts[i] = observations <= bounds[i]
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
}

// Observe records v.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DurationBuckets are the default histogram bounds for wall-clock phase and
// write durations: roughly logarithmic from 10 µs to 100 s, covering a
// sparse-round phase at small n up to a multi-gigabyte checkpoint write.
var DurationBuckets = []float64{
	1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3,
	1e-2, 2.5e-2, 0.1, 0.25, 1, 2.5, 10, 25, 100,
}

// Label is one metric label pair. Series within a family are keyed by
// their sorted label set.
type Label struct{ Key, Value string }

// kind discriminates a family's metric type.
type kind uint8

const (
	kindCounter kind = iota + 1
	kindGauge
	kindHistogram
)

func (k kind) String() string {
	switch k {
	case kindCounter:
		return "counter"
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	}
	return "untyped"
}

// series is one labeled instance of a family; exactly one of c/g/h is set.
type series struct {
	labels string // rendered `{k="v",...}` form, "" for the unlabeled series
	c      *Counter
	g      *Gauge
	h      *Histogram
}

// family is one named metric family: a type, a help string, and its series.
type family struct {
	name   string
	help   string
	kind   kind
	bounds []float64 // histogram families only
	series map[string]*series
}

// Registry holds metric families. Registration (Counter/Gauge/Histogram) is
// get-or-create and safe for concurrent use; the returned handles are the
// lock-free hot path. Export is stable-ordered: families sorted by name,
// series by label string, so two processes registering in different orders
// produce comparable text.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// Default is the process-wide registry every instrumented layer registers
// into; rbb-serve's /metrics endpoint and rbb-sim's -metrics dump export it.
var Default = NewRegistry()

// Counter returns the counter series of family name with the given labels,
// creating family and series as needed. Repeated calls with the same name
// and labels return the same handle. It panics if name is invalid or
// already registered as a different metric type (a programmer error).
func (r *Registry) Counter(name, help string, labels ...Label) *Counter {
	s := r.getOrCreate(name, help, kindCounter, nil, labels)
	return s.c
}

// Gauge returns the gauge series of family name with the given labels (see
// Counter for the registration contract).
func (r *Registry) Gauge(name, help string, labels ...Label) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, nil, labels)
	return s.g
}

// Histogram returns the histogram series of family name with the given
// bucket upper bounds (which must be sorted ascending; every series of a
// family shares the bounds of the first registration) and labels.
func (r *Registry) Histogram(name, help string, bounds []float64, labels ...Label) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, bounds, labels)
	return s.h
}

func (r *Registry) getOrCreate(name, help string, k kind, bounds []float64, labels []Label) *series {
	if !validName(name) {
		panic(fmt.Sprintf("obs: invalid metric name %q", name))
	}
	key := labelString(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		if k == kindHistogram {
			if len(bounds) == 0 {
				bounds = DurationBuckets
			}
			for i := 1; i < len(bounds); i++ {
				if bounds[i] <= bounds[i-1] {
					panic(fmt.Sprintf("obs: %s: histogram bounds not ascending", name))
				}
			}
			bounds = append([]float64(nil), bounds...)
		}
		f = &family{name: name, help: help, kind: k, bounds: bounds, series: make(map[string]*series)}
		r.families[name] = f
	}
	if f.kind != k {
		panic(fmt.Sprintf("obs: %s registered as %s, requested as %s", name, f.kind, k))
	}
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		switch k {
		case kindCounter:
			s.c = new(Counter)
		case kindGauge:
			s.g = new(Gauge)
		case kindHistogram:
			s.h = &Histogram{bounds: f.bounds, counts: make([]atomic.Uint64, len(f.bounds)+1)}
		}
		f.series[key] = s
	}
	return s
}

// validName checks the Prometheus metric/label name grammar.
func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		alpha := c == '_' || c == ':' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
		if !alpha && (i == 0 || c < '0' || c > '9') {
			return false
		}
	}
	return true
}

// labelString renders labels in sorted-key order as `{k="v",...}` ("" when
// empty). Values are escaped per the Prometheus text format.
func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	ls := append([]Label(nil), labels...)
	sort.Slice(ls, func(i, j int) bool { return ls[i].Key < ls[j].Key })
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range ls {
		if !validName(l.Key) {
			panic(fmt.Sprintf("obs: invalid label name %q", l.Key))
		}
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format (backslash,
// double quote, newline).
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// formatFloat renders a float in the shortest round-trip form.
func formatFloat(v float64) string {
	if math.IsInf(v, +1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// withLabel merges an extra label (le) into a rendered label string.
func withLabel(labels, key, value string) string {
	pair := key + `="` + value + `"`
	if labels == "" {
		return "{" + pair + "}"
	}
	return labels[:len(labels)-1] + "," + pair + "}"
}

// WritePrometheus exports every family in the Prometheus text exposition
// format (version 0.0.4), families sorted by name and series by label
// string. Values are read with atomic loads while writers may be running;
// the export is a consistent-enough monotone snapshot, as scrapes are.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.families))
	for _, f := range r.families {
		fams = append(fams, f)
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		r.mu.Lock()
		ss := make([]*series, 0, len(f.series))
		for _, s := range f.series {
			ss = append(ss, s)
		}
		r.mu.Unlock()
		sort.Slice(ss, func(i, j int) bool { return ss[i].labels < ss[j].labels })
		if f.help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.name, strings.ReplaceAll(f.help, "\n", " "))
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range ss {
			switch f.kind {
			case kindCounter:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case kindGauge:
				fmt.Fprintf(&b, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case kindHistogram:
				cum := uint64(0)
				for i, bound := range s.h.bounds {
					cum += s.h.counts[i].Load()
					fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", formatFloat(bound)), cum)
				}
				cum += s.h.counts[len(s.h.bounds)].Load()
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name, withLabel(s.labels, "le", "+Inf"), cum)
				fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, s.labels, formatFloat(s.h.Sum()))
				fmt.Fprintf(&b, "%s_count%s %d\n", f.name, s.labels, s.h.Count())
			}
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}
