// Package obs is the observability layer of the stack: a dependency-free
// metrics core (counters, gauges and histograms with atomic hot paths,
// collected in a Registry with a stable-ordered Prometheus text export), a
// span-based run tracer emitting Chrome-trace-format JSON, and the build
// provenance surface shared by the -version flags and the service's
// /version endpoint.
//
// # Trajectory neutrality
//
// Everything in this package is telemetry about a run, never part of it.
// The instrumented layers (internal/shard, the transports, internal/
// checkpoint, internal/serve) record wall-clock durations, byte counts and
// event counts — quantities that are machine noise — and none of that state
// is ever read back by result-determining code. The determinism contract is
// therefore structural: a run with metrics and tracing enabled produces the
// byte-identical trajectory, -json summary and final checkpoint of a run
// without (pinned by the observability-neutrality test in cmd/rbb-sim and
// by the transport-invariance and resume-equivalence CI gates, which run
// with metrics on). Telemetry goes to side channels only: the metrics
// endpoint/dump and the trace file, never stdout summaries.
//
// # Cost model
//
// Instrumentation sits at phase granularity (a handful of time.Now calls
// and atomic adds per round), not bin granularity, so the dense-round
// overhead stays under the recorded BENCH_obs.json bar (<2%). SetEnabled
// (false) additionally short-circuits every timer and counting path for
// clean ablation benchmarks; tracing is off unless a Tracer is installed
// with SetTracer.
package obs

import (
	"sync/atomic"
	"time"
)

// disabled is the global metrics kill switch, inverted so the zero value
// means "enabled" without an init step.
var disabled atomic.Bool

// Enabled reports whether metric collection is on (the default).
func Enabled() bool { return !disabled.Load() }

// SetEnabled turns metric collection on or off. Off short-circuits timers
// and counting paths; registered metrics keep their last values. Tracing is
// governed separately by SetTracer.
func SetEnabled(on bool) { disabled.Store(!on) }

// Timer measures one wall-clock interval for a histogram. The zero Timer
// (returned by StartTimer when metrics are disabled) is inert: observing it
// is a no-op, so call sites need no branches of their own.
type Timer struct{ start time.Time }

// StartTimer starts a timer, or returns an inert one when metrics are
// disabled.
func StartTimer() Timer {
	if !Enabled() {
		return Timer{}
	}
	return Timer{start: time.Now()}
}

// ObserveSeconds records the elapsed seconds into h and returns them
// (0 for an inert timer, which records nothing).
func (t Timer) ObserveSeconds(h *Histogram) float64 {
	if t.start.IsZero() {
		return 0
	}
	s := time.Since(t.start).Seconds()
	h.Observe(s)
	return s
}
