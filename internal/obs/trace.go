package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer streams run spans as Chrome trace event format JSON — the file
// `rbb-sim -trace` writes loads directly in chrome://tracing or Perfetto.
// Events are written as they complete (no in-memory event buffer, so a
// million-round run cannot exhaust memory); Close terminates the JSON
// document, which is valid only after Close. Safe for concurrent use.
type Tracer struct {
	mu    sync.Mutex
	w     io.Writer
	start time.Time
	n     int
	err   error
}

// traceEvent is one Chrome trace event. Ph "X" is a complete event (ts +
// dur), "i" an instant, "M" metadata. Timestamps are microseconds from the
// tracer's start.
type traceEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// NewTracer starts a tracer writing to w. The caller owns w and closes it
// after Close.
func NewTracer(w io.Writer) *Tracer {
	t := &Tracer{w: w, start: time.Now()}
	_, err := io.WriteString(w, `{"displayTimeUnit":"ms","traceEvents":[`)
	t.err = err
	return t
}

// emit appends one event (comma-separated after the first).
func (t *Tracer) emit(ev traceEvent) {
	blob, err := json.Marshal(ev)
	if err != nil {
		return // fixed field types; unreachable
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if t.n > 0 {
		if _, t.err = t.w.Write([]byte{','}); t.err != nil {
			return
		}
	}
	_, t.err = t.w.Write(blob)
	t.n++
}

// us converts an instant to microseconds from the tracer's start.
func (t *Tracer) us(at time.Time) float64 {
	return float64(at.Sub(t.start)) / float64(time.Microsecond)
}

// Span is one open interval; End records it. The zero Span (from a nil
// tracer) is inert.
type Span struct {
	t     *Tracer
	name  string
	tid   int
	start time.Time
}

// StartSpan opens a span on lane tid. Safe on a nil tracer (inert span).
func (t *Tracer) StartSpan(name string, tid int) Span {
	if t == nil {
		return Span{}
	}
	return Span{t: t, name: name, tid: tid, start: time.Now()}
}

// End closes the span, emitting a complete ("X") event.
func (s Span) End() {
	if s.t == nil {
		return
	}
	s.t.emit(traceEvent{
		Name: s.name,
		Ph:   "X",
		Ts:   s.t.us(s.start),
		Dur:  time.Since(s.start).Seconds() * 1e6,
		Pid:  1,
		Tid:  s.tid,
	})
}

// Instant emits a zero-duration instant event (scope: thread) with optional
// args. Safe on a nil tracer.
func (t *Tracer) Instant(name string, tid int, args map[string]any) {
	if t == nil {
		return
	}
	t.emit(traceEvent{Name: name, Ph: "i", Ts: t.us(time.Now()), Pid: 1, Tid: tid, S: "t", Args: args})
}

// Meta names a lane ("M" thread_name metadata), so the trace viewer shows
// "phases" instead of "tid 0".
func (t *Tracer) Meta(tid int, name string) {
	if t == nil {
		return
	}
	t.emit(traceEvent{Name: "thread_name", Ph: "M", Pid: 1, Tid: tid, Args: map[string]any{"name": name}})
}

// Close terminates the JSON document and returns the first write error, if
// any. The tracer must not be used afterwards (further events are dropped).
func (t *Tracer) Close() error {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err == nil {
		_, t.err = io.WriteString(t.w, "]}\n")
		if t.err == nil {
			t.err = errClosed
			return nil
		}
	}
	err := t.err
	if err == errClosed {
		return nil
	}
	t.err = errClosed
	return err
}

var errClosed = fmt.Errorf("obs: tracer closed")

// Lane ids used by the instrumented layers: phases on 0, checkpoint writes
// on 1, so the two kinds of work stack on separate rows in the viewer.
const (
	LanePhases = 0
	LaneCkpt   = 1
)

// tracer is the installed process-wide tracer (nil = tracing off).
var tracer atomic.Pointer[Tracer]

// SetTracer installs (or, with nil, removes) the process-wide tracer the
// instrumented layers emit into.
func SetTracer(t *Tracer) { tracer.Store(t) }

// CurrentTracer returns the installed tracer (nil when tracing is off).
func CurrentTracer() *Tracer { return tracer.Load() }

// StartSpan opens a span on the installed tracer; with none installed the
// returned span is inert. One atomic load when tracing is off.
func StartSpan(name string, tid int) Span {
	return tracer.Load().StartSpan(name, tid)
}

// Instant emits an instant event on the installed tracer, if any.
func Instant(name string, tid int, args map[string]any) {
	tracer.Load().Instant(name, tid, args)
}
