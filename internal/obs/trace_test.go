package obs

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// chromeTrace mirrors the top-level Chrome trace JSON object for decoding.
type chromeTrace struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []traceEvent `json:"traceEvents"`
}

// TestTracerChromeJSON: a traced run produces a document that parses as
// Chrome trace format JSON with the expected event shapes.
func TestTracerChromeJSON(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	tr.Meta(LanePhases, "phases")
	sp := tr.StartSpan("release", LanePhases)
	time.Sleep(time.Millisecond)
	sp.End()
	tr.Instant("widen", LanePhases, map[string]any{"to": "16"})
	sp2 := tr.StartSpan("ckpt", LaneCkpt)
	sp2.End()
	if err := tr.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := tr.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	var doc chromeTrace
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("trace output is not valid JSON: %v\n%s", err, b.String())
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 4 {
		t.Fatalf("got %d events, want 4", len(doc.TraceEvents))
	}
	meta, span, instant, ckpt := doc.TraceEvents[0], doc.TraceEvents[1], doc.TraceEvents[2], doc.TraceEvents[3]
	if meta.Ph != "M" || meta.Name != "thread_name" || meta.Args["name"] != "phases" {
		t.Errorf("bad metadata event: %+v", meta)
	}
	if span.Ph != "X" || span.Name != "release" || span.Tid != LanePhases || span.Pid != 1 {
		t.Errorf("bad span event: %+v", span)
	}
	if span.Dur < 500 { // slept 1ms; dur is in microseconds
		t.Errorf("span dur = %v µs, want >= 500", span.Dur)
	}
	if instant.Ph != "i" || instant.S != "t" || instant.Args["to"] != "16" {
		t.Errorf("bad instant event: %+v", instant)
	}
	if instant.Ts < span.Ts {
		t.Errorf("instant ts %v before span ts %v", instant.Ts, span.Ts)
	}
	if ckpt.Tid != LaneCkpt {
		t.Errorf("ckpt span on tid %d, want %d", ckpt.Tid, LaneCkpt)
	}
}

// TestNilTracerInert: every entry point is safe with no tracer installed.
func TestNilTracerInert(t *testing.T) {
	SetTracer(nil)
	sp := StartSpan("x", LanePhases)
	sp.End()
	Instant("y", LanePhases, nil)
	var nilT *Tracer
	nilT.StartSpan("z", 0).End()
	nilT.Instant("z", 0, nil)
	nilT.Meta(0, "z")
	if CurrentTracer() != nil {
		t.Error("CurrentTracer not nil")
	}
}

// TestGlobalTracer: package-level StartSpan/Instant route to the installed
// tracer.
func TestGlobalTracer(t *testing.T) {
	var b strings.Builder
	tr := NewTracer(&b)
	SetTracer(tr)
	defer SetTracer(nil)
	StartSpan("phase", LanePhases).End()
	Instant("mark", LaneCkpt, nil)
	if err := tr.Close(); err != nil {
		t.Fatal(err)
	}
	var doc chromeTrace
	if err := json.Unmarshal([]byte(b.String()), &doc); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(doc.TraceEvents) != 2 {
		t.Fatalf("got %d events, want 2", len(doc.TraceEvents))
	}
}
