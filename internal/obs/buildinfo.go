package obs

import (
	"runtime"
	"runtime/debug"
	"sync"
)

// BuildInfo is the build provenance of the running binary, read from the
// Go toolchain's embedded build info. The rbb-sim/rbb-serve -version flags
// print it and the service exposes it at /version (plus the revision in
// healthz), so a fleet's binaries are identifiable without shipping a
// version constant through releases.
type BuildInfo struct {
	// GoVersion is the toolchain that built the binary.
	GoVersion string `json:"go_version"`
	// Revision is the VCS commit hash, "unknown" outside a VCS build
	// (e.g. test binaries and plain `go run`).
	Revision string `json:"revision"`
	// CommitTime is the commit's RFC 3339 timestamp, when recorded.
	CommitTime string `json:"commit_time,omitempty"`
	// Modified reports a dirty working tree at build time.
	Modified bool `json:"modified,omitempty"`
	// Module is the main module path.
	Module string `json:"module,omitempty"`
}

// Build returns the binary's build info (computed once).
var Build = sync.OnceValue(func() BuildInfo {
	out := BuildInfo{GoVersion: runtime.Version(), Revision: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.Module = bi.Main.Path
	for _, s := range bi.Settings {
		switch s.Key {
		case "vcs.revision":
			out.Revision = s.Value
		case "vcs.time":
			out.CommitTime = s.Value
		case "vcs.modified":
			out.Modified = s.Value == "true"
		}
	}
	return out
})

// String renders "revision goversion" with a dirty marker — the -version
// flag's one-liner.
func (b BuildInfo) String() string {
	s := b.Revision
	if b.Modified {
		s += "-dirty"
	}
	return s + " " + b.GoVersion
}
