package obs

import (
	"strings"
	"sync"
	"testing"
)

// TestRegistryConcurrency hammers registration (get-or-create of the same
// families) and the atomic hot paths from many goroutines; run under -race
// in CI. Totals must come out exact.
func TestRegistryConcurrency(t *testing.T) {
	r := NewRegistry()
	const (
		workers = 8
		iters   = 10000
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("test_total", "help").Inc()
				r.Counter("test_labeled_total", "help", Label{"shard", "0"}).Add(2)
				r.Gauge("test_gauge", "help").Set(int64(w))
				r.Histogram("test_seconds", "help", []float64{0.5, 1.5}).Observe(1.0)
			}
		}(w)
	}
	wg.Wait()
	if got := r.Counter("test_total", "help").Value(); got != workers*iters {
		t.Errorf("counter = %d, want %d", got, workers*iters)
	}
	if got := r.Counter("test_labeled_total", "help", Label{"shard", "0"}).Value(); got != 2*workers*iters {
		t.Errorf("labeled counter = %d, want %d", got, 2*workers*iters)
	}
	h := r.Histogram("test_seconds", "help", []float64{0.5, 1.5})
	if h.Count() != workers*iters {
		t.Errorf("histogram count = %d, want %d", h.Count(), workers*iters)
	}
	if h.Sum() != float64(workers*iters) {
		t.Errorf("histogram sum = %v, want %v", h.Sum(), float64(workers*iters))
	}
	if g := r.Gauge("test_gauge", "help").Value(); g < 0 || g >= workers {
		t.Errorf("gauge = %d, want one of the worker ids", g)
	}
}

// TestWritePrometheusGolden pins the exposition format byte for byte:
// stable family and series order, HELP/TYPE lines, cumulative histogram
// buckets with the implicit +Inf, and label escaping.
func TestWritePrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zz_last_total", "registered first, sorted last").Add(7)
	r.Counter("aa_requests_total", "requests", Label{"method", "GET"}, Label{"code", "200"}).Add(3)
	r.Counter("aa_requests_total", "requests", Label{"code", "500"}, Label{"method", "GET"}).Inc()
	r.Gauge("queue_depth", "queued runs").Set(-2)
	h := r.Histogram("phase_seconds", "phase durations", []float64{0.1, 1}, Label{"phase", "release"})
	h.Observe(0.05)
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(50)
	r.Counter("esc_total", "escaping", Label{"v", "a\"b\\c\nd"}).Inc()

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	want := `# HELP aa_requests_total requests
# TYPE aa_requests_total counter
aa_requests_total{code="200",method="GET"} 3
aa_requests_total{code="500",method="GET"} 1
# HELP esc_total escaping
# TYPE esc_total counter
esc_total{v="a\"b\\c\nd"} 1
# HELP phase_seconds phase durations
# TYPE phase_seconds histogram
phase_seconds_bucket{phase="release",le="0.1"} 2
phase_seconds_bucket{phase="release",le="1"} 3
phase_seconds_bucket{phase="release",le="+Inf"} 4
phase_seconds_sum{phase="release"} 50.6
phase_seconds_count{phase="release"} 4
# HELP queue_depth queued runs
# TYPE queue_depth gauge
queue_depth -2
# HELP zz_last_total registered first, sorted last
# TYPE zz_last_total counter
zz_last_total 7
`
	if got := b.String(); got != want {
		t.Errorf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestRegistryKindMismatch: re-registering a family as a different type is
// a programmer error and panics.
func TestRegistryKindMismatch(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

// TestInvalidName: a malformed metric name panics at registration.
func TestInvalidName(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("no panic on invalid name")
		}
	}()
	NewRegistry().Counter("0bad name", "")
}

// TestTimerDisabled: StartTimer under SetEnabled(false) is inert — it
// observes nothing and returns 0.
func TestTimerDisabled(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("t_seconds", "", []float64{1})
	SetEnabled(false)
	defer SetEnabled(true)
	tm := StartTimer()
	if s := tm.ObserveSeconds(h); s != 0 {
		t.Errorf("inert timer observed %v", s)
	}
	if h.Count() != 0 {
		t.Errorf("inert timer recorded %d observations", h.Count())
	}
	SetEnabled(true)
	tm = StartTimer()
	if tm.ObserveSeconds(h); h.Count() != 1 {
		t.Errorf("live timer recorded %d observations, want 1", h.Count())
	}
}
