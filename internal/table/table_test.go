package table

import (
	"strings"
	"testing"
)

func TestAddRowAndAccess(t *testing.T) {
	tb := New("demo", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", int64(7))
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	r := tb.Row(0)
	if r[0] != "1" || r[1] != "2.5" {
		t.Fatalf("row 0 = %v", r)
	}
	r[0] = "mutate"
	if tb.Row(0)[0] != "1" {
		t.Fatal("Row returned aliased slice")
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	New("x", "a", "b").AddRow(1)
}

func TestFormatValues(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "42"},
		{int32(-3), "-3"},
		{int64(1 << 40), "1099511627776"},
		{uint64(9), "9"},
		{3.0, "3"},
		{3.14159, "3.1416"},
		{0.25, "0.25"},
		{1e-9, "1e-09"},
		{2.5e8, "250000000"},
		{2.5e18, "2.5e+18"},
		{true, "yes"},
		{false, "no"},
		{"str", "str"},
	}
	for _, c := range cases {
		if got := format(c.in); got != c.want {
			t.Errorf("format(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderText(t *testing.T) {
	tb := New("title", "n", "value")
	tb.AddRow(1024, 3.5)
	tb.AddNote("a note")
	var sb strings.Builder
	if err := tb.RenderText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"title", "n", "value", "1024", "3.5", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: "value" column width 5, cell "3.5" right-aligned.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	header, data := lines[1], lines[3]
	if strings.Index(header, "value")+5 != strings.Index(data, "3.5")+3 {
		t.Errorf("columns misaligned:\n%q\n%q", header, data)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x|y", 1)
	tb.AddNote("nb")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| a | b |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, "*nb*") {
		t.Errorf("note missing:\n%s", out)
	}
	if !strings.Contains(out, "**T**") {
		t.Errorf("title missing:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x,y", 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, `"x,y",2`) {
		t.Errorf("csv escaping wrong:\n%s", out)
	}
}

func TestRenderAs(t *testing.T) {
	tb := New("T", "a")
	tb.AddRow(1)
	for _, f := range []Format{Text, Markdown, CSV} {
		var sb strings.Builder
		if err := tb.RenderAs(&sb, f); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", f)
		}
	}
	var sb strings.Builder
	if err := tb.RenderAs(&sb, Format("bogus")); err == nil {
		t.Fatal("unknown format accepted")
	}
}

func TestFormatFloatEdges(t *testing.T) {
	if FormatFloat(0) != "0" {
		t.Error("zero")
	}
	if FormatFloat(-2.5) != "-2.5" {
		t.Error("negative")
	}
	if got := FormatFloat(0.000125); got != "0.000125" {
		// Below 1e-3 the %g path keeps full significant digits.
		t.Errorf("small = %q", got)
	}
}
