package table

import (
	"encoding/json"
	"reflect"
	"strings"
	"testing"
)

func TestAddRowAndAccess(t *testing.T) {
	tb := New("demo", "a", "b")
	tb.AddRow(1, 2.5)
	tb.AddRow("x", int64(7))
	if tb.NumRows() != 2 {
		t.Fatalf("rows = %d", tb.NumRows())
	}
	r := tb.Row(0)
	if r[0] != "1" || r[1] != "2.5" {
		t.Fatalf("row 0 = %v", r)
	}
	r[0] = "mutate"
	if tb.Row(0)[0] != "1" {
		t.Fatal("Row returned aliased slice")
	}
}

func TestAddRowArityPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on arity mismatch")
		}
	}()
	New("x", "a", "b").AddRow(1)
}

func TestFormatValues(t *testing.T) {
	cases := []struct {
		in   any
		want string
	}{
		{42, "42"},
		{int32(-3), "-3"},
		{int64(1 << 40), "1099511627776"},
		{uint64(9), "9"},
		{3.0, "3"},
		{3.14159, "3.1416"},
		{0.25, "0.25"},
		{1e-9, "1e-09"},
		{2.5e8, "250000000"},
		{2.5e18, "2.5e+18"},
		{true, "yes"},
		{false, "no"},
		{"str", "str"},
	}
	for _, c := range cases {
		if got := format(c.in); got != c.want {
			t.Errorf("format(%v) = %q, want %q", c.in, got, c.want)
		}
	}
}

func TestRenderText(t *testing.T) {
	tb := New("title", "n", "value")
	tb.AddRow(1024, 3.5)
	tb.AddNote("a note")
	var sb strings.Builder
	if err := tb.RenderText(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"title", "n", "value", "1024", "3.5", "note: a note", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("text output missing %q:\n%s", want, out)
		}
	}
	// Columns aligned: "value" column width 5, cell "3.5" right-aligned.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	header, data := lines[1], lines[3]
	if strings.Index(header, "value")+5 != strings.Index(data, "3.5")+3 {
		t.Errorf("columns misaligned:\n%q\n%q", header, data)
	}
}

func TestRenderMarkdown(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x|y", 1)
	tb.AddNote("nb")
	var sb strings.Builder
	if err := tb.RenderMarkdown(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "| a | b |") {
		t.Errorf("markdown header missing:\n%s", out)
	}
	if !strings.Contains(out, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", out)
	}
	if !strings.Contains(out, "*nb*") {
		t.Errorf("note missing:\n%s", out)
	}
	if !strings.Contains(out, "**T**") {
		t.Errorf("title missing:\n%s", out)
	}
}

func TestRenderCSV(t *testing.T) {
	tb := New("T", "a", "b")
	tb.AddRow("x,y", 2)
	var sb strings.Builder
	if err := tb.RenderCSV(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.HasPrefix(out, "a,b\n") {
		t.Errorf("csv header wrong:\n%s", out)
	}
	if !strings.Contains(out, `"x,y",2`) {
		t.Errorf("csv escaping wrong:\n%s", out)
	}
}

func TestRenderAs(t *testing.T) {
	tb := New("T", "a")
	tb.AddRow(1)
	for _, f := range []Format{Text, Markdown, CSV} {
		var sb strings.Builder
		if err := tb.RenderAs(&sb, f); err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if sb.Len() == 0 {
			t.Fatalf("%s produced no output", f)
		}
	}
	var sb strings.Builder
	if err := tb.RenderAs(&sb, Format("bogus")); err == nil {
		t.Fatal("unknown format accepted")
	}
}

// TestRoundTrip: build table → CSV/JSON encode → decode → equal. This is
// the aggregation artifact contract: internal/campaign writes tables in
// both forms and the decoded table must carry the identical cells.
func TestRoundTrip(t *testing.T) {
	tb := New("phase diagram", "lambda", "n", "window_max", "note col")
	tb.AddRow(0.5, 65536, 12, "stable")
	tb.AddRow(0.95, 1048576, 27.25, "near critical, \"quoted\"")
	tb.AddRow(1e-9, int64(1<<40), -3, "x,y")
	tb.AddNote("12 points, 3 shown")

	// JSON round trip: full equality, title and notes included.
	blob, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var fromJSON Table
	if err := json.Unmarshal(blob, &fromJSON); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, &fromJSON) {
		t.Errorf("json round trip: got %+v, want %+v", &fromJSON, tb)
	}
	// And RenderJSON output decodes to the same table too.
	var sb strings.Builder
	if err := tb.RenderJSON(&sb); err != nil {
		t.Fatal(err)
	}
	var fromRender Table
	if err := json.Unmarshal([]byte(sb.String()), &fromRender); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, &fromRender) {
		t.Errorf("RenderJSON round trip: got %+v, want %+v", &fromRender, tb)
	}

	// CSV round trip: columns and cells survive exactly (title and notes
	// are not part of the CSV form).
	var csvBuf strings.Builder
	if err := tb.RenderCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := ParseCSV(strings.NewReader(csvBuf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb.Columns, fromCSV.Columns) {
		t.Errorf("csv columns = %v, want %v", fromCSV.Columns, tb.Columns)
	}
	if !reflect.DeepEqual(tb.Rows(), fromCSV.Rows()) {
		t.Errorf("csv rows = %v, want %v", fromCSV.Rows(), tb.Rows())
	}
}

func TestRoundTripEmpty(t *testing.T) {
	tb := New("", "a", "b")
	blob, err := json.Marshal(tb)
	if err != nil {
		t.Fatal(err)
	}
	var back Table
	if err := json.Unmarshal(blob, &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tb, &back) {
		t.Errorf("empty round trip: got %+v, want %+v", &back, tb)
	}
}

func TestParseErrors(t *testing.T) {
	if _, err := ParseCSV(strings.NewReader("")); err == nil {
		t.Error("ParseCSV accepted empty input")
	}
	var tb Table
	if err := json.Unmarshal([]byte(`{"columns":["a"],"rows":[["1","2"]]}`), &tb); err == nil {
		t.Error("UnmarshalJSON accepted arity mismatch")
	}
}

// TestRenderTextAlignment: numeric columns (mixed-width ints, floats,
// scientific notation) right-align; text columns left-align.
func TestRenderTextAlignment(t *testing.T) {
	tb := New("", "name", "count", "rate")
	tb.AddRow("short", 7, 0.5)
	tb.AddRow("a-much-longer-name", 123456, 1.25e-9)
	var sb strings.Builder
	if err := tb.RenderText(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(sb.String(), "\n"), "\n")
	header, row1, row2 := lines[0], lines[2], lines[3]
	// Text column: left-aligned, so both cells start at column 0.
	if !strings.HasPrefix(header, "name") || !strings.HasPrefix(row1, "short") || !strings.HasPrefix(row2, "a-much-longer-name") {
		t.Errorf("text column not left-aligned:\n%s", sb.String())
	}
	// Numeric columns: right-aligned, so cells of one column end at the
	// same rune offset in every line.
	end := func(line, cell string) int { return strings.Index(line, cell) + len(cell) }
	if end(row1, "7") != end(row2, "123456") || end(header, "count") != end(row1, "7") {
		t.Errorf("count column not right-aligned:\n%s", sb.String())
	}
	if end(row1, "0.5") != end(row2, "1.25e-09") {
		t.Errorf("rate column not right-aligned:\n%s", sb.String())
	}
	// No trailing whitespace on any line (last column is left-aligned
	// text-free padding).
	for i, line := range lines {
		if strings.TrimRight(line, " ") != line {
			t.Errorf("line %d has trailing whitespace: %q", i, line)
		}
	}
}

func TestFormatFloatEdges(t *testing.T) {
	if FormatFloat(0) != "0" {
		t.Error("zero")
	}
	if FormatFloat(-2.5) != "-2.5" {
		t.Error("negative")
	}
	if got := FormatFloat(0.000125); got != "0.000125" {
		// Below 1e-3 the %g path keeps full significant digits.
		t.Errorf("small = %q", got)
	}
}
